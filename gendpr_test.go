package gendpr_test

import (
	"math/rand"
	"testing"

	"gendpr"
)

func publicCohort(t testing.TB, snps, caseN int, seed int64) *gendpr.Cohort {
	t.Helper()
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(snps, caseN, seed))
	if err != nil {
		t.Fatalf("GenerateCohort: %v", err)
	}
	return cohort
}

func TestPublicAPIEndToEnd(t *testing.T) {
	cohort := publicCohort(t, 120, 300, 77)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gendpr.DefaultConfig()

	dist, err := gendpr.AssessDistributed(shards, cohort.Reference, cfg, gendpr.CollusionPolicy{})
	if err != nil {
		t.Fatalf("AssessDistributed: %v", err)
	}
	central, err := gendpr.AssessCentralized(cohort, cfg)
	if err != nil {
		t.Fatalf("AssessCentralized: %v", err)
	}
	if !dist.Selection.Equal(central.Selection) {
		t.Errorf("distributed %v != centralized %v", dist.Selection, central.Selection)
	}

	naive, err := gendpr.AssessNaive(shards, cohort.Reference, cfg)
	if err != nil {
		t.Fatalf("AssessNaive: %v", err)
	}
	if len(naive.Selection.AfterMAF) != len(central.Selection.AfterMAF) {
		t.Error("naive MAF phase should match")
	}
}

func TestPublicFederatedRun(t *testing.T) {
	cohort := publicCohort(t, 80, 200, 79)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gendpr.AssessFederated(shards, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{F: 1})
	if err != nil {
		t.Fatalf("AssessFederated: %v", err)
	}
	if res.Report.Combinations != 4 {
		t.Errorf("combinations=%d, want 4", res.Report.Combinations)
	}
}

func TestPublicAdversaryAudit(t *testing.T) {
	cohort := publicCohort(t, 150, 500, 83)
	shards, err := cohort.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gendpr.DefaultConfig()
	rep, err := gendpr.AssessDistributed(shards, cohort.Reference, cfg, gendpr.CollusionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Selection.Safe) == 0 {
		t.Skip("no safe SNPs for this seed")
	}
	caseCounts := cohort.Case.AlleleCounts()
	refCounts := cohort.Reference.AlleleCounts()
	released := gendpr.SubsetFrequencies(caseCounts, int64(cohort.Case.N()), rep.Selection.Safe)
	refFreq := gendpr.SubsetFrequencies(refCounts, int64(cohort.Reference.N()), rep.Selection.Safe)
	adv, err := gendpr.NewAdversary(released, refFreq, cohort.Reference.SelectColumns(rep.Selection.Safe), cfg.LR.Alpha)
	if err != nil {
		t.Fatalf("NewAdversary: %v", err)
	}
	power, err := adv.DetectionPower(cohort.Case.SelectColumns(rep.Selection.Safe))
	if err != nil {
		t.Fatal(err)
	}
	if power >= cfg.LR.PowerThreshold {
		t.Errorf("attack power %v over the safe release reaches the bound %v", power, cfg.LR.PowerThreshold)
	}
}

func TestPublicBuildRelease(t *testing.T) {
	cohort := publicCohort(t, 100, 260, 91)
	shards, err := cohort.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gendpr.DefaultConfig()
	policy := gendpr.CollusionPolicy{F: 1}
	rep, err := gendpr.AssessDistributed(shards, cohort.Reference, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := gendpr.BuildRelease("study-x", cohort, rep, cfg, policy)
	if err != nil {
		t.Fatalf("BuildRelease: %v", err)
	}
	if len(doc.Statistics) != len(rep.Selection.Safe) {
		t.Errorf("release has %d rows, want %d", len(doc.Statistics), len(rep.Selection.Safe))
	}
	if doc.Parameters.Colluders != "f=1" {
		t.Errorf("colluders label %q", doc.Parameters.Colluders)
	}
	conservative, err := gendpr.BuildRelease("study-x", cohort, rep, cfg, gendpr.CollusionPolicy{Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	if conservative.Parameters.Colluders != "f={1..G-1}" {
		t.Errorf("conservative label %q", conservative.Parameters.Colluders)
	}
	// Released rows cover only safe SNPs.
	safe := make(map[int]bool, len(rep.Selection.Safe))
	for _, l := range rep.Selection.Safe {
		safe[l] = true
	}
	for _, s := range doc.Statistics {
		if !safe[s.SNP] {
			t.Errorf("release contains unsafe SNP %d", s.SNP)
		}
	}
}

func TestPublicDynamicManager(t *testing.T) {
	cohort := publicCohort(t, 80, 200, 93)
	mgr, err := gendpr.NewDynamicManager(2, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{})
	if err != nil {
		t.Fatalf("NewDynamicManager: %v", err)
	}
	if err := mgr.AddBatch(0, cohort.Case.SelectRows(0, 100)); err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || rep.Genomes != 100 {
		t.Errorf("epoch=%d genomes=%d", rep.Epoch, rep.Genomes)
	}
}

func TestPublicHybridRelease(t *testing.T) {
	cohort := publicCohort(t, 60, 150, 89)
	counts := cohort.Case.AlleleCounts()
	rel, err := gendpr.BuildHybridRelease(counts, int64(cohort.Case.N()), []int{1, 2, 3},
		gendpr.DPParams{Epsilon: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("BuildHybridRelease: %v", err)
	}
	if len(rel.SNPs) != 60 {
		t.Errorf("released %d SNPs, want 60", len(rel.SNPs))
	}
}
