// Hybrid DP release: publish the full desired SNP set by combining GenDPR's
// noise-free safe subset with Laplace-perturbed statistics over the rest
// (the paper's Section 5.5 extension).
//
// Funding agencies often require statistics for every studied SNP. GenDPR
// alone can only release the safe subset; the hybrid scheme covers the
// complement with differential privacy, trading accuracy for coverage only
// where the exact values would leak membership.
//
// Run with: go run ./examples/hybriddp
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gendpr"
)

func main() {
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(800, 1600, 5))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		log.Fatal(err)
	}
	report, err := gendpr.AssessDistributed(shards, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	safe := report.Selection.Safe
	fmt.Printf("desired SNPs: %d, safe for exact release: %d, needing DP: %d\n",
		cohort.SNPs(), len(safe), cohort.SNPs()-len(safe))

	caseCounts := cohort.Case.AlleleCounts()
	caseN := int64(cohort.Case.N())

	for _, eps := range []float64{0.1, 1, 10} {
		release, err := gendpr.BuildHybridRelease(caseCounts, caseN, safe,
			gendpr.DPParams{Epsilon: eps}, rand.New(rand.NewSource(99)))
		if err != nil {
			log.Fatal(err)
		}
		var exactErr, noisedErr float64
		var exactN, noisedN int
		for _, s := range release.SNPs {
			truth := float64(caseCounts[s.SNP]) / float64(caseN)
			gap := math.Abs(s.Frequency - truth)
			if s.Noised {
				noisedErr += gap
				noisedN++
			} else {
				exactErr += gap
				exactN++
			}
		}
		//gendpr:allow(secretflow): demo prints error summaries over the synthetic cohort it just generated
		fmt.Printf("epsilon=%5.1f: %4d exact SNPs (mean abs error %.5f), %4d noised SNPs (mean abs error %.5f)\n",
			eps, exactN, exactErr/float64(max(exactN, 1)),
			noisedN, noisedErr/float64(max(noisedN, 1)))
	}
	fmt.Println("\nexact error is always zero; noised error shrinks as epsilon grows —")
	fmt.Println("the analyst picks the budget, the safe subset costs nothing.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
