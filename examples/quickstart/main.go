// Quickstart: assess which SNPs of a federated GWAS are safe to release.
//
// Three biocenters jointly study 1,000 SNP positions. Raw genomes stay on
// each center's premises; the assessment exchanges only aggregable
// intermediates and returns the subset of SNPs whose statistics can be
// published without enabling membership-inference attacks.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gendpr"
)

func main() {
	// 1. A study cohort. In production each center loads its own (signed)
	// VCF; here we synthesize one and split it three ways.
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(1000, 1500, 42))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cohort: %d case genomes across %d centers, %d reference genomes, %d SNPs\n",
		cohort.Case.N(), len(shards), cohort.Reference.N(), cohort.SNPs())

	// 2. Run the GenDPR assessment with the paper's settings (MAF cutoff
	// 0.05, LD cutoff 1e-5, LR-test at FPR 0.1 / power 0.9).
	report, err := gendpr.AssessDistributed(shards, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the three-phase selection funnel.
	sel := report.Selection
	fmt.Printf("phase 1 (MAF):    %4d SNPs retained (rare variants removed)\n", len(sel.AfterMAF))
	fmt.Printf("phase 2 (LD):     %4d SNPs retained (correlated SNPs thinned)\n", len(sel.AfterLD))
	fmt.Printf("phase 3 (LR):     %4d SNPs safe to release\n", len(sel.Safe))
	fmt.Printf("residual membership-inference power: %.3f (threshold %.1f)\n",
		sel.Power, gendpr.DefaultConfig().LR.PowerThreshold)
	fmt.Printf("total assessment time: %v\n", report.Timings.Total())

	// 4. The safe subset equals what a centralized assessment over the
	// pooled genomes would select — without ever pooling them.
	central, err := gendpr.AssessCentralized(cohort, gendpr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches centralized SecureGenome selection: %v\n",
		sel.Equal(central.Selection))
}
