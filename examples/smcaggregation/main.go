// SMC aggregation: GenDPR's Phase 1 with additive secret sharing instead of
// a TEE or homomorphic encryption.
//
// The paper's related work surveys SMC-based federated GWAS. In this model
// there are two (or more) aggregation servers assumed not to collude — say,
// one run by a university consortium and one by a public-health agency.
// Every biocenter splits its allele-count vector into additive shares over
// Z_(2^61−1) and sends one share vector to each server. A single share (or
// any proper subset of the servers' views) is a uniformly random vector:
// nothing about a center's counts leaks. Each server sums the share vectors
// it holds — pure local arithmetic — and the recombined server outputs equal
// the federation-wide counts, which feed the MAF phase exactly like the TEE
// path.
//
// Run with: go run ./examples/smcaggregation
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"gendpr"
	"gendpr/internal/secshare"
	"gendpr/internal/stats"
)

func main() {
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(500, 900, 35))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		log.Fatal(err)
	}

	const servers = 2
	perServer := make([][]secshare.SharedVector, servers)
	var (
		caseN int64
		plain [][]int64
	)
	for i, s := range shards {
		counts := s.AlleleCounts()
		plain = append(plain, counts)
		caseN += int64(s.N())
		views, err := secshare.ShareVector(counts, servers, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		for j, view := range views {
			perServer[j] = append(perServer[j], view)
		}
		fmt.Printf("center %d: split %d counts into %d share vectors (each one uniformly random)\n",
			i, len(counts), servers)
	}

	// Each non-colluding server sums the shares it received.
	serverSums := make([]secshare.SharedVector, servers)
	for j, views := range perServer {
		serverSums[j], err = secshare.AddVectors(views...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("server %d: locally summed %d share vectors\n", j, len(views))
	}

	// Recombination reveals only the aggregate.
	sums, err := secshare.CombineVectors(serverSums)
	if err != nil {
		log.Fatal(err)
	}

	// Sanity against plaintext aggregation.
	want, err := stats.SumCounts(plain...)
	if err != nil {
		log.Fatal(err)
	}
	for l := range want {
		if sums[l] != want[l] {
			//gendpr:allow(secretflow): demo cross-check prints aggregates of the synthetic cohort it just generated
			log.Fatalf("SNP %d: SMC aggregate %d != plaintext %d", l, sums[l], want[l])
		}
	}

	refCounts := cohort.Reference.AlleleCounts()
	total := caseN + int64(cohort.Reference.N())
	kept := 0
	for l := range sums {
		if stats.MAF(sums[l]+refCounts[l], total) >= 0.05 {
			kept++
		}
	}
	fmt.Printf("\nrecombined aggregate: %d SNPs; Phase 1 retains %d — identical to the TEE path\n",
		len(sums), kept)
	fmt.Println("neither server alone (nor the network) ever saw a per-center count.")
}
