// Multicenter: a cross-border federation running the full GenDPR middleware.
//
// Five biocenters in different jurisdictions want to publish GWAS statistics
// for an Age-Related-Macular-Degeneration-style study. GDPR-style rules stop
// them from exporting genomes, so they deploy GenDPR: per-center enclaves
// attest each other over real TCP connections, a leader is elected at
// random, and only encrypted intermediate results cross the wire. The
// example also audits the release with the paper's membership-inference
// adversary: the attack succeeds against a naïve full release and stays
// below the configured power bound against the GenDPR-selected subset.
//
// Run with: go run ./examples/multicenter
package main

import (
	"fmt"
	"log"

	"gendpr"
)

func main() {
	const (
		snps    = 2000
		genomes = 2500
		centers = 5
	)
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(snps, genomes, 7))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(centers)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range shards {
		fmt.Printf("center %d holds %d genomes (never leave its premises)\n", i, s.N())
	}

	cfg := gendpr.DefaultConfig()
	res, err := gendpr.AssessFederatedTCP(shards, cohort.Reference, cfg, gendpr.CollusionPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	fmt.Printf("\nleader elected: center %d\n", res.LeaderIndex)
	fmt.Printf("assessment over TCP: %s in %v\n", rep.Selection, rep.Timings.Total())
	fmt.Printf("leader enclave peak memory: %d KB (no pooled genomes)\n", rep.PeakEnclaveBytes/1024)

	// Every member received the same broadcast selection.
	agreed := 0
	for i, sel := range res.MemberSelections {
		if i == res.LeaderIndex {
			continue
		}
		if sel != nil && sel.Equal(rep.Selection) {
			agreed++
		}
	}
	fmt.Printf("members holding the broadcast selection: %d/%d\n", agreed, centers-1)

	// --- Release audit with the paper's membership-inference adversary ---
	caseCounts := cohort.Case.AlleleCounts()
	caseN := int64(cohort.Case.N())
	refCounts := cohort.Reference.AlleleCounts()
	refN := int64(cohort.Reference.N())
	alpha := cfg.LR.Alpha

	audit := func(label string, cols []int) {
		released := gendpr.SubsetFrequencies(caseCounts, caseN, cols)
		reference := gendpr.SubsetFrequencies(refCounts, refN, cols)
		adv, err := gendpr.NewAdversary(released, reference, cohort.Reference.SelectColumns(cols), alpha)
		if err != nil {
			log.Fatal(err)
		}
		power, err := adv.DetectionPower(cohort.Case.SelectColumns(cols))
		if err != nil {
			log.Fatal(err)
		}
		//gendpr:allow(secretflow): demo prints assessment figures over the synthetic cohort it just generated
		fmt.Printf("%-34s %4d SNPs, attack power %.3f\n", label, len(cols), power)
	}

	fmt.Printf("\nmembership attack audit (attacker FPR %.2f):\n", alpha)
	all := make([]int, snps)
	for i := range all {
		all[i] = i
	}
	audit("naive full release:", all)
	audit("GenDPR safe release:", rep.Selection.Safe)
	fmt.Printf("power bound enforced by the LR-test: %.1f\n", cfg.LR.PowerThreshold)
}
