// Collusion audit: how much of a release becomes vulnerable when federation
// members collude, and what collusion-tolerant GenDPR costs.
//
// Colluding members can subtract their own contributions from published
// statistics and isolate the residual view of the honest members' genomes.
// GenDPR re-evaluates every phase over each subset of presumed-honest
// members and releases only the SNPs safe in all of them. This example
// sweeps the tolerated colluder count f for a 4-member federation and
// reports the release shrinkage and running-time cost (the paper's Table 5
// analysis).
//
// Run with: go run ./examples/collusion
package main

import (
	"fmt"
	"log"
	"time"

	"gendpr"
)

func main() {
	const members = 4
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(1200, 2000, 11))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(members)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gendpr.DefaultConfig()

	base, err := gendpr.AssessDistributed(shards, cohort.Reference, cfg, gendpr.CollusionPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	baseSafe := len(base.Selection.Safe)
	fmt.Printf("federation of %d members, %d SNPs desired\n", members, cohort.SNPs())
	fmt.Printf("without collusion tolerance: %d SNPs releasable\n\n", baseSafe)
	fmt.Printf("%-12s %14s %14s %12s %14s\n", "policy", "safe SNPs", "vulnerable", "released %", "time")

	report := func(label string, policy gendpr.CollusionPolicy) {
		start := time.Now()
		rep, err := gendpr.AssessDistributed(shards, cohort.Reference, cfg, policy)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		safe := len(rep.Selection.Safe)
		pct := 0.0
		if baseSafe > 0 {
			pct = 100 * float64(safe) / float64(baseSafe)
		}
		fmt.Printf("%-12s %14d %14d %11.1f%% %14v\n", label, safe, baseSafe-safe, pct, elapsed)
	}

	for f := 1; f < members; f++ {
		report(fmt.Sprintf("f=%d", f), gendpr.CollusionPolicy{F: f})
	}
	report("f={1..3}", gendpr.CollusionPolicy{Conservative: true})

	fmt.Println("\nvulnerable = SNPs that pass the federation-wide test but fail for")
	fmt.Println("some residual honest subset; GenDPR withholds them from the release.")
}
