// Dynamic releases: a long-running study where genomes keep arriving.
//
// Biocenters recruit continuously, and funders expect updated statistics as
// the cohort grows (the DyPS setting GenDPR builds on). The risk: a SNP that
// was safe to publish over 500 genomes may become identifying over 1,500 —
// but its old statistics are already public. The dynamic manager re-assesses
// each epoch, publishes only currently safe SNPs, and freezes any published
// SNP that later turns unsafe so its statistics are never refreshed (the
// residual exposure is reported, not hidden).
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"gendpr"
)

func main() {
	const (
		snps    = 600
		centers = 3
		total   = 1800
	)
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(snps, total, 21))
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := gendpr.NewDynamicManager(centers, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{})
	if err != nil {
		log.Fatal(err)
	}

	// Recruitment schedule: batches of genomes land at different centers
	// across four epochs.
	type arrival struct {
		center   int
		from, to int
	}
	schedule := [][]arrival{
		{{0, 0, 300}},                       // epoch 1: one center online
		{{1, 300, 700}, {2, 700, 900}},      // epoch 2: the others join
		{{0, 900, 1300}},                    // epoch 3: more recruitment
		{{1, 1300, 1600}, {2, 1600, total}}, // epoch 4: final wave
	}

	for _, wave := range schedule {
		for _, a := range wave {
			batch := cohort.Case.SelectRows(a.from, a.to)
			if err := mgr.AddBatch(a.center, batch); err != nil {
				log.Fatal(err)
			}
		}
		report, err := mgr.Assess()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %5d genomes | safe now %4d | published %4d (+%d new) | frozen %d\n",
			report.Epoch, report.Genomes,
			len(report.Selection.Safe), len(report.Released),
			len(report.NewlyReleased), len(report.Frozen))
	}

	// State survives restarts — sealed with rollback protection.
	blob, err := mgr.ExportState()
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.ImportState(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsealed release state: %d bytes, restored at epoch %d\n", len(blob), mgr.Epoch())
	fmt.Println("frozen SNPs keep their stale public statistics but are never updated;")
	fmt.Println("a rolled-back (stale) state blob is rejected by the enclave's monotonic counter.")
}
