// HE aggregation: running GenDPR's Phase 1 without a TEE.
//
// The paper notes GenDPR "works as well with other privacy-preserving
// schemes, such as fully homomorphic encryption". This example swaps the
// leader enclave's plaintext aggregation of Phase 1 for Paillier additively
// homomorphic encryption: each center encrypts its allele-count vector, an
// UNTRUSTED aggregator multiplies ciphertexts (adding plaintexts underneath)
// without learning any individual contribution, and only the key holder —
// e.g. a data access committee — decrypts the federation-wide aggregate.
// The MAF selection over the decrypted aggregate is byte-identical to the
// TEE path.
//
// Run with: go run ./examples/heaggregation
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"math/big"

	"gendpr"
	"gendpr/internal/paillier"
	"gendpr/internal/stats"
)

func main() {
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(500, 900, 33))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		log.Fatal(err)
	}

	// The data access committee generates the key pair; centers only ever
	// see the public key.
	key, err := paillier.GenerateKey(rand.Reader, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committee key: %d-bit Paillier modulus\n", key.N.BitLen())

	// Each center encrypts its local counts.
	var (
		encrypted [][]*big.Int
		caseN     int64
		plain     [][]int64
	)
	for i, s := range shards {
		counts := s.AlleleCounts()
		plain = append(plain, counts)
		caseN += int64(s.N())
		enc, err := key.EncryptVector(rand.Reader, counts)
		if err != nil {
			log.Fatal(err)
		}
		encrypted = append(encrypted, enc)
		fmt.Printf("center %d: encrypted %d counts (%d genomes) — ciphertexts only\n",
			i, len(enc), s.N())
	}

	// An untrusted party aggregates ciphertexts.
	aggregate, err := key.AggregateVectors(encrypted...)
	if err != nil {
		log.Fatal(err)
	}

	// The committee decrypts only the aggregate.
	sums, err := key.DecryptVector(aggregate)
	if err != nil {
		log.Fatal(err)
	}

	// Sanity: matches the plaintext aggregation the TEE path would do.
	want, err := stats.SumCounts(plain...)
	if err != nil {
		log.Fatal(err)
	}
	for l := range want {
		if sums[l] != want[l] {
			//gendpr:allow(secretflow): demo cross-check prints aggregates of the synthetic cohort it just generated
			log.Fatalf("SNP %d: HE aggregate %d != plaintext %d", l, sums[l], want[l])
		}
	}

	// Phase 1 over the decrypted aggregate.
	refCounts := cohort.Reference.AlleleCounts()
	refN := int64(cohort.Reference.N())
	total := caseN + refN
	kept := 0
	for l := range sums {
		if stats.MAF(sums[l]+refCounts[l], total) >= 0.05 {
			kept++
		}
	}
	fmt.Printf("\naggregate decrypted by the committee only: %d SNPs\n", len(sums))
	fmt.Printf("Phase 1 (MAF >= 0.05) retains %d of %d SNPs — identical to the TEE path\n",
		kept, len(sums))
	fmt.Println("no party other than the committee ever saw a per-center count.")
}
