// Command gendpr-verify checks a published GWAS statistics release: the
// publisher's signature, structural sanity of every row, and prints the top
// associations. Downstream consumers run it before trusting a release.
//
// Usage:
//
//	gendpr-verify -release release.json -key release.json.pub
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"gendpr/internal/release"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-verify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-verify", flag.ContinueOnError)
	var (
		releasePath = fs.String("release", "", "release JSON file (required)")
		keyPath     = fs.String("key", "", "hex Ed25519 verification key file (required)")
		top         = fs.Int("top", 5, "show this many top associations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *releasePath == "" || *keyPath == "" {
		return fmt.Errorf("-release and -key are required")
	}

	raw, err := os.ReadFile(*releasePath)
	if err != nil {
		return err
	}
	doc, err := release.Decode(raw)
	if err != nil {
		return err
	}
	keyHex, err := os.ReadFile(*keyPath)
	if err != nil {
		return err
	}
	pub, err := hex.DecodeString(strings.TrimSpace(string(keyHex)))
	if err != nil {
		return fmt.Errorf("%s: undecodable key: %w", *keyPath, err)
	}
	if err := doc.Verify(pub); err != nil {
		return err
	}
	fmt.Printf("signature: OK (study %q, %d case genomes, %d reference genomes)\n",
		doc.StudyID, doc.CaseCount, doc.ReferenceCount)
	fmt.Printf("assessment: MAF>=%.2f, LD<%.0e, alpha=%.2f, power<%.2f, colluders %s\n",
		doc.Parameters.MAFCutoff, doc.Parameters.LDCutoff,
		doc.Parameters.Alpha, doc.Parameters.PowerThreshold, doc.Parameters.Colluders)
	fmt.Printf("released SNPs: %d\n", len(doc.Statistics))

	for i, s := range doc.Statistics {
		if s.PValue < 0 || s.PValue > 1 || s.CaseFrequency < 0 || s.CaseFrequency > 1 {
			return fmt.Errorf("row %d (SNP %d) fails sanity checks", i, s.SNP)
		}
	}
	fmt.Printf("\ntop %d associations:\n", *top)
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "SNP", "case MAF", "ref MAF", "p-value", "odds ratio")
	for _, s := range doc.TopAssociations(*top) {
		fmt.Printf("%-10s %12.4f %12.4f %12.3e %12.3f\n",
			s.ID, s.CaseFrequency, s.ReferenceFrequency, s.PValue, s.OddsRatio)
	}
	return nil
}
