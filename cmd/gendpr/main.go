// Command gendpr runs one federated GWAS release assessment end to end:
// it generates (or loads) a cohort, splits it across a federation of genome
// data owners, runs the GenDPR middleware with remote attestation and
// encrypted channels, and prints the safe-to-release SNP selection.
//
// Usage:
//
//	gendpr -snps 1000 -genomes 1486 -gdos 3 -f 1
//	gendpr -snps 1000 -genomes 1486 -gdos 5 -tcp
//	gendpr -case case.vcf -reference ref.vcf -gdos 3
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"gendpr"
	"gendpr/internal/cliutil"
	"gendpr/internal/seal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr", flag.ContinueOnError)
	var (
		snps         = fs.Int("snps", 1000, "number of SNP positions to generate")
		genomes      = fs.Int("genomes", 1486, "number of case genomes to generate")
		seed         = fs.Int64("seed", 42, "generator seed")
		gdos         = fs.Int("gdos", 3, "federation size")
		colluders    = fs.Int("f", 0, "tolerated colluding members (0 disables collusion tolerance)")
		conservative = fs.Bool("conservative", false, "tolerate every f in 1..G-1")
		overTCP      = fs.Bool("tcp", false, "run the federation over loopback TCP instead of in-memory channels")
		caseFile     = fs.String("case", "", "case-population VCF file (instead of generating)")
		refFile      = fs.String("reference", "", "reference-panel VCF file (required with -case)")
		releaseOut   = fs.String("release", "", "write the signed GWAS statistics release to this JSON file (key written alongside as <file>.pub)")
		studyID      = fs.String("study", "gendpr-study", "study identifier embedded in the release")
	)
	ff := cliutil.RegisterFaultFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cohort, err := loadOrGenerate(*caseFile, *refFile, *snps, *genomes, *seed)
	if err != nil {
		return err
	}
	shards, err := cohort.Partition(*gdos)
	if err != nil {
		return err
	}
	policy := gendpr.CollusionPolicy{F: *colluders, Conservative: *conservative}
	cfg := gendpr.DefaultConfig()

	fmt.Printf("federation: %d GDOs, %d case genomes, %d reference genomes, %d SNPs\n",
		*gdos, cohort.Case.N(), cohort.Reference.N(), cohort.SNPs())

	opts := ff.Options(*studyID)
	faultAware := opts.RPCTimeout > 0 || opts.DialTimeout > 0 || opts.MaxRetries > 0 ||
		opts.MinQuorum > 0 || opts.Byzantine || opts.AllowRejoin || opts.OnEvent != nil

	var res *gendpr.FederationResult
	switch {
	case *overTCP && faultAware:
		res, err = gendpr.AssessFederatedTCPWithOptions(shards, cohort.Reference, cfg, policy, opts)
	case *overTCP:
		res, err = gendpr.AssessFederatedTCP(shards, cohort.Reference, cfg, policy)
	case faultAware:
		res, err = gendpr.AssessFederatedWithOptions(shards, cohort.Reference, cfg, policy, opts)
	default:
		res, err = gendpr.AssessFederated(shards, cohort.Reference, cfg, policy)
	}
	if err != nil {
		return err
	}

	rep := res.Report
	fmt.Printf("leader: gdo-%d (randomly elected)\n", res.LeaderIndex)
	for _, e := range res.Excluded {
		fmt.Printf("excluded: gdo-%d failed mid-run and was dropped under quorum degradation\n", e)
	}
	for _, r := range res.Rejoined {
		fmt.Printf("rejoined: gdo-%d was excluded mid-run, re-attested, and rejoined at a phase boundary\n", r)
	}
	for _, b := range rep.Blamed {
		fmt.Printf("blamed: member %s, %s during %s (query %s)\n", b.Member, b.Kind, b.Phase, b.Query)
	}
	fmt.Printf("selection: %s\n", rep.Selection)
	fmt.Printf("residual identification power: %.3f\n", rep.Selection.Power)
	fmt.Printf("combinations evaluated: %d\n", rep.Combinations)
	fmt.Printf("leader enclave peak memory: %d KB\n", rep.PeakEnclaveBytes/1024)
	t := rep.Timings
	fmt.Printf("timings: aggregation %v, indexing %v, LD %v, LR-test %v, total %v\n",
		t.DataAggregation, t.Indexing, t.LD, t.LRTest, t.Total())
	if n := len(rep.Selection.Safe); n > 0 {
		max := n
		if max > 12 {
			max = 12
		}
		fmt.Printf("first safe SNPs: %v", rep.Selection.Safe[:max])
		if n > max {
			fmt.Printf(" … (%d total)", n)
		}
		fmt.Println()
	}
	if *releaseOut != "" {
		if err := writeRelease(*releaseOut, *studyID, cohort, rep, cfg, policy); err != nil {
			return err
		}
	}
	return nil
}

// writeRelease builds, signs and stores the open-access statistics release,
// plus the verification key next to it.
func writeRelease(path, studyID string, cohort *gendpr.Cohort, rep *gendpr.Report, cfg gendpr.Config, policy gendpr.CollusionPolicy) error {
	doc, err := gendpr.BuildRelease(studyID, cohort, rep, cfg, policy)
	if err != nil {
		return err
	}
	key, err := seal.NewSigningKey()
	if err != nil {
		return err
	}
	if err := doc.Sign(key); err != nil {
		return err
	}
	encoded, err := doc.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, encoded, 0o644); err != nil {
		return err
	}
	pubPath := path + ".pub"
	if err := os.WriteFile(pubPath, []byte(hex.EncodeToString(key.Public())+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Printf("release: %d SNP statistics written to %s (verification key %s)\n",
		len(doc.Statistics), path, pubPath)
	return nil
}

func loadOrGenerate(caseFile, refFile string, snps, genomes int, seed int64) (*gendpr.Cohort, error) {
	if caseFile == "" && refFile == "" {
		return gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(snps, genomes, seed))
	}
	if caseFile == "" || refFile == "" {
		return nil, fmt.Errorf("-case and -reference must be given together")
	}
	caseM, err := cliutil.ReadVCF(caseFile)
	if err != nil {
		return nil, err
	}
	refM, err := cliutil.ReadVCF(refFile)
	if err != nil {
		return nil, err
	}
	cohort := &gendpr.Cohort{Case: caseM, Reference: refM}
	if err := cohort.Validate(); err != nil {
		return nil, err
	}
	return cohort, nil
}
