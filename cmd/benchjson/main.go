// Command benchjson records `go test -bench` output into a benchmark
// trajectory file (e.g. BENCH_phase3.json). It reads benchmark output on
// stdin, parses the result lines, and appends one labelled entry to the
// JSON trajectory — replacing a previous entry with the same label, so
// re-recording a run is idempotent.
//
// Usage (normally driven by scripts/bench.sh):
//
//	go test -run '^$' -bench Phase3 . | benchjson -label pr2 -out BENCH_phase3.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gendpr/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		label     = fs.String("label", "", "entry label (required; same label replaces the prior entry)")
		out       = fs.String("out", "BENCH_phase3.json", "trajectory file to update")
		name      = fs.String("benchmark", "phase3", "trajectory benchmark name")
		scale     = fs.Float64("scale", 0, "GENDPR_BENCH_SCALE the run used (recorded as metadata)")
		benchtime = fs.String("benchtime", "", "-benchtime the run used (recorded as metadata)")
		note      = fs.String("note", "", "free-form note recorded with the entry")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *label == "" {
		return fmt.Errorf("-label is required")
	}

	results, err := bench.ParseBenchOutput(os.Stdin)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}

	existing, err := os.ReadFile(*out)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	entry := bench.Entry{
		Label:     *label,
		Date:      time.Now().UTC().Format("2006-01-02"),
		Scale:     *scale,
		BenchTime: *benchtime,
		Note:      *note,
		Results:   results,
	}
	merged, err := bench.MergeTrajectory(existing, *name, entry)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, merged, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d results as %q in %s\n", len(results), *label, *out)
	return nil
}
