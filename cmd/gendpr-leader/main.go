// Command gendpr-leader coordinates a multi-process GenDPR assessment: it
// loads the leader's own shard and the public reference panel, dials each
// member node, attests the channels, drives the three-phase protocol, and
// prints the safe-to-release selection.
//
// See cmd/gendpr-node for the full deployment walkthrough.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
	"gendpr/internal/vcf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-leader:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-leader", flag.ContinueOnError)
	var (
		members      = fs.String("members", "", "comma-separated member addresses (required)")
		caseFile     = fs.String("case", "", "leader's private case-shard VCF (required)")
		refFile      = fs.String("reference", "", "public reference-panel VCF (required)")
		authority    = fs.String("authority", "", "attestation-authority seed file (required)")
		colluders    = fs.Int("f", 0, "tolerated colluding members")
		conservative = fs.Bool("conservative", false, "tolerate every f in 1..G-1")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *members == "" || *caseFile == "" || *refFile == "" || *authority == "" {
		return fmt.Errorf("-members, -case, -reference and -authority are required")
	}

	shard, err := readVCF(*caseFile)
	if err != nil {
		return err
	}
	reference, err := readVCF(*refFile)
	if err != nil {
		return err
	}
	auth, err := loadAuthority(*authority)
	if err != nil {
		return err
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	leader, err := federation.NewLeader("leader", shard, platform, auth)
	if err != nil {
		return err
	}

	addrs := strings.Split(*members, ",")
	conns := make([]transport.Conn, 0, len(addrs))
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for _, addr := range addrs {
		conn, err := transport.Dial(strings.TrimSpace(addr))
		if err != nil {
			return err
		}
		conns = append(conns, conn)
	}
	fmt.Printf("leader: %d members connected, %d local genomes, %d reference genomes, %d SNPs\n",
		len(conns), shard.N(), reference.N(), shard.L())

	report, err := leader.Run(conns, reference, core.DefaultConfig(),
		core.CollusionPolicy{F: *colluders, Conservative: *conservative})
	if err != nil {
		return err
	}
	fmt.Printf("selection: %s\n", report.Selection)
	fmt.Printf("residual identification power: %.3f\n", report.Selection.Power)
	fmt.Printf("combinations evaluated: %d\n", report.Combinations)
	t := report.Timings
	fmt.Printf("timings: aggregation %v, indexing %v, LD %v, LR-test %v, total %v\n",
		t.DataAggregation, t.Indexing, t.LD, t.LRTest, t.Total())
	return nil
}

func readVCF(path string) (*genome.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := vcf.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func loadAuthority(path string) (*attest.Authority, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("%s: undecodable authority seed: %w", path, err)
	}
	return attest.NewAuthorityFromSeed(seed)
}
