// Command gendpr-leader coordinates a multi-process GenDPR assessment: it
// loads the leader's own shard and the public reference panel, dials each
// member node, attests the channels, drives the three-phase protocol, and
// prints the safe-to-release selection.
//
// With -checkpoint-dir the leader snapshots every phase boundary to disk; a
// run interrupted by a crash or SIGINT/SIGTERM can then be continued by a
// (possibly re-elected) leader started with -resume and the same member list,
// which replays the completed phases from the snapshot instead of recomputing
// them.
//
// See cmd/gendpr-node for the full deployment walkthrough.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"gendpr/internal/checkpoint"
	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
	"gendpr/internal/vcf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-leader:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-leader", flag.ContinueOnError)
	var (
		members      = fs.String("members", "", "comma-separated member addresses (required)")
		caseFile     = fs.String("case", "", "leader's private case-shard VCF (required)")
		refFile      = fs.String("reference", "", "public reference-panel VCF (required)")
		authority    = fs.String("authority", "", "attestation-authority seed file (required)")
		colluders    = fs.Int("f", 0, "tolerated colluding members")
		conservative = fs.Bool("conservative", false, "tolerate every f in 1..G-1")
		rpcTimeout   = fs.Duration("rpc-timeout", 0, "deadline per member exchange (0 waits forever)")
		dialTimeout  = fs.Duration("dial-timeout", 0, "deadline per member (re)connection (0 uses the transport default)")
		retries      = fs.Int("retries", 0, "reconnect-and-retry attempts per failed member exchange")
		minQuorum    = fs.Int("min-quorum", 0, "minimum surviving GDOs (leader included) to finish without failed members; 0 aborts on any failure")
		ckptDir      = fs.String("checkpoint-dir", "", "directory for phase-boundary snapshots; an interrupted run can be continued with -resume")
		resume       = fs.Bool("resume", false, "seed the run from a compatible snapshot left in -checkpoint-dir by an interrupted leader")
		byzantine    = fs.Bool("byzantine", false, "quarantine members whose answers fail plausibility checks or change across deliveries, with blame records, instead of aborting")
		allowRejoin  = fs.Bool("allow-rejoin", false, "let a crash-failed member re-attest and rejoin at the next phase boundary (equivocators stay barred)")
		logJSON      = fs.Bool("log-json", false, "emit one-line JSON member health-transition events on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *members == "" || *caseFile == "" || *refFile == "" || *authority == "" {
		return fmt.Errorf("-members, -case, -reference and -authority are required")
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}

	shard, err := readVCF(*caseFile)
	if err != nil {
		return err
	}
	reference, err := readVCF(*refFile)
	if err != nil {
		return err
	}
	auth, err := loadAuthority(*authority)
	if err != nil {
		return err
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	leader, err := federation.NewLeader("leader", shard, platform, auth)
	if err != nil {
		return err
	}

	opts := federation.RunOptions{
		RPCTimeout:  *rpcTimeout,
		DialTimeout: *dialTimeout,
		MaxRetries:  *retries,
		MinQuorum:   *minQuorum,
		Byzantine:   *byzantine,
		AllowRejoin: *allowRejoin,
	}
	if *logJSON {
		opts.OnEvent = jsonEventLogger("gendpr-leader")
	}
	if *ckptDir != "" {
		store, err := checkpoint.NewFileStore(*ckptDir)
		if err != nil {
			return err
		}
		if !*resume {
			// Without -resume a leftover snapshot is stale by declaration:
			// start the run from scratch rather than silently continuing it.
			if err := store.Clear(); err != nil {
				return err
			}
		}
		opts.Checkpoints = store
	}
	dt := *dialTimeout
	if dt <= 0 {
		dt = transport.DefaultDialTimeout
	}
	addrs := strings.Split(*members, ",")
	links := make([]federation.MemberLink, 0, len(addrs))
	defer func() {
		for _, l := range links {
			_ = l.Conn.Close()
		}
	}()
	for _, raw := range addrs {
		addr := strings.TrimSpace(raw)
		conn, err := transport.DialTimeout(addr, dt)
		if err != nil {
			return err
		}
		links = append(links, federation.MemberLink{
			Conn: conn,
			Name: addr,
			Redial: func() (transport.Conn, error) {
				return transport.DialTimeout(addr, dt)
			},
		})
	}
	fmt.Printf("leader: %d members connected, %d local genomes, %d reference genomes, %d SNPs\n",
		len(links), shard.N(), reference.N(), shard.L())

	// SIGINT/SIGTERM cancels the run: in-flight exchanges are interrupted and
	// the assessment stops at the next boundary, leaving the checkpoint (if
	// any) behind for a -resume restart.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := leader.RunLinksContext(ctx, links, reference, core.DefaultConfig(),
		core.CollusionPolicy{F: *colluders, Conservative: *conservative}, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckptDir != "" {
			return fmt.Errorf("interrupted; completed phases are snapshotted in %s — rerun with -resume to continue: %w", *ckptDir, err)
		}
		return err
	}
	if report.Resumed {
		fmt.Printf("resumed from checkpoint in %s\n", *ckptDir)
	}
	if report.CorruptionRecovered {
		fmt.Printf("checkpoint store recovered from a corrupt snapshot (quarantined alongside the live generations)\n")
	}
	fmt.Printf("selection: %s\n", report.Selection)
	for _, e := range report.Excluded {
		// Provider index 0 is the leader's own shard; members start at 1.
		fmt.Printf("excluded: member %s failed mid-run and was dropped under quorum degradation\n", addrs[e-1])
	}
	for _, r := range report.Rejoined {
		fmt.Printf("rejoined: member %s was excluded mid-run, re-attested, and rejoined at a phase boundary\n", addrs[r-1])
	}
	for _, b := range report.Blamed {
		fmt.Printf("blamed: member %s, %s during %s (query %s, evidence %s/%s)\n",
			b.Member, b.Kind, b.Phase, b.Query, digestPrefix(b.Prior), digestPrefix(b.Observed))
	}
	fmt.Printf("residual identification power: %.3f\n", report.Selection.Power)
	fmt.Printf("combinations evaluated: %d\n", report.Combinations)
	t := report.Timings
	fmt.Printf("timings: aggregation %v, indexing %v, LD %v, LR-test %v, total %v\n",
		t.DataAggregation, t.Indexing, t.LD, t.LRTest, t.Total())
	return nil
}

// jsonEventLogger returns a RunOptions.OnEvent sink that writes one JSON
// object per line to stderr, keeping stdout for the result report.
func jsonEventLogger(run string) func(federation.MemberEvent) {
	var mu sync.Mutex
	enc := json.NewEncoder(os.Stderr)
	return func(e federation.MemberEvent) {
		mu.Lock()
		defer mu.Unlock()
		_ = enc.Encode(struct {
			Event      string `json:"event"`
			Run        string `json:"run"`
			Member     string `json:"member"`
			Transition string `json:"transition"`
			Phase      string `json:"phase,omitempty"`
		}{"member-health", run, e.Member, e.Event, e.Phase})
	}
}

// digestPrefix renders blame evidence compactly; the digests are hashes of
// wire payloads, never the payloads themselves.
func digestPrefix(d []byte) string {
	if len(d) == 0 {
		return "-"
	}
	if len(d) > 4 {
		d = d[:4]
	}
	return hex.EncodeToString(d)
}

func readVCF(path string) (*genome.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := vcf.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func loadAuthority(path string) (*attest.Authority, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("%s: undecodable authority seed: %w", path, err)
	}
	return attest.NewAuthorityFromSeed(seed)
}
