// Command gendpr-leader coordinates a multi-process GenDPR assessment: it
// loads the leader's own shard and the public reference panel, dials each
// member node, attests the channels, drives the three-phase protocol, and
// prints the safe-to-release selection.
//
// With -checkpoint-dir the leader snapshots every phase boundary to disk; a
// run interrupted by a crash or SIGINT/SIGTERM can then be continued by a
// (possibly re-elected) leader started with -resume and the same member list,
// which replays the completed phases from the snapshot instead of recomputing
// them.
//
// With -serve the leader becomes an always-on assessment daemon instead of a
// one-shot runner: it exposes an HTTP API (POST /assess, GET /stats, GET
// /healthz) over the same attested federation, admits concurrent requests
// under bounded queueing and per-tenant quotas, deduplicates identical
// in-flight requests, resumes identical repeats from retained checkpoints,
// and drains gracefully on SIGINT/SIGTERM — finishing or checkpointing every
// in-flight run before exiting.
//
// See cmd/gendpr-node for the full deployment walkthrough and cmd/gendpr-load
// for the daemon's load harness.
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/cliutil"
	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/service"
	"gendpr/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-leader:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-leader", flag.ContinueOnError)
	var (
		members      = fs.String("members", "", "comma-separated member addresses (required)")
		caseFile     = fs.String("case", "", "leader's private case-shard VCF (required)")
		refFile      = fs.String("reference", "", "public reference-panel VCF (required)")
		authority    = fs.String("authority", "", "attestation-authority seed file (required)")
		colluders    = fs.Int("f", 0, "tolerated colluding members")
		conservative = fs.Bool("conservative", false, "tolerate every f in 1..G-1")
		ckptDir      = fs.String("checkpoint-dir", "", "directory for phase-boundary snapshots; an interrupted run can be continued with -resume")
		resume       = fs.Bool("resume", false, "seed the run from a compatible snapshot left in -checkpoint-dir by an interrupted leader (daemon mode: keep retained snapshots)")

		serveAddr   = fs.String("serve", "", "run as an always-on assessment daemon on this HTTP address instead of a one-shot assessment")
		slots       = fs.Int("slots", 1, "daemon: concurrent federation runs")
		queueDepth  = fs.Int("queue-depth", 16, "daemon: bounded admission-queue depth; a full queue sheds immediately")
		tenantRate  = fs.Float64("tenant-rate", 0, "daemon: per-tenant sustained admissions per second (0 disables rate quotas)")
		tenantBurst = fs.Int("tenant-burst", 0, "daemon: per-tenant admission burst (0 derives from -tenant-rate)")
		tenantConc  = fs.Int("tenant-concurrency", 0, "daemon: per-tenant cap on admitted-but-unfinished requests (0 disables)")
		defDeadline = fs.Duration("default-deadline", 0, "daemon: deadline for requests that do not carry one (0 leaves them unbounded)")
		drainGrace  = fs.Duration("drain-grace", 10*time.Second, "daemon: how long a drain lets in-flight runs finish before canceling them at the next phase boundary")
	)
	ff := cliutil.RegisterFaultFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *members == "" || *caseFile == "" || *refFile == "" || *authority == "" {
		return fmt.Errorf("-members, -case, -reference and -authority are required")
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}

	shard, err := cliutil.ReadVCF(*caseFile)
	if err != nil {
		return err
	}
	reference, err := cliutil.ReadVCF(*refFile)
	if err != nil {
		return err
	}
	auth, err := cliutil.LoadAuthority(*authority)
	if err != nil {
		return err
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	leader, err := federation.NewLeader("leader", shard, platform, auth)
	if err != nil {
		return err
	}

	opts := ff.Options("gendpr-leader")
	var store *checkpoint.FileStore
	if *ckptDir != "" {
		store, err = checkpoint.NewFileStore(*ckptDir)
		if err != nil {
			return err
		}
		if !*resume {
			// Without -resume leftover snapshots are stale by declaration:
			// remove the root snapshot and every retained daemon namespace
			// rather than silently continuing from them.
			if err := store.ClearAll(); err != nil {
				return err
			}
		}
	}
	addrs := make([]string, 0)
	for _, raw := range strings.Split(*members, ",") {
		addrs = append(addrs, strings.TrimSpace(raw))
	}
	policy := core.CollusionPolicy{F: *colluders, Conservative: *conservative}

	if *serveAddr != "" {
		cfg := service.Config{
			Slots:             *slots,
			QueueDepth:        *queueDepth,
			TenantRate:        *tenantRate,
			TenantBurst:       *tenantBurst,
			TenantConcurrency: *tenantConc,
			DefaultDeadline:   *defDeadline,
			DrainGrace:        *drainGrace,
		}
		if store != nil {
			cfg.Checkpoints = store
		}
		if ff.LogJSON {
			cfg.OnEvent = cliutil.ServiceEventLogger("gendpr-leader")
		}
		return runDaemon(*serveAddr, leader, addrs, reference, opts, cfg)
	}
	return runOnce(leader, shard, reference, addrs, policy, opts, store, *ckptDir)
}

// runOnce drives a single assessment, exactly as the pre-daemon CLI did.
func runOnce(leader *federation.Leader, shard, reference *genome.Matrix, addrs []string, policy core.CollusionPolicy, opts federation.RunOptions, store *checkpoint.FileStore, ckptDir string) error {
	if store != nil {
		opts.Checkpoints = store
	}
	dt := opts.DialTimeout
	if dt <= 0 {
		dt = transport.DefaultDialTimeout
	}
	links := make([]federation.MemberLink, 0, len(addrs))
	defer func() {
		for _, l := range links {
			_ = l.Conn.Close()
		}
	}()
	for _, addr := range addrs {
		addr := addr
		conn, err := transport.DialTimeout(addr, dt)
		if err != nil {
			return err
		}
		links = append(links, federation.MemberLink{
			Conn: conn,
			Name: addr,
			Redial: func() (transport.Conn, error) {
				return transport.DialTimeout(addr, dt)
			},
		})
	}
	fmt.Printf("leader: %d members connected, %d local genomes, %d reference genomes, %d SNPs\n",
		len(links), shard.N(), reference.N(), shard.L())

	// SIGINT/SIGTERM cancels the run: in-flight exchanges are interrupted and
	// the assessment stops at the next boundary, leaving the checkpoint (if
	// any) behind for a -resume restart.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := leader.RunLinksContext(ctx, links, reference, core.DefaultConfig(), policy, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) && ckptDir != "" {
			return fmt.Errorf("interrupted; completed phases are snapshotted in %s — rerun with -resume to continue: %w", ckptDir, err)
		}
		return err
	}
	if report.Resumed {
		fmt.Printf("resumed from checkpoint in %s\n", ckptDir)
	}
	if report.CorruptionRecovered {
		fmt.Printf("checkpoint store recovered from a corrupt snapshot (quarantined alongside the live generations)\n")
	}
	fmt.Printf("selection: %s\n", report.Selection)
	for _, e := range report.Excluded {
		// Provider index 0 is the leader's own shard; members start at 1.
		fmt.Printf("excluded: member %s failed mid-run and was dropped under quorum degradation\n", addrs[e-1])
	}
	for _, r := range report.Rejoined {
		fmt.Printf("rejoined: member %s was excluded mid-run, re-attested, and rejoined at a phase boundary\n", addrs[r-1])
	}
	for _, b := range report.Blamed {
		fmt.Printf("blamed: member %s, %s during %s (query %s, evidence %s/%s)\n",
			b.Member, b.Kind, b.Phase, b.Query, digestPrefix(b.Prior), digestPrefix(b.Observed))
	}
	fmt.Printf("residual identification power: %.3f\n", report.Selection.Power)
	fmt.Printf("combinations evaluated: %d\n", report.Combinations)
	t := report.Timings
	fmt.Printf("timings: aggregation %v, indexing %v, LD %v, LR-test %v, total %v\n",
		t.DataAggregation, t.Indexing, t.LD, t.LRTest, t.Total())
	return nil
}

// runDaemon serves assessments over the federation until SIGINT/SIGTERM, then
// drains: admission stops, queued requests are shed with a structured
// rejection, in-flight runs get the grace period to finish (or are canceled
// at their next phase boundary, checkpoint saved), and every admitted request
// resolves before the process exits.
func runDaemon(addr string, leader *federation.Leader, addrs []string, reference *genome.Matrix, opts federation.RunOptions, cfg service.Config) error {
	cfg.Backend = &service.FederationBackend{
		Leader:      leader,
		Dial:        service.NewTCPDialer(addrs, opts.DialTimeout),
		Reference:   reference,
		MemberNames: addrs,
		Options:     opts,
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("daemon: listening on %s (%d members, %d slots, queue %d)\n",
		ln.Addr(), len(addrs), cfg.Slots, cfg.QueueDepth)

	httpSrv := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-served:
		return err
	case <-ctx.Done():
	}
	// Re-arm before releasing the first registration so there is no window in
	// which a repeated signal falls back to the default disposition and kills
	// the process: during drain it instead cuts the grace period short,
	// canceling in-flight runs at their next phase boundary (checkpoint
	// saved).
	drainCtx, stopDrain := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopDrain()
	stop()

	fmt.Println("daemon: draining — admission stopped, waiting for in-flight runs (signal again to cancel them now)")
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)

	st := srv.Stats()
	fmt.Printf("daemon: drained — admitted %d, completed %d, failed %d, shed %d (post-admission %d), coalesced %d, reused %d\n",
		st.Admitted, st.Completed, st.Failed, st.TotalShed(), st.ShedAfterAdmission, st.Coalesced, st.Reused)
	if st.Latency.Count > 0 {
		fmt.Printf("daemon: latency p50 %v, p95 %v, p99 %v over %d completed\n",
			st.Latency.P50, st.Latency.P95, st.Latency.P99, st.Latency.Count)
	}
	return nil
}

// digestPrefix renders blame evidence compactly; the digests are hashes of
// wire payloads, never the payloads themselves.
func digestPrefix(d []byte) string {
	if len(d) == 0 {
		return "-"
	}
	if len(d) > 4 {
		d = d[:4]
	}
	return hex.EncodeToString(d)
}
