package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gendpr/internal/federation"
	"gendpr/internal/transport"
)

// scriptedAcceptor plays back a fixed sequence of Accept outcomes, then
// reports a closed listener forever.
type scriptedAcceptor struct {
	mu    sync.Mutex
	steps []error
	calls int
}

func (s *scriptedAcceptor) Accept() (transport.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.calls > len(s.steps) {
		return nil, fmt.Errorf("transport: accept: %w", net.ErrClosed)
	}
	return nil, s.steps[s.calls-1]
}

func (s *scriptedAcceptor) accepts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// TestServeAssessmentsRetriesTransientAccept is the regression test for the
// accept loop: transient Accept errors (resource exhaustion, aborted
// handshakes) must be retried with backoff instead of killing the node, and
// a closed listener must end the loop cleanly.
func TestServeAssessmentsRetriesTransientAccept(t *testing.T) {
	transient := errors.New("accept tcp: too many open files")
	acc := &scriptedAcceptor{steps: []error{transient, transient}}
	var retries int
	err := serveAssessments(context.Background(), nil, acc, 1, federation.ServeOptions{}, func(format string, args ...any) {
		if len(args) > 0 {
			if e, ok := args[0].(error); ok && errors.Is(e, transient) {
				retries++
			}
		}
	})
	if err != nil {
		t.Fatalf("serveAssessments = %v, want nil on listener close", err)
	}
	if got := acc.accepts(); got != 3 {
		t.Errorf("Accept called %d times, want 3 (two transient retries, then closed)", got)
	}
	if retries != 2 {
		t.Errorf("logged %d transient retries, want 2", retries)
	}
}

// TestServeAssessmentsStopsOnCancel: a canceled context ends the loop
// cleanly even while Accept keeps failing.
func TestServeAssessmentsStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	acc := &scriptedAcceptor{steps: []error{errors.New("accept: transient")}}
	done := make(chan error, 1)
	go func() {
		done <- serveAssessments(ctx, nil, acc, 1, federation.ServeOptions{}, func(string, ...any) {})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveAssessments = %v, want nil on cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveAssessments did not stop on a canceled context")
	}
}

// TestServeAssessmentsBackoffIsBounded: repeated transient failures must not
// grow the delay past the cap (the doubling would otherwise overflow into
// effectively-infinite sleeps).
func TestServeAssessmentsBackoffIsBounded(t *testing.T) {
	b := acceptBackoffBase
	for i := 0; i < 20; i++ {
		if b *= 2; b > acceptBackoffMax {
			b = acceptBackoffMax
		}
	}
	if b != acceptBackoffMax {
		t.Fatalf("backoff after 20 failures = %v, want capped at %v", b, acceptBackoffMax)
	}
}
