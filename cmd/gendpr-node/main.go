// Command gendpr-node runs one genome data owner as a standalone process:
// it loads the member's private shard, listens for the leader's connection,
// performs mutual remote attestation, and serves encrypted intermediate
// results for one assessment.
//
// All processes of a deployment must share the attestation authority seed
// (see cmd/gendpr-authority).
//
// The node shuts down cleanly on SIGINT/SIGTERM: a parked serving loop is
// interrupted mid-wait rather than lingering until the next leader message.
//
// Usage:
//
//	gendpr-authority -out authority.seed
//	gendpr-node -listen 127.0.0.1:7001 -case shard1.vcf -authority authority.seed
//	gendpr-node -listen 127.0.0.1:7002 -case shard2.vcf -authority authority.seed
//	gendpr-leader -members 127.0.0.1:7001,127.0.0.1:7002 \
//	    -case shard0.vcf -reference ref.vcf -authority authority.seed
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"gendpr/internal/cliutil"
	"gendpr/internal/enclave"
	"gendpr/internal/federation"
	"gendpr/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-node", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "address to accept the leader connection on")
		caseFile  = fs.String("case", "", "private case-shard VCF file (required)")
		authority = fs.String("authority", "", "attestation-authority seed file (required)")
		id        = fs.String("id", "gdo", "member identifier for logs")
		serves    = fs.Int("serves", 1, "number of assessments to serve before exiting; 0 serves forever, with concurrent sessions (daemon deployments)")
		idle      = fs.Duration("idle-timeout", 0, "per-session bound on waiting for the next leader message (0 waits forever)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *caseFile == "" || *authority == "" {
		return fmt.Errorf("-case and -authority are required")
	}

	shard, err := cliutil.ReadVCF(*caseFile)
	if err != nil {
		return err
	}
	auth, err := cliutil.LoadAuthority(*authority)
	if err != nil {
		return err
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	member, err := federation.NewMember(*id, shard, platform, auth)
	if err != nil {
		return err
	}

	listener, err := transport.Listen(*listen)
	if err != nil {
		return err
	}
	defer listener.Close()
	fmt.Printf("%s: holding %d genomes x %d SNPs, listening on %s\n",
		*id, shard.N(), shard.L(), listener.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A signal must also unblock the Accept call itself, which has no
	// context of its own: close the listener when the context falls.
	go func() {
		<-ctx.Done()
		_ = listener.Close()
	}()

	return serveAssessments(ctx, member, listener, *serves, federation.ServeOptions{IdleTimeout: *idle}, func(format string, args ...any) {
		fmt.Printf("%s: "+format+"\n", append([]any{*id}, args...)...)
	})
}

// acceptor is the slice of transport.Listener the serving loop needs; tests
// substitute a scripted implementation.
type acceptor interface {
	Accept() (transport.Conn, error)
}

// Accept-retry backoff bounds: transient listener errors (EMFILE, ECONNABORTED
// and friends) are retried with doubling delays instead of killing the node.
const (
	acceptBackoffBase = 50 * time.Millisecond
	acceptBackoffMax  = 2 * time.Second
)

// serveAssessments is the node's serving loop. Only a clean shutdown consumes
// a serve slot: a session that dies on a transport failure is treated as an
// interrupted run whose leader may redial (the leader retries over a fresh
// attested connection), so the node logs it and keeps accepting. Accept
// errors are retried with capped exponential backoff; a closed listener — the
// shutdown path — ends the loop cleanly, as does context cancellation.
func serveAssessments(ctx context.Context, member *federation.Member, l acceptor, serves int, opts federation.ServeOptions, logf func(format string, args ...any)) error {
	if serves <= 0 {
		return serveConcurrently(ctx, member, l, opts, logf)
	}
	backoff := acceptBackoffBase
	for i := 0; i < serves; {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || (ctx != nil && ctx.Err() != nil) {
				// Listener closed underneath us: the shutdown path.
				return nil
			}
			logf("accept failed (%v), retrying in %v", err, backoff)
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffBase
		err = member.ServeContext(ctx, conn, opts)
		_ = conn.Close()
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				logf("shutting down: %v", ctx.Err())
				return nil
			}
			logf("session ended early (%v), awaiting reconnect", err)
			continue
		}
		i++
		if sel := member.LastResult(); sel != nil {
			logf("assessment complete, broadcast selection %s", sel)
		} else {
			logf("assessment complete")
		}
	}
	return nil
}

// serveConcurrently is the -serves 0 loop: accept forever and serve each
// leader connection in its own goroutine, so a daemon leader with several
// federation slots can drive overlapping assessments through one node.
// Member session state is per-connection and mutex-guarded, which makes
// overlapping sessions safe. Shutdown closes the listener (ending the accept
// loop) and waits for live sessions to observe the canceled context.
func serveConcurrently(ctx context.Context, member *federation.Member, l acceptor, opts federation.ServeOptions, logf func(format string, args ...any)) error {
	var sessions sync.WaitGroup
	defer sessions.Wait()
	backoff := acceptBackoffBase
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || (ctx != nil && ctx.Err() != nil) {
				return nil
			}
			logf("accept failed (%v), retrying in %v", err, backoff)
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffBase
		sessions.Add(1)
		go func(conn transport.Conn) {
			defer sessions.Done()
			err := member.ServeContext(ctx, conn, opts)
			_ = conn.Close()
			switch {
			case ctx != nil && ctx.Err() != nil:
				logf("session ended at shutdown: %v", ctx.Err())
			case err != nil:
				logf("session ended early (%v), awaiting reconnect", err)
			default:
				if sel := member.LastResult(); sel != nil {
					logf("assessment complete, broadcast selection %s", sel)
				} else {
					logf("assessment complete")
				}
			}
		}(conn)
	}
}

// sleepCtx sleeps for d unless the context is canceled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
