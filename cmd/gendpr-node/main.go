// Command gendpr-node runs one genome data owner as a standalone process:
// it loads the member's private shard, listens for the leader's connection,
// performs mutual remote attestation, and serves encrypted intermediate
// results for one assessment.
//
// All processes of a deployment must share the attestation authority seed
// (see cmd/gendpr-authority).
//
// Usage:
//
//	gendpr-authority -out authority.seed
//	gendpr-node -listen 127.0.0.1:7001 -case shard1.vcf -authority authority.seed
//	gendpr-node -listen 127.0.0.1:7002 -case shard2.vcf -authority authority.seed
//	gendpr-leader -members 127.0.0.1:7001,127.0.0.1:7002 \
//	    -case shard0.vcf -reference ref.vcf -authority authority.seed
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
	"gendpr/internal/vcf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-node", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "address to accept the leader connection on")
		caseFile  = fs.String("case", "", "private case-shard VCF file (required)")
		authority = fs.String("authority", "", "attestation-authority seed file (required)")
		id        = fs.String("id", "gdo", "member identifier for logs")
		serves    = fs.Int("serves", 1, "number of assessments to serve before exiting")
		idle      = fs.Duration("idle-timeout", 0, "per-session bound on waiting for the next leader message (0 waits forever)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *caseFile == "" || *authority == "" {
		return fmt.Errorf("-case and -authority are required")
	}

	shard, err := readVCF(*caseFile)
	if err != nil {
		return err
	}
	auth, err := loadAuthority(*authority)
	if err != nil {
		return err
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	member, err := federation.NewMember(*id, shard, platform, auth)
	if err != nil {
		return err
	}

	listener, err := transport.Listen(*listen)
	if err != nil {
		return err
	}
	defer listener.Close()
	fmt.Printf("%s: holding %d genomes x %d SNPs, listening on %s\n",
		*id, shard.N(), shard.L(), listener.Addr())

	// Only a clean shutdown consumes a serve slot: a session that dies on a
	// transport failure is treated as an interrupted run whose leader may
	// redial (the leader retries over a fresh attested connection), so the
	// node logs it and keeps accepting.
	for i := 0; i < *serves; {
		conn, err := listener.Accept()
		if err != nil {
			return err
		}
		err = member.ServeWithOptions(conn, federation.ServeOptions{IdleTimeout: *idle})
		_ = conn.Close()
		if err != nil {
			fmt.Printf("%s: session ended early (%v), awaiting reconnect\n", *id, err)
			continue
		}
		i++
		if sel := member.LastResult(); sel != nil {
			fmt.Printf("%s: assessment complete, broadcast selection %s\n", *id, sel)
		} else {
			fmt.Printf("%s: assessment complete\n", *id)
		}
	}
	return nil
}

func readVCF(path string) (*genome.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := vcf.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func loadAuthority(path string) (*attest.Authority, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("%s: undecodable authority seed: %w", path, err)
	}
	return attest.NewAuthorityFromSeed(seed)
}
