package main

import (
	"encoding/json"
	"reflect"
	"testing"

	"gendpr/internal/analysis"
)

// TestSARIFRoundTrip encodes a findings list as SARIF, decodes it back, and
// checks every field of every finding survives — the SARIF artifact must
// carry exactly the information of the JSON report.
func TestSARIFRoundTrip(t *testing.T) {
	analyzers := analysis.DefaultAnalyzers()
	findings := []jsonFinding{
		{File: "internal/service/backend.go", Line: 172, Column: 5, Analyzer: "goroleak",
			Message: "goroutine is not joinable and has no termination signal"},
		{File: "internal/core/members.go", Line: 279, Column: 12, Analyzer: "lockorder",
			Message: "lock mu is acquired while a lock of the same identity is already held"},
		{File: "internal/transport/transport.go", Line: 42, Column: 2, Analyzer: "directive",
			Message: "gendpr:allow directive needs a justification"},
	}

	data, err := json.Marshal(sarifFromFindings(analyzers, findings))
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gendpr-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}

	// Every finding's ruleId must resolve against the declared rules.
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range analyzers {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %s missing from SARIF rules", a.Name)
		}
	}

	var back []jsonFinding
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q not declared in rules", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result level = %q, want error", res.Level)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		back = append(back, jsonFinding{
			File:     loc.ArtifactLocation.URI,
			Line:     loc.Region.StartLine,
			Column:   loc.Region.StartColumn,
			Analyzer: res.RuleID,
			Message:  res.Message.Text,
		})
	}
	if !reflect.DeepEqual(findings, back) {
		t.Errorf("round trip lost information:\nin:  %+v\nout: %+v", findings, back)
	}
}

// TestSARIFEmptyFindings keeps the empty report well-formed: results must be
// an empty array, not null, so strict SARIF consumers accept it.
func TestSARIFEmptyFindings(t *testing.T) {
	data, err := json.Marshal(sarifFromFindings(analysis.DefaultAnalyzers(), nil))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	runs := raw["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"].([]any)
	if !ok {
		t.Fatalf("results is not an array: %v", runs[0].(map[string]any)["results"])
	}
	if len(results) != 0 {
		t.Errorf("empty report has %d results", len(results))
	}
}
