// Command gendpr-lint runs the GenDPR project-invariant static-analysis
// suite (internal/analysis) over the module and exits non-zero when any
// invariant is violated. It is the lint half of scripts/check.sh, the
// repository's CI gate; STATIC_ANALYSIS.md documents each analyzer and how
// to acknowledge an intentional exception with //gendpr:allow.
//
// Usage:
//
//	gendpr-lint [./...] [dir ...]
//
// With no arguments (or "./..."), the whole module containing the working
// directory is linted. Directory arguments restrict the report to packages
// under those paths; the full module is still loaded so cross-package type
// information stays complete.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gendpr/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "list analyzers and packages as they run")
	flag.Parse()
	if err := run(flag.Args(), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-lint:", err)
		os.Exit(2)
	}
}

func run(args []string, verbose bool) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		return err
	}
	analyzers := analysis.DefaultAnalyzers()
	if verbose {
		fmt.Fprintf(os.Stderr, "module %s: %d packages, %d analyzers\n",
			mod.Path, len(mod.Packages), len(analyzers))
		for _, p := range mod.Packages {
			if len(p.TypeErrors) > 0 {
				fmt.Fprintf(os.Stderr, "  %s: %d type errors (syntactic checks only where types are missing)\n",
					p.Path, len(p.TypeErrors))
			}
		}
	}

	keep, err := dirFilter(root, args)
	if err != nil {
		return err
	}
	var findings int
	for _, d := range analysis.Run(mod, analyzers) {
		if !keep(d.Pos.Filename) {
			continue
		}
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		findings++
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "gendpr-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// dirFilter interprets the positional arguments: "./..." (or none) keeps
// everything, directory arguments keep findings under those directories.
func dirFilter(root string, args []string) (func(string) bool, error) {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return func(string) bool { return true }, nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			return nil, err
		}
		if info, err := os.Stat(abs); err != nil || !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", a)
		}
		dirs = append(dirs, abs)
	}
	if len(dirs) == 0 {
		return func(string) bool { return true }, nil
	}
	return func(file string) bool {
		for _, d := range dirs {
			if file == d || strings.HasPrefix(file, d+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}
