// Command gendpr-lint runs the GenDPR project-invariant static-analysis
// suite (internal/analysis) over the module and exits non-zero when any
// invariant is violated. It is the lint half of scripts/check.sh, the
// repository's CI gate; STATIC_ANALYSIS.md documents each analyzer and how
// to acknowledge an intentional exception with //gendpr:allow.
//
// Usage:
//
//	gendpr-lint [-run names] [-skip names] [-json] [-sarif] [-v] [-baseline report.json] [-cache-dir dir] [-nocache] [./...] [dir ...]
//
// With no arguments (or "./..."), the whole module containing the working
// directory is linted. Directory arguments restrict the report to packages
// under those paths; the full module is still loaded so cross-package type
// information stays complete. -run and -skip take comma-separated analyzer
// names; -json writes the findings as a machine-readable report to stdout
// (scripts/check.sh archives it as lint-report.json); -sarif writes them as
// a SARIF 2.1.0 log instead, for code-scanning UIs; -v adds per-package
// load timing, per-analyzer wall time, and parallel speedup to stderr.
// -baseline takes a previous -json report and fails only on findings absent
// from it (matched by file, analyzer, and message — not line, so unrelated
// edits shifting positions do not resurface acknowledged debt).
//
// Results are cached incrementally under -cache-dir (default
// <module>/.gendpr-lint-cache): a warm run with no content changes skips
// parsing and type-checking entirely, and a partial change re-analyzes only
// the changed packages' dependency cones (module-global analyzers re-run on
// any change). The cache stores post-suppression findings keyed by content
// hashes, so cached and fresh reports are identical — scripts/check.sh
// enforces that byte-for-byte. -nocache bypasses it both ways.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure (including a
// working directory outside any Go module).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"gendpr/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "list analyzers, packages, and per-analyzer timing")
	jsonOut := flag.Bool("json", false, "write findings as a JSON report to stdout")
	sarifOut := flag.Bool("sarif", false, "write findings as a SARIF 2.1.0 log to stdout")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	skipNames := flag.String("skip", "", "comma-separated analyzer names to skip")
	baseline := flag.String("baseline", "", "path to a previous -json report; only findings absent from it fail the run")
	cacheDir := flag.String("cache-dir", "", "incremental cache directory (default <module>/.gendpr-lint-cache)")
	noCache := flag.Bool("nocache", false, "neither read nor write the incremental cache")
	flag.Parse()
	opts := lintOptions{
		verbose: *verbose, jsonOut: *jsonOut, sarifOut: *sarifOut,
		runNames: *runNames, skipNames: *skipNames, baselinePath: *baseline,
		cacheDir: *cacheDir, noCache: *noCache,
	}
	if err := run(flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-lint:", err)
		os.Exit(2)
	}
}

// jsonFinding is one diagnostic in the -json report. File is relative to the
// module root so the artifact is stable across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output envelope. It deliberately carries no
// timings: the report must be a pure function of module content so a cached
// warm run reproduces a cold run byte for byte (scripts/check.sh diffs the
// two). Timings go to stderr under -v and to the check.sh timing artifact.
type jsonReport struct {
	Module    string        `json:"module"`
	Analyzers []string      `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
}

// lintOptions carries the parsed command line.
type lintOptions struct {
	verbose, jsonOut, sarifOut        bool
	runNames, skipNames, baselinePath string
	cacheDir                          string
	noCache                           bool
}

func run(args []string, opts lintOptions) error {
	if opts.jsonOut && opts.sarifOut {
		return fmt.Errorf("-json and -sarif are mutually exclusive")
	}
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		return err
	}
	analyzers, err := selectAnalyzers(analysis.DefaultAnalyzers(), opts.runNames, opts.skipNames)
	if err != nil {
		return err
	}
	cacheDir := opts.cacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(root, ".gendpr-lint-cache")
	}

	keep, err := dirFilter(root, args)
	if err != nil {
		return err
	}
	runStart := time.Now()
	var (
		diags  []analysis.Diagnostic
		stats  []analysis.AnalyzerStats
		cstats analysis.CacheStats
	)
	if opts.noCache {
		var loadLog *os.File
		if opts.verbose {
			loadLog = os.Stderr
		}
		mod, err := analysis.LoadModuleVerbose(root, loadLog)
		if err != nil {
			return err
		}
		if opts.verbose {
			fmt.Fprintf(os.Stderr, "module %s: %d packages, %d analyzers\n",
				mod.Path, len(mod.Packages), len(analyzers))
			for _, p := range mod.Packages {
				if len(p.TypeErrors) > 0 {
					fmt.Fprintf(os.Stderr, "  %s: %d type errors (syntactic checks only where types are missing)\n",
						p.Path, len(p.TypeErrors))
				}
			}
		}
		diags, stats = analysis.RunWithStats(mod, analyzers)
	} else {
		diags, stats, cstats, err = analysis.RunWithCache(root, analyzers, cacheDir)
		if err != nil {
			return err
		}
	}
	runWall := time.Since(runStart)
	if opts.verbose {
		var cpu time.Duration
		for _, s := range stats {
			fmt.Fprintf(os.Stderr, "  %-16s %8.1fms  %d finding(s)\n",
				s.Name, float64(s.Duration.Microseconds())/1000, s.Findings)
			cpu += s.Duration
		}
		fmt.Fprintf(os.Stderr, "  analyzers total %.1fms wall, %.1fms cpu (%d workers, %.1fx)\n",
			float64(runWall.Microseconds())/1000, float64(cpu.Microseconds())/1000,
			runtime.GOMAXPROCS(0), float64(cpu)/float64(runWall))
		if !opts.noCache {
			fmt.Fprintf(os.Stderr, "  cache %s: %d hit(s), %d miss(es)%s\n",
				cacheDir, cstats.Hits, cstats.Misses,
				map[bool]string{true: " — full hit, module load skipped", false: ""}[cstats.FullHit])
		}
	}

	var kept []jsonFinding
	for _, d := range diags {
		if !keep(d.Pos.Filename) {
			continue
		}
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		kept = append(kept, jsonFinding{
			File: rel, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}

	// With -baseline, only findings absent from the previous report fail the
	// run; known debt is suppressed (matched by file+analyzer+message so a
	// finding does not count as new just because edits above it moved the
	// line). The -json report still carries every finding, so archiving it
	// regenerates the full baseline rather than shrinking it run over run.
	fail := kept
	if opts.baselinePath != "" {
		base, err := loadBaseline(opts.baselinePath)
		if err != nil {
			return err
		}
		fail = newFindings(kept, base)
	}

	switch {
	case opts.jsonOut:
		report := jsonReport{Module: modPath, Findings: kept}
		if report.Findings == nil {
			report.Findings = []jsonFinding{}
		}
		for _, s := range stats {
			report.Analyzers = append(report.Analyzers, s.Name)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	case opts.sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifFromFindings(analyzers, kept)); err != nil {
			return err
		}
	default:
		for _, f := range fail {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if baselined := len(kept) - len(fail); baselined > 0 {
		fmt.Fprintf(os.Stderr, "gendpr-lint: %d baselined finding(s) suppressed (%s)\n", baselined, opts.baselinePath)
	}
	if len(fail) > 0 {
		if opts.baselinePath != "" {
			fmt.Fprintf(os.Stderr, "gendpr-lint: %d finding(s) not in baseline\n", len(fail))
		} else {
			fmt.Fprintf(os.Stderr, "gendpr-lint: %d finding(s)\n", len(fail))
		}
		os.Exit(1)
	}
	return nil
}

// selectAnalyzers applies the -run and -skip name filters. Unknown names are
// an error (listing what exists) so a typo cannot silently disable a gate.
func selectAnalyzers(all []*analysis.Analyzer, runNames, skipNames string) ([]*analysis.Analyzer, error) {
	known := make(map[string]*analysis.Analyzer, len(all))
	var names []string
	for _, a := range all {
		known[a.Name] = a
		names = append(names, a.Name)
	}
	sort.Strings(names)
	parse := func(list string) (map[string]bool, error) {
		set := make(map[string]bool)
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if known[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (have: %s)", n, strings.Join(names, ", "))
			}
			set[n] = true
		}
		return set, nil
	}
	runSet, err := parse(runNames)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skipNames)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if len(runSet) > 0 && !runSet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("the -run/-skip combination selects no analyzers (have: %s)", strings.Join(names, ", "))
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s: gendpr-lint must run inside the module", dir)
		}
		dir = parent
	}
}

// dirFilter interprets the positional arguments: "./..." (or none) keeps
// everything, directory arguments keep findings under those directories.
func dirFilter(root string, args []string) (func(string) bool, error) {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return func(string) bool { return true }, nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			return nil, err
		}
		if info, err := os.Stat(abs); err != nil || !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", a)
		}
		dirs = append(dirs, abs)
	}
	if len(dirs) == 0 {
		return func(string) bool { return true }, nil
	}
	return func(file string) bool {
		for _, d := range dirs {
			if file == d || strings.HasPrefix(file, d+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}
