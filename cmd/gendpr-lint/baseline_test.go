package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func find(file, analyzer, msg string, line int) jsonFinding {
	return jsonFinding{File: file, Line: line, Column: 1, Analyzer: analyzer, Message: msg}
}

func TestNewFindingsIgnoresLineDrift(t *testing.T) {
	base := map[string]int{
		baselineKey(find("a.go", "secretflow", "leak", 10)): 1,
	}
	// Same finding, different line: edits above it moved the position.
	got := newFindings([]jsonFinding{find("a.go", "secretflow", "leak", 42)}, base)
	if len(got) != 0 {
		t.Fatalf("moved finding reported as new: %+v", got)
	}
}

func TestNewFindingsMultiset(t *testing.T) {
	base := map[string]int{
		baselineKey(find("a.go", "secretflow", "leak", 10)): 1,
	}
	// A second instance of a baselined finding is new debt.
	kept := []jsonFinding{
		find("a.go", "secretflow", "leak", 10),
		find("a.go", "secretflow", "leak", 20),
	}
	got := newFindings(kept, base)
	if len(got) != 1 || got[0].Line != 20 {
		t.Fatalf("want exactly the second instance flagged, got %+v", got)
	}
}

func TestNewFindingsDistinguishes(t *testing.T) {
	base := map[string]int{
		baselineKey(find("a.go", "secretflow", "leak", 10)): 1,
	}
	for _, f := range []jsonFinding{
		find("b.go", "secretflow", "leak", 10),      // different file
		find("a.go", "divergentfloat", "leak", 10),  // different analyzer
		find("a.go", "secretflow", "other msg", 10), // different message
	} {
		if got := newFindings([]jsonFinding{f}, base); len(got) != 1 {
			t.Fatalf("finding %+v should be new, got %d findings", f, len(got))
		}
	}
}

func TestLoadBaselineRoundTrip(t *testing.T) {
	report := jsonReport{
		Module: "gendpr",
		Findings: []jsonFinding{
			find("a.go", "secretflow", "leak", 10),
			find("a.go", "secretflow", "leak", 20),
			find("b.go", "floateq", "exact compare", 3),
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lint-report.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base[baselineKey(report.Findings[0])] != 2 {
		t.Fatalf("duplicate finding should count twice, got %d", base[baselineKey(report.Findings[0])])
	}
	if got := newFindings(report.Findings, base); len(got) != 0 {
		t.Fatalf("report compared against its own baseline should be clean, got %+v", got)
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline file should error")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("malformed baseline should error")
	}
}
