package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// baselineKey identifies a finding for baseline comparison. Line and column
// are deliberately excluded: edits elsewhere in a file shift positions, and
// an acknowledged finding that merely moved is not new debt. Two identical
// messages in the same file are distinguished by count (multiset semantics),
// so introducing a second instance of a baselined finding still fails.
func baselineKey(f jsonFinding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// loadBaseline reads a previous -json report and returns the multiset of its
// finding keys.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var report jsonReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	base := make(map[string]int, len(report.Findings))
	for _, f := range report.Findings {
		base[baselineKey(f)]++
	}
	return base, nil
}

// newFindings returns the findings not covered by the baseline multiset.
// Each baseline entry absorbs at most one current finding; the findings'
// position-sorted order is preserved.
func newFindings(kept []jsonFinding, base map[string]int) []jsonFinding {
	remaining := make(map[string]int, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	var out []jsonFinding
	for _, f := range kept {
		k := baselineKey(f)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}
