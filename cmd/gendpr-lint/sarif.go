package main

// SARIF 2.1.0 output (-sarif): the interchange format code-scanning UIs
// ingest. The mapping is mechanical — one SARIF rule per analyzer, one
// result per finding — and lossless for everything the JSON report carries,
// which sarif_test.go checks by round-tripping a report through both
// encodings.

import "gendpr/internal/analysis"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifFromFindings converts a findings list to a one-run SARIF log. Rules
// cover every selected analyzer (plus the directive pseudo-analyzer, which
// reports malformed suppressions) so ruleIds always resolve; every finding
// is level "error" — the suite gates CI, there are no advisory results.
func sarifFromFindings(analyzers []*analysis.Analyzer, findings []jsonFinding) sarifLog {
	rules := []sarifRule{{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "gendpr:allow directives must name analyzers and carry a justification"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "gendpr-lint", Rules: rules}},
			Results: results,
		}},
	}
}
