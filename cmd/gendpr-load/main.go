// Command gendpr-load replays a mixed assessment workload against the
// always-on service and publishes the resulting throughput, latency
// percentiles, and shed/reuse counters as a JSON artifact (alongside the
// kernel benchmarks, see scripts/load.sh).
//
// By default it assembles an in-process federation (generated cohort, one
// leader, G-1 member nodes over in-memory pipes) and drives the service
// embedded directly — the same internal/service.Server the daemon runs. With
// -daemon it targets a running gendpr-leader -serve over HTTP instead.
//
// The workload mixes tenants, collusion policies, cutoffs, deadlines, and
// deliberately duplicated request shapes, so admission control, per-tenant
// quotas, single-flight coalescing, checkpoint reuse, and deadline expiry are
// all exercised; -drain-after additionally triggers a mid-run graceful drain.
// Every request resolves — completed, structurally shed, or failed — and the
// harness fails loudly if the server leaks a slot or a queue entry.
//
// Usage:
//
//	gendpr-load -requests 1000 -workers 16 -slots 2
//	gendpr-load -requests 2000 -tenant-rate 50 -drain-after 1500 -out load.json
//	gendpr-load -daemon 127.0.0.1:8080 -requests 500
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/cliutil"
	"gendpr/internal/core"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-load:", err)
		os.Exit(1)
	}
}

type options struct {
	requests   int
	workers    int
	tenants    int
	shapes     int
	deadline   time.Duration
	shortEvery int
	drainAfter int
	out        string
	daemon     string

	snps, genomes, gdos int
	seed                int64
	slots, queueDepth   int
	tenantRate          float64
	tenantBurst         int
	tenantConc          int
	ckptDir             string
	logJSON             bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-load", flag.ContinueOnError)
	var o options
	fs.IntVar(&o.requests, "requests", 1000, "total requests to replay")
	fs.IntVar(&o.workers, "workers", 16, "concurrent client workers")
	fs.IntVar(&o.tenants, "tenants", 4, "distinct tenants cycled through the workload")
	fs.IntVar(&o.shapes, "shapes", 8, "distinct request shapes; duplicates exercise coalescing and checkpoint reuse")
	fs.DurationVar(&o.deadline, "deadline", 30*time.Second, "per-request deadline for ordinary requests")
	fs.IntVar(&o.shortEvery, "short-every", 0, "give every Nth request a 1ms deadline to exercise expiry (0 disables)")
	fs.IntVar(&o.drainAfter, "drain-after", 0, "trigger a graceful drain after this many submissions (0 disables; in-process only)")
	fs.StringVar(&o.out, "out", "", "write the JSON load artifact to this file")
	fs.StringVar(&o.daemon, "daemon", "", "target a running gendpr-leader -serve at this address instead of an in-process federation")
	fs.IntVar(&o.snps, "snps", 96, "in-process: SNP positions to generate")
	fs.IntVar(&o.genomes, "genomes", 120, "in-process: case genomes to generate")
	fs.IntVar(&o.gdos, "gdos", 3, "in-process: federation size")
	fs.Int64Var(&o.seed, "seed", 42, "in-process: generator seed")
	fs.IntVar(&o.slots, "slots", 2, "in-process: concurrent federation runs")
	fs.IntVar(&o.queueDepth, "queue-depth", 32, "in-process: admission queue depth")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 0, "in-process: per-tenant admissions per second (0 disables)")
	fs.IntVar(&o.tenantBurst, "tenant-burst", 0, "in-process: per-tenant admission burst")
	fs.IntVar(&o.tenantConc, "tenant-concurrency", 0, "in-process: per-tenant in-flight cap (0 disables)")
	fs.StringVar(&o.ckptDir, "checkpoint-dir", "", "in-process: directory for the shared checkpoint store (default: in-memory)")
	fs.BoolVar(&o.logJSON, "log-json", false, "emit one-line JSON service lifecycle events on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.requests <= 0 || o.workers <= 0 || o.tenants <= 0 || o.shapes <= 0 {
		return fmt.Errorf("-requests, -workers, -tenants and -shapes must be positive")
	}
	if o.daemon != "" {
		return runAgainstDaemon(o)
	}
	return runInProcess(o)
}

// shapeRequest builds the request for one workload slot: the shape index
// fixes the assessment identity (fingerprint), the request index picks the
// tenant and the deadline treatment.
func shapeRequest(o options, i int) service.Request {
	shape := i % o.shapes
	cfg := core.DefaultConfig()
	cfg.MAFCutoff = 0.02 + float64(shape%4)*0.01
	req := service.Request{
		Tenant:   fmt.Sprintf("tenant-%d", i%o.tenants),
		Config:   cfg,
		Policy:   core.CollusionPolicy{F: shape % 2},
		Deadline: o.deadline,
	}
	if o.shortEvery > 0 && i%o.shortEvery == o.shortEvery-1 {
		req.Deadline = time.Millisecond
	}
	return req
}

// outcome tallies the client-observed fates of the workload.
type outcome struct {
	mu        sync.Mutex
	completed int64
	resumed   int64
	coalesced int64
	failed    int64
	shed      map[string]int64
	latencies []time.Duration
}

func (c *outcome) record(resp *service.Response, err error, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ov *service.OverloadError
	switch {
	case errors.As(err, &ov):
		if c.shed == nil {
			c.shed = make(map[string]int64)
		}
		c.shed[ov.Reason]++
	case err != nil:
		c.failed++
	default:
		c.completed++
		c.latencies = append(c.latencies, elapsed)
		if resp.Reused {
			c.resumed++
		}
		if resp.Coalesced {
			c.coalesced++
		}
	}
}

func runInProcess(o options) error {
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(o.snps, o.genomes, o.seed))
	if err != nil {
		return err
	}
	shards, err := cohort.Partition(o.gdos)
	if err != nil {
		return err
	}
	backend, err := service.NewInProcessBackend(shards, cohort.Reference, federation.RunOptions{})
	if err != nil {
		return err
	}
	var store checkpoint.Store = checkpoint.NewMemStore()
	if o.ckptDir != "" {
		fst, err := checkpoint.NewFileStore(o.ckptDir)
		if err != nil {
			return err
		}
		if err := fst.ClearAll(); err != nil {
			return err
		}
		store = fst
	}
	cfg := service.Config{
		Backend:           backend,
		Checkpoints:       store,
		Slots:             o.slots,
		QueueDepth:        o.queueDepth,
		TenantRate:        o.tenantRate,
		TenantBurst:       o.tenantBurst,
		TenantConcurrency: o.tenantConc,
		DrainGrace:        30 * time.Second,
	}
	if o.logJSON {
		cfg.OnEvent = cliutil.ServiceEventLogger("gendpr-load")
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("load: %d requests (%d tenants, %d shapes) against %d GDOs, %d slots, queue %d\n",
		o.requests, o.tenants, o.shapes, o.gdos, o.slots, o.queueDepth)

	// SIGINT/SIGTERM triggers the same graceful drain -drain-after does:
	// admission stops, the backlog is shed, in-flight runs finish.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	var drainOnce sync.Once
	drained := int64(0)
	drain := func() {
		drainOnce.Do(func() {
			atomic.StoreInt64(&drained, 1)
			_ = srv.Drain(context.Background())
		})
	}
	go func() {
		<-ctx.Done()
		if ctx.Err() != nil && atomic.LoadInt64(&drained) == 0 {
			drain()
		}
	}()

	var (
		res       outcome
		submitted int64
		wg        sync.WaitGroup
	)
	start := time.Now()
	next := make(chan int)
	go func() {
		for i := 0; i < o.requests; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				n := atomic.AddInt64(&submitted, 1)
				if o.drainAfter > 0 && n == int64(o.drainAfter) {
					go drain()
				}
				t0 := time.Now()
				resp, err := srv.Assess(context.Background(), shapeRequest(o, i))
				res.record(resp, err, time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	drain() // idempotent: settle the ledger before reading it

	st := srv.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		return fmt.Errorf("leak: %d runs still in flight, %d requests still queued after drain", st.InFlight, st.Queued)
	}
	if unbalanced := st.Admitted - st.Completed - st.Failed - st.ShedAfterAdmission; unbalanced != 0 {
		return fmt.Errorf("ledger does not balance: %d admitted requests unaccounted for", unbalanced)
	}
	art := buildArtifact(o, elapsed, &res, &st)
	return emitArtifact(o, art)
}

// runAgainstDaemon drives a running gendpr-leader -serve over HTTP. The
// client-side tallies come from response status codes; the server block is
// the daemon's /stats snapshot.
func runAgainstDaemon(o options) error {
	base := "http://" + o.daemon
	client := &http.Client{Timeout: o.deadline + 10*time.Second}
	fmt.Printf("load: %d requests (%d tenants, %d shapes) against daemon %s\n",
		o.requests, o.tenants, o.shapes, o.daemon)

	var (
		res outcome
		wg  sync.WaitGroup
	)
	start := time.Now()
	next := make(chan int)
	go func() {
		for i := 0; i < o.requests; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := shapeRequest(o, i)
				body, _ := json.Marshal(map[string]any{
					"tenant":      req.Tenant,
					"f":           req.Policy.F,
					"maf_cutoff":  req.Config.MAFCutoff,
					"deadline_ms": req.Deadline.Milliseconds(),
				})
				t0 := time.Now()
				resp, err := postAssess(client, base, body)
				res.record(resp, err, time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var st *service.Stats
	if wire, err := fetchStats(client, base); err == nil {
		st = wire
	}
	art := buildArtifact(o, elapsed, &res, st)
	return emitArtifact(o, art)
}

// postAssess maps one HTTP exchange back onto the service result shape:
// overload statuses become *service.OverloadError, success carries the reuse
// markers.
func postAssess(client *http.Client, base string, body []byte) (*service.Response, error) {
	httpResp, err := client.Post(base+"/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	switch httpResp.StatusCode {
	case http.StatusOK:
		var wire struct {
			Resumed   bool `json:"resumed"`
			Coalesced bool `json:"coalesced"`
		}
		if err := json.NewDecoder(httpResp.Body).Decode(&wire); err != nil {
			return nil, err
		}
		return &service.Response{Reused: wire.Resumed, Coalesced: wire.Coalesced}, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var wire struct {
			Reason       string `json:"reason"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		}
		_ = json.NewDecoder(httpResp.Body).Decode(&wire)
		return nil, &service.OverloadError{
			Reason:     wire.Reason,
			RetryAfter: time.Duration(wire.RetryAfterMS) * time.Millisecond,
		}
	default:
		return nil, fmt.Errorf("assess: HTTP %d", httpResp.StatusCode)
	}
}

// fetchStats pulls the daemon's ledger into the subset the artifact reports.
func fetchStats(client *http.Client, base string) (*service.Stats, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wire struct {
		Admitted           int64            `json:"admitted"`
		Started            int64            `json:"started"`
		Completed          int64            `json:"completed"`
		Failed             int64            `json:"failed"`
		Coalesced          int64            `json:"coalesced"`
		Reused             int64            `json:"reused"`
		Shed               map[string]int64 `json:"shed"`
		ShedAfterAdmission int64            `json:"shed_after_admission"`
		InFlight           int64            `json:"in_flight"`
		Queued             int64            `json:"queued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, err
	}
	return &service.Stats{
		Admitted:           wire.Admitted,
		Started:            wire.Started,
		Completed:          wire.Completed,
		Failed:             wire.Failed,
		Coalesced:          wire.Coalesced,
		Reused:             wire.Reused,
		Shed:               wire.Shed,
		ShedAfterAdmission: wire.ShedAfterAdmission,
		InFlight:           wire.InFlight,
		Queued:             wire.Queued,
	}, nil
}

// artifact is the published load snapshot.
type artifact struct {
	Requests   int     `json:"requests"`
	Workers    int     `json:"workers"`
	Tenants    int     `json:"tenants"`
	Shapes     int     `json:"shapes"`
	GDOs       int     `json:"gdos,omitempty"`
	Slots      int     `json:"slots,omitempty"`
	QueueDepth int     `json:"queue_depth,omitempty"`
	DurationMS int64   `json:"duration_ms"`
	Throughput float64 `json:"throughput_rps"`

	Completed int64            `json:"completed"`
	Resumed   int64            `json:"resumed"`
	Coalesced int64            `json:"coalesced"`
	Failed    int64            `json:"failed"`
	Shed      map[string]int64 `json:"shed"`

	LatencyMS percentileWire   `json:"latency_ms"`
	Server    map[string]int64 `json:"server,omitempty"`
}

type percentileWire struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func percentiles(sample []time.Duration) percentileWire {
	if len(sample) == 0 {
		return percentileWire{}
	}
	ds := append([]time.Duration(nil), sample...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) float64 {
		return float64(ds[int(q*float64(len(ds)-1))]) / float64(time.Millisecond)
	}
	return percentileWire{
		Count: len(ds),
		P50:   at(0.50),
		P90:   at(0.90),
		P95:   at(0.95),
		P99:   at(0.99),
		Max:   float64(ds[len(ds)-1]) / float64(time.Millisecond),
	}
}

func buildArtifact(o options, elapsed time.Duration, res *outcome, st *service.Stats) artifact {
	res.mu.Lock()
	defer res.mu.Unlock()
	shed := make(map[string]int64, len(res.shed))
	for k, v := range res.shed {
		shed[k] = v
	}
	art := artifact{
		Requests:   o.requests,
		Workers:    o.workers,
		Tenants:    o.tenants,
		Shapes:     o.shapes,
		DurationMS: elapsed.Milliseconds(),
		Throughput: float64(o.requests) / elapsed.Seconds(),
		Completed:  res.completed,
		Resumed:    res.resumed,
		Coalesced:  res.coalesced,
		Failed:     res.failed,
		Shed:       shed,
		LatencyMS:  percentiles(res.latencies),
	}
	if o.daemon == "" {
		art.GDOs = o.gdos
		art.Slots = o.slots
		art.QueueDepth = o.queueDepth
	}
	if st != nil {
		art.Server = map[string]int64{
			"admitted":             st.Admitted,
			"started":              st.Started,
			"completed":            st.Completed,
			"failed":               st.Failed,
			"coalesced":            st.Coalesced,
			"reused":               st.Reused,
			"shed_total":           st.TotalShed(),
			"shed_after_admission": st.ShedAfterAdmission,
			"in_flight":            st.InFlight,
			"queued":               st.Queued,
		}
	}
	return art
}

func emitArtifact(o options, art artifact) error {
	var totalShed int64
	for _, v := range art.Shed {
		totalShed += v
	}
	fmt.Printf("load: %d completed (%d resumed, %d coalesced), %d shed, %d failed in %v (%.1f req/s)\n",
		art.Completed, art.Resumed, art.Coalesced, totalShed, art.Failed,
		time.Duration(art.DurationMS)*time.Millisecond, art.Throughput)
	fmt.Printf("load: latency p50 %.1fms, p95 %.1fms, p99 %.1fms, max %.1fms over %d completed\n",
		art.LatencyMS.P50, art.LatencyMS.P95, art.LatencyMS.P99, art.LatencyMS.Max, art.LatencyMS.Count)
	if o.out == "" {
		return nil
	}
	encoded, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(encoded, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("load: artifact written to %s\n", o.out)
	return nil
}
