// Command genomegen materializes a synthetic GWAS cohort as signed VCF
// files, standing in for the access-controlled dbGaP dataset the paper
// evaluates on. It writes case.vcf and reference.vcf (each with an embedded
// Ed25519 signature) plus signer.pub with the hex verification key, so a
// GenDPR deployment can check data authenticity as the threat model assumes.
//
// Usage:
//
//	genomegen -snps 1000 -case 1486 -reference 1304 -seed 42 -out ./data
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gendpr"
	"gendpr/internal/seal"
	"gendpr/internal/vcf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "genomegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("genomegen", flag.ContinueOnError)
	var (
		snps    = fs.Int("snps", 1000, "number of SNP positions")
		caseN   = fs.Int("case", 1486, "case-population size")
		refN    = fs.Int("reference", 0, "reference-panel size (0 uses the generator default)")
		seed    = fs.Int64("seed", 42, "generator seed")
		outDir  = fs.String("out", ".", "output directory")
		signKey = fs.Bool("sign", true, "embed Ed25519 signatures")
		shards  = fs.Int("shards", 0, "additionally write shard-<i>.vcf files splitting the case population across this many GDOs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := gendpr.DefaultGeneratorConfig(*snps, *caseN, *seed)
	if *refN > 0 {
		cfg.ReferenceN = *refN
	}
	cohort, err := gendpr.GenerateCohort(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var key *seal.SigningKey
	if *signKey {
		key, err = seal.NewSigningKey()
		if err != nil {
			return err
		}
		pubPath := filepath.Join(*outDir, "signer.pub")
		if err := os.WriteFile(pubPath, []byte(hex.EncodeToString(key.Public())+"\n"), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", pubPath)
	}

	for _, out := range []struct {
		name string
		m    *gendpr.Matrix
	}{
		{"case.vcf", cohort.Case},
		{"reference.vcf", cohort.Reference},
	} {
		path := filepath.Join(*outDir, out.name)
		if err := writeVCF(path, out.m, key); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d genomes x %d SNPs)\n", path, out.m.N(), out.m.L())
	}
	if *shards > 0 {
		parts, err := cohort.Partition(*shards)
		if err != nil {
			return err
		}
		for i, shard := range parts {
			path := filepath.Join(*outDir, fmt.Sprintf("shard-%d.vcf", i))
			if err := writeVCF(path, shard, key); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d genomes x %d SNPs)\n", path, shard.N(), shard.L())
		}
	}
	fmt.Printf("planted %d associated SNPs\n", len(cohort.TrueAssociated))
	return nil
}

func writeVCF(path string, m *gendpr.Matrix, key *seal.SigningKey) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if key != nil {
		if err := vcf.WriteSigned(f, m, key); err != nil {
			return err
		}
	} else if err := vcf.Write(f, m); err != nil {
		return err
	}
	return f.Close()
}
