// Command gendpr-authority generates the shared attestation-authority seed
// of a multi-process deployment. Every gendpr-node and gendpr-leader process
// of one federation must load the same seed so their enclaves' quotes verify
// against the same pinned key (in a real SGX deployment this role is played
// by Intel's attestation infrastructure).
//
// Usage:
//
//	gendpr-authority -out authority.seed
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendpr-authority:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendpr-authority", flag.ContinueOnError)
	out := fs.String("out", "authority.seed", "output file for the 32-byte hex seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	seed := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, seed); err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(hex.EncodeToString(seed)+"\n"), 0o600); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}
