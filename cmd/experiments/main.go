// Command experiments regenerates every table and figure of the paper's
// evaluation (Table 3, Figures 5a/5b/6a/6b, Table 4, Table 5). Each
// experiment prints the same rows the paper reports; EXPERIMENTS.md records
// a captured run and compares it with the published numbers.
//
// The -scale flag shrinks genome counts for quick runs (default 0.1); pass
// -scale 1 for the paper's full sizes.
//
// Usage:
//
//	experiments                 # everything at scale 0.1
//	experiments -only table4    # one experiment
//	experiments -scale 1 -only fig6b
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"gendpr/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scale      = fs.Float64("scale", 0.1, "genome-count scale factor (1 = paper sizes)")
		only       = fs.String("only", "", "run a single experiment: table3, fig5a, fig5b, fig6a, fig6b, table4, table5, bandwidth")
		gdos       = fs.Int("gdos", 3, "federation size for table4")
		gGrid      = fs.String("table5-g", "3,4,5", "federation sizes for table5")
		reps       = fs.Int("reps", 5, "repetitions averaged per running-time figure (the paper uses 5)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	experiments := map[string]func() error{
		"table3":    func() error { return runTable3(*scale) },
		"table4":    func() error { return runTable4(*scale, *gdos) },
		"table5":    func() error { return runTable5(*scale, *gGrid) },
		"bandwidth": func() error { return runBandwidth(*scale) },
	}
	for name, w := range bench.FigureWorkloads(*scale) {
		workload := w
		figure := name
		experiments[figure] = func() error { return runFigure(figure, workload, *reps) }
	}

	if *only != "" {
		exp, ok := experiments[*only]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		return exp()
	}

	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := experiments[name](); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

func runFigure(name string, w bench.Workload, reps int) error {
	header(fmt.Sprintf("Figure %s — running time breakdown", strings.TrimPrefix(name, "fig")))
	start := time.Now()
	table, err := bench.FigureTable(w, reps)
	if err != nil {
		return err
	}
	fmt.Print(table)
	fmt.Printf("(experiment wall time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runTable3(scale float64) error {
	header("Table 3 — GenDPR average resource utilization")
	out, err := bench.Table3(scale)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func runTable4(scale float64, gdos int) error {
	header("Table 4 — retained SNPs after each verification phase")
	out, err := bench.Table4(scale, gdos)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func runBandwidth(scale float64) error {
	header("Section 7.1 — bandwidth: protocol traffic vs shipping genomes")
	rows, err := bench.Bandwidth(scale)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatBandwidth(rows))
	return nil
}

func runTable5(scale float64, gGridSpec string) error {
	header("Table 5 — collusion-tolerant GenDPR (10,000 SNPs, 14,860-genome workload)")
	var gGrid []int
	for _, part := range strings.Split(gGridSpec, ",") {
		var g int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &g); err != nil {
			return fmt.Errorf("bad -table5-g entry %q", part)
		}
		gGrid = append(gGrid, g)
	}
	rows, err := bench.Table5(scale, gGrid)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable5(rows))
	return nil
}
