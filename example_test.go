package gendpr_test

import (
	"fmt"
	"log"
	"math/rand"

	"gendpr"
)

// ExampleAssessDistributed shows the minimal federated assessment: generate
// a cohort, shard it across three data owners, and compute the safe-to-
// release SNP subset. Generation is seeded, so the selection is
// deterministic.
func ExampleAssessDistributed() {
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(200, 600, 42))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		log.Fatal(err)
	}
	report, err := gendpr.AssessDistributed(shards, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Selection)
	// Output: MAF 87 / LD 7 / LR 7
}

// ExampleAssessCentralized demonstrates the paper's Table 4 property: the
// distributed assessment selects exactly what a centralized SecureGenome
// run over the pooled genomes would.
func ExampleAssessCentralized() {
	cohort, err := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(200, 600, 42))
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cohort.Partition(4)
	if err != nil {
		log.Fatal(err)
	}
	central, err := gendpr.AssessCentralized(cohort, gendpr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	distributed, err := gendpr.AssessDistributed(shards, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(distributed.Selection.Equal(central.Selection))
	// Output: true
}

// ExampleBuildHybridRelease covers the paper's Section 5.5 extension:
// noise-free statistics over the safe subset, Laplace-perturbed statistics
// over the rest.
func ExampleBuildHybridRelease() {
	counts := []int64{30, 60, 90}
	release, err := gendpr.BuildHybridRelease(counts, 300, []int{1}, gendpr.DPParams{Epsilon: 1}, newDeterministicRand())
	if err != nil {
		log.Fatal(err)
	}
	for _, snp := range release.SNPs {
		fmt.Printf("SNP %d noised=%v\n", snp.SNP, snp.Noised)
	}
	// Output:
	// SNP 0 noised=true
	// SNP 1 noised=false
	// SNP 2 noised=true
}

func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(7)) }
