// Package gendpr is a Go implementation of GenDPR — "Secure and Distributed
// Assessment of Privacy-Preserving GWAS Releases" (Pascoal, Decouchant,
// Völp; ACM/IFIP Middleware 2022).
//
// A federation of genome data owners (GDOs) wants to publish GWAS statistics
// over a desired SNP set without enabling membership-inference attacks.
// GenDPR determines the safe-to-release subset in a fully distributed way:
// genomes never leave their owner's premises; trusted execution environments
// exchange only encrypted intermediate results (allele counts, pairwise
// correlation statistics, LR-matrices); and the selection equals what a
// centralized SecureGenome assessment over the pooled genomes would produce.
// Optionally the assessment tolerates up to all-but-one colluding
// honest-but-curious members.
//
// # Quick start
//
//	cohort, _ := gendpr.GenerateCohort(gendpr.DefaultGeneratorConfig(1000, 1486, 42))
//	shards, _ := cohort.Partition(3)
//	report, _ := gendpr.AssessDistributed(shards, cohort.Reference, gendpr.DefaultConfig(), gendpr.CollusionPolicy{})
//	fmt.Println(report.Selection) // MAF x / LD y / LR z
//
// AssessDistributed runs the protocol in-process; AssessFederated and
// AssessFederatedTCP run the full middleware with remote attestation and
// encrypted channels between per-GDO enclaves.
package gendpr

import (
	"fmt"
	"math/rand"

	"gendpr/internal/core"
	"gendpr/internal/dynamic"
	"gendpr/internal/enclave"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/release"
)

// Re-exported types. The implementation lives in internal packages; these
// aliases are the stable public surface.
type (
	// Config carries the privacy-assessment parameters (MAF cutoff, LD
	// cutoff, LR-test settings).
	Config = core.Config
	// CollusionPolicy selects how many colluding members to tolerate.
	CollusionPolicy = core.CollusionPolicy
	// Report is the outcome of one assessment run.
	Report = core.Report
	// Selection lists the SNPs retained after each phase.
	Selection = core.Selection
	// Timings is the per-phase running-time breakdown.
	Timings = core.Timings
	// Cohort bundles the private case genomes and the public reference.
	Cohort = genome.Cohort
	// Matrix is a binary genotype matrix.
	Matrix = genome.Matrix
	// GeneratorConfig controls synthetic cohort generation.
	GeneratorConfig = genome.GeneratorConfig
	// DPParams configures the hybrid differential-privacy release.
	DPParams = core.DPParams
	// HybridRelease is a full publication over the desired SNP set.
	HybridRelease = core.HybridRelease
	// FederationResult is the outcome of a middleware (networked) run.
	FederationResult = federation.Result
	// RunOptions configures the fault-tolerance envelope of a federation
	// run: per-exchange deadlines, retry with reconnect and re-attestation,
	// and quorum-based degradation. The zero value reproduces the base
	// protocol (no deadlines, no retries, abort on any member failure).
	RunOptions = federation.RunOptions
	// MemberEvent is one member health transition observed through
	// RunOptions.OnEvent.
	MemberEvent = federation.MemberEvent
	// Blame is a structured misbehavior attribution from a Byzantine-aware
	// run (Report.Blamed).
	Blame = core.Blame
)

// DefaultConfig returns the paper's evaluation settings: MAF cutoff 0.05,
// LD cutoff 1e-5, LR-test with false-positive rate 0.1 and identification
// power threshold 0.9.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultGeneratorConfig returns a synthetic-cohort configuration shaped
// like the paper's dbGaP evaluation dataset.
func DefaultGeneratorConfig(snps, caseGenomes int, seed int64) GeneratorConfig {
	return genome.DefaultGeneratorConfig(snps, caseGenomes, seed)
}

// GenerateCohort produces a deterministic synthetic cohort.
func GenerateCohort(cfg GeneratorConfig) (*Cohort, error) { return genome.Generate(cfg) }

// AssessCentralized runs the centralized SecureGenome baseline: every genome
// pooled inside one enclave. It is the ground truth GenDPR matches.
func AssessCentralized(cohort *Cohort, cfg Config) (*Report, error) {
	return core.RunCentralized(cohort, cfg)
}

// AssessDistributed runs the GenDPR protocol in-process: one provider per
// GDO shard, leader-side aggregation, optional collusion tolerance.
func AssessDistributed(shards []*Matrix, reference *Matrix, cfg Config, policy CollusionPolicy) (*Report, error) {
	return core.RunDistributed(shards, reference, cfg, policy)
}

// AssessNaive runs the incorrect naïve baseline of the paper's Section 7.3,
// in which members select SNPs from local data only and the leader
// intersects their choices.
func AssessNaive(shards []*Matrix, reference *Matrix, cfg Config) (*Report, error) {
	return core.RunNaive(shards, reference, cfg)
}

// AssessFederated runs the full middleware inside one process: per-GDO
// enclaves, random leader election, mutual remote attestation, and
// AES-256-GCM-protected in-memory channels.
func AssessFederated(shards []*Matrix, reference *Matrix, cfg Config, policy CollusionPolicy) (*FederationResult, error) {
	return federation.RunInProcess(shards, reference, cfg, policy)
}

// AssessFederatedTCP runs the middleware across loopback TCP connections.
func AssessFederatedTCP(shards []*Matrix, reference *Matrix, cfg Config, policy CollusionPolicy) (*FederationResult, error) {
	return federation.RunOverTCP(shards, reference, cfg, policy)
}

// AssessFederatedWithOptions is AssessFederated under explicit
// fault-tolerance options: deadlines on every member exchange, automatic
// reconnection with capped exponential backoff, and quorum degradation
// (FederationResult.Excluded lists members dropped mid-run).
func AssessFederatedWithOptions(shards []*Matrix, reference *Matrix, cfg Config, policy CollusionPolicy, opts RunOptions) (*FederationResult, error) {
	return federation.RunInProcessWithOptions(shards, reference, cfg, policy, opts)
}

// AssessFederatedTCPWithOptions is AssessFederatedTCP with fault-tolerance
// options.
func AssessFederatedTCPWithOptions(shards []*Matrix, reference *Matrix, cfg Config, policy CollusionPolicy, opts RunOptions) (*FederationResult, error) {
	return federation.RunOverTCPWithOptions(shards, reference, cfg, policy, opts)
}

// BuildHybridRelease publishes statistics over every desired SNP: exact over
// the safe subset, Laplace-perturbed elsewhere (the paper's Section 5.5
// extension).
func BuildHybridRelease(caseCounts []int64, caseN int64, safe []int, params DPParams, rng *rand.Rand) (*HybridRelease, error) {
	return core.BuildHybridRelease(caseCounts, caseN, safe, params, rng)
}

// Adversary models the paper's membership-inference attacker: it holds a
// victim genotype, the released case allele frequencies, and a reference
// panel, and decides membership with a calibrated likelihood-ratio test.
// Use it to audit what a release would leak.
type Adversary = lrtest.Adversary

// NewAdversary calibrates a membership-inference adversary against a release
// restricted to some SNP subset. The frequency vectors and the reference
// genotypes must already be restricted to the released columns; alpha is the
// attacker's tolerated false-positive rate.
func NewAdversary(releasedCaseFreq, refFreq []float64, reference *Matrix, alpha float64) (*Adversary, error) {
	return lrtest.NewAdversary(releasedCaseFreq, refFreq, reference, alpha)
}

// SubsetFrequencies converts per-SNP counts to frequencies restricted to the
// given SNP columns — the released statistics for a selection.
func SubsetFrequencies(counts []int64, n int64, cols []int) []float64 {
	return core.Frequencies(counts, n, cols)
}

// ReleaseDocument is a signed open-access GWAS statistics publication over
// the safe SNP subset — the artifact of the paper's Figure 1.
type ReleaseDocument = release.Document

// ReleaseParameters echoes the assessment settings inside a release.
type ReleaseParameters = release.Parameters

// BuildRelease assembles the publication for an assessment outcome:
// per-SNP case/reference frequencies, chi-square statistics, p-values and
// odds ratios over exactly the safe subset. Sign it with a key rooted in the
// leader enclave before distribution.
func BuildRelease(studyID string, cohort *Cohort, report *Report, cfg Config, policy CollusionPolicy) (*ReleaseDocument, error) {
	colluders := fmt.Sprintf("f=%d", policy.F)
	if policy.Conservative {
		colluders = "f={1..G-1}"
	}
	return release.Build(
		studyID,
		cohort.Case.AlleleCounts(), int64(cohort.Case.N()),
		cohort.Reference.AlleleCounts(), int64(cohort.Reference.N()),
		report.Selection.Safe,
		release.Parameters{
			MAFCutoff:      cfg.MAFCutoff,
			LDCutoff:       cfg.LDCutoff,
			Alpha:          cfg.LR.Alpha,
			PowerThreshold: cfg.LR.PowerThreshold,
			Colluders:      colluders,
		},
	)
}

// DynamicManager coordinates DyPS-style dynamic releases: new genome batches
// arrive over time, each epoch re-assesses the cumulative cohort, and SNPs
// that turn unsafe after publication are frozen rather than silently
// re-released.
type DynamicManager = dynamic.Manager

// EpochReport describes one dynamic-release epoch.
type EpochReport = dynamic.EpochReport

// NewDynamicManager creates a dynamic release manager for a federation of g
// GDOs, backed by a fresh rollback-protected state enclave.
func NewDynamicManager(g int, reference *Matrix, cfg Config, policy CollusionPolicy) (*DynamicManager, error) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("gendpr: %w", err)
	}
	enc, err := platform.Load([]byte("gendpr-dynamic-state-v1"), enclave.Config{})
	if err != nil {
		return nil, fmt.Errorf("gendpr: %w", err)
	}
	return dynamic.NewManager(g, reference, cfg, policy, enc)
}
