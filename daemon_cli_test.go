package gendpr_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCLIServiceDaemon drives the always-on deployment end to end: member
// nodes serving concurrent sessions, the leader as an HTTP daemon with
// admission control and a shared checkpoint store, duplicate-fingerprint
// requests resuming from retained snapshots, per-tenant quota rejections with
// structured bodies, and a SIGTERM drain that accounts for every request
// before the process exits.
func TestCLIServiceDaemon(t *testing.T) {
	bins := buildCLIs(t)
	data := t.TempDir()

	runCLI(t, filepath.Join(bins, "genomegen"),
		"-snps", "200", "-case", "240", "-out", data, "-shards", "3", "-sign=false")
	seedPath := filepath.Join(data, "authority.seed")
	runCLI(t, filepath.Join(bins, "gendpr-authority"), "-out", seedPath)

	// Member nodes in daemon mode: -serves 0 keeps them accepting forever and
	// serving overlapping sessions.
	var nodes []*exec.Cmd
	var nodeAddrs []string
	for i := 0; i < 2; i++ {
		cmd := exec.Command(filepath.Join(bins, "gendpr-node"),
			"-listen", "127.0.0.1:0",
			"-case", filepath.Join(data, fmt.Sprintf("shard-%d.vcf", i+1)),
			"-authority", seedPath,
			"-id", fmt.Sprintf("gdo-%d", i+1),
			"-serves", "0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		scanner := bufio.NewScanner(stdout)
		if !scanner.Scan() {
			t.Fatalf("node %d produced no output", i)
		}
		line := scanner.Text()
		idx := strings.LastIndex(line, "listening on ")
		if idx < 0 {
			t.Fatalf("node %d banner %q missing address", i, line)
		}
		nodeAddrs = append(nodeAddrs, strings.TrimSpace(line[idx+len("listening on "):]))
		go func() {
			for scanner.Scan() {
			}
		}()
		nodes = append(nodes, cmd)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Process.Signal(syscall.SIGTERM)
		}
		for _, n := range nodes {
			_ = n.Wait()
		}
	}()

	// The leader daemon: tiny per-tenant burst under a negligible refill rate
	// makes the second admission from one tenant a deterministic 429.
	ckptDir := filepath.Join(data, "ckpt")
	leader := exec.Command(filepath.Join(bins, "gendpr-leader"),
		"-members", strings.Join(nodeAddrs, ","),
		"-case", filepath.Join(data, "shard-0.vcf"),
		"-reference", filepath.Join(data, "reference.vcf"),
		"-authority", seedPath,
		"-serve", "127.0.0.1:0",
		"-slots", "2",
		"-checkpoint-dir", ckptDir,
		"-tenant-rate", "0.001", "-tenant-burst", "1",
		"-log-json")
	leaderOut, err := leader.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var leaderErr bytes.Buffer
	leader.Stderr = &leaderErr
	if err := leader.Start(); err != nil {
		t.Fatalf("start leader daemon: %v", err)
	}
	leaderDone := make(chan error, 1)
	defer func() {
		_ = leader.Process.Kill()
		<-leaderDone
	}()
	scanner := bufio.NewScanner(leaderOut)
	if !scanner.Scan() {
		t.Fatal("leader daemon produced no output")
	}
	banner := scanner.Text()
	idx := strings.LastIndex(banner, "listening on ")
	if idx < 0 {
		t.Fatalf("daemon banner %q missing address", banner)
	}
	addr := banner[idx+len("listening on "):]
	if cut := strings.Index(addr, " ("); cut >= 0 {
		addr = addr[:cut]
	}
	base := "http://" + strings.TrimSpace(addr)
	var leaderLines []string
	bannerDrained := make(chan struct{})
	go func() {
		defer close(bannerDrained)
		for scanner.Scan() {
			leaderLines = append(leaderLines, scanner.Text())
		}
	}()
	go func() { leaderDone <- leader.Wait() }()

	type assessWire struct {
		SafeCount int  `json:"safe_count"`
		Resumed   bool `json:"resumed"`
	}
	post := func(body string) (*http.Response, error) {
		return http.Post(base+"/assess", "application/json", strings.NewReader(body))
	}

	// First assessment: the nodes may still be binding, so retry engine
	// failures (500) but never structured rejections.
	var first assessWire
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := post(`{"tenant":"alpha","f":1}`)
		if err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("daemon never became reachable: %v", err)
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError || time.Now().After(deadline) {
			t.Fatalf("first assess: HTTP %d", resp.StatusCode)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if first.SafeCount <= 0 {
		t.Fatalf("first assessment returned no selection: %+v", first)
	}
	if first.Resumed {
		t.Fatal("first assessment claims resume with a fresh checkpoint dir")
	}

	// Duplicate fingerprint from another tenant: must resume from the
	// retained snapshot, skipping the protocol phases.
	resp, err := post(`{"tenant":"beta","f":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate assess: HTTP %d", resp.StatusCode)
	}
	var second assessWire
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !second.Resumed {
		t.Fatal("duplicate-fingerprint request did not resume from the shared checkpoint")
	}
	if second.SafeCount != first.SafeCount {
		t.Fatalf("resumed selection %d differs from original %d", second.SafeCount, first.SafeCount)
	}

	// Over-quota: tenant alpha spent its single token above.
	resp, err = post(`{"tenant":"alpha","f":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota assess: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("over-quota rejection missing Retry-After header")
	}
	var shed struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if shed.Error != "overloaded" || shed.Reason != "tenant-quota" {
		t.Fatalf("over-quota body = %+v, want overloaded/tenant-quota", shed)
	}

	// SIGTERM: graceful drain, full accounting, clean exit.
	if err := leader.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-leaderDone:
		leaderDone <- err
		if err != nil {
			t.Fatalf("daemon exited with %v\nstderr:\n%s", err, leaderErr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	<-bannerDrained
	tail := strings.Join(leaderLines, "\n")
	if !strings.Contains(tail, "daemon: drained — admitted 2, completed 2, failed 0") {
		t.Errorf("drain summary missing or wrong:\n%s", tail)
	}

	// -log-json emitted the service lifecycle: admission, resume, the
	// structured shed, and the final drain marker.
	events := leaderErr.String()
	for _, want := range []string{
		`"lifecycle":"admitted"`,
		`"lifecycle":"resumed"`,
		`"lifecycle":"shed"`,
		`"reason":"tenant-quota"`,
		`"lifecycle":"drained"`,
	} {
		if !strings.Contains(events, want) {
			t.Errorf("daemon -log-json stream missing %s:\n%s", want, events)
		}
	}
}
