#!/usr/bin/env sh
# CI gate for the GenDPR repo: formatting, vet, build, project-invariant
# lint (see STATIC_ANALYSIS.md), and the race-enabled test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== analysis fast path =="
# The lint suite's own unit and fixture tests, -short so the whole-module
# self-lint is skipped: a broken analyzer fails here in seconds, before the
# full gendpr-lint run pays for module-wide type-checking.
go test -short ./internal/analysis/

echo "== gendpr-lint (cold) =="
# Volatile CI artifacts live under the gitignored artifacts/ dir; only
# lint-report.json stays at the root and tracked, because -baseline consumes
# it. The cold run starts from an empty cache so its wall time is the
# reference for the warm-run gate below; the lint binary is built once so
# neither measurement pays go-run compilation.
mkdir -p artifacts
rm -rf artifacts/lint-cache
go build -o artifacts/gendpr-lint ./cmd/gendpr-lint
cold_start=$(date +%s%N)
./artifacts/gendpr-lint -v -json -cache-dir artifacts/lint-cache ./... > lint-report.json 2> artifacts/lint-timings.txt || {
    echo "gendpr-lint findings (see lint-report.json):" >&2
    ./artifacts/gendpr-lint -nocache ./... >&2 || true
    exit 1
}
cold_end=$(date +%s%N)
grep -E "load total|analyzers total|cache " artifacts/lint-timings.txt || true

echo "== gendpr-lint (warm, cache-correctness gate) =="
# The incremental cache must be invisible in the output: a warm run over the
# unchanged tree has to reproduce the cold report byte for byte, and do it in
# at most half the cold wall time (in practice it skips type-checking
# entirely and lands near zero).
warm_start=$(date +%s%N)
./artifacts/gendpr-lint -v -json -cache-dir artifacts/lint-cache ./... > artifacts/lint-report-warm.json 2>> artifacts/lint-timings.txt || {
    echo "warm gendpr-lint run failed" >&2
    exit 1
}
warm_end=$(date +%s%N)
if ! cmp -s lint-report.json artifacts/lint-report-warm.json; then
    echo "cache-correctness gate failed: warm lint report differs from cold" >&2
    diff lint-report.json artifacts/lint-report-warm.json >&2 || true
    exit 1
fi
cold_ms=$(( (cold_end - cold_start) / 1000000 ))
warm_ms=$(( (warm_end - warm_start) / 1000000 ))
ratio=$(awk "BEGIN{printf \"%.3f\", $warm_ms / ($cold_ms + 0.001)}")
echo "lint cache: cold ${cold_ms}ms, warm ${warm_ms}ms, warm/cold ratio ${ratio}" | tee -a artifacts/lint-timings.txt
if ! awk "BEGIN{exit !($warm_ms * 2 <= $cold_ms)}"; then
    echo "cache gate failed: warm run ${warm_ms}ms exceeds 0.5x cold ${cold_ms}ms" >&2
    exit 1
fi

echo "== suppression budget =="
# Every //gendpr:allow directive needs a justification in source (enforced
# by the lint itself) AND must fit the recorded budget in STATIC_ANALYSIS.md.
# Growing the count without raising the budget there fails CI, so each new
# suppression is a reviewed documentation change, never a drive-by.
allows=$(grep -rE --include='*.go' -e '//gendpr:allow\(' . | grep -v '/testdata/' | grep -v '_test.go' | wc -l | tr -d ' ')
budget=$(sed -n 's/.*<!-- suppression-budget: \([0-9][0-9]*\) -->.*/\1/p' STATIC_ANALYSIS.md)
if [ -z "$budget" ]; then
    echo "STATIC_ANALYSIS.md is missing its '<!-- suppression-budget: N -->' marker" >&2
    exit 1
fi
if [ "$allows" -gt "$budget" ]; then
    echo "suppression budget exceeded: $allows //gendpr:allow directives, budget $budget" >&2
    echo "new suppressions must be justified in STATIC_ANALYSIS.md and the budget raised there" >&2
    exit 1
fi
echo "$allows directive(s) within budget $budget"
# Per-analyzer breakdown, so a budget bump is auditable per invariant. Every
# analyzer in the suite — including obliviousflow and divergentfloat — is
# covered by the same budget: a directive naming any of them counts above.
grep -rEoh --include='*.go' --exclude='*_test.go' --exclude-dir=testdata \
    -e '//gendpr:allow\([a-z, ]+\)' . \
    | sed 's|//gendpr:allow(||; s|)||' | tr ',' '\n' | tr -d ' ' | grep -v '^$' \
    | sort | uniq -c | sort -rn | sed 's/^/  /'

echo "== go test -race =="
go test -race ./...

echo "== chaos smoke (short fault sweep) =="
# A fixed-seed subset of the chaos harness: one fault per direction through
# Phase 1 and Phase 3, both the rescue and the quorum-degradation paths.
# The full sweep runs with the suite above; this step keeps the injected
# fault points visible as their own gate.
go test -short -run '^TestChaos' ./internal/federation/

echo "== chaos soak (short, fixed seed) =="
# A fixed-seed slice of the randomized fault-composition soak: transport
# faults, Byzantine perturbations, leader kills, and checkpoint corruption
# drawn from one PRNG so every failure reproduces exactly (scripts/soak.sh
# runs the full-length version). The seed and the blame/class summary are
# archived in artifacts/soak-report.txt.
go test -short -count=1 -run '^TestChaosSoak$' -v ./internal/federation/ > artifacts/soak-report.txt 2>&1 || {
    cat artifacts/soak-report.txt >&2
    exit 1
}
grep -E "soak seed" artifacts/soak-report.txt || true

echo "== leader-kill smoke (failover + resume) =="
# Kill the leader at each phase boundary and assert re-election over the
# survivors, resume from the checkpoint, and a bit-identical selection.
go test -short -run '^TestChaosLeaderFailover$' ./internal/federation/

echo "== lattice-vs-legacy smoke =="
# The combination lattice's equivalence contract: the incremental Gray-chain
# Phase 3 must match the legacy per-combination path bit for bit, across
# federation sizes, policies, and scheduling modes.
go test -short -run '^(TestLatticeMatchesLegacyGolden|TestLatticeResumeConservativeParallel)$' ./internal/core/

echo "== service smoke (daemon + drain) =="
# The always-on deployment end to end: member nodes serving concurrent
# sessions, the leader daemon with admission control, a duplicate-fingerprint
# request resuming from the retained checkpoint, an over-quota request shed
# with a structured 429, and a SIGTERM drain that accounts for every request.
go test -count=1 -run '^TestCLIServiceDaemon$' .

echo "== service load smoke (mixed-load harness) =="
# A small fixed-scale slice of the mixed-load harness (scripts/load.sh runs
# the full bench-scale version): duplicate shapes exercise coalescing and
# checkpoint reuse, a mid-run drain exercises shedding, and the harness
# itself fails on a leaked slot or an unbalanced admission ledger.
go run ./cmd/gendpr-load -requests 200 -workers 8 -snps 48 -genomes 60 \
    -short-every 40 -drain-after 150 >/dev/null

echo "== bench smoke (1 iteration, tiny scale) =="
# One iteration of the Phase-3 suite at a tiny scale: catches benchmarks that
# no longer compile or crash without paying for a real measurement run.
GENDPR_BENCH_SCALE=0.01 go test -run '^$' \
    -bench '^(BenchmarkTable4Selection|BenchmarkTable5Collusion|BenchmarkAblationObliviousLRTest|BenchmarkAblationLRWireFormat|BenchmarkAblationCollusionParallel)$' \
    -benchtime 1x . >/dev/null

echo "ALL CHECKS PASSED"
