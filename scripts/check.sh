#!/usr/bin/env sh
# CI gate for the GenDPR repo: formatting, vet, build, project-invariant
# lint (see STATIC_ANALYSIS.md), and the race-enabled test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== gendpr-lint =="
go run ./cmd/gendpr-lint ./...

echo "== go test -race =="
go test -race ./...

echo "ALL CHECKS PASSED"
