#!/usr/bin/env sh
# CI gate for the GenDPR repo: formatting, vet, build, project-invariant
# lint (see STATIC_ANALYSIS.md), and the race-enabled test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== analysis fast path =="
# The lint suite's own unit and fixture tests, -short so the whole-module
# self-lint is skipped: a broken analyzer fails here in seconds, before the
# full gendpr-lint run pays for module-wide type-checking.
go test -short ./internal/analysis/

echo "== gendpr-lint =="
# Two CI artifacts, written even when the step fails: lint-report.json
# (machine-readable findings plus per-analyzer timings) and lint-timings.txt
# (the -v per-package load lines and per-analyzer wall times, with the
# parallel cpu-vs-wall speedup of both stages).
go run ./cmd/gendpr-lint -v -json ./... > lint-report.json 2> lint-timings.txt || {
    echo "gendpr-lint findings (see lint-report.json):" >&2
    go run ./cmd/gendpr-lint ./... >&2 || true
    exit 1
}
grep -E "load total|analyzers total" lint-timings.txt || true

echo "== suppression budget =="
# Every //gendpr:allow directive needs a justification in source (enforced
# by the lint itself) AND must fit the recorded budget in STATIC_ANALYSIS.md.
# Growing the count without raising the budget there fails CI, so each new
# suppression is a reviewed documentation change, never a drive-by.
allows=$(grep -rE --include='*.go' -e '//gendpr:allow\(' . | grep -v '/testdata/' | grep -v '_test.go' | wc -l | tr -d ' ')
budget=$(sed -n 's/.*<!-- suppression-budget: \([0-9][0-9]*\) -->.*/\1/p' STATIC_ANALYSIS.md)
if [ -z "$budget" ]; then
    echo "STATIC_ANALYSIS.md is missing its '<!-- suppression-budget: N -->' marker" >&2
    exit 1
fi
if [ "$allows" -gt "$budget" ]; then
    echo "suppression budget exceeded: $allows //gendpr:allow directives, budget $budget" >&2
    echo "new suppressions must be justified in STATIC_ANALYSIS.md and the budget raised there" >&2
    exit 1
fi
echo "$allows directive(s) within budget $budget"
# Per-analyzer breakdown, so a budget bump is auditable per invariant. Every
# analyzer in the suite — including obliviousflow and divergentfloat — is
# covered by the same budget: a directive naming any of them counts above.
grep -rEoh --include='*.go' --exclude='*_test.go' --exclude-dir=testdata \
    -e '//gendpr:allow\([a-z, ]+\)' . \
    | sed 's|//gendpr:allow(||; s|)||' | tr ',' '\n' | tr -d ' ' | grep -v '^$' \
    | sort | uniq -c | sort -rn | sed 's/^/  /'

echo "== go test -race =="
go test -race ./...

echo "== chaos smoke (short fault sweep) =="
# A fixed-seed subset of the chaos harness: one fault per direction through
# Phase 1 and Phase 3, both the rescue and the quorum-degradation paths.
# The full sweep runs with the suite above; this step keeps the injected
# fault points visible as their own gate.
go test -short -run '^TestChaos' ./internal/federation/

echo "== chaos soak (short, fixed seed) =="
# A fixed-seed slice of the randomized fault-composition soak: transport
# faults, Byzantine perturbations, leader kills, and checkpoint corruption
# drawn from one PRNG so every failure reproduces exactly (scripts/soak.sh
# runs the full-length version). The seed and the blame/class summary are
# archived in soak-report.txt next to lint-report.json.
go test -short -count=1 -run '^TestChaosSoak$' -v ./internal/federation/ > soak-report.txt 2>&1 || {
    cat soak-report.txt >&2
    exit 1
}
grep -E "soak seed" soak-report.txt || true

echo "== leader-kill smoke (failover + resume) =="
# Kill the leader at each phase boundary and assert re-election over the
# survivors, resume from the checkpoint, and a bit-identical selection.
go test -short -run '^TestChaosLeaderFailover$' ./internal/federation/

echo "== lattice-vs-legacy smoke =="
# The combination lattice's equivalence contract: the incremental Gray-chain
# Phase 3 must match the legacy per-combination path bit for bit, across
# federation sizes, policies, and scheduling modes.
go test -short -run '^(TestLatticeMatchesLegacyGolden|TestLatticeResumeConservativeParallel)$' ./internal/core/

echo "== service smoke (daemon + drain) =="
# The always-on deployment end to end: member nodes serving concurrent
# sessions, the leader daemon with admission control, a duplicate-fingerprint
# request resuming from the retained checkpoint, an over-quota request shed
# with a structured 429, and a SIGTERM drain that accounts for every request.
go test -count=1 -run '^TestCLIServiceDaemon$' .

echo "== service load smoke (mixed-load harness) =="
# A small fixed-scale slice of the mixed-load harness (scripts/load.sh runs
# the full bench-scale version): duplicate shapes exercise coalescing and
# checkpoint reuse, a mid-run drain exercises shedding, and the harness
# itself fails on a leaked slot or an unbalanced admission ledger.
go run ./cmd/gendpr-load -requests 200 -workers 8 -snps 48 -genomes 60 \
    -short-every 40 -drain-after 150 >/dev/null

echo "== bench smoke (1 iteration, tiny scale) =="
# One iteration of the Phase-3 suite at a tiny scale: catches benchmarks that
# no longer compile or crash without paying for a real measurement run.
GENDPR_BENCH_SCALE=0.01 go test -run '^$' \
    -bench '^(BenchmarkTable4Selection|BenchmarkTable5Collusion|BenchmarkAblationObliviousLRTest|BenchmarkAblationLRWireFormat|BenchmarkAblationCollusionParallel)$' \
    -benchtime 1x . >/dev/null

echo "ALL CHECKS PASSED"
