#!/usr/bin/env sh
# CI gate for the GenDPR repo: formatting, vet, build, project-invariant
# lint (see STATIC_ANALYSIS.md), and the race-enabled test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== gendpr-lint =="
go run ./cmd/gendpr-lint ./...

echo "== go test -race =="
go test -race ./...

echo "== chaos smoke (short fault sweep) =="
# A fixed-seed subset of the chaos harness: one fault per direction through
# Phase 1 and Phase 3, both the rescue and the quorum-degradation paths.
# The full sweep runs with the suite above; this step keeps the injected
# fault points visible as their own gate.
go test -short -run '^TestChaos' ./internal/federation/

echo "== leader-kill smoke (failover + resume) =="
# Kill the leader at each phase boundary and assert re-election over the
# survivors, resume from the checkpoint, and a bit-identical selection.
go test -short -run '^TestChaosLeaderFailover$' ./internal/federation/

echo "== bench smoke (1 iteration, tiny scale) =="
# One iteration of the Phase-3 suite at a tiny scale: catches benchmarks that
# no longer compile or crash without paying for a real measurement run.
GENDPR_BENCH_SCALE=0.01 go test -run '^$' \
    -bench '^(BenchmarkTable4Selection|BenchmarkTable5Collusion|BenchmarkAblationObliviousLRTest|BenchmarkAblationLRWireFormat|BenchmarkAblationCollusionParallel)$' \
    -benchtime 1x . >/dev/null

echo "ALL CHECKS PASSED"
