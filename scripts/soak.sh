#!/usr/bin/env bash
# Randomized fault-composition soak for the federation: transport faults,
# Byzantine perturbations (overflowing counts, skewed pair statistics,
# flipped pattern bits, equivocation), leader kills, and on-disk checkpoint
# corruption, all composed from ONE PRNG seed so any failure reproduces
# exactly by re-running with the seed the failing run printed.
#
# Every iteration must end bit-identical to the fault-free selection or as a
# correct degradation: the right member excluded, an accurate blame record,
# and the survivors' baseline selection. See internal/federation/soak_test.go
# for the scenario classes and DESIGN.md §7 for the fault table.
#
# Usage:
#   scripts/soak.sh                 # fixed default seed, 25 iterations
#   scripts/soak.sh 17              # seed 17
#   scripts/soak.sh 17 200          # seed 17, 200 iterations
#   scripts/soak.sh "$RANDOM" 100   # randomized exploration run
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${1:-${GENDPR_SOAK_SEED:-20260807}}"
n="${2:-${GENDPR_SOAK_N:-25}}"

echo "chaos soak: seed=$seed iterations=$n (re-run with the same arguments to reproduce a failure)"
GENDPR_SOAK_SEED="$seed" GENDPR_SOAK_N="$n" \
    go test -count=1 -run '^TestChaosSoak$' -v ./internal/federation/
