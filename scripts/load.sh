#!/usr/bin/env bash
# Run the mixed-load service harness at a fixed scale and record the snapshot
# as BENCH_service_load.json next to the kernel trajectory
# (BENCH_phase3.json), so service-level throughput, latency percentiles, and
# shed/reuse counts travel with the repo the same way the kernel numbers do.
#
# Usage: scripts/load.sh [requests]
#
# The fixed scale (1,000 requests, 16 workers, 4 tenants, 8 shapes, 3 GDOs,
# 2 slots) keeps snapshots comparable across PRs; override the request count
# via the argument and the rest via GENDPR_LOAD_* deliberately.
set -euo pipefail
cd "$(dirname "$0")/.."

requests="${1:-1000}"
workers="${GENDPR_LOAD_WORKERS:-16}"
snps="${GENDPR_LOAD_SNPS:-96}"
genomes="${GENDPR_LOAD_GENOMES:-120}"
slots="${GENDPR_LOAD_SLOTS:-2}"

go run ./cmd/gendpr-load \
    -requests "$requests" -workers "$workers" \
    -snps "$snps" -genomes "$genomes" -gdos 3 \
    -slots "$slots" -queue-depth 32 \
    -tenants 4 -shapes 8 -short-every 50 \
    -out BENCH_service_load.json

echo "snapshot recorded in BENCH_service_load.json"
