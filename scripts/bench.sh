#!/usr/bin/env bash
# Run the Phase-3 benchmark suite at a fixed small scale and record the
# results as one labelled entry in BENCH_phase3.json (see internal/bench).
#
# Usage: scripts/bench.sh <label> [note]
#
# The label names the kernel under test (e.g. "seed-dense",
# "pr2-bitpacked"); re-running with the same label replaces that entry.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:?usage: scripts/bench.sh <label> [note]}"
note="${2:-}"

# Fixed small scale so entries in the trajectory stay comparable across
# machines and PRs. Override deliberately via GENDPR_BENCH_SCALE.
scale="${GENDPR_BENCH_SCALE:-0.05}"
benchtime="${GENDPR_BENCH_TIME:-1x}"

benches='^(BenchmarkTable4Selection|BenchmarkTable5Collusion|BenchmarkAblationObliviousLRTest|BenchmarkAblationLRWireFormat|BenchmarkAblationCollusionParallel)$'

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

GENDPR_BENCH_SCALE="$scale" go test -run '^$' -bench "$benches" \
    -benchtime "$benchtime" -benchmem . | tee "$out"

go run ./cmd/benchjson -label "$label" -note "$note" \
    -scale "$scale" -benchtime "$benchtime" -out BENCH_phase3.json <"$out"
