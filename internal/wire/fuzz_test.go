package wire

import "testing"

// FuzzDecoder drives every decoder method over arbitrary bytes: no input may
// panic or allocate unboundedly, and Finish must never succeed with
// unconsumed bytes remaining.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(0)
	e.Uint64(42)
	e.Float64s([]float64{1, 2})
	e.String("x")
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Uint64()
		_ = d.Int64s()
		_ = d.Float64s()
		_ = d.Blob()
		_ = d.String()
		_ = d.Bool()
		if err := d.Finish(); err == nil && d.Err() == nil {
			// Finish succeeded: every byte must have been consumed; the
			// sequence above reads at least 6 fields, so tiny inputs must
			// have failed instead.
			if len(data) < 8 {
				t.Fatalf("Finish succeeded on %d-byte input", len(data))
			}
		}
	})
}
