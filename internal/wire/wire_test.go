package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	e := NewEncoder(64)
	e.Uint64(math.MaxUint64)
	e.Int64(-42)
	e.Int(123456789)
	e.Float64(3.14159)
	e.Bool(true)
	e.Bool(false)
	e.Blob([]byte{1, 2, 3})
	e.String("gendpr")
	e.Int64s([]int64{-1, 0, 1})
	e.Ints([]int{7, 8})
	e.Float64s([]float64{0.5, -0.5})

	d := NewDecoder(e.Bytes())
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64=%d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64=%d", got)
	}
	if got := d.Int(); got != 123456789 {
		t.Errorf("Int=%d", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64=%v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob=%v", got)
	}
	if got := d.String(); got != "gendpr" {
		t.Errorf("String=%q", got)
	}
	if got := d.Int64s(); len(got) != 3 || got[0] != -1 || got[2] != 1 {
		t.Errorf("Int64s=%v", got)
	}
	if got := d.Ints(); len(got) != 2 || got[1] != 8 {
		t.Errorf("Ints=%v", got)
	}
	if got := d.Float64s(); len(got) != 2 || got[0] != 0.5 {
		t.Errorf("Float64s=%v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	_ = d.Uint64()
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Fatalf("got %v, want ErrShortBuffer", d.Err())
	}
	// Error is sticky: further reads return zero values without panicking.
	if v := d.Int64(); v != 0 {
		t.Errorf("post-error Int64=%d", v)
	}
	if s := d.String(); s != "" {
		t.Errorf("post-error String=%q", s)
	}
	if err := d.Finish(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Finish=%v", err)
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(0)
	e.Uint64(1)
	e.Uint64(2)
	d := NewDecoder(e.Bytes())
	_ = d.Uint64()
	if err := d.Finish(); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("got %v, want ErrTrailingBytes", err)
	}
}

func TestDecoderHostileSliceLength(t *testing.T) {
	e := NewEncoder(0)
	e.Uint64(math.MaxUint64) // absurd length prefix
	for _, read := range []func(*Decoder){
		func(d *Decoder) { d.Int64s() },
		func(d *Decoder) { d.Ints() },
		func(d *Decoder) { d.Float64s() },
		func(d *Decoder) { d.Blob() },
	} {
		d := NewDecoder(e.Bytes())
		read(d)
		if d.Err() == nil {
			t.Fatal("hostile length accepted")
		}
	}
}

func TestDecoderSliceLengthBeyondPayload(t *testing.T) {
	e := NewEncoder(0)
	e.Uint64(10) // claims 10 elements, provides none
	d := NewDecoder(e.Bytes())
	if got := d.Int64s(); got != nil || d.Err() == nil {
		t.Fatalf("got %v, err %v", got, d.Err())
	}
}

func TestEmptySlices(t *testing.T) {
	e := NewEncoder(0)
	e.Int64s(nil)
	e.Float64s([]float64{})
	e.Ints(nil)
	e.Blob(nil)
	d := NewDecoder(e.Bytes())
	if v := d.Int64s(); len(v) != 0 {
		t.Errorf("Int64s=%v", v)
	}
	if v := d.Float64s(); len(v) != 0 {
		t.Errorf("Float64s=%v", v)
	}
	if v := d.Ints(); len(v) != 0 {
		t.Errorf("Ints=%v", v)
	}
	if v := d.Blob(); len(v) != 0 {
		t.Errorf("Blob=%v", v)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, fs []float64, is []int64, s string, blob []byte) bool {
		e := NewEncoder(0)
		e.Uint64(a)
		e.Int64(b)
		e.Float64s(fs)
		e.Int64s(is)
		e.String(s)
		e.Blob(blob)
		d := NewDecoder(e.Bytes())
		if d.Uint64() != a || d.Int64() != b {
			return false
		}
		gf := d.Float64s()
		if len(gf) != len(fs) {
			return false
		}
		for i := range fs {
			if gf[i] != fs[i] && !(math.IsNaN(gf[i]) && math.IsNaN(fs[i])) {
				return false
			}
		}
		gi := d.Int64s()
		if len(gi) != len(is) {
			return false
		}
		for i := range is {
			if gi[i] != is[i] {
				return false
			}
		}
		if d.String() != s || !bytes.Equal(d.Blob(), blob) {
			return false
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderDeterministic(t *testing.T) {
	build := func() []byte {
		e := NewEncoder(0)
		e.Float64s([]float64{1.5, 2.5})
		e.String("x")
		return e.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("encoder is not deterministic")
	}
}
