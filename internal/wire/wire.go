// Package wire implements the deterministic binary codec used for GenDPR
// protocol payloads. Encodings are fixed-width big-endian, so two enclaves
// serializing the same values produce byte-identical messages — a property
// the encrypted transport's authentication and the tests rely on.
package wire

import (
	"errors"
	"fmt"
	"math"
)

var (
	// ErrShortBuffer is returned when a decoder runs past the payload end.
	ErrShortBuffer = errors.New("wire: short buffer")

	// ErrTrailingBytes is returned by Finish when payload bytes remain.
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
)

// maxSliceLen bounds decoded slice lengths to stop hostile length fields
// from forcing huge allocations before content validation.
const maxSliceLen = 1 << 28

// Encoder appends fixed-width encodings to a growing buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with a hint-sized buffer.
func NewEncoder(sizeHint int) *Encoder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uint64 appends v.
func (e *Encoder) Uint64(v uint64) {
	e.buf = append(e.buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Int64 appends v.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Int appends v as a 64-bit value.
func (e *Encoder) Int(v int) { e.Uint64(uint64(int64(v))) }

// Float64 appends the IEEE-754 bits of v.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bool appends a single byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(b []byte) {
	e.Uint64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) { e.Blob([]byte(s)) }

// Int64s appends a length-prefixed int64 slice.
func (e *Encoder) Int64s(v []int64) {
	e.Uint64(uint64(len(v)))
	for _, x := range v {
		e.Int64(x)
	}
}

// Ints appends a length-prefixed int slice (as 64-bit values).
func (e *Encoder) Ints(v []int) {
	e.Uint64(uint64(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Float64s appends a length-prefixed float64 slice.
func (e *Encoder) Float64s(v []float64) {
	e.Uint64(uint64(len(v)))
	for _, x := range v {
		e.Float64(x)
	}
}

// Decoder reads fixed-width encodings, remembering the first error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Finish returns an error when decoding failed or bytes remain unread.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d of %d bytes consumed", ErrTrailingBytes, d.off, len(d.buf))
	}
	return nil
}

// Remaining reports how many payload bytes are still unread. Decoders of
// formats with optional trailing sections probe it before Finish; after a
// decoding error it reports zero so error handling stays single-pathed.
func (d *Decoder) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.buf) - d.off
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = ErrShortBuffer
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads one value.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// Int64 reads one value.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Int reads one 64-bit value as an int.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Float64 reads one value.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bool reads one byte.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

func (d *Decoder) sliceLen() int {
	n := d.Uint64()
	if d.err != nil {
		return 0
	}
	if n > maxSliceLen {
		d.err = fmt.Errorf("wire: slice length %d exceeds bound", n)
		return 0
	}
	return int(n)
}

// Blob reads a length-prefixed byte string. The result aliases the payload.
func (d *Decoder) Blob() []byte {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	return d.take(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Blob()) }

// Int64s reads a length-prefixed int64 slice.
func (d *Decoder) Int64s() []int64 {
	n := d.sliceLen()
	if d.err != nil || len(d.buf)-d.off < n*8 {
		if d.err == nil {
			d.err = ErrShortBuffer
		}
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Int64()
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (d *Decoder) Ints() []int {
	n := d.sliceLen()
	if d.err != nil || len(d.buf)-d.off < n*8 {
		if d.err == nil {
			d.err = ErrShortBuffer
		}
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Float64s reads a length-prefixed float64 slice.
func (d *Decoder) Float64s() []float64 {
	n := d.sliceLen()
	if d.err != nil || len(d.buf)-d.off < n*8 {
		if d.err == nil {
			d.err = ErrShortBuffer
		}
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Float64()
	}
	return out
}
