// Package genome models genotype data for genome-wide association studies.
//
// Genotypes follow the encoding of the paper's Table 1: each individual is a
// row, each SNP position a column, and the cell holds 1 when the individual
// carries the minor allele at that position and 0 otherwise. The matrix is
// bitset-backed so that a 27,895 x 10,000 cohort (the paper's largest) fits in
// a few tens of megabytes and allele counting reduces to popcounts.
package genome

import (
	"errors"
	"fmt"
	"math/bits"
)

// wordBits is the number of genotype cells packed into one storage word.
const wordBits = 64

var (
	// ErrDimensionMismatch is returned when two matrices that must agree on
	// their SNP dimension do not.
	ErrDimensionMismatch = errors.New("genome: SNP dimension mismatch")

	// ErrIndexOutOfRange is returned for out-of-bounds row or column access.
	ErrIndexOutOfRange = errors.New("genome: index out of range")
)

// Matrix is a dense binary genotype matrix with n individuals (rows) and l
// SNP positions (columns). The zero value is an empty matrix; use NewMatrix
// to allocate one with a fixed shape.
type Matrix struct {
	n      int
	l      int
	stride int // words per row
	// words is the raw per-individual genotype storage; the secretflow
	// analyzer taints every read of it (STATIC_ANALYSIS.md).
	//gendpr:secret(individual)
	words []uint64
}

// NewMatrix allocates an n-by-l genotype matrix initialized to the major
// allele (all zeros).
func NewMatrix(n, l int) *Matrix {
	if n < 0 || l < 0 {
		return &Matrix{}
	}
	stride := (l + wordBits - 1) / wordBits
	return &Matrix{
		n:      n,
		l:      l,
		stride: stride,
		words:  make([]uint64, n*stride),
	}
}

// N returns the number of individuals (rows).
func (m *Matrix) N() int { return m.n }

// L returns the number of SNP positions (columns).
func (m *Matrix) L() int { return m.l }

// Get reports whether individual i carries the minor allele at SNP position l.
func (m *Matrix) Get(i, l int) bool {
	m.mustBound(i, l)
	w := m.words[i*m.stride+l/wordBits]
	return w&(1<<(uint(l)%wordBits)) != 0
}

// GetBit returns the allele of individual i at SNP position l as a bare bit
// (1 encodes the minor allele). Unlike Get it involves no data-dependent
// branch, so enclave-resident loaders can fold genotype bits into buffers
// with pure mask arithmetic and keep their memory trace data-independent.
func (m *Matrix) GetBit(i, l int) byte {
	m.mustBound(i, l)
	w := m.words[i*m.stride+l/wordBits]
	return byte(w >> (uint(l) % wordBits) & 1)
}

// Set stores the allele of individual i at SNP position l: true encodes the
// minor allele, false the major allele.
func (m *Matrix) Set(i, l int, minor bool) {
	m.mustBound(i, l)
	idx := i*m.stride + l/wordBits
	mask := uint64(1) << (uint(l) % wordBits)
	if minor {
		m.words[idx] |= mask
	} else {
		m.words[idx] &^= mask
	}
}

func (m *Matrix) mustBound(i, l int) {
	if i < 0 || i >= m.n || l < 0 || l >= m.l {
		panic(fmt.Sprintf("genome: index (%d,%d) out of range for %dx%d matrix", i, l, m.n, m.l))
	}
}

// row returns the word slice backing row i.
func (m *Matrix) row(i int) []uint64 {
	return m.words[i*m.stride : (i+1)*m.stride]
}

// RowWords returns the packed genotype bits of row i — L() bits
// little-endian, bit l set when individual i carries the minor allele at SNP
// l. The slice aliases the matrix storage and must be treated as read-only;
// it lets bit-packed consumers (lrtest.BuildBit) transpose genotypes without
// a per-cell interface call.
func (m *Matrix) RowWords(i int) []uint64 {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("genome: row %d out of range for %d rows", i, m.n))
	}
	return m.row(i)
}

// AlleleCount returns the number of individuals carrying the minor allele at
// SNP position l.
func (m *Matrix) AlleleCount(l int) int64 {
	if l < 0 || l >= m.l {
		panic(fmt.Sprintf("genome: SNP %d out of range for %d columns", l, m.l))
	}
	word := l / wordBits
	mask := uint64(1) << (uint(l) % wordBits)
	var c int64
	for i := 0; i < m.n; i++ {
		if m.words[i*m.stride+word]&mask != 0 {
			c++
		}
	}
	return c
}

// AlleleCounts returns the per-SNP minor-allele counts over all individuals.
// This is the caseLocalCounts vector each GDO outsources during Phase 1.
func (m *Matrix) AlleleCounts() []int64 {
	counts := make([]int64, m.l)
	for i := 0; i < m.n; i++ {
		row := m.row(i)
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				counts[w*wordBits+b]++
				word &= word - 1
			}
		}
	}
	return counts
}

// PairCount returns the number of individuals that carry the minor allele at
// both positions l1 and l2 (the C11 cell of the pairwise contingency table;
// the remaining cells follow from the single counts and N).
func (m *Matrix) PairCount(l1, l2 int) int64 {
	if l1 < 0 || l1 >= m.l || l2 < 0 || l2 >= m.l {
		panic(fmt.Sprintf("genome: SNP pair (%d,%d) out of range for %d columns", l1, l2, m.l))
	}
	w1, mask1 := l1/wordBits, uint64(1)<<(uint(l1)%wordBits)
	w2, mask2 := l2/wordBits, uint64(1)<<(uint(l2)%wordBits)
	var c int64
	for i := 0; i < m.n; i++ {
		base := i * m.stride
		if m.words[base+w1]&mask1 != 0 && m.words[base+w2]&mask2 != 0 {
			c++
		}
	}
	return c
}

// PairStats holds the pooled sufficient statistics for the correlation of a
// SNP pair over one dataset: the sums the GDO enclaves outsource during Phase
// 2 (mu_l, mu_l+1, mu_(l,l+1), mu_l^2, mu_(l+1)^2 in the paper's notation)
// plus the number of individuals they were computed over.
//
// For binary genotypes SumXX == SumX and SumYY == SumY, but the fields are
// kept separate because the protocol exchanges them explicitly and other
// encodings (e.g. 0/1/2 genotype dosage) would not collapse.
type PairStats struct {
	N     int64
	SumX  int64
	SumY  int64
	SumXY int64
	SumXX int64
	SumYY int64
}

// Add accumulates another dataset's statistics for the same SNP pair. This is
// the leader-enclave aggregation step of Phase 2.
func (s PairStats) Add(o PairStats) PairStats {
	return PairStats{
		N:     s.N + o.N,
		SumX:  s.SumX + o.SumX,
		SumY:  s.SumY + o.SumY,
		SumXY: s.SumXY + o.SumXY,
		SumXX: s.SumXX + o.SumXX,
		SumYY: s.SumYY + o.SumYY,
	}
}

// PairStats computes the correlation sufficient statistics between SNP
// positions l1 and l2 over all individuals of the matrix.
func (m *Matrix) PairStats(l1, l2 int) PairStats {
	return PairStatsFromCounts(int64(m.n), m.AlleleCount(l1), m.AlleleCount(l2), m.PairCount(l1, l2))
}

// PairStatsFromCounts assembles pair statistics from already-known
// minor-allele counts (x at the first SNP, y at the second, xy at both) over
// n binary genotypes. Callers holding a precomputed count vector — every
// assessment does after Phase 1 — pay one PairCount pass per pair instead of
// the three column scans PairStats makes.
func PairStatsFromCounts(n, x, y, xy int64) PairStats {
	return PairStats{
		N:     n,
		SumX:  x,
		SumY:  y,
		SumXY: xy,
		SumXX: x,
		SumYY: y,
	}
}

// SelectColumns returns a new matrix restricted to the given SNP positions,
// in the given order. It is used to project a dataset onto a retained SNP
// subset (L', L”) between protocol phases.
func (m *Matrix) SelectColumns(cols []int) *Matrix {
	out := NewMatrix(m.n, len(cols))
	for j, l := range cols {
		if l < 0 || l >= m.l {
			//gendpr:allow(secretflow): the panic names the caller's requested SNP index and the matrix shape (caller bug), not genotype content
			panic(fmt.Sprintf("genome: SNP %d out of range for %d columns", l, m.l))
		}
		w, mask := l/wordBits, uint64(1)<<(uint(l)%wordBits)
		ow, omask := j/wordBits, uint64(1)<<(uint(j)%wordBits)
		for i := 0; i < m.n; i++ {
			if m.words[i*m.stride+w]&mask != 0 {
				out.words[i*out.stride+ow] |= omask
			}
		}
	}
	return out
}

// SelectRows returns a new matrix containing rows [lo, hi).
func (m *Matrix) SelectRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.n || lo > hi {
		panic(fmt.Sprintf("genome: row range [%d,%d) out of range for %d rows", lo, hi, m.n))
	}
	out := NewMatrix(hi-lo, m.l)
	copy(out.words, m.words[lo*m.stride:hi*m.stride])
	return out
}

// Concat returns a new matrix with the rows of m followed by the rows of
// others. All matrices must share the SNP dimension. This is the leader-side
// LR-matrix merge of Phase 3 generalized to genotype matrices.
func Concat(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return NewMatrix(0, 0), nil
	}
	l := ms[0].l
	n := 0
	for _, m := range ms {
		if m.l != l {
			return nil, fmt.Errorf("%w: %d vs %d columns", ErrDimensionMismatch, m.l, l)
		}
		n += m.n
	}
	out := NewMatrix(n, l)
	at := 0
	for _, m := range ms {
		copy(out.words[at*out.stride:], m.words[:m.n*m.stride])
		at += m.n
	}
	return out, nil
}

// Equal reports whether two matrices have identical shape and genotypes.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n || m.l != o.l {
		return false
	}
	for i := range m.words {
		if m.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SizeBytes returns the in-memory footprint of the genotype words, the
// quantity enclave memory accounting charges for holding the matrix.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.words)) * 8
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.n, m.l)
	copy(out.words, m.words)
	return out
}

// Bytes serializes the matrix into a compact binary form:
// n, l as 8-byte big-endian integers followed by the row words in row order.
func (m *Matrix) Bytes() []byte {
	buf := make([]byte, 16+len(m.words)*8)
	putUint64(buf[0:8], uint64(m.n))
	putUint64(buf[8:16], uint64(m.l))
	for i, w := range m.words {
		putUint64(buf[16+i*8:24+i*8], w)
	}
	return buf
}

// MatrixFromBytes reverses Matrix.Bytes.
func MatrixFromBytes(b []byte) (*Matrix, error) {
	if len(b) < 16 {
		return nil, errors.New("genome: matrix encoding too short")
	}
	n := int(getUint64(b[0:8]))
	l := int(getUint64(b[8:16]))
	if n < 0 || l < 0 || n > 1<<30 || l > 1<<30 {
		return nil, errors.New("genome: matrix encoding has implausible shape")
	}
	// Validate the payload length before allocating: a hostile header must
	// not drive a huge allocation.
	stride := int64((l + wordBits - 1) / wordBits)
	want := 16 + int64(n)*stride*8
	if int64(len(b)) != want {
		return nil, fmt.Errorf("genome: matrix encoding has %d bytes, want %d", len(b), want)
	}
	m := NewMatrix(n, l)
	for i := range m.words {
		m.words[i] = getUint64(b[16+i*8 : 24+i*8])
	}
	return m, nil
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// ColumnBits is a column-major transpose of a genotype matrix: column l's n
// bits are packed contiguously, so allele counts collapse to popcounts over
// stride-1 words and pair counts to an AND+popcount sweep. The row-major
// Matrix pays one cache miss per row for these queries (rows are a full
// stride apart); the LD phase asks for thousands of pair counts, which makes
// this view the difference between a memory-bound and a compute-bound scan.
//
// The view is a snapshot: mutations to the source matrix after Transpose are
// not reflected.
type ColumnBits struct {
	n, l int
	wpc  int // words per column: (n+63)/64
	//gendpr:secret(individual)
	bits []uint64
}

// Transpose builds the column-major view in one pass over the matrix's set
// bits.
func (m *Matrix) Transpose() *ColumnBits {
	wpc := (m.n + wordBits - 1) / wordBits
	t := &ColumnBits{n: m.n, l: m.l, wpc: wpc, bits: make([]uint64, m.l*wpc)}
	var blk [wordBits]uint64
	for bi := 0; bi < wpc; bi++ {
		i0 := bi * wordBits
		rows := m.n - i0
		if rows > wordBits {
			rows = wordBits
		}
		// One 64-row stripe of the matrix stays cache-resident while every
		// 64-column block in it is gathered and transposed.
		for w := 0; w < m.stride; w++ {
			var any uint64
			for k := 0; k < rows; k++ {
				blk[k] = m.words[(i0+k)*m.stride+w]
				any |= blk[k]
			}
			if any == 0 {
				continue // destination words are already zero
			}
			for k := rows; k < wordBits; k++ {
				blk[k] = 0
			}
			transpose64(&blk)
			c0 := w * wordBits
			cmax := m.l - c0
			if cmax > wordBits {
				cmax = wordBits
			}
			for j := 0; j < cmax; j++ {
				t.bits[(c0+j)*wpc+bi] = blk[j]
			}
		}
	}
	return t
}

// transpose64 transposes a 64x64 bit block in place: bit j of word k moves to
// bit k of word j (LSB-first on both axes). The recursive block-swap runs in
// 6 rounds of masked exchanges instead of 4096 single-bit moves.
func transpose64(a *[wordBits]uint64) {
	mask := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < wordBits; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & mask
			a[k+j] ^= t
			a[k] ^= t << uint(j)
		}
		mask ^= mask << uint(j>>1)
	}
}

// N returns the number of individuals.
func (t *ColumnBits) N() int { return t.n }

// L returns the number of SNP positions.
func (t *ColumnBits) L() int { return t.l }

func (t *ColumnBits) column(l int) []uint64 {
	if l < 0 || l >= t.l {
		panic(fmt.Sprintf("genome: SNP %d out of range for %d columns", l, t.l))
	}
	return t.bits[l*t.wpc : (l+1)*t.wpc]
}

// AlleleCount returns the number of individuals carrying the minor allele at
// SNP position l.
func (t *ColumnBits) AlleleCount(l int) int64 {
	var c int
	for _, w := range t.column(l) {
		c += bits.OnesCount64(w)
	}
	return int64(c)
}

// PairCount returns the number of individuals carrying the minor allele at
// both positions — popcount of the columns' intersection.
func (t *ColumnBits) PairCount(l1, l2 int) int64 {
	a, b := t.column(l1), t.column(l2)
	var c int
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return int64(c)
}

// PairStats computes the correlation sufficient statistics between SNP
// positions l1 and l2, equivalent to Matrix.PairStats on the source matrix.
func (t *ColumnBits) PairStats(l1, l2 int) PairStats {
	return PairStatsFromCounts(int64(t.n), t.AlleleCount(l1), t.AlleleCount(l2), t.PairCount(l1, l2))
}
