package genome

import (
	"fmt"
	"math/rand"
)

// GeneratorConfig controls the synthetic cohort generator.
//
// The paper evaluates on the dbGaP phs001039.v1.p1 Age-Related Macular
// Degeneration dataset, which is access-controlled. The generator substitutes
// a seeded synthetic population that reproduces the statistical structure the
// three GenDPR phases react to:
//
//   - a rare-allele tail that the MAF phase must remove,
//   - haplotype blocks of correlated adjacent SNPs that the LD phase must
//     thin to independent representatives, and
//   - case/reference frequency divergence (associated SNPs plus mild
//     stratification drift) that gives the LR-test real identification power
//     to bound.
type GeneratorConfig struct {
	// SNPs is the number of SNP positions L_des.
	SNPs int
	// CaseN is the number of case genomes across the whole federation.
	CaseN int
	// ReferenceN is the size of the public reference (control) panel.
	ReferenceN int
	// Seed makes generation deterministic.
	Seed int64

	// RareFraction is the fraction of SNPs whose reference MAF falls below
	// the usual 0.05 cutoff (drawn uniformly from [RareLow, RareHigh)).
	RareFraction float64
	// RareLow and RareHigh bound rare-SNP minor allele frequencies.
	RareLow, RareHigh float64
	// CommonLow and CommonHigh bound common-SNP minor allele frequencies.
	CommonLow, CommonHigh float64

	// BlockMeanLen is the mean haplotype-block length in SNPs; block
	// boundaries are drawn geometrically. Values <= 1 disable LD structure.
	BlockMeanLen float64
	// WithinBlockCorr is the probability that an individual's allele at a
	// block-internal SNP copies its allele at the previous SNP, creating
	// high pairwise r^2 within blocks.
	WithinBlockCorr float64
	// BlockFreqJitter perturbs per-SNP frequencies around the block base
	// frequency so blocks are not perfectly homogeneous.
	BlockFreqJitter float64

	// AssociatedFraction is the fraction of SNPs genuinely associated with
	// the phenotype: their case frequency is shifted by EffectSize.
	AssociatedFraction float64
	// EffectSize is the absolute case-frequency shift at associated SNPs.
	EffectSize float64
	// Drift adds uniform(-Drift, +Drift) stratification noise to every
	// case-population frequency, mimicking cohort heterogeneity.
	Drift float64
}

// DefaultGeneratorConfig returns a configuration whose shape mirrors the
// paper's evaluation: the reference panel defaults to the 13,035 control
// genomes of the AMD dataset (scaled when snps/caseN are small).
func DefaultGeneratorConfig(snps, caseN int, seed int64) GeneratorConfig {
	refN := 13035
	if caseN < 1000 {
		// Keep quick tests quick: a reference panel comparable in size to
		// the case population preserves all statistical behaviour.
		refN = caseN
		if refN < 50 {
			refN = 50
		}
	}
	// The default mix is calibrated against the funnel shape of the paper's
	// dbGaP evaluation (Table 4): at 14,860 genomes the MAF phase retains
	// roughly 30-45% of SNPs and the LD phase then keeps only ~5-10% of the
	// survivors — real genomes sit in long haplotype blocks and carry a
	// heavy rare-variant tail.
	return GeneratorConfig{
		SNPs:               snps,
		CaseN:              caseN,
		ReferenceN:         refN,
		Seed:               seed,
		RareFraction:       0.58,
		RareLow:            0.005,
		RareHigh:           0.045,
		CommonLow:          0.05,
		CommonHigh:         0.50,
		BlockMeanLen:       12,
		WithinBlockCorr:    0.96,
		BlockFreqJitter:    0.02,
		AssociatedFraction: 0.05,
		EffectSize:         0.08,
		Drift:              0.015,
	}
}

// Validate checks the configuration for structural errors.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.SNPs <= 0:
		return fmt.Errorf("genome: generator needs SNPs > 0, got %d", c.SNPs)
	case c.CaseN <= 0:
		return fmt.Errorf("genome: generator needs CaseN > 0, got %d", c.CaseN)
	case c.ReferenceN <= 0:
		return fmt.Errorf("genome: generator needs ReferenceN > 0, got %d", c.ReferenceN)
	case c.RareFraction < 0 || c.RareFraction > 1:
		return fmt.Errorf("genome: RareFraction %v outside [0,1]", c.RareFraction)
	case c.AssociatedFraction < 0 || c.AssociatedFraction > 1:
		return fmt.Errorf("genome: AssociatedFraction %v outside [0,1]", c.AssociatedFraction)
	case c.WithinBlockCorr < 0 || c.WithinBlockCorr >= 1:
		return fmt.Errorf("genome: WithinBlockCorr %v outside [0,1)", c.WithinBlockCorr)
	}
	return nil
}

// Generate produces a deterministic synthetic cohort for the configuration.
func Generate(cfg GeneratorConfig) (*Cohort, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	blockStart := layoutBlocks(cfg, rng)
	refFreq := layoutFrequencies(cfg, rng, blockStart)

	caseFreq := make([]float64, cfg.SNPs)
	for l, p := range refFreq {
		caseFreq[l] = clampFreq(p + (rng.Float64()*2-1)*cfg.Drift)
	}
	associated := pickAssociated(cfg, rng)
	for _, l := range associated {
		shift := cfg.EffectSize
		if rng.Intn(2) == 0 {
			shift = -shift
		}
		caseFreq[l] = clampFreq(caseFreq[l] + shift)
	}

	cohort := &Cohort{
		Case:           sample(cfg.CaseN, caseFreq, blockStart, cfg.WithinBlockCorr, rng),
		Reference:      sample(cfg.ReferenceN, refFreq, blockStart, cfg.WithinBlockCorr, rng),
		TrueAssociated: associated,
	}
	return cohort, nil
}

// layoutBlocks marks which SNP positions start a new haplotype block.
func layoutBlocks(cfg GeneratorConfig, rng *rand.Rand) []bool {
	start := make([]bool, cfg.SNPs)
	if cfg.SNPs > 0 {
		start[0] = true
	}
	if cfg.BlockMeanLen <= 1 {
		for l := range start {
			start[l] = true
		}
		return start
	}
	pBreak := 1 / cfg.BlockMeanLen
	for l := 1; l < cfg.SNPs; l++ {
		start[l] = rng.Float64() < pBreak
	}
	return start
}

// layoutFrequencies draws per-SNP reference minor-allele frequencies, keeping
// SNPs inside a block close to the block's base frequency.
func layoutFrequencies(cfg GeneratorConfig, rng *rand.Rand, blockStart []bool) []float64 {
	freq := make([]float64, cfg.SNPs)
	var base float64
	for l := 0; l < cfg.SNPs; l++ {
		if blockStart[l] {
			if rng.Float64() < cfg.RareFraction {
				base = cfg.RareLow + rng.Float64()*(cfg.RareHigh-cfg.RareLow)
			} else {
				base = cfg.CommonLow + rng.Float64()*(cfg.CommonHigh-cfg.CommonLow)
			}
		}
		freq[l] = clampFreq(base + (rng.Float64()*2-1)*cfg.BlockFreqJitter)
	}
	return freq
}

func pickAssociated(cfg GeneratorConfig, rng *rand.Rand) []int {
	k := int(float64(cfg.SNPs) * cfg.AssociatedFraction)
	if k == 0 {
		return nil
	}
	perm := rng.Perm(cfg.SNPs)[:k]
	out := make([]int, k)
	copy(out, perm)
	return out
}

// sample draws n genomes. Within a haplotype block each individual copies its
// previous allele with probability corr, producing the within-block linkage
// disequilibrium the LD phase must detect.
func sample(n int, freq []float64, blockStart []bool, corr float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, len(freq))
	for i := 0; i < n; i++ {
		prev := false
		for l := 0; l < len(freq); l++ {
			var minor bool
			if !blockStart[l] && rng.Float64() < corr {
				minor = prev
			} else {
				minor = rng.Float64() < freq[l]
			}
			if minor {
				m.Set(i, l, true)
			}
			prev = minor
		}
	}
	return m
}

func clampFreq(p float64) float64 {
	const lo, hi = 0.001, 0.95
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}
