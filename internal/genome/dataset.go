package genome

import (
	"errors"
	"fmt"
)

// Population identifies which GWAS population a genome belongs to.
type Population int

const (
	// Case is the population exhibiting the phenotype under study.
	Case Population = iota + 1
	// Control is the population without the phenotype; the paper uses it as
	// the public reference panel for the LR-test.
	Control
)

// String returns the population name.
func (p Population) String() string {
	switch p {
	case Case:
		return "case"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("Population(%d)", int(p))
	}
}

// Cohort is the full data of one study: the private case genomes held by the
// federation and the public reference (control) genomes available to every
// member.
type Cohort struct {
	// Case holds the case-population genotypes (private, federation-held).
	Case *Matrix
	// Reference holds the public reference-panel genotypes.
	Reference *Matrix
	// TrueAssociated lists the SNP positions the generator made genuinely
	// associated with the phenotype. Empty for real data; used by tests and
	// accuracy reporting only — the protocol never reads it.
	TrueAssociated []int
}

// Validate checks the structural invariants of the cohort.
func (c *Cohort) Validate() error {
	if c.Case == nil || c.Reference == nil {
		return errors.New("genome: cohort missing case or reference matrix")
	}
	if c.Case.L() != c.Reference.L() {
		return fmt.Errorf("%w: case has %d SNPs, reference %d", ErrDimensionMismatch, c.Case.L(), c.Reference.L())
	}
	return nil
}

// SNPs returns the number of SNP positions in the cohort.
func (c *Cohort) SNPs() int { return c.Case.L() }

// Partition splits the case genomes horizontally into g near-equal shards,
// one per genome data owner, mirroring the paper's "divided genomes equally
// among federation members". The reference panel is public and shared, so it
// is not partitioned. Row order is preserved: shard i receives a contiguous
// row range, and concatenating all shards restores the original matrix.
func (c *Cohort) Partition(g int) ([]*Matrix, error) {
	if g <= 0 {
		return nil, fmt.Errorf("genome: cannot partition into %d shards", g)
	}
	n := c.Case.N()
	if g > n {
		return nil, fmt.Errorf("genome: %d shards exceed %d case genomes", g, n)
	}
	shards := make([]*Matrix, 0, g)
	base, extra := n/g, n%g
	at := 0
	for i := 0; i < g; i++ {
		size := base
		if i < extra {
			size++
		}
		shards = append(shards, c.Case.SelectRows(at, at+size))
		at += size
	}
	return shards, nil
}

// Frequencies converts per-SNP allele counts into frequencies given the
// number of individuals the counts were computed over.
func Frequencies(counts []int64, n int64) []float64 {
	freqs := make([]float64, len(counts))
	if n == 0 {
		return freqs
	}
	for i, c := range counts {
		freqs[i] = float64(c) / float64(n)
	}
	return freqs
}
