package genome

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(t testing.TB, n, l int, seed int64) *Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, l)
	for i := 0; i < n; i++ {
		for j := 0; j < l; j++ {
			if rng.Intn(2) == 1 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix(3, 130) // spans three words per row
	if m.Get(0, 0) || m.Get(2, 129) {
		t.Fatal("new matrix must be all major alleles")
	}
	m.Set(1, 64, true)
	m.Set(2, 129, true)
	if !m.Get(1, 64) {
		t.Error("Set(1,64) not visible")
	}
	if !m.Get(2, 129) {
		t.Error("Set(2,129) not visible")
	}
	if m.Get(0, 64) || m.Get(1, 65) {
		t.Error("Set leaked into neighbouring cells")
	}
	m.Set(1, 64, false)
	if m.Get(1, 64) {
		t.Error("clearing a cell failed")
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 10)
	cases := []struct {
		name string
		f    func()
	}{
		{"get row", func() { m.Get(2, 0) }},
		{"get col", func() { m.Get(0, 10) }},
		{"set neg", func() { m.Set(-1, 0, true) }},
		{"count col", func() { m.AlleleCount(10) }},
		{"pair col", func() { m.PairCount(0, -1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestAlleleCountsMatchNaive(t *testing.T) {
	m := randomMatrix(t, 37, 301, 1)
	counts := m.AlleleCounts()
	if len(counts) != 301 {
		t.Fatalf("got %d counts, want 301", len(counts))
	}
	for l := 0; l < m.L(); l++ {
		var want int64
		for i := 0; i < m.N(); i++ {
			if m.Get(i, l) {
				want++
			}
		}
		if counts[l] != want {
			t.Fatalf("column %d: AlleleCounts=%d naive=%d", l, counts[l], want)
		}
		if got := m.AlleleCount(l); got != want {
			t.Fatalf("column %d: AlleleCount=%d naive=%d", l, got, want)
		}
	}
}

func TestPairCountMatchesNaive(t *testing.T) {
	m := randomMatrix(t, 41, 97, 2)
	for _, pair := range [][2]int{{0, 1}, {5, 80}, {96, 0}, {63, 64}} {
		var want int64
		for i := 0; i < m.N(); i++ {
			if m.Get(i, pair[0]) && m.Get(i, pair[1]) {
				want++
			}
		}
		if got := m.PairCount(pair[0], pair[1]); got != want {
			t.Errorf("pair %v: got %d, want %d", pair, got, want)
		}
	}
}

func TestPairStatsBinaryIdentity(t *testing.T) {
	m := randomMatrix(t, 29, 40, 3)
	s := m.PairStats(3, 17)
	if s.N != 29 {
		t.Errorf("N=%d, want 29", s.N)
	}
	if s.SumXX != s.SumX || s.SumYY != s.SumY {
		t.Errorf("binary genotypes must have SumXX==SumX and SumYY==SumY: %+v", s)
	}
	if s.SumXY > s.SumX || s.SumXY > s.SumY {
		t.Errorf("SumXY cannot exceed the marginals: %+v", s)
	}
}

func TestPairStatsAddIsComponentwise(t *testing.T) {
	a := PairStats{N: 1, SumX: 2, SumY: 3, SumXY: 4, SumXX: 5, SumYY: 6}
	b := PairStats{N: 10, SumX: 20, SumY: 30, SumXY: 40, SumXX: 50, SumYY: 60}
	got := a.Add(b)
	want := PairStats{N: 11, SumX: 22, SumY: 33, SumXY: 44, SumXX: 55, SumYY: 66}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

func TestSelectColumns(t *testing.T) {
	m := randomMatrix(t, 11, 70, 4)
	cols := []int{69, 0, 64, 33}
	sub := m.SelectColumns(cols)
	if sub.N() != 11 || sub.L() != 4 {
		t.Fatalf("shape %dx%d, want 11x4", sub.N(), sub.L())
	}
	for i := 0; i < m.N(); i++ {
		for j, l := range cols {
			if sub.Get(i, j) != m.Get(i, l) {
				t.Fatalf("cell (%d,%d) mismatch for source column %d", i, j, l)
			}
		}
	}
}

func TestSelectRowsAndConcatRoundTrip(t *testing.T) {
	m := randomMatrix(t, 17, 130, 5)
	a := m.SelectRows(0, 6)
	b := m.SelectRows(6, 11)
	c := m.SelectRows(11, 17)
	back, err := Concat(a, b, c)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if !back.Equal(m) {
		t.Fatal("SelectRows+Concat did not reconstruct the original matrix")
	}
}

func TestConcatDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 10)
	b := NewMatrix(2, 11)
	if _, err := Concat(a, b); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
}

func TestConcatEmpty(t *testing.T) {
	m, err := Concat()
	if err != nil {
		t.Fatalf("Concat(): %v", err)
	}
	if m.N() != 0 || m.L() != 0 {
		t.Fatalf("empty concat shape %dx%d", m.N(), m.L())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := randomMatrix(t, 5, 20, 6)
	c := m.Clone()
	if !c.Equal(m) {
		t.Fatal("clone differs from original")
	}
	c.Set(0, 0, !c.Get(0, 0))
	if c.Equal(m) {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestMatrixBytesRoundTrip(t *testing.T) {
	m := randomMatrix(t, 9, 77, 7)
	got, err := MatrixFromBytes(m.Bytes())
	if err != nil {
		t.Fatalf("MatrixFromBytes: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("Bytes round trip lost data")
	}
}

func TestMatrixFromBytesRejectsGarbage(t *testing.T) {
	if _, err := MatrixFromBytes([]byte{1, 2, 3}); err == nil {
		t.Error("short input must fail")
	}
	m := NewMatrix(4, 4)
	b := m.Bytes()
	if _, err := MatrixFromBytes(b[:len(b)-1]); err == nil {
		t.Error("truncated input must fail")
	}
	// Implausible shape: n encoded as 2^40.
	bad := make([]byte, 16)
	bad[2] = 1
	if _, err := MatrixFromBytes(bad); err == nil {
		t.Error("implausible shape must fail")
	}
}

// Property: serialization round-trips for arbitrary shapes and contents.
func TestQuickMatrixSerializationRoundTrip(t *testing.T) {
	f := func(seed int64, n, l uint8) bool {
		m := randomMatrix(t, int(n%40)+1, int(l%200)+1, seed)
		back, err := MatrixFromBytes(m.Bytes())
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: column sums are preserved by row partitioning and re-concatenation
// — the algebraic fact Phase 1 relies on when GDO count vectors are summed.
func TestQuickPartitionPreservesAlleleCounts(t *testing.T) {
	f := func(seed int64, n, l, g uint8) bool {
		rows := int(n%60) + 3
		cols := int(l%120) + 1
		parts := int(g%4) + 2
		if parts > rows {
			parts = rows
		}
		m := randomMatrix(t, rows, cols, seed)
		c := &Cohort{Case: m, Reference: NewMatrix(1, cols)}
		shards, err := c.Partition(parts)
		if err != nil {
			return false
		}
		sum := make([]int64, cols)
		total := 0
		for _, s := range shards {
			total += s.N()
			for i, v := range s.AlleleCounts() {
				sum[i] += v
			}
		}
		if total != rows {
			return false
		}
		want := m.AlleleCounts()
		for i := range want {
			if sum[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlleleCounts(b *testing.B) {
	m := randomMatrix(b, 2000, 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.AlleleCounts()
	}
}

func BenchmarkPairStats(b *testing.B) {
	m := randomMatrix(b, 2000, 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PairStats(10, 11)
	}
}

func TestTransposeMatchesRowMajor(t *testing.T) {
	// Shapes crossing both the row-word (l=64) and column-word (n=64)
	// boundaries, plus degenerate edges.
	shapes := [][2]int{{1, 1}, {63, 65}, {64, 64}, {65, 63}, {130, 200}, {0, 5}, {5, 0}}
	for _, sh := range shapes {
		n, l := sh[0], sh[1]
		m := randomMatrix(t, n, l, int64(7*n+l))
		tr := m.Transpose()
		if tr.N() != n || tr.L() != l {
			t.Fatalf("%dx%d: transpose reports %dx%d", n, l, tr.N(), tr.L())
		}
		for snp := 0; snp < l; snp++ {
			if got, want := tr.AlleleCount(snp), m.AlleleCount(snp); got != want {
				t.Fatalf("%dx%d: AlleleCount(%d)=%d, want %d", n, l, snp, got, want)
			}
		}
		for trial := 0; trial < 50 && l > 0; trial++ {
			a, b := (trial*13)%l, (trial*29+7)%l
			if got, want := tr.PairCount(a, b), m.PairCount(a, b); got != want {
				t.Fatalf("%dx%d: PairCount(%d,%d)=%d, want %d", n, l, a, b, got, want)
			}
			if got, want := tr.PairStats(a, b), m.PairStats(a, b); got != want {
				t.Fatalf("%dx%d: PairStats(%d,%d)=%+v, want %+v", n, l, a, b, got, want)
			}
		}
	}
}
