package genome

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig(200, 300, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !a.Case.Equal(b.Case) || !a.Reference.Equal(b.Reference) {
		t.Fatal("same seed must produce identical cohorts")
	}
	c, err := Generate(DefaultGeneratorConfig(200, 300, 43))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Case.Equal(c.Case) {
		t.Fatal("different seeds should produce different cohorts")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultGeneratorConfig(150, 220, 1)
	cohort, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := cohort.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cohort.Case.N() != 220 || cohort.Case.L() != 150 {
		t.Errorf("case shape %dx%d, want 220x150", cohort.Case.N(), cohort.Case.L())
	}
	if cohort.Reference.L() != 150 {
		t.Errorf("reference has %d SNPs, want 150", cohort.Reference.L())
	}
	if cohort.Reference.N() != cfg.ReferenceN {
		t.Errorf("reference has %d genomes, want %d", cohort.Reference.N(), cfg.ReferenceN)
	}
	if len(cohort.TrueAssociated) == 0 {
		t.Error("default config should plant associated SNPs")
	}
	for _, l := range cohort.TrueAssociated {
		if l < 0 || l >= 150 {
			t.Errorf("associated SNP %d out of range", l)
		}
	}
}

func TestGenerateRareTailExists(t *testing.T) {
	cfg := DefaultGeneratorConfig(600, 400, 7)
	cohort, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	freqs := Frequencies(cohort.Reference.AlleleCounts(), int64(cohort.Reference.N()))
	rare := 0
	for _, p := range freqs {
		if p < 0.05 {
			rare++
		}
	}
	frac := float64(rare) / float64(len(freqs))
	// RareFraction 0.58 with block structure and sampling noise: most SNPs
	// should fall below the 0.05 cutoff, but far from all.
	if frac < 0.35 || frac > 0.85 {
		t.Errorf("rare fraction %.2f outside plausible [0.35, 0.85]", frac)
	}
}

func TestGenerateLDStructure(t *testing.T) {
	cfg := DefaultGeneratorConfig(400, 800, 11)
	cohort, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Average adjacent-pair correlation must clearly exceed zero: the LD
	// phase has something to find.
	var sum float64
	pairs := 0
	for l := 0; l+1 < cohort.SNPs(); l++ {
		s := cohort.Reference.PairStats(l, l+1)
		r2 := sampleR2(s)
		if math.IsNaN(r2) {
			continue
		}
		sum += r2
		pairs++
	}
	mean := sum / float64(pairs)
	if mean < 0.2 {
		t.Errorf("mean adjacent r^2 = %.3f; generator produced no LD structure", mean)
	}
}

// sampleR2 computes r^2 from sufficient statistics for the test's own use.
func sampleR2(s PairStats) float64 {
	n := float64(s.N)
	num := n*float64(s.SumXY) - float64(s.SumX)*float64(s.SumY)
	vx := n*float64(s.SumXX) - float64(s.SumX)*float64(s.SumX)
	vy := n*float64(s.SumYY) - float64(s.SumY)*float64(s.SumY)
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	r := num / math.Sqrt(vx*vy)
	return r * r
}

func TestGenerateAssociationSignal(t *testing.T) {
	cfg := DefaultGeneratorConfig(500, 2000, 13)
	cfg.ReferenceN = 2000
	cohort, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	caseFreq := Frequencies(cohort.Case.AlleleCounts(), int64(cohort.Case.N()))
	refFreq := Frequencies(cohort.Reference.AlleleCounts(), int64(cohort.Reference.N()))

	assoc := make(map[int]bool, len(cohort.TrueAssociated))
	for _, l := range cohort.TrueAssociated {
		assoc[l] = true
	}
	var assocGap, nullGap float64
	var nAssoc, nNull int
	for l := range caseFreq {
		gap := math.Abs(caseFreq[l] - refFreq[l])
		if assoc[l] {
			assocGap += gap
			nAssoc++
		} else {
			nullGap += gap
			nNull++
		}
	}
	if nAssoc == 0 {
		t.Fatal("no associated SNPs generated")
	}
	if assocGap/float64(nAssoc) <= nullGap/float64(nNull) {
		t.Errorf("associated SNPs show no stronger case/reference divergence: assoc %.4f vs null %.4f",
			assocGap/float64(nAssoc), nullGap/float64(nNull))
	}
}

func TestGeneratorConfigValidate(t *testing.T) {
	base := DefaultGeneratorConfig(10, 10, 1)
	cases := []struct {
		name   string
		mutate func(*GeneratorConfig)
	}{
		{"zero snps", func(c *GeneratorConfig) { c.SNPs = 0 }},
		{"neg case", func(c *GeneratorConfig) { c.CaseN = -1 }},
		{"zero ref", func(c *GeneratorConfig) { c.ReferenceN = 0 }},
		{"rare frac", func(c *GeneratorConfig) { c.RareFraction = 1.5 }},
		{"assoc frac", func(c *GeneratorConfig) { c.AssociatedFraction = -0.1 }},
		{"corr one", func(c *GeneratorConfig) { c.WithinBlockCorr = 1.0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
			if _, err := Generate(cfg); err == nil {
				t.Fatal("Generate must reject invalid config")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
}

func TestPartition(t *testing.T) {
	cohort, err := Generate(DefaultGeneratorConfig(50, 103, 3))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	shards, err := cohort.Partition(5)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if len(shards) != 5 {
		t.Fatalf("got %d shards, want 5", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.N()
		if s.L() != 50 {
			t.Errorf("shard has %d SNPs, want 50", s.L())
		}
	}
	if total != 103 {
		t.Errorf("shards cover %d genomes, want 103", total)
	}
	// Near-equal: sizes differ by at most one.
	min, max := shards[0].N(), shards[0].N()
	for _, s := range shards {
		if s.N() < min {
			min = s.N()
		}
		if s.N() > max {
			max = s.N()
		}
	}
	if max-min > 1 {
		t.Errorf("unbalanced shards: min %d max %d", min, max)
	}
	back, err := Concat(shards...)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if !back.Equal(cohort.Case) {
		t.Error("partition must preserve row order")
	}
}

func TestPartitionErrors(t *testing.T) {
	cohort := &Cohort{Case: NewMatrix(3, 5), Reference: NewMatrix(1, 5)}
	if _, err := cohort.Partition(0); err == nil {
		t.Error("g=0 must fail")
	}
	if _, err := cohort.Partition(4); err == nil {
		t.Error("more shards than genomes must fail")
	}
}

func TestFrequencies(t *testing.T) {
	got := Frequencies([]int64{0, 5, 10}, 10)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("freq[%d]=%v, want %v", i, got[i], want[i])
		}
	}
	zero := Frequencies([]int64{3}, 0)
	if zero[0] != 0 {
		t.Error("n=0 must yield zero frequencies, not NaN/Inf")
	}
}

func TestCohortValidate(t *testing.T) {
	if err := (&Cohort{}).Validate(); err == nil {
		t.Error("nil matrices must fail validation")
	}
	c := &Cohort{Case: NewMatrix(2, 5), Reference: NewMatrix(2, 6)}
	if err := c.Validate(); err == nil {
		t.Error("SNP mismatch must fail validation")
	}
}
