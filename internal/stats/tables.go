package stats

import (
	"errors"
	"math"
)

// SingleTable is the per-SNP singlewise contingency table of the paper's
// Table 2a: minor/major allele counts split by case and control population.
type SingleTable struct {
	CaseMinor    int64
	CaseMajor    int64
	ControlMinor int64
	ControlMajor int64
}

// NewSingleTable builds the table from population sizes and minor-allele
// counts.
func NewSingleTable(caseN, caseMinor, controlN, controlMinor int64) (SingleTable, error) {
	if caseMinor < 0 || controlMinor < 0 || caseMinor > caseN || controlMinor > controlN {
		// The counts are pre-release aggregates: the message must not
		// carry them (error strings are host-visible).
		return SingleTable{}, errors.New("stats: inconsistent case/control counts")
	}
	return SingleTable{
		CaseMinor:    caseMinor,
		CaseMajor:    caseN - caseMinor,
		ControlMinor: controlMinor,
		ControlMajor: controlN - controlMinor,
	}, nil
}

// CaseTotal returns N^case.
func (t SingleTable) CaseTotal() int64 { return t.CaseMinor + t.CaseMajor }

// ControlTotal returns N^control.
func (t SingleTable) ControlTotal() int64 { return t.ControlMinor + t.ControlMajor }

// Total returns N_T.
func (t SingleTable) Total() int64 { return t.CaseTotal() + t.ControlTotal() }

// ChiSquarePaper computes the association statistic in the simplified form
// the paper states in Section 3.1: chi^2 = (N_i^case - N_i^control)^2 /
// N_i^control over the minor-allele counts. It returns +Inf when the control
// count is zero and the case count is not, and 0 when both are zero.
func (t SingleTable) ChiSquarePaper() float64 {
	diff := float64(t.CaseMinor - t.ControlMinor)
	if t.ControlMinor == 0 {
		if t.CaseMinor == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return diff * diff / float64(t.ControlMinor)
}

// ChiSquare computes the standard Pearson chi-square statistic of the 2x2
// allele-by-population table, the form GWAS tooling conventionally uses. It
// returns 0 for degenerate tables (an empty margin).
func (t SingleTable) ChiSquare() float64 {
	a, b := float64(t.CaseMinor), float64(t.ControlMinor)
	c, d := float64(t.CaseMajor), float64(t.ControlMajor)
	n := a + b + c + d
	r1, r2 := a+b, c+d
	c1, c2 := a+c, b+d
	if r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0 {
		return 0
	}
	det := a*d - b*c
	return n * det * det / (r1 * r2 * c1 * c2)
}

// AssocPValue returns the chi-square(1) p-value of the association statistic.
// When paperForm is true the paper's simplified statistic is used; otherwise
// the standard Pearson form.
func (t SingleTable) AssocPValue(paperForm bool) (float64, error) {
	var x float64
	if paperForm {
		x = t.ChiSquarePaper()
	} else {
		x = t.ChiSquare()
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	return ChiSquareSurvival(x, 1)
}

// ChiSquareYates computes the Pearson statistic with Yates' continuity
// correction, the conservative variant GWAS tooling applies to small counts.
func (t SingleTable) ChiSquareYates() float64 {
	a, b := float64(t.CaseMinor), float64(t.ControlMinor)
	c, d := float64(t.CaseMajor), float64(t.ControlMajor)
	n := a + b + c + d
	r1, r2 := a+b, c+d
	c1, c2 := a+c, b+d
	if r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0 {
		return 0
	}
	det := math.Abs(a*d-b*c) - n/2
	if det < 0 {
		det = 0
	}
	return n * det * det / (r1 * r2 * c1 * c2)
}

// OddsRatio returns the allelic odds ratio (case odds of carrying the minor
// allele over control odds), with the Haldane-Anscombe 0.5 correction when
// any cell is empty. A monomorphic table returns 1 (no association).
func (t SingleTable) OddsRatio() float64 {
	a, b := float64(t.CaseMinor), float64(t.ControlMinor)
	c, d := float64(t.CaseMajor), float64(t.ControlMajor)
	if a+b == 0 || c+d == 0 {
		return 1
	}
	if a == 0 || b == 0 || c == 0 || d == 0 {
		a += 0.5
		b += 0.5
		c += 0.5
		d += 0.5
	}
	return (a * d) / (b * c)
}

// PairTable is the pairwise contingency table of the paper's Table 2b over
// two SNP positions: counts of the four minor/major combinations.
type PairTable struct {
	C00 int64 // major, major
	C01 int64 // major at l1, minor at l2
	C10 int64 // minor at l1, major at l2
	C11 int64 // minor, minor
}

// Totals returns the margins (C0-, C1-, C-0, C-1) and the grand total.
func (t PairTable) Totals() (r0, r1, c0, c1, n int64) {
	r0 = t.C00 + t.C01
	r1 = t.C10 + t.C11
	c0 = t.C00 + t.C10
	c1 = t.C01 + t.C11
	n = r0 + r1
	return
}

// R2 computes the linkage-disequilibrium statistic of Section 3.1:
// r^2 = (C00*C11 - C01*C10)^2 / (C0-*C1-*C-0*C-1). Degenerate tables (an
// empty margin, meaning one SNP is monomorphic) yield 0.
func (t PairTable) R2() float64 {
	r0, r1, c0, c1, _ := t.Totals()
	den := float64(r0) * float64(r1) * float64(c0) * float64(c1)
	if den == 0 {
		return 0
	}
	det := float64(t.C00)*float64(t.C11) - float64(t.C01)*float64(t.C10)
	return det * det / den
}
