package stats

import (
	"math"

	"gendpr/internal/genome"
)

// R2FromStats computes the squared Pearson correlation between two SNPs from
// pooled sufficient statistics (the quantities GDO enclaves outsource during
// Phase 2). For binary genotypes this equals the contingency-table r^2 of
// Section 3.1. Degenerate input (a monomorphic SNP) yields 0.
func R2FromStats(s genome.PairStats) float64 {
	n := float64(s.N)
	if n == 0 {
		return 0
	}
	num := n*float64(s.SumXY) - float64(s.SumX)*float64(s.SumY)
	vx := n*float64(s.SumXX) - float64(s.SumX)*float64(s.SumX)
	vy := n*float64(s.SumYY) - float64(s.SumY)*float64(s.SumY)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	r2 := num * num / (vx * vy)
	if r2 > 1 {
		// Guard against floating-point drift above the mathematical bound.
		r2 = 1
	}
	return r2
}

// PairTableFromStats reconstructs the pairwise contingency table of Table 2b
// from binary-genotype sufficient statistics.
func PairTableFromStats(s genome.PairStats) PairTable {
	return PairTable{
		C11: s.SumXY,
		C10: s.SumX - s.SumXY,
		C01: s.SumY - s.SumXY,
		C00: s.N - s.SumX - s.SumY + s.SumXY,
	}
}

// LDPValue returns the chi-square(1) p-value for the hypothesis that two
// SNPs are uncorrelated, using the classical identity chi^2 = N * r^2. Small
// p-values indicate high linkage disequilibrium; the paper removes a SNP of
// every pair with p below the LD cutoff (1e-5).
func LDPValue(s genome.PairStats) (float64, error) {
	r2 := R2FromStats(s)
	x := float64(s.N) * r2
	if math.IsNaN(x) {
		return 0, ErrBadArgument
	}
	return ChiSquareSurvival(x, 1)
}
