package stats

import (
	"errors"
	"fmt"
	"math"

	"gendpr/internal/genome"
)

// ErrDegeneratePair reports a SNP pair whose pooled statistics carry no
// correlation signal: an empty pool or a zero-variance (monomorphic) SNP.
// Correlation is undefined for such pairs — 0/0 in the r^2 quotient — so the
// helpers surface a typed error instead of silently propagating a NaN into
// the LD ranking. Callers that rank pairs treat it as statistical
// independence (p = 1).
var ErrDegeneratePair = errors.New("stats: degenerate SNP pair (zero variance)")

// R2FromStats computes the squared Pearson correlation between two SNPs from
// pooled sufficient statistics (the quantities GDO enclaves outsource during
// Phase 2). For binary genotypes this equals the contingency-table r^2 of
// Section 3.1. Degenerate input (empty pool or monomorphic SNP) yields 0;
// use R2FromStatsChecked to distinguish that from a genuine zero.
func R2FromStats(s genome.PairStats) float64 {
	r2, err := R2FromStatsChecked(s)
	if err != nil {
		return 0
	}
	return r2
}

// R2FromStatsChecked is R2FromStats with an explicit degenerate-input signal:
// it returns ErrDegeneratePair when the correlation is mathematically
// undefined (N == 0, or either SNP has zero variance in the pool) instead of
// folding those cases into r^2 = 0.
func R2FromStatsChecked(s genome.PairStats) (float64, error) {
	n := float64(s.N)
	if n == 0 {
		return 0, fmt.Errorf("%w: empty pool", ErrDegeneratePair)
	}
	num := n*float64(s.SumXY) - float64(s.SumX)*float64(s.SumY)
	vx := n*float64(s.SumXX) - float64(s.SumX)*float64(s.SumX)
	vy := n*float64(s.SumYY) - float64(s.SumY)*float64(s.SumY)
	if vx <= 0 || vy <= 0 {
		// The variances are derived from pre-release pair sums; the error
		// string travels to leader logs and must not carry their values.
		return 0, fmt.Errorf("%w: non-positive variance", ErrDegeneratePair)
	}
	r2 := num * num / (vx * vy)
	if r2 > 1 {
		// Guard against floating-point drift above the mathematical bound.
		r2 = 1
	}
	return r2, nil
}

// PairTableFromStats reconstructs the pairwise contingency table of Table 2b
// from binary-genotype sufficient statistics.
func PairTableFromStats(s genome.PairStats) PairTable {
	return PairTable{
		C11: s.SumXY,
		C10: s.SumX - s.SumXY,
		C01: s.SumY - s.SumXY,
		C00: s.N - s.SumX - s.SumY + s.SumXY,
	}
}

// LDPValue returns the chi-square(1) p-value for the hypothesis that two
// SNPs are uncorrelated, using the classical identity chi^2 = N * r^2. Small
// p-values indicate high linkage disequilibrium; the paper removes a SNP of
// every pair with p below the LD cutoff (1e-5). Degenerate pairs (empty pool
// or a monomorphic SNP) return ErrDegeneratePair rather than a NaN-tainted
// statistic; rankers map that to p = 1 (no evidence of correlation).
func LDPValue(s genome.PairStats) (float64, error) {
	r2, err := R2FromStatsChecked(s)
	if err != nil {
		return 0, err
	}
	x := float64(s.N) * r2
	if math.IsNaN(x) {
		return 0, ErrBadArgument
	}
	return ChiSquareSurvival(x, 1)
}
