package stats

import "fmt"

// MAF converts a pooled minor-allele count into a minor-allele frequency.
// The paper's Phase 1 computes globalAlleleFreq[l] = totalGlobalCounts[l]/NT.
func MAF(count, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}

// FilterMAF returns the indices (into counts) of SNPs whose pooled frequency
// is at least cutoff — the SNPs Phase 1 retains in L'.
func FilterMAF(counts []int64, total int64, cutoff float64) []int {
	kept := make([]int, 0, len(counts))
	for l, c := range counts {
		if MAF(c, total) >= cutoff {
			kept = append(kept, l)
		}
	}
	return kept
}

// SumCounts adds per-SNP count vectors elementwise, the leader-enclave
// aggregation of Phase 1. It returns an error when vector lengths disagree
// (a malformed or tampered GDO contribution); summing zero vectors yields nil.
func SumCounts(vectors ...[]int64) ([]int64, error) {
	if len(vectors) == 0 {
		return nil, nil
	}
	out := make([]int64, len(vectors[0]))
	for _, v := range vectors {
		if len(v) != len(out) {
			return nil, fmt.Errorf("stats: count vector length %d, want %d", len(v), len(out))
		}
		for i, c := range v {
			out[i] += c
		}
	}
	return out, nil
}
