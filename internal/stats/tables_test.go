package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gendpr/internal/genome"
)

func TestNewSingleTable(t *testing.T) {
	tab, err := NewSingleTable(100, 30, 200, 50)
	if err != nil {
		t.Fatalf("NewSingleTable: %v", err)
	}
	if tab.CaseMajor != 70 || tab.ControlMajor != 150 {
		t.Errorf("major counts %d/%d, want 70/150", tab.CaseMajor, tab.ControlMajor)
	}
	if tab.CaseTotal() != 100 || tab.ControlTotal() != 200 || tab.Total() != 300 {
		t.Errorf("totals %d/%d/%d", tab.CaseTotal(), tab.ControlTotal(), tab.Total())
	}
}

func TestNewSingleTableRejectsInconsistent(t *testing.T) {
	if _, err := NewSingleTable(10, 11, 10, 5); err == nil {
		t.Error("minor > N must fail")
	}
	if _, err := NewSingleTable(10, -1, 10, 5); err == nil {
		t.Error("negative count must fail")
	}
}

func TestChiSquarePaper(t *testing.T) {
	tab := SingleTable{CaseMinor: 30, ControlMinor: 20, CaseMajor: 70, ControlMajor: 80}
	want := float64(30-20) * float64(30-20) / 20
	if got := tab.ChiSquarePaper(); got != want {
		t.Errorf("ChiSquarePaper=%v, want %v", got, want)
	}
	zero := SingleTable{}
	if got := zero.ChiSquarePaper(); got != 0 {
		t.Errorf("all-zero table: %v, want 0", got)
	}
	inf := SingleTable{CaseMinor: 5}
	if got := inf.ChiSquarePaper(); !math.IsInf(got, 1) {
		t.Errorf("control=0,case>0: %v, want +Inf", got)
	}
}

func TestChiSquarePearsonKnownValue(t *testing.T) {
	// Hand-computed: a=10 b=20 c=30 d=40, n=100.
	// chi2 = n(ad-bc)^2 / (r1 r2 c1 c2) = 100*(400-600)^2/(30*70*40*60).
	tab := SingleTable{CaseMinor: 10, ControlMinor: 20, CaseMajor: 30, ControlMajor: 40}
	want := 100.0 * 200 * 200 / (30.0 * 70 * 40 * 60)
	if got := tab.ChiSquare(); !almostEqual(got, want, 1e-12) {
		t.Errorf("ChiSquare=%v, want %v", got, want)
	}
}

func TestChiSquareDegenerateMargins(t *testing.T) {
	// Monomorphic SNP: no minor alleles anywhere.
	tab := SingleTable{CaseMajor: 50, ControlMajor: 60}
	if got := tab.ChiSquare(); got != 0 {
		t.Errorf("degenerate table chi2=%v, want 0", got)
	}
}

func TestChiSquareIndependenceIsZero(t *testing.T) {
	// Perfectly proportional table has no association.
	tab := SingleTable{CaseMinor: 10, CaseMajor: 90, ControlMinor: 20, ControlMajor: 180}
	if got := tab.ChiSquare(); !almostEqual(got, 0, 1e-12) {
		t.Errorf("proportional table chi2=%v, want 0", got)
	}
}

func TestAssocPValue(t *testing.T) {
	tab := SingleTable{CaseMinor: 100, ControlMinor: 50, CaseMajor: 900, ControlMajor: 950}
	pPaper, err := tab.AssocPValue(true)
	if err != nil {
		t.Fatalf("paper form: %v", err)
	}
	pStd, err := tab.AssocPValue(false)
	if err != nil {
		t.Fatalf("standard form: %v", err)
	}
	for name, p := range map[string]float64{"paper": pPaper, "standard": pStd} {
		if p <= 0 || p >= 1 {
			t.Errorf("%s p-value %v outside (0,1)", name, p)
		}
	}
	// Infinite paper statistic maps to p = 0.
	inf := SingleTable{CaseMinor: 5}
	p, err := inf.AssocPValue(true)
	if err != nil || p != 0 {
		t.Errorf("infinite statistic p=%v err=%v, want 0,nil", p, err)
	}
}

func TestChiSquareYates(t *testing.T) {
	tab := SingleTable{CaseMinor: 10, ControlMinor: 20, CaseMajor: 30, ControlMajor: 40}
	plain := tab.ChiSquare()
	yates := tab.ChiSquareYates()
	if yates >= plain {
		t.Errorf("Yates correction must shrink the statistic: %v >= %v", yates, plain)
	}
	if yates <= 0 {
		t.Errorf("Yates statistic %v, want > 0", yates)
	}
	// Hand-computed: |ad-bc| = 200, n/2 = 50 → det 150.
	want := 100.0 * 150 * 150 / (30.0 * 70 * 40 * 60)
	if !almostEqual(yates, want, 1e-12) {
		t.Errorf("Yates=%v, want %v", yates, want)
	}
	// Correction larger than |ad−bc| clamps to zero.
	small := SingleTable{CaseMinor: 1, ControlMinor: 1, CaseMajor: 1, ControlMajor: 1}
	if got := small.ChiSquareYates(); got != 0 {
		t.Errorf("clamped statistic %v, want 0", got)
	}
	degenerate := SingleTable{CaseMajor: 5, ControlMajor: 5}
	if got := degenerate.ChiSquareYates(); got != 0 {
		t.Errorf("degenerate %v, want 0", got)
	}
}

func TestOddsRatio(t *testing.T) {
	tab := SingleTable{CaseMinor: 20, CaseMajor: 80, ControlMinor: 10, ControlMajor: 90}
	want := (20.0 * 90) / (10.0 * 80)
	if got := tab.OddsRatio(); !almostEqual(got, want, 1e-12) {
		t.Errorf("OddsRatio=%v, want %v", got, want)
	}
	// Haldane-Anscombe correction keeps empty cells finite.
	zero := SingleTable{CaseMinor: 5, CaseMajor: 95, ControlMinor: 0, ControlMajor: 100}
	or := zero.OddsRatio()
	if math.IsInf(or, 0) || math.IsNaN(or) || or <= 1 {
		t.Errorf("corrected odds ratio %v, want finite > 1", or)
	}
	mono := SingleTable{CaseMajor: 10, ControlMajor: 10}
	orMono := mono.OddsRatio()
	if orMono != 1 {
		t.Errorf("monomorphic odds ratio %v, want 1", orMono)
	}
	empty := SingleTable{}
	if got := empty.OddsRatio(); got != 1 {
		t.Errorf("empty table odds ratio %v, want 1", got)
	}
}

func TestPairTableR2PerfectCorrelation(t *testing.T) {
	tab := PairTable{C00: 50, C11: 50}
	if got := tab.R2(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect correlation r2=%v, want 1", got)
	}
	anti := PairTable{C01: 50, C10: 50}
	if got := anti.R2(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect anti-correlation r2=%v, want 1", got)
	}
}

func TestPairTableR2Independence(t *testing.T) {
	// Independent: cell counts proportional to margin products.
	tab := PairTable{C00: 36, C01: 24, C10: 24, C11: 16}
	if got := tab.R2(); !almostEqual(got, 0, 1e-12) {
		t.Errorf("independent table r2=%v, want 0", got)
	}
}

func TestPairTableR2Degenerate(t *testing.T) {
	tab := PairTable{C00: 100} // both SNPs monomorphic
	if got := tab.R2(); got != 0 {
		t.Errorf("degenerate r2=%v, want 0", got)
	}
}

func TestR2FromStatsMatchesTable(t *testing.T) {
	// Build a small genotype matrix, compare the sufficient-statistic path
	// with the explicit contingency table.
	m := genome.NewMatrix(8, 2)
	pattern := [][2]bool{
		{false, false}, {true, true}, {true, false}, {false, true},
		{true, true}, {false, false}, {true, true}, {false, false},
	}
	for i, p := range pattern {
		m.Set(i, 0, p[0])
		m.Set(i, 1, p[1])
	}
	s := m.PairStats(0, 1)
	tab := PairTableFromStats(s)
	var want PairTable
	for _, p := range pattern {
		switch {
		case !p[0] && !p[1]:
			want.C00++
		case !p[0] && p[1]:
			want.C01++
		case p[0] && !p[1]:
			want.C10++
		default:
			want.C11++
		}
	}
	if tab != want {
		t.Fatalf("PairTableFromStats=%+v, want %+v", tab, want)
	}
	if !almostEqual(R2FromStats(s), tab.R2(), 1e-12) {
		t.Errorf("sufficient-statistic r2 %v != table r2 %v", R2FromStats(s), tab.R2())
	}
}

func TestLDPValueHighVsLowCorrelation(t *testing.T) {
	correlated := genome.PairStats{N: 1000, SumX: 500, SumY: 500, SumXY: 490, SumXX: 500, SumYY: 500}
	independent := genome.PairStats{N: 1000, SumX: 500, SumY: 500, SumXY: 250, SumXX: 500, SumYY: 500}
	pHigh, err := LDPValue(correlated)
	if err != nil {
		t.Fatal(err)
	}
	pLow, err := LDPValue(independent)
	if err != nil {
		t.Fatal(err)
	}
	if pHigh >= 1e-5 {
		t.Errorf("strongly correlated pair p=%v, want < 1e-5", pHigh)
	}
	if pLow < 0.5 {
		t.Errorf("independent pair p=%v, want large", pLow)
	}
}

func TestLDPValueDegeneratePairs(t *testing.T) {
	cases := []struct {
		name string
		s    genome.PairStats
	}{
		{"empty pool", genome.PairStats{}},
		{"monomorphic x (all zero)", genome.PairStats{N: 100, SumY: 50, SumYY: 50, SumXY: 0}},
		{"monomorphic x (all one)", genome.PairStats{N: 100, SumX: 100, SumXX: 100, SumY: 50, SumYY: 50, SumXY: 50}},
		{"monomorphic y (all zero)", genome.PairStats{N: 100, SumX: 50, SumXX: 50}},
		{"monomorphic y (all one)", genome.PairStats{N: 100, SumX: 50, SumXX: 50, SumY: 100, SumYY: 100, SumXY: 50}},
		{"both monomorphic", genome.PairStats{N: 100, SumX: 100, SumXX: 100, SumY: 100, SumYY: 100, SumXY: 100}},
		{"single sample", genome.PairStats{N: 1, SumX: 1, SumXX: 1, SumY: 1, SumYY: 1, SumXY: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LDPValue(tc.s); !errors.Is(err, ErrDegeneratePair) {
				t.Errorf("LDPValue error = %v, want ErrDegeneratePair", err)
			}
			if _, err := R2FromStatsChecked(tc.s); !errors.Is(err, ErrDegeneratePair) {
				t.Errorf("R2FromStatsChecked error = %v, want ErrDegeneratePair", err)
			}
			if r2 := R2FromStats(tc.s); r2 != 0 {
				t.Errorf("R2FromStats = %v, want 0 for degenerate input", r2)
			}
		})
	}
}

func TestR2FromStatsCheckedPolymorphicPair(t *testing.T) {
	s := genome.PairStats{N: 1000, SumX: 500, SumY: 500, SumXY: 490, SumXX: 500, SumYY: 500}
	r2, err := R2FromStatsChecked(s)
	if err != nil {
		t.Fatalf("R2FromStatsChecked: %v", err)
	}
	if r2 != R2FromStats(s) {
		t.Errorf("checked r2 %v != unchecked %v", r2, R2FromStats(s))
	}
	if math.IsNaN(r2) || r2 <= 0 || r2 > 1 {
		t.Errorf("r2 = %v out of range", r2)
	}
}

// Property: aggregating pair stats across shards equals computing them on the
// pooled matrix — the exactness guarantee behind Table 4's GenDPR ==
// centralized result for the LD phase.
func TestQuickAggregatedPairStatsExact(t *testing.T) {
	f := func(seed int64, rawN, rawParts uint8) bool {
		n := int(rawN%50) + 4
		parts := int(rawParts%3) + 2
		if parts > n {
			parts = n
		}
		m := randomBinaryMatrix(seed, n, 6)
		cohort := genome.Cohort{Case: m, Reference: genome.NewMatrix(1, 6)}
		shards, err := cohort.Partition(parts)
		if err != nil {
			return false
		}
		var agg genome.PairStats
		for _, s := range shards {
			agg = agg.Add(s.PairStats(1, 4))
		}
		want := m.PairStats(1, 4)
		return agg == want && R2FromStats(agg) == R2FromStats(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomBinaryMatrix(seed int64, n, l int) *genome.Matrix {
	m := genome.NewMatrix(n, l)
	state := uint64(seed)*2654435761 + 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < n; i++ {
		for j := 0; j < l; j++ {
			if next()&1 == 1 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func TestMAF(t *testing.T) {
	if got := MAF(5, 100); got != 0.05 {
		t.Errorf("MAF=%v, want 0.05", got)
	}
	if got := MAF(5, 0); got != 0 {
		t.Errorf("MAF with total 0 = %v, want 0", got)
	}
}

func TestFilterMAF(t *testing.T) {
	counts := []int64{1, 5, 10, 50}
	kept := FilterMAF(counts, 100, 0.05)
	want := []int{1, 2, 3}
	if len(kept) != len(want) {
		t.Fatalf("kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept %v, want %v", kept, want)
		}
	}
}

func TestSumCounts(t *testing.T) {
	got, err := SumCounts([]int64{1, 2}, []int64{10, 20}, []int64{100, 200})
	if err != nil {
		t.Fatalf("SumCounts: %v", err)
	}
	if got[0] != 111 || got[1] != 222 {
		t.Errorf("SumCounts=%v", got)
	}
	if _, err := SumCounts([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	nilSum, err := SumCounts()
	if err != nil || nilSum != nil {
		t.Errorf("empty SumCounts = %v, %v", nilSum, err)
	}
}
