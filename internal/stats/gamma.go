// Package stats implements the statistical machinery GWAS release assessment
// relies on: contingency tables, chi-square association tests and their
// p-values, linkage-disequilibrium r^2 from pooled sufficient statistics, and
// minor-allele-frequency computation. Everything is pure stdlib.
package stats

import (
	"errors"
	"math"
)

// ErrBadArgument is returned by the special functions for out-of-domain input.
var ErrBadArgument = errors.New("stats: argument out of domain")

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// RegularizedGammaP computes the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) for a > 0, x >= 0.
func RegularizedGammaP(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return 0, ErrBadArgument
	case x < 0:
		return 0, ErrBadArgument
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// RegularizedGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return 0, ErrBadArgument
	case x < 0:
		return 0, ErrBadArgument
	case x == 0:
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, errors.New("stats: incomplete gamma series did not converge")
}

// gammaContinuedFraction evaluates Q(a,x) by the Lentz continued fraction,
// accurate for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, errors.New("stats: incomplete gamma continued fraction did not converge")
}

// ChiSquareSurvival returns the survival function (upper-tail p-value) of a
// chi-square distribution with df degrees of freedom evaluated at x:
// Pr[X >= x].
func ChiSquareSurvival(x float64, df int) (float64, error) {
	if df <= 0 {
		return 0, ErrBadArgument
	}
	if math.IsNaN(x) {
		return 0, ErrBadArgument
	}
	if x <= 0 {
		return 1, nil
	}
	if df == 1 {
		// Exact identity avoids the incomplete-gamma iteration on the most
		// common path: Pr[chi2_1 >= x] = erfc(sqrt(x/2)).
		return math.Erfc(math.Sqrt(x / 2)), nil
	}
	return RegularizedGammaQ(float64(df)/2, x/2)
}
