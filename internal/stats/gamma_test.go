package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRegularizedGammaKnownValues(t *testing.T) {
	// Reference values from standard tables / independent implementations.
	cases := []struct {
		a, x, p float64
	}{
		{0.5, 0.5, 0.6826894921370859}, // chi2(1) CDF at 1.0
		{0.5, 1.920729, 0.95},          // chi2(1) CDF at 3.841459 ~ 0.95
		{1, 1, 1 - math.Exp(-1)},       // exponential CDF identity
		{1, 2.5, 1 - math.Exp(-2.5)},   // exponential CDF identity
	}

	for _, tc := range cases {
		p, err := RegularizedGammaP(tc.a, tc.x)
		if err != nil {
			t.Fatalf("P(%v,%v): %v", tc.a, tc.x, err)
		}
		if !almostEqual(p, tc.p, 1e-4) {
			t.Errorf("P(%v,%v)=%v, want %v", tc.a, tc.x, p, tc.p)
		}
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2, 5, 17.5} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 40} {
			p, err := RegularizedGammaP(a, x)
			if err != nil {
				t.Fatalf("P(%v,%v): %v", a, x, err)
			}
			q, err := RegularizedGammaQ(a, x)
			if err != nil {
				t.Fatalf("Q(%v,%v): %v", a, x, err)
			}
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q=%v at a=%v x=%v", p+q, a, x)
			}
		}
	}
}

func TestRegularizedGammaDomainErrors(t *testing.T) {
	if _, err := RegularizedGammaP(0, 1); err == nil {
		t.Error("a=0 must fail")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("x<0 must fail")
	}
	if _, err := RegularizedGammaQ(-2, 1); err == nil {
		t.Error("a<0 must fail")
	}
	if _, err := RegularizedGammaQ(1, math.NaN()); err == nil {
		t.Error("NaN must fail")
	}
}

func TestChiSquareSurvivalKnownQuantiles(t *testing.T) {
	// Classical critical values: Pr[chi2_df >= x].
	cases := []struct {
		x   float64
		df  int
		p   float64
		tol float64
	}{
		{3.841459, 1, 0.05, 1e-5},
		{6.634897, 1, 0.01, 1e-5},
		{10.82757, 1, 0.001, 1e-5},
		{5.991465, 2, 0.05, 1e-5},
		{9.487729, 4, 0.05, 1e-5},
		{18.30704, 10, 0.05, 1e-5},
	}
	for _, tc := range cases {
		p, err := ChiSquareSurvival(tc.x, tc.df)
		if err != nil {
			t.Fatalf("ChiSquareSurvival(%v,%d): %v", tc.x, tc.df, err)
		}
		if !almostEqual(p, tc.p, tc.tol) {
			t.Errorf("SF(%v, df=%d)=%v, want %v", tc.x, tc.df, p, tc.p)
		}
	}
}

func TestChiSquareSurvivalEdges(t *testing.T) {
	if p, err := ChiSquareSurvival(0, 1); err != nil || p != 1 {
		t.Errorf("SF(0)=%v,%v; want 1,nil", p, err)
	}
	if p, err := ChiSquareSurvival(-3, 2); err != nil || p != 1 {
		t.Errorf("SF(-3)=%v,%v; want 1,nil", p, err)
	}
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Error("df=0 must fail")
	}
	if _, err := ChiSquareSurvival(math.NaN(), 1); err == nil {
		t.Error("NaN must fail")
	}
	p, err := ChiSquareSurvival(1e6, 1)
	if err != nil {
		t.Fatalf("huge statistic: %v", err)
	}
	if p < 0 || p > 1e-100 {
		t.Errorf("SF(1e6) = %v, want ~0", p)
	}
}

func TestChiSquareDf1MatchesGeneralPath(t *testing.T) {
	// The fast erfc path for df=1 must agree with the incomplete gamma.
	for _, x := range []float64{0.01, 0.3, 1, 2.7, 5, 12, 30} {
		fast, err := ChiSquareSurvival(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := RegularizedGammaQ(0.5, x/2)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(fast, slow, 1e-12) {
			t.Errorf("x=%v: erfc path %v vs gamma path %v", x, fast, slow)
		}
	}
}

// Property: survival function is monotonically non-increasing in x and lies
// in [0, 1].
func TestQuickChiSquareMonotone(t *testing.T) {
	f := func(rawX float64, rawDF uint8) bool {
		x := math.Abs(rawX)
		if math.IsInf(x, 0) || math.IsNaN(x) || x > 1e6 {
			return true
		}
		df := int(rawDF%20) + 1
		p1, err := ChiSquareSurvival(x, df)
		if err != nil {
			return false
		}
		p2, err := ChiSquareSurvival(x+1, df)
		if err != nil {
			return false
		}
		return p1 >= p2-1e-12 && p1 >= 0 && p1 <= 1 && p2 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
