package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/core"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
)

// testBackend builds a small real federation: one leader and two member nodes
// over in-memory pipes, sharing a generated cohort.
func testBackend(t testing.TB) *FederationBackend {
	t.Helper()
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(48, 60, 7))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewInProcessBackend(shards, cohort.Reference, federation.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return backend
}

func TestCheckpointReuseAcrossRequests(t *testing.T) {
	backend := testBackend(t)
	store := checkpoint.NewMemStore()
	log := &eventLog{}
	s, err := NewServer(Config{Backend: backend, Checkpoints: store, Slots: 1, OnEvent: log.sink})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	req := Request{Tenant: "t", Config: core.DefaultConfig(), Policy: core.CollusionPolicy{F: 1}}
	first, err := s.Assess(context.Background(), req)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if first.Reused {
		t.Fatal("first run claims checkpoint reuse with an empty store")
	}

	// The identical request must resume from the retained final snapshot and
	// skip every protocol phase.
	second, err := s.Assess(context.Background(), req)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !second.Reused || !second.Report.Resumed {
		t.Error("identical request did not reuse the retained checkpoint")
	}
	if got, want := second.Report.Selection, first.Report.Selection; got.Power != want.Power {
		t.Errorf("resumed selection power = %v, want %v", got.Power, want.Power)
	}

	// A different configuration is a different fingerprint: no reuse, and the
	// first run's namespace is untouched.
	other := req
	other.Config.MAFCutoff = 0.10
	third, err := s.Assess(context.Background(), other)
	if err != nil {
		t.Fatalf("third run: %v", err)
	}
	if third.Reused {
		t.Error("different config reused another request's checkpoint")
	}

	st := s.Stats()
	if st.Reused != 1 {
		t.Errorf("reused counter = %d, want 1", st.Reused)
	}
	if log.count(EventResumed) != 1 {
		t.Errorf("resumed events = %d, want 1", log.count(EventResumed))
	}
	if st.Completed != 3 || st.Failed != 0 {
		t.Errorf("ledger completed=%d failed=%d, want 3/0", st.Completed, st.Failed)
	}
}

func TestHTTPAssessAndOverload(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	frozen := time.Unix(1700000000, 0)
	s, err := NewServer(Config{
		Backend:    fb,
		Slots:      1,
		QueueDepth: 1,
		TenantRate: 0.001,
		now:        func() time.Time { return frozen },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/assess", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Occupy the slot, then the queue, from distinct tenants (each has one
	// token under the frozen clock).
	go func() { _ = post(`{"tenant":"a","maf_cutoff":0.021}`).Body.Close() }()
	<-fb.started
	go func() { _ = post(`{"tenant":"b","maf_cutoff":0.022}`).Body.Close() }()
	waitFor(t, "queue to fill", func() bool { return s.Stats().Queued == 1 })

	// Capacity exhaustion is the server's state: 503 + structured body.
	resp := post(`{"tenant":"c","maf_cutoff":0.023}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("queue-full status = %d, want 503", resp.StatusCode)
	}
	var shed struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if shed.Error != "overloaded" || shed.Reason != ReasonQueueFull {
		t.Errorf("queue-full body = %+v, want overloaded/queue-full", shed)
	}

	// Quota exhaustion is the caller's pace: 429 + Retry-After.
	resp = post(`{"tenant":"a","maf_cutoff":0.024}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("quota status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota rejection missing Retry-After header")
	}
	resp.Body.Close()

	// Healthy until drained.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", hz.StatusCode)
	}

	close(fb.block)
	waitFor(t, "runs to finish", func() bool { return s.Stats().Completed == 2 })

	// /stats reflects the ledger.
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.NewDecoder(st.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if got := wire["completed"].(float64); got != 2 {
		t.Errorf("/stats completed = %v, want 2", got)
	}
	if _, ok := wire["latency"].(map[string]any); !ok {
		t.Errorf("/stats latency block missing: %v", wire["latency"])
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hz, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz status = %d, want 503", hz.StatusCode)
	}
}

func TestHTTPAssessEndToEnd(t *testing.T) {
	backend := testBackend(t)
	s, err := NewServer(Config{Backend: backend, Checkpoints: checkpoint.NewMemStore(), Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	run := func() AssessResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/assess", "application/json",
			bytes.NewBufferString(`{"tenant":"t","f":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assess status = %d, want 200", resp.StatusCode)
		}
		var wire AssessResponse
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			t.Fatal(err)
		}
		return wire
	}

	first := run()
	if first.SafeCount <= 0 || first.Combinations <= 0 {
		t.Errorf("first response lacks protocol output: %+v", first)
	}
	second := run()
	if !second.Resumed {
		t.Error("identical HTTP request did not resume from the shared checkpoint")
	}
	if second.SafeCount != first.SafeCount || second.Power != first.Power {
		t.Errorf("resumed outcome %+v differs from original %+v", second, first)
	}
}
