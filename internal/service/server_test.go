package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/core"
)

// fakeBackend is a controllable Backend: runs can block until released (or
// until their context ends), and every run is counted.
type fakeBackend struct {
	runs int32
	// started receives one token per run that claims a slot.
	started chan struct{}
	// block, when non-nil, parks runs until closed; a parked run still
	// honors its context, mirroring the engine's phase-boundary checks.
	block chan struct{}
}

func (f *fakeBackend) Fingerprint(req Request) []byte {
	return []byte(fmt.Sprintf("%v|%v|%s", req.Config, req.Policy, req.Tenant))
}

func (f *fakeBackend) Run(ctx context.Context, req Request, ck checkpoint.Store) (*core.Report, error) {
	atomic.AddInt32(&f.runs, 1)
	if f.started != nil {
		f.started <- struct{}{}
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &core.Report{}, nil
}

// sharedFingerprint makes every request identical for single-flight tests.
type sharedFingerprint struct{ *fakeBackend }

func (s sharedFingerprint) Fingerprint(Request) []byte { return []byte{1} }

// distinctRequest returns a request no other call has issued, so
// single-flight stays out of tests that target other machinery.
var reqSeq int64

func distinctRequest(tenant string) Request {
	cfg := core.DefaultConfig()
	cfg.MAFCutoff = 0.01 + float64(atomic.AddInt64(&reqSeq, 1))/1e6
	return Request{Tenant: tenant, Config: cfg}
}

// eventLog collects lifecycle events concurrently.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) sink(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) count(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Event == name {
			n++
		}
	}
	return n
}

// waitFor polls until cond holds or the deadline hits.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestQueueFullShedsStructured(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	log := &eventLog{}
	s, err := NewServer(Config{Backend: fb, Slots: 1, QueueDepth: 2, OnEvent: log.sink})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	var wg sync.WaitGroup
	submit := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Assess(context.Background(), distinctRequest("t"))
		}()
	}
	submit()
	<-fb.started // slot occupied
	submit()
	submit()
	waitFor(t, "queue to fill", func() bool { return s.Stats().Queued == 2 })

	_, err = s.Assess(context.Background(), distinctRequest("t"))
	var ov *OverloadError
	if !errors.As(err, &ov) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow error = %v, want *OverloadError wrapping ErrOverloaded", err)
	}
	if ov.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", ov.Reason, ReasonQueueFull)
	}

	close(fb.block)
	wg.Wait()
	st := s.Stats()
	if st.Admitted != 3 || st.Completed != 3 {
		t.Errorf("ledger admitted=%d completed=%d, want 3/3", st.Admitted, st.Completed)
	}
	if st.Shed[ReasonQueueFull] != 1 {
		t.Errorf("shed[queue-full] = %d, want 1", st.Shed[ReasonQueueFull])
	}
	if got := log.count(EventShed); got != 1 {
		t.Errorf("shed events = %d, want 1", got)
	}
}

func TestTenantQuotaDoesNotStarveOthers(t *testing.T) {
	fb := &fakeBackend{}
	frozen := time.Unix(1700000000, 0)
	s, err := NewServer(Config{
		Backend:    fb,
		Slots:      2,
		TenantRate: 0.001, // effectively no refill under the frozen clock
		now:        func() time.Time { return frozen },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	if _, err := s.Assess(context.Background(), distinctRequest("greedy")); err != nil {
		t.Fatalf("first request: %v", err)
	}
	_, err = s.Assess(context.Background(), distinctRequest("greedy"))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != ReasonTenantQuota {
		t.Fatalf("greedy second request error = %v, want tenant-quota rejection", err)
	}
	if ov.RetryAfter <= 0 {
		t.Errorf("tenant-quota RetryAfter = %v, want positive hint", ov.RetryAfter)
	}
	// Another tenant's bucket is untouched.
	if _, err := s.Assess(context.Background(), distinctRequest("patient")); err != nil {
		t.Fatalf("other tenant rejected alongside the greedy one: %v", err)
	}
}

func TestTenantConcurrencyCapIsolatesTenants(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	s, err := NewServer(Config{Backend: fb, Slots: 1, QueueDepth: 8, TenantConcurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Assess(context.Background(), distinctRequest("greedy"))
	}()
	<-fb.started

	_, err = s.Assess(context.Background(), distinctRequest("greedy"))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != ReasonTenantConcurrency {
		t.Fatalf("greedy overflow error = %v, want tenant-concurrency rejection", err)
	}

	// The other tenant still gets in (queued behind the greedy run).
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Assess(context.Background(), distinctRequest("patient")); err != nil {
			t.Errorf("patient tenant: %v", err)
		}
	}()
	waitFor(t, "patient request to queue", func() bool { return s.Stats().Admitted == 2 })
	close(fb.block)
	wg.Wait()
}

func TestDeadlineReleasesSlot(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	s, err := NewServer(Config{Backend: fb, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	req := distinctRequest("t")
	req.Deadline = 30 * time.Millisecond
	if _, err := s.Assess(context.Background(), req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error = %v, want DeadlineExceeded", err)
	}
	// The slot must be free again: an unbounded request completes once
	// released.
	done := make(chan error, 1)
	go func() {
		_, err := s.Assess(context.Background(), distinctRequest("t"))
		done <- err
	}()
	<-fb.started // second run claimed the slot — the expired one released it
	close(fb.block)
	if err := <-done; err != nil {
		t.Fatalf("follow-up request after expiry: %v", err)
	}
	st := s.Stats()
	if st.Failed != 1 || st.Completed != 1 || st.InFlight != 0 {
		t.Errorf("ledger failed=%d completed=%d inflight=%d, want 1/1/0", st.Failed, st.Completed, st.InFlight)
	}
}

func TestQueuedRequestExpiresWithoutClaimingSlot(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	s, err := NewServer(Config{Backend: fb, Slots: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Assess(context.Background(), distinctRequest("t"))
	}()
	<-fb.started

	req := distinctRequest("t")
	req.Deadline = 30 * time.Millisecond
	expired := make(chan error, 1)
	go func() {
		_, err := s.Assess(context.Background(), req)
		expired <- err
	}()
	// Let the queued request's deadline lapse while the slot is still held,
	// then release the slot so the worker reaches the expired job.
	time.Sleep(60 * time.Millisecond)
	close(fb.block)
	if err := <-expired; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued expiry error = %v, want DeadlineExceeded", err)
	}
	wg.Wait()
	waitFor(t, "expired job to drain from queue", func() bool { return s.Stats().Failed == 1 })
	if st := s.Stats(); st.Started != 1 {
		t.Errorf("started = %d, want 1 (expired request must not claim the slot)", st.Started)
	}
}

func TestSingleFlightCoalescesIdenticalRequests(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	log := &eventLog{}
	s, err := NewServer(Config{Backend: sharedFingerprint{fb}, Slots: 2, OnEvent: log.sink})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	req := Request{Tenant: "t", Config: core.DefaultConfig()}
	type result struct {
		resp *Response
		err  error
	}
	results := make(chan result, 3)
	go func() {
		r, err := s.Assess(context.Background(), req)
		results <- result{r, err}
	}()
	<-fb.started
	for i := 0; i < 2; i++ {
		go func() {
			r, err := s.Assess(context.Background(), req)
			results <- result{r, err}
		}()
	}
	waitFor(t, "followers to coalesce", func() bool { return s.Stats().Coalesced == 2 })
	close(fb.block)

	coalesced := 0
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.resp.Coalesced {
			coalesced++
		}
	}
	if got := atomic.LoadInt32(&fb.runs); got != 1 {
		t.Errorf("backend ran %d times for 3 identical requests, want 1", got)
	}
	if coalesced != 2 {
		t.Errorf("coalesced responses = %d, want 2", coalesced)
	}
	if got := log.count(EventCoalesced); got != 2 {
		t.Errorf("coalesced events = %d, want 2", got)
	}
}

func TestDrainAccountsForEveryRequest(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	log := &eventLog{}
	s, err := NewServer(Config{
		Backend:    fb,
		Slots:      1,
		QueueDepth: 4,
		DrainGrace: 50 * time.Millisecond,
		OnEvent:    log.sink,
	})
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 3)
	submit := func() {
		go func() {
			_, err := s.Assess(context.Background(), distinctRequest("t"))
			errs <- err
		}()
	}
	submit()
	<-fb.started // one run holds the slot (and never finishes on its own)
	submit()
	submit()
	waitFor(t, "queue to hold the backlog", func() bool { return s.Stats().Queued == 2 })

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every admitted request resolved: the running one was canceled at the
	// grace boundary, the queued ones were shed.
	var failed, shed int
	for i := 0; i < 3; i++ {
		err := <-errs
		switch {
		case errors.Is(err, ErrOverloaded):
			shed++
		case err != nil:
			failed++
		default:
			t.Errorf("request %d finished cleanly; the blocked run should have been canceled", i)
		}
	}
	if failed != 1 || shed != 2 {
		t.Errorf("drain outcome failed=%d shed=%d, want 1/2", failed, shed)
	}
	st := s.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("post-drain in_flight=%d queued=%d, want 0/0", st.InFlight, st.Queued)
	}
	if got := st.Admitted - st.Completed - st.Failed - st.ShedAfterAdmission; got != 0 {
		t.Errorf("ledger does not balance: admitted=%d completed=%d failed=%d shedAfterAdmission=%d",
			st.Admitted, st.Completed, st.Failed, st.ShedAfterAdmission)
	}
	if log.count(EventDrained) != 1 {
		t.Errorf("drained events = %d, want 1", log.count(EventDrained))
	}

	// The drained server admits nothing.
	_, err = s.Assess(context.Background(), distinctRequest("t"))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != ReasonDraining {
		t.Errorf("post-drain submission error = %v, want draining rejection", err)
	}
}

// ckMarkBackend reports every request as one fingerprint and, per run, saves
// a marker checkpoint when the run's store is empty — so Report.Resumed (and
// thus Response.Reused) flags exactly the runs that landed in a namespace an
// earlier run already wrote.
type ckMarkBackend struct{}

func (ckMarkBackend) Fingerprint(Request) []byte { return []byte{7} }

func (ckMarkBackend) Run(_ context.Context, _ Request, ck checkpoint.Store) (*core.Report, error) {
	_, err := ck.Load()
	switch {
	case err == nil:
		return &core.Report{Resumed: true}, nil
	case !errors.Is(err, checkpoint.ErrNotFound):
		return nil, err
	}
	err = ck.Save(&checkpoint.State{
		Fingerprint: []byte("m"),
		Providers:   []string{"m"},
		Counts:      [][]int64{{1, 2}},
		CaseNs:      []int64{4},
	})
	return &core.Report{}, err
}

// TestModeBitsIsolateCheckpointNamespaces is the degraded-substitution
// regression: Byzantine and non-Byzantine runs share a fingerprint
// (core.Fingerprint does not hash the mode bits) but must not share a
// checkpoint namespace — a retained Byzantine run's degraded snapshot
// (excluded members, blame records) must never seed a later full-strength
// run. It runs over a real FileStore so filename sanitization is part of the
// regression: a key truncated back to the bare fingerprint would merge the
// modes.
func TestModeBitsIsolateCheckpointNamespaces(t *testing.T) {
	store, err := checkpoint.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Backend: ckMarkBackend{}, Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	run := func(byz, rejoin bool) *Response {
		t.Helper()
		resp, err := s.Assess(context.Background(), Request{
			Tenant:      "t",
			Config:      core.DefaultConfig(),
			Byzantine:   byz,
			AllowRejoin: rejoin,
		})
		if err != nil {
			t.Fatalf("assess b=%v r=%v: %v", byz, rejoin, err)
		}
		return resp
	}
	for _, m := range []struct{ byz, rejoin bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	} {
		if resp := run(m.byz, m.rejoin); resp.Reused {
			t.Errorf("mode b=%v r=%v resumed another mode's checkpoint", m.byz, m.rejoin)
		}
	}
	// An identical repeat still resumes its own retained snapshot.
	if resp := run(false, false); !resp.Reused {
		t.Error("identical repeat did not resume its own retained checkpoint")
	}
}

func TestCoalescedFollowerBypassesRateQuota(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	frozen := time.Unix(1700000000, 0)
	s, err := NewServer(Config{
		Backend:    fb,
		Slots:      2,
		TenantRate: 0.001, // one-token budget under the frozen clock
		now:        func() time.Time { return frozen },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	req := Request{Tenant: "t", Config: core.DefaultConfig()}
	leader := make(chan error, 1)
	go func() {
		_, err := s.Assess(context.Background(), req)
		leader <- err
	}()
	<-fb.started // the leader is admitted and spent the tenant's only token

	// An identical follower coalesces onto the in-flight run and costs the
	// server nothing, so it must not be quota-rejected.
	follower := make(chan *Response, 1)
	go func() {
		resp, err := s.Assess(context.Background(), req)
		if err != nil {
			t.Errorf("coalesced follower rejected: %v", err)
		}
		follower <- resp
	}()
	waitFor(t, "follower to coalesce", func() bool { return s.Stats().Coalesced == 1 })

	// A non-identical request from the same tenant is still quota-bound.
	_, err = s.Assess(context.Background(), distinctRequest("t"))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != ReasonTenantQuota {
		t.Fatalf("distinct request error = %v, want tenant-quota rejection", err)
	}

	close(fb.block)
	if err := <-leader; err != nil {
		t.Fatalf("leader request: %v", err)
	}
	if resp := <-follower; resp != nil && !resp.Coalesced {
		t.Error("follower response not marked coalesced")
	}
}

func TestIdleFullBucketsAreEvicted(t *testing.T) {
	fb := &fakeBackend{}
	var mu sync.Mutex
	cur := time.Unix(1700000000, 0)
	s, err := NewServer(Config{
		Backend:     fb,
		Slots:       2,
		TenantRate:  1,
		TenantBurst: 2,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return cur
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	// Tenant names come verbatim from unauthenticated requests: 50 distinct
	// ones leave 50 buckets behind.
	for i := 0; i < 50; i++ {
		if _, err := s.Assess(context.Background(), distinctRequest(fmt.Sprintf("tenant-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	n := len(s.buckets)
	s.mu.Unlock()
	if n != 50 {
		t.Fatalf("buckets before idle = %d, want 50", n)
	}

	// Idle long enough for every bucket to refill to burst and a sweep to be
	// due; the next draw evicts them all.
	mu.Lock()
	cur = cur.Add(2 * bucketSweepInterval)
	mu.Unlock()
	if _, err := s.Assess(context.Background(), distinctRequest("fresh")); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	n = len(s.buckets)
	s.mu.Unlock()
	if n != 1 {
		t.Errorf("buckets after sweep = %d, want 1 (idle-full buckets evicted)", n)
	}
}

func TestAbandonedCallerDoesNotAbortRun(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), block: make(chan struct{})}
	s, err := NewServer(Config{Backend: fb, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Drain(context.Background()) }()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Assess(ctx, distinctRequest("t"))
		done <- err
	}()
	<-fb.started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned wait error = %v, want context.Canceled", err)
	}
	// The run itself is still alive and completes once released.
	close(fb.block)
	waitFor(t, "abandoned run to complete", func() bool { return s.Stats().Completed == 1 })
}
