package service

// Lifecycle event names emitted through Config.OnEvent. One admitted request
// emits admitted (and queued) at the door, started when it claims a
// federation slot, then exactly one terminal event: completed, failed, or
// shed. Coalesced and resumed annotate reuse; drained marks the server-level
// shutdown milestone.
const (
	// EventAdmitted: the request passed admission control.
	EventAdmitted = "admitted"
	// EventQueued: the request entered the bounded queue (always directly
	// after admitted; kept separate so queue occupancy is observable).
	EventQueued = "queued"
	// EventShed: the request was rejected or dropped without running; Reason
	// carries one of the Reason* constants.
	EventShed = "shed"
	// EventStarted: the request claimed a federation slot and the protocol
	// run began.
	EventStarted = "started"
	// EventResumed: the run replayed completed phases from a shared
	// checkpoint left by an earlier identical request.
	EventResumed = "resumed"
	// EventCoalesced: the request attached to an identical in-flight run
	// instead of spawning its own (single-flight deduplication).
	EventCoalesced = "coalesced"
	// EventCompleted: the run finished and produced a report.
	EventCompleted = "completed"
	// EventFailed: the run ended in an error (deadline expiry, cancellation,
	// protocol failure); Reason carries the error text.
	EventFailed = "failed"
	// EventDrained: the server finished draining — every in-flight run is
	// accounted for and no further requests will be admitted.
	EventDrained = "drained"
)

// Event is one request-lifecycle observation. Callbacks may fire from worker
// goroutines concurrently; sinks must be safe for that and fast.
type Event struct {
	// Event is one of the Event* names.
	Event string
	// Tenant is the requesting tenant ("" for the server-level drained
	// event).
	Tenant string
	// Key is the request's single-flight key: the resilience-mode bits
	// followed by the hex assessment fingerprint (also the run's checkpoint
	// namespace). Empty for server-level events.
	Key string
	// Reason qualifies shed and failed events.
	Reason string
}
