package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gendpr/internal/core"
)

// AssessRequest is the daemon's wire form of one submission (POST /assess).
// Unset cutoffs inherit the paper defaults; only the knobs that change the
// assessment outcome or its resilience envelope are exposed.
type AssessRequest struct {
	Tenant       string  `json:"tenant,omitempty"`
	F            int     `json:"f,omitempty"`
	Conservative bool    `json:"conservative,omitempty"`
	MAFCutoff    float64 `json:"maf_cutoff,omitempty"`
	LDCutoff     float64 `json:"ld_cutoff,omitempty"`
	Byzantine    bool    `json:"byzantine,omitempty"`
	AllowRejoin  bool    `json:"allow_rejoin,omitempty"`
	DeadlineMS   int64   `json:"deadline_ms,omitempty"`
}

// toRequest maps the wire form onto a service Request.
func (a AssessRequest) toRequest() Request {
	cfg := core.DefaultConfig()
	if a.MAFCutoff > 0 {
		cfg.MAFCutoff = a.MAFCutoff
	}
	if a.LDCutoff > 0 {
		cfg.LDCutoff = a.LDCutoff
	}
	return Request{
		Tenant:      a.Tenant,
		Config:      cfg,
		Policy:      core.CollusionPolicy{F: a.F, Conservative: a.Conservative},
		Byzantine:   a.Byzantine,
		AllowRejoin: a.AllowRejoin,
		Deadline:    time.Duration(a.DeadlineMS) * time.Millisecond,
	}
}

// AssessResponse is the daemon's wire form of a completed assessment: the
// released selection sizes and residual power — the public outcome — plus the
// service-level reuse markers. Raw intermediates never leave the engine.
type AssessResponse struct {
	AfterMAF     int     `json:"after_maf"`
	AfterLD      int     `json:"after_ld"`
	SafeCount    int     `json:"safe_count"`
	Power        float64 `json:"power"`
	Combinations int     `json:"combinations"`
	Resumed      bool    `json:"resumed"`
	Coalesced    bool    `json:"coalesced"`
	WaitMS       int64   `json:"wait_ms"`
	TotalMS      int64   `json:"total_ms"`
}

// overloadStatus maps a shed reason to its HTTP status: quota rejections are
// the caller's pace (429), capacity and shutdown are the server's state (503).
func overloadStatus(reason string) int {
	switch reason {
	case ReasonTenantQuota, ReasonTenantConcurrency:
		return http.StatusTooManyRequests
	default:
		return http.StatusServiceUnavailable
	}
}

// Handler serves the daemon API over the server:
//
//	POST /assess  — run (or coalesce/resume) one assessment
//	GET  /stats   — the admission/latency ledger
//	GET  /healthz — "ok", or "draining" with 503 during shutdown
//
// Overload answers are immediate: 429/503 with a Retry-After header (when the
// server can estimate one) and a structured JSON body.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/assess", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var wire AssessRequest
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := s.Assess(r.Context(), wire.toRequest())
		if err != nil {
			writeAssessError(w, err)
			return
		}
		maf, ld, lr := resp.Report.Selection.Counts()
		writeJSON(w, http.StatusOK, AssessResponse{
			AfterMAF:     maf,
			AfterLD:      ld,
			SafeCount:    lr,
			Power:        resp.Report.Selection.Power,
			Combinations: resp.Report.Combinations,
			Resumed:      resp.Reused,
			Coalesced:    resp.Coalesced,
			WaitMS:       resp.Wait.Milliseconds(),
			TotalMS:      resp.Total.Milliseconds(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsWire(s.Stats()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Stats().Draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeAssessError renders an assessment failure: structured overload
// rejections keep their reason and retry hint; engine failures surface as
// 500 with the error text.
func writeAssessError(w http.ResponseWriter, err error) {
	var ov *OverloadError
	if errors.As(err, &ov) {
		if ov.RetryAfter > 0 {
			secs := int64(ov.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		writeJSON(w, overloadStatus(ov.Reason), map[string]any{
			"error":          "overloaded",
			"reason":         ov.Reason,
			"retry_after_ms": ov.RetryAfter.Milliseconds(),
		})
		return
	}
	writeJSON(w, http.StatusInternalServerError, map[string]any{
		"error": err.Error(),
	})
}

// statsWire is the JSON shape of GET /stats.
func statsWire(st Stats) map[string]any {
	pct := func(p Percentiles) map[string]any {
		return map[string]any{
			"count":  p.Count,
			"p50_ms": p.P50.Milliseconds(),
			"p90_ms": p.P90.Milliseconds(),
			"p95_ms": p.P95.Milliseconds(),
			"p99_ms": p.P99.Milliseconds(),
			"max_ms": p.Max.Milliseconds(),
		}
	}
	return map[string]any{
		"admitted":             st.Admitted,
		"started":              st.Started,
		"completed":            st.Completed,
		"failed":               st.Failed,
		"coalesced":            st.Coalesced,
		"reused":               st.Reused,
		"shed":                 st.Shed,
		"shed_after_admission": st.ShedAfterAdmission,
		"in_flight":            st.InFlight,
		"queued":               st.Queued,
		"draining":             st.Draining,
		"latency":              pct(st.Latency),
		"wait":                 pct(st.Wait),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
