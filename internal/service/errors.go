// Package service implements the always-on assessment server: a long-lived
// front end over one attested federation that admits many concurrent
// assessment requests, applies per-tenant quotas and backpressure, shares
// checkpointed phase results between identical requests, and drains
// gracefully on shutdown.
//
// The protocol engine underneath is unchanged — every admitted request runs
// the same three-phase GenDPR assessment the one-shot CLIs drive. What the
// service adds is the robustness envelope around it: a bounded queue in front
// of a fixed number of federation slots, token-bucket admission per tenant,
// request deadlines threaded onto the engine's context plumbing, single-flight
// deduplication keyed by the assessment fingerprint, and a drain path that
// leaves every in-flight run either finished or checkpointed.
package service

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is the sentinel every admission rejection wraps: callers
// match it with errors.Is and read the concrete *OverloadError for the
// reason and the retry hint. An overloaded service always answers
// immediately — requests are shed at the door, never parked until they rot.
var ErrOverloaded = errors.New("service: overloaded")

// Shed reasons carried by OverloadError.Reason.
const (
	// ReasonQueueFull: the bounded request queue is at capacity.
	ReasonQueueFull = "queue-full"
	// ReasonTenantQuota: the tenant's token bucket is empty.
	ReasonTenantQuota = "tenant-quota"
	// ReasonTenantConcurrency: the tenant already has its maximum number of
	// requests admitted.
	ReasonTenantConcurrency = "tenant-concurrency"
	// ReasonDraining: the server is shutting down and admits nothing.
	ReasonDraining = "draining"
)

// OverloadError is the structured admission rejection. It unwraps to
// ErrOverloaded.
type OverloadError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter, when positive, hints when a retry could succeed: the time
	// to the next token for a quota rejection, a queue-drain estimate for a
	// full queue. Zero means the server offers no estimate (or, for
	// draining, that retrying this instance is pointless).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("service: overloaded (%s, retry after %v)", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("service: overloaded (%s)", e.Reason)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }
