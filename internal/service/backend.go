package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
)

// Request is one assessment submission. Tenant scopes quotas; the protocol
// inputs (configuration and collusion policy) select what is assessed; the
// resilience bits select how hard the federation fights to finish it.
type Request struct {
	// Tenant is the quota scope; empty maps to "default".
	Tenant string
	// Config carries the assessment parameters (MAF cutoff, LD cutoff, LR
	// settings).
	Config core.Config
	// Policy is the collusion-tolerance policy.
	Policy core.CollusionPolicy
	// Byzantine and AllowRejoin enable the corresponding federation
	// machinery for this run (they OR onto the backend's base options).
	Byzantine   bool
	AllowRejoin bool
	// Deadline, when positive, bounds the request from admission to
	// completion — queue wait included, so a request the server cannot
	// schedule in time expires instead of wedging a slot. Zero uses the
	// server's default.
	Deadline time.Duration
}

// Response is the outcome of one admitted request.
type Response struct {
	Report *core.Report
	// Reused reports that the run replayed completed phases from a shared
	// checkpoint left by an earlier identical request (Report.Resumed).
	Reused bool
	// Coalesced reports that this request attached to an identical
	// in-flight run instead of driving the protocol itself.
	Coalesced bool
	// Wait is admission → federation-slot claim; Total is admission →
	// completion. A coalesced request reports the run it rode.
	Wait  time.Duration
	Total time.Duration
}

// Backend runs one assessment for the server. Implementations must be safe
// for concurrent Run calls — the server drives one per federation slot.
type Backend interface {
	// Fingerprint binds a request to its checkpoint namespace and
	// single-flight identity: requests with equal fingerprints produce
	// bit-identical selections, so their protocol work is shareable.
	Fingerprint(req Request) []byte
	// Run executes the assessment under ctx, checkpointing into ck when the
	// server provides one (nil disables checkpointing for this run).
	Run(ctx context.Context, req Request, ck checkpoint.Store) (*core.Report, error)
}

// LinkDialer establishes fresh member connections for one protocol run and
// returns them with a cleanup that releases whatever the dial created. Every
// run gets its own links — member serving sessions and AEAD channel state are
// per-connection — while the nodes behind them stay up across runs.
type LinkDialer func() ([]federation.MemberLink, func(), error)

// FederationBackend runs assessments over one attested federation: a
// long-lived leader plus a dialer that reaches the member nodes. It is the
// production Backend; the members behind Dial may live in-process (pipes) or
// across the network (TCP), exactly as in the one-shot runners.
type FederationBackend struct {
	// Leader is the coordinator; safe for concurrent runs (per-run provider
	// state, mutex-guarded enclave accounting).
	Leader *federation.Leader
	// Dial produces the per-run member links. Link names must equal
	// MemberNames in order — checkpoint identity depends on it.
	Dial LinkDialer
	// Reference is the public reference panel shared by every run.
	Reference *genome.Matrix
	// MemberNames are the stable member identities, aligned with the links
	// Dial returns.
	MemberNames []string
	// Options is the base fault-tolerance envelope; per-request Byzantine /
	// AllowRejoin bits OR onto it, and the server supplies Checkpoints.
	Options federation.RunOptions
}

// providerNames returns the checkpoint identity set: the leader first, then
// the members in link order (the same shape Leader.RunLinksContext builds).
func (b *FederationBackend) providerNames() []string {
	names := make([]string, 0, len(b.MemberNames)+1)
	names = append(names, b.Leader.ID())
	return append(names, b.MemberNames...)
}

// Fingerprint implements Backend via the core fingerprint: configuration,
// policy, provider names, and reference dimensions.
func (b *FederationBackend) Fingerprint(req Request) []byte {
	return core.Fingerprint(req.Config, req.Policy, b.providerNames(), b.Reference.N(), b.Reference.L())
}

// Run implements Backend: dial the members, attest, drive the protocol under
// ctx, and release the connections.
func (b *FederationBackend) Run(ctx context.Context, req Request, ck checkpoint.Store) (*core.Report, error) {
	links, cleanup, err := b.Dial()
	if err != nil {
		return nil, fmt.Errorf("service: dialing members: %w", err)
	}
	defer cleanup()
	opts := b.Options
	opts.Checkpoints = ck
	// Retention is what turns the shared store into a cache: the final
	// snapshot survives success so the next identical request replays it.
	opts.RetainCheckpoints = ck != nil
	opts.Byzantine = opts.Byzantine || req.Byzantine
	opts.AllowRejoin = opts.AllowRejoin || req.AllowRejoin
	return b.Leader.RunLinksContext(ctx, links, b.Reference, req.Config, req.Policy, opts)
}

// NewInProcessBackend assembles a complete single-process federation for the
// backend: leader gdo-0 over shards[0], one member node per remaining shard,
// all sharing one attestation authority. Each Run dials fresh in-memory pipes
// to the long-lived member nodes and attests them, mirroring the reference
// in-process deployment. The load harness and the service tests run against
// it.
func NewInProcessBackend(shards []*genome.Matrix, reference *genome.Matrix, opts federation.RunOptions) (*FederationBackend, error) {
	if len(shards) < 2 {
		return nil, fmt.Errorf("service: in-process federation needs at least 2 shards, got %d", len(shards))
	}
	authority, err := attest.NewAuthority()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	leaderPlatform, err := enclave.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	leader, err := federation.NewLeader("gdo-0", shards[0], leaderPlatform, authority)
	if err != nil {
		return nil, err
	}
	members := make([]*federation.Member, 0, len(shards)-1)
	names := make([]string, 0, len(shards)-1)
	for i, shard := range shards[1:] {
		platform, err := enclave.NewPlatform()
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		m, err := federation.NewMember(fmt.Sprintf("gdo-%d", i+1), shard, platform, authority)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
		names = append(names, m.ID())
	}
	dial := func() ([]federation.MemberLink, func(), error) {
		links := make([]federation.MemberLink, len(members))
		// Every spawned serve goroutine is joined by cleanup: the leader ends
		// are tracked (redials included) so closing them unblocks Serve, and
		// the WaitGroup guarantees no session goroutine outlives its run.
		var (
			mu    sync.Mutex
			conns []transport.Conn
			wg    sync.WaitGroup
		)
		for i, m := range members {
			// spawn wires one attestable channel: a fresh pipe whose far end
			// a new goroutine serves. The member node itself is long-lived
			// and serves concurrent sessions; the goroutine ends when the
			// leader side closes or the session shuts down cleanly.
			member := m
			spawn := func() transport.Conn {
				leaderEnd, memberEnd := transport.Pipe()
				mu.Lock()
				conns = append(conns, leaderEnd)
				mu.Unlock()
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = member.Serve(memberEnd)
					_ = memberEnd.Close()
				}()
				return leaderEnd
			}
			links[i] = federation.MemberLink{
				Conn:   spawn(),
				Name:   member.ID(),
				Redial: func() (transport.Conn, error) { return spawn(), nil },
			}
		}
		cleanup := func() {
			mu.Lock()
			ends := append([]transport.Conn(nil), conns...)
			mu.Unlock()
			for _, c := range ends {
				_ = c.Close()
			}
			wg.Wait()
		}
		return links, cleanup, nil
	}
	return &FederationBackend{
		Leader:      leader,
		Dial:        dial,
		Reference:   reference,
		MemberNames: names,
		Options:     opts,
	}, nil
}

// NewTCPDialer returns a LinkDialer that connects to standalone member nodes
// (cmd/gendpr-node) for every run, with redial-on-failure wired the same way
// as the one-shot leader CLI. Member names are the addresses, matching the
// CLI's checkpoint identities.
func NewTCPDialer(addrs []string, dialTimeout time.Duration) LinkDialer {
	if dialTimeout <= 0 {
		dialTimeout = transport.DefaultDialTimeout
	}
	return func() ([]federation.MemberLink, func(), error) {
		links := make([]federation.MemberLink, 0, len(addrs))
		conns := make([]transport.Conn, 0, len(addrs))
		cleanup := func() {
			for _, c := range conns {
				_ = c.Close()
			}
		}
		for _, addr := range addrs {
			addr := addr
			conn, err := transport.DialTimeout(addr, dialTimeout)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			conns = append(conns, conn)
			links = append(links, federation.MemberLink{
				Conn: conn,
				Name: addr,
				Redial: func() (transport.Conn, error) {
					return transport.DialTimeout(addr, dialTimeout)
				},
			})
		}
		return links, cleanup, nil
	}
}
