package service

import (
	"sort"
	"time"
)

// Stats is a point-in-time snapshot of the server's counters. The ledger
// balances: Admitted == Completed + Failed + ShedAfterAdmission + InFlight +
// Queued — after a finished drain the last two are zero, so every admitted
// request is accounted as completed, failed, or shed. Rejections at the door
// (Shed by reason) never count as admitted.
type Stats struct {
	// Admitted counts requests that passed admission control (coalesced
	// followers excluded — they ride an already-admitted run).
	Admitted int64
	// Started counts requests that claimed a federation slot.
	Started int64
	// Completed counts runs that produced a report.
	Completed int64
	// Failed counts runs that ended in an error after admission (deadline
	// expiry, cancellation, protocol failure).
	Failed int64
	// Coalesced counts requests deduplicated onto an identical in-flight
	// run.
	Coalesced int64
	// Reused counts runs that replayed completed phases from a shared
	// checkpoint (Report.Resumed).
	Reused int64
	// Shed counts rejections and drops by reason (the Reason* constants).
	// Door rejections and post-admission drain sheds both land here;
	// ShedAfterAdmission separates the latter.
	Shed map[string]int64
	// ShedAfterAdmission counts admitted-then-shed requests (drain clearing
	// the queue), a subset of Shed[ReasonDraining].
	ShedAfterAdmission int64
	// InFlight is the number of runs currently holding a federation slot;
	// Queued is the bounded queue's current occupancy.
	InFlight int64
	Queued   int64
	// Draining reports the server has stopped admitting.
	Draining bool
	// Latency summarizes admission-to-completion times of completed
	// requests (a sliding window of the most recent latencyWindow).
	Latency Percentiles
	// Wait summarizes admission-to-start times over the same window: the
	// queueing delay component of Latency.
	Wait Percentiles
}

// TotalShed sums the shed counters.
func (s Stats) TotalShed() int64 {
	var n int64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// Percentiles summarizes a duration sample.
type Percentiles struct {
	Count              int
	P50, P90, P95, P99 time.Duration
	Min, Max           time.Duration
}

// percentilesOf computes the summary over a copy of the sample.
func percentilesOf(sample []time.Duration) Percentiles {
	if len(sample) == 0 {
		return Percentiles{}
	}
	ds := append([]time.Duration(nil), sample...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(ds)-1))
		return ds[i]
	}
	return Percentiles{
		Count: len(ds),
		P50:   at(0.50),
		P90:   at(0.90),
		P95:   at(0.95),
		P99:   at(0.99),
		Min:   ds[0],
		Max:   ds[len(ds)-1],
	}
}

// latencyWindow bounds the retained duration samples so a long-lived daemon
// does not grow without bound; percentiles describe the most recent window.
const latencyWindow = 8192

// recordWindow appends d to a sliding window capped at latencyWindow.
func recordWindow(w []time.Duration, d time.Duration) []time.Duration {
	if len(w) < latencyWindow {
		return append(w, d)
	}
	copy(w, w[1:])
	w[len(w)-1] = d
	return w
}
