package service

import (
	"context"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"gendpr/internal/checkpoint"
)

// Config parameterizes a Server. Zero values pick conservative defaults; the
// only required field is Backend.
type Config struct {
	// Backend runs admitted assessments. Required.
	Backend Backend
	// Checkpoints, when non-nil, is the shared store runs checkpoint into.
	// When it implements checkpoint.Namespacer (FileStore and MemStore do),
	// every run gets a namespace keyed by its single-flight key (fingerprint
	// plus resilience-mode bits), retained after success, so identical later
	// requests resume instead of recomputing.
	Checkpoints checkpoint.Store
	// Slots is the number of concurrent federation runs (default 1).
	Slots int
	// QueueDepth bounds the admission queue (default 16). A full queue
	// sheds with ReasonQueueFull.
	QueueDepth int
	// TenantRate is each tenant's sustained admission rate in requests per
	// second (token bucket); zero disables rate quotas.
	TenantRate float64
	// TenantBurst is the token-bucket capacity (default: max(1, ceil of
	// TenantRate)). Ignored when TenantRate is zero.
	TenantBurst int
	// TenantConcurrency caps one tenant's admitted-but-unfinished requests,
	// so a greedy tenant cannot occupy the whole queue; zero disables the
	// cap.
	TenantConcurrency int
	// DefaultDeadline bounds requests that do not carry their own deadline;
	// zero leaves them unbounded.
	DefaultDeadline time.Duration
	// DrainGrace is how long Drain lets in-flight runs finish before
	// canceling them (they stop at the next phase boundary with their
	// checkpoint saved). Default 10s.
	DrainGrace time.Duration
	// OnEvent, when set, observes request lifecycle events. It may fire
	// from worker goroutines concurrently and must be fast.
	OnEvent func(Event)

	// now is the test clock; nil uses time.Now.
	now func() time.Time
}

func (c Config) slots() int {
	if c.Slots > 0 {
		return c.Slots
	}
	return 1
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 16
}

func (c Config) tenantBurst() int {
	if c.TenantBurst > 0 {
		return c.TenantBurst
	}
	if b := int(c.TenantRate + 0.999); b > 1 {
		return b
	}
	return 1
}

func (c Config) drainGrace() time.Duration {
	if c.DrainGrace > 0 {
		return c.DrainGrace
	}
	return 10 * time.Second
}

// Server is the always-on assessment front end. Construct with NewServer,
// submit with Assess, and shut down with Drain; after Drain returns, every
// admitted request has resolved (completed, failed, or shed) and further
// submissions are rejected with ReasonDraining.
type Server struct {
	cfg     Config
	backend Backend
	queue   chan *job
	// baseCtx parents every run; cancelRuns is the drain hammer that stops
	// in-flight runs at their next phase boundary after the grace period.
	baseCtx    context.Context
	cancelRuns context.CancelFunc
	workers    sync.WaitGroup
	// jobs tracks admitted-but-unresolved requests for the drain barrier.
	jobs sync.WaitGroup

	mu         sync.Mutex
	draining   bool
	buckets    map[string]*bucket
	lastSweep  time.Time
	tenantLoad map[string]int
	inflight   map[string]*job
	stats      statsState
}

// statsState is the mutable counter block behind Stats (guarded by Server.mu).
type statsState struct {
	admitted, started, completed, failed int64
	coalesced, reused                    int64
	shedAfterAdmission                   int64
	shed                                 map[string]int64
	inFlight                             int64
	latency                              []time.Duration
	wait                                 []time.Duration
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// job is one admitted request: the single-flight leader that followers
// attach to.
type job struct {
	key      string
	tenant   string
	req      Request
	ctx      context.Context
	cancel   context.CancelFunc
	admitted time.Time

	done chan struct{}
	resp *Response
	err  error
}

// NewServer starts the worker pool and returns the running server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("service: Config.Backend is required")
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		backend:    cfg.Backend,
		queue:      make(chan *job, cfg.queueDepth()),
		baseCtx:    ctx,
		cancelRuns: cancel,
		buckets:    make(map[string]*bucket),
		tenantLoad: make(map[string]int),
		inflight:   make(map[string]*job),
		stats:      statsState{shed: make(map[string]int64)},
	}
	for i := 0; i < cfg.slots(); i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Assess admits and executes one request. Admission is immediate: an
// overloaded server returns a structured *OverloadError (errors.Is
// ErrOverloaded) without blocking. An admitted request blocks until its run
// resolves or ctx is done — abandoning the wait does not abort the run, which
// keeps its deadline and checkpoints its progress for the next identical
// request.
func (s *Server) Assess(ctx context.Context, req Request) (*Response, error) {
	j, coalesced, err := s.admit(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if j.err != nil {
		return nil, j.err
	}
	resp := *j.resp
	resp.Coalesced = coalesced
	return &resp, nil
}

// singleFlightKey builds the dedup identity: the resilience-mode bits plus
// the assessment fingerprint (a Byzantine run may exclude members and produce
// a degraded report, so it never stands in for — and must never share a
// checkpoint namespace with — a non-Byzantine one; core.Fingerprint does not
// hash the mode bits). The key doubles as the checkpoint namespace, so it
// stays inside the filesystem-safe alphabet with the mode bits leading: the
// sanitizer truncates long names from the tail, and the tail here is the
// high-entropy fingerprint.
func singleFlightKey(fpHex string, req Request) string {
	return fmt.Sprintf("b%d-r%d-%s", boolBit(req.Byzantine), boolBit(req.AllowRejoin), fpHex)
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// admit applies admission control under the lock and either returns an
// existing identical in-flight job (coalesced true), enqueues a fresh one, or
// rejects.
func (s *Server) admit(req Request) (*job, bool, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	fpHex := hex.EncodeToString(s.backend.Fingerprint(req))
	key := singleFlightKey(fpHex, req)
	now := s.cfg.now()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.emit(Event{Event: EventShed, Tenant: tenant, Key: key, Reason: ReasonDraining})
		s.shedAtDoor(ReasonDraining)
		return nil, false, &OverloadError{Reason: ReasonDraining}
	}
	// Coalescing comes before the quota draw: a follower rides an already
	// admitted run and costs the server nothing, so it must not burn a token
	// (or be quota-rejected) for work that will not happen.
	if existing, ok := s.inflight[key]; ok {
		s.stats.coalesced++
		s.mu.Unlock()
		s.emit(Event{Event: EventCoalesced, Tenant: tenant, Key: key})
		return existing, true, nil
	}
	if s.cfg.TenantRate > 0 {
		if retry, ok := s.takeTokenLocked(tenant, now); !ok {
			s.mu.Unlock()
			s.emit(Event{Event: EventShed, Tenant: tenant, Key: key, Reason: ReasonTenantQuota})
			s.shedAtDoor(ReasonTenantQuota)
			return nil, false, &OverloadError{Reason: ReasonTenantQuota, RetryAfter: retry}
		}
	}
	if cap := s.cfg.TenantConcurrency; cap > 0 && s.tenantLoad[tenant] >= cap {
		s.mu.Unlock()
		s.emit(Event{Event: EventShed, Tenant: tenant, Key: key, Reason: ReasonTenantConcurrency})
		s.shedAtDoor(ReasonTenantConcurrency)
		return nil, false, &OverloadError{Reason: ReasonTenantConcurrency, RetryAfter: s.retryAfterEstimate()}
	}

	deadline := req.Deadline
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	j := &job{
		key:      key,
		tenant:   tenant,
		req:      req,
		admitted: now,
		done:     make(chan struct{}),
	}
	if deadline > 0 {
		// The deadline starts at admission, so queue wait counts against it:
		// a request the server cannot schedule in time expires in the queue
		// instead of claiming a slot it can no longer use.
		j.ctx, j.cancel = context.WithDeadline(s.baseCtx, now.Add(deadline))
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}

	select {
	//gendpr:allow(lockacrosssend): non-blocking send into a buffered queue (default branch sheds); holding the lock keeps queue occupancy and admission bookkeeping atomic
	case s.queue <- j:
	default:
		j.cancel()
		s.mu.Unlock()
		s.emit(Event{Event: EventShed, Tenant: tenant, Key: key, Reason: ReasonQueueFull})
		s.shedAtDoor(ReasonQueueFull)
		return nil, false, &OverloadError{Reason: ReasonQueueFull, RetryAfter: s.retryAfterEstimate()}
	}
	s.inflight[key] = j
	s.tenantLoad[tenant]++
	s.stats.admitted++
	s.jobs.Add(1)
	s.mu.Unlock()
	s.emit(Event{Event: EventAdmitted, Tenant: tenant, Key: key})
	s.emit(Event{Event: EventQueued, Tenant: tenant, Key: key})
	return j, false, nil
}

// shedAtDoor counts a rejection that never entered the queue.
func (s *Server) shedAtDoor(reason string) {
	s.mu.Lock()
	s.stats.shed[reason]++
	s.mu.Unlock()
}

// bucketSweepInterval paces evictions of idle-full tenant buckets.
const bucketSweepInterval = time.Minute

// sweepBucketsLocked evicts buckets that have idled long enough to be full
// again — a full bucket is indistinguishable from a fresh one, so dropping it
// cannot change an admission decision. Tenant names arrive verbatim from
// unauthenticated requests, so without eviction the map grows without bound
// under varied or adversarial tenant strings. Callers hold s.mu.
func (s *Server) sweepBucketsLocked(now time.Time) {
	if now.Sub(s.lastSweep) < bucketSweepInterval {
		return
	}
	s.lastSweep = now
	full := float64(s.cfg.tenantBurst())
	for tenant, b := range s.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*s.cfg.TenantRate >= full {
			delete(s.buckets, tenant)
		}
	}
}

// takeTokenLocked refills and draws from the tenant's bucket; on failure it
// returns the wait until the next token. Callers hold s.mu.
func (s *Server) takeTokenLocked(tenant string, now time.Time) (time.Duration, bool) {
	s.sweepBucketsLocked(now)
	b, ok := s.buckets[tenant]
	if !ok {
		b = &bucket{tokens: float64(s.cfg.tenantBurst()), last: now}
		s.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * s.cfg.TenantRate
		if max := float64(s.cfg.tenantBurst()); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	retry := time.Duration((1 - b.tokens) / s.cfg.TenantRate * float64(time.Second))
	return retry, false
}

// retryAfterEstimate hints when a shed request could fit: the median recent
// latency (roughly one slot turnover), or a fixed second without data.
func (s *Server) retryAfterEstimate() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := percentilesOf(s.stats.latency); p.Count > 0 {
		return p.P50
	}
	return time.Second
}

// worker owns one federation slot.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// ckStoreFor resolves the checkpoint store for one run: the single-flight-key
// namespace of the shared store when it supports namespacing, the root store
// otherwise, nil when checkpointing is off. Namespacing by the full key —
// mode bits included, not the bare fingerprint — keeps the single-flight
// guarantee (at most one live run per key) aligned with the namespace, so a
// namespace never has two writers and a retained Byzantine snapshot is never
// resumed by a non-Byzantine request.
func (s *Server) ckStoreFor(key string) checkpoint.Store {
	if s.cfg.Checkpoints == nil {
		return nil
	}
	if ns, ok := s.cfg.Checkpoints.(checkpoint.Namespacer); ok {
		return ns.Namespace(key)
	}
	return s.cfg.Checkpoints
}

// runJob executes one queued job inside a worker slot.
func (s *Server) runJob(j *job) {
	defer j.cancel()
	if err := j.ctx.Err(); err != nil {
		// Expired (or drain-canceled) while queued: resolve without touching
		// the federation.
		s.finish(j, nil, fmt.Errorf("service: request expired in queue: %w", err), false)
		return
	}
	s.mu.Lock()
	s.stats.started++
	s.stats.inFlight++
	s.mu.Unlock()
	s.emit(Event{Event: EventStarted, Tenant: j.tenant, Key: j.key})
	started := s.cfg.now()

	report, err := s.backend.Run(j.ctx, j.req, s.ckStoreFor(j.key))
	if err != nil && j.ctx.Err() != nil {
		// Normalize: the engine surfaces cancellation in several wrappings,
		// but the caller should see the deadline/cancel cause.
		err = fmt.Errorf("service: run aborted: %w", j.ctx.Err())
	}
	if err != nil {
		s.finish(j, nil, err, true)
		return
	}
	s.finish(j, &Response{
		Report: report,
		Reused: report.Resumed,
		Wait:   started.Sub(j.admitted),
	}, nil, true)
}

// finish resolves a job: it leaves the single-flight table, releases its
// tenant slot, updates the ledger, and wakes every waiter. started reports
// whether the job occupied a federation slot.
func (s *Server) finish(j *job, resp *Response, err error, started bool) {
	now := s.cfg.now()
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.tenantLoad[j.tenant]--
	if s.tenantLoad[j.tenant] <= 0 {
		delete(s.tenantLoad, j.tenant)
	}
	if started {
		s.stats.inFlight--
	}
	reused := false
	switch {
	case err != nil:
		s.stats.failed++
	default:
		s.stats.completed++
		total := now.Sub(j.admitted)
		resp.Total = total
		s.stats.latency = recordWindow(s.stats.latency, total)
		s.stats.wait = recordWindow(s.stats.wait, resp.Wait)
		if resp.Reused {
			s.stats.reused++
			reused = true
		}
	}
	s.mu.Unlock()

	j.resp, j.err = resp, err
	close(j.done)
	switch {
	case err != nil:
		s.emit(Event{Event: EventFailed, Tenant: j.tenant, Key: j.key, Reason: err.Error()})
	default:
		if reused {
			s.emit(Event{Event: EventResumed, Tenant: j.tenant, Key: j.key})
		}
		s.emit(Event{Event: EventCompleted, Tenant: j.tenant, Key: j.key})
	}
	s.jobs.Done()
}

// shedQueued resolves a job drained out of the queue before it ran.
func (s *Server) shedQueued(j *job) {
	j.cancel()
	s.mu.Lock()
	s.stats.shed[ReasonDraining]++
	s.stats.shedAfterAdmission++
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.tenantLoad[j.tenant]--
	if s.tenantLoad[j.tenant] <= 0 {
		delete(s.tenantLoad, j.tenant)
	}
	s.mu.Unlock()
	j.err = &OverloadError{Reason: ReasonDraining}
	close(j.done)
	s.emit(Event{Event: EventShed, Tenant: j.tenant, Key: j.key, Reason: ReasonDraining})
	s.jobs.Done()
}

// Drain performs the graceful shutdown: stop admitting, shed everything
// still queued, give in-flight runs the grace period to finish, then cancel
// them (each stops at its next phase boundary with its checkpoint saved).
// When Drain returns, every admitted request has resolved and the worker
// pool has exited. ctx, when it ends first, cuts the grace period short.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: already draining")
	}
	s.draining = true
	s.mu.Unlock()

	// Shed the backlog: jobs still in the channel never claimed a slot.
	// Workers may race us for them — either way each job resolves exactly
	// once.
	for {
		select {
		case j := <-s.queue:
			s.shedQueued(j)
			continue
		default:
		}
		break
	}

	finished := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(finished)
	}()
	grace := time.NewTimer(s.cfg.drainGrace())
	defer grace.Stop()
	select {
	case <-finished:
	case <-grace.C:
		s.cancelRuns()
		<-finished
	case <-ctx.Done():
		s.cancelRuns()
		<-finished
	}
	close(s.queue)
	s.workers.Wait()
	s.cancelRuns()
	s.emit(Event{Event: EventDrained})
	return nil
}

// Stats snapshots the ledger.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	shed := make(map[string]int64, len(s.stats.shed))
	for k, v := range s.stats.shed {
		shed[k] = v
	}
	return Stats{
		Admitted:           s.stats.admitted,
		Started:            s.stats.started,
		Completed:          s.stats.completed,
		Failed:             s.stats.failed,
		Coalesced:          s.stats.coalesced,
		Reused:             s.stats.reused,
		Shed:               shed,
		ShedAfterAdmission: s.stats.shedAfterAdmission,
		InFlight:           s.stats.inFlight,
		Queued:             int64(len(s.queue)),
		Draining:           s.draining,
		Latency:            percentilesOf(s.stats.latency),
		Wait:               percentilesOf(s.stats.wait),
	}
}

// emit forwards one event to the configured sink.
func (s *Server) emit(e Event) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(e)
	}
}
