// Package enclave simulates the Trusted Execution Environment contract
// GenDPR relies on. Real deployments use Intel SGX (the paper runs on
// Graphene-SGX); this package substitutes a software TEE that enforces the
// same observable guarantees the protocol depends on:
//
//   - a code identity (measurement) that remote parties can verify,
//   - sealed storage bound to the platform and the measurement
//     (AES-256-GCM under an HKDF-derived sealing key),
//   - bounded protected memory with explicit accounting (the EPC limit), and
//   - monotonic counters for rollback protection of sealed state.
//
// The substitution is documented in DESIGN.md; protocol logic never peeks
// behind this interface.
package enclave

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"gendpr/internal/seal"
)

const (
	// EPCSize mirrors the 128 MB enclave page cache of SGX1 the paper
	// cites. Usage beyond it does not fail — SGX2 pages enclave memory —
	// but it is tracked (PagedPeak) because paging costs performance.
	EPCSize = 128 << 20

	// DefaultMemoryLimit is the hard ceiling, matching the paper's remark
	// that SGX2 expands an enclave's memory to up to 4 GB.
	DefaultMemoryLimit = 4 << 30
)

var (
	// ErrOutOfMemory is returned when an allocation would exceed the
	// enclave's protected-memory limit.
	ErrOutOfMemory = errors.New("enclave: protected memory limit exceeded")

	// ErrRollback is returned when sealed state fails its monotonic-counter
	// freshness check.
	ErrRollback = errors.New("enclave: sealed state is stale (rollback detected)")

	// ErrSealedCorrupt is returned when sealed data fails authentication.
	ErrSealedCorrupt = errors.New("enclave: sealed data failed authentication")
)

// Measurement is the SHA-256 digest of an enclave's code identity, the value
// remote attestation pins.
type Measurement [sha256.Size]byte

// MeasurementOf computes the measurement of a code identity.
func MeasurementOf(codeIdentity []byte) Measurement {
	return sha256.Sum256(codeIdentity)
}

// String returns the hexadecimal form of the measurement.
func (m Measurement) String() string { return hex.EncodeToString(m[:]) }

// Platform models one TEE-capable machine. Each platform holds a unique
// sealing root (fused hardware key in real SGX); enclaves on the same
// platform with the same measurement derive the same sealing key, enclaves
// elsewhere cannot.
type Platform struct {
	sealingRoot []byte
}

// NewPlatform creates a platform with a fresh sealing root.
func NewPlatform() (*Platform, error) {
	root := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, root); err != nil {
		return nil, fmt.Errorf("enclave: platform root: %w", err)
	}
	return &Platform{sealingRoot: root}, nil
}

// Enclave is one loaded enclave instance.
type Enclave struct {
	measurement Measurement
	sealKey     []byte

	mu       sync.Mutex
	memLimit int64
	memUsed  int64
	memPeak  int64
	counters map[string]uint64
}

// Config tunes enclave creation.
type Config struct {
	// MemoryLimit bounds protected memory in bytes; zero selects
	// DefaultMemoryLimit.
	MemoryLimit int64
}

// Load creates an enclave on the platform from a code identity.
func (p *Platform) Load(codeIdentity []byte, cfg Config) (*Enclave, error) {
	limit := cfg.MemoryLimit
	if limit == 0 {
		limit = DefaultMemoryLimit
	}
	if limit < 0 {
		return nil, fmt.Errorf("enclave: negative memory limit %d", limit)
	}
	m := MeasurementOf(codeIdentity)
	key, err := seal.HKDF(p.sealingRoot, m[:], []byte("enclave-sealing-key-v1"), seal.KeySize)
	if err != nil {
		return nil, fmt.Errorf("enclave: derive sealing key: %w", err)
	}
	return &Enclave{
		measurement: m,
		sealKey:     key,
		memLimit:    limit,
		counters:    make(map[string]uint64),
	}, nil
}

// Measurement returns the enclave's code identity digest.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Alloc accounts n bytes of protected memory, failing when the limit would
// be exceeded. Callers pair it with Free; the peak is reported by MemoryPeak.
func (e *Enclave) Alloc(n int64) error {
	if n < 0 {
		// Allocation sizes derive from member populations; the accounting
		// numbers stay out of error strings.
		return errors.New("enclave: negative allocation")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.memUsed+n > e.memLimit {
		return fmt.Errorf("%w: request exceeds the %d-byte enclave budget", ErrOutOfMemory, e.memLimit)
	}
	e.memUsed += n
	if e.memUsed > e.memPeak {
		e.memPeak = e.memUsed
	}
	return nil
}

// Free releases n bytes of protected memory.
func (e *Enclave) Free(n int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.memUsed -= n
	if e.memUsed < 0 {
		e.memUsed = 0
	}
}

// MemoryUsed returns the currently accounted protected memory.
func (e *Enclave) MemoryUsed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.memUsed
}

// MemoryPeak returns the high-water mark of protected memory.
func (e *Enclave) MemoryPeak() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.memPeak
}

// PagedPeak returns how far the high-water mark exceeded the EPC — the
// amount of enclave memory that SGX2 would have had to page, at significant
// performance cost. Zero means the working set fit the EPC.
func (e *Enclave) PagedPeak() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.memPeak <= EPCSize {
		return 0
	}
	return e.memPeak - EPCSize
}

// ResetPeak clears the high-water mark (used between experiment runs).
func (e *Enclave) ResetPeak() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.memPeak = e.memUsed
}

// sealedHeader binds sealed blobs to a named monotonic counter value.
type sealedHeader struct {
	name  string
	epoch uint64
}

func (h sealedHeader) aad() []byte {
	buf := make([]byte, 8+len(h.name))
	for i := 0; i < 8; i++ {
		buf[i] = byte(h.epoch >> (56 - 8*i))
	}
	copy(buf[8:], h.name)
	return buf
}

// Seal encrypts data under the enclave's sealing key. Only an enclave with
// the same measurement on the same platform can unseal it.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	return seal.Encrypt(e.sealKey, data, nil)
}

// Unseal decrypts sealed data.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	pt, err := seal.Decrypt(e.sealKey, blob, nil)
	if err != nil {
		return nil, ErrSealedCorrupt
	}
	return pt, nil
}

// SealVersioned seals data bound to the next epoch of the named monotonic
// counter, advancing the counter. UnsealVersioned later rejects blobs sealed
// at earlier epochs, detecting state rollback.
func (e *Enclave) SealVersioned(name string, data []byte) ([]byte, error) {
	e.mu.Lock()
	e.counters[name]++
	epoch := e.counters[name]
	e.mu.Unlock()
	h := sealedHeader{name: name, epoch: epoch}
	body, err := seal.Encrypt(e.sealKey, data, h.aad())
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(body))
	for i := 0; i < 8; i++ {
		out[i] = byte(epoch >> (56 - 8*i))
	}
	return append(out, body...), nil
}

// UnsealVersioned opens a versioned blob, enforcing counter freshness.
func (e *Enclave) UnsealVersioned(name string, blob []byte) ([]byte, error) {
	if len(blob) < 8 {
		return nil, ErrSealedCorrupt
	}
	var epoch uint64
	for i := 0; i < 8; i++ {
		epoch = epoch<<8 | uint64(blob[i])
	}
	e.mu.Lock()
	current := e.counters[name]
	e.mu.Unlock()
	if epoch < current {
		return nil, ErrRollback
	}
	h := sealedHeader{name: name, epoch: epoch}
	pt, err := seal.Decrypt(e.sealKey, blob[8:], h.aad())
	if err != nil {
		return nil, ErrSealedCorrupt
	}
	return pt, nil
}

// Counter returns the current value of a named monotonic counter.
func (e *Enclave) Counter(name string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters[name]
}
