package attest

import (
	"bytes"
	"errors"
	"testing"

	"gendpr/internal/enclave"
)

type fixture struct {
	authority *Authority
	platformA *enclave.Platform
	platformB *enclave.Platform
	encA      *enclave.Enclave
	encB      *enclave.Enclave
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	pa, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	ea, err := pa.Load([]byte("gendpr-enclave"), enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eb, err := pb.Load([]byte("gendpr-enclave"), enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{authority: auth, platformA: pa, platformB: pb, encA: ea, encB: eb}
}

func TestQuoteVerifies(t *testing.T) {
	f := newFixture(t)
	var rd [32]byte
	rd[0] = 7
	q := f.authority.Quote(f.encA, rd)
	if err := VerifyQuote(f.authority.PublicKey(), q, f.encA.Measurement()); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestQuoteWrongMeasurement(t *testing.T) {
	f := newFixture(t)
	var rd [32]byte
	q := f.authority.Quote(f.encA, rd)
	other := enclave.MeasurementOf([]byte("different-code"))
	if err := VerifyQuote(f.authority.PublicKey(), q, other); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("expected measurement mismatch, got %v", err)
	}
}

func TestQuoteForgedSignature(t *testing.T) {
	f := newFixture(t)
	rogue, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	var rd [32]byte
	forged := rogue.Quote(f.encA, rd)
	if err := VerifyQuote(f.authority.PublicKey(), forged, f.encA.Measurement()); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("forged quote accepted: %v", err)
	}
}

func TestQuoteTamperedBytes(t *testing.T) {
	f := newFixture(t)
	var rd [32]byte
	q := f.authority.Quote(f.encA, rd)
	q.ReportData[0] ^= 1
	if err := VerifyQuote(f.authority.PublicKey(), q, f.encA.Measurement()); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("tampered quote accepted: %v", err)
	}
}

func TestMutualAttestationDerivesSharedKey(t *testing.T) {
	f := newFixture(t)
	ha, err := NewHandshake(f.authority, f.encA)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHandshake(f.authority, f.encB)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := ha.Complete(f.authority.PublicKey(), hb.Offer(), f.encB.Measurement())
	if err != nil {
		t.Fatalf("A completing: %v", err)
	}
	kb, err := hb.Complete(f.authority.PublicKey(), ha.Offer(), f.encA.Measurement())
	if err != nil {
		t.Fatalf("B completing: %v", err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatal("handshake sides derived different keys")
	}
	if len(ka) != 32 {
		t.Fatalf("session key %d bytes, want 32", len(ka))
	}
}

func TestHandshakeRejectsWrongMeasurement(t *testing.T) {
	f := newFixture(t)
	// The peer runs unexpected code.
	evil, err := f.platformB.Load([]byte("evil-code"), enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ha, err := NewHandshake(f.authority, f.encA)
	if err != nil {
		t.Fatal(err)
	}
	he, err := NewHandshake(f.authority, evil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ha.Complete(f.authority.PublicKey(), he.Offer(), f.encA.Measurement()); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("wrong measurement accepted: %v", err)
	}
}

func TestHandshakeRejectsSubstitutedKey(t *testing.T) {
	// A man in the middle replacing the ECDH key breaks the report-data
	// binding even though the quote itself is genuine.
	f := newFixture(t)
	ha, err := NewHandshake(f.authority, f.encA)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHandshake(f.authority, f.encB)
	if err != nil {
		t.Fatal(err)
	}
	offer := hb.Offer()
	mitm, err := NewHandshake(f.authority, f.encA) // attacker-grade fresh key
	if err != nil {
		t.Fatal(err)
	}
	offer.ECDHPub = mitm.Offer().ECDHPub
	if _, err := ha.Complete(f.authority.PublicKey(), offer, f.encB.Measurement()); !errors.Is(err, ErrReportDataMismatch) {
		t.Fatalf("substituted key accepted: %v", err)
	}
}

func TestHandshakeRejectsReplayedNonce(t *testing.T) {
	f := newFixture(t)
	ha, err := NewHandshake(f.authority, f.encA)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHandshake(f.authority, f.encB)
	if err != nil {
		t.Fatal(err)
	}
	offer := hb.Offer()
	offer.Nonce[0] ^= 1
	if _, err := ha.Complete(f.authority.PublicKey(), offer, f.encB.Measurement()); !errors.Is(err, ErrReportDataMismatch) {
		t.Fatalf("modified nonce accepted: %v", err)
	}
}
