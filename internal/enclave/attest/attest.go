// Package attest simulates SGX remote attestation. A quoting Authority
// (standing in for Intel's attestation infrastructure) signs quotes over an
// enclave's measurement and caller-chosen report data; verifiers pin the
// authority's public key and the expected measurement. A mutual-attestation
// handshake binds ephemeral ECDH public keys into the report data so that the
// derived session key is only shared with a genuine enclave running the
// expected code — the paper's "trust-chain from boot to communication".
package attest

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"gendpr/internal/enclave"
	"gendpr/internal/seal"
)

const nonceSize = 16

var (
	// ErrQuoteInvalid is returned when a quote's signature does not verify.
	ErrQuoteInvalid = errors.New("attest: quote signature invalid")

	// ErrMeasurementMismatch is returned when a verified quote carries an
	// unexpected measurement.
	ErrMeasurementMismatch = errors.New("attest: measurement mismatch")

	// ErrReportDataMismatch is returned when the quote's report data does
	// not bind the handshake material.
	ErrReportDataMismatch = errors.New("attest: report data mismatch")
)

// Quote is the attestation evidence for one enclave.
type Quote struct {
	Measurement enclave.Measurement
	ReportData  [sha256.Size]byte
	Signature   []byte
}

// Authority simulates the quoting infrastructure that signs quotes.
type Authority struct {
	key *seal.SigningKey
}

// NewAuthority creates a quoting authority with a fresh signing key.
func NewAuthority() (*Authority, error) {
	k, err := seal.NewSigningKey()
	if err != nil {
		return nil, fmt.Errorf("attest: authority key: %w", err)
	}
	return &Authority{key: k}, nil
}

// NewAuthorityFromSeed derives a deterministic authority from a 32-byte
// seed, so separate operating-system processes of one deployment trust the
// same attestation infrastructure.
func NewAuthorityFromSeed(seed []byte) (*Authority, error) {
	k, err := seal.NewSigningKeyFromSeed(seed)
	if err != nil {
		return nil, fmt.Errorf("attest: authority seed: %w", err)
	}
	return &Authority{key: k}, nil
}

// PublicKey returns the authority's verification key, which every verifier
// pins.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.key.Public() }

// Quote issues a signed quote for an enclave with the given report data.
func (a *Authority) Quote(e *enclave.Enclave, reportData [sha256.Size]byte) Quote {
	m := e.Measurement()
	return Quote{
		Measurement: m,
		ReportData:  reportData,
		Signature:   a.key.Sign(quoteMessage(m, reportData)),
	}
}

func quoteMessage(m enclave.Measurement, rd [sha256.Size]byte) []byte {
	msg := make([]byte, 0, len(m)+len(rd)+16)
	msg = append(msg, []byte("gendpr-quote-v1|")...)
	msg = append(msg, m[:]...)
	msg = append(msg, rd[:]...)
	return msg
}

// VerifyQuote checks a quote against the pinned authority key and expected
// measurement.
func VerifyQuote(authority ed25519.PublicKey, q Quote, expected enclave.Measurement) error {
	if !seal.Verify(authority, quoteMessage(q.Measurement, q.ReportData), q.Signature) {
		return ErrQuoteInvalid
	}
	if q.Measurement != expected {
		return fmt.Errorf("%w: got %s, want %s", ErrMeasurementMismatch, q.Measurement, expected)
	}
	return nil
}

// Offer is one side's contribution to the mutual-attestation handshake.
type Offer struct {
	Quote   Quote
	ECDHPub []byte
	Nonce   [nonceSize]byte
}

// Handshake holds one side's ephemeral state.
type Handshake struct {
	keyPair *seal.KeyPair
	offer   Offer
}

// NewHandshake prepares an attested handshake for the enclave: it generates
// an ephemeral ECDH key and a nonce, and obtains a quote whose report data
// binds both.
func NewHandshake(a *Authority, e *enclave.Enclave) (*Handshake, error) {
	kp, err := seal.NewKeyPair()
	if err != nil {
		return nil, fmt.Errorf("attest: handshake key: %w", err)
	}
	var nonce [nonceSize]byte
	if _, err := io.ReadFull(rand.Reader, nonce[:]); err != nil {
		return nil, fmt.Errorf("attest: handshake nonce: %w", err)
	}
	pub := kp.PublicBytes()
	rd := reportDataFor(pub, nonce)
	return &Handshake{
		keyPair: kp,
		offer: Offer{
			Quote:   a.Quote(e, rd),
			ECDHPub: pub,
			Nonce:   nonce,
		},
	}, nil
}

func reportDataFor(pub []byte, nonce [nonceSize]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte("gendpr-handshake-v1|"))
	//gendpr:allow(secretflow): hashing public handshake material (ECDH public key, nonce); the digest never leaves the enclave
	h.Write(pub)
	h.Write(nonce[:])
	var rd [sha256.Size]byte
	copy(rd[:], h.Sum(nil))
	return rd
}

// Offer returns the material to send to the peer.
func (h *Handshake) Offer() Offer { return h.offer }

// Complete verifies the peer's offer (quote signature, expected measurement,
// report-data binding) and derives the shared session key. Both sides derive
// the same key regardless of who initiated.
func (h *Handshake) Complete(authority ed25519.PublicKey, peer Offer, expected enclave.Measurement) ([]byte, error) {
	if err := VerifyQuote(authority, peer.Quote, expected); err != nil {
		return nil, err
	}
	if reportDataFor(peer.ECDHPub, peer.Nonce) != peer.Quote.ReportData {
		return nil, ErrReportDataMismatch
	}
	// Symmetric transcript: order the two (nonce, pub) pairs canonically so
	// both sides compute identical info bytes.
	mine := append(append([]byte{}, h.offer.Nonce[:]...), h.offer.ECDHPub...)
	theirs := append(append([]byte{}, peer.Nonce[:]...), peer.ECDHPub...)
	lo, hi := mine, theirs
	if bytes.Compare(lo, hi) > 0 {
		lo, hi = hi, lo
	}
	info := append([]byte("gendpr-attested-session-v1|"), append(lo, hi...)...)
	key, err := h.keyPair.SessionKey(peer.ECDHPub, info)
	if err != nil {
		return nil, fmt.Errorf("attest: session key: %w", err)
	}
	return key, nil
}
