package enclave

import (
	"bytes"
	"errors"
	"testing"
)

func newTestEnclave(t *testing.T, code string, cfg Config) (*Platform, *Enclave) {
	t.Helper()
	p, err := NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	e, err := p.Load([]byte(code), cfg)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return p, e
}

func TestMeasurementDeterministic(t *testing.T) {
	a := MeasurementOf([]byte("gendpr-v1"))
	b := MeasurementOf([]byte("gendpr-v1"))
	c := MeasurementOf([]byte("gendpr-v2"))
	if a != b {
		t.Fatal("same code identity must yield same measurement")
	}
	if a == c {
		t.Fatal("different code identities must yield different measurements")
	}
	if len(a.String()) != 64 {
		t.Fatalf("measurement hex %q has wrong length", a.String())
	}
}

func TestSealUnsealSamePlatformSameCode(t *testing.T) {
	p, e := newTestEnclave(t, "code", Config{})
	blob, err := e.Seal([]byte("secret genome index"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	// A re-loaded enclave with the same measurement on the same platform
	// can unseal.
	e2, err := p.Load([]byte("code"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := e2.Unseal(blob)
	if err != nil {
		t.Fatalf("Unseal on re-loaded enclave: %v", err)
	}
	if !bytes.Equal(pt, []byte("secret genome index")) {
		t.Fatal("unsealed data mismatch")
	}
}

func TestSealIsolation(t *testing.T) {
	p, e := newTestEnclave(t, "code", Config{})
	blob, err := e.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Different code on the same platform must not unseal.
	other, err := p.Load([]byte("evil"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Unseal(blob); !errors.Is(err, ErrSealedCorrupt) {
		t.Errorf("different measurement unsealed: %v", err)
	}
	// Same code on a different platform must not unseal.
	_, foreign := newTestEnclave(t, "code", Config{})
	if _, err := foreign.Unseal(blob); !errors.Is(err, ErrSealedCorrupt) {
		t.Errorf("different platform unsealed: %v", err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	_, e := newTestEnclave(t, "c", Config{MemoryLimit: 100})
	if err := e.Alloc(60); err != nil {
		t.Fatalf("Alloc(60): %v", err)
	}
	if err := e.Alloc(50); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("Alloc beyond limit: %v", err)
	}
	if err := e.Alloc(40); err != nil {
		t.Fatalf("Alloc(40): %v", err)
	}
	if e.MemoryUsed() != 100 || e.MemoryPeak() != 100 {
		t.Fatalf("used=%d peak=%d, want 100/100", e.MemoryUsed(), e.MemoryPeak())
	}
	e.Free(70)
	if e.MemoryUsed() != 30 {
		t.Fatalf("used=%d after Free, want 30", e.MemoryUsed())
	}
	if e.MemoryPeak() != 100 {
		t.Fatalf("peak=%d must persist, want 100", e.MemoryPeak())
	}
	e.ResetPeak()
	if e.MemoryPeak() != 30 {
		t.Fatalf("peak=%d after reset, want 30", e.MemoryPeak())
	}
	if err := e.Alloc(-1); err == nil {
		t.Error("negative allocation must fail")
	}
	e.Free(1000) // over-free clamps at zero
	if e.MemoryUsed() != 0 {
		t.Fatalf("used=%d after over-free, want 0", e.MemoryUsed())
	}
}

func TestDefaultMemoryLimit(t *testing.T) {
	_, e := newTestEnclave(t, "c", Config{})
	if err := e.Alloc(DefaultMemoryLimit); err != nil {
		t.Fatalf("alloc to default limit: %v", err)
	}
	if err := e.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("default limit not enforced")
	}
}

func TestPagedPeakTracksEPCOverflow(t *testing.T) {
	_, e := newTestEnclave(t, "c", Config{})
	if err := e.Alloc(EPCSize - 10); err != nil {
		t.Fatal(err)
	}
	if e.PagedPeak() != 0 {
		t.Fatalf("paged peak %d within EPC, want 0", e.PagedPeak())
	}
	if err := e.Alloc(110); err != nil {
		t.Fatalf("SGX2 expansion must allow EPC overflow: %v", err)
	}
	if e.PagedPeak() != 100 {
		t.Fatalf("paged peak %d, want 100", e.PagedPeak())
	}
	e.Free(EPCSize)
	if e.PagedPeak() != 100 {
		t.Fatal("paged peak must be a high-water mark")
	}
}

func TestLoadRejectsNegativeLimit(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load([]byte("c"), Config{MemoryLimit: -1}); err == nil {
		t.Fatal("negative limit must fail")
	}
}

func TestVersionedSealingRollbackDetection(t *testing.T) {
	_, e := newTestEnclave(t, "c", Config{})
	v1, err := e.SealVersioned("state", []byte("epoch-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.UnsealVersioned("state", v1); err != nil {
		t.Fatalf("current epoch must unseal: %v", err)
	}
	if _, err := e.SealVersioned("state", []byte("epoch-2")); err != nil {
		t.Fatal(err)
	}
	// Replaying the stale epoch-1 blob must now be rejected.
	if _, err := e.UnsealVersioned("state", v1); !errors.Is(err, ErrRollback) {
		t.Fatalf("stale blob accepted: %v", err)
	}
	if e.Counter("state") != 2 {
		t.Fatalf("counter=%d, want 2", e.Counter("state"))
	}
	// Counters are per name.
	if e.Counter("other") != 0 {
		t.Fatal("unrelated counter advanced")
	}
}

func TestVersionedSealingTamperRejected(t *testing.T) {
	_, e := newTestEnclave(t, "c", Config{})
	blob, err := e.SealVersioned("s", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// Tampering with the epoch header breaks the AAD binding.
	blob[7] ^= 1
	if _, err := e.UnsealVersioned("s", blob); err == nil {
		t.Fatal("tampered epoch accepted")
	}
	if _, err := e.UnsealVersioned("s", []byte{1, 2}); !errors.Is(err, ErrSealedCorrupt) {
		t.Fatal("short blob accepted")
	}
}
