package oblivious

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(40)
		n := k + rng.Intn(400)
		vals := make([]float64, n)
		for i := range vals {
			// Heavy ties stress the merge network's duplicate handling.
			vals[i] = float64(rng.Intn(13)) - 6
		}
		filt := NewTopK(k)
		// Stream in uneven chunks to exercise block padding.
		for off := 0; off < n; {
			step := 1 + rng.Intn(70)
			if off+step > n {
				step = n - off
			}
			filt.Push(vals[off : off+step])
			off += step
		}
		desc := append([]float64(nil), vals...)
		sort.Sort(sort.Reverse(sort.Float64Slice(desc)))
		for _, j := range []int{1, (k + 1) / 2, k} {
			if got, want := filt.KthLargest(j), desc[j-1]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d (n=%d k=%d): KthLargest(%d)=%v, want %v", trial, n, k, j, got, want)
			}
		}
	}
}

func TestTopKMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		q := []float64{0.5, 0.9, 0.95, 0.99}[trial%4]
		idx := int(math.Ceil(float64(n)*q)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		k := n - idx
		filt := NewTopK(k)
		filt.Push(scores)
		if got, want := filt.KthLargest(k), Quantile(scores, q); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (n=%d q=%v): TopK=%v, Quantile=%v", trial, n, q, got, want)
		}
	}
}

func TestTopKReset(t *testing.T) {
	filt := NewTopK(2)
	filt.Push([]float64{100, 200})
	filt.Reset()
	filt.Push([]float64{1, 2, 3})
	if got := filt.KthLargest(1); got != 3 {
		t.Fatalf("after reset, 1st largest = %v, want 3", got)
	}
	if got := filt.KthLargest(2); got != 2 {
		t.Fatalf("after reset, 2nd largest = %v, want 2", got)
	}
	if !math.IsInf(NewTopK(3).KthLargest(3), -1) {
		t.Fatal("empty filter must report -Inf")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank must panic")
		}
	}()
	filt.KthLargest(3)
}
