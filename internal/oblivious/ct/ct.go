// Package ct provides the sanctioned constant-time primitives for
// enclave-resident code: branchless selection and comparison over uint64
// mask arithmetic. The obliviousflow analyzer bans per-individual data from
// deciding branches or addressing memory inside the access-pattern-critical
// packages; these helpers are the approved way to compute on such data —
// every call executes the same instruction sequence and touches the same
// addresses regardless of operand values, so the paper's §2 host adversary
// observes a data-independent trace.
//
// Each function carries a //gendpr:oblivious annotation and is listed in
// analysis.DefaultObliviousSpec, which declares it an oblivious barrier:
// handing secrets to it is sanctioned, and its own body is exempt from the
// branch/index checks (the mask arithmetic IS the constant-time
// implementation).
package ct

// Select returns a when choose's low bit is 1 and b when it is 0, without
// branching. Any nonzero decision must be reduced to a 0/1 bit first (Eq,
// Less, or Bit).
//
//gendpr:oblivious: pure mask arithmetic — no branch, no data-dependent address
func Select(choose, a, b uint64) uint64 {
	mask := -(choose & 1)
	return b ^ (mask & (a ^ b))
}

// Eq returns 1 when a == b and 0 otherwise, without branching.
//
//gendpr:oblivious: pure mask arithmetic — no branch, no data-dependent address
func Eq(a, b uint64) uint64 {
	x := a ^ b
	// x|-x has its top bit set exactly when x != 0.
	return ((x | -x) >> 63) ^ 1
}

// Less returns 1 when a < b (unsigned) and 0 otherwise, without branching:
// the borrow bit of a-b, computed via the identity from Hacker's Delight
// §2-12.
//
//gendpr:oblivious: pure mask arithmetic — no branch, no data-dependent address
func Less(a, b uint64) uint64 {
	return ((^a & b) | ((^a | b) & (a - b))) >> 63
}

// Bit reduces a boolean to a 0/1 mask bit without the compiler-visible
// branch a bool-to-int conversion would need, so callers can feed Go
// comparisons they already hold into Select.
//
//gendpr:oblivious: the operand is one bit by contract; no data-dependent address
func Bit(b bool) uint64 {
	// The conversion compiles to SETcc/CSEL-style flag materialization on
	// the supported targets, not a branch.
	var x uint64
	if b {
		x = 1
	}
	return x
}
