package ct

import (
	"math"
	"testing"
)

var edge = []uint64{0, 1, 2, 3, 63, 64, 127, 128,
	1 << 31, 1 << 32, 1<<63 - 1, 1 << 63, 1<<63 + 1, math.MaxUint64 - 1, math.MaxUint64}

func TestSelect(t *testing.T) {
	for _, a := range edge {
		for _, b := range edge {
			if got := Select(1, a, b); got != a {
				t.Fatalf("Select(1,%d,%d) = %d, want %d", a, b, got, a)
			}
			if got := Select(0, a, b); got != b {
				t.Fatalf("Select(0,%d,%d) = %d, want %d", a, b, got, b)
			}
			// Only the low bit of the decision is consulted.
			if got := Select(2, a, b); got != b {
				t.Fatalf("Select(2,%d,%d) = %d, want %d", a, b, got, b)
			}
			if got := Select(3, a, b); got != a {
				t.Fatalf("Select(3,%d,%d) = %d, want %d", a, b, got, a)
			}
		}
	}
}

func TestEq(t *testing.T) {
	for _, a := range edge {
		for _, b := range edge {
			want := uint64(0)
			if a == b {
				want = 1
			}
			if got := Eq(a, b); got != want {
				t.Fatalf("Eq(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestLess(t *testing.T) {
	for _, a := range edge {
		for _, b := range edge {
			want := uint64(0)
			if a < b {
				want = 1
			}
			if got := Less(a, b); got != want {
				t.Fatalf("Less(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestBit(t *testing.T) {
	if Bit(true) != 1 || Bit(false) != 0 {
		t.Fatalf("Bit(true)=%d Bit(false)=%d, want 1 and 0", Bit(true), Bit(false))
	}
}

func TestComposedSelection(t *testing.T) {
	// The idiom the obliviousflow fixture proves out: pick the larger of two
	// secret values without branching.
	for _, a := range edge {
		for _, b := range edge {
			max := Select(Less(a, b), b, a)
			want := a
			if b > a {
				want = b
			}
			if max != want {
				t.Fatalf("max(%d,%d) via Select/Less = %d, want %d", a, b, max, want)
			}
		}
	}
}
