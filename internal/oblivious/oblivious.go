// Package oblivious provides data-oblivious building blocks for enclave
// code. SGX enclaves leak memory access patterns to the untrusted host; the
// paper lists an oblivious GenDPR as future work and cites bitonic/ORAM
// style defenses. The primitives here execute a control flow and memory
// access sequence that depends only on input *sizes*, never on input
// *values*: selections go through arithmetic masking and sorting through a
// bitonic network. They back the oblivious LR-test mode in internal/lrtest.
//
// Caveat: pure Go cannot guarantee constant-time execution of every
// instruction the compiler emits; like published research prototypes, the
// package guarantees the algorithmic access pattern is data-independent.
package oblivious

import "math"

// Select64 returns a when choose is 1 and b when choose is 0, without
// branching on the secret choose bit.
func Select64(choose uint64, a, b uint64) uint64 {
	mask := -(choose & 1)
	return (a & mask) | (b &^ mask)
}

// SelectFloat returns a when choose is 1 and b when choose is 0 via bitwise
// masking of the IEEE-754 representations.
func SelectFloat(choose uint64, a, b float64) float64 {
	return math.Float64frombits(Select64(choose, math.Float64bits(a), math.Float64bits(b)))
}

// LessBit returns 1 when a < b and 0 otherwise as a data-usable bit.
// Total-order semantics follow IEEE-754 comparison; NaNs compare false.
func LessBit(a, b float64) uint64 {
	if a < b { // the comparison result becomes data, not a branch target
		return 1
	}
	return 0
}

// MinMax obliviously orders two values: it always performs the same loads,
// stores and arithmetic regardless of the operands.
func MinMax(a, b float64) (lo, hi float64) {
	swap := LessBit(b, a)
	lo = SelectFloat(swap, b, a)
	hi = SelectFloat(swap, a, b)
	return lo, hi
}

// BitonicSort sorts the slice ascending with a bitonic sorting network. The
// sequence of compare-exchange positions depends only on len(v): an observer
// of the memory trace learns nothing about the values. The slice is padded
// virtually to the next power of two using +Inf sentinels.
func BitonicSort(v []float64) {
	n := len(v)
	if n < 2 {
		return
	}
	size := 1
	for size < n {
		size <<= 1
	}
	padded := make([]float64, size)
	copy(padded, v)
	for i := n; i < size; i++ {
		padded[i] = math.Inf(1)
	}
	for k := 2; k <= size; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < size; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				ascending := i&k == 0
				a, b := padded[i], padded[l]
				lo, hi := MinMax(a, b)
				if ascending {
					padded[i], padded[l] = lo, hi
				} else {
					padded[i], padded[l] = hi, lo
				}
			}
		}
	}
	copy(v, padded[:n])
}

// Quantile returns the q-quantile of the scores (0 < q <= 1) using an
// oblivious sort followed by a fixed-position read: the access trace is
// independent of the score values. The input is not modified.
func Quantile(scores []float64, q float64) float64 {
	if len(scores) == 0 {
		return math.Inf(1)
	}
	sorted := make([]float64, len(scores))
	copy(sorted, scores)
	BitonicSort(sorted)
	idx := int(math.Ceil(float64(len(sorted))*q)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CountGreater returns how many values exceed the threshold using a
// branchless accumulation: every element is loaded and combined identically.
func CountGreater(scores []float64, threshold float64) int {
	var count uint64
	for _, s := range scores {
		count += LessBit(threshold, s)
	}
	return int(count)
}
