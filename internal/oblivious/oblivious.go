// Package oblivious provides data-oblivious building blocks for enclave
// code. SGX enclaves leak memory access patterns to the untrusted host; the
// paper lists an oblivious GenDPR as future work and cites bitonic/ORAM
// style defenses. The primitives here execute a control flow and memory
// access sequence that depends only on input *sizes*, never on input
// *values*: selections go through arithmetic masking and sorting through a
// bitonic network. They back the oblivious LR-test mode in internal/lrtest.
//
// Caveat: pure Go cannot guarantee constant-time execution of every
// instruction the compiler emits; like published research prototypes, the
// package guarantees the algorithmic access pattern is data-independent.
package oblivious

import "math"

// Select64 returns a when choose is 1 and b when choose is 0, without
// branching on the secret choose bit.
func Select64(choose uint64, a, b uint64) uint64 {
	mask := -(choose & 1)
	return (a & mask) | (b &^ mask)
}

// SelectFloat returns a when choose is 1 and b when choose is 0 via bitwise
// masking of the IEEE-754 representations.
func SelectFloat(choose uint64, a, b float64) float64 {
	return math.Float64frombits(Select64(choose, math.Float64bits(a), math.Float64bits(b)))
}

// LessBit returns 1 when a < b and 0 otherwise as a data-usable bit.
// Total-order semantics follow IEEE-754 comparison; NaNs compare false.
func LessBit(a, b float64) uint64 {
	if a < b { // the comparison result becomes data, not a branch target
		return 1
	}
	return 0
}

// MinMax obliviously orders two values: it always performs the same loads,
// stores and arithmetic regardless of the operands.
func MinMax(a, b float64) (lo, hi float64) {
	swap := LessBit(b, a)
	lo = SelectFloat(swap, b, a)
	hi = SelectFloat(swap, a, b)
	return lo, hi
}

// BitonicSort sorts the slice ascending with a bitonic sorting network. The
// sequence of compare-exchange positions depends only on len(v): an observer
// of the memory trace learns nothing about the values. The slice is padded
// virtually to the next power of two using +Inf sentinels.
func BitonicSort(v []float64) {
	n := len(v)
	if n < 2 {
		return
	}
	size := 1
	for size < n {
		size <<= 1
	}
	padded := make([]float64, size)
	copy(padded, v)
	for i := n; i < size; i++ {
		padded[i] = math.Inf(1)
	}
	bitonicSortPow2(padded, true)
	copy(v, padded[:n])
}

// bitonicSortPow2 sorts a power-of-two-length slice with a bitonic network,
// ascending when up is true. The direction is a public parameter: branching
// on it reveals nothing about the data.
func bitonicSortPow2(v []float64, up bool) {
	n := len(v)
	if n < 2 {
		return
	}
	bitonicSortPow2(v[:n/2], true)
	bitonicSortPow2(v[n/2:], false)
	bitonicMergePow2(v, up)
}

// bitonicMergePow2 sorts a bitonic power-of-two-length sequence (any cyclic
// rotation of an increase-then-decrease run) into the given direction with
// the classic half-cleaner network.
func bitonicMergePow2(v []float64, up bool) {
	n := len(v)
	if n < 2 {
		return
	}
	half := n / 2
	for i := 0; i < half; i++ {
		lo, hi := MinMax(v[i], v[i+half])
		if up {
			v[i], v[i+half] = lo, hi
		} else {
			v[i], v[i+half] = hi, lo
		}
	}
	bitonicMergePow2(v[:half], up)
	bitonicMergePow2(v[half:], up)
}

// Quantile returns the q-quantile of the scores (0 < q <= 1) using an
// oblivious sort followed by a fixed-position read: the access trace is
// independent of the score values. The input is not modified.
func Quantile(scores []float64, q float64) float64 {
	if len(scores) == 0 {
		return math.Inf(1)
	}
	sorted := make([]float64, len(scores))
	copy(sorted, scores)
	BitonicSort(sorted)
	idx := int(math.Ceil(float64(len(sorted))*q)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CountGreater returns how many values exceed the threshold using a
// branchless accumulation: every element is loaded and combined identically.
func CountGreater(scores []float64, threshold float64) int {
	var count uint64
	for _, s := range scores {
		count += LessBit(threshold, s)
	}
	return int(count)
}

// TopK is a streaming data-oblivious top-k filter. Instead of bitonic-sorting
// a full score vector per quantile query — O(n log² n) compare-exchanges — it
// keeps a power-of-two buffer of the k largest values seen and folds each
// incoming block in with one block sort plus one bitonic merge, O(n log² k)
// overall. The access pattern depends only on k and the pushed lengths.
//
// The invariant after every Push is that buf holds, in ascending order, the
// size largest values pushed so far (padded with −Inf while fewer than size
// values have been pushed). Folding works because the elementwise maximum of
// an ascending and a descending sequence contains exactly the top-size of
// their union and is itself bitonic, so one half-cleaner merge restores the
// ascending invariant.
type TopK struct {
	k    int
	size int       // next power of two >= k
	buf  []float64 // ascending; the size largest values so far
	blk  []float64 // staging for one incoming block
}

// NewTopK returns a filter that tracks the k largest pushed values (k >= 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	size := 1
	for size < k {
		size <<= 1
	}
	t := &TopK{k: k, size: size, buf: make([]float64, size), blk: make([]float64, size)}
	t.Reset()
	return t
}

// K returns the filter's capacity.
func (t *TopK) K() int { return t.k }

// Reset forgets all pushed values so the filter can be reused without
// reallocating its buffers.
func (t *TopK) Reset() {
	for i := range t.buf {
		t.buf[i] = math.Inf(-1)
	}
}

// Push folds values into the filter. The compare-exchange sequence depends
// only on len(vals) and k.
func (t *TopK) Push(vals []float64) {
	for off := 0; off < len(vals); off += t.size {
		end := off + t.size
		if end > len(vals) {
			end = len(vals)
		}
		n := copy(t.blk, vals[off:end])
		for i := n; i < t.size; i++ {
			t.blk[i] = math.Inf(-1)
		}
		bitonicSortPow2(t.blk, false)
		for i := range t.buf {
			// max(buf[i], blk[i]): ascending max descending keeps the
			// top-size of the union as a bitonic sequence.
			t.buf[i] = SelectFloat(LessBit(t.buf[i], t.blk[i]), t.blk[i], t.buf[i])
		}
		bitonicMergePow2(t.buf, true)
	}
}

// KthLargest returns the j-th largest value pushed so far (1-indexed,
// 1 <= j <= k), or −Inf when fewer than j values have been pushed.
func (t *TopK) KthLargest(j int) float64 {
	if j < 1 || j > t.k {
		panic("oblivious: KthLargest index out of range")
	}
	return t.buf[t.size-j]
}
