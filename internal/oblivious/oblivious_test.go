package oblivious

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelect64(t *testing.T) {
	if got := Select64(1, 7, 9); got != 7 {
		t.Errorf("Select64(1)=%d", got)
	}
	if got := Select64(0, 7, 9); got != 9 {
		t.Errorf("Select64(0)=%d", got)
	}
	// Only the low bit matters.
	if got := Select64(3, 7, 9); got != 7 {
		t.Errorf("Select64(3)=%d", got)
	}
}

func TestSelectFloat(t *testing.T) {
	if got := SelectFloat(1, 1.5, -2.5); got != 1.5 {
		t.Errorf("SelectFloat(1)=%v", got)
	}
	if got := SelectFloat(0, 1.5, -2.5); got != -2.5 {
		t.Errorf("SelectFloat(0)=%v", got)
	}
	neg := SelectFloat(1, math.Copysign(0, -1), 1)
	if !math.Signbit(neg) {
		t.Error("negative zero not preserved")
	}
}

func TestLessBit(t *testing.T) {
	if LessBit(1, 2) != 1 || LessBit(2, 1) != 0 || LessBit(1, 1) != 0 {
		t.Error("LessBit wrong on ordinary values")
	}
	if LessBit(math.NaN(), 1) != 0 || LessBit(1, math.NaN()) != 0 {
		t.Error("NaN must compare false")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax(3, -1)
	if lo != -1 || hi != 3 {
		t.Errorf("MinMax(3,-1)=%v,%v", lo, hi)
	}
	lo, hi = MinMax(-1, 3)
	if lo != -1 || hi != 3 {
		t.Errorf("MinMax(-1,3)=%v,%v", lo, hi)
	}
	lo, hi = MinMax(5, 5)
	if lo != 5 || hi != 5 {
		t.Errorf("MinMax(5,5)=%v,%v", lo, hi)
	}
}

func TestBitonicSortMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 31, 64, 100, 257} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		copy(want, v)
		sort.Float64s(want)
		BitonicSort(v)
		for i := range want {
			if v[i] != want[i] {
				t.Fatalf("n=%d: position %d: %v != %v", n, i, v[i], want[i])
			}
		}
	}
}

func TestQuickBitonicSort(t *testing.T) {
	f := func(v []float64) bool {
		for i := range v {
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		got := make([]float64, len(v))
		copy(got, v)
		BitonicSort(got)
		want := make([]float64, len(v))
		copy(want, v)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scores := make([]float64, 137)
	for i := range scores {
		scores[i] = rng.NormFloat64() * 10
	}
	orig := make([]float64, len(scores))
	copy(orig, scores)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		got := Quantile(scores, q)
		sorted := make([]float64, len(scores))
		copy(sorted, scores)
		sort.Float64s(sorted)
		idx := int(math.Ceil(float64(len(sorted))*q)) - 1
		if idx < 0 {
			idx = 0
		}
		if got != sorted[idx] {
			t.Errorf("q=%v: %v != %v", q, got, sorted[idx])
		}
	}
	for i := range scores {
		if scores[i] != orig[i] {
			t.Fatal("Quantile mutated its input")
		}
	}
	if !math.IsInf(Quantile(nil, 0.5), 1) {
		t.Error("empty input must yield +Inf")
	}
}

func TestCountGreater(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5}
	if got := CountGreater(scores, 2.5); got != 3 {
		t.Errorf("CountGreater=%d, want 3", got)
	}
	if got := CountGreater(scores, 5); got != 0 {
		t.Errorf("CountGreater(=max)=%d, want 0", got)
	}
	if got := CountGreater(nil, 0); got != 0 {
		t.Errorf("empty input: %d", got)
	}
}
