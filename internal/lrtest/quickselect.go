package lrtest

// kthSmallest returns the k-th smallest element (0-indexed) of a, partially
// reordering a in place. It is the O(n) replacement for the full sort the
// threshold computation used: the k-th order statistic of a multiset is a
// single well-defined value, so the result is identical to sorted[k].
// Callers guarantee a contains no NaNs (LR scores are finite by the
// frequency clamp in NewLogRatios).
func kthSmallest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for hi-lo > insertionCutoff {
		p := partition(a, lo, hi)
		switch {
		case k <= p:
			hi = p
		default:
			lo = p + 1
		}
	}
	insertionSort(a, lo, hi)
	return a[k]
}

// insertionCutoff is the subrange length below which quickselect finishes
// with an insertion sort instead of partitioning further.
const insertionCutoff = 12

// partition performs a Hoare partition of a[lo:hi+1] around a median-of-3
// pivot and returns p such that a[lo..p] <= pivot <= a[p+1..hi], with both
// sides non-empty.
func partition(a []float64, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	// Median-of-3: order a[lo], a[mid], a[hi] so a[mid] is the median.
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
	}
	pivot := a[mid]
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if !(a[i] < pivot) {
				break
			}
		}
		for {
			j--
			if !(pivot < a[j]) {
				break
			}
		}
		if i >= j {
			return j
		}
		a[i], a[j] = a[j], a[i]
	}
}

// insertionSort sorts a[lo:hi+1] ascending in place.
func insertionSort(a []float64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		v := a[i]
		j := i - 1
		for j >= lo && v < a[j] {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
