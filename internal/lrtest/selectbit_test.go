package lrtest

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// mergeRuns materializes a refOrder's two-run state into one sorted
// value/row sequence, merging exactly as split walks it (ties A-first).
func mergeRuns(o *refOrder) ([]float64, []int32) {
	a, b := o.valsA[:o.nA], o.valsB[:o.nB]
	ra, rb := o.rowsA[:o.nA], o.rowsB[:o.nB]
	vals := make([]float64, 0, o.nA+o.nB)
	rows := make([]int32, 0, o.nA+o.nB)
	ia, ib := 0, 0
	for ia < len(a) || ib < len(b) {
		if ib >= len(b) || (ia < len(a) && a[ia] <= b[ib]) {
			vals, rows = append(vals, a[ia]), append(rows, ra[ia])
			ia++
		} else {
			vals, rows = append(vals, b[ib]), append(rows, rb[ib])
			ib++
		}
	}
	return vals, rows
}

// TestRefOrderMatchesSort pins the sorted-base threshold machinery — split,
// the two-sorted-lists order statistic, and the admission merge — against a
// naive sort of the same score multiset, across random admission sequences
// with heavy ties, degenerate all-zero/all-one columns, equal
// representatives, and boundary ranks.
func TestRefOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// A small value set forces duplicate sums; no value can produce -0.
	reps := []float64{-2.5, -1.25, 0, 0.5, 0.5, 1.75, 3}
	ord := new(refOrder)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(96)
		cols := 1 + rng.Intn(12)
		m := NewBitMatrix(n, cols)
		for j := 0; j < cols; j++ {
			m.zero[j] = reps[rng.Intn(len(reps))]
			m.one[j] = reps[rng.Intn(len(reps))]
			if rng.Intn(5) == 0 {
				m.one[j] = m.zero[j]
			}
			switch rng.Intn(5) {
			case 0: // all-zero column: bits stay clear
			case 1: // all-one column
				for i := 0; i < n; i++ {
					m.bits[j*m.wpc+i>>6] |= 1 << (uint(i) & 63)
				}
			default:
				for i := 0; i < n; i++ {
					if rng.Intn(2) == 1 {
						m.bits[j*m.wpc+i>>6] |= 1 << (uint(i) & 63)
					}
				}
			}
		}

		ord.reset(n)
		naive := make([]float64, n)
		cand := make([]float64, n)
		for j := 0; j < cols; j++ {
			ord.split(m, j)
			if ord.candNA+ord.candNB != n {
				t.Fatalf("trial %d col %d: split covers %d+%d of %d positions",
					trial, j, ord.candNA, ord.candNB, n)
			}
			for i := 0; i < n; i++ {
				if m.bit(i, j) != 0 {
					cand[i] = naive[i] + m.one[j]
				} else {
					cand[i] = naive[i] + m.zero[j]
				}
			}
			sorted := append([]float64(nil), cand...)
			sort.Float64s(sorted)
			for _, k := range []int{0, n - 1, rng.Intn(n)} {
				if got := ord.kth(k); math.Float64bits(got) != math.Float64bits(sorted[k]) {
					t.Fatalf("trial %d col %d: kth(%d)=%v, sort gives %v", trial, j, k, got, sorted[k])
				}
			}
			if rng.Intn(2) == 1 {
				ord.admit()
				naive, cand = cand, naive
				vals, rows := mergeRuns(ord)
				for p := 0; p < n; p++ {
					if math.Float64bits(vals[p]) != math.Float64bits(sorted[p]) {
						t.Fatalf("trial %d col %d: admitted vals[%d]=%v, sorted %v",
							trial, j, p, vals[p], sorted[p])
					}
					if got := naive[rows[p]]; math.Float64bits(got) != math.Float64bits(vals[p]) {
						t.Fatalf("trial %d col %d: rows[%d]=%d carries %v, vals %v",
							trial, j, p, rows[p], got, vals[p])
					}
				}
			}
		}
	}
}

// TestSelectorDirectMatchesQuickselect pins the direct-mode sorted-base
// admission loop against the quickselect evaluator it replaced, per
// candidate: same safe set, same iteration count, bit-identical power.
func TestSelectorDirectMatchesQuickselect(t *testing.T) {
	for _, seed := range []int64{3, 17, 51} {
		cohort, ratios := testRatios(t, 60, 240, seed)
		caseBit, err := BuildBit(cohort.Case, ratios)
		if err != nil {
			t.Fatal(err)
		}
		refBit, err := BuildBit(cohort.Reference, ratios)
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		order := DiscriminabilityOrderBit(caseBit, refBit)

		got, err := new(Selector).SelectSafeBitWithOrder(caseBit, refBit, params, order)
		if err != nil {
			t.Fatal(err)
		}

		// Reference run through the quickselect evaluator, mirroring the
		// pre-sorted-base loop.
		n := refBit.Rows()
		caseScores := make([]float64, caseBit.Rows())
		refScores := make([]float64, n)
		candCase := make([]float64, caseBit.Rows())
		candRef := make([]float64, n)
		eval := newPowerEval(params, n)
		want := Result{Safe: []int{}}
		for _, j := range order {
			caseBit.addColumn(candCase, caseScores, j)
			refBit.addColumn(candRef, refScores, j)
			power := eval.power(candCase, candRef)
			want.Iterations++
			if power < params.PowerThreshold {
				caseScores, candCase = candCase, caseScores
				refScores, candRef = candRef, refScores
				want.Safe = append(want.Safe, j)
				want.Power = power
			}
		}
		sort.Ints(want.Safe)

		if len(got.Safe) != len(want.Safe) || got.Iterations != want.Iterations {
			t.Fatalf("seed %d: got %d safe/%d iters, want %d/%d",
				seed, len(got.Safe), got.Iterations, len(want.Safe), want.Iterations)
		}
		for i := range want.Safe {
			if got.Safe[i] != want.Safe[i] {
				t.Fatalf("seed %d: selection differs at %d: %d vs %d", seed, i, got.Safe[i], want.Safe[i])
			}
		}
		if math.Float64bits(got.Power) != math.Float64bits(want.Power) {
			t.Fatalf("seed %d: power %v vs %v not bit-identical", seed, got.Power, want.Power)
		}
	}
}
