package lrtest

import (
	"errors"
	"fmt"
	"math"
)

// Wire-format tags for serialized LR-matrices.
const (
	wireDense   = 1
	wireCompact = 2
)

// ErrNotCompactable is returned when a matrix has more than two distinct
// values in some column and cannot use the compact encoding.
var ErrNotCompactable = errors.New("lrtest: matrix column has more than two distinct values")

// CompactBytes encodes the matrix exploiting the structure of Equation 1:
// every column holds at most two distinct values (the minor- and
// major-allele contributions), so the matrix serializes as two float64s per
// column plus one bit per cell — roughly 50x smaller than the dense form for
// the paper's cohort sizes. The encoding is exact: decoding reproduces the
// dense matrix bit for bit.
func (m *Matrix) CompactBytes() ([]byte, error) {
	// One pass in storage order does both jobs at once: it discovers each
	// column's two representatives and packs the cell bits. The trick making
	// a single pass sound is that every cell visited before a column's second
	// distinct value is the first one, whose bit is 0 — exactly the packed
	// slice's zero default — so no back-patching is needed when hi appears.
	// The seed implementation swept the matrix twice (column-strided, then
	// row-major); this pass is row-major only, the cache-friendly direction,
	// and assembles each output byte in a register before storing it.
	lo := make([]float64, m.cols)
	hi := make([]float64, m.cols)
	seen := make([]uint8, m.cols)
	bits := make([]byte, (m.rows*m.cols+7)/8)
	var cur byte  // output byte being assembled
	var nbits int // bits of cur filled so far
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			if v != v {
				// NaN breaks the equality-based bit assignment; Equation 1
				// never produces it, so fall back to the dense encoding.
				return nil, fmt.Errorf("%w: column %d contains NaN", ErrNotCompactable, j)
			}
			// The compact codec tests whether each cell is bit-identical
			// to one of the column's two representatives; the values are
			// copies, never recomputed, so exact equality is the spec.
			switch {
			case seen[j] == 0:
				lo[j] = v
				seen[j] = 1
			//gendpr:allow(floateq): exact-representation dictionary check, values are verbatim copies
			case v == lo[j]:
			case seen[j] == 1:
				hi[j] = v
				seen[j] = 2
				cur |= 1 << uint(nbits)
			//gendpr:allow(floateq): exact-representation dictionary check, values are verbatim copies
			case v == hi[j]:
				cur |= 1 << uint(nbits)
			default:
				return nil, fmt.Errorf("%w: column %d", ErrNotCompactable, j)
			}
			if nbits++; nbits == 8 {
				bits[(i*m.cols+j)/8] = cur
				cur, nbits = 0, 0
			}
		}
	}
	if nbits > 0 {
		bits[len(bits)-1] = cur
	}
	for j := 0; j < m.cols; j++ {
		if seen[j] < 2 {
			hi[j] = lo[j]
		}
	}

	buf := make([]byte, 0, 17+16*m.cols+len(bits))
	buf = append(buf, wireCompact)
	var tmp [8]byte
	appendU64 := func(v uint64) {
		putUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	appendU64(uint64(m.rows))
	appendU64(uint64(m.cols))
	for j := 0; j < m.cols; j++ {
		appendU64(math.Float64bits(lo[j]))
		appendU64(math.Float64bits(hi[j]))
	}
	return append(buf, bits...), nil
}

// EncodeWire serializes a matrix for transmission, preferring the compact
// form and falling back to the dense encoding when a column is not
// two-valued (e.g. hand-constructed matrices in tests).
func EncodeWire(m *Matrix) []byte {
	if compact, err := m.CompactBytes(); err == nil {
		return compact
	}
	return append([]byte{wireDense}, m.Bytes()...)
}

// DecodeWire reverses EncodeWire.
func DecodeWire(b []byte) (*Matrix, error) {
	if len(b) == 0 {
		return nil, errors.New("lrtest: empty wire encoding")
	}
	switch b[0] {
	case wireDense:
		return FromBytes(b[1:])
	case wireCompact:
		return fromCompactBytes(b[1:])
	default:
		return nil, fmt.Errorf("lrtest: unknown wire tag %d", b[0])
	}
}

func fromCompactBytes(b []byte) (*Matrix, error) {
	if len(b) < 16 {
		return nil, errors.New("lrtest: compact encoding too short")
	}
	rows := int(getUint64(b[0:8]))
	cols := int(getUint64(b[8:16]))
	if rows < 0 || cols < 0 || rows > 1<<30 || cols > 1<<30 {
		return nil, errors.New("lrtest: compact encoding has implausible shape")
	}
	bitBytes := (rows*cols + 7) / 8
	want := 16 + 16*cols + bitBytes
	if len(b) != want {
		return nil, fmt.Errorf("lrtest: compact encoding has %d bytes, want %d", len(b), want)
	}
	lo := make([]float64, cols)
	hi := make([]float64, cols)
	for j := 0; j < cols; j++ {
		lo[j] = math.Float64frombits(getUint64(b[16+16*j : 24+16*j]))
		hi[j] = math.Float64frombits(getUint64(b[24+16*j : 32+16*j]))
	}
	bits := b[16+16*cols:]
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			idx := i*cols + j
			if bits[idx/8]&(1<<(uint(idx)%8)) != 0 {
				m.data[idx] = hi[j]
			} else {
				m.data[idx] = lo[j]
			}
		}
	}
	return m, nil
}
