package lrtest

import (
	"errors"
	"fmt"
	"math"
)

// This file implements genotype bit-patterns: BitMatrix values whose cell
// bits carry genotype orientation (a set bit means the minor allele) and
// whose representatives are all zero. A pattern is frequency-independent —
// the cell bits of a member's LR-matrix depend only on its genotypes and the
// requested columns, never on the broadcast frequency vectors — so the
// collusion driver fetches each member's pattern once per Phase 3 and
// derives every combination's LR-matrix from it with Reskin, instead of
// asking the member to rebuild (and re-ship) a matrix per combination.

// BuildBitPattern packs a genotype matrix's cells into a bit-pattern over
// all of its columns: the bits of BuildBit, with zero representatives.
// Reskin turns the pattern into a scoreable LR-matrix for any frequency
// vector.
func BuildBitPattern(g Genotypes) (*BitMatrix, error) {
	zero := make([]float64, g.L())
	return BuildBit(g, LogRatios{Minor: zero, Major: zero})
}

// IsPattern reports whether every representative is exactly zero — the
// invariant distinguishing a genotype bit-pattern from a skinned LR-matrix.
// The check is on the bit representation, so negative zero (which no pattern
// constructor produces) does not count.
func (m *BitMatrix) IsPattern() bool {
	for _, v := range m.zero {
		if math.Float64bits(v) != 0 {
			return false
		}
	}
	for _, v := range m.one {
		if math.Float64bits(v) != 0 {
			return false
		}
	}
	return true
}

// PatternStack maintains the row-wise concatenation of genotype bit-patterns
// for one evaluation chain: the merged per-individual matrix of the current
// presumed-honest combination. A revolving-door step is one Remove (the
// member leaving the combination) and one Push (the member entering) —
// column-local bit splices touching only the rows at and above the removed
// block — instead of a per-member rebuild and full MergeBits.
//
// Row order inside the stack is whatever the pushes produced, NOT member
// order: removing a middle block slides later blocks down, and the incoming
// member appends at the tail. That is sound because every Phase 3 consumer
// of a c > 0 combination — per-individual scores, the exact k-th order
// statistic threshold, the power count — is invariant under row permutation
// of the case matrix (see DESIGN.md); only the full-membership combination's
// discriminability order is row-order sensitive, and that one is built in
// canonical member order outside the stack.
type PatternStack struct {
	cols, wpc int
	rows      int
	bits      []uint64 // column-major, capRows capacity per column
	capRows   int
	blocks    []patternBlock
	zero, one []float64 // all-zero representatives for Matrix views
}

type patternBlock struct {
	id    int // caller's member index
	start int // first row of the block
	rows  int
}

// NewPatternStack sizes a stack for up to capRows total rows across cols
// columns.
func NewPatternStack(capRows, cols int) *PatternStack {
	if capRows < 0 || cols < 0 {
		capRows, cols = 0, 0
	}
	wpc := (capRows + 63) / 64
	return &PatternStack{
		cols:    cols,
		wpc:     wpc,
		capRows: capRows,
		bits:    make([]uint64, cols*wpc),
		zero:    make([]float64, cols),
		one:     make([]float64, cols),
	}
}

// Rows returns the current number of stacked rows.
func (s *PatternStack) Rows() int { return s.rows }

// Members returns the ids of the currently stacked blocks, in stack order.
func (s *PatternStack) Members() []int {
	ids := make([]int, len(s.blocks))
	for i, b := range s.blocks {
		ids[i] = b.id
	}
	return ids
}

// Reset empties the stack, clearing every used bit.
func (s *PatternStack) Reset() {
	if s.rows > 0 {
		for j := 0; j < s.cols; j++ {
			span := s.bits[j*s.wpc : (j+1)*s.wpc]
			clearRange(span, 0, s.rows)
		}
	}
	s.rows = 0
	s.blocks = s.blocks[:0]
}

// Push appends a member's pattern as the stack's new tail block.
func (s *PatternStack) Push(id int, part *BitMatrix) error {
	if part.cols != s.cols {
		return fmt.Errorf("%w: pattern has %d columns, stack %d", ErrShapeMismatch, part.cols, s.cols)
	}
	if s.rows+part.rows > s.capRows {
		return fmt.Errorf("lrtest: pattern stack overflow: pushed pattern exceeds row capacity")
	}
	for _, b := range s.blocks {
		if b.id == id {
			return fmt.Errorf("lrtest: pattern stack already holds member %d", id)
		}
	}
	if part.rows > 0 {
		for j := 0; j < s.cols; j++ {
			span := s.bits[j*s.wpc : (j+1)*s.wpc]
			spliceWords(span, s.rows, part.bits[j*part.wpc:(j+1)*part.wpc], part.rows, false)
		}
	}
	s.blocks = append(s.blocks, patternBlock{id: id, start: s.rows, rows: part.rows})
	s.rows += part.rows
	return nil
}

// Remove splices the block pushed under id out of the stack, sliding later
// blocks down and clearing the vacated tail rows.
func (s *PatternStack) Remove(id int) error {
	at := -1
	for i, b := range s.blocks {
		if b.id == id {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("lrtest: pattern stack holds no member %d", id)
	}
	blk := s.blocks[at]
	tail := s.rows - (blk.start + blk.rows) // rows above the removed block
	if blk.rows > 0 {
		for j := 0; j < s.cols; j++ {
			span := s.bits[j*s.wpc : (j+1)*s.wpc]
			if tail > 0 {
				shiftDown(span, blk.start, blk.start+blk.rows, tail)
			}
			clearRange(span, blk.start+tail, blk.rows)
		}
	}
	s.blocks = append(s.blocks[:at], s.blocks[at+1:]...)
	for i := at; i < len(s.blocks); i++ {
		s.blocks[i].start -= blk.rows
	}
	s.rows -= blk.rows
	return nil
}

// Matrix returns the stacked rows as a genotype bit-pattern. The view shares
// the stack's bit storage: it is valid until the next Push/Remove/Reset, and
// matrices reskinned from it share the same lifetime. The view's words-per-
// column stride is the stack's capacity stride; all kernel consumers iterate
// rows through the stride, so the padding words are never read.
func (s *PatternStack) Matrix() *BitMatrix {
	return &BitMatrix{rows: s.rows, cols: s.cols, wpc: s.wpc, zero: s.zero, one: s.one, bits: s.bits}
}

// shiftDown moves n bits of span from srcOff down to dstOff (dstOff <
// srcOff), leaving the source tail bits unchanged for the caller to clear.
func shiftDown(span []uint64, dstOff, srcOff, n int) {
	for n > 0 {
		sw, ss := srcOff>>6, uint(srcOff)&63
		take := 64 - int(ss)
		if take > n {
			take = n
		}
		v := (span[sw] >> ss) & ones(take)
		dw, ds := dstOff>>6, uint(dstOff)&63
		// Clear the destination bits, then OR the chunk in (may straddle two
		// words).
		lowTake := 64 - int(ds)
		if lowTake > take {
			lowTake = take
		}
		span[dw] = span[dw]&^(ones(lowTake)<<ds) | (v&ones(lowTake))<<ds
		if take > lowTake {
			rest := take - lowTake
			span[dw+1] = span[dw+1]&^ones(rest) | v>>uint(lowTake)
		}
		srcOff += take
		dstOff += take
		n -= take
	}
}

// clearRange zeroes n bits of span starting at bit offset off.
func clearRange(span []uint64, off, n int) {
	for n > 0 {
		w, sh := off>>6, uint(off)&63
		take := 64 - int(sh)
		if take > n {
			take = n
		}
		span[w] &^= ones(take) << sh
		off += take
		n -= take
	}
}

// --- pattern wire codec ---

// wirePatternTag identifies the orientation-preserving pattern encoding. The
// compact LR-matrix codec (EncodeWire) is value-oriented: it re-derives each
// column's bit meaning from the representatives, and a pattern's
// representatives are all equal (zero), which that codec would collapse to a
// constant column and drop the genotype bits. Patterns therefore ship under
// their own tag with the column-major words verbatim.
const wirePatternTag = 3

// EncodePatternWire serializes a genotype bit-pattern: tag, rows, cols, then
// each column's packed words. Representatives are not transmitted — they are
// zero by the pattern invariant, and the receiving leader derives real
// representatives per combination via Reskin.
func (m *BitMatrix) EncodePatternWire() []byte {
	buf := make([]byte, 0, 17+8*len(m.bits))
	buf = append(buf, wirePatternTag)
	var tmp [8]byte
	appendU64 := func(v uint64) {
		putUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	appendU64(uint64(m.rows))
	appendU64(uint64(m.cols))
	for _, w := range m.bits {
		appendU64(w)
	}
	return buf
}

// DecodePatternWire decodes an EncodePatternWire payload back into a
// genotype bit-pattern, validating the shape and masking column tail bits so
// the column invariant holds regardless of the sender.
func DecodePatternWire(b []byte) (*BitMatrix, error) {
	if len(b) == 0 {
		return nil, errors.New("lrtest: empty pattern encoding")
	}
	if b[0] != wirePatternTag {
		return nil, fmt.Errorf("lrtest: wire tag %d is not a pattern", b[0])
	}
	b = b[1:]
	if len(b) < 16 {
		return nil, errors.New("lrtest: pattern encoding too short")
	}
	rows := int(getUint64(b[0:8]))
	cols := int(getUint64(b[8:16]))
	if rows < 0 || cols < 0 || rows > 1<<30 || cols > 1<<30 {
		return nil, errors.New("lrtest: pattern encoding has implausible shape")
	}
	m := NewBitMatrix(rows, cols)
	want := 16 + 8*len(m.bits)
	if len(b) != want {
		return nil, fmt.Errorf("lrtest: pattern encoding has %d bytes, want %d", len(b)+1, want+1)
	}
	for i := range m.bits {
		m.bits[i] = getUint64(b[16+8*i : 24+8*i])
	}
	if tail := rows & 63; tail != 0 && m.wpc > 0 {
		for j := 0; j < cols; j++ {
			m.bits[(j+1)*m.wpc-1] &= ones(tail)
		}
	}
	return m, nil
}

// ConcatBitPatterns concatenates genotype bit-patterns row-wise in argument
// order, preserving orientation — unlike MergeBits, whose representative
// normalization is undefined on patterns (their zero and one representatives
// are equal). The result has the canonical words-per-column stride, so it is
// safe to feed to row-order-sensitive consumers like
// DiscriminabilityOrderBit.
func ConcatBitPatterns(parts ...*BitMatrix) (*BitMatrix, error) {
	cols, rows := 0, 0
	if len(parts) > 0 {
		cols = parts[0].cols
	}
	for _, p := range parts {
		if p.cols != cols {
			return nil, fmt.Errorf("%w: %d vs %d columns", ErrShapeMismatch, p.cols, cols)
		}
		rows += p.rows
	}
	out := NewBitMatrix(rows, cols)
	off := 0
	for _, p := range parts {
		if p.rows == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			spliceWords(out.bits[j*out.wpc:(j+1)*out.wpc], off, p.bits[j*p.wpc:(j+1)*p.wpc], p.rows, false)
		}
		off += p.rows
	}
	return out, nil
}
