package lrtest

import (
	"math"
	"math/rand"
	"testing"
)

// patGenotypes is a deterministic fake genotype source.
type patGenotypes struct {
	n, l int
	bits [][]bool
}

func newPatGenotypes(n, l int, seed int64) *patGenotypes {
	rng := rand.New(rand.NewSource(seed))
	g := &patGenotypes{n: n, l: l, bits: make([][]bool, n)}
	for i := range g.bits {
		g.bits[i] = make([]bool, l)
		for j := range g.bits[i] {
			g.bits[i][j] = rng.Intn(3) == 0
		}
	}
	return g
}

func (g *patGenotypes) N() int            { return g.n }
func (g *patGenotypes) L() int            { return g.l }
func (g *patGenotypes) Get(i, j int) bool { return g.bits[i][j] }

func patRatios(l int, seed int64) LogRatios {
	rng := rand.New(rand.NewSource(seed))
	r := LogRatios{Minor: make([]float64, l), Major: make([]float64, l)}
	for j := 0; j < l; j++ {
		r.Minor[j] = rng.NormFloat64()
		r.Major[j] = rng.NormFloat64()
	}
	return r
}

func TestBuildBitPatternReskinMatchesBuildBit(t *testing.T) {
	g := newPatGenotypes(37, 11, 1)
	ratios := patRatios(11, 2)
	want, err := BuildBit(g, ratios)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := BuildBitPattern(g)
	if err != nil {
		t.Fatal(err)
	}
	if !pat.IsPattern() {
		t.Fatal("BuildBitPattern must have zero representatives")
	}
	got, err := pat.Reskin(ratios)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("reskinned pattern differs from direct BuildBit")
	}
}

func TestConcatBitPatternsMatchesMergeBits(t *testing.T) {
	ratios := patRatios(9, 3)
	var parts []*BitMatrix
	var pats []*BitMatrix
	for i, n := range []int{17, 0, 64, 5, 129} {
		g := newPatGenotypes(n, 9, int64(10+i))
		lr, err := BuildBit(g, ratios)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, lr)
		pat, err := BuildBitPattern(g)
		if err != nil {
			t.Fatal(err)
		}
		pats = append(pats, pat)
	}
	want, err := MergeBits(parts...)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ConcatBitPatterns(pats...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cat.Reskin(ratios)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("reskinned concatenation differs from MergeBits of skinned parts")
	}
}

// TestPatternStackDeltaWalk drives a stack through pushes and removals and
// checks after every step that the stacked matrix decodes identically to a
// fresh concatenation of the live blocks (up to the row permutation the
// stack's slide-down removal induces — blocks keep stack order, so the
// expected layout is reproducible).
func TestPatternStackDeltaWalk(t *testing.T) {
	const cols = 7
	members := make([]*BitMatrix, 6)
	rowsOf := []int{3, 64, 1, 65, 0, 31}
	for i := range members {
		pat, err := BuildBitPattern(newPatGenotypes(rowsOf[i], cols, int64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		members[i] = pat
	}
	total := 0
	for _, r := range rowsOf {
		total += r
	}
	st := NewPatternStack(total, cols)

	live := []int{} // member ids in stack order
	check := func() {
		t.Helper()
		var parts []*BitMatrix
		for _, id := range live {
			parts = append(parts, members[id])
		}
		want, err := ConcatBitPatterns(parts...)
		if err != nil {
			t.Fatal(err)
		}
		got := st.Matrix()
		if got.Rows() != want.Rows() || (want.Rows() > 0 && got.Cols() != want.Cols()) {
			t.Fatalf("stack is %dx%d, want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
		}
		for j := 0; j < cols; j++ {
			for i := 0; i < want.Rows(); i++ {
				if got.bit(i, j) != want.bit(i, j) {
					t.Fatalf("cell (%d,%d) = %d, want %d (live %v)", i, j, got.bit(i, j), want.bit(i, j), live)
				}
			}
		}
		// Padding above the used rows must be clear so future pushes splice
		// onto zeroed ground.
		for j := 0; j < cols; j++ {
			span := st.bits[j*st.wpc : (j+1)*st.wpc]
			for i := st.rows; i < st.capRows; i++ {
				if span[i>>6]>>(uint(i)&63)&1 != 0 {
					t.Fatalf("dirty padding bit at (%d,%d)", i, j)
				}
			}
		}
	}

	push := func(id int) {
		t.Helper()
		if err := st.Push(id, members[id]); err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
		check()
	}
	remove := func(id int) {
		t.Helper()
		if err := st.Remove(id); err != nil {
			t.Fatal(err)
		}
		for i, v := range live {
			if v == id {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
		check()
	}

	push(0)
	push(1)
	push(2)
	remove(1) // middle block, word-straddling slide
	push(3)
	remove(0) // head block
	push(4)   // zero-row block
	push(5)
	remove(5) // tail block
	push(1)
	remove(4)
	remove(2)
	remove(3)
	remove(1)
	if st.Rows() != 0 || len(st.Members()) != 0 {
		t.Fatalf("stack not empty after removing all: %d rows, members %v", st.Rows(), st.Members())
	}
	push(3)
	st.Reset()
	live = live[:0]
	check()
	push(1)
}

func TestPatternStackErrors(t *testing.T) {
	pat, err := BuildBitPattern(newPatGenotypes(10, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	st := NewPatternStack(15, 4)
	if err := st.Push(0, pat); err != nil {
		t.Fatal(err)
	}
	if err := st.Push(0, pat); err == nil {
		t.Fatal("duplicate member id must fail")
	}
	if err := st.Push(1, pat); err == nil {
		t.Fatal("capacity overflow must fail")
	}
	if err := st.Remove(9); err == nil {
		t.Fatal("removing an absent member must fail")
	}
	wrong, err := BuildBitPattern(newPatGenotypes(2, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(2, wrong); err == nil {
		t.Fatal("column mismatch must fail")
	}
}

func TestPatternWireRoundTrip(t *testing.T) {
	for _, shape := range [][2]int{{0, 0}, {1, 1}, {63, 3}, {64, 3}, {65, 3}, {130, 17}} {
		pat, err := BuildBitPattern(newPatGenotypes(shape[0], shape[1], int64(40+shape[0])))
		if err != nil {
			t.Fatal(err)
		}
		enc := pat.EncodePatternWire()
		dec, err := DecodePatternWire(enc)
		if err != nil {
			t.Fatalf("decode %dx%d: %v", shape[0], shape[1], err)
		}
		if !dec.Equal(pat) || !dec.IsPattern() {
			t.Fatalf("round trip of %dx%d pattern differs", shape[0], shape[1])
		}
		// Orientation must survive: reskinning both with the same ratios
		// yields identical matrices even where a column is constant (the
		// case the value-oriented compact codec cannot represent).
		ratios := patRatios(shape[1], 99)
		a, err := pat.Reskin(ratios)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dec.Reskin(ratios)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatal("orientation lost in wire round trip")
		}
	}
}

func TestDecodePatternWireRejectsMalformed(t *testing.T) {
	pat, err := BuildBitPattern(newPatGenotypes(9, 2, 50))
	if err != nil {
		t.Fatal(err)
	}
	enc := pat.EncodePatternWire()
	cases := map[string][]byte{
		"empty":        {},
		"wrong tag":    append([]byte{wireCompact}, enc[1:]...),
		"truncated":    enc[:len(enc)-1],
		"extended":     append(append([]byte{}, enc...), 0),
		"short header": enc[:9],
	}
	for name, b := range cases {
		if _, err := DecodePatternWire(b); err == nil {
			t.Errorf("%s payload must fail", name)
		}
	}
	// Dirty tail bits are masked, not rejected: senders are not trusted to
	// maintain the column invariant.
	dirty := append([]byte{}, enc...)
	dirty[len(dirty)-1] |= 0x80 // highest bit of the last column word (row 63 > rows-1)
	dec, err := DecodePatternWire(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(pat) {
		t.Fatal("tail bits must be masked off")
	}
}

func TestSelectorReuseMatchesFresh(t *testing.T) {
	ratios := patRatios(13, 60)
	sel := NewSelector()
	for i, rows := range []int{40, 80, 40, 7} {
		caseLR, err := BuildBit(newPatGenotypes(rows, 13, int64(70+i)), ratios)
		if err != nil {
			t.Fatal(err)
		}
		refLR, err := BuildBit(newPatGenotypes(55, 13, int64(80+i)), ratios)
		if err != nil {
			t.Fatal(err)
		}
		params := Params{Alpha: 0.1, PowerThreshold: 0.6}
		if i == 3 {
			params.Oblivious = true
		}
		order := DiscriminabilityOrderBit(caseLR, refLR)
		want, err := SelectSafeBitWithOrder(caseLR, refLR, params, order)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sel.SelectSafeBitWithOrder(caseLR, refLR, params, order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Power) != math.Float64bits(want.Power) ||
			len(got.Safe) != len(want.Safe) || got.Iterations != want.Iterations {
			t.Fatalf("run %d: reused selector result %+v, want %+v", i, got, want)
		}
		for j := range want.Safe {
			if got.Safe[j] != want.Safe[j] {
				t.Fatalf("run %d: safe sets differ: %v vs %v", i, got.Safe, want.Safe)
			}
		}
	}
}
