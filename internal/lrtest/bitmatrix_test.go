package lrtest

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"gendpr/internal/genome"
)

// noRowWords hides the RowBitSource fast path so BuildBit exercises the
// generic Genotypes fallback.
type noRowWords struct{ g *genome.Matrix }

func (w noRowWords) N() int            { return w.g.N() }
func (w noRowWords) L() int            { return w.g.L() }
func (w noRowWords) Get(i, l int) bool { return w.g.Get(i, l) }

func testRatios(t testing.TB, snps, caseN int, seed int64) (*genome.Cohort, LogRatios) {
	t.Helper()
	cohort, caseFreq, refFreq := buildCohort(t, snps, caseN, seed)
	ratios, err := NewLogRatios(caseFreq, refFreq)
	if err != nil {
		t.Fatal(err)
	}
	return cohort, ratios
}

func TestBuildBitMatchesDense(t *testing.T) {
	cohort, ratios := testRatios(t, 130, 400, 3)
	for _, g := range []*genome.Matrix{cohort.Case, cohort.Reference} {
		dense, err := Build(g, ratios)
		if err != nil {
			t.Fatal(err)
		}
		bit, err := BuildBit(g, ratios)
		if err != nil {
			t.Fatal(err)
		}
		if !bit.Dense().Equal(dense) {
			t.Fatal("BuildBit decodes differently from Build")
		}
		slow, err := BuildBit(noRowWords{g}, ratios)
		if err != nil {
			t.Fatal(err)
		}
		if !slow.Equal(bit) {
			t.Fatal("RowBitSource fast path differs from Genotypes fallback")
		}
	}
	g := genome.NewMatrix(1, 2)
	if _, err := BuildBit(g, LogRatios{Minor: []float64{1}, Major: []float64{2}}); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestBitMatrixScoreSubsetMatchesDense(t *testing.T) {
	cohort, ratios := testRatios(t, 90, 300, 7)
	dense, _ := Build(cohort.Case, ratios)
	bit, _ := BuildBit(cohort.Case, ratios)
	subset := []int{0, 5, 5, 89, 44}
	want := dense.ScoreSubset(subset)
	got := bit.ScoreSubset(subset)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("score %d: %v vs %v (not bit-identical)", i, got[i], want[i])
		}
	}
	for j := 0; j < bit.Cols(); j += 17 {
		wc, gc := dense.Column(j), bit.Column(j)
		for i := range wc {
			if math.Float64bits(wc[i]) != math.Float64bits(gc[i]) {
				t.Fatalf("column %d row %d differs", j, i)
			}
		}
	}
}

func TestMergeBitsMatchesDenseMerge(t *testing.T) {
	cohort, ratios := testRatios(t, 70, 330, 13)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	denseParts := make([]*Matrix, len(shards))
	bitParts := make([]*BitMatrix, len(shards))
	for i, s := range shards {
		denseParts[i], _ = Build(s, ratios)
		bitParts[i], _ = BuildBit(s, ratios)
	}
	wantDense, err := Merge(denseParts...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeBits(bitParts...)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense().Equal(wantDense) {
		t.Fatal("MergeBits decodes differently from dense Merge")
	}
	if _, err := MergeBits(bitParts[0], NewBitMatrix(1, 99)); err == nil {
		t.Fatal("column mismatch must fail")
	}
	empty, err := MergeBits()
	if err != nil || empty.Rows() != 0 || empty.Cols() != 0 {
		t.Fatalf("empty merge: %v %v", empty, err)
	}
}

// TestMergeBitsNormalizesRepresentatives merges parts that disagree on which
// representative a set bit denotes — the situation DecodeWireBit produces,
// because the compact wire format records representatives in row-scan
// first-seen order, which varies per shard.
func TestMergeBitsNormalizesRepresentatives(t *testing.T) {
	cohort, ratios := testRatios(t, 40, 260, 17)
	shards, err := cohort.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	denseParts := make([]*Matrix, len(shards))
	bitParts := make([]*BitMatrix, len(shards))
	for i, s := range shards {
		denseParts[i], _ = Build(s, ratios)
		// Round-trip through the wire so each part's zero/one assignment
		// follows its own first-seen order, not the BuildBit orientation.
		bitParts[i], err = DecodeWireBit(EncodeWire(denseParts[i]))
		if err != nil {
			t.Fatal(err)
		}
	}
	wantDense, _ := Merge(denseParts...)
	got, err := MergeBits(bitParts...)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense().Equal(wantDense) {
		t.Fatal("merge of wire-decoded parts differs from dense merge")
	}
}

func TestMergeBitsHandlesConstantColumns(t *testing.T) {
	// Hand-built parts with constant and empty columns exercise the
	// const-splice mappings.
	a := NewBitMatrix(3, 2)
	a.zero[0], a.one[0] = 1.5, 1.5
	a.zero[1], a.one[1] = 2.5, 7.5
	a.bits[1*a.wpc] = 0b101 // column 1: rows 0,2 set
	b := NewBitMatrix(65, 2)
	b.zero[0], b.one[0] = -4.5, 1.5
	for i := 0; i < 65; i++ { // column 0: all set -> constant 1.5
		b.bits[i>>6] |= 1 << (uint(i) & 63)
	}
	b.zero[1], b.one[1] = 7.5, 2.5 // inverted representatives vs a
	b.bits[1*b.wpc] = 0b11         // rows 0,1 decode to 2.5

	got, err := MergeBits(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Merge(a.Dense(), b.Dense())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense().Equal(want) {
		t.Fatal("constant-column merge differs from dense merge")
	}

	// A third distinct value in a column must be rejected.
	c := NewBitMatrix(1, 2)
	c.zero[0], c.one[0] = 99, 99
	c.zero[1], c.one[1] = 99, 99
	if _, err := MergeBits(a, b, c); err == nil {
		t.Fatal("three distinct column values must fail")
	}
}

func TestReskinMatchesRebuild(t *testing.T) {
	cohort, ratios := testRatios(t, 60, 280, 19)
	base, err := BuildBit(cohort.Reference, ratios)
	if err != nil {
		t.Fatal(err)
	}
	otherFreq := make([]float64, 60)
	refFreq := make([]float64, 60)
	rng := rand.New(rand.NewSource(5))
	for i := range otherFreq {
		otherFreq[i] = 0.05 + 0.9*rng.Float64()
		refFreq[i] = 0.05 + 0.9*rng.Float64()
	}
	other, err := NewLogRatios(otherFreq, refFreq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BuildBit(cohort.Reference, other)
	if err != nil {
		t.Fatal(err)
	}
	got, err := base.Reskin(other)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Reskin differs from rebuilding with the new ratios")
	}
	if _, err := base.Reskin(LogRatios{Minor: []float64{1}, Major: []float64{2}}); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestBitMatrixEncodeWireByteIdentical(t *testing.T) {
	cohort, ratios := testRatios(t, 50, 240, 23)
	dense, _ := Build(cohort.Case, ratios)
	bit, _ := BuildBit(cohort.Case, ratios)
	if !bytes.Equal(bit.EncodeWire(), EncodeWire(dense)) {
		t.Fatal("BitMatrix wire bytes differ from the dense encoder's")
	}
}

func TestBitMatrixEncodeWireEdgeShapes(t *testing.T) {
	cases := []*Matrix{
		NewMatrix(0, 0),
		NewMatrix(0, 3),
		NewMatrix(4, 0),
		NewMatrix(5, 2), // all-zero cells: single-valued columns
	}
	constant := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		constant.Set(i, 0, 2.25)
		constant.Set(i, 1, -1.5)
	}
	cases = append(cases, constant)
	// A column whose first row carries the set-bit value exercises the
	// inverted wire mapping.
	flipped := NewMatrix(3, 1)
	flipped.Set(0, 0, 9)
	flipped.Set(1, 0, 3)
	flipped.Set(2, 0, 9)
	cases = append(cases, flipped)
	for i, d := range cases {
		bit, err := BitFromDense(d)
		if err != nil {
			t.Fatalf("case %d: BitFromDense: %v", i, err)
		}
		if !bytes.Equal(bit.EncodeWire(), EncodeWire(d)) {
			t.Fatalf("case %d: wire bytes differ from dense encoder", i)
		}
	}
}

func TestDecodeWireBitRoundTrip(t *testing.T) {
	cohort, ratios := testRatios(t, 45, 230, 27)
	dense, _ := Build(cohort.Case, ratios)
	bit, err := DecodeWireBit(EncodeWire(dense))
	if err != nil {
		t.Fatal(err)
	}
	if !bit.Dense().Equal(dense) {
		t.Fatal("compact wire decode differs from dense decode")
	}
	// Dense-tagged payloads decode through the two-value detector.
	bit2, err := DecodeWireBit(append([]byte{wireDense}, dense.Bytes()...))
	if err != nil {
		t.Fatal(err)
	}
	if !bit2.Equal(bit) {
		t.Fatal("dense-tag decode differs from compact decode")
	}
	if _, err := DecodeWireBit(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := DecodeWireBit([]byte{99}); err == nil {
		t.Fatal("unknown tag must fail")
	}
	if _, err := DecodeWireBit([]byte{wireCompact, 1, 2}); err == nil {
		t.Fatal("truncated compact payload must fail")
	}
}

func TestBitFromDenseRejectsNonCompactable(t *testing.T) {
	m := NewMatrix(3, 1)
	m.Set(0, 0, 1)
	m.Set(1, 0, 2)
	m.Set(2, 0, 3)
	if _, err := BitFromDense(m); err == nil {
		t.Fatal("three-valued column must fail")
	}
	n := NewMatrix(2, 1)
	n.Set(0, 0, math.NaN())
	if _, err := BitFromDense(n); err == nil {
		t.Fatal("NaN column must fail")
	}
}

func TestBitMatrixSizeBytes(t *testing.T) {
	bit := NewBitMatrix(1000, 64)
	denseBytes := int64(1000 * 64 * 8)
	if got := bit.SizeBytes(); got >= denseBytes/50 {
		t.Fatalf("bit matrix uses %d bytes, dense %d: expected >=50x saving", got, denseBytes)
	}
}

func TestKthSmallestMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		vals := make([]float64, n)
		for i := range vals {
			// Include heavy ties to stress pivot handling.
			vals[i] = float64(rng.Intn(9)) - 3.5
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		scratch := append([]float64(nil), vals...)
		if got := kthSmallest(scratch, k); math.Float64bits(got) != math.Float64bits(sorted[k]) {
			t.Fatalf("trial %d: kthSmallest(%d)=%v, sorted[%d]=%v", trial, k, got, k, sorted[k])
		}
	}
}

func TestThresholdMatchesSortBased(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		alpha := []float64{0.01, 0.05, 0.1, 0.5, 0.99}[trial%5]
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		want := sorted[thresholdIndex(n, alpha)]
		if got := Threshold(scores, alpha); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: Threshold=%v, sort-based=%v", trial, got, want)
		}
	}
}

func TestSelectSafeBitMatchesDense(t *testing.T) {
	for _, oblivious := range []bool{false, true} {
		for _, seed := range []int64{5, 9, 29} {
			cohort, ratios := testRatios(t, 80, 320, seed)
			caseDense, _ := Build(cohort.Case, ratios)
			refDense, _ := Build(cohort.Reference, ratios)
			caseBit, _ := BuildBit(cohort.Case, ratios)
			refBit, _ := BuildBit(cohort.Reference, ratios)
			params := DefaultParams()
			params.Oblivious = oblivious

			want, err := SelectSafe(caseDense, refDense, params)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SelectSafeBit(caseBit, refBit, params)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Safe) != len(got.Safe) || want.Iterations != got.Iterations {
				t.Fatalf("oblivious=%v seed=%d: bit selection shape differs: %d/%d vs %d/%d",
					oblivious, seed, len(got.Safe), got.Iterations, len(want.Safe), want.Iterations)
			}
			for i := range want.Safe {
				if want.Safe[i] != got.Safe[i] {
					t.Fatalf("oblivious=%v seed=%d: selection differs at %d", oblivious, seed, i)
				}
			}
			if math.Float64bits(want.Power) != math.Float64bits(got.Power) {
				t.Fatalf("oblivious=%v seed=%d: power %v vs %v not bit-identical",
					oblivious, seed, got.Power, want.Power)
			}
		}
	}
}

func TestSelectSafeBitValidation(t *testing.T) {
	m := NewBitMatrix(1, 1)
	if _, err := SelectSafeBit(m, m, Params{Alpha: 0, PowerThreshold: 0.9}); err == nil {
		t.Error("alpha=0 must fail")
	}
	if _, err := SelectSafeBit(NewBitMatrix(1, 2), NewBitMatrix(1, 3), DefaultParams()); err == nil {
		t.Error("column mismatch must fail")
	}
	if _, err := SelectSafeBitWithOrder(m, m, DefaultParams(), []int{0, 0}); err == nil {
		t.Error("bad order must fail")
	}
	res, err := SelectSafeBit(NewBitMatrix(0, 0), NewBitMatrix(0, 0), DefaultParams())
	if err != nil || len(res.Safe) != 0 {
		t.Errorf("empty matrix: %v %v", res, err)
	}
}

func TestEvaluateBitMatchesDense(t *testing.T) {
	cohort, ratios := testRatios(t, 55, 250, 41)
	caseDense, _ := Build(cohort.Case, ratios)
	refDense, _ := Build(cohort.Reference, ratios)
	caseBit, _ := BuildBit(cohort.Case, ratios)
	refBit, _ := BuildBit(cohort.Reference, ratios)
	subset := []int{3, 11, 30, 54}
	want, err := Evaluate(caseDense, refDense, subset, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateBit(caseBit, refBit, subset, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("EvaluateBit %v vs Evaluate %v", got, want)
	}
	if _, err := EvaluateBit(NewBitMatrix(1, 2), NewBitMatrix(1, 3), nil, 0.1); err == nil {
		t.Error("column mismatch must fail")
	}
}
