package lrtest

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// BitMatrix is the bit-packed twin of Matrix, exploiting the structure of
// Equation 1: every column of an LR-matrix holds at most two distinct values
// (the minor- and major-allele contributions), so the matrix stores as one
// bit per cell plus two float64 representatives per column — the in-memory
// analogue of the compact wire format, roughly 60x smaller than the dense
// form for the paper's cohort sizes.
//
// Bits are stored column-major (column j occupies the words
// bits[j*wpc:(j+1)*wpc], row i at bit i of that span) so the kernel's hot
// loops — ScoreSubset, the greedy admission scan, discriminability means —
// are stride-1 passes over a column's words. Unused tail bits of each
// column's last word are always zero; every constructor maintains this
// invariant.
//
// Cell (i,j) decodes to one[j] when its bit is set and zero[j] otherwise.
// All per-cell arithmetic iterates rows in ascending order and decodes cells
// branchlessly through a two-element lookup, so sums accumulate in exactly
// the order the dense kernel uses and every score is bit-for-bit identical
// to the dense path.
type BitMatrix struct {
	rows, cols int
	wpc        int // words per column: (rows+63)/64
	// zero/one are per-column decode values derived from the candidate
	// release's frequencies: cohort-level, aggregate-class secrets.
	//gendpr:secret(aggregate)
	zero []float64 // per-column value decoded for a clear bit
	//gendpr:secret(aggregate)
	one []float64 // per-column value decoded for a set bit
	// bits carries one cell per individual per SNP: per-individual secret.
	//gendpr:secret(individual)
	bits []uint64 // column-major cell bits, cols*wpc words
}

// NewBitMatrix allocates a rows-by-cols bit-packed LR-matrix whose cells all
// decode to zero.
func NewBitMatrix(rows, cols int) *BitMatrix {
	if rows < 0 || cols < 0 {
		return &BitMatrix{}
	}
	wpc := (rows + 63) / 64
	return &BitMatrix{
		rows: rows,
		cols: cols,
		wpc:  wpc,
		zero: make([]float64, cols),
		one:  make([]float64, cols),
		bits: make([]uint64, cols*wpc),
	}
}

// Rows returns the number of individuals.
func (m *BitMatrix) Rows() int { return m.rows }

// Cols returns the number of SNPs.
func (m *BitMatrix) Cols() int { return m.cols }

// At returns the contribution of individual i at SNP column j.
func (m *BitMatrix) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("lrtest: index (%d,%d) out of range for %dx%d bit matrix", i, j, m.rows, m.cols))
	}
	v := [2]float64{m.zero[j], m.one[j]}
	return v[m.bit(i, j)]
}

func (m *BitMatrix) bit(i, j int) uint64 {
	return (m.bits[j*m.wpc+i>>6] >> (uint(i) & 63)) & 1
}

// SizeBytes returns the in-memory footprint of the packed cells and column
// representatives — the quantity enclave memory accounting charges for
// holding the matrix.
func (m *BitMatrix) SizeBytes() int64 {
	return int64(len(m.bits))*8 + int64(len(m.zero))*8 + int64(len(m.one))*8
}

// RepsFinite reports whether every column representative (the two decoded
// log-ratio values per SNP) is a finite number. A NaN or ±Inf representative
// poisons every score the column touches; the leader's trust-boundary
// validation rejects member matrices that fail this check.
func (m *BitMatrix) RepsFinite() bool {
	for _, v := range m.zero {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for _, v := range m.one {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// RowBitSource is an optional Genotypes extension: genotype matrices that
// expose their packed row words (genome.Matrix does) let BuildBit transpose
// bits word-by-word instead of through per-cell interface calls.
type RowBitSource interface {
	// RowWords returns the packed genotype bits of row i, L() bits
	// little-endian, read-only.
	RowWords(i int) []uint64
}

// BuildBit computes the bit-packed LR-matrix for a genotype matrix given
// pooled frequencies — the member-side Phase 3 computation of Build without
// ever materializing the dense form. A set bit records the minor allele, so
// one[j] = ratios.Minor[j] and zero[j] = ratios.Major[j]; this genotype
// orientation is what makes Reskin valid.
func BuildBit(g Genotypes, ratios LogRatios) (*BitMatrix, error) {
	if g.L() != len(ratios.Minor) {
		return nil, fmt.Errorf("%w: %d genotype columns vs %d frequency entries",
			ErrShapeMismatch, g.L(), len(ratios.Minor))
	}
	m := NewBitMatrix(g.N(), g.L())
	copy(m.zero, ratios.Major)
	copy(m.one, ratios.Minor)
	if src, ok := g.(RowBitSource); ok {
		for i := 0; i < m.rows; i++ {
			row := src.RowWords(i)
			word, mask := i>>6, uint64(1)<<(uint(i)&63)
			for j := 0; j < m.cols; j++ {
				if row[j>>6]&(1<<(uint(j)&63)) != 0 {
					m.bits[j*m.wpc+word] |= mask
				}
			}
		}
		return m, nil
	}
	for i := 0; i < m.rows; i++ {
		word, mask := i>>6, uint64(1)<<(uint(i)&63)
		for j := 0; j < m.cols; j++ {
			if g.Get(i, j) {
				m.bits[j*m.wpc+word] |= mask
			}
		}
	}
	return m, nil
}

// Reskin returns a matrix sharing this matrix's cell bits but decoding them
// through a different frequency vector's log ratios: one[j] = Minor[j],
// zero[j] = Major[j]. It is only meaningful on matrices whose bits carry
// genotype orientation (a set bit means the minor allele), i.e. matrices
// from BuildBit or merges of them — which is exactly how the collusion
// driver reuses one reference bit-pattern across every honest-subset
// combination. The bits are shared read-only, so reskinned matrices are safe
// to score from concurrently.
func (m *BitMatrix) Reskin(ratios LogRatios) (*BitMatrix, error) {
	if m.cols != len(ratios.Minor) {
		return nil, fmt.Errorf("%w: %d matrix columns vs %d frequency entries",
			ErrShapeMismatch, m.cols, len(ratios.Minor))
	}
	out := &BitMatrix{rows: m.rows, cols: m.cols, wpc: m.wpc, bits: m.bits}
	out.zero = append([]float64(nil), ratios.Major...)
	out.one = append([]float64(nil), ratios.Minor...)
	return out, nil
}

// ScoreSubset sums each row's contributions over the given column subset,
// producing per-individual LR statistics bit-identical to the dense
// Matrix.ScoreSubset: columns accumulate in subset order and rows ascending.
func (m *BitMatrix) ScoreSubset(cols []int) []float64 {
	scores := make([]float64, m.rows)
	for _, j := range cols {
		if j < 0 || j >= m.cols {
			panic(fmt.Sprintf("lrtest: column %d out of range for %d columns", j, m.cols))
		}
		m.addColumn(scores, scores, j)
	}
	return scores
}

// addColumn writes base + column j into dst (dst and base may alias). The
// loop is branchless — the cell bit indexes a two-element lookup — and walks
// the column's words stride-1.
func (m *BitMatrix) addColumn(dst, base []float64, j int) {
	v := [2]float64{m.zero[j], m.one[j]}
	w := m.bits[j*m.wpc : (j+1)*m.wpc]
	for i := 0; i < m.rows; i++ {
		dst[i] = base[i] + v[(w[i>>6]>>(uint(i)&63))&1]
	}
}

// addColumnCount is addColumn fused with the Power numerator: it writes
// base + column j into dst and returns how many written scores exceed tau,
// saving the admission loop a second pass over the case rows. The counted
// comparisons are exactly Power's `score > tau` on the same values.
func (m *BitMatrix) addColumnCount(dst, base []float64, j int, tau float64) int {
	v := [2]float64{m.zero[j], m.one[j]}
	w := m.bits[j*m.wpc : (j+1)*m.wpc]
	hits := 0
	for i := 0; i < m.rows; i++ {
		s := base[i] + v[(w[i>>6]>>(uint(i)&63))&1]
		dst[i] = s
		if s > tau {
			hits++
		}
	}
	return hits
}

// ColumnOnes returns the number of set bits in column j. On matrices whose
// bits carry genotype orientation (the LRPattern contract: a set bit records
// the minor allele) this is the column's minor-allele carrier count, which
// the leader cross-checks against the member's reported Phase 1 counts. The
// count is representation-dependent and meaningless on matrices from
// BitFromDense, whose bit polarity follows row-scan first-seen order.
func (m *BitMatrix) ColumnOnes(j int) int {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("lrtest: column %d out of range for %d columns", j, m.cols))
	}
	return popcount(m.bits[j*m.wpc : (j+1)*m.wpc])
}

// FlipBit inverts the cell bit at (i, j). It exists for fault injection —
// Byzantine harnesses perturb a single genotype bit to exercise the leader's
// cross-payload checks; production code never mutates a built matrix.
func (m *BitMatrix) FlipBit(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("lrtest: index (%d,%d) out of range for %dx%d bit matrix", i, j, m.rows, m.cols))
	}
	m.bits[j*m.wpc+i>>6] ^= 1 << (uint(i) & 63)
}

// Column returns a copy of column j as dense values.
func (m *BitMatrix) Column(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("lrtest: column %d out of range for %d columns", j, m.cols))
	}
	col := make([]float64, m.rows)
	v := [2]float64{m.zero[j], m.one[j]}
	for i := range col {
		col[i] = v[m.bit(i, j)]
	}
	return col
}

// Dense materializes the dense Matrix with bit-identical cells. It exists
// for tests and the dense fallback path; production kernels never call it.
func (m *BitMatrix) Dense() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for j := 0; j < m.cols; j++ {
		v := [2]float64{m.zero[j], m.one[j]}
		w := m.bits[j*m.wpc : (j+1)*m.wpc]
		for i := 0; i < m.rows; i++ {
			out.data[i*m.cols+j] = v[(w[i>>6]>>(uint(i)&63))&1]
		}
	}
	return out
}

// BitFromDense packs a dense matrix, detecting each column's two
// representatives in row-scan order. Cells compare against the
// representatives with the same float equality the compact wire codec uses,
// so the conversion accepts exactly the matrices CompactBytes accepts and
// fails with ErrNotCompactable otherwise.
func BitFromDense(d *Matrix) (*BitMatrix, error) {
	m := NewBitMatrix(d.rows, d.cols)
	for j := 0; j < d.cols; j++ {
		span := m.bits[j*m.wpc : (j+1)*m.wpc]
		lo, hi := 0.0, 0.0
		seen := 0
		for i := 0; i < d.rows; i++ {
			v := d.data[i*d.cols+j]
			if v != v {
				return nil, fmt.Errorf("%w: column %d contains NaN", ErrNotCompactable, j)
			}
			switch {
			case seen == 0:
				lo = v
				seen = 1
			//gendpr:allow(floateq): exact-representation dictionary check, values are verbatim copies
			case v == lo:
			case seen == 1:
				hi = v
				seen = 2
				span[i>>6] |= 1 << (uint(i) & 63)
			//gendpr:allow(floateq): exact-representation dictionary check, values are verbatim copies
			case v == hi:
				span[i>>6] |= 1 << (uint(i) & 63)
			default:
				return nil, fmt.Errorf("%w: column %d", ErrNotCompactable, j)
			}
		}
		if seen < 2 {
			hi = lo
		}
		m.zero[j], m.one[j] = lo, hi
	}
	return m, nil
}

// Equal reports whether two bit matrices decode to identical cells. The
// comparison is representation-independent (two matrices with swapped
// representatives and inverted bits are equal) but value-exact: cells must
// match bit for bit, matching Matrix.Equal's contract.
func (m *BitMatrix) Equal(o *BitMatrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for j := 0; j < m.cols; j++ {
		mv := [2]float64{m.zero[j], m.one[j]}
		ov := [2]float64{o.zero[j], o.one[j]}
		for i := 0; i < m.rows; i++ {
			if math.Float64bits(mv[m.bit(i, j)]) != math.Float64bits(ov[o.bit(i, j)]) {
				return false
			}
		}
	}
	return true
}

// MergeBits concatenates bit-packed LR-matrices row-wise — the
// leader-enclave merge of Phase 3 Step 3 — without decoding any part to the
// dense form. Parts may disagree on which representative a set bit denotes
// (the compact wire format records them in row-scan first-seen order, which
// varies per shard), so each part's column is first normalized: its *used*
// values — zero[j] if any bit is clear, one[j] if any is set — are matched
// bitwise against the output column's representatives, and the part's words
// are spliced in verbatim, inverted, or as a constant run accordingly. A
// column with more than two distinct used values across the parts returns
// ErrNotCompactable.
func MergeBits(ms ...*BitMatrix) (*BitMatrix, error) {
	if len(ms) == 0 {
		return NewBitMatrix(0, 0), nil
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("%w: %d vs %d columns", ErrShapeMismatch, m.cols, cols)
		}
		rows += m.rows
	}
	out := NewBitMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		reps := [2]uint64{}
		seen := 0
		// assign maps a used value to its output bit, registering it if new.
		assign := func(v float64) (uint64, error) {
			b := math.Float64bits(v)
			for r := 0; r < seen; r++ {
				if reps[r] == b {
					return uint64(r), nil
				}
			}
			if seen == 2 {
				return 0, fmt.Errorf("%w: column %d across merge parts", ErrNotCompactable, j)
			}
			reps[seen] = b
			seen++
			return uint64(seen - 1), nil
		}
		span := out.bits[j*out.wpc : (j+1)*out.wpc]
		off := 0
		for _, m := range ms {
			if m.rows == 0 {
				continue
			}
			part := m.bits[j*m.wpc : (j+1)*m.wpc]
			set := popcount(part)
			var zeroBit, oneBit uint64 = 0, 1
			var err error
			if set < m.rows { // the clear-bit value appears
				if zeroBit, err = assign(m.zero[j]); err != nil {
					return nil, err
				}
			}
			if set > 0 { // the set-bit value appears
				if oneBit, err = assign(m.one[j]); err != nil {
					return nil, err
				}
			}
			switch {
			case set == 0:
				spliceConst(span, off, m.rows, zeroBit)
			case set == m.rows:
				spliceConst(span, off, m.rows, oneBit)
			case zeroBit == 0 && oneBit == 1:
				spliceWords(span, off, part, m.rows, false)
			default: // zeroBit == 1 && oneBit == 0: the part is inverted
				spliceWords(span, off, part, m.rows, true)
			}
			off += m.rows
		}
		if seen > 0 {
			out.zero[j] = math.Float64frombits(reps[0])
		}
		if seen > 1 {
			out.one[j] = math.Float64frombits(reps[1])
		} else {
			out.one[j] = out.zero[j]
		}
	}
	return out, nil
}

func popcount(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// spliceConst ORs n copies of bit into dst starting at bit offset off.
func spliceConst(dst []uint64, off, n int, bit uint64) {
	if bit == 0 {
		return
	}
	for n > 0 {
		word, sh := off>>6, uint(off)&63
		take := 64 - int(sh)
		if take > n {
			take = n
		}
		dst[word] |= (ones(take)) << sh
		off += take
		n -= take
	}
}

// ones returns a word with the low n bits set (0 <= n <= 64).
func ones(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// spliceWords ORs the low n bits of src (tail bits beyond n are zero by the
// column invariant) into dst starting at bit offset off, optionally
// inverting them.
func spliceWords(dst []uint64, off int, src []uint64, n int, invert bool) {
	word, sh := off>>6, uint(off)&63
	rem := n
	for w := 0; w < len(src) && rem > 0; w++ {
		v := src[w]
		if invert {
			v = ^v
		}
		take := 64
		if take > rem {
			take = rem
			v &= ones(take)
		}
		dst[word+w] |= v << sh
		if sh != 0 {
			if hi := v >> (64 - sh); hi != 0 {
				dst[word+w+1] |= hi
			}
		}
		rem -= take
	}
}

// EncodeWire serializes the matrix in the compact wire format,
// byte-identical to EncodeWire(m.Dense()): representatives are recorded in
// row-scan first-seen order and cell bits follow row-major, so members that
// build bit matrices interoperate with peers (and recorded traffic) from
// the dense implementation.
func (m *BitMatrix) EncodeWire() []byte {
	bitBytes := (m.rows*m.cols + 7) / 8
	buf := make([]byte, 0, 17+16*m.cols+bitBytes)
	buf = append(buf, wireCompact)
	var tmp [8]byte
	appendU64 := func(v uint64) {
		putUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	appendU64(uint64(m.rows))
	appendU64(uint64(m.cols))

	// mode per column: 0 = all bits zero on the wire, 1 = copy column bits,
	// 2 = invert column bits.
	const (
		wireZero = iota
		wireCopy
		wireInvert
	)
	modes := make([]byte, m.cols)
	for j := 0; j < m.cols; j++ {
		lo, hi := m.zero[j], m.one[j]
		mode := byte(wireZero)
		if m.rows > 0 {
			span := m.bits[j*m.wpc : (j+1)*m.wpc]
			set := popcount(span)
			switch {
			//gendpr:allow(floateq): mirrors the dense compact codec, which collapses float-equal representatives
			case set == 0 || set == m.rows || lo == hi:
				// Single effective value: the dense encoder records the
				// row-0 cell as lo and emits no set bits.
				v := [2]float64{lo, hi}
				lo = v[m.bit(0, j)]
				hi = lo
			case m.bit(0, j) == 0:
				// Row-scan first sees the clear-bit value: wire bits match
				// the stored bits.
				mode = wireCopy
			default:
				// Row-scan first sees the set-bit value: it becomes the wire
				// lo, so wire bits are the stored bits inverted.
				lo, hi = hi, lo
				mode = wireInvert
			}
		}
		modes[j] = mode
		appendU64(math.Float64bits(lo))
		appendU64(math.Float64bits(hi))
	}
	wire := make([]byte, bitBytes)
	for j := 0; j < m.cols; j++ {
		mode := modes[j]
		if mode == wireZero {
			continue
		}
		flip := uint64(0)
		if mode == wireInvert {
			flip = 1
		}
		w := m.bits[j*m.wpc : (j+1)*m.wpc]
		for i := 0; i < m.rows; i++ {
			if (w[i>>6]>>(uint(i)&63))&1 != flip {
				idx := i*m.cols + j
				wire[idx/8] |= 1 << (uint(idx) % 8)
			}
		}
	}
	return append(buf, wire...)
}

// DecodeWireBit decodes a wire-format LR-matrix (compact or dense tag)
// directly into the bit-packed form, without materializing the dense matrix
// for compact payloads. Dense payloads whose columns are not two-valued
// return ErrNotCompactable.
func DecodeWireBit(b []byte) (*BitMatrix, error) {
	if len(b) == 0 {
		return nil, errors.New("lrtest: empty wire encoding")
	}
	switch b[0] {
	case wireDense:
		d, err := FromBytes(b[1:])
		if err != nil {
			return nil, err
		}
		return BitFromDense(d)
	case wireCompact:
		return bitFromCompactBytes(b[1:])
	default:
		return nil, fmt.Errorf("lrtest: unknown wire tag %d", b[0])
	}
}

func bitFromCompactBytes(b []byte) (*BitMatrix, error) {
	if len(b) < 16 {
		return nil, errors.New("lrtest: compact encoding too short")
	}
	rows := int(getUint64(b[0:8]))
	cols := int(getUint64(b[8:16]))
	if rows < 0 || cols < 0 || rows > 1<<30 || cols > 1<<30 {
		return nil, errors.New("lrtest: compact encoding has implausible shape")
	}
	bitBytes := (rows*cols + 7) / 8
	want := 16 + 16*cols + bitBytes
	if len(b) != want {
		return nil, fmt.Errorf("lrtest: compact encoding has %d bytes, want %d", len(b), want)
	}
	m := NewBitMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		m.zero[j] = math.Float64frombits(getUint64(b[16+16*j : 24+16*j]))
		m.one[j] = math.Float64frombits(getUint64(b[24+16*j : 32+16*j]))
	}
	wire := b[16+16*cols:]
	for i := 0; i < rows; i++ {
		word, mask := i>>6, uint64(1)<<(uint(i)&63)
		for j := 0; j < cols; j++ {
			idx := i*cols + j
			if wire[idx/8]&(1<<(uint(idx)%8)) != 0 {
				m.bits[j*m.wpc+word] |= mask
			}
		}
	}
	return m, nil
}

// BuildBitFromColumnBytes builds a bit-packed LR-matrix from per-column
// genotype bitsets — rows bits each, little-endian bytes, bit i set when
// individual i carries the minor allele — as produced by an ORAM column
// store. Tail bits beyond rows in the final byte are masked off, so callers
// need not sanitize them.
func BuildBitFromColumnBytes(rows int, ratios LogRatios, column func(j int) ([]byte, error)) (*BitMatrix, error) {
	m := NewBitMatrix(rows, len(ratios.Minor))
	copy(m.zero, ratios.Major)
	copy(m.one, ratios.Minor)
	want := (rows + 7) / 8
	for j := 0; j < m.cols; j++ {
		col, err := column(j)
		if err != nil {
			return nil, err
		}
		if len(col) < want {
			return nil, fmt.Errorf("lrtest: column %d has %d bytes for %d rows", j, len(col), rows)
		}
		span := m.bits[j*m.wpc : (j+1)*m.wpc]
		for b := 0; b < want; b++ {
			span[b>>3] |= uint64(col[b]) << (uint(b) & 7 * 8)
		}
		if tail := rows & 63; tail != 0 {
			span[len(span)-1] &= ones(tail)
		}
	}
	return m, nil
}
