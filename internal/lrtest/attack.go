package lrtest

import "fmt"

// Adversary models the paper's threat: an attacker holding a victim's
// genotype, the released pooled case frequencies over some SNP set, and a
// reference panel with a similar allele distribution. It decides membership
// by comparing the victim's LR statistic against the threshold calibrated on
// the reference panel (Homer-style attack strengthened with the SecureGenome
// LR statistic).
type Adversary struct {
	ratios LogRatios
	tau    float64
}

// NewAdversary calibrates an adversary from released case frequencies, the
// matching reference frequencies, and reference genotypes, at false-positive
// rate alpha. The released SNP set is implicit in the frequency vectors: they
// must already be restricted to the released columns.
func NewAdversary(releasedCaseFreq, refFreq []float64, reference Genotypes, alpha float64) (*Adversary, error) {
	ratios, err := NewLogRatios(releasedCaseFreq, refFreq)
	if err != nil {
		return nil, err
	}
	refLR, err := Build(reference, ratios)
	if err != nil {
		return nil, fmt.Errorf("build reference LR-matrix: %w", err)
	}
	all := make([]int, refLR.Cols())
	for j := range all {
		all[j] = j
	}
	return &Adversary{
		ratios: ratios,
		tau:    Threshold(refLR.ScoreSubset(all), alpha),
	}, nil
}

// Score computes the victim's LR statistic over the released SNPs. The
// genotype slice must align with the released frequency vectors.
func (a *Adversary) Score(victim []bool) (float64, error) {
	if len(victim) != len(a.ratios.Minor) {
		return 0, fmt.Errorf("%w: victim has %d SNPs, release has %d",
			ErrShapeMismatch, len(victim), len(a.ratios.Minor))
	}
	var lr float64
	for l, minor := range victim {
		if minor {
			lr += a.ratios.Minor[l]
		} else {
			lr += a.ratios.Major[l]
		}
	}
	return lr, nil
}

// ClaimsMembership reports whether the adversary would declare the victim a
// study participant.
func (a *Adversary) ClaimsMembership(victim []bool) (bool, error) {
	s, err := a.Score(victim)
	if err != nil {
		return false, err
	}
	return s > a.tau, nil
}

// Threshold exposes the calibrated decision threshold τ.
func (a *Adversary) Threshold() float64 { return a.tau }

// DetectionPower runs the adversary against every genotype of a cohort and
// returns the fraction it would (correctly) flag — the empirical power of the
// membership attack against that release.
func (a *Adversary) DetectionPower(cohort Genotypes) (float64, error) {
	if cohort.L() != len(a.ratios.Minor) {
		return 0, fmt.Errorf("%w: cohort has %d SNPs, release has %d",
			ErrShapeMismatch, cohort.L(), len(a.ratios.Minor))
	}
	if cohort.N() == 0 {
		return 0, nil
	}
	victim := make([]bool, cohort.L())
	hits := 0
	for i := 0; i < cohort.N(); i++ {
		for l := range victim {
			victim[l] = cohort.Get(i, l)
		}
		claims, err := a.ClaimsMembership(victim)
		if err != nil {
			return 0, err
		}
		if claims {
			hits++
		}
	}
	return float64(hits) / float64(cohort.N()), nil
}
