package lrtest

import (
	"bytes"
	"testing"
)

// FuzzDecodeWire checks that hostile LR-matrix encodings never panic and
// that accepted inputs re-encode consistently.
func FuzzDecodeWire(f *testing.F) {
	m := NewMatrix(3, 2)
	m.Set(0, 0, 1.5)
	m.Set(2, 1, -0.25)
	f.Add(EncodeWire(m))
	if compact, err := m.CompactBytes(); err == nil {
		f.Add(compact)
	}
	f.Add([]byte{wireDense})
	f.Add([]byte{wireCompact, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeWire(data)
		if err != nil {
			return
		}
		again, err := DecodeWire(EncodeWire(decoded))
		if err != nil {
			t.Fatalf("re-encode of accepted matrix failed: %v", err)
		}
		// Compare IEEE-754 bit patterns (NaN-safe): the round trip must be
		// exact at the representation level.
		if !bytes.Equal(again.Bytes(), decoded.Bytes()) {
			t.Fatal("decode/encode round trip changed the matrix")
		}
	})
}

// FuzzBitMatrixWire checks that hostile encodings never panic the
// bit-packed decoder, that it agrees cell-for-cell with the dense decoder on
// every accepted input, and that its own re-encoding round-trips exactly.
func FuzzBitMatrixWire(f *testing.F) {
	m := NewMatrix(3, 2)
	m.Set(0, 0, 1.5)
	m.Set(2, 1, -0.25)
	f.Add(EncodeWire(m))
	f.Add(append([]byte{wireDense}, m.Bytes()...))
	f.Add([]byte{wireCompact, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		bit, err := DecodeWireBit(data)
		if err != nil {
			return
		}
		if dense, err := DecodeWire(data); err == nil {
			// Compare serialized IEEE-754 bit patterns (NaN-safe).
			if !bytes.Equal(bit.Dense().Bytes(), dense.Bytes()) {
				t.Fatal("bit decoder disagrees with dense decoder")
			}
		}
		again, err := DecodeWireBit(bit.EncodeWire())
		if err != nil {
			t.Fatalf("re-encode of accepted matrix failed: %v", err)
		}
		if !again.Equal(bit) {
			t.Fatal("bit wire round trip changed the matrix")
		}
	})
}

// FuzzFromBytes covers the dense decoder separately.
func FuzzFromBytes(f *testing.F) {
	m := NewMatrix(2, 2)
	f.Add(m.Bytes())
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if decoded, err := FromBytes(data); err == nil {
			if decoded.Rows() < 0 || decoded.Cols() < 0 {
				t.Fatal("negative shape accepted")
			}
		}
	})
}
