// Package lrtest implements the SecureGenome-style likelihood-ratio test the
// paper uses to bound membership-inference power (Section 3.2.3 and Phase 3).
//
// The central object is the LR-matrix: for each individual n and SNP l it
// stores the per-SNP log-likelihood-ratio contribution of Equation 1,
//
//	LR(n,l) = x(n,l)·log(p̂_l/p_l) + (1−x(n,l))·log((1−p̂_l)/(1−p_l)),
//
// where p̂ is the pooled case frequency and p the reference frequency. An
// individual's LR statistic over a SNP subset is the sum of the subset's
// contributions. GDOs build LR-matrices over their local genomes using the
// *pooled* frequencies broadcast by the leader, which makes the concatenated
// federation matrix identical to the one a centralized holder of all genomes
// would build — the exactness property behind Table 4.
package lrtest

import (
	"errors"
	"fmt"
	"math"
)

// freqClamp bounds frequencies away from 0 and 1 so log-ratios stay finite.
// Both the case and reference frequency are clamped identically on every
// code path, so centralized and distributed evaluations agree bit-for-bit.
const freqClamp = 1e-6

// ErrShapeMismatch is returned when matrices that must agree on their SNP
// dimension do not.
var ErrShapeMismatch = errors.New("lrtest: matrix shape mismatch")

// Matrix is a dense individuals-by-SNPs matrix of LR contributions.
type Matrix struct {
	rows, cols int
	// data holds one LR contribution per individual per SNP; reads are
	// tainted per-individual by the secretflow analyzer.
	//gendpr:secret(individual)
	data []float64
}

// NewMatrix allocates a rows-by-cols LR-matrix of zeros.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		return &Matrix{}
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Rows returns the number of individuals.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of SNPs.
func (m *Matrix) Cols() int { return m.cols }

// At returns the contribution of individual i at SNP column j.
func (m *Matrix) At(i, j int) float64 {
	m.mustBound(i, j)
	return m.data[i*m.cols+j]
}

// Set stores a contribution.
func (m *Matrix) Set(i, j int, v float64) {
	m.mustBound(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) mustBound(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("lrtest: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Genotypes is the minimal genotype access the LR computation needs; the
// genome.Matrix type satisfies it.
type Genotypes interface {
	N() int
	L() int
	Get(i, l int) bool
}

// LogRatios precomputes, for each SNP, the two possible contributions:
// carrying the minor allele (x=1) and not (x=0).
type LogRatios struct {
	Minor []float64 // log(p̂/p)
	Major []float64 // log((1−p̂)/(1−p))
}

// NewLogRatios derives the per-SNP log ratios from pooled case frequencies
// and reference frequencies. The slices must have equal length.
func NewLogRatios(caseFreq, refFreq []float64) (LogRatios, error) {
	if len(caseFreq) != len(refFreq) {
		return LogRatios{}, fmt.Errorf("%w: %d case vs %d reference frequencies",
			ErrShapeMismatch, len(caseFreq), len(refFreq))
	}
	lr := LogRatios{
		Minor: make([]float64, len(caseFreq)),
		Major: make([]float64, len(caseFreq)),
	}
	for l := range caseFreq {
		ph := clamp(caseFreq[l])
		p := clamp(refFreq[l])
		lr.Minor[l] = math.Log(ph / p)
		lr.Major[l] = math.Log((1 - ph) / (1 - p))
	}
	return lr, nil
}

func clamp(p float64) float64 {
	if p < freqClamp {
		return freqClamp
	}
	if p > 1-freqClamp {
		return 1 - freqClamp
	}
	return p
}

// Build computes the LR-matrix for a genotype matrix given pooled
// frequencies. This is the per-GDO local computation of Phase 3 Step 2.
func Build(g Genotypes, ratios LogRatios) (*Matrix, error) {
	if g.L() != len(ratios.Minor) {
		return nil, fmt.Errorf("%w: %d genotype columns vs %d frequency entries",
			ErrShapeMismatch, g.L(), len(ratios.Minor))
	}
	m := NewMatrix(g.N(), g.L())
	for i := 0; i < g.N(); i++ {
		base := i * m.cols
		for l := 0; l < g.L(); l++ {
			if g.Get(i, l) {
				m.data[base+l] = ratios.Minor[l]
			} else {
				m.data[base+l] = ratios.Major[l]
			}
		}
	}
	return m, nil
}

// Merge concatenates LR-matrices row-wise — the leader-enclave merge of
// Phase 3 Step 3. All matrices must share the SNP dimension.
func Merge(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("%w: %d vs %d columns", ErrShapeMismatch, m.cols, cols)
		}
		rows += m.rows
	}
	out := NewMatrix(rows, cols)
	at := 0
	for _, m := range ms {
		copy(out.data[at:], m.data)
		at += len(m.data)
	}
	return out, nil
}

// ScoreSubset sums each row's contributions over the given column subset,
// producing per-individual LR statistics.
func (m *Matrix) ScoreSubset(cols []int) []float64 {
	scores := make([]float64, m.rows)
	for _, j := range cols {
		if j < 0 || j >= m.cols {
			panic(fmt.Sprintf("lrtest: column %d out of range for %d columns", j, m.cols))
		}
		for i := 0; i < m.rows; i++ {
			scores[i] += m.data[i*m.cols+j]
		}
	}
	return scores
}

// Column returns a copy of column j.
func (m *Matrix) Column(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("lrtest: column %d out of range for %d columns", j, m.cols))
	}
	col := make([]float64, m.rows)
	for i := range col {
		col[i] = m.data[i*m.cols+j]
	}
	return col
}

// Equal reports whether two matrices are identical in shape and content.
// Identity is bitwise by contract: the wire codec round-trip guarantees
// (and tests assert) exact reproduction, not approximate equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		//gendpr:allow(floateq): bitwise identity is this method's documented contract
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Bytes serializes the matrix: rows, cols as 8-byte big-endian integers
// followed by IEEE-754 bit patterns in row order. This is the encrypted
// payload GDOs send to the leader in Phase 3.
func (m *Matrix) Bytes() []byte {
	buf := make([]byte, 16+len(m.data)*8)
	putUint64(buf[0:8], uint64(m.rows))
	putUint64(buf[8:16], uint64(m.cols))
	for i, v := range m.data {
		putUint64(buf[16+i*8:24+i*8], math.Float64bits(v))
	}
	return buf
}

// FromBytes reverses Matrix.Bytes.
func FromBytes(b []byte) (*Matrix, error) {
	if len(b) < 16 {
		return nil, errors.New("lrtest: matrix encoding too short")
	}
	rows := int(getUint64(b[0:8]))
	cols := int(getUint64(b[8:16]))
	if rows < 0 || cols < 0 || rows > 1<<30 || cols > 1<<30 {
		return nil, errors.New("lrtest: matrix encoding has implausible shape")
	}
	// Validate the payload length before allocating: a hostile header must
	// not drive a huge allocation.
	want := 16 + int64(rows)*int64(cols)*8
	if int64(len(b)) != want {
		return nil, fmt.Errorf("lrtest: matrix encoding has %d bytes, want %d", len(b), want)
	}
	m := NewMatrix(rows, cols)
	for i := range m.data {
		m.data[i] = math.Float64frombits(getUint64(b[16+i*8 : 24+i*8]))
	}
	return m, nil
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
