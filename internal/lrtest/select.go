package lrtest

import (
	"fmt"
	"math"
	"sort"

	"gendpr/internal/oblivious"
)

// Params configures the safety criterion: a SNP subset is safe to release
// when the LR-test's detection power over it stays below PowerThreshold at
// false-positive rate Alpha. The paper adopts SecureGenome's settings of
// α = 0.1 and β = 0.9.
type Params struct {
	// Alpha is the tolerated false-positive rate used to place the decision
	// threshold on the reference (null) LR distribution.
	Alpha float64
	// PowerThreshold is the maximum tolerated identification power over the
	// case population.
	PowerThreshold float64
	// Oblivious evaluates thresholds and powers with data-oblivious
	// primitives (bitonic sorting networks, branchless counting) so the
	// enclave's memory trace is independent of the scores — the
	// side-channel hardening the paper leaves as future work. The selected
	// subset is identical either way.
	Oblivious bool
}

// DefaultParams returns SecureGenome's suggested settings.
func DefaultParams() Params {
	return Params{Alpha: 0.1, PowerThreshold: 0.9}
}

// Validate checks the parameters are probabilities.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("lrtest: alpha %v outside (0,1)", p.Alpha)
	}
	if p.PowerThreshold <= 0 || p.PowerThreshold > 1 {
		return fmt.Errorf("lrtest: power threshold %v outside (0,1]", p.PowerThreshold)
	}
	return nil
}

// Threshold returns the decision threshold τ: the (1−α) quantile of the
// reference individuals' LR scores. An adversary declaring membership when
// LR > τ then has false-positive rate at most α. The quantile is found with
// an O(n) quickselect rather than a full sort; the k-th order statistic is
// the same value either way.
func Threshold(refScores []float64, alpha float64) float64 {
	if len(refScores) == 0 {
		return math.Inf(1)
	}
	scratch := make([]float64, len(refScores))
	copy(scratch, refScores)
	return kthSmallest(scratch, thresholdIndex(len(scratch), alpha))
}

// thresholdIndex returns the index of the (1−α) quantile in an ascending
// sort of n scores: the position so that the fraction of reference scores
// strictly above it is ≤ α.
func thresholdIndex(n int, alpha float64) int {
	idx := int(math.Ceil(float64(n)*(1-alpha))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Power returns the fraction of case scores strictly above the threshold —
// the adversary's detection power at the threshold's false-positive rate.
func Power(caseScores []float64, threshold float64) float64 {
	if len(caseScores) == 0 {
		return 0
	}
	hits := 0
	for _, s := range caseScores {
		if s > threshold {
			hits++
		}
	}
	return float64(hits) / float64(len(caseScores))
}

// Evaluate computes the detection power of the LR-test restricted to the
// given column subset of the case and reference LR-matrices.
func Evaluate(caseLR, refLR *Matrix, subset []int, alpha float64) (float64, error) {
	if caseLR.Cols() != refLR.Cols() {
		return 0, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	caseScores := caseLR.ScoreSubset(subset)
	refScores := refLR.ScoreSubset(subset)
	return Power(caseScores, Threshold(refScores, alpha)), nil
}

// detectionPower computes Power(case, Threshold(ref, alpha)) either directly
// or with data-oblivious primitives; both paths return identical values.
func detectionPower(caseScores, refScores []float64, params Params) float64 {
	if !params.Oblivious {
		return Power(caseScores, Threshold(refScores, params.Alpha))
	}
	tau := oblivious.Quantile(refScores, 1-params.Alpha)
	if len(caseScores) == 0 {
		return 0
	}
	return float64(oblivious.CountGreater(caseScores, tau)) / float64(len(caseScores))
}

// Result reports the outcome of a safe-subset search.
type Result struct {
	// Safe lists the selected column indices (ascending).
	Safe []int
	// Power is the detection power over the selected subset.
	Power float64
	// Iterations counts the candidate evaluations performed.
	Iterations int
}

// SelectSafe performs the empirical safe-subset search of SecureGenome: SNPs
// are ranked by discriminability (how much their average contribution
// separates case from reference individuals) and admitted greedily, least
// identifying first; a candidate whose admission pushes detection power to
// PowerThreshold or above is rejected. The search is deterministic, so a
// centralized evaluation and a distributed evaluation over the merged
// federation matrices return the same subset.
func SelectSafe(caseLR, refLR *Matrix, params Params) (Result, error) {
	if caseLR.Cols() != refLR.Cols() {
		return Result{}, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	return SelectSafeWithOrder(caseLR, refLR, params, DiscriminabilityOrder(caseLR, refLR))
}

// SelectSafeWithOrder runs the greedy admission over a caller-supplied
// column order. Collusion-tolerant GenDPR evaluates every honest-subset
// combination with the canonical order derived from the full federation, so
// the per-combination selections differ only where a combination's data
// genuinely fails the power test — not because frequency noise reshuffled
// thousands of near-tied columns.
func SelectSafeWithOrder(caseLR, refLR *Matrix, params Params, order []int) (Result, error) {
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	if caseLR.Cols() != refLR.Cols() {
		return Result{}, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	cols := caseLR.Cols()
	if cols == 0 {
		return Result{Safe: []int{}}, nil
	}
	if err := validateOrder(order, cols); err != nil {
		return Result{}, err
	}

	caseScores := make([]float64, caseLR.Rows())
	refScores := make([]float64, refLR.Rows())
	candCase := make([]float64, caseLR.Rows())
	candRef := make([]float64, refLR.Rows())

	res := Result{Safe: make([]int, 0, cols)}
	for _, j := range order {
		addColumn(candCase, caseScores, caseLR, j)
		addColumn(candRef, refScores, refLR, j)
		power := detectionPower(candCase, candRef, params)
		res.Iterations++
		if power < params.PowerThreshold {
			copy(caseScores, candCase)
			copy(refScores, candRef)
			res.Safe = append(res.Safe, j)
			res.Power = power
		}
	}
	sort.Ints(res.Safe)
	return res, nil
}

// addColumn writes base + matrix column j into dst.
func addColumn(dst, base []float64, m *Matrix, j int) {
	for i := range dst {
		dst[i] = base[i] + m.data[i*m.cols+j]
	}
}

// validateOrder checks that order is a permutation of [0, cols).
func validateOrder(order []int, cols int) error {
	if len(order) != cols {
		return fmt.Errorf("lrtest: order has %d entries for %d columns", len(order), cols)
	}
	seen := make([]bool, cols)
	for _, j := range order {
		if j < 0 || j >= cols || seen[j] {
			return fmt.Errorf("lrtest: order is not a permutation of the columns")
		}
		seen[j] = true
	}
	return nil
}

// DiscriminabilityOrder ranks columns by |mean case contribution − mean
// reference contribution| ascending, tie-broken by index, so the least
// identifying SNPs are considered first.
func DiscriminabilityOrder(caseLR, refLR *Matrix) []int {
	cols := caseLR.Cols()
	type ranked struct {
		j int
		d float64
	}
	rs := make([]ranked, cols)
	for j := 0; j < cols; j++ {
		rs[j] = ranked{j: j, d: math.Abs(columnMean(caseLR, j) - columnMean(refLR, j))}
	}
	sort.Slice(rs, func(a, b int) bool {
		// Exact inequality keeps the comparator a strict weak order; a
		// tolerance here would make "equal" intransitive and the ordering
		// (hence the admission order every combination shares) unstable.
		//gendpr:allow(floateq): sort tie-break needs exact comparison for a consistent total order
		if rs[a].d != rs[b].d {
			return rs[a].d < rs[b].d
		}
		return rs[a].j < rs[b].j
	})
	order := make([]int, cols)
	for i, r := range rs {
		order[i] = r.j
	}
	return order
}

func columnMean(m *Matrix, j int) float64 {
	if m.rows == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < m.rows; i++ {
		sum += m.data[i*m.cols+j]
	}
	return sum / float64(m.rows)
}
