package lrtest

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gendpr/internal/genome"
)

func buildCohort(t testing.TB, snps, caseN int, seed int64) (*genome.Cohort, []float64, []float64) {
	t.Helper()
	cfg := genome.DefaultGeneratorConfig(snps, caseN, seed)
	cohort, err := genome.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	caseFreq := genome.Frequencies(cohort.Case.AlleleCounts(), int64(cohort.Case.N()))
	refFreq := genome.Frequencies(cohort.Reference.AlleleCounts(), int64(cohort.Reference.N()))
	return cohort, caseFreq, refFreq
}

func TestNewLogRatiosShapes(t *testing.T) {
	if _, err := NewLogRatios([]float64{0.1}, []float64{0.1, 0.2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	lr, err := NewLogRatios([]float64{0.2}, []float64{0.1})
	if err != nil {
		t.Fatalf("NewLogRatios: %v", err)
	}
	if !almostEqual(lr.Minor[0], math.Log(2), 1e-12) {
		t.Errorf("minor ratio %v, want log 2", lr.Minor[0])
	}
	if !almostEqual(lr.Major[0], math.Log(0.8/0.9), 1e-12) {
		t.Errorf("major ratio %v, want log(0.8/0.9)", lr.Major[0])
	}
}

func TestNewLogRatiosClampsExtremes(t *testing.T) {
	lr, err := NewLogRatios([]float64{0, 1}, []float64{1, 0})
	if err != nil {
		t.Fatalf("NewLogRatios: %v", err)
	}
	for _, v := range append(append([]float64{}, lr.Minor...), lr.Major...) {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("clamping failed: got %v", v)
		}
	}
}

func TestBuildMatchesEquationOne(t *testing.T) {
	g := genome.NewMatrix(2, 3)
	g.Set(0, 0, true)
	g.Set(1, 2, true)
	caseFreq := []float64{0.4, 0.2, 0.3}
	refFreq := []float64{0.2, 0.2, 0.5}
	ratios, err := NewLogRatios(caseFreq, refFreq)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(g, ratios)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	// Individual 0, SNP 0 carries the minor allele.
	if want := math.Log(0.4 / 0.2); !almostEqual(m.At(0, 0), want, 1e-12) {
		t.Errorf("minor cell %v, want %v", m.At(0, 0), want)
	}
	// Individual 0, SNP 2 carries the major allele.
	if want := math.Log(0.7 / 0.5); !almostEqual(m.At(0, 2), want, 1e-12) {
		t.Errorf("major cell %v, want %v", m.At(0, 2), want)
	}
	// Identical frequencies contribute exactly zero.
	if m.At(0, 1) != 0 || m.At(1, 1) != 0 {
		t.Errorf("equal-frequency SNP must contribute 0: %v, %v", m.At(0, 1), m.At(1, 1))
	}
}

func TestBuildShapeMismatch(t *testing.T) {
	g := genome.NewMatrix(1, 2)
	ratios, _ := NewLogRatios([]float64{0.1}, []float64{0.1})
	if _, err := Build(g, ratios); err == nil {
		t.Fatal("expected shape mismatch")
	}
}

func TestMergeConcatenatesRows(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(1, 3)
	a.Set(0, 0, 1)
	a.Set(1, 2, 2)
	b.Set(0, 1, 3)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 2 || m.At(2, 1) != 3 {
		t.Error("merged content wrong")
	}
	if _, err := Merge(a, NewMatrix(1, 4)); err == nil {
		t.Error("column mismatch must fail")
	}
	empty, err := Merge()
	if err != nil || empty.Rows() != 0 {
		t.Errorf("empty merge: %v, %v", empty, err)
	}
}

func TestScoreSubset(t *testing.T) {
	m := NewMatrix(2, 4)
	for j := 0; j < 4; j++ {
		m.Set(0, j, float64(j))
		m.Set(1, j, float64(j)*10)
	}
	scores := m.ScoreSubset([]int{1, 3})
	if scores[0] != 4 || scores[1] != 40 {
		t.Errorf("scores %v, want [4 40]", scores)
	}
	if s := m.ScoreSubset(nil); s[0] != 0 || s[1] != 0 {
		t.Errorf("empty subset scores %v", s)
	}
}

func TestThresholdQuantile(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tau := Threshold(scores, 0.1)
	// At α=0.1 exactly one of ten reference scores may exceed τ.
	above := 0
	for _, s := range scores {
		if s > tau {
			above++
		}
	}
	if above > 1 {
		t.Errorf("τ=%v lets %d/10 reference scores through, want <=1", tau, above)
	}
	if got := Threshold(nil, 0.1); !math.IsInf(got, 1) {
		t.Errorf("empty reference: τ=%v, want +Inf", got)
	}
}

func TestThresholdFalsePositiveRateBound(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.05, 0.1, 0.25} {
		for _, n := range []int{10, 97, 1000} {
			scores := make([]float64, n)
			for i := range scores {
				scores[i] = float64(i * i % 977)
			}
			tau := Threshold(scores, alpha)
			fpr := Power(scores, tau) // reuse Power as "fraction above"
			if fpr > alpha+1e-12 {
				t.Errorf("alpha=%v n=%d: realized FPR %v exceeds alpha", alpha, n, fpr)
			}
		}
	}
}

func TestPower(t *testing.T) {
	if p := Power([]float64{1, 2, 3, 4}, 2.5); p != 0.5 {
		t.Errorf("power %v, want 0.5", p)
	}
	if p := Power(nil, 0); p != 0 {
		t.Errorf("empty case power %v, want 0", p)
	}
}

func TestSelectSafeBoundsPower(t *testing.T) {
	cohort, caseFreq, refFreq := buildCohort(t, 120, 400, 5)
	ratios, err := NewLogRatios(caseFreq, refFreq)
	if err != nil {
		t.Fatal(err)
	}
	caseLR, err := Build(cohort.Case, ratios)
	if err != nil {
		t.Fatal(err)
	}
	refLR, err := Build(cohort.Reference, ratios)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	res, err := SelectSafe(caseLR, refLR, params)
	if err != nil {
		t.Fatalf("SelectSafe: %v", err)
	}
	if res.Power >= params.PowerThreshold {
		t.Errorf("selected subset has power %v >= threshold %v", res.Power, params.PowerThreshold)
	}
	if res.Iterations != 120 {
		t.Errorf("iterations %d, want one per column", res.Iterations)
	}
	if !sort.IntsAreSorted(res.Safe) {
		t.Error("safe subset must be sorted")
	}
	// Re-evaluating the returned subset must reproduce the reported power.
	p, err := Evaluate(caseLR, refLR, res.Safe, params.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Safe) > 0 && !almostEqual(p, res.Power, 1e-12) {
		t.Errorf("re-evaluated power %v != reported %v", p, res.Power)
	}
}

func TestSelectSafeDeterministic(t *testing.T) {
	cohort, caseFreq, refFreq := buildCohort(t, 80, 300, 9)
	ratios, _ := NewLogRatios(caseFreq, refFreq)
	caseLR, _ := Build(cohort.Case, ratios)
	refLR, _ := Build(cohort.Reference, ratios)
	a, err := SelectSafe(caseLR, refLR, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectSafe(caseLR, refLR, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Safe) != len(b.Safe) {
		t.Fatal("non-deterministic selection size")
	}
	for i := range a.Safe {
		if a.Safe[i] != b.Safe[i] {
			t.Fatal("non-deterministic selection content")
		}
	}
}

func TestSelectSafeMergedEqualsPooled(t *testing.T) {
	// The distributed-exactness property: building LR matrices per shard
	// with pooled frequencies and merging equals building over the pooled
	// matrix directly.
	cohort, caseFreq, refFreq := buildCohort(t, 60, 240, 11)
	ratios, _ := NewLogRatios(caseFreq, refFreq)
	pooled, err := Build(cohort.Case, ratios)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*Matrix, len(shards))
	for i, s := range shards {
		parts[i], err = Build(s, ratios)
		if err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Equal(pooled) {
		t.Fatal("merged shard LR-matrices differ from pooled LR-matrix")
	}
}

func TestSelectSafeObliviousMatchesDirect(t *testing.T) {
	cohort, caseFreq, refFreq := buildCohort(t, 90, 350, 29)
	ratios, _ := NewLogRatios(caseFreq, refFreq)
	caseLR, _ := Build(cohort.Case, ratios)
	refLR, _ := Build(cohort.Reference, ratios)

	direct, err := SelectSafe(caseLR, refLR, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Oblivious = true
	obliv, err := SelectSafe(caseLR, refLR, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Safe) != len(obliv.Safe) {
		t.Fatalf("oblivious selected %d SNPs, direct %d", len(obliv.Safe), len(direct.Safe))
	}
	for i := range direct.Safe {
		if direct.Safe[i] != obliv.Safe[i] {
			t.Fatalf("selection differs at %d: %d vs %d", i, direct.Safe[i], obliv.Safe[i])
		}
	}
	if direct.Power != obliv.Power {
		t.Errorf("powers differ: %v vs %v", direct.Power, obliv.Power)
	}
}

func TestSelectSafeParamsValidation(t *testing.T) {
	m := NewMatrix(1, 1)
	if _, err := SelectSafe(m, m, Params{Alpha: 0, PowerThreshold: 0.9}); err == nil {
		t.Error("alpha=0 must fail")
	}
	if _, err := SelectSafe(m, m, Params{Alpha: 0.1, PowerThreshold: 1.5}); err == nil {
		t.Error("power>1 must fail")
	}
	if _, err := SelectSafe(NewMatrix(1, 2), NewMatrix(1, 3), DefaultParams()); err == nil {
		t.Error("column mismatch must fail")
	}
}

func TestSelectSafeEmptyMatrix(t *testing.T) {
	res, err := SelectSafe(NewMatrix(0, 0), NewMatrix(0, 0), DefaultParams())
	if err != nil {
		t.Fatalf("SelectSafe empty: %v", err)
	}
	if len(res.Safe) != 0 {
		t.Errorf("empty matrix selected %v", res.Safe)
	}
}

func TestMatrixBytesRoundTrip(t *testing.T) {
	m := NewMatrix(3, 5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, float64(i)*1.5-float64(j)/3)
		}
	}
	got, err := FromBytes(m.Bytes())
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip lost data")
	}
	if _, err := FromBytes([]byte{1}); err == nil {
		t.Error("short encoding must fail")
	}
}

func TestQuickMatrixRoundTrip(t *testing.T) {
	f := func(vals []float64, rawCols uint8) bool {
		cols := int(rawCols%7) + 1
		rows := len(vals) / cols
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				v := vals[i*cols+j]
				if math.IsNaN(v) {
					v = 0
				}
				m.Set(i, j, v)
			}
		}
		back, err := FromBytes(m.Bytes())
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdversaryPowerBoundedOnSafeRelease(t *testing.T) {
	cohort, caseFreq, refFreq := buildCohort(t, 100, 500, 21)
	ratios, _ := NewLogRatios(caseFreq, refFreq)
	caseLR, _ := Build(cohort.Case, ratios)
	refLR, _ := Build(cohort.Reference, ratios)
	params := DefaultParams()
	res, err := SelectSafe(caseLR, refLR, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Safe) == 0 {
		t.Skip("no safe SNPs selected for this seed; nothing to attack")
	}

	releasedCase := subsetFloats(caseFreq, res.Safe)
	releasedRef := subsetFloats(refFreq, res.Safe)
	refSubset := cohort.Reference.SelectColumns(res.Safe)
	adv, err := NewAdversary(releasedCase, releasedRef, refSubset, params.Alpha)
	if err != nil {
		t.Fatalf("NewAdversary: %v", err)
	}
	power, err := adv.DetectionPower(cohort.Case.SelectColumns(res.Safe))
	if err != nil {
		t.Fatal(err)
	}
	if power >= params.PowerThreshold {
		t.Errorf("attack power %v over safe release >= %v", power, params.PowerThreshold)
	}
}

func TestAdversaryRejectsShapeMismatch(t *testing.T) {
	adv, err := NewAdversary([]float64{0.3, 0.4}, []float64{0.2, 0.2}, genome.NewMatrix(4, 2), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Score([]bool{true}); err == nil {
		t.Error("short victim must fail")
	}
	if _, err := adv.DetectionPower(genome.NewMatrix(2, 3)); err == nil {
		t.Error("cohort shape mismatch must fail")
	}
	if p, err := adv.DetectionPower(genome.NewMatrix(0, 2)); err != nil || p != 0 {
		t.Errorf("empty cohort power=%v err=%v", p, err)
	}
}

func subsetFloats(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
