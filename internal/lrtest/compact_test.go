package lrtest

import (
	"errors"
	"testing"

	"gendpr/internal/genome"
)

func builtMatrix(t *testing.T, rows, cols int, seed int64) *Matrix {
	t.Helper()
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(cols, rows, seed))
	if err != nil {
		t.Fatal(err)
	}
	caseFreq := genome.Frequencies(cohort.Case.AlleleCounts(), int64(cohort.Case.N()))
	refFreq := genome.Frequencies(cohort.Reference.AlleleCounts(), int64(cohort.Reference.N()))
	ratios, err := NewLogRatios(caseFreq, refFreq)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(cohort.Case, ratios)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompactRoundTripExact(t *testing.T) {
	m := builtMatrix(t, 60, 45, 13)
	compact, err := m.CompactBytes()
	if err != nil {
		t.Fatalf("CompactBytes: %v", err)
	}
	back, err := DecodeWire(append([]byte{wireCompact}, compact[1:]...))
	if err != nil {
		t.Fatalf("DecodeWire: %v", err)
	}
	if !back.Equal(m) {
		t.Fatal("compact round trip is not bit-exact")
	}
}

func TestCompactMuchSmallerThanDense(t *testing.T) {
	m := builtMatrix(t, 200, 100, 17)
	compact, err := m.CompactBytes()
	if err != nil {
		t.Fatal(err)
	}
	dense := m.Bytes()
	if len(compact)*10 > len(dense) {
		t.Errorf("compact %d bytes vs dense %d: expected >10x reduction", len(compact), len(dense))
	}
}

func TestEncodeWirePrefersCompact(t *testing.T) {
	m := builtMatrix(t, 20, 10, 19)
	wire := EncodeWire(m)
	if wire[0] != wireCompact {
		t.Fatalf("wire tag %d, want compact", wire[0])
	}
	back, err := DecodeWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("wire round trip lost data")
	}
}

func TestEncodeWireFallsBackToDense(t *testing.T) {
	// Three distinct values in one column cannot compact.
	m := NewMatrix(3, 1)
	m.Set(0, 0, 1)
	m.Set(1, 0, 2)
	m.Set(2, 0, 3)
	if _, err := m.CompactBytes(); !errors.Is(err, ErrNotCompactable) {
		t.Fatalf("CompactBytes: %v, want ErrNotCompactable", err)
	}
	wire := EncodeWire(m)
	if wire[0] != wireDense {
		t.Fatalf("wire tag %d, want dense", wire[0])
	}
	back, err := DecodeWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("dense fallback lost data")
	}
}

func TestCompactEdgeShapes(t *testing.T) {
	for _, shape := range [][2]int{{0, 0}, {1, 1}, {5, 0}, {0, 5}} {
		m := NewMatrix(shape[0], shape[1])
		wire := EncodeWire(m)
		back, err := DecodeWire(wire)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if !back.Equal(m) {
			t.Fatalf("shape %v round trip failed", shape)
		}
	}
}

func TestCompactConstantColumn(t *testing.T) {
	// A column with a single distinct value (e.g. clamped frequencies).
	m := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		m.Set(i, 0, 2.5)
		m.Set(i, 1, float64(i%2))
	}
	wire := EncodeWire(m)
	back, err := DecodeWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("constant-column round trip failed")
	}
}

func TestDecodeWireRejectsGarbage(t *testing.T) {
	if _, err := DecodeWire(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeWire([]byte{99, 1, 2}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := DecodeWire([]byte{wireCompact, 1, 2}); err == nil {
		t.Error("short compact body accepted")
	}
	m := builtMatrix(t, 10, 5, 23)
	wire := EncodeWire(m)
	if _, err := DecodeWire(wire[:len(wire)-1]); err == nil {
		t.Error("truncated compact body accepted")
	}
}
