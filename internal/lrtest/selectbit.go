package lrtest

import (
	"fmt"
	"math"
	"sort"

	"gendpr/internal/oblivious"
)

// powerEval computes detection powers across the greedy admission loop while
// reusing its scratch buffers: the seed implementation allocated and fully
// sorted a fresh copy of the reference scores for every candidate, turning
// the search into O(L·N log N) with 2L allocations; this evaluator is
// O(L·N) with none. On the bit-matrix path only oblivious mode still routes
// through it — direct mode uses the sorted-base selection in
// selectSafeBitOrdered — but the quickselect branch is kept as the generic
// fallback.
type powerEval struct {
	params  Params
	scratch []float64       // quickselect working copy of the reference scores
	topk    *oblivious.TopK // oblivious-mode streaming quantile filter
	kth     int             // oblivious-mode rank: the k-th largest is τ
}

// newPowerEval sizes the evaluator for reference score vectors of length n.
func newPowerEval(params Params, n int) *powerEval {
	e := &powerEval{params: params}
	if params.Oblivious {
		if n > 0 {
			// The (1−α) quantile at ascending index idx is the (n−idx)-th
			// largest score.
			e.kth = n - thresholdIndex(n, params.Alpha)
			e.topk = oblivious.NewTopK(e.kth)
		}
		return e
	}
	e.scratch = make([]float64, n)
	return e
}

// power returns Power(case, Threshold(ref, α)), bit-identical to the
// sort-based detectionPower on both the direct and the oblivious path: the
// quickselect and the streaming top-k filter both return the exact k-th
// order statistic the full sorts returned.
func (e *powerEval) power(caseScores, refScores []float64) float64 {
	if len(caseScores) == 0 {
		return 0
	}
	var tau float64
	switch {
	case len(refScores) == 0:
		tau = math.Inf(1)
	case e.params.Oblivious:
		e.topk.Reset()
		e.topk.Push(refScores)
		tau = e.topk.KthLargest(e.kth)
	default:
		copy(e.scratch, refScores)
		tau = kthSmallest(e.scratch, thresholdIndex(len(e.scratch), e.params.Alpha))
	}
	if e.params.Oblivious {
		return float64(oblivious.CountGreater(caseScores, tau)) / float64(len(caseScores))
	}
	return Power(caseScores, tau)
}

// SelectSafeBit performs the safe-subset search of SelectSafe over
// bit-packed LR-matrices, returning an identical Result without ever
// materializing the dense form.
func SelectSafeBit(caseLR, refLR *BitMatrix, params Params) (Result, error) {
	if caseLR.Cols() != refLR.Cols() {
		return Result{}, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	return SelectSafeBitWithOrder(caseLR, refLR, params, DiscriminabilityOrderBit(caseLR, refLR))
}

// SelectSafeBitWithOrder runs the greedy admission of SelectSafeWithOrder
// over bit-packed LR-matrices. Candidate scores accumulate columns in the
// same sequential row order as the dense kernel, so every power — and hence
// the selected subset — is bit-for-bit identical.
func SelectSafeBitWithOrder(caseLR, refLR *BitMatrix, params Params, order []int) (Result, error) {
	return new(Selector).SelectSafeBitWithOrder(caseLR, refLR, params, order)
}

// Selector runs the greedy admission search while reusing its scratch
// buffers — score vectors, candidate vectors and the threshold machinery —
// across calls. The collusion driver evaluates hundreds of combinations back
// to back over same-shaped matrices; per-call allocation of the row-sized
// slices was a measurable slice of the Phase 3 profile. A Selector is not
// safe for concurrent use; the sharded driver keeps one per evaluation
// chain. Results are bit-identical to the allocate-per-call path: buffers
// are (re)sized and the accumulated score prefixes zeroed on entry, and the
// threshold is the exact k-th order statistic either way.
type Selector struct {
	caseScores, refScores []float64
	candCase, candRef     []float64
	ord                   *refOrder
	eval                  *powerEval
	evalRows              int
	evalParams            Params
}

// NewSelector returns an empty Selector; buffers grow on first use.
func NewSelector() *Selector { return new(Selector) }

// sized returns buf resized to n, reusing capacity.
func sized(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// powerEval returns the cached threshold evaluator, rebuilding it when the
// reference height or the parameters changed since the last call.
func (s *Selector) powerEval(params Params, refRows int) *powerEval {
	if s.eval == nil || s.evalRows != refRows || !paramsIdentical(s.evalParams, params) {
		s.eval = newPowerEval(params, refRows)
		s.evalRows = refRows
		s.evalParams = params
	}
	return s.eval
}

// paramsIdentical compares parameters by representation: any difference
// invalidates the cached evaluator's quantile rank and scratch sizing.
func paramsIdentical(a, b Params) bool {
	return math.Float64bits(a.Alpha) == math.Float64bits(b.Alpha) &&
		math.Float64bits(a.PowerThreshold) == math.Float64bits(b.PowerThreshold) &&
		a.Oblivious == b.Oblivious
}

// SelectSafeBitWithOrder is the package-level function over this Selector's
// reusable scratch.
func (s *Selector) SelectSafeBitWithOrder(caseLR, refLR *BitMatrix, params Params, order []int) (Result, error) {
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	if caseLR.Cols() != refLR.Cols() {
		return Result{}, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	cols := caseLR.Cols()
	if cols == 0 {
		return Result{Safe: []int{}}, nil
	}
	if err := validateOrder(order, cols); err != nil {
		return Result{}, err
	}
	if !params.Oblivious {
		return s.selectSafeBitOrdered(caseLR, refLR, params, order), nil
	}

	caseScores := sized(s.caseScores, caseLR.Rows())
	refScores := sized(s.refScores, refLR.Rows())
	candCase := sized(s.candCase, caseLR.Rows())
	candRef := sized(s.candRef, refLR.Rows())
	// The accumulated bases start at zero; the candidate buffers are fully
	// overwritten by addColumn before being read.
	clear(caseScores)
	clear(refScores)
	eval := s.powerEval(params, refLR.Rows())

	res := Result{Safe: make([]int, 0, cols)}
	for _, j := range order {
		caseLR.addColumn(candCase, caseScores, j)
		refLR.addColumn(candRef, refScores, j)
		power := eval.power(candCase, candRef)
		res.Iterations++
		if power < params.PowerThreshold {
			caseScores, candCase = candCase, caseScores
			refScores, candRef = candRef, refScores
			res.Safe = append(res.Safe, j)
			res.Power = power
		}
	}
	s.caseScores, s.candCase = caseScores, candCase
	s.refScores, s.candRef = refScores, candRef
	sort.Ints(res.Safe)
	return res, nil
}

// selectSafeBitOrdered is the direct-mode admission loop. Instead of
// re-deriving every candidate threshold by quickselect over a fresh copy of
// the reference scores — the dominant cost of Phase 3 under collusion — it
// keeps the accumulated reference scores sorted: a candidate column shifts
// each score by one of just two representatives, so the candidate's score
// multiset is the disjoint union of two value-shifted sorted runs and its
// exact (1−α)-quantile comes from a two-sorted-runs order-statistic search.
// Admitting a candidate is a buffer swap. The case side keeps the dense
// branchless accumulate-and-count kernels — its per-candidate work is two
// stride-1 passes either way, and those kernels vectorize where the sorted
// machinery's data-dependent branches do not.
//
// The result is bit-identical to the quickselect path: every row's score is
// produced by the same sequence of float additions (base plus one
// representative per admitted column, in admission order), and the k-th
// order statistic of a multiset is a single well-defined value no matter
// how it is found. The oblivious path keeps the streaming top-k filter —
// this loop's comparisons branch on score values, which oblivious mode
// forbids.
func (s *Selector) selectSafeBitOrdered(caseLR, refLR *BitMatrix, params Params, order []int) Result {
	caseScores := sized(s.caseScores, caseLR.Rows())
	candCase := sized(s.candCase, caseLR.Rows())
	clear(caseScores)
	refN := refLR.Rows()
	var k int
	var refOrd *refOrder
	if refN > 0 {
		k = thresholdIndex(refN, params.Alpha)
		if s.ord == nil {
			s.ord = new(refOrder)
		}
		refOrd = s.ord
		refOrd.reset(refN)
	}

	res := Result{Safe: make([]int, 0, caseLR.Cols())}
	for _, j := range order {
		tau := math.Inf(1)
		if refN > 0 {
			refOrd.split(refLR, j)
			tau = refOrd.kth(k)
		}
		hits := caseLR.addColumnCount(candCase, caseScores, j, tau)
		var power float64
		if len(candCase) > 0 {
			power = float64(hits) / float64(len(candCase))
		}
		res.Iterations++
		if power < params.PowerThreshold {
			caseScores, candCase = candCase, caseScores
			if refN > 0 {
				refOrd.admit()
			}
			res.Safe = append(res.Safe, j)
			res.Power = power
		}
	}
	s.caseScores, s.candCase = caseScores, candCase
	sort.Ints(res.Safe)
	return res
}

// refOrder is the sorted view of the admission loop's accumulated reference
// scores, held as two ascending runs (valsA/rowsA and valsB/rowsB) whose
// merge — ties resolved A-first — is the sorted score vector. split
// merge-walks the runs while repartitioning by the candidate column's bits,
// emitting each position's candidate score (the same base-plus-
// representative addition the dense kernel performs for that row) into the
// candidate run for its bit. The runs never need materializing into one
// array: kth binary-searches the two candidate runs directly, and admitting
// a candidate is a buffer swap — the candidate runs simply become the
// state. Everything is contiguous, nothing is re-sorted.
type refOrder struct {
	valsA, valsB         []float64 // accumulated scores, two ascending runs
	rowsA, rowsB         []int32   // original row of each run position
	nA, nB               int
	candValsA, candValsB []float64 // candidate runs from the last split
	candRowsA, candRowsB []int32
	candNA, candNB       int
}

// reset prepares the state for n accumulated-zero scores: one run holding
// all rows in identity order (ties never matter — only the value multiset
// does), the other empty.
func (o *refOrder) reset(n int) {
	o.valsA = sized(o.valsA, n)
	clear(o.valsA)
	o.rowsA = sizedInt32(o.rowsA, n)
	for t := range o.rowsA {
		o.rowsA[t] = int32(t)
	}
	o.valsB = sized(o.valsB, n)
	o.rowsB = sizedInt32(o.rowsB, n)
	o.nA, o.nB = n, 0
	o.candValsA = sized(o.candValsA, n)
	o.candValsB = sized(o.candValsB, n)
	o.candRowsA = sizedInt32(o.candRowsA, n)
	o.candRowsB = sizedInt32(o.candRowsB, n)
	o.candNA, o.candNB = 0, 0
}

func sizedInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// split walks the state runs in merged (ascending) order and partitions the
// positions by column j's cell bit into the candidate runs, each value
// shifted by its bit's representative. Both candidate runs inherit the
// walk's ascending order.
func (o *refOrder) split(m *BitMatrix, j int) {
	w := m.bits[j*m.wpc : (j+1)*m.wpc]
	z, one := m.zero[j], m.one[j]
	a, b := o.valsA[:o.nA], o.valsB[:o.nB]
	ra, rb := o.rowsA[:o.nA], o.rowsB[:o.nB]
	cvA, cvB := o.candValsA, o.candValsB
	crA, crB := o.candRowsA, o.candRowsB
	ca, cb := 0, 0
	emit := func(v float64, r int32) {
		if (w[uint32(r)>>6]>>(uint32(r)&63))&1 == 0 {
			cvA[ca], crA[ca] = v+z, r
			ca++
		} else {
			cvB[cb], crB[cb] = v+one, r
			cb++
		}
	}
	ia, ib := 0, 0
	for ia < len(a) && ib < len(b) {
		if a[ia] <= b[ib] {
			emit(a[ia], ra[ia])
			ia++
		} else {
			emit(b[ib], rb[ib])
			ib++
		}
	}
	for ; ia < len(a); ia++ {
		emit(a[ia], ra[ia])
	}
	for ; ib < len(b); ib++ {
		emit(b[ib], rb[ib])
	}
	o.candNA, o.candNB = ca, cb
}

// kth returns the k-th smallest (0-indexed) of the candidate score multiset
// candValsA ∪ candValsB: both runs ascend, so a binary search over how many
// elements the first run contributes finds the exact order statistic
// without materializing the merge.
func (o *refOrder) kth(k int) float64 {
	a, b := o.candValsA[:o.candNA], o.candValsB[:o.candNB]
	aV := func(i int) float64 {
		switch {
		case i < 0:
			return math.Inf(-1)
		case i >= len(a):
			return math.Inf(1)
		}
		return a[i]
	}
	bV := func(i int) float64 {
		switch {
		case i < 0:
			return math.Inf(-1)
		case i >= len(b):
			return math.Inf(1)
		}
		return b[i]
	}
	// i elements come from a and k+1−i from b; find the largest feasible i.
	// The lower bound is always feasible (its boundary value is a −∞/+∞
	// sentinel), and at the largest feasible i the complementary boundary
	// condition holds by maximality, so the partition is exact.
	lo, hi := k+1-len(b), len(a)
	if lo < 0 {
		lo = 0
	}
	if hi > k+1 {
		hi = k + 1
	}
	for lo < hi {
		i := int(uint(lo+hi+1) >> 1)
		if aV(i-1) <= bV(k+1-i) {
			lo = i
		} else {
			hi = i - 1
		}
	}
	return math.Max(aV(lo-1), bV(k-lo))
}

// admit makes the candidate runs from the last split the accumulated state:
// a four-way buffer swap, no data movement.
func (o *refOrder) admit() {
	o.valsA, o.candValsA = o.candValsA, o.valsA
	o.valsB, o.candValsB = o.candValsB, o.valsB
	o.rowsA, o.candRowsA = o.candRowsA, o.rowsA
	o.rowsB, o.candRowsB = o.candRowsB, o.rowsB
	o.nA, o.nB = o.candNA, o.candNB
}

// DiscriminabilityOrderBit ranks columns exactly as DiscriminabilityOrder
// does, computing the column means from the packed form with the same
// sequential row-order accumulation.
func DiscriminabilityOrderBit(caseLR, refLR *BitMatrix) []int {
	cols := caseLR.Cols()
	type ranked struct {
		j int
		d float64
	}
	rs := make([]ranked, cols)
	for j := 0; j < cols; j++ {
		rs[j] = ranked{j: j, d: math.Abs(columnMeanBit(caseLR, j) - columnMeanBit(refLR, j))}
	}
	sort.Slice(rs, func(a, b int) bool {
		// Exact inequality keeps the comparator a strict weak order; see
		// DiscriminabilityOrder.
		//gendpr:allow(floateq): sort tie-break needs exact comparison for a consistent total order
		if rs[a].d != rs[b].d {
			return rs[a].d < rs[b].d
		}
		return rs[a].j < rs[b].j
	})
	order := make([]int, cols)
	for i, r := range rs {
		order[i] = r.j
	}
	return order
}

func columnMeanBit(m *BitMatrix, j int) float64 {
	if m.rows == 0 {
		return 0
	}
	v := [2]float64{m.zero[j], m.one[j]}
	w := m.bits[j*m.wpc : (j+1)*m.wpc]
	var sum float64
	for i := 0; i < m.rows; i++ {
		sum += v[(w[i>>6]>>(uint(i)&63))&1]
	}
	return sum / float64(m.rows)
}

// EvaluateBit computes the detection power of the LR-test restricted to the
// given column subset of bit-packed case and reference LR-matrices — the
// bit-kernel twin of Evaluate.
func EvaluateBit(caseLR, refLR *BitMatrix, subset []int, alpha float64) (float64, error) {
	if caseLR.Cols() != refLR.Cols() {
		return 0, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	caseScores := caseLR.ScoreSubset(subset)
	refScores := refLR.ScoreSubset(subset)
	return Power(caseScores, Threshold(refScores, alpha)), nil
}
