package lrtest

import (
	"fmt"
	"math"
	"sort"

	"gendpr/internal/oblivious"
)

// powerEval computes detection powers across the greedy admission loop while
// reusing its scratch buffers: the seed implementation allocated and fully
// sorted a fresh copy of the reference scores for every candidate, turning
// the search into O(L·N log N) with 2L allocations; this evaluator is
// O(L·N) with none.
type powerEval struct {
	params  Params
	scratch []float64       // quickselect working copy of the reference scores
	topk    *oblivious.TopK // oblivious-mode streaming quantile filter
	kth     int             // oblivious-mode rank: the k-th largest is τ
}

// newPowerEval sizes the evaluator for reference score vectors of length n.
func newPowerEval(params Params, n int) *powerEval {
	e := &powerEval{params: params}
	if params.Oblivious {
		if n > 0 {
			// The (1−α) quantile at ascending index idx is the (n−idx)-th
			// largest score.
			e.kth = n - thresholdIndex(n, params.Alpha)
			e.topk = oblivious.NewTopK(e.kth)
		}
		return e
	}
	e.scratch = make([]float64, n)
	return e
}

// power returns Power(case, Threshold(ref, α)), bit-identical to the
// sort-based detectionPower on both the direct and the oblivious path: the
// quickselect and the streaming top-k filter both return the exact k-th
// order statistic the full sorts returned.
func (e *powerEval) power(caseScores, refScores []float64) float64 {
	if len(caseScores) == 0 {
		return 0
	}
	var tau float64
	switch {
	case len(refScores) == 0:
		tau = math.Inf(1)
	case e.params.Oblivious:
		e.topk.Reset()
		e.topk.Push(refScores)
		tau = e.topk.KthLargest(e.kth)
	default:
		copy(e.scratch, refScores)
		tau = kthSmallest(e.scratch, thresholdIndex(len(e.scratch), e.params.Alpha))
	}
	if e.params.Oblivious {
		return float64(oblivious.CountGreater(caseScores, tau)) / float64(len(caseScores))
	}
	return Power(caseScores, tau)
}

// SelectSafeBit performs the safe-subset search of SelectSafe over
// bit-packed LR-matrices, returning an identical Result without ever
// materializing the dense form.
func SelectSafeBit(caseLR, refLR *BitMatrix, params Params) (Result, error) {
	if caseLR.Cols() != refLR.Cols() {
		return Result{}, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	return SelectSafeBitWithOrder(caseLR, refLR, params, DiscriminabilityOrderBit(caseLR, refLR))
}

// SelectSafeBitWithOrder runs the greedy admission of SelectSafeWithOrder
// over bit-packed LR-matrices. Candidate scores accumulate columns in the
// same sequential row order as the dense kernel, so every power — and hence
// the selected subset — is bit-for-bit identical.
func SelectSafeBitWithOrder(caseLR, refLR *BitMatrix, params Params, order []int) (Result, error) {
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	if caseLR.Cols() != refLR.Cols() {
		return Result{}, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	cols := caseLR.Cols()
	if cols == 0 {
		return Result{Safe: []int{}}, nil
	}
	if err := validateOrder(order, cols); err != nil {
		return Result{}, err
	}

	caseScores := make([]float64, caseLR.Rows())
	refScores := make([]float64, refLR.Rows())
	candCase := make([]float64, caseLR.Rows())
	candRef := make([]float64, refLR.Rows())
	eval := newPowerEval(params, refLR.Rows())

	res := Result{Safe: make([]int, 0, cols)}
	for _, j := range order {
		caseLR.addColumn(candCase, caseScores, j)
		refLR.addColumn(candRef, refScores, j)
		power := eval.power(candCase, candRef)
		res.Iterations++
		if power < params.PowerThreshold {
			caseScores, candCase = candCase, caseScores
			refScores, candRef = candRef, refScores
			res.Safe = append(res.Safe, j)
			res.Power = power
		}
	}
	sort.Ints(res.Safe)
	return res, nil
}

// DiscriminabilityOrderBit ranks columns exactly as DiscriminabilityOrder
// does, computing the column means from the packed form with the same
// sequential row-order accumulation.
func DiscriminabilityOrderBit(caseLR, refLR *BitMatrix) []int {
	cols := caseLR.Cols()
	type ranked struct {
		j int
		d float64
	}
	rs := make([]ranked, cols)
	for j := 0; j < cols; j++ {
		rs[j] = ranked{j: j, d: math.Abs(columnMeanBit(caseLR, j) - columnMeanBit(refLR, j))}
	}
	sort.Slice(rs, func(a, b int) bool {
		// Exact inequality keeps the comparator a strict weak order; see
		// DiscriminabilityOrder.
		//gendpr:allow(floateq): sort tie-break needs exact comparison for a consistent total order
		if rs[a].d != rs[b].d {
			return rs[a].d < rs[b].d
		}
		return rs[a].j < rs[b].j
	})
	order := make([]int, cols)
	for i, r := range rs {
		order[i] = r.j
	}
	return order
}

func columnMeanBit(m *BitMatrix, j int) float64 {
	if m.rows == 0 {
		return 0
	}
	v := [2]float64{m.zero[j], m.one[j]}
	w := m.bits[j*m.wpc : (j+1)*m.wpc]
	var sum float64
	for i := 0; i < m.rows; i++ {
		sum += v[(w[i>>6]>>(uint(i)&63))&1]
	}
	return sum / float64(m.rows)
}

// EvaluateBit computes the detection power of the LR-test restricted to the
// given column subset of bit-packed case and reference LR-matrices — the
// bit-kernel twin of Evaluate.
func EvaluateBit(caseLR, refLR *BitMatrix, subset []int, alpha float64) (float64, error) {
	if caseLR.Cols() != refLR.Cols() {
		return 0, fmt.Errorf("%w: case %d vs reference %d columns", ErrShapeMismatch, caseLR.Cols(), refLR.Cols())
	}
	caseScores := caseLR.ScoreSubset(subset)
	refScores := refLR.ScoreSubset(subset)
	return Power(caseScores, Threshold(refScores, alpha)), nil
}
