// Package oram implements Path ORAM (Stefanov et al.), the oblivious-memory
// scheme the paper cites as a defense against enclave access-pattern
// side channels. Every logical access reads and rewrites one full root-to-
// leaf path of a binary tree of encrypted-block buckets, so the physical
// trace is independent of which address the enclave touched.
//
// The implementation is an in-memory model of the protocol: buckets live in
// untrusted memory (a slice), the stash and position map in enclave memory.
// It is used by the oblivious processing mode and as a standalone substrate.
package oram

import (
	"errors"
	"fmt"
)

// Rand is the minimal uniform-integer source ORAM consumes for leaf
// remapping. Production code must inject a cryptographically secure
// implementation (internal/crand.Source): the Path ORAM security argument
// requires that an observer of the untrusted host cannot predict remapped
// leaves. Tests inject a seeded *math/rand.Rand, which satisfies the same
// interface, for reproducible traces. The cryptorand static analyzer keeps
// math/rand itself out of this package.
type Rand interface {
	// Intn returns a uniform value in [0, n); it may panic for n <= 0.
	Intn(n int) int
}

// BucketSize is Z, the number of block slots per tree node. Z=4 is the
// setting shown by the Path ORAM paper to keep the stash small.
const BucketSize = 4

var (
	// ErrAddressRange is returned for out-of-range addresses.
	ErrAddressRange = errors.New("oram: address out of range")

	// ErrBlockSize is returned when a written block has the wrong size.
	ErrBlockSize = errors.New("oram: wrong block size")
)

// block is one stored unit.
type block struct {
	addr int
	data []byte
}

// ORAM is a Path ORAM instance. It is not safe for concurrent use; enclave
// code serializes accesses (which is also required for obliviousness).
type ORAM struct {
	blockSize int
	capacity  int
	levels    int // tree depth; leaves = 1 << levels
	leaves    int

	buckets [][]block // heap layout, 1-based; len(buckets[i]) <= BucketSize
	pos     []int     // addr -> leaf
	stash   map[int][]byte
	rng     Rand

	accesses int64
}

// New creates an ORAM holding capacity blocks of blockSize bytes. The rng
// drives leaf remapping; pass a crand.Source in production and a fixed-seed
// math/rand source in tests.
func New(capacity, blockSize int, rng Rand) (*ORAM, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("oram: capacity %d invalid", capacity)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("oram: block size %d invalid", blockSize)
	}
	if rng == nil {
		return nil, errors.New("oram: nil random source")
	}
	levels := 0
	for 1<<levels < capacity {
		levels++
	}
	leaves := 1 << levels
	o := &ORAM{
		blockSize: blockSize,
		capacity:  capacity,
		levels:    levels,
		leaves:    leaves,
		buckets:   make([][]block, 2*leaves),
		pos:       make([]int, capacity),
		stash:     make(map[int][]byte),
		rng:       rng,
	}
	for addr := range o.pos {
		o.pos[addr] = rng.Intn(leaves)
	}
	return o, nil
}

// Capacity returns the number of addressable blocks.
func (o *ORAM) Capacity() int { return o.capacity }

// BlockSize returns the block size in bytes.
func (o *ORAM) BlockSize() int { return o.blockSize }

// StashSize returns the number of blocks currently overflowing into the
// stash (excluding the transient path content during an access).
func (o *ORAM) StashSize() int { return len(o.stash) }

// Accesses returns the number of logical accesses performed.
func (o *ORAM) Accesses() int64 { return o.accesses }

// pathNode returns the heap index of the bucket at the given level (0 =
// root) on the path to a leaf.
func (o *ORAM) pathNode(leaf, level int) int {
	return (leaf + o.leaves) >> (o.levels - level)
}

// Read returns the block at addr, or nil if it was never written.
//
//gendpr:ordered: the stash is keyed by address; access selects blocks by lookup, so the returned bytes do not depend on map iteration order
func (o *ORAM) Read(addr int) ([]byte, error) {
	return o.access(addr, nil)
}

// Write stores data (of exactly BlockSize bytes) at addr.
//
//gendpr:ordered: write-back eviction iterates the stash, but the stored bytes are exactly the caller's data regardless of eviction order
func (o *ORAM) Write(addr int, data []byte) error {
	if len(data) != o.blockSize {
		return fmt.Errorf("%w: %d bytes, want %d", ErrBlockSize, len(data), o.blockSize)
	}
	_, err := o.access(addr, data)
	return err
}

// access performs one Path ORAM access: remap, read path into stash,
// read/update the target, write the path back greedily.
func (o *ORAM) access(addr int, write []byte) ([]byte, error) {
	if addr < 0 || addr >= o.capacity {
		//gendpr:allow(secretflow): the error echoes the caller's own out-of-range address and the configured capacity, not block content
		return nil, fmt.Errorf("%w: %d (capacity %d)", ErrAddressRange, addr, o.capacity)
	}
	o.accesses++
	leaf := o.pos[addr]
	o.pos[addr] = o.rng.Intn(o.leaves)

	// Read the whole path into the stash.
	for level := 0; level <= o.levels; level++ {
		node := o.pathNode(leaf, level)
		for _, b := range o.buckets[node] {
			o.stash[b.addr] = b.data
		}
		o.buckets[node] = o.buckets[node][:0]
	}

	// Serve the request from the stash.
	var result []byte
	if data, ok := o.stash[addr]; ok {
		result = make([]byte, len(data))
		copy(result, data)
	}
	if write != nil {
		stored := make([]byte, len(write))
		copy(stored, write)
		o.stash[addr] = stored
	}

	// Write back, deepest level first, placing every stash block whose
	// (new) position still passes through the node.
	for level := o.levels; level >= 0; level-- {
		node := o.pathNode(leaf, level)
		for a, data := range o.stash {
			if len(o.buckets[node]) >= BucketSize {
				break
			}
			if o.pathNode(o.pos[a], level) == node {
				o.buckets[node] = append(o.buckets[node], block{addr: a, data: data})
				delete(o.stash, a)
			}
		}
	}
	return result, nil
}

// Store is a convenience ORAM-backed byte store for fixed-size records,
// initializing every address eagerly so reads never return nil.
type Store struct {
	oram *ORAM
}

// NewStore creates an ORAM store with all blocks zero-initialized.
func NewStore(capacity, blockSize int, rng Rand) (*Store, error) {
	o, err := New(capacity, blockSize, rng)
	if err != nil {
		return nil, err
	}
	zero := make([]byte, blockSize)
	for addr := 0; addr < capacity; addr++ {
		if err := o.Write(addr, zero); err != nil {
			return nil, err
		}
	}
	return &Store{oram: o}, nil
}

// Get reads a record.
//
//gendpr:ordered: delegates to ORAM.Read, whose result is address-keyed and independent of stash iteration order
func (s *Store) Get(addr int) ([]byte, error) {
	data, err := s.oram.Read(addr)
	if err != nil {
		return nil, err
	}
	if data == nil {
		// Eager initialization makes this unreachable; defend anyway.
		data = make([]byte, s.oram.blockSize)
	}
	return data, nil
}

// Put writes a record.
//
//gendpr:ordered: delegates to ORAM.Write; the stored bytes are the caller's data regardless of eviction order
func (s *Store) Put(addr int, data []byte) error {
	return s.oram.Write(addr, data)
}

// StashSize exposes the underlying stash occupancy.
func (s *Store) StashSize() int { return s.oram.StashSize() }
