package oram

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gendpr/internal/crand"
)

func newTestORAM(t *testing.T, capacity, blockSize int, seed int64) *ORAM {
	t.Helper()
	o, err := New(capacity, blockSize, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(0, 8, rng); err == nil {
		t.Error("capacity 0 must fail")
	}
	if _, err := New(8, 0, rng); err == nil {
		t.Error("block size 0 must fail")
	}
	if _, err := New(8, 8, nil); err == nil {
		t.Error("nil rng must fail")
	}
}

func TestReadUnwrittenReturnsNil(t *testing.T) {
	o := newTestORAM(t, 16, 8, 2)
	data, err := o.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatalf("unwritten block returned %v", data)
	}
}

func TestReadYourWrites(t *testing.T) {
	o := newTestORAM(t, 16, 8, 3)
	want := []byte("8-bytes!")
	if err := o.Write(5, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	// Repeated reads keep returning the value (the block survives path
	// rewrites and remapping).
	for i := 0; i < 50; i++ {
		got, err := o.Read(5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d: got %q", i, got)
		}
	}
}

func TestWriteErrors(t *testing.T) {
	o := newTestORAM(t, 8, 8, 4)
	if err := o.Write(0, []byte("short")); !errors.Is(err, ErrBlockSize) {
		t.Errorf("short write: %v", err)
	}
	if err := o.Write(8, make([]byte, 8)); !errors.Is(err, ErrAddressRange) {
		t.Errorf("oob write: %v", err)
	}
	if _, err := o.Read(-1); !errors.Is(err, ErrAddressRange) {
		t.Errorf("oob read: %v", err)
	}
}

func TestAgainstReferenceMap(t *testing.T) {
	const capacity = 64
	o := newTestORAM(t, capacity, 8, 5)
	rng := rand.New(rand.NewSource(99))
	ref := make(map[int][]byte)

	for step := 0; step < 5000; step++ {
		addr := rng.Intn(capacity)
		if rng.Intn(2) == 0 {
			data := make([]byte, 8)
			binary.BigEndian.PutUint64(data, rng.Uint64())
			if err := o.Write(addr, data); err != nil {
				t.Fatal(err)
			}
			ref[addr] = data
		} else {
			got, err := o.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			want := ref[addr]
			if (got == nil) != (want == nil) || !bytes.Equal(got, want) {
				t.Fatalf("step %d addr %d: got %v, want %v", step, addr, got, want)
			}
		}
	}
	if o.Accesses() != 5000 {
		t.Errorf("accesses=%d, want 5000", o.Accesses())
	}
}

func TestStashStaysBounded(t *testing.T) {
	const capacity = 256
	o := newTestORAM(t, capacity, 8, 6)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 8)
	maxStash := 0
	for step := 0; step < 20000; step++ {
		if err := o.Write(rng.Intn(capacity), data); err != nil {
			t.Fatal(err)
		}
		if s := o.StashSize(); s > maxStash {
			maxStash = s
		}
	}
	// Path ORAM with Z=4 keeps the stash tiny with overwhelming
	// probability; 60 is far above any plausible excursion for N=256.
	if maxStash > 60 {
		t.Errorf("stash reached %d blocks; eviction is broken", maxStash)
	}
}

func TestWritesAreCopied(t *testing.T) {
	o := newTestORAM(t, 4, 4, 8)
	buf := []byte{1, 2, 3, 4}
	if err := o.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, err := o.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("ORAM aliases caller memory")
	}
}

func TestNonPowerOfTwoCapacity(t *testing.T) {
	o := newTestORAM(t, 100, 16, 9)
	data := make([]byte, 16)
	for addr := 0; addr < 100; addr++ {
		data[0] = byte(addr)
		if err := o.Write(addr, data); err != nil {
			t.Fatalf("addr %d: %v", addr, err)
		}
	}
	for addr := 0; addr < 100; addr++ {
		got, err := o.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(addr) {
			t.Fatalf("addr %d: got %d", addr, got[0])
		}
	}
}

func TestStoreZeroInitialized(t *testing.T) {
	s, err := NewStore(32, 8, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(31)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("fresh store returned %v", got)
	}
	if err := s.Put(31, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(31)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "12345678" {
		t.Fatalf("got %q", got)
	}
	if s.StashSize() > 60 {
		t.Errorf("store stash %d", s.StashSize())
	}
}

func BenchmarkORAMAccess(b *testing.B) {
	o, err := New(1<<12, 64, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.Write(i%(1<<12), data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCryptoSource exercises the production configuration: ORAM driven by a
// crypto/rand-backed source instead of the deterministic test PRNG.
func TestCryptoSource(t *testing.T) {
	o, err := New(64, 8, crand.New())
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{}
	for i := 0; i < 64; i++ {
		v := fmt.Sprintf("v%07d", i)
		if err := o.Write(i, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	for i := 0; i < 64; i++ {
		got, err := o.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want[i] {
			t.Fatalf("addr %d: got %q want %q", i, got, want[i])
		}
	}
}
