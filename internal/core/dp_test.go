package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestHybridReleaseSafeExactOthersNoised(t *testing.T) {
	counts := []int64{10, 20, 30, 40, 50}
	safe := []int{1, 3}
	rel, err := BuildHybridRelease(counts, 100, safe, DPParams{Epsilon: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.SNPs) != 5 {
		t.Fatalf("released %d SNPs, want 5", len(rel.SNPs))
	}
	for _, s := range rel.SNPs {
		exact := float64(counts[s.SNP]) / 100
		switch s.SNP {
		case 1, 3:
			if s.Noised {
				t.Errorf("safe SNP %d marked noised", s.SNP)
			}
			if s.Frequency != exact {
				t.Errorf("safe SNP %d frequency %v, want exact %v", s.SNP, s.Frequency, exact)
			}
		default:
			if !s.Noised {
				t.Errorf("unsafe SNP %d not noised", s.SNP)
			}
			if s.Frequency == exact {
				t.Errorf("unsafe SNP %d released exactly", s.SNP)
			}
			if s.Frequency < 0 || s.Frequency > 1 {
				t.Errorf("unsafe SNP %d frequency %v outside [0,1]", s.SNP, s.Frequency)
			}
		}
	}
}

func TestHybridReleaseDeterministicWithSeed(t *testing.T) {
	counts := []int64{5, 10, 15}
	a, err := BuildHybridRelease(counts, 50, []int{0}, DPParams{Epsilon: 0.5}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildHybridRelease(counts, 50, []int{0}, DPParams{Epsilon: 0.5}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.SNPs {
		if a.SNPs[i] != b.SNPs[i] {
			t.Fatal("same seed produced different releases")
		}
	}
}

func TestHybridReleaseNoiseScalesWithEpsilon(t *testing.T) {
	counts := make([]int64, 400)
	for i := range counts {
		counts[i] = 50
	}
	meanAbsErr := func(eps float64) float64 {
		rel, err := BuildHybridRelease(counts, 100, nil, DPParams{Epsilon: eps}, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, s := range rel.SNPs {
			sum += math.Abs(s.Frequency - 0.5)
		}
		return sum / float64(len(rel.SNPs))
	}
	loose := meanAbsErr(0.1)
	tight := meanAbsErr(10)
	if tight >= loose {
		t.Errorf("higher epsilon must mean less noise: eps=10 err %v vs eps=0.1 err %v", tight, loose)
	}
}

func TestHybridReleaseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BuildHybridRelease([]int64{1}, 10, nil, DPParams{Epsilon: 0}, rng); err == nil {
		t.Error("epsilon 0 must fail")
	}
	if _, err := BuildHybridRelease([]int64{1}, 0, nil, DPParams{Epsilon: 1}, rng); err == nil {
		t.Error("zero population must fail")
	}
	if _, err := BuildHybridRelease([]int64{1}, 10, []int{5}, DPParams{Epsilon: 1}, rng); err == nil {
		t.Error("out-of-range safe SNP must fail")
	}
	if _, err := BuildHybridRelease([]int64{1}, 10, nil, DPParams{Epsilon: 1}, nil); err == nil {
		t.Error("nil rng must fail")
	}
	if _, err := BuildHybridRelease([]int64{1}, 10, nil, DPParams{Epsilon: math.Inf(1)}, rng); err == nil {
		t.Error("infinite epsilon must fail")
	}
}
