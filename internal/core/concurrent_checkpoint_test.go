package core

import (
	"encoding/hex"
	"errors"
	"sync"
	"testing"

	"gendpr/internal/checkpoint"
)

// TestConcurrentAssessmentsSharedFileStore runs two simultaneous assessments
// with different configurations over one shared FileStore, each checkpointing
// into its own fingerprint-keyed namespace — the assessment service's
// concurrency shape. Run under -race this is the satellite gate for making
// the shared store safe for concurrent runs; the results must match the
// sequential baselines bit for bit.
func TestConcurrentAssessmentsSharedFileStore(t *testing.T) {
	shards, ref := checkpointFixture(t)
	root, err := checkpoint.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.MAFCutoff = 0.10
	policy := CollusionPolicy{F: 1}

	baseline := func(cfg Config) *Report {
		ps, _ := providersFor(shards, []int{0, 1, 2})
		rep, err := RunAssessment(ps, ref, cfg, policy, nil)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		return rep
	}
	wantA, wantB := baseline(cfgA), baseline(cfgB)

	runOnce := func(cfg Config) (*Report, error) {
		ps, names := providersFor(shards, []int{0, 1, 2})
		fp := Fingerprint(cfg, policy, names, ref.N(), ref.L())
		return RunAssessmentWithOptions(ps, ref, cfg, policy, nil, AssessmentOptions{
			ProviderNames: names,
			Checkpoints:   root.Namespace(hex.EncodeToString(fp)),
		})
	}

	const rounds = 3
	var wg sync.WaitGroup
	reports := make([]*Report, 2*rounds)
	errs := make([]error, 2*rounds)
	for i := 0; i < rounds; i++ {
		for j, cfg := range []Config{cfgA, cfgB} {
			wg.Add(1)
			go func(slot int, cfg Config) {
				defer wg.Done()
				reports[slot], errs[slot] = runOnce(cfg)
			}(2*i+j, cfg)
		}
	}
	wg.Wait()

	for i := 0; i < rounds; i++ {
		for j, want := range []*Report{wantA, wantB} {
			slot := 2*i + j
			if errs[slot] != nil {
				t.Fatalf("concurrent run %d: %v", slot, errs[slot])
			}
			if !reports[slot].Selection.Equal(want.Selection) {
				t.Errorf("concurrent run %d selection %v != baseline %v",
					slot, reports[slot].Selection, want.Selection)
			}
		}
	}
}

// TestRetainCheckpointsEnablesFullReuse runs once with RetainCheckpoints and
// expects the snapshot to survive success, so an identical second request
// replays every completed phase (Resumed set, selection identical). A third
// run without retention must clear the store again.
func TestRetainCheckpointsEnablesFullReuse(t *testing.T) {
	shards, ref := checkpointFixture(t)
	store := checkpoint.NewMemStore()
	cfg := DefaultConfig()
	policy := CollusionPolicy{F: 1}

	run := func(retain bool) *Report {
		t.Helper()
		ps, names := providersFor(shards, []int{0, 1, 2})
		rep, err := RunAssessmentWithOptions(ps, ref, cfg, policy, nil, AssessmentOptions{
			ProviderNames:     names,
			Checkpoints:       store,
			RetainCheckpoints: retain,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	first := run(true)
	if first.Resumed {
		t.Fatal("first run claims to have resumed")
	}
	if _, err := store.Load(); err != nil {
		t.Fatalf("retained snapshot missing after success: %v", err)
	}

	second := run(true)
	if !second.Resumed {
		t.Error("identical second run did not resume from the retained snapshot")
	}
	if !second.Selection.Equal(first.Selection) {
		t.Errorf("reused selection %v != original %v", second.Selection, first.Selection)
	}

	third := run(false)
	if !third.Resumed {
		t.Error("third run did not resume")
	}
	if _, err := store.Load(); !errors.Is(err, checkpoint.ErrNotFound) {
		t.Errorf("store not cleared after non-retaining success: %v", err)
	}
}
