package core

import (
	"fmt"
	"time"

	"gendpr/internal/genome"
	"gendpr/internal/stats"
)

// RunNaive is the incorrect-by-design baseline of Section 7.3: each GDO runs
// the LD and LR-test analyses independently over its local dataset (using
// local allele frequencies instead of pooled ones) and shares only its
// selected SNP indices; the leader intersects them. Phase 1 still uses
// aggregated counts — the paper observes the naïve scheme "is able to retain
// the same SNPs during the MAF evaluation" — but Phases 2 and 3 diverge
// because local data does not reflect the federation-wide genome
// distribution, which Table 4 demonstrates.
func RunNaive(shards []*genome.Matrix, reference *genome.Matrix, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, ErrNoMembers
	}
	if reference == nil || reference.N() == 0 {
		return nil, fmt.Errorf("core: naive baseline needs a non-empty reference panel")
	}
	report := &Report{Combinations: len(shards)}

	// Phase 1: global MAF over aggregated counts (same as GenDPR). The
	// column-major views also serve the per-member LD scans below.
	start := time.Now()
	vectors := make([][]int64, len(shards))
	views := make([]*genome.ColumnBits, len(shards))
	var caseN int64
	for i, s := range shards {
		vectors[i] = s.AlleleCounts()
		views[i] = s.Transpose()
		caseN += int64(s.N())
	}
	summed, err := stats.SumCounts(vectors...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	refCounts := reference.AlleleCounts()
	refCols := reference.Transpose()
	refN := int64(reference.N())
	report.Timings.DataAggregation += time.Since(start)

	start = time.Now()
	lPrime, err := MAFPhase(summed, caseN, refCounts, refN, cfg.MAFCutoff)
	report.Timings.Indexing += time.Since(start)
	if err != nil {
		return nil, err
	}

	// Phases 2 and 3, locally and independently per GDO.
	perLD := make([][]int, len(shards))
	perSafe := make([][]int, len(shards))
	for i, s := range shards {
		localN := int64(s.N())
		localCounts := vectors[i]

		start = time.Now()
		pvals, err := AssociationPValues(localCounts, localN, refCounts, refN, cfg.PaperChiSquare)
		report.Timings.Indexing += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("core: naive member %d: %w", i, err)
		}

		start = time.Now()
		localPair := func(a, b int) (genome.PairStats, error) {
			// Single counts are already in hand from Phase 1; each pair
			// costs two AND+popcount sweeps instead of six column scans.
			local := genome.PairStatsFromCounts(localN, localCounts[a], localCounts[b], views[i].PairCount(a, b))
			ref := genome.PairStatsFromCounts(refN, refCounts[a], refCounts[b], refCols.PairCount(a, b))
			return local.Add(ref), nil
		}
		lDouble, err := LDPhase(lPrime, localPair, pvals, cfg.LDCutoff)
		report.Timings.LD += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("core: naive member %d: %w", i, err)
		}
		perLD[i] = lDouble

		start = time.Now()
		caseFreq := Frequencies(localCounts, localN, lDouble)
		refFreq := Frequencies(refCounts, refN, lDouble)
		caseLR, err := BuildLRBitMatrix(s, lDouble, caseFreq, refFreq)
		if err != nil {
			return nil, fmt.Errorf("core: naive member %d: %w", i, err)
		}
		refLR, err := BuildLRBitMatrix(reference, lDouble, caseFreq, refFreq)
		if err != nil {
			return nil, fmt.Errorf("core: naive member %d: %w", i, err)
		}
		safe, power, err := LRPhaseBit(lDouble, caseLR, refLR, cfg.LR)
		report.Timings.LRTest += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("core: naive member %d: %w", i, err)
		}
		perSafe[i] = safe
		report.PerCombination = append(report.PerCombination, Selection{
			AfterMAF: lPrime,
			AfterLD:  lDouble,
			Safe:     safe,
			Power:    power,
		})
	}

	start = time.Now()
	report.Selection = Selection{
		AfterMAF: lPrime,
		AfterLD:  IntersectSorted(perLD...),
		Safe:     IntersectSorted(perSafe...),
	}
	report.Timings.Indexing += time.Since(start)

	// The naive intersection can leave "safe" SNPs outside the intersected
	// LD set (each member pruned a different neighbourhood); the paper's
	// Table 4 shows exactly this inconsistency. Keep Safe within AfterLD so
	// downstream consumers see a coherent, if mis-selected, subset.
	report.Selection.Safe = IntersectSorted(report.Selection.Safe, report.Selection.AfterLD)
	return report, nil
}
