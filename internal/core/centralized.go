package core

import (
	"fmt"
	"time"

	"gendpr/internal/enclave"
	"gendpr/internal/genome"
)

// enclaveCodeIdentity is the simulated measurement source for the GenDPR
// trusted modules. Real deployments measure the enclave binary.
var enclaveCodeIdentity = []byte("gendpr-trusted-module-v1")

// newAssessmentEnclave loads a fresh enclave for one assessment run.
func newAssessmentEnclave(memoryLimit int64) (*enclave.Enclave, error) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	enc, err := platform.Load(enclaveCodeIdentity, enclave.Config{MemoryLimit: memoryLimit})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return enc, nil
}

// RunCentralized is the baseline of the paper's evaluation: SecureGenome's
// pipeline inside a single TEE that first pools every case genome. Its
// selection output is the ground truth GenDPR must match (Table 4), and its
// enclave must pay for holding all genomes (unlike GenDPR's leader, which
// only holds intermediates).
func RunCentralized(cohort *genome.Cohort, cfg Config) (*Report, error) {
	if err := cohort.Validate(); err != nil {
		return nil, err
	}
	enc, err := newAssessmentEnclave(0)
	if err != nil {
		return nil, err
	}

	// Centralizing: every genome is transferred into the enclave.
	start := time.Now()
	pooled := cohort.Case.Clone()
	poolCost := time.Since(start)
	if err := enc.Alloc(pooled.SizeBytes() + cohort.Reference.SizeBytes()); err != nil {
		return nil, fmt.Errorf("core: centralized enclave cannot hold the pooled genomes: %w", err)
	}

	report, err := RunAssessment(
		[]Provider{NewLocalMember(pooled)},
		cohort.Reference,
		cfg,
		CollusionPolicy{},
		enc,
	)
	if err != nil {
		return nil, err
	}
	report.Timings.DataAggregation += poolCost
	return report, nil
}

// RunDistributed executes GenDPR in-process: one Provider per genome data
// owner shard, a fresh leader enclave for accounting, and the collusion
// policy applied per phase. The networked middleware in internal/federation
// drives the identical RunAssessment over encrypted connections.
func RunDistributed(shards []*genome.Matrix, reference *genome.Matrix, cfg Config, policy CollusionPolicy) (*Report, error) {
	providers := make([]Provider, len(shards))
	for i, s := range shards {
		providers[i] = NewLocalMember(s)
	}
	enc, err := newAssessmentEnclave(0)
	if err != nil {
		return nil, err
	}
	return RunAssessment(providers, reference, cfg, policy, enc)
}
