package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

func TestMAFPhase(t *testing.T) {
	// 100 case + 100 reference individuals; cutoff 0.05 → needs >= 10
	// pooled carriers.
	caseCounts := []int64{0, 4, 9, 10, 50}
	refCounts := []int64{0, 5, 0, 0, 50}
	got, err := MAFPhase(caseCounts, 100, refCounts, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 4} // pooled counts 0,9,9,10,100 → freq 0,.045,.045,.05,.5
	if !equalInts(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMAFPhaseLengthMismatch(t *testing.T) {
	if _, err := MAFPhase([]int64{1}, 1, []int64{1, 2}, 2, 0.05); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestMAFPhaseZeroCutoffKeepsAll(t *testing.T) {
	got, err := MAFPhase([]int64{0, 1}, 10, []int64{0, 0}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, []int{0, 1}) {
		t.Fatalf("got %v", got)
	}
}

func TestAssociationPValues(t *testing.T) {
	pvals, err := AssociationPValues([]int64{50, 10}, 100, []int64{10, 10}, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if pvals[0] >= pvals[1] {
		t.Errorf("strong association must have smaller p-value: %v", pvals)
	}
	if pvals[1] < 0.9 {
		t.Errorf("identical counts should be insignificant: %v", pvals[1])
	}
	// Inconsistent counts are rejected.
	if _, err := AssociationPValues([]int64{101}, 100, []int64{1}, 100, true); err == nil {
		t.Error("count > N must fail")
	}
	if _, err := AssociationPValues([]int64{1, 2}, 10, []int64{1}, 10, true); err == nil {
		t.Error("length mismatch must fail")
	}
}

// scriptedPairs builds a PairStatsFunc from a table of dependent pairs. The
// returned stats give the LD phase either a clearly dependent pair
// (perfectly correlated) or a clearly independent one.
func scriptedPairs(n int64, dependent map[[2]int]bool) PairStatsFunc {
	return func(a, b int) (genome.PairStats, error) {
		if dependent[[2]int{a, b}] || dependent[[2]int{b, a}] {
			half := n / 2
			return genome.PairStats{N: n, SumX: half, SumY: half, SumXY: half, SumXX: half, SumYY: half}, nil
		}
		half := n / 2
		quarter := n / 4
		return genome.PairStats{N: n, SumX: half, SumY: half, SumXY: quarter, SumXX: half, SumYY: half}, nil
	}
}

func TestLDPhaseAllIndependent(t *testing.T) {
	retained := []int{2, 5, 9}
	pvals := []float64{0, 0, 0.5, 0, 0, 0.1, 0, 0, 0, 0.9}
	got, err := LDPhase(retained, scriptedPairs(1000, nil), pvals, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, retained) {
		t.Fatalf("got %v, want all retained %v", got, retained)
	}
}

func TestLDPhaseDependentPairKeepsMostRanked(t *testing.T) {
	retained := []int{1, 2}
	dep := map[[2]int]bool{{1, 2}: true}
	// SNP 2 has the smaller association p-value → higher ranked.
	pvals := []float64{0, 0.9, 0.1}
	got, err := LDPhase(retained, scriptedPairs(1000, dep), pvals, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, []int{2}) {
		t.Fatalf("got %v, want [2]", got)
	}
	// Flip the ranking.
	pvals = []float64{0, 0.1, 0.9}
	got, err = LDPhase(retained, scriptedPairs(1000, dep), pvals, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, []int{1}) {
		t.Fatalf("got %v, want [1]", got)
	}
}

func TestLDPhaseChainOfDependents(t *testing.T) {
	// 1-2 dependent, survivor vs 3 dependent, survivor vs 4 independent.
	retained := []int{1, 2, 3, 4}
	dep := map[[2]int]bool{{1, 2}: true, {1, 3}: true}
	pvals := []float64{0, 0.01, 0.5, 0.6, 0.7}
	got, err := LDPhase(retained, scriptedPairs(1000, dep), pvals, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, []int{1, 4}) {
		t.Fatalf("got %v, want [1 4]", got)
	}
}

func TestLDPhaseTieBreaksDeterministically(t *testing.T) {
	retained := []int{3, 7}
	dep := map[[2]int]bool{{3, 7}: true}
	pvals := make([]float64, 8)
	for i := range pvals {
		pvals[i] = 0.5
	}
	got, err := LDPhase(retained, scriptedPairs(1000, dep), pvals, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, []int{3}) {
		t.Fatalf("tie must keep the lower index: got %v", got)
	}
}

func TestLDPhaseSmallInputs(t *testing.T) {
	got, err := LDPhase(nil, scriptedPairs(10, nil), nil, 1e-5)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v, %v", got, err)
	}
	got, err = LDPhase([]int{4}, scriptedPairs(10, nil), []float64{0, 0, 0, 0, 0.5}, 1e-5)
	if err != nil || !equalInts(got, []int{4}) {
		t.Fatalf("singleton: %v, %v", got, err)
	}
}

func TestLDPhaseBatchAnnouncesSurvivorChains(t *testing.T) {
	// 1 eliminates 2, 3 and 4 (a survivor chain), then 5 is independent.
	retained := []int{1, 2, 3, 4, 5}
	dep := map[[2]int]bool{{1, 2}: true, {1, 3}: true, {1, 4}: true}
	pvals := []float64{0, 0.01, 0.5, 0.6, 0.7, 0.8}

	var announced [][][2]int
	prefetch := func(pairs [][2]int) error {
		cp := make([][2]int, len(pairs))
		copy(cp, pairs)
		announced = append(announced, cp)
		return nil
	}
	got, err := LDPhaseBatch(retained, scriptedPairs(1000, dep), prefetch, 2, pvals, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, []int{1, 5}) {
		t.Fatalf("got %v, want [1 5]", got)
	}
	// The chain starts after (1,2) removes 2: a window of 2 announces
	// (1,3),(1,4); the chain outlives it, so (1,5) is announced next.
	want := [][][2]int{{{1, 3}, {1, 4}}, {{1, 5}}}
	if len(announced) != len(want) {
		t.Fatalf("announced %v, want %v", announced, want)
	}
	for i := range want {
		if len(announced[i]) != len(want[i]) {
			t.Fatalf("announcement %d: %v, want %v", i, announced[i], want[i])
		}
		for j := range want[i] {
			if announced[i][j] != want[i][j] {
				t.Fatalf("announcement %d: %v, want %v", i, announced[i], want[i])
			}
		}
	}

	// Adjacent-only scans never announce.
	announced = nil
	if _, err := LDPhaseBatch(retained, scriptedPairs(1000, nil), prefetch, 2, pvals, 1e-5); err != nil {
		t.Fatal(err)
	}
	if len(announced) != 0 {
		t.Fatalf("independent scan announced %v, want none", announced)
	}
}

func TestLDPhaseBatchPropagatesPrefetchErrors(t *testing.T) {
	retained := []int{1, 2, 3}
	dep := map[[2]int]bool{{1, 2}: true}
	pvals := []float64{0, 0.01, 0.5, 0.6}
	wantErr := errors.New("member offline")
	prefetch := func([][2]int) error { return wantErr }
	if _, err := LDPhaseBatch(retained, scriptedPairs(1000, dep), prefetch, 4, pvals, 1e-5); !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want prefetch error", err)
	}
}

func TestLDPhasePropagatesPairErrors(t *testing.T) {
	wantErr := errors.New("member offline")
	pool := func(a, b int) (genome.PairStats, error) { return genome.PairStats{}, wantErr }
	if _, err := LDPhase([]int{0, 1}, pool, []float64{0.5, 0.5}, 1e-5); !errors.Is(err, wantErr) {
		t.Fatalf("got %v", err)
	}
}

func TestLRPhaseMapsBackToOriginalIndices(t *testing.T) {
	cols := []int{10, 20, 30}
	caseLR := lrtest.NewMatrix(4, 3)
	refLR := lrtest.NewMatrix(4, 3)
	// All-zero matrices: no identification power, everything is safe.
	safe, power, err := LRPhase(cols, caseLR, refLR, lrtest.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if power != 0 {
		t.Errorf("power %v, want 0", power)
	}
	if !equalInts(safe, cols) {
		t.Fatalf("safe %v, want %v", safe, cols)
	}
	if _, _, err := LRPhase([]int{1, 2}, caseLR, refLR, lrtest.DefaultParams()); err == nil {
		t.Error("column-count mismatch must fail")
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct {
		in   [][]int
		want []int
	}{
		{nil, nil},
		{[][]int{{1, 2, 3}}, []int{1, 2, 3}},
		{[][]int{{1, 2, 3}, {2, 3, 4}}, []int{2, 3}},
		{[][]int{{1, 2, 3}, {2, 3, 4}, {3}}, []int{3}},
		{[][]int{{1}, {2}}, []int{}},
		{[][]int{{}, {1, 2}}, []int{}},
	}
	for i, tc := range cases {
		got := IntersectSorted(tc.in...)
		if len(got) != len(tc.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, tc.want)
		}
		for j := range tc.want {
			if got[j] != tc.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, tc.want)
			}
		}
	}
}

// Property: intersection is commutative, idempotent, and bounded by its
// smallest operand — the algebra the collusion-tolerance correctness rests on.
func TestQuickIntersectSortedProperties(t *testing.T) {
	normalize := func(raw []uint8) []int {
		seen := map[int]bool{}
		for _, v := range raw {
			seen[int(v%50)] = true
		}
		out := make([]int, 0, len(seen))
		for v := range seen {
			out = append(out, v)
		}
		sort.Ints(out)
		return out
	}
	f := func(rawA, rawB []uint8) bool {
		a := normalize(rawA)
		b := normalize(rawB)
		ab := IntersectSorted(a, b)
		ba := IntersectSorted(b, a)
		if !equalInts(ab, ba) {
			return false
		}
		if !equalInts(IntersectSorted(a, a), a) {
			return false
		}
		if len(ab) > len(a) || len(ab) > len(b) {
			return false
		}
		inB := map[int]bool{}
		for _, v := range b {
			inB[v] = true
		}
		for _, v := range ab {
			if !inB[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSortedDoesNotMutateInput(t *testing.T) {
	a := []int{1, 2, 3}
	b := []int{2, 3}
	_ = IntersectSorted(a, b)
	if !equalInts(a, []int{1, 2, 3}) {
		t.Fatal("input mutated")
	}
}

func TestFrequenciesSubset(t *testing.T) {
	counts := []int64{10, 20, 30, 40}
	got := Frequencies(counts, 100, []int{3, 0})
	if got[0] != 0.4 || got[1] != 0.1 {
		t.Fatalf("got %v", got)
	}
	zero := Frequencies(counts, 0, []int{1})
	if zero[0] != 0 || math.IsNaN(zero[0]) {
		t.Fatalf("zero population: %v", zero)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.MAFCutoff = 1.2
	if err := bad.Validate(); err == nil {
		t.Error("MAF cutoff > 1 must fail")
	}
	bad = DefaultConfig()
	bad.LDCutoff = 0
	if err := bad.Validate(); err == nil {
		t.Error("LD cutoff 0 must fail")
	}
	bad = DefaultConfig()
	bad.LR.Alpha = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad LR params must fail")
	}
}

func TestCollusionPolicyValidate(t *testing.T) {
	if err := (CollusionPolicy{F: 0}).Validate(3); err != nil {
		t.Errorf("f=0: %v", err)
	}
	if err := (CollusionPolicy{F: 2}).Validate(3); err != nil {
		t.Errorf("f=2,g=3: %v", err)
	}
	if err := (CollusionPolicy{F: 3}).Validate(3); err == nil {
		t.Error("f=g must fail")
	}
	if err := (CollusionPolicy{F: -1}).Validate(3); err == nil {
		t.Error("negative f must fail")
	}
	if err := (CollusionPolicy{Conservative: true}).Validate(1); err == nil {
		t.Error("conservative with g=1 must fail")
	}
	if err := (CollusionPolicy{Conservative: true}).Validate(2); err != nil {
		t.Errorf("conservative g=2: %v", err)
	}
	if err := (CollusionPolicy{}).Validate(0); err == nil {
		t.Error("empty federation must fail")
	}
}
