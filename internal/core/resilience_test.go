package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// phaseFaultProvider wraps a LocalMember and fails permanently at one phase,
// simulating a member declared failed after the transport retry budget.
type phaseFaultProvider struct {
	*LocalMember
	failPhase string // PhaseSummary, PhaseLD, or PhaseLR
	fatal     bool   // when set, fail with a run-fatal (non-degradable) error
}

func (f *phaseFaultProvider) fail() error {
	if f.fatal {
		return errors.New("tampered payload")
	}
	return fmt.Errorf("conn reset: %w", ErrMemberFailed)
}

func (f *phaseFaultProvider) Counts() ([]int64, error) {
	if f.failPhase == PhaseSummary {
		return nil, f.fail()
	}
	return f.LocalMember.Counts()
}

func (f *phaseFaultProvider) PairStats(a, b int) (genome.PairStats, error) {
	if f.failPhase == PhaseLD {
		return genome.PairStats{}, f.fail()
	}
	return f.LocalMember.PairStats(a, b)
}

func (f *phaseFaultProvider) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	if f.failPhase == PhaseLD {
		return nil, f.fail()
	}
	return f.LocalMember.PairStatsBatch(pairs)
}

func (f *phaseFaultProvider) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	if f.failPhase == PhaseLR {
		return nil, f.fail()
	}
	return f.LocalMember.LRMatrix(cols, caseFreq, refFreq)
}

func (f *phaseFaultProvider) LRPattern(cols []int) (*lrtest.BitMatrix, error) {
	if f.failPhase == PhaseLR {
		return nil, f.fail()
	}
	return f.LocalMember.LRPattern(cols)
}

// resilienceFixture builds a 4-member federation where member `bad` fails at
// `phase`, plus the expected degraded selection over the 3 survivors.
func resilienceFixture(t *testing.T, bad int, phase string, fatal bool) ([]Provider, *genome.Matrix, *Report) {
	t.Helper()
	cohort := testCohort(t, 120, 320, 29)
	shards := shardsOf(t, cohort, 4)

	providers := make([]Provider, len(shards))
	survivors := make([]*genome.Matrix, 0, len(shards)-1)
	for i, s := range shards {
		if i == bad {
			providers[i] = &phaseFaultProvider{LocalMember: NewLocalMember(s), failPhase: phase, fatal: fatal}
			continue
		}
		providers[i] = NewLocalMember(s)
		survivors = append(survivors, s)
	}
	want, err := RunDistributed(survivors, cohort.Reference, DefaultConfig(), CollusionPolicy{})
	if err != nil {
		t.Fatalf("survivor baseline: %v", err)
	}
	return providers, cohort.Reference, want
}

func TestResilientDegradesPerPhase(t *testing.T) {
	for _, phase := range []string{PhaseSummary, PhaseLD, PhaseLR} {
		t.Run(phase, func(t *testing.T) {
			providers, ref, want := resilienceFixture(t, 1, phase, false)
			rep, err := RunAssessmentResilient(providers, ref, DefaultConfig(), CollusionPolicy{}, nil, Resilience{MinQuorum: 2})
			if err != nil {
				t.Fatalf("RunAssessmentResilient: %v", err)
			}
			if len(rep.Excluded) != 1 || rep.Excluded[0] != 1 {
				t.Fatalf("Excluded = %v, want [1]", rep.Excluded)
			}
			if !rep.Selection.Equal(want.Selection) {
				t.Errorf("degraded selection %v != survivor baseline %v", rep.Selection, want.Selection)
			}
		})
	}
}

func TestResilientFatalErrorAborts(t *testing.T) {
	providers, ref, _ := resilienceFixture(t, 2, PhaseLD, true)
	_, err := RunAssessmentResilient(providers, ref, DefaultConfig(), CollusionPolicy{}, nil, Resilience{MinQuorum: 2})
	if err == nil {
		t.Fatal("expected a run-fatal error")
	}
	var me *MemberError
	if !errors.As(err, &me) {
		t.Fatalf("error %v does not attribute a member", err)
	}
	if me.Member != 2 || me.Phase != PhaseLD {
		t.Errorf("attributed member %d phase %q, want member 2 phase %q", me.Member, me.Phase, PhaseLD)
	}
}

func TestResilientQuorumLost(t *testing.T) {
	providers, ref, _ := resilienceFixture(t, 0, PhaseSummary, false)
	_, err := RunAssessmentResilient(providers, ref, DefaultConfig(), CollusionPolicy{}, nil, Resilience{MinQuorum: 4})
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("error = %v, want ErrQuorumLost", err)
	}
}

func TestResilientDisabledMatchesBase(t *testing.T) {
	providers, ref, _ := resilienceFixture(t, 3, PhaseLR, false)
	_, err := RunAssessmentResilient(providers, ref, DefaultConfig(), CollusionPolicy{}, nil, Resilience{})
	if err == nil {
		t.Fatal("expected the member failure to abort with degradation disabled")
	}
	if !errors.Is(err, ErrMemberFailed) {
		t.Errorf("error = %v, want ErrMemberFailed in chain", err)
	}
	if !strings.Contains(err.Error(), "member 3") || !strings.Contains(err.Error(), PhaseLR) {
		t.Errorf("error %q does not name member 3 and phase", err)
	}
}

func TestResilientPolicyUnsatisfiableOverSurvivors(t *testing.T) {
	cohort := testCohort(t, 100, 240, 31)
	shards := shardsOf(t, cohort, 2)
	providers := []Provider{
		NewLocalMember(shards[0]),
		&phaseFaultProvider{LocalMember: NewLocalMember(shards[1]), failPhase: PhaseSummary},
	}
	// Conservative collusion tolerance needs >= 2 members; degrading to 1
	// must abort rather than silently weakening the policy.
	_, err := RunAssessmentResilient(providers, cohort.Reference, DefaultConfig(), CollusionPolicy{Conservative: true}, nil, Resilience{MinQuorum: 1})
	if err == nil {
		t.Fatal("expected policy-unsatisfiable error")
	}
	if !strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("error %q does not mention the policy", err)
	}
}

func TestResilientWithCollusionPolicy(t *testing.T) {
	cohort := testCohort(t, 120, 320, 37)
	shards := shardsOf(t, cohort, 4)
	providers := make([]Provider, 4)
	survivors := make([]*genome.Matrix, 0, 3)
	for i, s := range shards {
		if i == 2 {
			providers[i] = &phaseFaultProvider{LocalMember: NewLocalMember(s), failPhase: PhaseLR}
			continue
		}
		providers[i] = NewLocalMember(s)
		survivors = append(survivors, s)
	}
	policy := CollusionPolicy{F: 1}
	rep, err := RunAssessmentResilient(providers, cohort.Reference, DefaultConfig(), policy, nil, Resilience{MinQuorum: 2})
	if err != nil {
		t.Fatalf("RunAssessmentResilient: %v", err)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != 2 {
		t.Fatalf("Excluded = %v, want [2]", rep.Excluded)
	}
	want, err := RunDistributed(survivors, cohort.Reference, DefaultConfig(), policy)
	if err != nil {
		t.Fatalf("survivor baseline: %v", err)
	}
	if !rep.Selection.Equal(want.Selection) {
		t.Errorf("degraded selection %v != survivor baseline %v", rep.Selection, want.Selection)
	}
	if rep.Combinations != want.Combinations {
		t.Errorf("combinations = %d, want %d (re-enumerated over survivors)", rep.Combinations, want.Combinations)
	}
}

func TestFailedMembersWalksJoinedErrors(t *testing.T) {
	degr0 := memberErr(0, PhaseSummary, "x: %w", ErrMemberFailed)
	degr2 := memberErr(2, PhaseLR, "y: %w", ErrMemberFailed)
	fatal1 := memberErr(1, PhaseLD, "tampered")
	joined := fmt.Errorf("wrap: %w", errors.Join(degr0, fatal1, degr2))
	got := FailedMembers(joined)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FailedMembers = %v, want [0 2]", got)
	}
	if got := FailedMembers(fatal1); len(got) != 0 {
		t.Fatalf("fatal-only error yielded %v", got)
	}
	if got := FailedMembers(nil); len(got) != 0 {
		t.Fatalf("nil error yielded %v", got)
	}
}
