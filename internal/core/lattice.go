package core

import (
	"errors"
	"fmt"
	"sync"

	"gendpr/internal/combin"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// This file builds the combination lattice: the evaluation structure that
// turns the per-subset phases of collusion-tolerant GenDPR from independent
// from-scratch computations into incremental walks. The subsets of one
// f-block are visited in revolving-door Gray order, where consecutive subsets
// differ by a single exchanged member, so per-subset state — case-count
// aggregates, pooled pair statistics, the merged per-individual bit-matrix —
// updates by one member's delta per step instead of being rebuilt. Results
// still land in the lexicographic slots the report and the checkpoints use:
// every Gray position carries its lexicographic rank.

// latticePlan is the precomputed evaluation order for one assessment: the
// full-membership chain first (slot 0, the canonical anchor), then the Gray
// chains covering every collusion combination the policy demands.
type latticePlan struct {
	g      int
	count  int // total subsets, = len(evaluationSubsets(...))
	chains []latticeChain
}

// latticeChain is a contiguous run of the Gray sequence: a materialized head
// subset plus one (removed, added) exchange per further step. Chains are the
// unit of scheduling — a chain is evaluated by one worker, incrementally, and
// idle workers steal whole unstarted chains.
type latticeChain struct {
	head  []int // first subset, sorted ascending
	slots []int // lexicographic result slot per position; slots[0] is head's
	rems  []int // exchange leaving before position i+1
	adds  []int // exchange entering before position i+1
}

// length returns the number of subsets the chain covers.
func (ch *latticeChain) length() int { return len(ch.slots) }

// walk visits the chain's subsets in order, maintaining the sorted subset
// incrementally. The first position reports rem = add = −1; the slice passed
// to fn is reused between positions.
func (ch *latticeChain) walk(fn func(pos, slot int, subset []int, rem, add int) error) error {
	sub := append([]int(nil), ch.head...)
	if err := fn(0, ch.slots[0], sub, -1, -1); err != nil {
		return err
	}
	for i := range ch.rems {
		applyExchange(sub, ch.rems[i], ch.adds[i])
		if err := fn(i+1, ch.slots[i+1], sub, ch.rems[i], ch.adds[i]); err != nil {
			return err
		}
	}
	return nil
}

// applyExchange replaces rem with add in the sorted subset, keeping it sorted.
func applyExchange(sub []int, rem, add int) {
	i := 0
	for sub[i] != rem {
		i++
	}
	for i+1 < len(sub) && sub[i+1] < add {
		sub[i] = sub[i+1]
		i++
	}
	for i > 0 && sub[i-1] > add {
		sub[i] = sub[i-1]
		i--
	}
	sub[i] = add
}

// buildLatticePlan lays out the evaluation chains for a federation of g
// members under the given policy. chainsPerBlock bounds how many chains each
// f-block is split into: 1 yields maximal incremental reuse (sequential
// mode); the worker count yields enough chains for the stealing scheduler to
// balance. Slot numbering matches evaluationSubsets: slot 0 is the full
// membership, then each f-block's subsets in lexicographic order.
func buildLatticePlan(g int, policy CollusionPolicy, chainsPerBlock int) (*latticePlan, error) {
	if chainsPerBlock < 1 {
		chainsPerBlock = 1
	}
	full := make([]int, g)
	for i := range full {
		full[i] = i
	}
	plan := &latticePlan{
		g:      g,
		count:  1,
		chains: []latticeChain{{head: full, slots: []int{0}}},
	}

	var fs []int
	switch {
	case policy.Conservative:
		for f := 1; f < g; f++ {
			fs = append(fs, f)
		}
	case policy.F > 0:
		fs = []int{policy.F}
	}

	offset := 1
	for _, f := range fs {
		k := g - f
		count64, err := combin.Binomial(g, k)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		count := int(count64)
		nChains := chainsPerBlock
		if nChains > count {
			nChains = count
		}
		// Ceil division keeps chains contiguous and within one of equal.
		chainLen := (count + nChains - 1) / nChains
		var cur *latticeChain
		pos := 0
		err = combin.RevolvingDoor(g, k, func(sub []int, rem, add int) error {
			rank, rerr := combin.LexRank(g, sub)
			if rerr != nil {
				return rerr
			}
			slot := offset + int(rank)
			if pos%chainLen == 0 {
				plan.chains = append(plan.chains, latticeChain{
					head:  append([]int(nil), sub...),
					slots: []int{slot},
				})
				cur = &plan.chains[len(plan.chains)-1]
			} else {
				cur.slots = append(cur.slots, slot)
				cur.rems = append(cur.rems, rem)
				cur.adds = append(cur.adds, add)
			}
			pos++
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		offset += count
		plan.count += count
	}
	return plan, nil
}

// runChains schedules fn over the given chains: sequentially (in order) by
// default, through the work-stealing pool when the configuration enables
// parallel combinations.
func (r *assessmentRun) runChains(chains []latticeChain, fn func(ch *latticeChain) error) error {
	workers := 1
	if r.cfg.ParallelCombinations {
		workers = r.pool.size()
	}
	return r.pool.RunStealing(len(chains), workers, func(i int) error {
		return fn(&chains[i])
	})
}

// chainPairCache is the Phase 2 per-chain pooling cache. The pooled pair
// statistics of a combination decompose into the reference panel's
// contribution plus one contribution per presumed-honest member; along a Gray
// chain consecutive combinations share all but one member, so the cache keeps
// the decomposition per pair and a pooled query is one map lookup plus at
// most k integer adds. Member contributions come from the providers' own
// caches (warmed by the batched survivor-chain prefetch); the chain cache
// exists so the hot LD loop pays the per-member map-and-mutex cost once per
// chain instead of once per combination.
//
// A chain is evaluated by exactly one worker, so the cache needs no locking.
type chainPairCache struct {
	r       *assessmentRun
	entries map[uint64]*chainPairEntry
	// slots is a direct-mapped index over entries keyed by the pair's second
	// column. The LD scan queries each survivor against the nearest retained
	// predecessor, so per combination a column appears in (at most) one pair,
	// and consecutive combinations mostly repeat it: the common case resolves
	// with one array probe instead of a 16-byte-key map lookup, which
	// profiling showed dominating the whole LD phase.
	slots []pairSlot
	bytes int64 // enclave bytes accounted for the entries
}

// pairSlot caches the entry for the pair (a−1, second column); a == 0 marks
// the slot empty.
type pairSlot struct {
	a int32
	e *chainPairEntry
}

type chainPairEntry struct {
	ref       genome.PairStats // reference-panel contribution
	per       []genome.PairStats
	have      []bool
	announced []bool // members already asked to warm this pair this chain
}

func newChainPairCache(r *assessmentRun) *chainPairCache {
	return &chainPairCache{
		r:       r,
		entries: make(map[uint64]*chainPairEntry),
		slots:   make([]pairSlot, len(r.refCounts)),
	}
}

// release frees the enclave memory accounted to the cache; call at chain end.
func (cc *chainPairCache) release() {
	cc.r.free(cc.bytes)
	cc.bytes = 0
}

// entry returns the decomposition entry for a pair, creating (and accounting)
// it on first touch.
func (cc *chainPairCache) entry(a, b int) (*chainPairEntry, error) {
	s := &cc.slots[b]
	if int(s.a) == a+1 {
		return s.e, nil
	}
	key := pairKey(a, b)
	if e, ok := cc.entries[key]; ok {
		s.a, s.e = int32(a+1), e
		return e, nil
	}
	r := cc.r
	g := len(r.members)
	if r.notePair(a, b) {
		// First touch anywhere in the run: account the per-member provider
		// caches this pair will occupy, exactly as the flat path did.
		if err := r.alloc(bytesPerPairStat * int64(g)); err != nil {
			return nil, err
		}
	}
	// The chain's own decomposition entry is additional leader memory, freed
	// when the chain completes.
	n := bytesPerPairStat * int64(g)
	if err := r.alloc(n); err != nil {
		return nil, err
	}
	cc.bytes += n
	e := &chainPairEntry{
		ref:       genome.PairStatsFromCounts(r.refN, r.refCounts[a], r.refCounts[b], r.refCols.PairCount(a, b)),
		per:       make([]genome.PairStats, g),
		have:      make([]bool, g),
		announced: make([]bool, g),
	}
	cc.entries[key] = e
	s.a, s.e = int32(a+1), e
	return e, nil
}

// pooledFunc returns the pooled pair-statistics function for one combination,
// backed by the chain cache. Member contributions are summed in subset order,
// so the pooled values are identical to the flat per-combination aggregation.
func (cc *chainPairCache) pooledFunc(subset []int) PairStatsFunc {
	r := cc.r
	return func(a, b int) (genome.PairStats, error) {
		e, err := cc.entry(a, b)
		if err != nil {
			return genome.PairStats{}, err
		}
		// Fill missing member contributions: almost always a provider-cache
		// hit after the prefetch; cold entries fetch in parallel.
		var missing []int
		for _, i := range subset {
			if e.have[i] {
				continue
			}
			if s, ok := r.members[i].cachedPair(a, b); ok {
				e.per[i], e.have[i] = s, true
				continue
			}
			missing = append(missing, i)
		}
		if len(missing) > 0 {
			errs := make([]error, len(missing))
			parts := make([]genome.PairStats, len(missing))
			var wg sync.WaitGroup
			for slot, i := range missing {
				slot, i := slot, i
				r.pool.Go(&wg, func() {
					s, err := r.members[i].PairStats(a, b)
					if err != nil {
						errs[slot] = memberErr(i, PhaseLD, "pair stats: %w", err)
						return
					}
					parts[slot] = s
				})
			}
			wg.Wait()
			if err := errors.Join(errs...); err != nil {
				return genome.PairStats{}, err
			}
			for slot, i := range missing {
				e.per[i], e.have[i] = parts[slot], true
			}
		}
		pooled := e.ref
		for _, i := range subset {
			pooled = pooled.Add(e.per[i])
		}
		return pooled, nil
	}
}

// prefetchFunc returns the survivor-chain batch hook for one combination:
// announced pairs are warmed into the combination members' provider caches in
// one batched request each — the chain cache picks them up lazily on the next
// pooled query. Unlike the flat path, each pair reaches each member at most
// once per assessment: the entries' announced flags dedupe within the chain
// (consecutive combinations announce heavily-overlapping windows), and the
// run-wide warm masks dedupe across chains, whose survivor windows mostly
// coincide. Re-forwarding either way would make the members' cache maps the
// LD phase's hot path.
func (cc *chainPairCache) prefetchFunc(subset []int) PairBatchFunc {
	r := cc.r
	type cand struct {
		key [2]int
		e   *chainPairEntry
	}
	var cands []cand
	return func(pairs [][2]int) error {
		// First pass, lock-free: per-chain dedup through the announced flags.
		// After the chain's first combination almost every announcement dies
		// here, on a slot-index probe and a handful of flag reads. Global
		// fresh-pair accounting happens exactly once per pair inside entry().
		cands = cands[:0]
		for _, key := range pairs {
			e, err := cc.entry(key[0], key[1])
			if err != nil {
				return err
			}
			for _, i := range subset {
				if !e.have[i] && !e.announced[i] {
					cands = append(cands, cand{key, e})
					break
				}
			}
		}
		if len(cands) == 0 {
			return nil
		}
		// Second pass, one lock: consult and update the run-wide warm masks,
		// forwarding each pair only to members no chain has warmed it for.
		var perMember map[int][][2]int
		r.pairMu.Lock()
		for _, c := range cands {
			pk := pairKey(c.key[0], c.key[1])
			var mask uint64
			if r.pairWarm != nil {
				mask = r.pairWarm[pk]
			}
			for _, i := range subset {
				if c.e.have[i] || c.e.announced[i] {
					continue
				}
				c.e.announced[i] = true
				if mask&(1<<uint(i)) != 0 {
					continue
				}
				mask |= 1 << uint(i)
				if perMember == nil {
					perMember = make(map[int][][2]int, len(subset))
				}
				perMember[i] = append(perMember[i], c.key)
			}
			if r.pairWarm != nil {
				r.pairWarm[pk] = mask
			}
		}
		r.pairMu.Unlock()
		if len(perMember) == 0 {
			return nil
		}
		idx := make([]int, 0, len(perMember))
		for i := range perMember {
			idx = append(idx, i)
		}
		errs := make([]error, len(idx))
		var wg sync.WaitGroup
		for slot, i := range idx {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				if err := r.members[i].Prefetch(perMember[i]); err != nil {
					errs[slot] = memberErr(i, PhaseLD, "survivor-chain prefetch: %w", err)
				}
			})
		}
		wg.Wait()
		return errors.Join(errs...)
	}
}

// patternSet holds the members' genotype bit-patterns for one Phase 3: each
// pattern is fetched (and validated, and accounted) once, the first time any
// evaluation chain needs that member. The underlying provider single-flights
// the fetch, so concurrent chains cannot duplicate member work.
type patternSet struct {
	r     *assessmentRun
	cols  []int
	mu    sync.Mutex
	pats  []*lrtest.BitMatrix
	bytes int64
}

func newPatternSet(r *assessmentRun, cols []int) *patternSet {
	return &patternSet{r: r, cols: cols, pats: make([]*lrtest.BitMatrix, len(r.members))}
}

// release frees the enclave memory held by the fetched patterns; call at
// phase end.
func (ps *patternSet) release() {
	ps.mu.Lock()
	bytes := ps.bytes
	ps.bytes = 0
	ps.mu.Unlock()
	ps.r.freeLR(bytes)
}

// get returns member i's pattern over the phase's columns.
func (ps *patternSet) get(i int) (*lrtest.BitMatrix, error) {
	ps.mu.Lock()
	if p := ps.pats[i]; p != nil {
		ps.mu.Unlock()
		return p, nil
	}
	ps.mu.Unlock()

	r := ps.r
	p, err := r.members[i].LRPattern(ps.cols)
	if err != nil {
		return nil, memberErr(i, PhaseLR, "genotype pattern: %w", err)
	}
	if err := validateLRMatrix(p, r.caseNs[i], len(ps.cols)); err != nil {
		return nil, memberErr(i, PhaseLR, "%w", err)
	}
	if !p.IsPattern() {
		return nil, memberErr(i, PhaseLR, "%w: genotype pattern carries non-zero representatives", ErrInvalidPayload)
	}
	// Patterns are genotype-oriented, so each column's popcount must equal
	// the minor-allele count the member reported in Phase 1 — a flipped bit
	// passes every shape check but not this one.
	if err := validatePatternCounts(p, ps.cols, r.counts[i]); err != nil {
		return nil, memberErr(i, PhaseLR, "%w", err)
	}

	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.pats[i] == nil {
		n := bitLRBytes(r.caseNs[i], int64(len(ps.cols)))
		if err := r.allocLR(n); err != nil {
			return nil, err
		}
		ps.bytes += n
		ps.pats[i] = p
	}
	return ps.pats[i], nil
}
