package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// Provider supplies one federation member's intermediate results to the
// leader. The in-memory LocalMember backs it directly with a genotype shard;
// the federation middleware backs it with encrypted requests to the member's
// enclave. The leader never sees raw genotypes through this interface — only
// the aggregable intermediates the paper allows to leave a GDO.
type Provider interface {
	// Counts returns the member's local minor-allele count vector over the
	// original SNP set (Phase 1's caseLocalCounts).
	Counts() ([]int64, error)
	// CaseN returns the member's local case-population size.
	CaseN() (int64, error)
	// PairStats returns the member's local correlation sufficient
	// statistics for a SNP pair (Phase 2).
	PairStats(a, b int) (genome.PairStats, error)
	// LRMatrix builds the member's local LR-matrix over the given columns
	// (original SNP indices) using the pooled frequencies broadcast by the
	// leader (Phase 3). The matrix travels bit-packed end to end: members
	// build it packed, the wire format ships it packed, and the leader
	// merges and scores it packed.
	LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error)
}

// BatchPairProvider is an optional Provider extension: the leader prefetches
// many pair statistics in one round trip (one request per member per LD
// sweep instead of one per pair), which cuts the protocol's message count by
// orders of magnitude over wide-area links.
type BatchPairProvider interface {
	// PairStatsBatch returns one statistics entry per requested pair, in
	// order.
	PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error)
}

// PatternProvider is an optional Provider extension: the member ships its
// genotype bit-pattern over the retained columns — the frequency-independent
// cell bits of its LR-matrix, with zero representatives. A collusion-tolerant
// Phase 3 evaluates many combinations over the same columns, and each
// combination differs only in its pooled frequency vectors; with the pattern
// in hand the leader derives every combination's member contribution locally
// via Reskin, so each member is contacted once per assessment instead of once
// per combination. Providers that cannot ship patterns fall back to the
// per-combination LRMatrix path.
type PatternProvider interface {
	// LRPattern returns the member's genotype bit-pattern over the given
	// columns (original SNP indices).
	LRPattern(cols []int) (*lrtest.BitMatrix, error)
}

// LocalMember is an in-process Provider over a private genotype shard.
type LocalMember struct {
	shard *genome.Matrix

	viewOnce sync.Once
	cols     *genome.ColumnBits
	counts   []int64
}

var (
	_ Provider          = (*LocalMember)(nil)
	_ BatchPairProvider = (*LocalMember)(nil)
	_ PatternProvider   = (*LocalMember)(nil)
)

// NewLocalMember wraps a genotype shard.
func NewLocalMember(shard *genome.Matrix) *LocalMember {
	return &LocalMember{shard: shard}
}

// view lazily builds the shard's column-major bitset and count vector once:
// with them, each pair-statistics request is a stride-1 AND+popcount instead
// of three cache-hostile row scans — the LD phase asks for thousands.
func (m *LocalMember) view() (*genome.ColumnBits, []int64) {
	m.viewOnce.Do(func() {
		m.cols = m.shard.Transpose()
		counts := make([]int64, m.shard.L())
		for l := range counts {
			counts[l] = m.cols.AlleleCount(l)
		}
		m.counts = counts
	})
	return m.cols, m.counts
}

// Counts implements Provider. The returned slice is the member's cached count
// vector and must be treated as read-only.
func (m *LocalMember) Counts() ([]int64, error) {
	_, counts := m.view()
	return counts, nil
}

// CaseN implements Provider.
func (m *LocalMember) CaseN() (int64, error) {
	return int64(m.shard.N()), nil
}

// PairStats implements Provider.
func (m *LocalMember) PairStats(a, b int) (genome.PairStats, error) {
	if a < 0 || a >= m.shard.L() || b < 0 || b >= m.shard.L() {
		//gendpr:allow(secretflow): the pair indices echo the requester's own query (protocol metadata), not cohort data
		return genome.PairStats{}, fmt.Errorf("core: pair (%d,%d) out of range for %d SNPs", a, b, m.shard.L())
	}
	cols, counts := m.view()
	return genome.PairStatsFromCounts(int64(m.shard.N()), counts[a], counts[b], cols.PairCount(a, b)), nil
}

// PairStatsBatch implements BatchPairProvider.
func (m *LocalMember) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	out := make([]genome.PairStats, len(pairs))
	for i, p := range pairs {
		s, err := m.PairStats(p[0], p[1])
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// LRMatrix implements Provider.
func (m *LocalMember) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	return BuildLRBitMatrix(m.shard, cols, caseFreq, refFreq)
}

// LRPattern implements PatternProvider.
func (m *LocalMember) LRPattern(cols []int) (*lrtest.BitMatrix, error) {
	if err := checkPatternRequest(m.shard.L(), cols); err != nil {
		return nil, err
	}
	p, err := lrtest.BuildBitPattern(m.shard.SelectColumns(cols))
	if err != nil {
		return nil, fmt.Errorf("core: build genotype pattern: %w", err)
	}
	return p, nil
}

// checkPatternRequest validates a pattern request's column list the way
// checkLRRequest validates a full Phase 3 broadcast: members distrust the
// leader symmetrically even when no frequencies travel.
func checkPatternRequest(l int, cols []int) error {
	seen := make(map[int]bool, len(cols))
	for _, c := range cols {
		if c < 0 || c >= l {
			//gendpr:allow(secretflow): the column index echoes the requester's own query (protocol metadata), not cohort data
			return fmt.Errorf("core: column %d out of range for %d SNPs", c, l)
		}
		if seen[c] {
			//gendpr:allow(secretflow): the column index echoes the requester's own query (protocol metadata), not cohort data
			return fmt.Errorf("core: duplicate column %d in pattern request", c)
		}
		seen[c] = true
	}
	return nil
}

// checkLRRequest validates the leader's Phase 3 broadcast against the shard.
// Members distrust the leader symmetrically: out-of-range or duplicate
// columns and non-finite frequencies are rejected before any local genotype
// is touched.
func checkLRRequest(g *genome.Matrix, cols []int, caseFreq, refFreq []float64) (lrtest.LogRatios, error) {
	if len(cols) != len(caseFreq) || len(cols) != len(refFreq) {
		return lrtest.LogRatios{}, fmt.Errorf("core: %d columns vs %d/%d frequencies", len(cols), len(caseFreq), len(refFreq))
	}
	if err := checkPatternRequest(g.L(), cols); err != nil {
		return lrtest.LogRatios{}, err
	}
	if err := validateFrequencies(caseFreq, len(cols)); err != nil {
		return lrtest.LogRatios{}, fmt.Errorf("core: case frequencies: %w", err)
	}
	if err := validateFrequencies(refFreq, len(cols)); err != nil {
		return lrtest.LogRatios{}, fmt.Errorf("core: reference frequencies: %w", err)
	}
	ratios, err := lrtest.NewLogRatios(caseFreq, refFreq)
	if err != nil {
		return lrtest.LogRatios{}, fmt.Errorf("core: log ratios: %w", err)
	}
	return ratios, nil
}

// BuildLRMatrix is the dense member-side Phase 3 computation: restrict the
// local genotypes to the broadcast SNP columns and fill in Equation 1
// contributions using the pooled frequency vectors. The protocol path uses
// the bit-packed BuildLRBitMatrix; the dense form remains for test fixtures
// and equivalence baselines.
func BuildLRMatrix(g *genome.Matrix, cols []int, caseFreq, refFreq []float64) (*lrtest.Matrix, error) {
	ratios, err := checkLRRequest(g, cols, caseFreq, refFreq)
	if err != nil {
		return nil, err
	}
	m, err := lrtest.Build(g.SelectColumns(cols), ratios)
	if err != nil {
		return nil, fmt.Errorf("core: build LR matrix: %w", err)
	}
	return m, nil
}

// BuildLRBitMatrix is BuildLRMatrix without the dense materialization: the
// column-restricted genotypes pack straight into a BitMatrix, one bit per
// cell plus two representatives per column.
func BuildLRBitMatrix(g *genome.Matrix, cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	ratios, err := checkLRRequest(g, cols, caseFreq, refFreq)
	if err != nil {
		return nil, err
	}
	m, err := lrtest.BuildBit(g.SelectColumns(cols), ratios)
	if err != nil {
		return nil, fmt.Errorf("core: build LR matrix: %w", err)
	}
	return m, nil
}

// cachedProvider memoizes member responses so that, as the paper describes,
// each GDO computes and transmits each intermediate result once even when
// the leader evaluates many collusion combinations over it. It is safe for
// concurrent use: the assessment driver queries members (and, in parallel-
// combination mode, combinations) concurrently.
// pairKey packs a column pair into one word. The pair maps are the LD
// phase's hottest data structure — one probe per announced pair per member —
// and an 8-byte key hashes and compares in registers where the [2]int form
// pays a 16-byte hash plus memequal per probe. Column indices are
// non-negative and far below 2³², so the packing is lossless.
func pairKey(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

type cachedProvider struct {
	inner Provider

	mu     sync.Mutex
	counts []int64
	caseN  int64
	loaded bool
	pairs  map[uint64]genome.PairStats

	// Pattern cache: a genotype bit-pattern depends only on the column list,
	// and Phase 3 asks for exactly one column list per assessment, so a single
	// slot keyed by column equality suffices. Guarded by patMu, not mu: the
	// fetch can be a wide-area round trip and must not block the pair-cache
	// fast path.
	patMu   sync.Mutex
	patCols []int
	pattern *lrtest.BitMatrix
}

var _ BatchPairProvider = (*cachedProvider)(nil)

func newCachedProvider(p Provider) *cachedProvider {
	return &cachedProvider{inner: p, pairs: make(map[uint64]genome.PairStats)}
}

// load fetches the summary statistics once; callers must hold c.mu.
func (c *cachedProvider) load() error {
	if c.loaded {
		return nil
	}
	counts, err := c.inner.Counts()
	if err != nil {
		return err
	}
	n, err := c.inner.CaseN()
	if err != nil {
		return err
	}
	c.counts, c.caseN, c.loaded = counts, n, true
	return nil
}

func (c *cachedProvider) Counts() ([]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.load(); err != nil {
		return nil, err
	}
	return c.counts, nil
}

func (c *cachedProvider) CaseN() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.load(); err != nil {
		return 0, err
	}
	return c.caseN, nil
}

func (c *cachedProvider) PairStats(a, b int) (genome.PairStats, error) {
	key := pairKey(a, b)
	c.mu.Lock()
	if s, ok := c.pairs[key]; ok {
		c.mu.Unlock()
		return s, nil
	}
	c.mu.Unlock()
	s, err := c.inner.PairStats(a, b)
	if err != nil {
		return genome.PairStats{}, err
	}
	if err := validatePairStats(s); err != nil {
		//gendpr:allow(secretflow): the pair indices echo the requester's own query (protocol metadata), not cohort data
		return genome.PairStats{}, fmt.Errorf("pair (%d,%d): %w", a, b, err)
	}
	if err := c.pairConsistency(a, b, s); err != nil {
		return genome.PairStats{}, err
	}
	c.mu.Lock()
	c.pairs[key] = s
	c.mu.Unlock()
	return s, nil
}

// pairConsistency cross-checks freshly fetched pair statistics against the
// member's cached summary (when one is loaded): a marginal that contradicts
// the member's own counts is a Byzantine contribution no single-payload
// invariant can catch.
func (c *cachedProvider) pairConsistency(a, b int, s genome.PairStats) error {
	c.mu.Lock()
	loaded, counts, caseN := c.loaded, c.counts, c.caseN
	c.mu.Unlock()
	if !loaded {
		return nil
	}
	return validatePairConsistency(s, a, b, counts, caseN)
}

// Prefetch warms the pair cache with one batched request when the member
// supports batching, and falls back to nothing otherwise (single-pair
// fetches will fill the cache lazily).
func (c *cachedProvider) Prefetch(pairs [][2]int) error {
	batcher, ok := c.inner.(BatchPairProvider)
	if !ok {
		return nil
	}
	c.mu.Lock()
	missing := make([][2]int, 0, len(pairs))
	for _, p := range pairs {
		if _, ok := c.pairs[pairKey(p[0], p[1])]; !ok {
			missing = append(missing, p)
		}
	}
	c.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	stats, err := batcher.PairStatsBatch(missing)
	if err != nil {
		return err
	}
	if len(stats) != len(missing) {
		return fmt.Errorf("core: batch returned %d entries for %d pairs", len(stats), len(missing))
	}
	for i, s := range stats {
		if err := validatePairStats(s); err != nil {
			//gendpr:allow(secretflow): the pair indices echo the requester's own query (protocol metadata), not cohort data
			return fmt.Errorf("pair (%d,%d): %w", missing[i][0], missing[i][1], err)
		}
		if err := c.pairConsistency(missing[i][0], missing[i][1], s); err != nil {
			return err
		}
	}
	c.mu.Lock()
	for i, p := range missing {
		c.pairs[pairKey(p[0], p[1])] = stats[i]
	}
	c.mu.Unlock()
	return nil
}

// PairStatsBatch implements BatchPairProvider by serving from the cache after
// a prefetch. Without it, stacking cached providers — the resilient driver
// wraps once so survivor data replays across restarts, then the assessment
// driver wraps again — would hide the inner provider's batching capability
// and silently downgrade the LD phase to one request per pair.
func (c *cachedProvider) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	if err := c.Prefetch(pairs); err != nil {
		return nil, err
	}
	out := make([]genome.PairStats, len(pairs))
	for i, p := range pairs {
		s, err := c.PairStats(p[0], p[1])
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// cachedPair returns a pair's statistics when they are already cached. The
// LD scan's hot loop asks every member for mostly-prefetched pairs; hitting
// the cache synchronously avoids a goroutine dispatch per member per pair.
func (c *cachedProvider) cachedPair(a, b int) (genome.PairStats, bool) {
	c.mu.Lock()
	s, ok := c.pairs[pairKey(a, b)]
	c.mu.Unlock()
	return s, ok
}

func (c *cachedProvider) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	// LR matrices are combination-specific (the frequency vectors differ),
	// so they are not cached; each is requested exactly once per
	// combination anyway.
	return c.inner.LRMatrix(cols, caseFreq, refFreq)
}

// supportsPatterns reports whether the wrapped provider can ship genotype
// bit-patterns. The probe recurses through nested cachedProviders: the
// resilient driver wraps a member once so survivor data replays across
// restarts, and the assessment driver wraps again — the capability must shine
// through both layers.
func (c *cachedProvider) supportsPatterns() bool {
	switch p := c.inner.(type) {
	case *cachedProvider:
		return p.supportsPatterns()
	case PatternProvider:
		return true
	default:
		return false
	}
}

// LRPattern implements PatternProvider over the single-slot pattern cache.
// The mutex is held across the fetch deliberately: concurrent evaluation
// chains all want the same pattern, and single-flighting the round trip keeps
// the member's work at one pattern build per assessment.
func (c *cachedProvider) LRPattern(cols []int) (*lrtest.BitMatrix, error) {
	p, ok := c.inner.(PatternProvider)
	if !ok {
		return nil, fmt.Errorf("core: provider cannot ship genotype patterns")
	}
	c.patMu.Lock()
	defer c.patMu.Unlock()
	if c.pattern != nil && intsEqual(c.patCols, cols) {
		return c.pattern, nil
	}
	pat, err := p.LRPattern(cols)
	if err != nil {
		return nil, err
	}
	c.patCols = append([]int(nil), cols...)
	c.pattern = pat
	return pat, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedSummary primes the summary cache from a checkpoint, so a resumed run
// never re-contacts the member for Phase 1 inputs. Seeded data was validated
// before the checkpoint was written.
func (c *cachedProvider) seedSummary(counts []int64, caseN int64) {
	c.mu.Lock()
	c.counts, c.caseN, c.loaded = counts, caseN, true
	c.mu.Unlock()
}

// seedPair primes one pair-statistics cache entry from a checkpoint.
func (c *cachedProvider) seedPair(a, b int, s genome.PairStats) {
	c.mu.Lock()
	c.pairs[pairKey(a, b)] = s
	c.mu.Unlock()
}

// snapshotPairs returns the cached pair statistics sorted by (a, b) — the
// deterministic order checkpoints are written in.
func (c *cachedProvider) snapshotPairs() ([][2]int, []genome.PairStats) {
	c.mu.Lock()
	keys := make([][2]int, 0, len(c.pairs))
	for k := range c.pairs {
		keys = append(keys, [2]int{int(k >> 32), int(uint32(k))})
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]genome.PairStats, len(keys))
	c.mu.Lock()
	for i, k := range keys {
		out[i] = c.pairs[pairKey(k[0], k[1])]
	}
	c.mu.Unlock()
	return keys, out
}

// AuditSummary implements SummaryAuditor by forwarding through the cache to
// the wrapped provider — stacked cachedProviders recurse until a real auditor
// (or its absence) is found, so the capability shines through both wrapping
// layers just like batching and patterns do.
func (c *cachedProvider) AuditSummary() ([]int64, int64, error) {
	if a, ok := c.inner.(SummaryAuditor); ok {
		return a.AuditSummary()
	}
	return nil, 0, errAuditUnsupported
}

// rejoin re-establishes an excluded member's session and challenges it to
// stand by the summary it reported before the exclusion. A digest mismatch is
// equivocation: the member changed its story across the gap, and re-admitting
// it would let it fork the assessment.
func (c *cachedProvider) rejoin() error {
	rj, ok := c.inner.(RejoinableProvider)
	if !ok {
		return errRejoinUnsupported
	}
	if err := rj.Rejoin(); err != nil {
		return err
	}
	fresh, caseN, err := c.AuditSummary()
	if errors.Is(err, errAuditUnsupported) {
		return nil
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	loaded, counts, prevN := c.loaded, c.counts, c.caseN
	c.mu.Unlock()
	if !loaded {
		// The member dropped before its summary was cached; the next attempt
		// fetches and validates it from scratch.
		return nil
	}
	prior := DigestSummary(counts, prevN)
	observed := DigestSummary(fresh, caseN)
	if prior != observed {
		return &EquivocationError{Phase: PhaseSummary, Query: "summary", Prior: prior[:], Observed: observed[:]}
	}
	return nil
}
