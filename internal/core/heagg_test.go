package core

import (
	"crypto/rand"
	"math/big"
	"testing"

	"gendpr/internal/paillier"
	"gendpr/internal/secshare"
	"gendpr/internal/stats"
)

// TestMAFPhaseOverHEAggregation demonstrates the paper's Section 5.1 remark
// that GenDPR works with other privacy-preserving aggregation schemes:
// Phase 1 runs over Paillier-encrypted count vectors summed by an untrusted
// aggregator, and selects exactly the SNPs the TEE path selects.
func TestMAFPhaseOverHEAggregation(t *testing.T) {
	cohort := testCohort(t, 60, 120, 71)
	shards := shardsOf(t, cohort, 3)
	cfg := DefaultConfig()

	// TEE path: plaintext aggregation inside the leader enclave.
	vectors := make([][]int64, len(shards))
	var caseN int64
	for i, s := range shards {
		vectors[i] = s.AlleleCounts()
		caseN += int64(s.N())
	}
	plainSum, err := stats.SumCounts(vectors...)
	if err != nil {
		t.Fatal(err)
	}
	refCounts := cohort.Reference.AlleleCounts()
	refN := int64(cohort.Reference.N())
	wantLPrime, err := MAFPhase(plainSum, caseN, refCounts, refN, cfg.MAFCutoff)
	if err != nil {
		t.Fatal(err)
	}

	// HE path: members encrypt, the aggregator sums ciphertexts without
	// ever seeing a plaintext, and only the key holder decrypts the
	// aggregate.
	key, err := paillier.GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	encVectors := make([][]*big.Int, len(vectors))
	for i, v := range vectors {
		encVectors[i], err = key.EncryptVector(rand.Reader, v)
		if err != nil {
			t.Fatal(err)
		}
	}
	encSum, err := key.AggregateVectors(encVectors...)
	if err != nil {
		t.Fatal(err)
	}
	heSum, err := key.DecryptVector(encSum)
	if err != nil {
		t.Fatal(err)
	}
	for l := range plainSum {
		if heSum[l] != plainSum[l] {
			t.Fatalf("SNP %d: HE aggregate %d != plaintext aggregate %d", l, heSum[l], plainSum[l])
		}
	}
	gotLPrime, err := MAFPhase(heSum, caseN, refCounts, refN, cfg.MAFCutoff)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(gotLPrime, wantLPrime) {
		t.Fatalf("HE-backed Phase 1 selected %v, TEE path %v", gotLPrime, wantLPrime)
	}
}

// TestMAFPhaseOverSecretSharing does the same with the SMC-style additive
// secret-sharing substrate: members split count vectors across two
// non-colluding aggregators, each aggregator sums shares locally, and only
// the recombined aggregate feeds Phase 1.
func TestMAFPhaseOverSecretSharing(t *testing.T) {
	cohort := testCohort(t, 60, 120, 73)
	shards := shardsOf(t, cohort, 3)
	cfg := DefaultConfig()

	vectors := make([][]int64, len(shards))
	var caseN int64
	for i, s := range shards {
		vectors[i] = s.AlleleCounts()
		caseN += int64(s.N())
	}
	plainSum, err := stats.SumCounts(vectors...)
	if err != nil {
		t.Fatal(err)
	}
	refCounts := cohort.Reference.AlleleCounts()
	refN := int64(cohort.Reference.N())
	wantLPrime, err := MAFPhase(plainSum, caseN, refCounts, refN, cfg.MAFCutoff)
	if err != nil {
		t.Fatal(err)
	}

	const aggregators = 2
	perAggregator := make([][]secshare.SharedVector, aggregators)
	for _, counts := range vectors {
		views, err := secshare.ShareVector(counts, aggregators, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for i, view := range views {
			perAggregator[i] = append(perAggregator[i], view)
		}
	}
	sums := make([]secshare.SharedVector, aggregators)
	for i, views := range perAggregator {
		sums[i], err = secshare.AddVectors(views...)
		if err != nil {
			t.Fatal(err)
		}
	}
	smcSum, err := secshare.CombineVectors(sums)
	if err != nil {
		t.Fatal(err)
	}
	for l := range plainSum {
		if smcSum[l] != plainSum[l] {
			t.Fatalf("SNP %d: SMC aggregate %d != plaintext %d", l, smcSum[l], plainSum[l])
		}
	}
	gotLPrime, err := MAFPhase(smcSum, caseN, refCounts, refN, cfg.MAFCutoff)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(gotLPrime, wantLPrime) {
		t.Fatalf("SMC-backed Phase 1 selected %v, TEE path %v", gotLPrime, wantLPrime)
	}
}
