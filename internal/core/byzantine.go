package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/wire"
)

// ErrEquivocation marks a member that answered the same query with two
// different payloads — to the original delivery and to a retry, a resumed
// leader, or an audit probe. Honest members are deterministic over a fixed
// cohort, so divergent answers are direct evidence of a Byzantine member (or
// of storage corruption on its side, which must be treated the same way at
// the trust boundary). Like ErrInvalidPayload it is never retried; unlike a
// crash fault the member is permanently barred from rejoining the run.
var ErrEquivocation = errors.New("member equivocated")

// Blame kinds recorded in Report.Blamed and the checkpoint stream.
const (
	// BlameEquivocation: the member answered one query two different ways.
	BlameEquivocation = "equivocation"
	// BlameInvalidPayload: a contribution failed trust-boundary validation.
	BlameInvalidPayload = "invalid-payload"
)

// Blame is one structured misbehavior attribution: which member, during which
// phase, answering which query, and what kind of evidence. For equivocation
// the two conflicting payload digests are preserved so the accusation is
// checkable after the fact; digests are one-way, so the record discloses that
// the answers differed without disclosing the answers.
type Blame struct {
	// Member names the blamed member (its provider name when the run has
	// names, otherwise its original index formatted by the driver).
	Member string
	// Phase is the protocol phase the evidence was collected in.
	Phase string
	// Query identifies the repeated query, or restates the violated
	// invariant for invalid-payload blame.
	Query string
	// Kind is BlameEquivocation or BlameInvalidPayload.
	Kind string
	// Prior and Observed are the SHA-256 digests of the two conflicting
	// payloads (equivocation only; empty for invalid-payload blame).
	Prior, Observed []byte
}

// EquivocationError carries the evidence of one equivocation: the phase, the
// repeated query, and the digests of the two conflicting payloads. The
// message names the broken invariant only — digests and payload values stay
// out of the error string, which travels to logs.
type EquivocationError struct {
	Phase string
	Query string
	// Prior is the digest of the answer recorded first; Observed the digest
	// of the conflicting one.
	Prior, Observed []byte
}

// Error implements error without exposing either digest.
func (e *EquivocationError) Error() string {
	return fmt.Sprintf("%v: query %q answered differently across deliveries in %s", ErrEquivocation, e.Query, e.Phase)
}

// Unwrap lets errors.Is(err, ErrEquivocation) classify the failure.
func (e *EquivocationError) Unwrap() error { return ErrEquivocation }

// DigestSummary computes the canonical SHA-256 digest of a member's Phase 1
// summary. The pre-image is the federation wire encoding of a counts reply
// (population, then the length-prefixed count vector, fixed-width
// big-endian), so the digest of a checkpointed or cached summary compares
// byte-for-byte against the digest of a live reply payload — the key the
// leader's equivocation ledger is built on.
//
//gendpr:declassifier(release): a SHA-256 digest is preimage-resistant commitment evidence — it identifies WHICH answer a member gave without revealing the answer, and blame records must be publishable
func DigestSummary(counts []int64, caseN int64) [sha256.Size]byte {
	e := wire.NewEncoder(16 + 8*len(counts))
	e.Int64(caseN)
	e.Int64s(counts)
	return sha256.Sum256(e.Bytes())
}

// SummaryAuditor is implemented by providers that can re-fetch the member's
// Phase 1 summary from the authoritative source, bypassing every cache. The
// resumed or rejoining path uses it to challenge a member to stand by the
// summary it reported earlier: an honest member reproduces it bit-for-bit, an
// equivocator is caught by the digest comparison.
type SummaryAuditor interface {
	AuditSummary() (counts []int64, caseN int64, err error)
}

// RejoinableProvider is implemented by providers that can re-establish a
// member's session after the member was excluded — the federation's remote
// provider redials and re-attests. A successful Rejoin only restores
// connectivity; re-admission additionally requires the summary audit to pass.
type RejoinableProvider interface {
	Rejoin() error
}

// errAuditUnsupported marks a provider chain with no SummaryAuditor at the
// bottom (the leader's own LocalMember shard, or plain in-process providers).
// Audit passes skip such members: they are inside the leader's trust domain.
var errAuditUnsupported = errors.New("core: provider does not support summary audits")

// errRejoinUnsupported marks a provider chain that cannot re-establish a
// session; such members stay excluded once dropped.
var errRejoinUnsupported = errors.New("core: provider does not support rejoining")

// ByzantineMode selects which semantic fault NewByzantineProvider injects.
// Every mode produces a payload that is well-formed at the codec layer — the
// faults are semantic, detectable only by the leader's trust-boundary
// validation, cross-payload plausibility checks, or the equivocation ledger.
type ByzantineMode int

const (
	// ByzantineCountsOverflow reports a count exceeding the member's own
	// population. Caught immediately by validateCounts.
	ByzantineCountsOverflow ByzantineMode = iota
	// ByzantinePairSkew perturbs a pair-statistics marginal while keeping
	// every single-payload invariant intact. Caught only by the
	// cross-payload consistency check against the member's reported counts.
	ByzantinePairSkew
	// ByzantinePatternFlip flips one genotype bit in the Phase 3 pattern.
	// Caught only by the column popcount check against the reported counts.
	ByzantinePatternFlip
	// ByzantineEquivocate answers summary queries honestly until the
	// trigger, then reports a different — but internally valid — summary.
	// Caught only by the equivocation ledger on a retry or audit probe.
	ByzantineEquivocate
)

// String names the mode for logs and soak-failure seeds.
func (m ByzantineMode) String() string {
	switch m {
	case ByzantineCountsOverflow:
		return "counts-overflow"
	case ByzantinePairSkew:
		return "pair-skew"
	case ByzantinePatternFlip:
		return "pattern-flip"
	case ByzantineEquivocate:
		return "equivocate"
	default:
		return fmt.Sprintf("byzantine-mode(%d)", int(m))
	}
}

// ByzantineProvider wraps a Provider and perturbs its answers from the Nth
// call of the targeted method onward — the semantic twin of the transport
// layer's FaultCorrupt, injecting faults that survive authentication because
// the member itself signs them. The perturbation persists once triggered:
// a Byzantine member that reverted to honesty after one bad answer would
// evade audit probes, and the detection machinery must not depend on the
// adversary being that cooperative.
type ByzantineProvider struct {
	inner Provider
	mode  ByzantineMode
	n     int

	mu    sync.Mutex
	calls map[string]int
}

// NewByzantineProvider wraps inner so the mode's fault fires from the nth
// call (1-based) of the targeted method onward. n < 1 is treated as 1.
func NewByzantineProvider(inner Provider, mode ByzantineMode, n int) *ByzantineProvider {
	if n < 1 {
		n = 1
	}
	return &ByzantineProvider{inner: inner, mode: mode, n: n, calls: make(map[string]int)}
}

// triggered counts one call of method and reports whether the fault is live.
func (b *ByzantineProvider) triggered(method string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls[method]++
	return b.calls[method] >= b.n
}

// Counts implements Provider, perturbing the summary for the overflow and
// equivocation modes.
func (b *ByzantineProvider) Counts() ([]int64, error) {
	counts, err := b.inner.Counts()
	if err != nil {
		return nil, err
	}
	switch b.mode {
	case ByzantineCountsOverflow:
		if b.triggered("counts") {
			caseN, err := b.inner.CaseN()
			if err != nil {
				return nil, err
			}
			out := append([]int64(nil), counts...)
			if len(out) > 0 {
				out[0] = caseN + 1
			}
			return out, nil
		}
	case ByzantineEquivocate:
		if b.triggered("counts") {
			caseN, err := b.inner.CaseN()
			if err != nil {
				return nil, err
			}
			return equivocateCounts(counts, caseN), nil
		}
	}
	return counts, nil
}

// equivocateCounts returns a perturbed copy that still satisfies every
// single-payload invariant (0 <= count <= caseN), so only the digest ledger
// can tell it apart from an honest answer.
func equivocateCounts(counts []int64, caseN int64) []int64 {
	out := append([]int64(nil), counts...)
	for i, c := range out {
		if c > 0 {
			out[i] = c - 1
			return out
		}
		if c < caseN {
			out[i] = c + 1
			return out
		}
	}
	return out
}

// CaseN implements Provider.
func (b *ByzantineProvider) CaseN() (int64, error) { return b.inner.CaseN() }

// PairStats implements Provider, perturbing a marginal in pair-skew mode.
func (b *ByzantineProvider) PairStats(a, c int) (genome.PairStats, error) {
	s, err := b.inner.PairStats(a, c)
	if err != nil {
		return genome.PairStats{}, err
	}
	if b.mode == ByzantinePairSkew && b.triggered("pair") {
		return skewPairStats(s), nil
	}
	return s, nil
}

// PairStatsBatch implements BatchPairProvider by routing every pair through
// PairStats, so the per-call trigger and the perturbation apply identically
// whether the leader batches or not.
func (b *ByzantineProvider) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	out := make([]genome.PairStats, len(pairs))
	for i, p := range pairs {
		s, err := b.PairStats(p[0], p[1])
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// skewPairStats nudges one marginal while preserving every invariant
// validatePairStats checks (squares track sums, joint count stays inside its
// bounds), so the fault is invisible without the member's own counts.
func skewPairStats(s genome.PairStats) genome.PairStats {
	switch {
	case s.SumX > s.SumXY:
		s.SumX--
	case s.SumX < s.N && s.SumX+s.SumY-s.N < s.SumXY:
		s.SumX++
	case s.SumY > s.SumXY:
		s.SumY--
	case s.SumY < s.N && s.SumX+s.SumY-s.N < s.SumXY:
		s.SumY++
	}
	s.SumXX, s.SumYY = s.SumX, s.SumY
	return s
}

// LRMatrix implements Provider, flipping one cell in pattern-flip mode. The
// inner provider builds a fresh matrix per call, so the mutation never aliases
// honest state.
func (b *ByzantineProvider) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	m, err := b.inner.LRMatrix(cols, caseFreq, refFreq)
	if err != nil {
		return nil, err
	}
	if b.mode == ByzantinePatternFlip && b.triggered("lr") && m.Rows() > 0 && m.Cols() > 0 {
		m.FlipBit(0, 0)
	}
	return m, nil
}

// LRPattern implements PatternProvider when the inner provider does.
func (b *ByzantineProvider) LRPattern(cols []int) (*lrtest.BitMatrix, error) {
	p, ok := b.inner.(PatternProvider)
	if !ok {
		return nil, fmt.Errorf("core: provider cannot ship genotype patterns")
	}
	m, err := p.LRPattern(cols)
	if err != nil {
		return nil, err
	}
	if b.mode == ByzantinePatternFlip && b.triggered("lr") && m.Rows() > 0 && m.Cols() > 0 {
		m.FlipBit(0, 0)
	}
	return m, nil
}

// Rejoin forwards to the inner provider so an excluded Byzantine member can
// attempt re-admission — the rejoin audit is what must catch it.
func (b *ByzantineProvider) Rejoin() error {
	if rj, ok := b.inner.(RejoinableProvider); ok {
		return rj.Rejoin()
	}
	return errRejoinUnsupported
}

// AuditSummary forwards to the inner provider's auditor when present, and
// otherwise answers the audit itself via Counts/CaseN — through the Byzantine
// perturbation, so an equivocating wrapper is auditable in-process too.
func (b *ByzantineProvider) AuditSummary() ([]int64, int64, error) {
	if a, ok := b.inner.(SummaryAuditor); ok {
		if b.mode != ByzantineEquivocate {
			return a.AuditSummary()
		}
	}
	counts, err := b.Counts()
	if err != nil {
		return nil, 0, err
	}
	caseN, err := b.CaseN()
	if err != nil {
		return nil, 0, err
	}
	return counts, caseN, nil
}

var (
	_ Provider          = (*ByzantineProvider)(nil)
	_ BatchPairProvider = (*ByzantineProvider)(nil)
	_ PatternProvider   = (*ByzantineProvider)(nil)
	_ SummaryAuditor    = (*ByzantineProvider)(nil)
)
