package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"gendpr/internal/checkpoint"
)

// AssessmentOptions extends RunAssessment with cancellation and durability.
// The zero value reproduces the base protocol exactly: no context checks, no
// checkpoint reads or writes.
type AssessmentOptions struct {
	// Context, when non-nil, cancels the assessment at the next phase
	// boundary. The error returned is ctx.Err().
	Context context.Context
	// ProviderNames are stable identity names, aligned with the member
	// slice. Checkpoints index per-provider state by name, not slot, so a
	// re-elected leader that enumerates providers in a different order can
	// still claim them. Required whenever Checkpoints is set.
	ProviderNames []string
	// Checkpoints, when non-nil, persists phase boundaries to the store and
	// seeds the run from a compatible existing checkpoint.
	Checkpoints checkpoint.Store
	// RetainCheckpoints keeps the final snapshot in the store after a
	// successful run instead of clearing it. A later run with the same
	// fingerprint then replays every completed phase from the snapshot — the
	// reuse contract of the long-lived assessment service, where identical
	// requests should not re-drive the federation. One-shot runs leave this
	// false so a finished assessment cannot be "resumed".
	RetainCheckpoints bool

	// blamed carries the resilient runner's accumulated blame records into
	// the attempt so they persist at every checkpoint boundary and survive a
	// leader failover.
	blamed []Blame
	// auditSummaries challenges every auditable member to reproduce its
	// checkpointed summary when the run resumes from a seed — the resumed
	// leader's equivocation probe.
	auditSummaries bool
}

// Fingerprint binds a checkpoint to one run shape: every input that changes
// the assessment's output — configuration cutoffs and LR parameters, the
// collusion policy, the provider name set, and the reference dimensions —
// contributes to the hash. ParallelCombinations is deliberately excluded (it
// changes scheduling, never results), so a sequential leader can resume a
// parallel one's checkpoint.
func Fingerprint(cfg Config, policy CollusionPolicy, names []string, refN, refL int) []byte {
	h := sha256.New()
	writeF := func(f float64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	writeI := func(v int64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	h.Write([]byte("gendpr-assessment-v1\x00"))
	writeF(cfg.MAFCutoff)
	writeF(cfg.LDCutoff)
	writeF(cfg.LR.Alpha)
	writeF(cfg.LR.PowerThreshold)
	writeI(boolBit(cfg.LR.Oblivious))
	writeI(boolBit(cfg.PaperChiSquare))
	writeI(int64(policy.F))
	writeI(boolBit(policy.Conservative))
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	writeI(int64(len(sorted)))
	for _, n := range sorted {
		writeI(int64(len(n)))
		h.Write([]byte(n))
	}
	writeI(int64(refN))
	writeI(int64(refL))
	return h.Sum(nil)
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ckState is the run's checkpointing harness: the loaded seed (remapped onto
// the current provider order) and the state under construction.
type ckState struct {
	store checkpoint.Store
	names []string
	fp    []byte
	// retain keeps the final snapshot after success (see
	// AssessmentOptions.RetainCheckpoints).
	retain bool

	// seed is the remapped prior state; nil when starting fresh.
	seed *checkpoint.State
	// seedCombos maps a combination's sorted-name key to its completed
	// record in the seed.
	seedCombos map[string]checkpoint.Combination
	// oldCombos maps combination indices of the current enumeration onto the
	// seed's per-combination arrays (PerMAF/PerLD are positional).
	oldCombos []int
	// recovered reports that the store fell back past a corrupt or missing
	// current snapshot to serve the adopted seed.
	recovered bool
	// seedBlames are the blame records the adopted seed carried: quarantines
	// from before the failover, which the resumed run must not forget.
	seedBlames []Blame

	mu sync.Mutex
	ck checkpoint.State
}

// nameKey canonicalizes a provider name set ("\x00" never appears in ids).
func nameKey(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

// newCkState loads and remaps a compatible checkpoint. Incompatible or
// corrupt checkpoints are ignored (the run starts fresh and overwrites them);
// only store I/O that cannot be distinguished from data loss is an error.
func newCkState(store checkpoint.Store, names []string, fp []byte, g int, policy CollusionPolicy) (*ckState, error) {
	cs := &ckState{store: store, names: names, fp: fp}
	cs.ck = checkpoint.State{Fingerprint: fp, Providers: names}

	prior, err := store.Load()
	if errors.Is(err, checkpoint.ErrNotFound) || errors.Is(err, checkpoint.ErrCorrupt) || errors.Is(err, checkpoint.ErrVersion) {
		return cs, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	if !bytes.Equal(prior.Fingerprint, fp) {
		// A different run shape (changed config, different survivor set
		// after an exclusion restart): not resumable.
		return cs, nil
	}
	remapped, ok := remapState(prior, names, g, policy)
	if !ok {
		return cs, nil
	}
	cs.seed = remapped
	cs.seedCombos = make(map[string]checkpoint.Combination, len(remapped.Combinations))
	for _, c := range remapped.Combinations {
		cs.seedCombos[nameKey(c.Members)] = c
	}
	cs.seedBlames = blamesFromRecords(remapped.Blamed)
	// Only a run that actually adopts the seed reports the store's fallback:
	// the recovery marker describes how *this* resume obtained its state.
	if rec, ok := store.(checkpoint.Recoverer); ok {
		if _, r := rec.RecoveredCorruption(); r {
			cs.recovered = true
		}
	}
	return cs, nil
}

// blameRecords converts runner blame to the checkpoint codec's record type.
func blameRecords(bs []Blame) []checkpoint.BlameRecord {
	if len(bs) == 0 {
		return nil
	}
	out := make([]checkpoint.BlameRecord, len(bs))
	for i, b := range bs {
		out[i] = checkpoint.BlameRecord{Member: b.Member, Phase: b.Phase, Query: b.Query, Kind: b.Kind, Prior: b.Prior, Observed: b.Observed}
	}
	return out
}

// blamesFromRecords is the inverse of blameRecords.
func blamesFromRecords(rs []checkpoint.BlameRecord) []Blame {
	if len(rs) == 0 {
		return nil
	}
	out := make([]Blame, len(rs))
	for i, r := range rs {
		out[i] = Blame{Member: r.Member, Phase: r.Phase, Query: r.Query, Kind: r.Kind, Prior: r.Prior, Observed: r.Observed}
	}
	return out
}

// adoptBlames merges the runner-carried and seed-carried blame records into
// the state under construction, so every subsequent boundary save persists
// the full quarantine history across leader failovers.
func (cs *ckState) adoptBlames(blamed []Blame) {
	if cs == nil {
		return
	}
	merged := mergeBlames(append([]Blame(nil), cs.seedBlames...), blamed)
	cs.mu.Lock()
	cs.ck.Blamed = blameRecords(merged)
	cs.mu.Unlock()
}

// allBlames returns the blame records the run carries (seed and current).
func (cs *ckState) allBlames() []Blame {
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return blamesFromRecords(cs.ck.Blamed)
}

// recoveredCorruption reports whether the adopted seed came from a storage
// fallback.
func (cs *ckState) recoveredCorruption() bool { return cs != nil && cs.recovered }

// remapState reorders a prior state's per-provider arrays onto the current
// provider order (matching by identity name) and its per-combination arrays
// onto the current combination enumeration. The fingerprint already
// guarantees the name sets are equal.
func remapState(prior *checkpoint.State, names []string, g int, policy CollusionPolicy) (*checkpoint.State, bool) {
	if len(prior.Providers) != g || len(names) != g {
		return nil, false
	}
	oldSlot := make(map[string]int, g)
	for i, n := range prior.Providers {
		oldSlot[n] = i
	}
	perm := make([]int, g) // perm[newSlot] = oldSlot
	for i, n := range names {
		j, ok := oldSlot[n]
		if !ok {
			return nil, false
		}
		perm[i] = j
	}

	out := &checkpoint.State{
		Fingerprint: prior.Fingerprint,
		Providers:   names,
		Stage:       prior.Stage,
		LPrime:      prior.LPrime,
		LDouble:     prior.LDouble,
	}
	out.Counts = make([][]int64, g)
	out.CaseNs = make([]int64, g)
	for i := range names {
		if perm[i] >= len(prior.Counts) {
			return nil, false
		}
		out.Counts[i] = prior.Counts[perm[i]]
		out.CaseNs[i] = prior.CaseNs[perm[i]]
	}
	if len(prior.Pairs) == g {
		out.Pairs = make([][]checkpoint.PairRecord, g)
		for i := range names {
			out.Pairs[i] = prior.Pairs[perm[i]]
		}
	}

	// Per-combination selections are positional in the saving leader's
	// enumeration; translate via the name sets both enumerations define.
	oldSubsets, err := evaluationSubsets(g, policy)
	if err != nil {
		return nil, false
	}
	oldByKey := make(map[string]int, len(oldSubsets))
	for c, subset := range oldSubsets {
		key := nameKey(subsetNames(prior.Providers, subset))
		oldByKey[key] = c
	}
	newSubsets, err := evaluationSubsets(g, policy)
	if err != nil {
		return nil, false
	}
	mapPer := func(per [][]int) ([][]int, bool) {
		if len(per) == 0 {
			return nil, true
		}
		if len(per) != len(oldSubsets) {
			return nil, false
		}
		out := make([][]int, len(newSubsets))
		for c, subset := range newSubsets {
			oc, ok := oldByKey[nameKey(subsetNames(names, subset))]
			if !ok {
				return nil, false
			}
			out[c] = per[oc]
		}
		return out, true
	}
	var ok bool
	if out.PerMAF, ok = mapPer(prior.PerMAF); !ok {
		return nil, false
	}
	if out.PerLD, ok = mapPer(prior.PerLD); !ok {
		return nil, false
	}
	out.Combinations = prior.Combinations
	// Blame records are keyed by member name, not slot — no remap needed.
	out.Blamed = prior.Blamed
	return out, true
}

func subsetNames(names []string, subset []int) []string {
	out := make([]string, len(subset))
	for i, s := range subset {
		if s < 0 || s >= len(names) {
			return nil
		}
		out[i] = names[s]
	}
	return out
}

// recordSummaries records the collected summaries into the state under
// construction (no persist: the first boundary save is after Phase 1).
func (cs *ckState) recordSummaries(counts [][]int64, caseNs []int64) {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	cs.ck.Counts = counts
	cs.ck.CaseNs = caseNs
	cs.mu.Unlock()
}

// recordMAF records the Phase 1 boundary; persist is false when the phase
// was replayed from the seed (the prior checkpoint already covers it).
func (cs *ckState) recordMAF(lPrime []int, perMAF [][]int, persist bool) error {
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ck.Stage = checkpoint.StageMAF
	cs.ck.LPrime = lPrime
	cs.ck.PerMAF = perMAF
	if !persist {
		return nil
	}
	return cs.saveLocked()
}

// recordLD records the Phase 2 boundary together with each provider's
// aggregated pair statistics.
func (cs *ckState) recordLD(lDouble []int, perLD [][]int, members []*cachedProvider, persist bool) error {
	if cs == nil {
		return nil
	}
	pairs := make([][]checkpoint.PairRecord, len(members))
	for i, m := range members {
		keys, stats := m.snapshotPairs()
		recs := make([]checkpoint.PairRecord, len(keys))
		for j, k := range keys {
			recs[j] = checkpoint.PairRecord{A: k[0], B: k[1], Stats: stats[j]}
		}
		pairs[i] = recs
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ck.Stage = checkpoint.StageLD
	cs.ck.LDouble = lDouble
	cs.ck.PerLD = perLD
	cs.ck.Pairs = pairs
	if !persist {
		return nil
	}
	return cs.saveLocked()
}

// recordCombination records one completed Phase 3 combination. order is the
// canonical admission order, retained for the full-membership combination
// only (every other combination shares it). Only this derived ranking is
// persisted — never the merged LR-matrix it came from.
func (cs *ckState) recordCombination(members []string, safe []int, power float64, order []int, persist bool) error {
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ck.Combinations = append(cs.ck.Combinations, checkpoint.Combination{
		Members: members,
		Safe:    safe,
		Power:   power,
		Order:   order,
	})
	if !persist {
		return nil
	}
	return cs.saveLocked()
}

// saveLocked persists the state under construction; callers hold cs.mu.
// A failed save is run-fatal: continuing would break the durability the
// caller asked for silently.
func (cs *ckState) saveLocked() error {
	if err := cs.store.Save(&cs.ck); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	return nil
}

// finish clears the store after a successful run so a completed assessment
// cannot be "resumed". Clear errors are ignored: the result is already
// computed and correct, and a stale checkpoint is fingerprint-guarded anyway.
// Under RetainCheckpoints the snapshot is deliberately kept instead, so an
// identical later request replays from it.
func (cs *ckState) finish() {
	if cs == nil || cs.retain {
		return
	}
	_ = cs.store.Clear()
}

// seededSummaries returns the seed's summary data, if any.
func (cs *ckState) seededSummaries() ([][]int64, []int64, bool) {
	if cs == nil || cs.seed == nil {
		return nil, nil, false
	}
	return cs.seed.Counts, cs.seed.CaseNs, true
}

// seededMAF returns the seed's Phase 1 outputs when the stage covers them.
func (cs *ckState) seededMAF() ([]int, [][]int, bool) {
	if cs == nil || cs.seed == nil || cs.seed.Stage < checkpoint.StageMAF {
		return nil, nil, false
	}
	return cs.seed.LPrime, cs.seed.PerMAF, true
}

// seededLD returns the seed's Phase 2 outputs when the stage covers them.
func (cs *ckState) seededLD() ([]int, [][]int, [][]checkpoint.PairRecord, bool) {
	if cs == nil || cs.seed == nil || cs.seed.Stage < checkpoint.StageLD {
		return nil, nil, nil, false
	}
	return cs.seed.LDouble, cs.seed.PerLD, cs.seed.Pairs, true
}

// seededCombination returns a completed Phase 3 record for the given member
// name set, if the seed holds one.
func (cs *ckState) seededCombination(members []string) (checkpoint.Combination, bool) {
	if cs == nil || cs.seedCombos == nil {
		return checkpoint.Combination{}, false
	}
	c, ok := cs.seedCombos[nameKey(members)]
	return c, ok
}

// seedPairCaches primes the providers' pair caches from checkpointed records
// so residual LD queries replay from memory.
func seedPairCaches(members []*cachedProvider, pairs [][]checkpoint.PairRecord) {
	if len(pairs) != len(members) {
		return
	}
	for i, recs := range pairs {
		for _, r := range recs {
			if validatePairStats(r.Stats) != nil {
				continue
			}
			members[i].seedPair(r.A, r.B, r.Stats)
		}
	}
}

// seedSummaryCaches primes the providers' summary caches from a checkpoint.
func seedSummaryCaches(members []*cachedProvider, counts [][]int64, caseNs []int64) {
	for i, m := range members {
		m.seedSummary(counts[i], caseNs[i])
	}
}
