package core

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gendpr/internal/enclave"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// testCohort builds a deterministic small cohort.
func testCohort(t testing.TB, snps, caseN int, seed int64) *genome.Cohort {
	t.Helper()
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(snps, caseN, seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return cohort
}

func shardsOf(t testing.TB, cohort *genome.Cohort, g int) []*genome.Matrix {
	t.Helper()
	shards, err := cohort.Partition(g)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return shards
}

func TestDistributedMatchesCentralized(t *testing.T) {
	cohort := testCohort(t, 150, 360, 17)
	cfg := DefaultConfig()

	central, err := RunCentralized(cohort, cfg)
	if err != nil {
		t.Fatalf("RunCentralized: %v", err)
	}
	if len(central.Selection.AfterMAF) == 0 {
		t.Fatal("degenerate test data: nothing survived MAF")
	}
	if len(central.Selection.AfterLD) >= len(central.Selection.AfterMAF) {
		t.Fatal("degenerate test data: LD phase pruned nothing")
	}

	for _, g := range []int{2, 3, 5, 7} {
		dist, err := RunDistributed(shardsOf(t, cohort, g), cohort.Reference, cfg, CollusionPolicy{})
		if err != nil {
			t.Fatalf("RunDistributed g=%d: %v", g, err)
		}
		if !dist.Selection.Equal(central.Selection) {
			t.Errorf("g=%d: GenDPR %v != centralized %v (Table 4 property violated)",
				g, dist.Selection, central.Selection)
		}
	}
}

func TestDistributedSafeSubsetChain(t *testing.T) {
	cohort := testCohort(t, 120, 300, 23)
	rep, err := RunDistributed(shardsOf(t, cohort, 3), cohort.Reference, DefaultConfig(), CollusionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	sel := rep.Selection
	assertSubset(t, sel.AfterLD, sel.AfterMAF, "L'' ⊆ L'")
	assertSubset(t, sel.Safe, sel.AfterLD, "L_safe ⊆ L''")
	if sel.Power >= DefaultConfig().LR.PowerThreshold {
		t.Errorf("released power %v above threshold", sel.Power)
	}
	if rep.Combinations != 1 {
		t.Errorf("combinations=%d, want 1 without collusion tolerance", rep.Combinations)
	}
	if rep.Timings.Total() <= 0 {
		t.Error("timings not recorded")
	}
}

func assertSubset(t *testing.T, sub, super []int, label string) {
	t.Helper()
	in := make(map[int]bool, len(super))
	for _, v := range super {
		in[v] = true
	}
	for _, v := range sub {
		if !in[v] {
			t.Fatalf("%s violated: %d not in superset", label, v)
		}
	}
}

func TestCollusionToleranceShrinksRelease(t *testing.T) {
	cohort := testCohort(t, 140, 420, 31)
	shards := shardsOf(t, cohort, 3)
	cfg := DefaultConfig()

	base, err := RunDistributed(shards, cohort.Reference, cfg, CollusionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	tolerant, err := RunDistributed(shards, cohort.Reference, cfg, CollusionPolicy{F: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The tolerant MAF survivors are an intersection that includes the
	// full-membership evaluation, so they nest inside the base run's.
	// Later phases do not nest across runs: the tolerant LD scan walks a
	// different (smaller) L', which changes the greedy adjacency chain, and
	// the LR-test then evaluates a different column set. Within the run the
	// funnel chain always holds.
	assertSubset(t, tolerant.Selection.AfterMAF, base.Selection.AfterMAF, "tolerant MAF ⊆ base MAF")
	assertSubset(t, tolerant.Selection.AfterLD, tolerant.Selection.AfterMAF, "tolerant LD ⊆ tolerant MAF")
	assertSubset(t, tolerant.Selection.Safe, tolerant.Selection.AfterLD, "tolerant safe ⊆ tolerant LD")
	if tolerant.Combinations != 1+3 { // full set + C(3,1)
		t.Errorf("combinations=%d, want 4", tolerant.Combinations)
	}
	if len(tolerant.PerCombination) != tolerant.Combinations {
		t.Errorf("per-combination records %d, want %d", len(tolerant.PerCombination), tolerant.Combinations)
	}
	// The intersected result must be contained in every combination's list.
	for c, sel := range tolerant.PerCombination {
		assertSubset(t, tolerant.Selection.Safe, sel.Safe, "intersection ⊆ combination "+string(rune('0'+c)))
	}
}

func TestConservativeMode(t *testing.T) {
	cohort := testCohort(t, 100, 300, 37)
	shards := shardsOf(t, cohort, 3)
	rep, err := RunDistributed(shards, cohort.Reference, DefaultConfig(), CollusionPolicy{Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	// 1 (full) + C(3,2) + C(3,1) = 1 + 3 + 3.
	if rep.Combinations != 7 {
		t.Errorf("combinations=%d, want 7", rep.Combinations)
	}
	fixed, err := RunDistributed(shards, cohort.Reference, DefaultConfig(), CollusionPolicy{F: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Conservative mode evaluates a superset of f=1's combinations, so its
	// Phase 1 intersection nests inside f=1's (later phases walk different
	// survivor chains and need not nest).
	assertSubset(t, rep.Selection.AfterMAF, fixed.Selection.AfterMAF, "conservative MAF ⊆ f=1 MAF")
}

func TestObliviousMemberMatchesLocalMember(t *testing.T) {
	cohort := testCohort(t, 90, 240, 67)
	shards := shardsOf(t, cohort, 3)

	plainProviders := make([]Provider, len(shards))
	oblivProviders := make([]Provider, len(shards))
	for i, s := range shards {
		plainProviders[i] = NewLocalMember(s)
		om, err := NewObliviousMember(s, rand.New(rand.NewSource(int64(i)+1)))
		if err != nil {
			t.Fatal(err)
		}
		oblivProviders[i] = om
	}
	plain, err := RunAssessment(plainProviders, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	obliv, err := RunAssessment(oblivProviders, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Selection.Equal(obliv.Selection) {
		t.Errorf("oblivious members selected %v, plain members %v", obliv.Selection, plain.Selection)
	}
}

func TestObliviousMemberPrimitives(t *testing.T) {
	cohort := testCohort(t, 40, 70, 69)
	member, err := NewObliviousMember(cohort.Case, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := cohort.Case.AlleleCounts()
	gotCounts, err := member.Counts()
	if err != nil {
		t.Fatal(err)
	}
	for l := range wantCounts {
		if gotCounts[l] != wantCounts[l] {
			t.Fatalf("column %d: ORAM count %d, direct %d", l, gotCounts[l], wantCounts[l])
		}
	}
	want := cohort.Case.PairStats(3, 17)
	got, err := member.PairStats(3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ORAM pair stats %+v, direct %+v", got, want)
	}
	if _, err := member.PairStats(0, 40); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := NewObliviousMember(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil shard accepted")
	}
}

func TestParallelCombinationsSameSelection(t *testing.T) {
	cohort := testCohort(t, 120, 360, 61)
	shards := shardsOf(t, cohort, 4)
	seqCfg := DefaultConfig()
	parCfg := DefaultConfig()
	parCfg.ParallelCombinations = true
	for _, policy := range []CollusionPolicy{{F: 2}, {Conservative: true}} {
		seq, err := RunDistributed(shards, cohort.Reference, seqCfg, policy)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunDistributed(shards, cohort.Reference, parCfg, policy)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Selection.Equal(par.Selection) {
			t.Errorf("policy %+v: parallel %v != sequential %v", policy, par.Selection, seq.Selection)
		}
		if len(seq.PerCombination) != len(par.PerCombination) {
			t.Fatalf("combination counts differ")
		}
		for c := range seq.PerCombination {
			if !seq.PerCombination[c].Equal(par.PerCombination[c]) {
				t.Errorf("combination %d differs between modes", c)
			}
		}
	}
}

func TestNaiveDivergesFromCentralized(t *testing.T) {
	cohort := testCohort(t, 150, 360, 17)
	cfg := DefaultConfig()
	central, err := RunCentralized(cohort, cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunNaive(shardsOf(t, cohort, 3), cohort.Reference, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MAF uses aggregated counts: identical (as the paper observes).
	if !equalInts(naive.Selection.AfterMAF, central.Selection.AfterMAF) {
		t.Error("naive MAF phase must match the centralized selection")
	}
	// LD/LR run on local views: the selection differs for this seed
	// (verified stable — the paper's Table 4 shows the same divergence).
	if equalInts(naive.Selection.AfterLD, central.Selection.AfterLD) &&
		equalInts(naive.Selection.Safe, central.Selection.Safe) {
		t.Error("naive baseline unexpectedly reproduced the centralized selection")
	}
	assertSubset(t, naive.Selection.Safe, naive.Selection.AfterLD, "naive safe ⊆ naive LD")
}

func TestRunAssessmentInputValidation(t *testing.T) {
	cohort := testCohort(t, 40, 60, 3)
	ref := cohort.Reference
	if _, err := RunAssessment(nil, ref, DefaultConfig(), CollusionPolicy{}, nil); !errors.Is(err, ErrNoMembers) {
		t.Errorf("no members: %v", err)
	}
	member := NewLocalMember(cohort.Case)
	if _, err := RunAssessment([]Provider{member}, nil, DefaultConfig(), CollusionPolicy{}, nil); err == nil {
		t.Error("nil reference must fail")
	}
	if _, err := RunAssessment([]Provider{member}, ref, Config{}, CollusionPolicy{}, nil); err == nil {
		t.Error("zero config must fail validation")
	}
	if _, err := RunAssessment([]Provider{member}, ref, DefaultConfig(), CollusionPolicy{F: 5}, nil); err == nil {
		t.Error("excessive f must fail")
	}
}

// faultyProvider lets tests inject malformed or failing member behaviour.
type faultyProvider struct {
	LocalMember
	counts []int64
	caseN  int64
	err    error
}

func (f *faultyProvider) Counts() ([]int64, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.counts, nil
}

func (f *faultyProvider) CaseN() (int64, error) { return f.caseN, nil }

func TestRunAssessmentRejectsTamperedCounts(t *testing.T) {
	cohort := testCohort(t, 40, 60, 3)
	good := NewLocalMember(cohort.Case)

	// Count vector longer than the SNP set.
	bad := &faultyProvider{counts: make([]int64, 41), caseN: 10}
	if _, err := RunAssessment([]Provider{good, bad}, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil); err == nil {
		t.Error("oversized count vector accepted")
	}

	// Count exceeding the declared population (impossible data).
	counts := make([]int64, 40)
	counts[7] = 11
	bad = &faultyProvider{counts: counts, caseN: 10}
	if _, err := RunAssessment([]Provider{good, bad}, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil); err == nil {
		t.Error("count > population accepted")
	}

	// A member that errors out.
	bad = &faultyProvider{err: errors.New("member crashed")}
	if _, err := RunAssessment([]Provider{good, bad}, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil); err == nil ||
		!strings.Contains(err.Error(), "member crashed") {
		t.Errorf("member failure not propagated: %v", err)
	}
}

func TestEnclaveAccounting(t *testing.T) {
	// Large enough that pooled-genome storage (the centralized baseline's
	// burden) dominates the distributed leader's extra per-member vectors.
	cohort := testCohort(t, 512, 800, 41)
	central, err := RunCentralized(cohort, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunDistributed(shardsOf(t, cohort, 3), cohort.Reference, DefaultConfig(), CollusionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if central.PeakEnclaveBytes == 0 || dist.PeakEnclaveBytes == 0 {
		t.Fatal("enclave accounting not recorded")
	}
	// The centralized enclave must pay for the pooled genomes; the GenDPR
	// leader holds only intermediates.
	if central.PeakEnclaveBytes <= dist.PeakEnclaveBytes {
		t.Errorf("centralized peak %d should exceed distributed peak %d",
			central.PeakEnclaveBytes, dist.PeakEnclaveBytes)
	}
}

func TestAssessmentFailsWhenEnclaveTooSmall(t *testing.T) {
	cohort := testCohort(t, 100, 240, 41)
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := platform.Load([]byte("x"), enclave.Config{MemoryLimit: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunAssessment(
		[]Provider{NewLocalMember(cohort.Case)},
		cohort.Reference, DefaultConfig(), CollusionPolicy{}, tiny,
	)
	if !errors.Is(err, enclave.ErrOutOfMemory) {
		t.Fatalf("got %v, want enclave OOM", err)
	}
}

func TestLocalMemberPairStatsBounds(t *testing.T) {
	m := NewLocalMember(genome.NewMatrix(5, 10))
	if _, err := m.PairStats(0, 10); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := m.PairStats(-1, 0); err == nil {
		t.Error("negative pair accepted")
	}
}

func TestBuildLRMatrixValidation(t *testing.T) {
	g := genome.NewMatrix(2, 5)
	if _, err := BuildLRMatrix(g, []int{0, 1}, []float64{0.1}, []float64{0.1, 0.2}); err == nil {
		t.Error("frequency length mismatch accepted")
	}
	if _, err := BuildLRMatrix(g, []int{7}, []float64{0.1}, []float64{0.1}); err == nil {
		t.Error("out-of-range column accepted")
	}
	m, err := BuildLRMatrix(g, []int{4, 0}, []float64{0.2, 0.3}, []float64{0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestSelectionHelpers(t *testing.T) {
	s := Selection{AfterMAF: []int{1, 2, 3}, AfterLD: []int{1, 3}, Safe: []int{3}}
	maf, ld, lr := s.Counts()
	if maf != 3 || ld != 2 || lr != 1 {
		t.Errorf("counts %d/%d/%d", maf, ld, lr)
	}
	if got := s.String(); got != "MAF 3 / LD 2 / LR 1" {
		t.Errorf("String=%q", got)
	}
	if !s.Equal(s) {
		t.Error("selection not equal to itself")
	}
	if s.Equal(Selection{}) {
		t.Error("distinct selections compare equal")
	}
}

// countingBatchMember wraps a LocalMember and counts which pair-statistics
// path the leader exercises: lazy single-pair fetches vs batched requests.
type countingBatchMember struct {
	*LocalMember
	mu      sync.Mutex
	singles int
	batches int
}

func (c *countingBatchMember) PairStats(a, b int) (genome.PairStats, error) {
	c.mu.Lock()
	c.singles++
	c.mu.Unlock()
	return c.LocalMember.PairStats(a, b)
}

func (c *countingBatchMember) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	c.mu.Lock()
	c.batches++
	c.mu.Unlock()
	return c.LocalMember.PairStatsBatch(pairs)
}

// TestPhase2LDUsesBatchPath is the survivor-chain batching regression test:
// every pair the LD scan examines — the adjacent pairs warmed up front AND
// the non-adjacent survivor-chain pairs a dependence removal creates — must
// reach members through PairStatsBatch, never through per-pair fallbacks.
func TestPhase2LDUsesBatchPath(t *testing.T) {
	cohort := testCohort(t, 150, 360, 17)
	members := make([]Provider, 0, 3)
	var counters []*countingBatchMember
	for _, shard := range shardsOf(t, cohort, 3) {
		c := &countingBatchMember{LocalMember: NewLocalMember(shard)}
		counters = append(counters, c)
		members = append(members, c)
	}
	report, err := RunAssessment(members, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil)
	if err != nil {
		t.Fatalf("RunAssessment: %v", err)
	}
	if len(report.Selection.AfterLD) >= len(report.Selection.AfterMAF) {
		t.Fatal("degenerate test data: LD phase pruned nothing, no survivor chain to batch")
	}
	for i, c := range counters {
		c.mu.Lock()
		singles, batches := c.singles, c.batches
		c.mu.Unlock()
		if singles != 0 {
			t.Errorf("member %d: %d single-pair request(s) escaped the batch path", i, singles)
		}
		// At least the adjacency warm-up plus one survivor-chain hint.
		if batches < 2 {
			t.Errorf("member %d: %d batched request(s), want >= 2 (warm-up + survivor chain)", i, batches)
		}
	}
}

func TestCachedProviderFetchesOnce(t *testing.T) {
	cohort := testCohort(t, 30, 40, 5)
	counter := &countingProvider{inner: NewLocalMember(cohort.Case)}
	c := newCachedProvider(counter)
	for i := 0; i < 3; i++ {
		if _, err := c.Counts(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.PairStats(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	if counter.countCalls != 1 {
		t.Errorf("Counts fetched %d times, want 1", counter.countCalls)
	}
	if counter.pairCalls != 1 {
		t.Errorf("PairStats fetched %d times, want 1", counter.pairCalls)
	}
}

type countingProvider struct {
	inner      Provider
	countCalls int
	pairCalls  int
}

func (c *countingProvider) Counts() ([]int64, error) {
	c.countCalls++
	return c.inner.Counts()
}

func (c *countingProvider) CaseN() (int64, error) { return c.inner.CaseN() }

func (c *countingProvider) PairStats(a, b int) (genome.PairStats, error) {
	c.pairCalls++
	return c.inner.PairStats(a, b)
}

func (c *countingProvider) LRMatrix(cols []int, cf, rf []float64) (*lrtest.BitMatrix, error) {
	return c.inner.LRMatrix(cols, cf, rf)
}
