package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"gendpr/internal/checkpoint"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// patternlessProvider hides a provider's PatternProvider capability, forcing
// the assessment onto the legacy per-combination Phase 3 path. It is the
// test's stand-in for a federation member running an older binary.
type patternlessProvider struct {
	inner Provider
}

func (p *patternlessProvider) Counts() ([]int64, error) { return p.inner.Counts() }
func (p *patternlessProvider) CaseN() (int64, error)    { return p.inner.CaseN() }
func (p *patternlessProvider) PairStats(a, b int) (genome.PairStats, error) {
	return p.inner.PairStats(a, b)
}
func (p *patternlessProvider) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	return p.inner.LRMatrix(cols, caseFreq, refFreq)
}

func runWithProviders(t *testing.T, shards []*genome.Matrix, ref *genome.Matrix, cfg Config, policy CollusionPolicy, patternless bool) *Report {
	t.Helper()
	providers := make([]Provider, len(shards))
	for i, s := range shards {
		if patternless {
			providers[i] = &patternlessProvider{inner: NewLocalMember(s)}
		} else {
			providers[i] = NewLocalMember(s)
		}
	}
	rep, err := RunAssessment(providers, ref, cfg, policy, nil)
	if err != nil {
		t.Fatalf("RunAssessment(patternless=%v): %v", patternless, err)
	}
	return rep
}

// TestLatticeMatchesLegacyGolden is the equivalence contract of the
// combination lattice: for every federation size and collusion policy the
// incremental Gray-chain evaluation must reproduce the legacy
// per-combination path bit for bit — the final selection, the power, and
// every per-combination safe list.
func TestLatticeMatchesLegacyGolden(t *testing.T) {
	for _, g := range []int{3, 4, 5} {
		cohort := testCohort(t, 110, 60*g, int64(40+g))
		shards := shardsOf(t, cohort, g)

		var policies []CollusionPolicy
		for f := 1; f < g; f++ {
			policies = append(policies, CollusionPolicy{F: f})
		}
		policies = append(policies, CollusionPolicy{Conservative: true})

		for _, policy := range policies {
			for _, parallel := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.ParallelCombinations = parallel
				legacy := runWithProviders(t, shards, cohort.Reference, cfg, policy, true)
				lattice := runWithProviders(t, shards, cohort.Reference, cfg, policy, false)

				label := fmt.Sprintf("g=%d policy=%+v parallel=%v", g, policy, parallel)
				if !lattice.Selection.Equal(legacy.Selection) {
					t.Errorf("%s: lattice %v != legacy %v", label, lattice.Selection, legacy.Selection)
				}
				if lattice.Selection.Power != legacy.Selection.Power {
					t.Errorf("%s: lattice power %v != legacy %v", label, lattice.Selection.Power, legacy.Selection.Power)
				}
				if len(lattice.PerCombination) != len(legacy.PerCombination) {
					t.Fatalf("%s: combination counts differ: %d vs %d", label, len(lattice.PerCombination), len(legacy.PerCombination))
				}
				for c := range legacy.PerCombination {
					if !lattice.PerCombination[c].Equal(legacy.PerCombination[c]) {
						t.Errorf("%s: combination %d: lattice %v != legacy %v",
							label, c, lattice.PerCombination[c], legacy.PerCombination[c])
					}
				}
			}
		}
	}
}

// TestBuildLatticePlanCoversAllSubsets walks every chain of a plan and checks
// the reconstructed subsets land exactly once in every lexicographic slot,
// matching evaluationSubsets, for a range of chains-per-block settings.
func TestBuildLatticePlanCoversAllSubsets(t *testing.T) {
	for _, g := range []int{3, 5, 6} {
		for _, policy := range []CollusionPolicy{{}, {F: 1}, {F: g - 1}, {Conservative: true}} {
			want, err := evaluationSubsets(g, policy)
			if err != nil {
				t.Fatal(err)
			}
			for _, chains := range []int{1, 2, 3, 16} {
				plan, err := buildLatticePlan(g, policy, chains)
				if err != nil {
					t.Fatalf("g=%d policy=%+v chains=%d: %v", g, policy, chains, err)
				}
				if plan.count != len(want) {
					t.Fatalf("g=%d policy=%+v chains=%d: plan count %d, want %d", g, policy, chains, plan.count, len(want))
				}
				got := make([][]int, plan.count)
				for ci := range plan.chains {
					err := plan.chains[ci].walk(func(pos, slot int, subset []int, rem, add int) error {
						if slot < 0 || slot >= plan.count {
							return fmt.Errorf("slot %d out of range", slot)
						}
						if got[slot] != nil {
							return fmt.Errorf("slot %d visited twice", slot)
						}
						got[slot] = append([]int(nil), subset...)
						if pos == 0 && (rem != -1 || add != -1) {
							return fmt.Errorf("head position reported exchange (%d,%d)", rem, add)
						}
						return nil
					})
					if err != nil {
						t.Fatalf("g=%d policy=%+v chains=%d: %v", g, policy, chains, err)
					}
				}
				for slot, sub := range got {
					if sub == nil {
						t.Fatalf("g=%d policy=%+v chains=%d: slot %d never visited", g, policy, chains, slot)
					}
					if !equalInts(sub, want[slot]) {
						t.Fatalf("g=%d policy=%+v chains=%d: slot %d = %v, want %v", g, policy, chains, slot, sub, want[slot])
					}
				}
			}
		}
	}
}

// TestRunStealing checks the work-stealing scheduler runs every task exactly
// once across worker counts and reports every task error.
func TestRunStealing(t *testing.T) {
	pool := newWorkPool(8)
	for _, n := range []int{0, 1, 7, 64} {
		for _, workers := range []int{1, 3, 8, 100} {
			ran := make([]int32, n)
			err := pool.RunStealing(n, workers, func(task int) error {
				if atomic.AddInt32(&ran[task], 1) != 1 {
					t.Errorf("n=%d workers=%d: task %d ran twice", n, workers, task)
				}
				if task%5 == 3 {
					return fmt.Errorf("task %d failed", task)
				}
				return nil
			})
			failures := 0
			for task := 0; task < n; task++ {
				if atomic.LoadInt32(&ran[task]) != 1 {
					t.Errorf("n=%d workers=%d: task %d ran %d times", n, workers, task, ran[task])
				}
				if task%5 == 3 {
					failures++
				}
			}
			if failures == 0 {
				if err != nil {
					t.Errorf("n=%d workers=%d: unexpected error %v", n, workers, err)
				}
				continue
			}
			if err == nil {
				t.Fatalf("n=%d workers=%d: expected %d task errors", n, workers, failures)
			}
			for task := 3; task < n; task += 5 {
				want := fmt.Sprintf("task %d failed", task)
				if !containsError(err, want) {
					t.Errorf("n=%d workers=%d: joined error misses %q", n, workers, want)
				}
			}
		}
	}
}

func containsError(err error, msg string) bool {
	type unwrapper interface{ Unwrap() []error }
	if err.Error() == msg {
		return true
	}
	if u, ok := err.(unwrapper); ok {
		for _, e := range u.Unwrap() {
			if containsError(e, msg) {
				return true
			}
		}
	}
	return false
}

// TestLatticeResumeConservativeParallel composes the sharded Phase 3 with
// checkpoint resume: a conservative G=4 run crashes mid-combination-sweep,
// resumes with parallel combinations enabled, and must reproduce the
// undisturbed baseline bit for bit.
func TestLatticeResumeConservativeParallel(t *testing.T) {
	cohort := testCohort(t, 70, 56, 13)
	shards := shardsOf(t, cohort, 4)
	names := []string{"gdo-a", "gdo-b", "gdo-c", "gdo-d"}
	policy := CollusionPolicy{Conservative: true}
	cfg := DefaultConfig()

	mk := func() []Provider {
		ps := make([]Provider, len(shards))
		for i, s := range shards {
			ps[i] = NewLocalMember(s)
		}
		return ps
	}
	baseline, err := RunAssessment(mk(), cohort.Reference, cfg, policy, nil)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	subsets, err := evaluationSubsets(len(shards), policy)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := DefaultConfig()
	parCfg.ParallelCombinations = true
	// Crash after the MAF save, mid-sweep, and after the last combination.
	for _, keep := range []int{1, 3, 2 + len(subsets)/2, 2 + len(subsets)} {
		snap := &snapshotStore{inner: checkpoint.NewMemStore(), keep: keep}
		if _, err := RunAssessmentWithOptions(mk(), cohort.Reference, cfg, policy, nil, AssessmentOptions{
			ProviderNames: names,
			Checkpoints:   snap,
		}); err != nil {
			t.Fatalf("keep %d: first run: %v", keep, err)
		}
		report, err := RunAssessmentWithOptions(mk(), cohort.Reference, parCfg, policy, nil, AssessmentOptions{
			ProviderNames: names,
			Checkpoints:   snap.inner,
		})
		if err != nil {
			t.Fatalf("keep %d: resume: %v", keep, err)
		}
		if !report.Resumed {
			t.Errorf("keep %d: Resumed not set", keep)
		}
		if !report.Selection.Equal(baseline.Selection) {
			t.Errorf("keep %d: resumed selection %v != baseline %v", keep, report.Selection, baseline.Selection)
		}
		if report.Selection.Power != baseline.Selection.Power {
			t.Errorf("keep %d: resumed power %v != baseline %v", keep, report.Selection.Power, baseline.Selection.Power)
		}
	}
}
