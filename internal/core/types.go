package core

import (
	"fmt"
	"time"
)

// Selection records the SNP subsets retained after each verification phase,
// as original SNP indices (the rows of Table 4).
type Selection struct {
	// AfterMAF is L': SNPs surviving the MAF cutoff.
	AfterMAF []int
	// AfterLD is L'': SNPs surviving linkage-disequilibrium pruning.
	AfterLD []int
	// Safe is L_safe: SNPs whose statistics can be released.
	Safe []int
	// Power is the residual identification power over Safe.
	Power float64
}

// Counts returns the sizes of the three subsets (the Table 4 row format).
func (s Selection) Counts() (maf, ld, lr int) {
	return len(s.AfterMAF), len(s.AfterLD), len(s.Safe)
}

// String formats the selection like a Table 4 cell.
func (s Selection) String() string {
	return fmt.Sprintf("MAF %d / LD %d / LR %d", len(s.AfterMAF), len(s.AfterLD), len(s.Safe))
}

// Equal reports whether two selections retained identical SNP sets.
func (s Selection) Equal(o Selection) bool {
	return equalInts(s.AfterMAF, o.AfterMAF) &&
		equalInts(s.AfterLD, o.AfterLD) &&
		equalInts(s.Safe, o.Safe)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Timings is the running-time breakdown of Figures 5 and 6. Each bucket
// matches one legend entry of the paper's plots.
type Timings struct {
	// DataAggregation covers collecting and summing member contributions
	// (or pooling genomes, for the centralized baseline).
	DataAggregation time.Duration
	// Indexing covers index bookkeeping, sorting/ranking and allele
	// frequency computation ("Indexing/Sorting/AlleFreq." in the plots).
	Indexing time.Duration
	// LD covers the linkage-disequilibrium analysis.
	LD time.Duration
	// LRTest covers building, merging and searching over LR-matrices.
	LRTest time.Duration
}

// Total returns the end-to-end running time.
func (t Timings) Total() time.Duration {
	return t.DataAggregation + t.Indexing + t.LD + t.LRTest
}

// Add accumulates another breakdown (used when summing per-combination runs).
func (t Timings) Add(o Timings) Timings {
	return Timings{
		DataAggregation: t.DataAggregation + o.DataAggregation,
		Indexing:        t.Indexing + o.Indexing,
		LD:              t.LD + o.LD,
		LRTest:          t.LRTest + o.LRTest,
	}
}

// Report is the outcome of one assessment run.
type Report struct {
	Selection Selection
	Timings   Timings
	// PeakEnclaveBytes is the high-water mark of protected memory accounted
	// inside the coordinating enclave (Table 3's memory column).
	PeakEnclaveBytes int64
	// PeakLRMatrixBytes is the high-water mark of the leader-enclave memory
	// occupied by LR-matrices alone (the Phase 3 component of the enclave
	// footprint, and the quantity the bit-packed kernel shrinks).
	PeakLRMatrixBytes int64
	// Combinations is the number of honest-subset combinations evaluated
	// (1 when collusion tolerance is off).
	Combinations int
	// PerCombination holds each combination's selection when collusion
	// tolerance is on (indexed like the combination enumeration).
	PerCombination []Selection
	// Excluded lists the members (by their original indices) that failed and
	// were excluded under quorum degradation. Empty for a full-membership
	// run; only ever populated by RunAssessmentResilient.
	Excluded []int
	// Resumed reports that at least one phase was replayed from a checkpoint
	// instead of recomputed — set when a (re-elected or restarted) leader
	// seeded the run from a compatible snapshot.
	Resumed bool
	// Blamed holds the structured misbehavior attributions collected during
	// the run: one record per quarantined contribution (equivocation or
	// invalid payload), carried across restarts and checkpoints. Only ever
	// populated by Byzantine-aware resilient runs.
	Blamed []Blame
	// Rejoined lists the members (by their original indices) that were
	// excluded mid-run and later re-admitted at a phase boundary after
	// re-attesting and passing the summary audit. Such members do not appear
	// in Excluded.
	Rejoined []int
	// CorruptionRecovered reports that the resumed-from checkpoint store
	// detected a corrupt or missing current snapshot and transparently fell
	// back to an older valid boundary.
	CorruptionRecovered bool
}
