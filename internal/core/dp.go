package core

import (
	"fmt"
	"math"
	"math/rand"
)

// DPParams configures the hybrid differential-privacy release of Section
// 5.5: statistics over L_safe are published noise-free, while statistics
// over the complement L_des \ L_safe are Laplace-perturbed so the whole
// desired SNP set can be covered.
type DPParams struct {
	// Epsilon is the per-SNP privacy budget of the Laplace mechanism.
	Epsilon float64
}

// Validate checks the parameters.
func (p DPParams) Validate() error {
	if p.Epsilon <= 0 || math.IsInf(p.Epsilon, 0) || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("core: epsilon %v must be positive and finite", p.Epsilon)
	}
	return nil
}

// ReleasedSNP is one published statistic.
type ReleasedSNP struct {
	// SNP is the original SNP index.
	SNP int
	// Frequency is the published case minor-allele frequency.
	Frequency float64
	// Noised reports whether the Laplace mechanism perturbed the value.
	Noised bool
}

// HybridRelease is the full publication over L_des.
type HybridRelease struct {
	SNPs []ReleasedSNP
	// Epsilon echoes the budget spent on each noised SNP.
	Epsilon float64
}

// BuildHybridRelease publishes case allele frequencies over every desired
// SNP: exact values for the safe subset, Laplace-perturbed values (sensitivity
// 1/N for a frequency) elsewhere. The rng makes noise reproducible in tests
// and experiments; pass a crypto-seeded source in production.
func BuildHybridRelease(caseCounts []int64, caseN int64, safe []int, params DPParams, rng *rand.Rand) (*HybridRelease, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if caseN <= 0 {
		return nil, fmt.Errorf("core: case population %d must be positive", caseN)
	}
	if rng == nil {
		return nil, fmt.Errorf("core: hybrid release needs a random source")
	}
	isSafe := make(map[int]bool, len(safe))
	for _, l := range safe {
		if l < 0 || l >= len(caseCounts) {
			return nil, fmt.Errorf("core: safe SNP %d out of range for %d SNPs", l, len(caseCounts))
		}
		isSafe[l] = true
	}
	scale := 1 / (float64(caseN) * params.Epsilon) // sensitivity/epsilon
	out := &HybridRelease{
		SNPs:    make([]ReleasedSNP, len(caseCounts)),
		Epsilon: params.Epsilon,
	}
	for l, c := range caseCounts {
		freq := float64(c) / float64(caseN)
		rel := ReleasedSNP{SNP: l, Frequency: freq}
		if !isSafe[l] {
			rel.Frequency = clampUnit(freq + laplace(scale, rng))
			rel.Noised = true
		}
		out.SNPs[l] = rel
	}
	return out, nil
}

// laplace draws one Laplace(0, scale) sample.
func laplace(scale float64, rng *rand.Rand) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
