package core

import (
	"errors"
	"fmt"
	"math"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// ErrInvalidPayload marks a member contribution that fails the leader's
// trust-boundary validation: counts exceeding the population, inconsistent or
// non-finite sufficient statistics, mismatched vector lengths, or a payload
// that contradicts the member's own earlier contributions. Unlike a transport
// failure (ErrMemberFailed), an invalid payload is evidence of tampering or
// corruption, so it is never retried. A plain run fails outright; a
// Byzantine-aware resilient run instead quarantines the member with a blame
// record and re-runs the assessment over the survivors — silent exclusion
// would mask an attack, attributed quarantine documents it.
var ErrInvalidPayload = errors.New("invalid payload")

// validateCounts checks a member's Phase 1 summary: one count per SNP, a
// non-negative population, and no count exceeding the population size.
func validateCounts(counts []int64, caseN int64, l int) error {
	if len(counts) != l {
		return fmt.Errorf("%w: %d counts, want %d", ErrInvalidPayload, len(counts), l)
	}
	// Diagnostics below name positions (SNP index) but never the member's
	// counts or population: error strings travel to leader logs, and the
	// secretflow analyzer treats error construction as an egress sink.
	if caseN < 0 {
		return fmt.Errorf("%w: negative population", ErrInvalidPayload)
	}
	for snp, c := range counts {
		if c < 0 || c > caseN {
			return fmt.Errorf("%w: count at SNP %d inconsistent with population", ErrInvalidPayload, snp)
		}
	}
	return nil
}

// validatePairStats checks a member's Phase 2 contribution against the
// invariants binary genotypes impose: for 0/1 data the squares equal the
// sums, marginals stay within the population, and the joint count is bounded
// by both marginals (and from below by inclusion-exclusion).
func validatePairStats(s genome.PairStats) error {
	// As in validateCounts, the messages state which invariant broke but
	// never the sufficient statistics themselves.
	if s.N < 0 {
		return fmt.Errorf("%w: negative pair population", ErrInvalidPayload)
	}
	if s.SumX < 0 || s.SumX > s.N || s.SumY < 0 || s.SumY > s.N {
		return fmt.Errorf("%w: pair marginals outside population", ErrInvalidPayload)
	}
	if s.SumXX != s.SumX || s.SumYY != s.SumY {
		return fmt.Errorf("%w: pair squares differ from sums for binary genotypes", ErrInvalidPayload)
	}
	min := s.SumX
	if s.SumY < min {
		min = s.SumY
	}
	if s.SumXY < 0 || s.SumXY > min {
		return fmt.Errorf("%w: joint count outside marginal bounds", ErrInvalidPayload)
	}
	if lower := s.SumX + s.SumY - s.N; s.SumXY < lower {
		return fmt.Errorf("%w: joint count below inclusion-exclusion bound", ErrInvalidPayload)
	}
	return nil
}

// validatePairConsistency cross-checks a member's Phase 2 pair statistics
// against the summary it already delivered: for binary genotypes the pair
// marginals are exactly the member's own per-SNP counts and the pair
// population its reported population. A skewed marginal can satisfy every
// single-payload invariant, so only this cross-payload check catches a
// Byzantine member that keeps its lies internally consistent.
func validatePairConsistency(s genome.PairStats, a, b int, counts []int64, caseN int64) error {
	// As elsewhere, messages name which invariant broke and the queried SNP
	// positions (protocol metadata), never the statistics themselves.
	if s.N != caseN {
		return fmt.Errorf("%w: pair population differs from reported summary", ErrInvalidPayload)
	}
	if a >= 0 && a < len(counts) && s.SumX != counts[a] {
		//gendpr:allow(secretflow): the SNP index echoes the requester's own query, not cohort data
		return fmt.Errorf("%w: pair marginal at SNP %d differs from reported count", ErrInvalidPayload, a)
	}
	if b >= 0 && b < len(counts) && s.SumY != counts[b] {
		//gendpr:allow(secretflow): the SNP index echoes the requester's own query, not cohort data
		return fmt.Errorf("%w: pair marginal at SNP %d differs from reported count", ErrInvalidPayload, b)
	}
	return nil
}

// validatePatternCounts cross-checks a genotype bit-pattern against the
// member's reported Phase 1 counts: a pattern column's popcount is the
// member's minor-allele carrier count for that SNP. Valid only for
// genotype-oriented patterns (the LRPattern contract); the dense LRMatrix
// path cannot use it because that representation's bit polarity is arbitrary.
func validatePatternCounts(p *lrtest.BitMatrix, cols []int, counts []int64) error {
	for j, snp := range cols {
		if snp < 0 || snp >= len(counts) {
			// Dimension errors are validateLRMatrix's concern.
			continue
		}
		if int64(p.ColumnOnes(j)) != counts[snp] {
			//gendpr:allow(secretflow): the SNP index echoes the leader's own column request, not cohort data
			return fmt.Errorf("%w: pattern column for SNP %d disagrees with reported count", ErrInvalidPayload, snp)
		}
	}
	return nil
}

// validateLRMatrix checks a member's Phase 3 matrix: one row per local case
// genome, the broadcast column count, and finite log-ratio representatives
// (NewLogRatios clamps degenerate frequencies, so an honest member can never
// produce a NaN or ±Inf cell).
func validateLRMatrix(lr *lrtest.BitMatrix, rows int64, cols int) error {
	if int64(lr.Rows()) != rows {
		// The expected row count is the member's population: name the
		// mismatch, not the number.
		return fmt.Errorf("%w: LR-matrix row count differs from member population", ErrInvalidPayload)
	}
	if lr.Cols() != cols {
		return fmt.Errorf("%w: LR-matrix has %d columns, want %d", ErrInvalidPayload, lr.Cols(), cols)
	}
	if !lr.RepsFinite() {
		return fmt.Errorf("%w: LR-matrix contains non-finite entries", ErrInvalidPayload)
	}
	return nil
}

// validateFrequencies checks a broadcast frequency vector member-side: the
// expected length and finite entries in [0,1].
func validateFrequencies(freq []float64, cols int) error {
	if len(freq) != cols {
		return fmt.Errorf("%w: %d frequencies for %d columns", ErrInvalidPayload, len(freq), cols)
	}
	for i, f := range freq {
		if math.IsNaN(f) || f < 0 || f > 1 {
			return fmt.Errorf("%w: non-finite or out-of-range frequency at column %d", ErrInvalidPayload, i)
		}
	}
	return nil
}
