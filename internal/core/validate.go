package core

import (
	"errors"
	"fmt"
	"math"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// ErrInvalidPayload marks a member contribution that fails the leader's
// trust-boundary validation: counts exceeding the population, inconsistent or
// non-finite sufficient statistics, mismatched vector lengths. Unlike a
// transport failure (ErrMemberFailed), an invalid payload is evidence of
// tampering or corruption, so it is run-fatal and never retried or degraded
// away — excluding a member that misbehaves would mask an attack.
var ErrInvalidPayload = errors.New("invalid payload")

// validateCounts checks a member's Phase 1 summary: one count per SNP, a
// non-negative population, and no count exceeding the population size.
func validateCounts(counts []int64, caseN int64, l int) error {
	if len(counts) != l {
		return fmt.Errorf("%w: %d counts, want %d", ErrInvalidPayload, len(counts), l)
	}
	if caseN < 0 {
		return fmt.Errorf("%w: negative population %d", ErrInvalidPayload, caseN)
	}
	for snp, c := range counts {
		if c < 0 || c > caseN {
			return fmt.Errorf("%w: count %d at SNP %d inconsistent with population %d", ErrInvalidPayload, c, snp, caseN)
		}
	}
	return nil
}

// validatePairStats checks a member's Phase 2 contribution against the
// invariants binary genotypes impose: for 0/1 data the squares equal the
// sums, marginals stay within the population, and the joint count is bounded
// by both marginals (and from below by inclusion-exclusion).
func validatePairStats(s genome.PairStats) error {
	if s.N < 0 {
		return fmt.Errorf("%w: negative pair population %d", ErrInvalidPayload, s.N)
	}
	if s.SumX < 0 || s.SumX > s.N || s.SumY < 0 || s.SumY > s.N {
		return fmt.Errorf("%w: pair marginals (%d,%d) outside population %d", ErrInvalidPayload, s.SumX, s.SumY, s.N)
	}
	if s.SumXX != s.SumX || s.SumYY != s.SumY {
		return fmt.Errorf("%w: pair squares (%d,%d) differ from sums (%d,%d) for binary genotypes",
			ErrInvalidPayload, s.SumXX, s.SumYY, s.SumX, s.SumY)
	}
	min := s.SumX
	if s.SumY < min {
		min = s.SumY
	}
	if s.SumXY < 0 || s.SumXY > min {
		return fmt.Errorf("%w: joint count %d outside [0,%d]", ErrInvalidPayload, s.SumXY, min)
	}
	if lower := s.SumX + s.SumY - s.N; s.SumXY < lower {
		return fmt.Errorf("%w: joint count %d below inclusion-exclusion bound %d", ErrInvalidPayload, s.SumXY, lower)
	}
	return nil
}

// validateLRMatrix checks a member's Phase 3 matrix: one row per local case
// genome, the broadcast column count, and finite log-ratio representatives
// (NewLogRatios clamps degenerate frequencies, so an honest member can never
// produce a NaN or ±Inf cell).
func validateLRMatrix(lr *lrtest.BitMatrix, rows int64, cols int) error {
	if int64(lr.Rows()) != rows {
		return fmt.Errorf("%w: LR-matrix has %d rows, population is %d", ErrInvalidPayload, lr.Rows(), rows)
	}
	if lr.Cols() != cols {
		return fmt.Errorf("%w: LR-matrix has %d columns, want %d", ErrInvalidPayload, lr.Cols(), cols)
	}
	if !lr.RepsFinite() {
		return fmt.Errorf("%w: LR-matrix contains non-finite entries", ErrInvalidPayload)
	}
	return nil
}

// validateFrequencies checks a broadcast frequency vector member-side: the
// expected length and finite entries in [0,1].
func validateFrequencies(freq []float64, cols int) error {
	if len(freq) != cols {
		return fmt.Errorf("%w: %d frequencies for %d columns", ErrInvalidPayload, len(freq), cols)
	}
	for i, f := range freq {
		if math.IsNaN(f) || f < 0 || f > 1 {
			return fmt.Errorf("%w: frequency %g at column %d", ErrInvalidPayload, f, i)
		}
	}
	return nil
}
