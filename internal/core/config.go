// Package core implements the GenDPR release-assessment protocol: the three
// verification phases (MAF, LD, LR-test), the centralized SecureGenome
// baseline, the naïve distributed baseline, and collusion-tolerant
// evaluation. The phases are pure functions over aggregated intermediate
// data; the centralized and distributed pipelines share them, which is what
// makes GenDPR's output bit-identical to the centralized baseline (Table 4).
package core

import (
	"fmt"

	"gendpr/internal/lrtest"
)

// Config carries the privacy-assessment parameters. The defaults follow the
// paper's evaluation, which adopts SecureGenome's suggested settings.
type Config struct {
	// MAFCutoff removes SNPs whose pooled minor-allele frequency is below
	// this value (paper: 0.05).
	MAFCutoff float64
	// LDCutoff is the chi-square p-value below which two SNPs are declared
	// dependent (paper: 1e-5).
	LDCutoff float64
	// LR configures the likelihood-ratio test (paper: α=0.1, β=0.9).
	LR lrtest.Params
	// PaperChiSquare selects the paper's simplified association statistic
	// for SNP ranking instead of the standard Pearson 2x2 form.
	PaperChiSquare bool
	// ParallelCombinations evaluates collusion combinations concurrently
	// inside the leader enclave, the optimization Section 5.6 notes
	// ("efficiently conducted in parallel ... as it already stores all
	// necessary data"). The selection outcome is identical either way.
	ParallelCombinations bool
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{
		MAFCutoff:      0.05,
		LDCutoff:       1e-5,
		LR:             lrtest.DefaultParams(),
		PaperChiSquare: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MAFCutoff < 0 || c.MAFCutoff >= 1 {
		return fmt.Errorf("core: MAF cutoff %v outside [0,1)", c.MAFCutoff)
	}
	if c.LDCutoff <= 0 || c.LDCutoff >= 1 {
		return fmt.Errorf("core: LD cutoff %v outside (0,1)", c.LDCutoff)
	}
	if err := c.LR.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// CollusionPolicy selects how many honest-but-curious colluders the
// assessment must tolerate.
type CollusionPolicy struct {
	// F is the number of colluding members to tolerate; 0 disables
	// collusion tolerance (the base protocol).
	F int
	// Conservative evaluates every f in 1..G−1 instead of a fixed F
	// (the paper's most conservative mode). When set, F is ignored.
	Conservative bool
}

// Validate checks the policy against the federation size.
func (p CollusionPolicy) Validate(g int) error {
	if g <= 0 {
		return fmt.Errorf("core: federation size %d invalid", g)
	}
	if p.Conservative {
		if g < 2 {
			return fmt.Errorf("core: conservative collusion tolerance needs at least 2 members, got %d", g)
		}
		return nil
	}
	if p.F < 0 || p.F >= g {
		return fmt.Errorf("core: colluder count %d outside [0,%d]", p.F, g-1)
	}
	return nil
}
