package core

import (
	"errors"
	"fmt"
	"testing"

	"gendpr/internal/checkpoint"
	"gendpr/internal/genome"
)

// byzantineFixture builds a 4-member federation where member `bad` is wrapped
// in a ByzantineProvider, plus the expected selection over the 3 honest
// survivors.
func byzantineFixture(t *testing.T, bad int, mode ByzantineMode, n int) ([]Provider, *genome.Matrix, *Report) {
	t.Helper()
	cohort := testCohort(t, 120, 320, 43)
	shards := shardsOf(t, cohort, 4)

	providers := make([]Provider, len(shards))
	survivors := make([]*genome.Matrix, 0, len(shards)-1)
	for i, s := range shards {
		if i == bad {
			providers[i] = NewByzantineProvider(NewLocalMember(s), mode, n)
			continue
		}
		providers[i] = NewLocalMember(s)
		survivors = append(survivors, s)
	}
	want, err := RunDistributed(survivors, cohort.Reference, DefaultConfig(), CollusionPolicy{})
	if err != nil {
		t.Fatalf("survivor baseline: %v", err)
	}
	return providers, cohort.Reference, want
}

// TestByzantineModesQuarantined drives each semantic fault through the
// Byzantine-aware resilient runner: the misbehaving member must be excluded
// with an attributing blame record, and the degraded selection must be
// bit-identical to the honest survivors' baseline.
func TestByzantineModesQuarantined(t *testing.T) {
	cases := []struct {
		mode  ByzantineMode
		phase string
	}{
		{ByzantineCountsOverflow, PhaseSummary},
		{ByzantinePairSkew, PhaseLD},
		{ByzantinePatternFlip, PhaseLR},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			providers, ref, want := byzantineFixture(t, 1, tc.mode, 1)
			var events []string
			res := Resilience{MinQuorum: 2, Byzantine: true, OnTransition: func(member, event, phase string) {
				events = append(events, fmt.Sprintf("%s/%s/%s", member, event, phase))
			}}
			rep, err := RunAssessmentResilient(providers, ref, DefaultConfig(), CollusionPolicy{}, nil, res)
			if err != nil {
				t.Fatalf("RunAssessmentResilient: %v", err)
			}
			if len(rep.Excluded) != 1 || rep.Excluded[0] != 1 {
				t.Fatalf("Excluded = %v, want [1]", rep.Excluded)
			}
			if len(rep.Blamed) != 1 {
				t.Fatalf("Blamed = %+v, want one record", rep.Blamed)
			}
			b := rep.Blamed[0]
			if b.Kind != BlameInvalidPayload || b.Phase != tc.phase || b.Member != "member 1" {
				t.Errorf("blame = %+v, want invalid-payload against member 1 in %s", b, tc.phase)
			}
			if b.Query == "" {
				t.Error("blame record does not name the violated invariant")
			}
			if !rep.Selection.Equal(want.Selection) {
				t.Errorf("quarantined selection %v != survivor baseline %v", rep.Selection, want.Selection)
			}
			if len(events) != 1 || events[0] != "member 1/byzantine/"+tc.phase {
				t.Errorf("transition events = %v, want one byzantine event in %s", events, tc.phase)
			}
		})
	}
}

// TestByzantineDisabledStaysFatal pins the conservative default: without
// Resilience.Byzantine an invalid payload still aborts the whole run, so
// enabling quarantine is an explicit operator decision.
func TestByzantineDisabledStaysFatal(t *testing.T) {
	providers, ref, _ := byzantineFixture(t, 1, ByzantineCountsOverflow, 1)
	_, err := RunAssessmentResilient(providers, ref, DefaultConfig(), CollusionPolicy{}, nil, Resilience{MinQuorum: 2})
	if err == nil {
		t.Fatal("expected the invalid payload to abort with Byzantine handling off")
	}
	if !errors.Is(err, ErrInvalidPayload) {
		t.Errorf("error = %v, want ErrInvalidPayload in chain", err)
	}
}

// rejoinProvider wraps a LocalMember that fails at the LD phase until its
// session is re-established via Rejoin. The audit answer is pluggable so the
// same fixture covers the honest-rejoin and equivocating-rejoin cases.
type rejoinProvider struct {
	*LocalMember
	healed     bool
	equivocate bool
	rejoins    int
}

func (p *rejoinProvider) PairStats(a, b int) (genome.PairStats, error) {
	if !p.healed {
		return genome.PairStats{}, fmt.Errorf("conn reset: %w", ErrMemberFailed)
	}
	return p.LocalMember.PairStats(a, b)
}

func (p *rejoinProvider) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	if !p.healed {
		return nil, fmt.Errorf("conn reset: %w", ErrMemberFailed)
	}
	return p.LocalMember.PairStatsBatch(pairs)
}

func (p *rejoinProvider) Rejoin() error {
	p.rejoins++
	p.healed = true
	return nil
}

func (p *rejoinProvider) AuditSummary() ([]int64, int64, error) {
	counts, err := p.LocalMember.Counts()
	if err != nil {
		return nil, 0, err
	}
	caseN, err := p.LocalMember.CaseN()
	if err != nil {
		return nil, 0, err
	}
	if p.equivocate {
		counts = equivocateCounts(counts, caseN)
	}
	return counts, caseN, nil
}

// TestRejoinAfterCrash exercises the full exclude-then-rejoin cycle: a member
// that drops mid-run re-attests at the restart boundary, passes the summary
// audit, and rejoins — the final selection must be bit-identical to the
// fault-free full-membership baseline with no exclusions left.
func TestRejoinAfterCrash(t *testing.T) {
	cohort := testCohort(t, 120, 320, 47)
	shards := shardsOf(t, cohort, 4)
	providers := make([]Provider, len(shards))
	var bad *rejoinProvider
	for i, s := range shards {
		if i == 2 {
			bad = &rejoinProvider{LocalMember: NewLocalMember(s)}
			providers[i] = bad
			continue
		}
		providers[i] = NewLocalMember(s)
	}
	want, err := RunDistributed(shards, cohort.Reference, DefaultConfig(), CollusionPolicy{})
	if err != nil {
		t.Fatalf("full baseline: %v", err)
	}

	var events []string
	res := Resilience{MinQuorum: 2, Byzantine: true, AllowRejoin: true, OnTransition: func(member, event, phase string) {
		events = append(events, member+"/"+event)
	}}
	rep, err := RunAssessmentResilient(providers, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil, res)
	if err != nil {
		t.Fatalf("RunAssessmentResilient: %v", err)
	}
	if len(rep.Excluded) != 0 {
		t.Fatalf("Excluded = %v, want none after rejoin", rep.Excluded)
	}
	if len(rep.Rejoined) != 1 || rep.Rejoined[0] != 2 {
		t.Fatalf("Rejoined = %v, want [2]", rep.Rejoined)
	}
	if bad.rejoins != 1 {
		t.Errorf("rejoins = %d, want exactly one re-attestation", bad.rejoins)
	}
	if !rep.Selection.Equal(want.Selection) {
		t.Errorf("rejoined selection %v != full baseline %v", rep.Selection, want.Selection)
	}
	if len(events) != 2 || events[0] != "member 2/excluded" || events[1] != "member 2/rejoined" {
		t.Errorf("transition events = %v, want excluded then rejoined", events)
	}
}

// TestRejoinAuditCatchesEquivocator pins the adversarial rejoin: a member
// whose post-rejoin summary differs from its pre-exclusion answers is
// upgraded to a quarantine — blamed, never re-admitted — and the run degrades
// to the survivors.
func TestRejoinAuditCatchesEquivocator(t *testing.T) {
	cohort := testCohort(t, 120, 320, 53)
	shards := shardsOf(t, cohort, 4)
	providers := make([]Provider, len(shards))
	survivors := make([]*genome.Matrix, 0, 3)
	for i, s := range shards {
		if i == 2 {
			providers[i] = &rejoinProvider{LocalMember: NewLocalMember(s), equivocate: true}
			continue
		}
		providers[i] = NewLocalMember(s)
		survivors = append(survivors, s)
	}
	want, err := RunDistributed(survivors, cohort.Reference, DefaultConfig(), CollusionPolicy{})
	if err != nil {
		t.Fatalf("survivor baseline: %v", err)
	}

	res := Resilience{MinQuorum: 2, Byzantine: true, AllowRejoin: true}
	rep, err := RunAssessmentResilient(providers, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil, res)
	if err != nil {
		t.Fatalf("RunAssessmentResilient: %v", err)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != 2 {
		t.Fatalf("Excluded = %v, want [2]", rep.Excluded)
	}
	if len(rep.Rejoined) != 0 {
		t.Fatalf("Rejoined = %v: an equivocator must never be re-admitted", rep.Rejoined)
	}
	if len(rep.Blamed) != 1 || rep.Blamed[0].Kind != BlameEquivocation {
		t.Fatalf("Blamed = %+v, want one equivocation record", rep.Blamed)
	}
	if len(rep.Blamed[0].Prior) == 0 || len(rep.Blamed[0].Observed) == 0 {
		t.Error("equivocation blame carries no digest evidence")
	}
	if !rep.Selection.Equal(want.Selection) {
		t.Errorf("selection %v != survivor baseline %v", rep.Selection, want.Selection)
	}
}

// equivocatingAuditor answers the normal protocol honestly but a summary
// audit with a perturbed summary — the profile of a member that changed its
// story between two leaders.
type equivocatingAuditor struct {
	*LocalMember
}

func (p *equivocatingAuditor) AuditSummary() ([]int64, int64, error) {
	counts, err := p.LocalMember.Counts()
	if err != nil {
		return nil, 0, err
	}
	caseN, err := p.LocalMember.CaseN()
	if err != nil {
		return nil, 0, err
	}
	return equivocateCounts(counts, caseN), caseN, nil
}

// keepStore wraps a checkpoint store whose Clear is a no-op, so a completed
// run leaves its final checkpoint behind for a second run to resume.
type keepStore struct{ checkpoint.Store }

func (keepStore) Clear() error { return nil }

// TestResumeAuditCatchesEquivocation covers the restarted-leader probe: a
// run resumed from a checkpoint challenges every auditable member to
// reproduce its recorded summary, quarantines the one that answers
// differently, persists the blame into the next checkpoint stream, and
// completes over the survivors.
func TestResumeAuditCatchesEquivocation(t *testing.T) {
	cohort := testCohort(t, 120, 320, 59)
	shards := shardsOf(t, cohort, 4)
	names := []string{"gdo-0", "gdo-1", "gdo-2", "gdo-3"}
	store := keepStore{checkpoint.NewMemStore()}

	honest := make([]Provider, len(shards))
	for i, s := range shards {
		honest[i] = NewLocalMember(s)
	}
	opts := AssessmentOptions{ProviderNames: names, Checkpoints: store}
	if _, err := RunAssessmentWithOptions(honest, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil, opts); err != nil {
		t.Fatalf("seeding run: %v", err)
	}

	// The restarted leader sees the same federation, except member 3 now
	// answers audits with a different summary than it reported before.
	resumed := make([]Provider, len(shards))
	survivors := make([]*genome.Matrix, 0, 3)
	for i, s := range shards {
		if i == 3 {
			resumed[i] = &equivocatingAuditor{LocalMember: NewLocalMember(s)}
			continue
		}
		resumed[i] = NewLocalMember(s)
		survivors = append(survivors, s)
	}
	rep, err := RunAssessmentResilientWithOptions(resumed, cohort.Reference, DefaultConfig(), CollusionPolicy{}, nil,
		Resilience{MinQuorum: 2, Byzantine: true}, opts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != 3 {
		t.Fatalf("Excluded = %v, want [3]", rep.Excluded)
	}
	if len(rep.Blamed) != 1 {
		t.Fatalf("Blamed = %+v, want one record", rep.Blamed)
	}
	b := rep.Blamed[0]
	if b.Kind != BlameEquivocation || b.Member != "gdo-3" || b.Phase != PhaseSummary || b.Query != "summary" {
		t.Errorf("blame = %+v, want summary equivocation against gdo-3", b)
	}
	want, err := RunDistributed(survivors, cohort.Reference, DefaultConfig(), CollusionPolicy{})
	if err != nil {
		t.Fatalf("survivor baseline: %v", err)
	}
	if !rep.Selection.Equal(want.Selection) {
		t.Errorf("selection %v != survivor baseline %v", rep.Selection, want.Selection)
	}

	// The blame must have been persisted at the survivors' checkpoint
	// boundaries, so a further failover would still know about it.
	st, err := store.Load()
	if err != nil {
		t.Fatalf("Load final checkpoint: %v", err)
	}
	if len(st.Blamed) != 1 || st.Blamed[0].Kind != BlameEquivocation || st.Blamed[0].Member != "gdo-3" {
		t.Errorf("checkpointed blame = %+v, want the gdo-3 equivocation", st.Blamed)
	}
}

// TestDigestSummaryProperties pins the digest the equivocation ledger keys
// on: deterministic, sensitive to every field, and length-delimited (a count
// moved between the population and the vector changes the digest).
func TestDigestSummaryProperties(t *testing.T) {
	base := DigestSummary([]int64{3, 1, 4}, 10)
	if base != DigestSummary([]int64{3, 1, 4}, 10) {
		t.Fatal("digest is not deterministic")
	}
	if base == DigestSummary([]int64{3, 1, 5}, 10) {
		t.Fatal("digest ignores count perturbation")
	}
	if base == DigestSummary([]int64{3, 1, 4}, 11) {
		t.Fatal("digest ignores population")
	}
	if DigestSummary([]int64{3, 1}, 4) == DigestSummary([]int64{3, 1, 4}, 4) {
		t.Fatal("digest ignores vector length")
	}
}

// TestSkewedPairStatsPassSoloValidation proves the pair-skew fault is truly
// semantic: the perturbed statistics satisfy every single-payload invariant
// and only the cross-payload consistency check can reject them.
func TestSkewedPairStatsPassSoloValidation(t *testing.T) {
	honest := genome.PairStats{N: 50, SumX: 20, SumY: 15, SumXX: 20, SumYY: 15, SumXY: 10}
	skewed := skewPairStats(honest)
	if skewed == honest {
		t.Fatal("skew did not perturb the statistics")
	}
	if err := validatePairStats(skewed); err != nil {
		t.Fatalf("skewed stats fail solo validation (fault is not semantic): %v", err)
	}
	counts := []int64{20, 15}
	if err := validatePairConsistency(skewed, 0, 1, counts, 50); err == nil {
		t.Fatal("cross-payload consistency check missed the skew")
	}
	if err := validatePairConsistency(honest, 0, 1, counts, 50); err != nil {
		t.Fatalf("honest stats rejected: %v", err)
	}
}
