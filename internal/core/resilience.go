package core

import (
	"errors"
	"fmt"
	"sort"

	"gendpr/internal/enclave"
	"gendpr/internal/genome"
)

// Protocol phase names used in member-failure errors and reports.
const (
	PhaseSummary = "summary collection"
	PhaseMAF     = "MAF (phase 1)"
	PhaseLD      = "LD (phase 2)"
	PhaseLR      = "LR-test (phase 3)"
)

// ErrMemberFailed marks a member as unreachable after the transport layer
// exhausted its retry budget. Providers wrap their terminal transport errors
// with it; the resilient runner treats any other member-attributed error
// (protocol violations, tampered payloads) as run-fatal, because excluding a
// member that misbehaves — rather than one that merely disappeared — would
// mask an attack.
var ErrMemberFailed = errors.New("member unreachable")

// ErrQuorumLost is returned when excluding failed members would leave fewer
// survivors than the configured quorum.
var ErrQuorumLost = errors.New("core: quorum lost")

// MemberError attributes a failure to one member and the protocol phase
// where it surfaced. The assessment wraps every member-side error in one, so
// callers can tell which GDO broke and where without parsing messages.
type MemberError struct {
	// Member is the index within the member slice of the failing run.
	Member int
	// Phase is the protocol phase where the failure surfaced.
	Phase string
	// Err is the underlying cause.
	Err error
}

func (e *MemberError) Error() string {
	return fmt.Sprintf("core: member %d failed in %s: %v", e.Member, e.Phase, e.Err)
}

func (e *MemberError) Unwrap() error { return e.Err }

// memberErr builds a MemberError for one member and phase.
func memberErr(member int, phase string, format string, args ...any) *MemberError {
	return &MemberError{Member: member, Phase: phase, Err: fmt.Errorf(format, args...)}
}

// Resilience configures quorum-based graceful degradation.
type Resilience struct {
	// MinQuorum is the minimum number of members that must survive for the
	// assessment to continue after exclusions. Zero (or negative) disables
	// degradation entirely: any member failure aborts the run, matching the
	// base protocol.
	MinQuorum int
}

// Enabled reports whether degradation is configured.
func (r Resilience) Enabled() bool { return r.MinQuorum > 0 }

// FailedMembers walks an assessment error and returns the member indices
// whose failures are degradable (wrapped in ErrMemberFailed), sorted. An
// empty result means the error is run-fatal.
func FailedMembers(err error) []int {
	seen := make(map[int]bool)
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if me, ok := e.(*MemberError); ok {
			if errors.Is(me.Err, ErrMemberFailed) {
				seen[me.Member] = true
			}
			return
		}
		switch x := e.(type) {
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// RunAssessmentResilient is RunAssessment with quorum-based degradation: when
// a member is declared failed (its provider reports ErrMemberFailed) and at
// least res.MinQuorum members survive, the assessment restarts over the
// surviving providers and the returned Report lists the excluded members.
// Survivor responses are memoized across restarts, so completed phases replay
// from cache rather than re-querying the federation.
//
// Degrading to a subset is privacy-conservative: every phase already
// evaluates honest subsets of the membership under collusion tolerance, and a
// release deemed safe for fewer contributors reveals no more when the
// excluded shards never contribute. The collusion policy is re-validated
// against the shrunken federation and the run aborts if it can no longer be
// satisfied.
func RunAssessmentResilient(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave, res Resilience) (*Report, error) {
	return RunAssessmentResilientWithOptions(members, reference, cfg, policy, leaderEnclave, res, AssessmentOptions{})
}

// RunAssessmentResilientWithOptions is RunAssessmentResilient with the
// cancellation and checkpoint durability of RunAssessmentWithOptions. Each
// restart attempt passes the surviving providers' names through, so a
// checkpoint written before an exclusion (whose fingerprint covers the full
// name set) is ignored by the shrunken attempt rather than mis-seeded.
func RunAssessmentResilientWithOptions(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave, res Resilience, opts AssessmentOptions) (*Report, error) {
	if !res.Enabled() {
		return RunAssessmentWithOptions(members, reference, cfg, policy, leaderEnclave, opts)
	}
	if opts.Checkpoints != nil && len(opts.ProviderNames) != len(members) {
		return nil, fmt.Errorf("core: %d provider names for %d members (checkpointing needs stable identities)", len(opts.ProviderNames), len(members))
	}
	// Wrap once, outside the per-attempt wrapping RunAssessment does, so the
	// caches survive restarts: a survivor's counts, pair statistics, and
	// population size replay from memory on the next attempt.
	stable := make([]*cachedProvider, len(members))
	for i, m := range members {
		stable[i] = newCachedProvider(m)
	}
	alive := make([]int, len(members))
	for i := range alive {
		alive[i] = i
	}
	var excluded []int

	for {
		current := make([]Provider, len(alive))
		for slot, id := range alive {
			current[slot] = stable[id]
		}
		attempt := opts
		if len(opts.ProviderNames) == len(members) {
			names := make([]string, len(alive))
			for slot, id := range alive {
				names[slot] = opts.ProviderNames[id]
			}
			attempt.ProviderNames = names
		}
		report, err := RunAssessmentWithOptions(current, reference, cfg, policy, leaderEnclave, attempt)
		if err == nil {
			report.Excluded = append([]int(nil), excluded...)
			return report, nil
		}
		if opts.Context != nil && opts.Context.Err() != nil {
			// Cancellation is never a member failure; surface it directly.
			return nil, opts.Context.Err()
		}
		failed := FailedMembers(err)
		if len(failed) == 0 {
			return nil, err
		}
		survivors := len(alive) - len(failed)
		if survivors < res.MinQuorum {
			return nil, fmt.Errorf("%w: %d survivors after excluding %d member(s), need %d: %v",
				ErrQuorumLost, survivors, len(excluded)+len(failed), res.MinQuorum, err)
		}
		if perr := policy.Validate(survivors); perr != nil {
			return nil, fmt.Errorf("core: collusion policy unsatisfiable over %d survivors: %w (member failure: %v)", survivors, perr, err)
		}
		// Map slot indices of this attempt back to original member identities
		// and drop them from the roster.
		drop := make(map[int]bool, len(failed))
		for _, slot := range failed {
			drop[slot] = true
			excluded = append(excluded, alive[slot])
		}
		next := alive[:0]
		for slot, id := range alive {
			if !drop[slot] {
				next = append(next, id)
			}
		}
		alive = next
		sort.Ints(excluded)
	}
}
