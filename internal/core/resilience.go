package core

import (
	"errors"
	"fmt"
	"sort"

	"gendpr/internal/enclave"
	"gendpr/internal/genome"
)

// Protocol phase names used in member-failure errors and reports.
const (
	PhaseSummary = "summary collection"
	PhaseMAF     = "MAF (phase 1)"
	PhaseLD      = "LD (phase 2)"
	PhaseLR      = "LR-test (phase 3)"
)

// ErrMemberFailed marks a member as unreachable after the transport layer
// exhausted its retry budget. Providers wrap their terminal transport errors
// with it. Without Resilience.Byzantine, the resilient runner treats any
// other member-attributed error (protocol violations, tampered payloads) as
// run-fatal, because silently excluding a member that misbehaves — rather
// than one that merely disappeared — would mask an attack; with it, such
// members are quarantined with an attributing blame record instead.
var ErrMemberFailed = errors.New("member unreachable")

// ErrQuorumLost is returned when excluding failed members would leave fewer
// survivors than the configured quorum.
var ErrQuorumLost = errors.New("core: quorum lost")

// MemberError attributes a failure to one member and the protocol phase
// where it surfaced. The assessment wraps every member-side error in one, so
// callers can tell which GDO broke and where without parsing messages.
type MemberError struct {
	// Member is the index within the member slice of the failing run.
	Member int
	// Phase is the protocol phase where the failure surfaced.
	Phase string
	// Err is the underlying cause.
	Err error
}

func (e *MemberError) Error() string {
	return fmt.Sprintf("core: member %d failed in %s: %v", e.Member, e.Phase, e.Err)
}

func (e *MemberError) Unwrap() error { return e.Err }

// memberErr builds a MemberError for one member and phase.
func memberErr(member int, phase string, format string, args ...any) *MemberError {
	return &MemberError{Member: member, Phase: phase, Err: fmt.Errorf(format, args...)}
}

// Resilience configures quorum-based graceful degradation and, optionally,
// Byzantine quarantine and member rejoin.
type Resilience struct {
	// MinQuorum is the minimum number of members that must survive for the
	// assessment to continue after exclusions. Zero (or negative) disables
	// degradation entirely: any member failure aborts the run, matching the
	// base protocol.
	MinQuorum int
	// Byzantine enables misbehavior quarantine: a member caught equivocating
	// or delivering an invalid payload is excluded with a structured blame
	// record and the assessment re-runs over the survivors, instead of the
	// whole run aborting. Detection also turns on summary audits when a
	// restarted leader resumes from a checkpoint.
	Byzantine bool
	// AllowRejoin permits a crash-failed member (never one blamed for
	// misbehavior) one attempt to re-attest and rejoin at the next restart
	// boundary, after passing a summary audit against its pre-exclusion
	// answers.
	AllowRejoin bool
	// OnTransition, when set, observes membership health transitions: event
	// is "excluded", "byzantine", or "rejoined", with the member's name (or
	// formatted index) and the phase the evidence surfaced in.
	OnTransition func(member, event, phase string)
}

// Enabled reports whether degradation is configured.
func (r Resilience) Enabled() bool { return r.MinQuorum > 0 }

// FailedMembers walks an assessment error and returns the member indices
// whose failures are degradable (wrapped in ErrMemberFailed), sorted. An
// empty result means the error is run-fatal.
func FailedMembers(err error) []int {
	seen := make(map[int]bool)
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if me, ok := e.(*MemberError); ok {
			if errors.Is(me.Err, ErrMemberFailed) {
				seen[me.Member] = true
			}
			return
		}
		switch x := e.(type) {
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// byzantineFault is one member-attributed misbehavior extracted from an
// assessment error: enough evidence to quarantine and blame the member.
type byzantineFault struct {
	slot            int
	phase           string
	query           string
	kind            string
	prior, observed []byte
}

// byzantineFaults walks an assessment error and returns the quarantinable
// misbehavior evidence — equivocations and invalid payloads — one fault per
// implicated slot, sorted. Like FailedMembers it stops at the MemberError
// layer, so nested attributions are never double-counted.
func byzantineFaults(err error) []byzantineFault {
	var out []byzantineFault
	seen := make(map[int]bool)
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if me, ok := e.(*MemberError); ok {
			if seen[me.Member] {
				return
			}
			var eq *EquivocationError
			switch {
			case errors.As(me.Err, &eq):
				seen[me.Member] = true
				out = append(out, byzantineFault{
					slot: me.Member, phase: me.Phase, query: eq.Query,
					kind: BlameEquivocation, prior: eq.Prior, observed: eq.Observed,
				})
			case errors.Is(me.Err, ErrInvalidPayload):
				seen[me.Member] = true
				// The validation message names the violated invariant (and
				// only the invariant) — it doubles as the query description.
				out = append(out, byzantineFault{
					slot: me.Member, phase: me.Phase, query: me.Err.Error(),
					kind: BlameInvalidPayload,
				})
			}
			return
		}
		switch x := e.(type) {
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	sort.Slice(out, func(i, j int) bool { return out[i].slot < out[j].slot })
	return out
}

// memberPhases maps each member slot attributed in err to the phase its
// first-seen failure surfaced in (for health-transition events).
func memberPhases(err error) map[int]string {
	phases := make(map[int]string)
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if me, ok := e.(*MemberError); ok {
			if _, ok := phases[me.Member]; !ok {
				phases[me.Member] = me.Phase
			}
			return
		}
		switch x := e.(type) {
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	return phases
}

// mergeBlames appends the new records to base, dropping duplicates by
// (member, phase, query, kind) — a blame replayed from a checkpoint seed and
// re-raised by the runner must land in the report once.
func mergeBlames(base, add []Blame) []Blame {
	type key struct{ member, phase, query, kind string }
	seen := make(map[key]bool, len(base))
	for _, b := range base {
		seen[key{b.Member, b.Phase, b.Query, b.Kind}] = true
	}
	out := base
	for _, b := range add {
		k := key{b.Member, b.Phase, b.Query, b.Kind}
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out
}

// RunAssessmentResilient is RunAssessment with quorum-based degradation: when
// a member is declared failed (its provider reports ErrMemberFailed) and at
// least res.MinQuorum members survive, the assessment restarts over the
// surviving providers and the returned Report lists the excluded members.
// Survivor responses are memoized across restarts, so completed phases replay
// from cache rather than re-querying the federation.
//
// Degrading to a subset is privacy-conservative: every phase already
// evaluates honest subsets of the membership under collusion tolerance, and a
// release deemed safe for fewer contributors reveals no more when the
// excluded shards never contribute. The collusion policy is re-validated
// against the shrunken federation and the run aborts if it can no longer be
// satisfied.
func RunAssessmentResilient(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave, res Resilience) (*Report, error) {
	return RunAssessmentResilientWithOptions(members, reference, cfg, policy, leaderEnclave, res, AssessmentOptions{})
}

// RunAssessmentResilientWithOptions is RunAssessmentResilient with the
// cancellation and checkpoint durability of RunAssessmentWithOptions. Each
// restart attempt passes the surviving providers' names through, so a
// checkpoint written before an exclusion (whose fingerprint covers the full
// name set) is ignored by the shrunken attempt rather than mis-seeded.
func RunAssessmentResilientWithOptions(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave, res Resilience, opts AssessmentOptions) (*Report, error) {
	if !res.Enabled() {
		return RunAssessmentWithOptions(members, reference, cfg, policy, leaderEnclave, opts)
	}
	if opts.Checkpoints != nil && len(opts.ProviderNames) != len(members) {
		return nil, fmt.Errorf("core: %d provider names for %d members (checkpointing needs stable identities)", len(opts.ProviderNames), len(members))
	}
	// Wrap once, outside the per-attempt wrapping RunAssessment does, so the
	// caches survive restarts: a survivor's counts, pair statistics, and
	// population size replay from memory on the next attempt.
	stable := make([]*cachedProvider, len(members))
	for i, m := range members {
		stable[i] = newCachedProvider(m)
	}
	alive := make([]int, len(members))
	for i := range alive {
		alive[i] = i
	}
	var excluded, rejoined []int
	var blames []Blame
	// exclusionKind records why each excluded member is out: a blame kind for
	// quarantined members (permanently barred), "" for crash failures (one
	// rejoin attempt each when AllowRejoin is set).
	exclusionKind := make(map[int]string)
	rejoinSpent := make(map[int]bool)

	memberName := func(id int) string {
		if len(opts.ProviderNames) == len(members) {
			return opts.ProviderNames[id]
		}
		return fmt.Sprintf("member %d", id)
	}
	emit := func(id int, event, phase string) {
		if res.OnTransition != nil {
			res.OnTransition(memberName(id), event, phase)
		}
	}

	for {
		current := make([]Provider, len(alive))
		for slot, id := range alive {
			current[slot] = stable[id]
		}
		attempt := opts
		attempt.blamed = blames
		attempt.auditSummaries = res.Byzantine
		if len(opts.ProviderNames) == len(members) {
			names := make([]string, len(alive))
			for slot, id := range alive {
				names[slot] = opts.ProviderNames[id]
			}
			attempt.ProviderNames = names
		}
		report, err := RunAssessmentWithOptions(current, reference, cfg, policy, leaderEnclave, attempt)
		if err == nil {
			report.Excluded = append([]int(nil), excluded...)
			report.Blamed = mergeBlames(report.Blamed, blames)
			report.Rejoined = append([]int(nil), rejoined...)
			return report, nil
		}
		if opts.Context != nil && opts.Context.Err() != nil {
			// Cancellation is never a member failure; surface it directly.
			return nil, opts.Context.Err()
		}
		var byz []byzantineFault
		if res.Byzantine {
			byz = byzantineFaults(err)
		}
		byzSlots := make(map[int]bool, len(byz))
		for _, f := range byz {
			byzSlots[f.slot] = true
		}
		failed := FailedMembers(err)
		// A slot implicated both ways is quarantined, not merely dropped.
		crashed := failed[:0]
		for _, slot := range failed {
			if !byzSlots[slot] {
				crashed = append(crashed, slot)
			}
		}
		if len(crashed) == 0 && len(byz) == 0 {
			return nil, err
		}
		phases := memberPhases(err)

		// Map slot indices of this attempt back to original member identities
		// and drop them from the roster.
		drop := make(map[int]bool, len(crashed)+len(byz))
		for _, f := range byz {
			id := alive[f.slot]
			drop[f.slot] = true
			exclusionKind[id] = f.kind
			blames = append(blames, Blame{
				Member: memberName(id), Phase: f.phase, Query: f.query,
				Kind: f.kind, Prior: f.prior, Observed: f.observed,
			})
			emit(id, "byzantine", f.phase)
		}
		for _, slot := range crashed {
			id := alive[slot]
			drop[slot] = true
			exclusionKind[id] = ""
			emit(id, "excluded", phases[slot])
		}
		next := alive[:0]
		for slot, id := range alive {
			if drop[slot] {
				excluded = append(excluded, id)
				rejoined = removeID(rejoined, id)
			} else {
				next = append(next, id)
			}
		}
		alive = next
		sort.Ints(excluded)

		// Rejoin pass: the restart is a phase boundary, so crash-failed
		// members with rejoin budget left may re-attest now. Re-admission
		// requires the summary audit to pass — a member that changed its
		// story across the gap is upgraded to a quarantine instead.
		if res.AllowRejoin {
			still := excluded[:0]
			for _, id := range excluded {
				if exclusionKind[id] != "" || rejoinSpent[id] {
					still = append(still, id)
					continue
				}
				rejoinSpent[id] = true
				rerr := stable[id].rejoin()
				if rerr == nil {
					alive = append(alive, id)
					rejoined = append(rejoined, id)
					emit(id, "rejoined", PhaseSummary)
					continue
				}
				still = append(still, id)
				var eq *EquivocationError
				if errors.As(rerr, &eq) {
					exclusionKind[id] = BlameEquivocation
					blames = append(blames, Blame{
						Member: memberName(id), Phase: eq.Phase, Query: eq.Query,
						Kind: BlameEquivocation, Prior: eq.Prior, Observed: eq.Observed,
					})
					emit(id, "byzantine", eq.Phase)
				}
			}
			excluded = still
			sort.Ints(alive)
			sort.Ints(rejoined)
		}

		survivors := len(alive)
		if survivors < res.MinQuorum {
			return nil, fmt.Errorf("%w: %d survivors after excluding %d member(s), need %d: %v",
				ErrQuorumLost, survivors, len(excluded), res.MinQuorum, err)
		}
		if perr := policy.Validate(survivors); perr != nil {
			return nil, fmt.Errorf("core: collusion policy unsatisfiable over %d survivors: %w (member failure: %v)", survivors, perr, err)
		}
	}
}

// removeID returns s without id, preserving order.
func removeID(s []int, id int) []int {
	out := s[:0]
	for _, v := range s {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}
