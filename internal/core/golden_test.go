package core

import (
	"math"
	"testing"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// densePhase3 replicates the seed implementation's Phase 3 exactly: per
// evaluation subset, merge dense member LR-matrices, rebuild the dense
// reference LR-matrix, derive the admission order from the full-membership
// evaluation, run the dense greedy search, and intersect. It is the golden
// baseline the bit-packed kernel must match bit for bit.
func densePhase3(t *testing.T, shards []*genome.Matrix, reference *genome.Matrix, subsets [][]int, lDouble []int, params lrtest.Params) ([][]int, []int, float64) {
	t.Helper()
	counts := make([][]int64, len(shards))
	for i, s := range shards {
		counts[i] = s.AlleleCounts()
	}
	refCounts := reference.AlleleCounts()
	refN := int64(reference.N())

	var order []int
	var fullPower float64
	per := make([][]int, len(subsets))
	for c, subset := range subsets {
		sum := make([]int64, reference.L())
		var n int64
		for _, i := range subset {
			for l, v := range counts[i] {
				sum[l] += v
			}
			n += int64(shards[i].N())
		}
		caseFreq := Frequencies(sum, n, lDouble)
		refFreq := Frequencies(refCounts, refN, lDouble)

		parts := make([]*lrtest.Matrix, len(subset))
		for slot, i := range subset {
			lr, err := BuildLRMatrix(shards[i], lDouble, caseFreq, refFreq)
			if err != nil {
				t.Fatalf("dense member %d LR-matrix: %v", i, err)
			}
			parts[slot] = lr
		}
		merged, err := lrtest.Merge(parts...)
		if err != nil {
			t.Fatalf("dense merge: %v", err)
		}
		refLR, err := BuildLRMatrix(reference, lDouble, caseFreq, refFreq)
		if err != nil {
			t.Fatalf("dense reference LR-matrix: %v", err)
		}
		if c == 0 {
			order = lrtest.DiscriminabilityOrder(merged, refLR)
		}
		safe, power, err := LRPhaseOrdered(lDouble, merged, refLR, params, order)
		if err != nil {
			t.Fatalf("dense LR phase: %v", err)
		}
		per[c] = safe
		if c == 0 {
			fullPower = power
		}
	}
	return per, IntersectSorted(per...), fullPower
}

// TestPhase3BitKernelGolden pins the tentpole guarantee: the bit-packed
// incremental kernel (packed member matrices, packed wire merge, quickselect
// thresholds, reskinned reference pattern) selects byte-identical safe
// subsets — and the identical released power — as the seed's dense Phase 3,
// across seeds, shard counts, collusion policies, and both oblivious modes.
func TestPhase3BitKernelGolden(t *testing.T) {
	cases := []struct {
		seed   int64
		snps   int
		caseN  int
		g      int
		policy CollusionPolicy
	}{
		{seed: 5, snps: 120, caseN: 300, g: 2, policy: CollusionPolicy{}},
		{seed: 9, snps: 140, caseN: 360, g: 3, policy: CollusionPolicy{F: 2}},
		{seed: 29, snps: 100, caseN: 280, g: 4, policy: CollusionPolicy{Conservative: true}},
	}
	for _, tc := range cases {
		for _, oblivious := range []bool{false, true} {
			cohort := testCohort(t, tc.snps, tc.caseN, tc.seed)
			shards := shardsOf(t, cohort, tc.g)
			cfg := DefaultConfig()
			cfg.LR.Oblivious = oblivious

			rep, err := RunDistributed(shards, cohort.Reference, cfg, tc.policy)
			if err != nil {
				t.Fatalf("seed=%d oblivious=%v: RunDistributed: %v", tc.seed, oblivious, err)
			}
			if len(rep.Selection.AfterLD) == 0 {
				t.Fatalf("seed=%d: degenerate test data, nothing survived LD", tc.seed)
			}

			subsets, err := evaluationSubsets(tc.g, tc.policy)
			if err != nil {
				t.Fatal(err)
			}
			per, safe, power := densePhase3(t, shards, cohort.Reference, subsets, rep.Selection.AfterLD, cfg.LR)

			if !equalInts(rep.Selection.Safe, safe) {
				t.Errorf("seed=%d g=%d oblivious=%v: bit kernel safe set %v != dense %v",
					tc.seed, tc.g, oblivious, rep.Selection.Safe, safe)
			}
			if math.Float64bits(rep.Selection.Power) != math.Float64bits(power) {
				t.Errorf("seed=%d g=%d oblivious=%v: bit kernel power %v != dense %v",
					tc.seed, tc.g, oblivious, rep.Selection.Power, power)
			}
			for c := range per {
				if !equalInts(rep.PerCombination[c].Safe, per[c]) {
					t.Errorf("seed=%d g=%d oblivious=%v combination %d: bit kernel %v != dense %v",
						tc.seed, tc.g, oblivious, c, rep.PerCombination[c].Safe, per[c])
				}
			}
		}
	}
}
