package core

import (
	"context"
	"errors"
	"testing"

	"gendpr/internal/checkpoint"
	"gendpr/internal/genome"
)

// snapshotStore passes the first keep saves through to the inner store and
// silently drops the rest — the on-disk view of a leader that crashed right
// after its keep-th phase-boundary save. Clear is dropped too (a crashed
// leader never cleans up).
type snapshotStore struct {
	inner *checkpoint.MemStore
	keep  int
	saves int
}

func (s *snapshotStore) Save(st *checkpoint.State) error {
	s.saves++
	if s.saves <= s.keep {
		return s.inner.Save(st)
	}
	return nil
}

func (s *snapshotStore) Load() (*checkpoint.State, error) { return s.inner.Load() }
func (s *snapshotStore) Clear() error                     { return nil }

func checkpointFixture(t *testing.T) ([]*genome.Matrix, *genome.Matrix) {
	t.Helper()
	cohort := testCohort(t, 60, 48, 11)
	return shardsOf(t, cohort, 3), cohort.Reference
}

func providersFor(shards []*genome.Matrix, order []int) ([]Provider, []string) {
	names := []string{"gdo-a", "gdo-b", "gdo-c"}
	ps := make([]Provider, len(order))
	ns := make([]string, len(order))
	for slot, i := range order {
		ps[slot] = NewLocalMember(shards[i])
		ns[slot] = names[i]
	}
	return ps, ns
}

// TestResumeFromCheckpointBitIdentical crashes a leader after each save
// boundary in turn, then resumes under a leader that enumerates the providers
// in a different order, and demands the resumed result equal the undisturbed
// baseline bit for bit.
func TestResumeFromCheckpointBitIdentical(t *testing.T) {
	shards, ref := checkpointFixture(t)
	cfg := DefaultConfig()
	for _, policy := range []CollusionPolicy{{}, {F: 1}} {
		baselineProviders, _ := providersFor(shards, []int{0, 1, 2})
		baseline, err := RunAssessment(baselineProviders, ref, cfg, policy, nil)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}

		subsets, err := evaluationSubsets(len(shards), policy)
		if err != nil {
			t.Fatal(err)
		}
		maxSaves := 2 + len(subsets) // MAF, LD, one per combination
		for keep := 1; keep <= maxSaves; keep++ {
			snap := &snapshotStore{inner: checkpoint.NewMemStore(), keep: keep}
			ps, names := providersFor(shards, []int{0, 1, 2})
			if _, err := RunAssessmentWithOptions(ps, ref, cfg, policy, nil, AssessmentOptions{
				ProviderNames: names,
				Checkpoints:   snap,
			}); err != nil {
				t.Fatalf("policy %+v keep %d: first run: %v", policy, keep, err)
			}

			// Resume with the provider slots shuffled: the new leader claims
			// the checkpoint by identity name, not position.
			ps2, names2 := providersFor(shards, []int{2, 0, 1})
			report, err := RunAssessmentWithOptions(ps2, ref, cfg, policy, nil, AssessmentOptions{
				ProviderNames: names2,
				Checkpoints:   snap.inner,
			})
			if err != nil {
				t.Fatalf("policy %+v keep %d: resume: %v", policy, keep, err)
			}
			if !report.Resumed {
				t.Errorf("policy %+v keep %d: Resumed not set", policy, keep)
			}
			if !report.Selection.Equal(baseline.Selection) {
				t.Errorf("policy %+v keep %d: resumed selection %v != baseline %v",
					policy, keep, report.Selection, baseline.Selection)
			}
			if report.Selection.Power != baseline.Selection.Power {
				t.Errorf("policy %+v keep %d: resumed power %v != baseline %v",
					policy, keep, report.Selection.Power, baseline.Selection.Power)
			}
			// A successful resumed run clears its store.
			if _, err := snap.inner.Load(); !errors.Is(err, checkpoint.ErrNotFound) {
				t.Errorf("policy %+v keep %d: store not cleared after success: %v", policy, keep, err)
			}
		}
	}
}

// TestCheckpointFingerprintMismatchStartsFresh writes a checkpoint under one
// configuration and asserts a run with a different cutoff ignores it.
func TestCheckpointFingerprintMismatchStartsFresh(t *testing.T) {
	shards, ref := checkpointFixture(t)
	store := checkpoint.NewMemStore()

	ps, names := providersFor(shards, []int{0, 1, 2})
	snap := &snapshotStore{inner: store, keep: 2}
	if _, err := RunAssessmentWithOptions(ps, ref, DefaultConfig(), CollusionPolicy{}, nil, AssessmentOptions{
		ProviderNames: names, Checkpoints: snap,
	}); err != nil {
		t.Fatalf("first run: %v", err)
	}

	altered := DefaultConfig()
	altered.MAFCutoff = 0.10
	ps2, names2 := providersFor(shards, []int{0, 1, 2})
	report, err := RunAssessmentWithOptions(ps2, ref, altered, CollusionPolicy{}, nil, AssessmentOptions{
		ProviderNames: names2, Checkpoints: store,
	})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if report.Resumed {
		t.Error("run resumed from a checkpoint with a different fingerprint")
	}

	ctrl, err := RunAssessment(ps2, ref, altered, CollusionPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Selection.Equal(ctrl.Selection) {
		t.Errorf("fresh run over stale checkpoint diverged: %v != %v", report.Selection, ctrl.Selection)
	}
}

// TestAssessmentContextCancel pre-cancels the context and expects the run to
// fail with ctx.Err() without contacting members.
func TestAssessmentContextCancel(t *testing.T) {
	shards, ref := checkpointFixture(t)
	ps, _ := providersFor(shards, []int{0, 1, 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAssessmentWithOptions(ps, ref, DefaultConfig(), CollusionPolicy{}, nil, AssessmentOptions{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestValidationRejectsTamperedSummaries feeds the leader impossible counts
// and expects a run-fatal MemberError wrapping ErrInvalidPayload that the
// resilient runner refuses to degrade away.
func TestValidationRejectsTamperedSummaries(t *testing.T) {
	shards, ref := checkpointFixture(t)
	ps, _ := providersFor(shards, []int{0, 1, 2})
	tampered := &tamperedProvider{Provider: ps[1]}
	ps[1] = tampered

	_, err := RunAssessmentResilient(ps, ref, DefaultConfig(), CollusionPolicy{}, nil, Resilience{MinQuorum: 1})
	if err == nil {
		t.Fatal("tampered counts were accepted")
	}
	if !errors.Is(err, ErrInvalidPayload) {
		t.Fatalf("error = %v, want ErrInvalidPayload", err)
	}
	var me *MemberError
	if !errors.As(err, &me) || me.Member != 1 {
		t.Fatalf("error = %v, want MemberError for member 1", err)
	}
	if got := FailedMembers(err); len(got) != 0 {
		t.Fatalf("tampering classified as degradable member failure: %v", got)
	}
}

// tamperedProvider reports a count exceeding its population.
type tamperedProvider struct {
	Provider
}

func (p *tamperedProvider) Counts() ([]int64, error) {
	counts, err := p.Provider.Counts()
	if err != nil {
		return nil, err
	}
	out := append([]int64(nil), counts...)
	out[0] = 1 << 40 // impossibly large
	return out, nil
}
