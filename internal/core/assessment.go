package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gendpr/internal/combin"
	"gendpr/internal/enclave"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// ErrNoMembers is returned when an assessment is started without members.
var ErrNoMembers = errors.New("core: assessment needs at least one member")

const (
	bytesPerCount    = 8
	bytesPerPairStat = 48
	lrMatrixOverhead = 16
)

// RunAssessment executes the GenDPR verification pipeline: Phase 1 (MAF),
// Phase 2 (LD), Phase 3 (LR-test), with per-phase intersection across the
// collusion combinations the policy demands. It is the single protocol
// implementation behind both the in-process runner and the networked
// middleware: the members parameter abstracts where intermediate results
// come from.
//
// Member-side computations (count vectors, pair statistics, LR-matrices) are
// requested concurrently, mirroring the real deployment where each GDO works
// on its own machine — the reason the paper's running time drops as the
// federation grows.
//
// When the policy tolerates colluders, the full-membership evaluation is
// always included alongside the C(G, G−f) honest subsets, so the released
// set is safe both for the actual all-member release and for every residual
// view colluders could isolate.
//
// leaderEnclave, when non-nil, accounts the leader-side protected memory the
// protocol intermediates occupy (count vectors, pair statistics, LR-matrices)
// and is the source of Table 3's memory column.
func RunAssessment(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := len(members)
	if g == 0 {
		return nil, ErrNoMembers
	}
	if reference == nil || reference.N() == 0 {
		return nil, errors.New("core: assessment needs a non-empty reference panel")
	}
	if err := policy.Validate(g); err != nil {
		return nil, err
	}
	subsets, err := evaluationSubsets(g, policy)
	if err != nil {
		return nil, err
	}

	run := &assessmentRun{
		cfg:     cfg,
		ref:     reference,
		acct:    leaderEnclave,
		members: make([]*cachedProvider, g),
		report:  &Report{Combinations: len(subsets)},
	}
	for i, m := range members {
		run.members[i] = newCachedProvider(m)
	}

	if err := run.collectSummaries(); err != nil {
		return nil, err
	}
	lPrime, perMAF, err := run.phase1MAF(subsets)
	if err != nil {
		return nil, err
	}
	lDouble, perLD, err := run.phase2LD(subsets, lPrime)
	if err != nil {
		return nil, err
	}
	safe, perSafe, power, err := run.phase3LR(subsets, lDouble)
	if err != nil {
		return nil, err
	}

	run.report.Selection = Selection{AfterMAF: lPrime, AfterLD: lDouble, Safe: safe, Power: power}
	run.report.PerCombination = make([]Selection, len(subsets))
	for c := range subsets {
		run.report.PerCombination[c] = Selection{AfterMAF: perMAF[c], AfterLD: perLD[c], Safe: perSafe[c]}
	}
	if run.acct != nil {
		run.report.PeakEnclaveBytes = run.acct.MemoryPeak()
	}
	return run.report, nil
}

// evaluationSubsets enumerates the member subsets to evaluate: always the
// full membership first, then every honest combination the policy requires.
func evaluationSubsets(g int, policy CollusionPolicy) ([][]int, error) {
	full := make([]int, g)
	for i := range full {
		full[i] = i
	}
	subsets := [][]int{full}
	switch {
	case policy.Conservative:
		more, err := combin.ConservativeSubsets(g)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		subsets = append(subsets, more...)
	case policy.F > 0:
		more, err := combin.HonestSubsets(g, policy.F)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		subsets = append(subsets, more...)
	}
	return subsets, nil
}

// assessmentRun carries the leader-side state across phases.
type assessmentRun struct {
	cfg     Config
	ref     *genome.Matrix
	acct    *enclave.Enclave
	members []*cachedProvider
	report  *Report

	counts    [][]int64
	caseNs    []int64
	refCounts []int64
	refN      int64

	timingMu  sync.Mutex
	pairMu    sync.Mutex
	pairsSeen map[[2]int]bool
}

// addTiming accumulates wall time into one breakdown bucket; the accessor is
// locked because parallel-combination mode updates buckets concurrently.
func (r *assessmentRun) addTiming(bucket *time.Duration, start time.Time) {
	elapsed := time.Since(start)
	r.timingMu.Lock()
	*bucket += elapsed
	r.timingMu.Unlock()
}

func (r *assessmentRun) alloc(n int64) error {
	if r.acct == nil {
		return nil
	}
	return r.acct.Alloc(n)
}

func (r *assessmentRun) free(n int64) {
	if r.acct != nil {
		r.acct.Free(n)
	}
}

// forEachSubset runs one evaluation per combination, sequentially by
// default or concurrently when the configuration enables the paper's
// parallel-combination optimization.
func (r *assessmentRun) forEachSubset(subsets [][]int, eval func(c int, subset []int) error) error {
	if !r.cfg.ParallelCombinations || len(subsets) == 1 {
		for c, subset := range subsets {
			if err := eval(c, subset); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(subsets))
	var wg sync.WaitGroup
	for c, subset := range subsets {
		wg.Add(1)
		go func(c int, subset []int) {
			defer wg.Done()
			errs[c] = eval(c, subset)
		}(c, subset)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// collectSummaries gathers each member's count vector and population size —
// the pre-processing summary-statistics step of Section 5.2. Members compute
// in parallel on their own premises.
func (r *assessmentRun) collectSummaries() error {
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	l := r.ref.L()
	g := len(r.members)
	r.counts = make([][]int64, g)
	r.caseNs = make([]int64, g)
	errs := make([]error, g)

	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *cachedProvider) {
			defer wg.Done()
			counts, err := m.Counts()
			if err != nil {
				errs[i] = fmt.Errorf("core: member %d counts: %w", i, err)
				return
			}
			n, err := m.CaseN()
			if err != nil {
				errs[i] = fmt.Errorf("core: member %d population size: %w", i, err)
				return
			}
			r.counts[i] = counts
			r.caseNs[i] = n
		}(i, m)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}

	// Leader-side validation: malformed or impossible contributions are the
	// tampering the trusted module must detect.
	for i := range r.members {
		if len(r.counts[i]) != l {
			return fmt.Errorf("core: member %d sent %d counts, want %d", i, len(r.counts[i]), l)
		}
		if r.caseNs[i] < 0 {
			return fmt.Errorf("core: member %d reported negative population %d", i, r.caseNs[i])
		}
		for snp, c := range r.counts[i] {
			if c < 0 || c > r.caseNs[i] {
				return fmt.Errorf("core: member %d count %d at SNP %d inconsistent with population %d", i, c, snp, r.caseNs[i])
			}
		}
		if err := r.alloc(int64(l) * bytesPerCount); err != nil {
			return err
		}
	}
	r.refCounts = r.ref.AlleleCounts()
	r.refN = int64(r.ref.N())
	r.pairsSeen = make(map[[2]int]bool)
	return nil
}

// subsetCounts aggregates case counts and population size over one
// combination of members (leader-enclave aggregation, lines 11–19).
func (r *assessmentRun) subsetCounts(subset []int) ([]int64, int64) {
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	sum := make([]int64, len(r.refCounts))
	var n int64
	for _, i := range subset {
		for l, c := range r.counts[i] {
			sum[l] += c
		}
		n += r.caseNs[i]
	}
	return sum, n
}

func (r *assessmentRun) phase1MAF(subsets [][]int) ([]int, [][]int, error) {
	per := make([][]int, len(subsets))
	err := r.forEachSubset(subsets, func(c int, subset []int) error {
		counts, n := r.subsetCounts(subset)
		start := time.Now()
		lPrime, err := MAFPhase(counts, n, r.refCounts, r.refN, r.cfg.MAFCutoff)
		r.addTiming(&r.report.Timings.Indexing, start)
		if err != nil {
			return err
		}
		per[c] = lPrime
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.Indexing, start)
	return intersected, per, nil
}

// subsetPairStats returns the pooled pair-statistics function for one
// combination: member contributions (fetched in parallel) plus the reference
// panel.
func (r *assessmentRun) subsetPairStats(subset []int) PairStatsFunc {
	return func(a, b int) (genome.PairStats, error) {
		key := [2]int{a, b}
		r.pairMu.Lock()
		fresh := !r.pairsSeen[key]
		if fresh {
			r.pairsSeen[key] = true
		}
		r.pairMu.Unlock()
		if fresh {
			if err := r.alloc(bytesPerPairStat * int64(len(r.members))); err != nil {
				return genome.PairStats{}, err
			}
		}

		parts := make([]genome.PairStats, len(subset))
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				s, err := r.members[i].PairStats(a, b)
				if err != nil {
					errs[slot] = fmt.Errorf("core: member %d pair stats: %w", i, err)
					return
				}
				parts[slot] = s
			}(slot, i)
		}
		pooled := r.ref.PairStats(a, b)
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return genome.PairStats{}, err
		}
		for _, s := range parts {
			pooled = pooled.Add(s)
		}
		return pooled, nil
	}
}

// prefetchAdjacentPairs warms every member's pair cache with the adjacent
// pairs of L' in one batched request per member. The greedy LD scan examines
// exactly these pairs when no SNP is removed; removals trigger lazy
// single-pair fetches for the survivor chains.
func (r *assessmentRun) prefetchAdjacentPairs(lPrime []int) error {
	if len(lPrime) < 2 {
		return nil
	}
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	pairs := make([][2]int, 0, len(lPrime)-1)
	for i := 0; i+1 < len(lPrime); i++ {
		key := [2]int{lPrime[i], lPrime[i+1]}
		pairs = append(pairs, key)
		r.pairMu.Lock()
		fresh := !r.pairsSeen[key]
		if fresh {
			r.pairsSeen[key] = true
		}
		r.pairMu.Unlock()
		if fresh {
			if err := r.alloc(bytesPerPairStat * int64(len(r.members))); err != nil {
				return err
			}
		}
	}
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *cachedProvider) {
			defer wg.Done()
			if err := m.Prefetch(pairs); err != nil {
				errs[i] = fmt.Errorf("core: member %d pair prefetch: %w", i, err)
			}
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (r *assessmentRun) phase2LD(subsets [][]int, lPrime []int) ([]int, [][]int, error) {
	if err := r.prefetchAdjacentPairs(lPrime); err != nil {
		return nil, nil, err
	}

	// The association ranking used by getMostRanked is study-wide: the
	// paper's Algorithm 1 ranks by "p-value on chi^2 of study s", not per
	// combination. Combinations still test dependence on their own pooled
	// pair statistics; only the tie-break between two dependent SNPs uses
	// the canonical ranking, which keeps the per-combination survivor
	// chains aligned.
	fullCounts, fullN := r.subsetCounts(subsets[0])
	start := time.Now()
	pvals, err := AssociationPValues(fullCounts, fullN, r.refCounts, r.refN, r.cfg.PaperChiSquare)
	r.addTiming(&r.report.Timings.Indexing, start)
	if err != nil {
		return nil, nil, err
	}

	per := make([][]int, len(subsets))
	err = r.forEachSubset(subsets, func(c int, subset []int) error {
		start := time.Now()
		lDouble, err := LDPhase(lPrime, r.subsetPairStats(subset), pvals, r.cfg.LDCutoff)
		r.addTiming(&r.report.Timings.LD, start)
		if err != nil {
			return err
		}
		per[c] = lDouble
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	start = time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.LD, start)
	return intersected, per, nil
}

func (r *assessmentRun) phase3LR(subsets [][]int, lDouble []int) ([]int, [][]int, float64, error) {
	per := make([][]int, len(subsets))
	var fullPower float64
	// The admission order is derived once, from the full-membership
	// evaluation (subsets[0]), and shared with every collusion combination;
	// see LRPhaseOrdered.
	var order []int

	evalSubset := func(c int, subset []int) error {
		counts, n := r.subsetCounts(subset)

		start := time.Now()
		caseFreq := Frequencies(counts, n, lDouble)
		refFreq := Frequencies(r.refCounts, r.refN, lDouble)
		r.addTiming(&r.report.Timings.Indexing, start)

		var rows int64
		for _, i := range subset {
			rows += r.caseNs[i]
		}
		caseBytes := lrMatrixOverhead + 8*rows*int64(len(lDouble))
		refBytes := lrMatrixOverhead + 8*r.refN*int64(len(lDouble))
		if err := r.alloc(caseBytes + refBytes); err != nil {
			return err
		}
		defer r.free(caseBytes + refBytes)

		// Collect the members' local LR-matrices: each member builds its
		// own matrix on its own machine, concurrently.
		start = time.Now()
		parts := make([]*lrtest.Matrix, len(subset))
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				lr, err := r.members[i].LRMatrix(lDouble, caseFreq, refFreq)
				if err != nil {
					errs[slot] = fmt.Errorf("core: member %d LR-matrix: %w", i, err)
					return
				}
				if lr.Cols() != len(lDouble) {
					errs[slot] = fmt.Errorf("core: member %d LR-matrix has %d columns, want %d", i, lr.Cols(), len(lDouble))
					return
				}
				parts[slot] = lr
			}(slot, i)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return err
		}
		merged, err := lrtest.Merge(parts...)
		r.addTiming(&r.report.Timings.DataAggregation, start)
		if err != nil {
			return fmt.Errorf("core: merge LR-matrices: %w", err)
		}

		// Build the reference matrix and run the empirical search.
		start = time.Now()
		refLR, err := BuildLRMatrix(r.ref, lDouble, caseFreq, refFreq)
		if err != nil {
			return err
		}
		if c == 0 {
			order = lrtest.DiscriminabilityOrder(merged, refLR)
		}
		safe, power, err := LRPhaseOrdered(lDouble, merged, refLR, r.cfg.LR, order)
		r.addTiming(&r.report.Timings.LRTest, start)
		if err != nil {
			return err
		}
		per[c] = safe
		if c == 0 {
			fullPower = power
		}
		return nil
	}

	// The full-membership subset runs first (it defines the canonical
	// order); the combinations may then run sequentially or in parallel.
	if err := evalSubset(0, subsets[0]); err != nil {
		return nil, nil, 0, err
	}
	if len(subsets) > 1 {
		err := r.forEachSubset(subsets[1:], func(c int, subset []int) error {
			return evalSubset(c+1, subset)
		})
		if err != nil {
			return nil, nil, 0, err
		}
	}

	start := time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.LRTest, start)
	return intersected, per, fullPower, nil
}
