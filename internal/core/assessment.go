package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gendpr/internal/combin"
	"gendpr/internal/enclave"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// ErrNoMembers is returned when an assessment is started without members.
var ErrNoMembers = errors.New("core: assessment needs at least one member")

const (
	bytesPerCount    = 8
	bytesPerPairStat = 48
	lrMatrixOverhead = 16
)

// RunAssessment executes the GenDPR verification pipeline: Phase 1 (MAF),
// Phase 2 (LD), Phase 3 (LR-test), with per-phase intersection across the
// collusion combinations the policy demands. It is the single protocol
// implementation behind both the in-process runner and the networked
// middleware: the members parameter abstracts where intermediate results
// come from.
//
// Member-side computations (count vectors, pair statistics, LR-matrices) are
// requested concurrently, mirroring the real deployment where each GDO works
// on its own machine — the reason the paper's running time drops as the
// federation grows.
//
// When the policy tolerates colluders, the full-membership evaluation is
// always included alongside the C(G, G−f) honest subsets, so the released
// set is safe both for the actual all-member release and for every residual
// view colluders could isolate.
//
// leaderEnclave, when non-nil, accounts the leader-side protected memory the
// protocol intermediates occupy (count vectors, pair statistics, LR-matrices)
// and is the source of Table 3's memory column.
func RunAssessment(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave) (*Report, error) {
	return RunAssessmentWithOptions(members, reference, cfg, policy, leaderEnclave, AssessmentOptions{})
}

// RunAssessmentWithOptions is RunAssessment with cancellation and checkpoint
// durability. With the zero options it behaves exactly like RunAssessment.
// When opts.Checkpoints is set, phase boundaries are persisted to the store,
// and a compatible existing checkpoint (same fingerprint: configuration,
// policy, provider name set, reference dimensions) seeds the run — completed
// phases replay from the snapshot instead of re-querying members, and
// Report.Resumed records that it happened.
func RunAssessmentWithOptions(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave, opts AssessmentOptions) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := len(members)
	if g == 0 {
		return nil, ErrNoMembers
	}
	if reference == nil || reference.N() == 0 {
		return nil, errors.New("core: assessment needs a non-empty reference panel")
	}
	if err := policy.Validate(g); err != nil {
		return nil, err
	}
	subsets, err := evaluationSubsets(g, policy)
	if err != nil {
		return nil, err
	}

	run := &assessmentRun{
		ctx:     opts.Context,
		cfg:     cfg,
		ref:     reference,
		acct:    leaderEnclave,
		members: make([]*cachedProvider, g),
		report:  &Report{Combinations: len(subsets)},
		pool:    defaultWorkPool(),
	}
	for i, m := range members {
		run.members[i] = newCachedProvider(m)
	}

	if opts.Checkpoints != nil {
		if len(opts.ProviderNames) != g {
			return nil, fmt.Errorf("core: %d provider names for %d members (checkpointing needs stable identities)", len(opts.ProviderNames), g)
		}
		fp := Fingerprint(cfg, policy, opts.ProviderNames, reference.N(), reference.L())
		run.cs, err = newCkState(opts.Checkpoints, opts.ProviderNames, fp, g, policy)
		if err != nil {
			return nil, err
		}
	}

	if err := run.ctxErr(); err != nil {
		return nil, err
	}
	if err := run.collectSummaries(); err != nil {
		return nil, err
	}
	lPrime, perMAF, err := run.phase1MAF(subsets)
	if err != nil {
		return nil, err
	}
	lDouble, perLD, err := run.phase2LD(subsets, lPrime)
	if err != nil {
		return nil, err
	}
	safe, perSafe, power, err := run.phase3LR(subsets, lDouble)
	if err != nil {
		return nil, err
	}
	// A cancellation that raced the last phase must not yield a report: the
	// caller treats a returned report as a completed (and checkpoint-cleared)
	// run, and the failover harness relies on kill-at-last-save runs
	// reporting cancellation deterministically.
	if err := run.ctxErr(); err != nil {
		return nil, err
	}

	run.report.Selection = Selection{AfterMAF: lPrime, AfterLD: lDouble, Safe: safe, Power: power}
	run.report.PerCombination = make([]Selection, len(subsets))
	for c := range subsets {
		run.report.PerCombination[c] = Selection{AfterMAF: perMAF[c], AfterLD: perLD[c], Safe: perSafe[c]}
	}
	if run.acct != nil {
		run.report.PeakEnclaveBytes = run.acct.MemoryPeak()
	}
	run.report.PeakLRMatrixBytes = run.lrPeak
	run.report.Resumed = run.resumed
	run.cs.finish()
	return run.report, nil
}

// evaluationSubsets enumerates the member subsets to evaluate: always the
// full membership first, then every honest combination the policy requires.
func evaluationSubsets(g int, policy CollusionPolicy) ([][]int, error) {
	full := make([]int, g)
	for i := range full {
		full[i] = i
	}
	subsets := [][]int{full}
	switch {
	case policy.Conservative:
		more, err := combin.ConservativeSubsets(g)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		subsets = append(subsets, more...)
	case policy.F > 0:
		more, err := combin.HonestSubsets(g, policy.F)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		subsets = append(subsets, more...)
	}
	return subsets, nil
}

// assessmentRun carries the leader-side state across phases.
type assessmentRun struct {
	ctx     context.Context
	cfg     Config
	ref     *genome.Matrix
	acct    *enclave.Enclave
	members []*cachedProvider
	report  *Report
	pool    *workPool
	cs      *ckState
	resumed bool

	counts    [][]int64
	caseNs    []int64
	refCounts []int64
	refCols   *genome.ColumnBits
	refN      int64

	timingMu  sync.Mutex
	pairMu    sync.Mutex
	pairsSeen map[[2]int]bool

	lrMu    sync.Mutex
	lrBytes int64
	lrPeak  int64
}

// markResumed records that at least one phase replayed from a checkpoint.
// Locked: parallel-combination mode replays combinations concurrently.
func (r *assessmentRun) markResumed() {
	r.timingMu.Lock()
	r.resumed = true
	r.timingMu.Unlock()
}

// ctxErr reports cancellation; a run without a context never cancels.
// Checked at phase boundaries — in-flight member fetches are bounded by the
// transport layer's own context plumbing, so boundary checks keep the core
// loop allocation-free on the uncancelled path.
func (r *assessmentRun) ctxErr() error {
	if r.ctx == nil {
		return nil
	}
	return r.ctx.Err()
}

// addTiming accumulates wall time into one breakdown bucket; the accessor is
// locked because parallel-combination mode updates buckets concurrently.
func (r *assessmentRun) addTiming(bucket *time.Duration, start time.Time) {
	elapsed := time.Since(start)
	r.timingMu.Lock()
	*bucket += elapsed
	r.timingMu.Unlock()
}

func (r *assessmentRun) alloc(n int64) error {
	if r.acct == nil {
		return nil
	}
	return r.acct.Alloc(n)
}

func (r *assessmentRun) free(n int64) {
	if r.acct != nil {
		r.acct.Free(n)
	}
}

// allocLR accounts protected memory that holds LR-matrices, tracking the
// Phase 3 component of the enclave footprint separately so the report can
// attribute it (Report.PeakLRMatrixBytes).
func (r *assessmentRun) allocLR(n int64) error {
	if err := r.alloc(n); err != nil {
		return err
	}
	r.lrMu.Lock()
	r.lrBytes += n
	if r.lrBytes > r.lrPeak {
		r.lrPeak = r.lrBytes
	}
	r.lrMu.Unlock()
	return nil
}

func (r *assessmentRun) freeLR(n int64) {
	r.free(n)
	r.lrMu.Lock()
	r.lrBytes -= n
	r.lrMu.Unlock()
}

// forEachSubset runs one evaluation per combination, sequentially by
// default or concurrently when the configuration enables the paper's
// parallel-combination optimization. Concurrency goes through the shared
// worker pool: C(G, G−f) grows fast, and a goroutine per combination (each
// spawning per-member fetches of its own) oversubscribes the leader.
func (r *assessmentRun) forEachSubset(subsets [][]int, eval func(c int, subset []int) error) error {
	if !r.cfg.ParallelCombinations || len(subsets) == 1 {
		for c, subset := range subsets {
			if err := eval(c, subset); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(subsets))
	var wg sync.WaitGroup
	for c, subset := range subsets {
		c, subset := c, subset
		r.pool.Go(&wg, func() {
			errs[c] = eval(c, subset)
		})
	}
	wg.Wait()
	return errors.Join(errs...)
}

// collectSummaries gathers each member's count vector and population size —
// the pre-processing summary-statistics step of Section 5.2. Members compute
// in parallel on their own premises.
func (r *assessmentRun) collectSummaries() error {
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	l := r.ref.L()
	g := len(r.members)

	if counts, caseNs, ok := r.cs.seededSummaries(); ok {
		// Resume: the checkpoint holds validated summaries for every
		// provider — prime the caches and skip the federation round trip.
		r.counts = counts
		r.caseNs = caseNs
		seedSummaryCaches(r.members, counts, caseNs)
		r.resumed = true
	} else {
		r.counts = make([][]int64, g)
		r.caseNs = make([]int64, g)
		errs := make([]error, g)

		var wg sync.WaitGroup
		for i, m := range r.members {
			i, m := i, m
			r.pool.Go(&wg, func() {
				counts, err := m.Counts()
				if err != nil {
					errs[i] = memberErr(i, PhaseSummary, "counts: %w", err)
					return
				}
				n, err := m.CaseN()
				if err != nil {
					errs[i] = memberErr(i, PhaseSummary, "population size: %w", err)
					return
				}
				r.counts[i] = counts
				r.caseNs[i] = n
			})
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return err
		}
	}

	// Leader-side validation: malformed or impossible contributions are the
	// tampering the trusted module must detect. Invalid payloads are
	// run-fatal MemberErrors — never retried, never degraded away.
	for i := range r.members {
		if err := validateCounts(r.counts[i], r.caseNs[i], l); err != nil {
			return memberErr(i, PhaseSummary, "%w", err)
		}
		if err := r.alloc(int64(l) * bytesPerCount); err != nil {
			return err
		}
	}
	r.cs.recordSummaries(r.counts, r.caseNs)
	// The reference panel is queried for thousands of pair counts in Phase 2;
	// the column-major view turns each into a stride-1 AND+popcount.
	r.refCols = r.ref.Transpose()
	r.refCounts = make([]int64, l)
	for snp := range r.refCounts {
		r.refCounts[snp] = r.refCols.AlleleCount(snp)
	}
	r.refN = int64(r.ref.N())
	r.pairsSeen = make(map[[2]int]bool)
	return nil
}

// subsetCounts aggregates case counts and population size over one
// combination of members (leader-enclave aggregation, lines 11–19).
func (r *assessmentRun) subsetCounts(subset []int) ([]int64, int64) {
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	sum := make([]int64, len(r.refCounts))
	var n int64
	for _, i := range subset {
		for l, c := range r.counts[i] {
			sum[l] += c
		}
		n += r.caseNs[i]
	}
	return sum, n
}

func (r *assessmentRun) phase1MAF(subsets [][]int) ([]int, [][]int, error) {
	if err := r.ctxErr(); err != nil {
		return nil, nil, err
	}
	if lPrime, perMAF, ok := r.cs.seededMAF(); ok && len(perMAF) == len(subsets) {
		r.resumed = true
		if err := r.cs.recordMAF(lPrime, perMAF, false); err != nil {
			return nil, nil, err
		}
		return lPrime, perMAF, nil
	}
	per := make([][]int, len(subsets))
	err := r.forEachSubset(subsets, func(c int, subset []int) error {
		counts, n := r.subsetCounts(subset)
		start := time.Now()
		lPrime, err := MAFPhase(counts, n, r.refCounts, r.refN, r.cfg.MAFCutoff)
		r.addTiming(&r.report.Timings.Indexing, start)
		if err != nil {
			return err
		}
		per[c] = lPrime
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.Indexing, start)
	if err := r.cs.recordMAF(intersected, per, true); err != nil {
		return nil, nil, err
	}
	return intersected, per, nil
}

// subsetPairStats returns the pooled pair-statistics function for one
// combination: member contributions (fetched in parallel) plus the reference
// panel.
func (r *assessmentRun) subsetPairStats(subset []int) PairStatsFunc {
	return func(a, b int) (genome.PairStats, error) {
		key := [2]int{a, b}
		r.pairMu.Lock()
		fresh := !r.pairsSeen[key]
		if fresh {
			r.pairsSeen[key] = true
		}
		r.pairMu.Unlock()
		if fresh {
			if err := r.alloc(bytesPerPairStat * int64(len(r.members))); err != nil {
				return genome.PairStats{}, err
			}
		}

		// The reference panel's single counts are already known (Phase 1
		// computed them), so its contribution costs one PairCount column
		// pass instead of three full scans.
		pooled := genome.PairStatsFromCounts(r.refN, r.refCounts[a], r.refCounts[b], r.refCols.PairCount(a, b))

		// Fast path: after the prefetch, almost every pair the LD scan asks
		// for is in every member's cache — aggregate synchronously instead of
		// dispatching a goroutine per member.
		cached := make([]genome.PairStats, len(subset))
		hit := 0
		for slot, i := range subset {
			s, ok := r.members[i].cachedPair(a, b)
			if !ok {
				break
			}
			cached[slot] = s
			hit++
		}
		if hit == len(subset) {
			for _, s := range cached {
				pooled = pooled.Add(s)
			}
			return pooled, nil
		}

		parts := make([]genome.PairStats, len(subset))
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				s, err := r.members[i].PairStats(a, b)
				if err != nil {
					errs[slot] = memberErr(i, PhaseLD, "pair stats: %w", err)
					return
				}
				parts[slot] = s
			})
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return genome.PairStats{}, err
		}
		for _, s := range parts {
			pooled = pooled.Add(s)
		}
		return pooled, nil
	}
}

// ldBatchWindow is how many upcoming survivor-chain pairs one batch hint
// covers. Chains longer than the window re-announce; a window of one would
// degenerate to the per-pair path with extra round trips.
const ldBatchWindow = 16

// subsetPrefetch returns the survivor-chain batch hook for one combination:
// announced pairs are fetched from the combination's members in parallel,
// one batched request each, and land in the same caches the pooled
// PairStatsFunc reads.
func (r *assessmentRun) subsetPrefetch(subset []int) PairBatchFunc {
	return func(pairs [][2]int) error {
		for _, key := range pairs {
			r.pairMu.Lock()
			fresh := !r.pairsSeen[key]
			if fresh {
				r.pairsSeen[key] = true
			}
			r.pairMu.Unlock()
			if fresh {
				if err := r.alloc(bytesPerPairStat * int64(len(r.members))); err != nil {
					return err
				}
			}
		}
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				if err := r.members[i].Prefetch(pairs); err != nil {
					errs[slot] = memberErr(i, PhaseLD, "survivor-chain prefetch: %w", err)
				}
			})
		}
		wg.Wait()
		return errors.Join(errs...)
	}
}

// prefetchAdjacentPairs warms every member's pair cache with the adjacent
// pairs of L' in one batched request per member. The greedy LD scan examines
// exactly these pairs when no SNP is removed; removals trigger lazy
// single-pair fetches for the survivor chains.
func (r *assessmentRun) prefetchAdjacentPairs(lPrime []int) error {
	if len(lPrime) < 2 {
		return nil
	}
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	pairs := make([][2]int, 0, len(lPrime)-1)
	for i := 0; i+1 < len(lPrime); i++ {
		key := [2]int{lPrime[i], lPrime[i+1]}
		pairs = append(pairs, key)
		r.pairMu.Lock()
		fresh := !r.pairsSeen[key]
		if fresh {
			r.pairsSeen[key] = true
		}
		r.pairMu.Unlock()
		if fresh {
			if err := r.alloc(bytesPerPairStat * int64(len(r.members))); err != nil {
				return err
			}
		}
	}
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		i, m := i, m
		r.pool.Go(&wg, func() {
			if err := m.Prefetch(pairs); err != nil {
				errs[i] = memberErr(i, PhaseLD, "pair prefetch: %w", err)
			}
		})
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (r *assessmentRun) phase2LD(subsets [][]int, lPrime []int) ([]int, [][]int, error) {
	if err := r.ctxErr(); err != nil {
		return nil, nil, err
	}
	if lDouble, perLD, pairs, ok := r.cs.seededLD(); ok && len(perLD) == len(subsets) {
		// Resume: Phase 2 outputs come from the checkpoint; the aggregated
		// pair statistics seed the provider caches so any residual pooled
		// query (Phase 3 never issues one, but callers may) replays locally.
		r.resumed = true
		seedPairCaches(r.members, pairs)
		if err := r.cs.recordLD(lDouble, perLD, r.members, false); err != nil {
			return nil, nil, err
		}
		return lDouble, perLD, nil
	}
	if err := r.prefetchAdjacentPairs(lPrime); err != nil {
		return nil, nil, err
	}

	// The association ranking used by getMostRanked is study-wide: the
	// paper's Algorithm 1 ranks by "p-value on chi^2 of study s", not per
	// combination. Combinations still test dependence on their own pooled
	// pair statistics; only the tie-break between two dependent SNPs uses
	// the canonical ranking, which keeps the per-combination survivor
	// chains aligned.
	fullCounts, fullN := r.subsetCounts(subsets[0])
	start := time.Now()
	pvals, err := AssociationPValues(fullCounts, fullN, r.refCounts, r.refN, r.cfg.PaperChiSquare)
	r.addTiming(&r.report.Timings.Indexing, start)
	if err != nil {
		return nil, nil, err
	}

	per := make([][]int, len(subsets))
	err = r.forEachSubset(subsets, func(c int, subset []int) error {
		start := time.Now()
		lDouble, err := LDPhaseBatch(lPrime, r.subsetPairStats(subset),
			r.subsetPrefetch(subset), ldBatchWindow, pvals, r.cfg.LDCutoff)
		r.addTiming(&r.report.Timings.LD, start)
		if err != nil {
			return err
		}
		per[c] = lDouble
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	start = time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.LD, start)
	if err := r.cs.recordLD(intersected, per, r.members, true); err != nil {
		return nil, nil, err
	}
	return intersected, per, nil
}

// bitLRBytes is the protected-memory footprint of one bit-packed LR-matrix:
// one bit per cell packed into 64-bit words per column, two float64
// representatives per column, plus the fixed header.
func bitLRBytes(rows, cols int64) int64 {
	return lrMatrixOverhead + 8*((rows+63)/64)*cols + 16*cols
}

func (r *assessmentRun) phase3LR(subsets [][]int, lDouble []int) ([]int, [][]int, float64, error) {
	if err := r.ctxErr(); err != nil {
		return nil, nil, 0, err
	}
	per := make([][]int, len(subsets))
	var fullPower float64
	// The admission order is derived once, from the full-membership
	// evaluation (subsets[0]), and shared with every collusion combination;
	// see LRPhaseBitOrdered.
	var order []int

	// The reference panel's genotype bit-pattern is combination-independent:
	// refFreq depends only on the reference counts, so across collusion
	// combinations only the per-column log ratios change, never which cells
	// are minor alleles. The full-membership evaluation (always first,
	// sequentially) builds the pattern once; every other combination reskins
	// it with its own ratios, sharing the read-only cell bits.
	var refPattern *lrtest.BitMatrix
	cols := int64(len(lDouble))
	reskinBytes := 16 * cols // a reskin allocates only two representatives per column

	evalSubset := func(c int, subset []int) error {
		if err := r.ctxErr(); err != nil {
			return err
		}
		var comboNames []string
		if r.cs != nil {
			comboNames = subsetNames(r.cs.names, subset)
		}
		if rec, ok := r.cs.seededCombination(comboNames); ok && c > 0 {
			// Replay a completed collusion combination from the checkpoint;
			// no member contact, no matrix rebuild.
			r.markResumed()
			per[c] = rec.Safe
			return r.cs.recordCombination(comboNames, rec.Safe, rec.Power, nil, false)
		}

		counts, n := r.subsetCounts(subset)

		start := time.Now()
		caseFreq := Frequencies(counts, n, lDouble)
		refFreq := Frequencies(r.refCounts, r.refN, lDouble)
		r.addTiming(&r.report.Timings.Indexing, start)

		if rec, ok := r.cs.seededCombination(comboNames); ok && c == 0 && len(rec.Order) > 0 {
			// The full-membership combination anchors every other one: its
			// canonical admission order is checkpointed directly (the merged
			// per-individual matrix never is). Reuse the order; if the
			// reference pattern cannot be rebuilt, fall through to a full
			// recompute.
			refLR, berr := BuildLRBitMatrix(r.ref, lDouble, caseFreq, refFreq)
			if berr == nil {
				refPattern = refLR
				order = append([]int(nil), rec.Order...)
				r.markResumed()
				per[0] = rec.Safe
				fullPower = rec.Power
				return r.cs.recordCombination(comboNames, rec.Safe, rec.Power, rec.Order, false)
			}
		}

		var rows int64
		for _, i := range subset {
			rows += r.caseNs[i]
		}
		lrBytes := bitLRBytes(rows, cols)
		if c > 0 {
			lrBytes += reskinBytes
		}
		if err := r.allocLR(lrBytes); err != nil {
			return err
		}
		defer r.freeLR(lrBytes)

		// Collect the members' local LR-matrices: each member builds its
		// own matrix on its own machine, concurrently.
		start = time.Now()
		parts := make([]*lrtest.BitMatrix, len(subset))
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				lr, err := r.members[i].LRMatrix(lDouble, caseFreq, refFreq)
				if err != nil {
					errs[slot] = memberErr(i, PhaseLR, "LR-matrix: %w", err)
					return
				}
				if err := validateLRMatrix(lr, r.caseNs[i], len(lDouble)); err != nil {
					errs[slot] = memberErr(i, PhaseLR, "%w", err)
					return
				}
				parts[slot] = lr
			})
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return err
		}
		merged, err := lrtest.MergeBits(parts...)
		r.addTiming(&r.report.Timings.DataAggregation, start)
		if err != nil {
			return fmt.Errorf("core: merge LR-matrices: %w", err)
		}

		// Obtain the reference matrix — built once, reskinned after — and
		// run the empirical search.
		start = time.Now()
		var refLR *lrtest.BitMatrix
		if c == 0 {
			refLR, err = BuildLRBitMatrix(r.ref, lDouble, caseFreq, refFreq)
			if err != nil {
				return err
			}
			refPattern = refLR
		} else {
			ratios, rerr := lrtest.NewLogRatios(caseFreq, refFreq)
			if rerr != nil {
				return fmt.Errorf("core: log ratios: %w", rerr)
			}
			refLR, err = refPattern.Reskin(ratios)
			if err != nil {
				return err
			}
		}
		if c == 0 {
			order = lrtest.DiscriminabilityOrderBit(merged, refLR)
		}
		safe, power, err := LRPhaseBitOrdered(lDouble, merged, refLR, r.cfg.LR, order)
		r.addTiming(&r.report.Timings.LRTest, start)
		if err != nil {
			return err
		}
		per[c] = safe
		if c == 0 {
			fullPower = power
		}
		var orderCkpt []int
		if c == 0 && r.cs != nil {
			// Only the full-membership combination persists its admission
			// order: that derived ranking is all a resuming leader needs to
			// anchor the other combinations.
			orderCkpt = append([]int(nil), order...)
		}
		return r.cs.recordCombination(comboNames, safe, power, orderCkpt, true)
	}

	// The reference pattern lives for the whole phase.
	refBytes := bitLRBytes(r.refN, cols)
	if err := r.allocLR(refBytes); err != nil {
		return nil, nil, 0, err
	}
	defer r.freeLR(refBytes)

	// The full-membership subset runs first (it defines the canonical
	// order); the combinations may then run sequentially or in parallel.
	if err := evalSubset(0, subsets[0]); err != nil {
		return nil, nil, 0, err
	}
	if len(subsets) > 1 {
		err := r.forEachSubset(subsets[1:], func(c int, subset []int) error {
			return evalSubset(c+1, subset)
		})
		if err != nil {
			return nil, nil, 0, err
		}
	}

	start := time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.LRTest, start)
	return intersected, per, fullPower, nil
}
