package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gendpr/internal/combin"
	"gendpr/internal/enclave"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
)

// ErrNoMembers is returned when an assessment is started without members.
var ErrNoMembers = errors.New("core: assessment needs at least one member")

const (
	bytesPerCount    = 8
	bytesPerPairStat = 48
	lrMatrixOverhead = 16
)

// RunAssessment executes the GenDPR verification pipeline: Phase 1 (MAF),
// Phase 2 (LD), Phase 3 (LR-test), with per-phase intersection across the
// collusion combinations the policy demands. It is the single protocol
// implementation behind both the in-process runner and the networked
// middleware: the members parameter abstracts where intermediate results
// come from.
//
// Member-side computations (count vectors, pair statistics, LR-matrices) are
// requested concurrently, mirroring the real deployment where each GDO works
// on its own machine — the reason the paper's running time drops as the
// federation grows.
//
// When the policy tolerates colluders, the full-membership evaluation is
// always included alongside the C(G, G−f) honest subsets, so the released
// set is safe both for the actual all-member release and for every residual
// view colluders could isolate.
//
// leaderEnclave, when non-nil, accounts the leader-side protected memory the
// protocol intermediates occupy (count vectors, pair statistics, LR-matrices)
// and is the source of Table 3's memory column.
func RunAssessment(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave) (*Report, error) {
	return RunAssessmentWithOptions(members, reference, cfg, policy, leaderEnclave, AssessmentOptions{})
}

// RunAssessmentWithOptions is RunAssessment with cancellation and checkpoint
// durability. With the zero options it behaves exactly like RunAssessment.
// When opts.Checkpoints is set, phase boundaries are persisted to the store,
// and a compatible existing checkpoint (same fingerprint: configuration,
// policy, provider name set, reference dimensions) seeds the run — completed
// phases replay from the snapshot instead of re-querying members, and
// Report.Resumed records that it happened.
func RunAssessmentWithOptions(members []Provider, reference *genome.Matrix, cfg Config, policy CollusionPolicy, leaderEnclave *enclave.Enclave, opts AssessmentOptions) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := len(members)
	if g == 0 {
		return nil, ErrNoMembers
	}
	if reference == nil || reference.N() == 0 {
		return nil, errors.New("core: assessment needs a non-empty reference panel")
	}
	if err := policy.Validate(g); err != nil {
		return nil, err
	}
	subsets, err := evaluationSubsets(g, policy)
	if err != nil {
		return nil, err
	}

	run := &assessmentRun{
		ctx:     opts.Context,
		cfg:     cfg,
		ref:     reference,
		acct:    leaderEnclave,
		members: make([]*cachedProvider, g),
		report:  &Report{Combinations: len(subsets)},
		pool:    defaultWorkPool(),
	}
	for i, m := range members {
		run.members[i] = newCachedProvider(m)
	}

	chainsPerBlock := 1
	if cfg.ParallelCombinations {
		chainsPerBlock = run.pool.size()
	}
	plan, err := buildLatticePlan(g, policy, chainsPerBlock)
	if err != nil {
		return nil, err
	}
	if plan.count != len(subsets) {
		return nil, fmt.Errorf("core: lattice plan covers %d subsets, want %d", plan.count, len(subsets))
	}

	if opts.Checkpoints != nil {
		if len(opts.ProviderNames) != g {
			return nil, fmt.Errorf("core: %d provider names for %d members (checkpointing needs stable identities)", len(opts.ProviderNames), g)
		}
		fp := Fingerprint(cfg, policy, opts.ProviderNames, reference.N(), reference.L())
		run.cs, err = newCkState(opts.Checkpoints, opts.ProviderNames, fp, g, policy)
		if err != nil {
			return nil, err
		}
		run.cs.retain = opts.RetainCheckpoints
		run.cs.adoptBlames(opts.blamed)
	}
	run.audit = opts.auditSummaries

	if err := run.ctxErr(); err != nil {
		return nil, err
	}
	if err := run.collectSummaries(); err != nil {
		return nil, err
	}
	lPrime, perMAF, err := run.phase1MAF(plan)
	if err != nil {
		return nil, err
	}
	lDouble, perLD, err := run.phase2LD(plan, lPrime)
	if err != nil {
		return nil, err
	}
	safe, perSafe, power, err := run.phase3LR(plan, lDouble)
	if err != nil {
		return nil, err
	}
	// A cancellation that raced the last phase must not yield a report: the
	// caller treats a returned report as a completed (and checkpoint-cleared)
	// run, and the failover harness relies on kill-at-last-save runs
	// reporting cancellation deterministically.
	if err := run.ctxErr(); err != nil {
		return nil, err
	}

	run.report.Selection = Selection{AfterMAF: lPrime, AfterLD: lDouble, Safe: safe, Power: power}
	run.report.PerCombination = make([]Selection, len(subsets))
	for c := range subsets {
		run.report.PerCombination[c] = Selection{AfterMAF: perMAF[c], AfterLD: perLD[c], Safe: perSafe[c]}
	}
	if run.acct != nil {
		run.report.PeakEnclaveBytes = run.acct.MemoryPeak()
	}
	run.report.PeakLRMatrixBytes = run.lrPeak
	run.report.Resumed = run.resumed
	run.report.Blamed = run.cs.allBlames()
	run.report.CorruptionRecovered = run.cs.recoveredCorruption()
	run.cs.finish()
	return run.report, nil
}

// evaluationSubsets enumerates the member subsets to evaluate: always the
// full membership first, then every honest combination the policy requires.
func evaluationSubsets(g int, policy CollusionPolicy) ([][]int, error) {
	full := make([]int, g)
	for i := range full {
		full[i] = i
	}
	subsets := [][]int{full}
	switch {
	case policy.Conservative:
		more, err := combin.ConservativeSubsets(g)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		subsets = append(subsets, more...)
	case policy.F > 0:
		more, err := combin.HonestSubsets(g, policy.F)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		subsets = append(subsets, more...)
	}
	return subsets, nil
}

// assessmentRun carries the leader-side state across phases.
type assessmentRun struct {
	ctx     context.Context
	cfg     Config
	ref     *genome.Matrix
	acct    *enclave.Enclave
	members []*cachedProvider
	report  *Report
	pool    *workPool
	cs      *ckState
	resumed bool
	// audit challenges auditable members to reproduce their checkpointed
	// summaries on resume (the equivocation probe of Byzantine-aware runs).
	audit bool

	counts    [][]int64
	caseNs    []int64
	refCounts []int64
	refCols   *genome.ColumnBits
	refN      int64

	timingMu  sync.Mutex
	pairMu    sync.Mutex
	pairsSeen map[uint64]bool
	// pairWarm maps a pair to the bitmask of members already asked to warm it
	// (guarded by pairMu, nil for federations past 64 members). Evaluation
	// chains consult it before forwarding an announcement, so a member
	// receives each pair at most once per assessment no matter how many
	// chains' survivor windows cover it.
	pairWarm map[uint64]uint64

	lrMu    sync.Mutex
	lrBytes int64
	lrPeak  int64
}

// markResumed records that at least one phase replayed from a checkpoint.
// Locked: parallel-combination mode replays combinations concurrently.
func (r *assessmentRun) markResumed() {
	r.timingMu.Lock()
	r.resumed = true
	r.timingMu.Unlock()
}

// ctxErr reports cancellation; a run without a context never cancels.
// Checked at phase boundaries — in-flight member fetches are bounded by the
// transport layer's own context plumbing, so boundary checks keep the core
// loop allocation-free on the uncancelled path.
func (r *assessmentRun) ctxErr() error {
	if r.ctx == nil {
		return nil
	}
	return r.ctx.Err()
}

// addTiming accumulates wall time into one breakdown bucket; the accessor is
// locked because parallel-combination mode updates buckets concurrently.
func (r *assessmentRun) addTiming(bucket *time.Duration, start time.Time) {
	elapsed := time.Since(start)
	r.timingMu.Lock()
	*bucket += elapsed
	r.timingMu.Unlock()
}

func (r *assessmentRun) alloc(n int64) error {
	if r.acct == nil {
		return nil
	}
	return r.acct.Alloc(n)
}

func (r *assessmentRun) free(n int64) {
	if r.acct != nil {
		r.acct.Free(n)
	}
}

// allocLR accounts protected memory that holds LR-matrices, tracking the
// Phase 3 component of the enclave footprint separately so the report can
// attribute it (Report.PeakLRMatrixBytes).
func (r *assessmentRun) allocLR(n int64) error {
	if err := r.alloc(n); err != nil {
		return err
	}
	r.lrMu.Lock()
	r.lrBytes += n
	if r.lrBytes > r.lrPeak {
		r.lrPeak = r.lrBytes
	}
	r.lrMu.Unlock()
	return nil
}

func (r *assessmentRun) freeLR(n int64) {
	r.free(n)
	r.lrMu.Lock()
	r.lrBytes -= n
	r.lrMu.Unlock()
}

// notePair marks a pair as touched by this assessment, reporting whether it
// was fresh — the signal for accounting the leader-side pair-statistics
// footprint exactly once per pair.
func (r *assessmentRun) notePair(a, b int) bool {
	key := pairKey(a, b)
	r.pairMu.Lock()
	fresh := !r.pairsSeen[key]
	if fresh {
		r.pairsSeen[key] = true
	}
	r.pairMu.Unlock()
	return fresh
}

// collectSummaries gathers each member's count vector and population size —
// the pre-processing summary-statistics step of Section 5.2. Members compute
// in parallel on their own premises.
func (r *assessmentRun) collectSummaries() error {
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	l := r.ref.L()
	g := len(r.members)

	if counts, caseNs, ok := r.cs.seededSummaries(); ok {
		// Resume: the checkpoint holds validated summaries for every
		// provider — prime the caches and skip the federation round trip.
		// Byzantine-aware runs first challenge each auditable member to
		// reproduce the summary it reported to the previous leader: an
		// honest member is deterministic over its fixed cohort, so a digest
		// mismatch is equivocation, not drift.
		if err := r.auditSeededSummaries(counts, caseNs); err != nil {
			return err
		}
		r.counts = counts
		r.caseNs = caseNs
		seedSummaryCaches(r.members, counts, caseNs)
		r.resumed = true
	} else {
		r.counts = make([][]int64, g)
		r.caseNs = make([]int64, g)
		errs := make([]error, g)

		var wg sync.WaitGroup
		for i, m := range r.members {
			i, m := i, m
			r.pool.Go(&wg, func() {
				counts, err := m.Counts()
				if err != nil {
					errs[i] = memberErr(i, PhaseSummary, "counts: %w", err)
					return
				}
				n, err := m.CaseN()
				if err != nil {
					errs[i] = memberErr(i, PhaseSummary, "population size: %w", err)
					return
				}
				r.counts[i] = counts
				r.caseNs[i] = n
			})
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return err
		}
	}

	// Leader-side validation: malformed or impossible contributions are the
	// tampering the trusted module must detect. Invalid payloads are never
	// retried — a plain run fails outright, a Byzantine-aware resilient run
	// quarantines the member with a blame record and restarts over survivors.
	for i := range r.members {
		if err := validateCounts(r.counts[i], r.caseNs[i], l); err != nil {
			return memberErr(i, PhaseSummary, "%w", err)
		}
		if err := r.alloc(int64(l) * bytesPerCount); err != nil {
			return err
		}
	}
	r.cs.recordSummaries(r.counts, r.caseNs)
	// The reference panel is queried for thousands of pair counts in Phase 2;
	// the column-major view turns each into a stride-1 AND+popcount.
	r.refCols = r.ref.Transpose()
	r.refCounts = make([]int64, l)
	for snp := range r.refCounts {
		r.refCounts[snp] = r.refCols.AlleleCount(snp)
	}
	r.refN = int64(r.ref.N())
	r.pairsSeen = make(map[uint64]bool)
	if len(r.members) <= 64 {
		r.pairWarm = make(map[uint64]uint64)
	}
	return nil
}

// auditSeededSummaries is the resume-time equivocation probe: each member
// whose provider chain can bypass its caches (SummaryAuditor) re-answers the
// summary query, and the reply's digest must match the checkpointed one.
// Members inside the leader's trust domain (LocalMember shards) have no
// auditor and are skipped.
func (r *assessmentRun) auditSeededSummaries(counts [][]int64, caseNs []int64) error {
	if !r.audit || len(counts) != len(r.members) || len(caseNs) != len(r.members) {
		return nil
	}
	for i, m := range r.members {
		fresh, caseN, err := m.AuditSummary()
		if errors.Is(err, errAuditUnsupported) {
			continue
		}
		if err != nil {
			return memberErr(i, PhaseSummary, "summary audit: %w", err)
		}
		prior := DigestSummary(counts[i], caseNs[i])
		observed := DigestSummary(fresh, caseN)
		if prior != observed {
			return memberErr(i, PhaseSummary, "resume audit: %w", &EquivocationError{
				Phase: PhaseSummary, Query: "summary", Prior: prior[:], Observed: observed[:],
			})
		}
	}
	return nil
}

// subsetCounts aggregates case counts and population size over one
// combination of members (leader-enclave aggregation, lines 11–19).
func (r *assessmentRun) subsetCounts(subset []int) ([]int64, int64) {
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	sum := make([]int64, len(r.refCounts))
	var n int64
	for _, i := range subset {
		for l, c := range r.counts[i] {
			sum[l] += c
		}
		n += r.caseNs[i]
	}
	return sum, n
}

func (r *assessmentRun) phase1MAF(plan *latticePlan) ([]int, [][]int, error) {
	if err := r.ctxErr(); err != nil {
		return nil, nil, err
	}
	if lPrime, perMAF, ok := r.cs.seededMAF(); ok && len(perMAF) == plan.count {
		r.resumed = true
		if err := r.cs.recordMAF(lPrime, perMAF, false); err != nil {
			return nil, nil, err
		}
		return lPrime, perMAF, nil
	}
	per := make([][]int, plan.count)
	err := r.runChains(plan.chains, func(ch *latticeChain) error {
		// The chain's running aggregates: a revolving-door step updates them
		// by one member's delta — exact, because counts are integers.
		var counts []int64
		var n int64
		return ch.walk(func(pos, slot int, subset []int, rem, add int) error {
			if pos == 0 {
				counts, n = r.subsetCounts(subset)
			} else {
				aggStart := time.Now()
				for l, c := range r.counts[add] {
					counts[l] += c - r.counts[rem][l]
				}
				n += r.caseNs[add] - r.caseNs[rem]
				r.addTiming(&r.report.Timings.DataAggregation, aggStart)
			}
			start := time.Now()
			lPrime, err := MAFPhase(counts, n, r.refCounts, r.refN, r.cfg.MAFCutoff)
			r.addTiming(&r.report.Timings.Indexing, start)
			if err != nil {
				return err
			}
			per[slot] = lPrime
			return nil
		})
	})
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.Indexing, start)
	if err := r.cs.recordMAF(intersected, per, true); err != nil {
		return nil, nil, err
	}
	return intersected, per, nil
}

// ldBatchWindow is how many upcoming survivor-chain pairs one batch hint
// covers. Chains longer than the window re-announce; a window of one would
// degenerate to the per-pair path with extra round trips.
const ldBatchWindow = 16

// prefetchAdjacentPairs warms every member's pair cache with the adjacent
// pairs of L' in one batched request per member. The greedy LD scan examines
// exactly these pairs when no SNP is removed; removals trigger lazy
// single-pair fetches for the survivor chains.
func (r *assessmentRun) prefetchAdjacentPairs(lPrime []int) error {
	if len(lPrime) < 2 {
		return nil
	}
	start := time.Now()
	defer r.addTiming(&r.report.Timings.DataAggregation, start)

	allMembers := uint64(1)<<uint(len(r.members)) - 1
	pairs := make([][2]int, 0, len(lPrime)-1)
	for i := 0; i+1 < len(lPrime); i++ {
		pairs = append(pairs, [2]int{lPrime[i], lPrime[i+1]})
		key := pairKey(lPrime[i], lPrime[i+1])
		r.pairMu.Lock()
		fresh := !r.pairsSeen[key]
		if fresh {
			r.pairsSeen[key] = true
		}
		if r.pairWarm != nil {
			// Every member receives the adjacent pairs below, so later
			// survivor-window announcements need not forward them again.
			r.pairWarm[key] = allMembers
		}
		r.pairMu.Unlock()
		if fresh {
			if err := r.alloc(bytesPerPairStat * int64(len(r.members))); err != nil {
				return err
			}
		}
	}
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		i, m := i, m
		r.pool.Go(&wg, func() {
			if err := m.Prefetch(pairs); err != nil {
				errs[i] = memberErr(i, PhaseLD, "pair prefetch: %w", err)
			}
		})
	}
	wg.Wait()
	return errors.Join(errs...)
}

// subsetPairStats returns the chain-free pooled pair-statistics function for
// one combination: member contributions (fetched in parallel) plus the
// reference panel, with nothing cached leader-side beyond the providers' own
// pair caches. Single-combination chains use it — they have no later
// positions to share a decomposition with, so the chain cache would only add
// leader memory.
func (r *assessmentRun) subsetPairStats(subset []int) PairStatsFunc {
	return func(a, b int) (genome.PairStats, error) {
		if r.notePair(a, b) {
			if err := r.alloc(bytesPerPairStat * int64(len(r.members))); err != nil {
				return genome.PairStats{}, err
			}
		}

		// The reference panel's single counts are already known (Phase 1
		// computed them), so its contribution costs one PairCount column
		// pass instead of three full scans.
		pooled := genome.PairStatsFromCounts(r.refN, r.refCounts[a], r.refCounts[b], r.refCols.PairCount(a, b))

		// Fast path: after the prefetch, almost every pair the LD scan asks
		// for is in every member's cache — aggregate synchronously instead of
		// dispatching a goroutine per member.
		cached := make([]genome.PairStats, len(subset))
		hit := 0
		for slot, i := range subset {
			s, ok := r.members[i].cachedPair(a, b)
			if !ok {
				break
			}
			cached[slot] = s
			hit++
		}
		if hit == len(subset) {
			for _, s := range cached {
				pooled = pooled.Add(s)
			}
			return pooled, nil
		}

		parts := make([]genome.PairStats, len(subset))
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				s, err := r.members[i].PairStats(a, b)
				if err != nil {
					errs[slot] = memberErr(i, PhaseLD, "pair stats: %w", err)
					return
				}
				parts[slot] = s
			})
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return genome.PairStats{}, err
		}
		for _, s := range parts {
			pooled = pooled.Add(s)
		}
		return pooled, nil
	}
}

// subsetPrefetch returns the chain-free survivor-chain batch hook for one
// combination: announced pairs are fetched from the combination's members in
// parallel, one batched request each, and land in the providers' caches where
// the pooled PairStatsFunc reads them.
func (r *assessmentRun) subsetPrefetch(subset []int) PairBatchFunc {
	return func(pairs [][2]int) error {
		fresh := 0
		var perMember map[int][][2]int
		r.pairMu.Lock()
		for _, p := range pairs {
			key := pairKey(p[0], p[1])
			if !r.pairsSeen[key] {
				r.pairsSeen[key] = true
				fresh++
			}
			var mask uint64
			if r.pairWarm != nil {
				mask = r.pairWarm[key]
			}
			for _, i := range subset {
				if mask&(1<<uint(i)) != 0 {
					continue
				}
				mask |= 1 << uint(i)
				if perMember == nil {
					perMember = make(map[int][][2]int, len(subset))
				}
				perMember[i] = append(perMember[i], p)
			}
			if r.pairWarm != nil {
				r.pairWarm[key] = mask
			}
		}
		r.pairMu.Unlock()
		if fresh > 0 {
			if err := r.alloc(bytesPerPairStat * int64(len(r.members)) * int64(fresh)); err != nil {
				return err
			}
		}
		if len(perMember) == 0 {
			return nil
		}
		idx := make([]int, 0, len(perMember))
		for i := range perMember {
			idx = append(idx, i)
		}
		errs := make([]error, len(idx))
		var wg sync.WaitGroup
		for slot, i := range idx {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				if err := r.members[i].Prefetch(perMember[i]); err != nil {
					errs[slot] = memberErr(i, PhaseLD, "survivor-chain prefetch: %w", err)
				}
			})
		}
		wg.Wait()
		return errors.Join(errs...)
	}
}

func (r *assessmentRun) phase2LD(plan *latticePlan, lPrime []int) ([]int, [][]int, error) {
	if err := r.ctxErr(); err != nil {
		return nil, nil, err
	}
	if lDouble, perLD, pairs, ok := r.cs.seededLD(); ok && len(perLD) == plan.count {
		// Resume: Phase 2 outputs come from the checkpoint; the aggregated
		// pair statistics seed the provider caches so any residual pooled
		// query (Phase 3 never issues one, but callers may) replays locally.
		r.resumed = true
		seedPairCaches(r.members, pairs)
		if err := r.cs.recordLD(lDouble, perLD, r.members, false); err != nil {
			return nil, nil, err
		}
		return lDouble, perLD, nil
	}
	if err := r.prefetchAdjacentPairs(lPrime); err != nil {
		return nil, nil, err
	}

	// The association ranking used by getMostRanked is study-wide: the
	// paper's Algorithm 1 ranks by "p-value on chi^2 of study s", not per
	// combination. Combinations still test dependence on their own pooled
	// pair statistics; only the tie-break between two dependent SNPs uses
	// the canonical ranking, which keeps the per-combination survivor
	// chains aligned.
	fullCounts, fullN := r.subsetCounts(plan.chains[0].head)
	start := time.Now()
	pvals, err := AssociationPValues(fullCounts, fullN, r.refCounts, r.refN, r.cfg.PaperChiSquare)
	r.addTiming(&r.report.Timings.Indexing, start)
	if err != nil {
		return nil, nil, err
	}

	per := make([][]int, plan.count)
	err = r.runChains(plan.chains, func(ch *latticeChain) error {
		// The chain-local pooling cache survives across the chain's
		// combinations: each Gray step adds at most one member's
		// contributions to the decompositions already on hand. A chain with
		// a single position has nothing to share across steps, so it runs
		// the chain-free path and carries no extra leader memory — this
		// keeps the no-collusion footprint identical to the pre-lattice
		// protocol.
		single := ch.length() == 1
		var cache *chainPairCache
		if !single {
			cache = newChainPairCache(r)
			defer cache.release()
		}
		return ch.walk(func(pos, slot int, subset []int, rem, add int) error {
			pooled, prefetch := r.subsetPairStats(subset), r.subsetPrefetch(subset)
			if !single {
				pooled, prefetch = cache.pooledFunc(subset), cache.prefetchFunc(subset)
			}
			start := time.Now()
			lDouble, err := LDPhaseBatch(lPrime, pooled, prefetch, ldBatchWindow, pvals, r.cfg.LDCutoff)
			r.addTiming(&r.report.Timings.LD, start)
			if err != nil {
				return err
			}
			per[slot] = lDouble
			return nil
		})
	})
	if err != nil {
		return nil, nil, err
	}
	start = time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.LD, start)
	if err := r.cs.recordLD(intersected, per, r.members, true); err != nil {
		return nil, nil, err
	}
	return intersected, per, nil
}

// bitLRBytes is the protected-memory footprint of one bit-packed LR-matrix:
// one bit per cell packed into 64-bit words per column, two float64
// representatives per column, plus the fixed header.
func bitLRBytes(rows, cols int64) int64 {
	return lrMatrixOverhead + 8*((rows+63)/64)*cols + 16*cols
}

func (r *assessmentRun) phase3LR(plan *latticePlan, lDouble []int) ([]int, [][]int, float64, error) {
	if err := r.ctxErr(); err != nil {
		return nil, nil, 0, err
	}
	per := make([][]int, plan.count)
	var fullPower float64
	// The admission order is derived once, from the full-membership
	// evaluation (slot 0), and shared with every collusion combination;
	// see LRPhaseBitOrdered.
	var order []int

	// The reference panel's genotype bit-pattern is combination-independent:
	// refFreq depends only on the reference counts, so across collusion
	// combinations only the per-column log ratios change, never which cells
	// are minor alleles. The full-membership evaluation (always first,
	// sequentially) builds the pattern once; every other combination reskins
	// it with its own ratios, sharing the read-only cell bits.
	var refPattern *lrtest.BitMatrix
	cols := int64(len(lDouble))
	reskinBytes := 16 * cols // a reskin allocates only two representatives per column

	// The incremental path needs every member to ship genotype patterns;
	// a single provider without the capability drops the whole run to the
	// per-combination legacy path (mixed-mode merging would reintroduce the
	// rebuild it exists to avoid).
	patterned := true
	for _, m := range r.members {
		if !m.supportsPatterns() {
			patterned = false
			break
		}
	}

	// The reference pattern lives for the whole phase.
	refBytes := bitLRBytes(r.refN, cols)
	if err := r.allocLR(refBytes); err != nil {
		return nil, nil, 0, err
	}
	defer r.freeLR(refBytes)

	if patterned {
		if err := r.phase3Lattice(plan, lDouble, per, &order, &refPattern, &fullPower, reskinBytes); err != nil {
			return nil, nil, 0, err
		}
	} else {
		if err := r.phase3Legacy(plan, lDouble, per, &order, &refPattern, &fullPower, reskinBytes); err != nil {
			return nil, nil, 0, err
		}
	}

	start := time.Now()
	intersected := IntersectSorted(per...)
	r.addTiming(&r.report.Timings.LRTest, start)
	return intersected, per, fullPower, nil
}

// phase3Legacy is the per-combination Phase 3: every subset fetches its
// members' frequency-skinned LR-matrices and merges them from scratch. It
// remains the path for providers that cannot ship genotype patterns, and the
// equivalence baseline the lattice path is tested against.
func (r *assessmentRun) phase3Legacy(plan *latticePlan, lDouble []int, per [][]int, order *[]int, refPattern **lrtest.BitMatrix, fullPower *float64, reskinBytes int64) error {
	cols := int64(len(lDouble))
	evalSubset := func(c int, subset []int) error {
		if err := r.ctxErr(); err != nil {
			return err
		}
		var comboNames []string
		if r.cs != nil {
			comboNames = subsetNames(r.cs.names, subset)
		}
		if rec, ok := r.cs.seededCombination(comboNames); ok && c > 0 {
			// Replay a completed collusion combination from the checkpoint;
			// no member contact, no matrix rebuild.
			r.markResumed()
			per[c] = rec.Safe
			return r.cs.recordCombination(comboNames, rec.Safe, rec.Power, nil, false)
		}

		counts, n := r.subsetCounts(subset)

		start := time.Now()
		caseFreq := Frequencies(counts, n, lDouble)
		refFreq := Frequencies(r.refCounts, r.refN, lDouble)
		r.addTiming(&r.report.Timings.Indexing, start)

		if rec, ok := r.cs.seededCombination(comboNames); ok && c == 0 && len(rec.Order) > 0 {
			// The full-membership combination anchors every other one: its
			// canonical admission order is checkpointed directly (the merged
			// per-individual matrix never is). Reuse the order; if the
			// reference pattern cannot be rebuilt, fall through to a full
			// recompute.
			refLR, berr := BuildLRBitMatrix(r.ref, lDouble, caseFreq, refFreq)
			if berr == nil {
				*refPattern = refLR
				*order = append([]int(nil), rec.Order...)
				r.markResumed()
				per[0] = rec.Safe
				*fullPower = rec.Power
				return r.cs.recordCombination(comboNames, rec.Safe, rec.Power, rec.Order, false)
			}
		}

		var rows int64
		for _, i := range subset {
			rows += r.caseNs[i]
		}
		lrBytes := bitLRBytes(rows, cols)
		if c > 0 {
			lrBytes += reskinBytes
		}
		if err := r.allocLR(lrBytes); err != nil {
			return err
		}
		defer r.freeLR(lrBytes)

		// Collect the members' local LR-matrices: each member builds its
		// own matrix on its own machine, concurrently.
		start = time.Now()
		parts := make([]*lrtest.BitMatrix, len(subset))
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				lr, err := r.members[i].LRMatrix(lDouble, caseFreq, refFreq)
				if err != nil {
					errs[slot] = memberErr(i, PhaseLR, "LR-matrix: %w", err)
					return
				}
				if err := validateLRMatrix(lr, r.caseNs[i], len(lDouble)); err != nil {
					errs[slot] = memberErr(i, PhaseLR, "%w", err)
					return
				}
				parts[slot] = lr
			})
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return err
		}
		merged, err := lrtest.MergeBits(parts...)
		r.addTiming(&r.report.Timings.DataAggregation, start)
		if err != nil {
			return fmt.Errorf("core: merge LR-matrices: %w", err)
		}

		// Obtain the reference matrix — built once, reskinned after — and
		// run the empirical search.
		start = time.Now()
		var refLR *lrtest.BitMatrix
		if c == 0 {
			refLR, err = BuildLRBitMatrix(r.ref, lDouble, caseFreq, refFreq)
			if err != nil {
				return err
			}
			*refPattern = refLR
		} else {
			ratios, rerr := lrtest.NewLogRatios(caseFreq, refFreq)
			if rerr != nil {
				return fmt.Errorf("core: log ratios: %w", rerr)
			}
			refLR, err = (*refPattern).Reskin(ratios)
			if err != nil {
				return err
			}
		}
		if c == 0 {
			*order = lrtest.DiscriminabilityOrderBit(merged, refLR)
		}
		safe, power, err := LRPhaseBitOrdered(lDouble, merged, refLR, r.cfg.LR, *order)
		r.addTiming(&r.report.Timings.LRTest, start)
		if err != nil {
			return err
		}
		per[c] = safe
		if c == 0 {
			*fullPower = power
		}
		var orderCkpt []int
		if c == 0 && r.cs != nil {
			// Only the full-membership combination persists its admission
			// order: that derived ranking is all a resuming leader needs to
			// anchor the other combinations.
			orderCkpt = append([]int(nil), *order...)
		}
		return r.cs.recordCombination(comboNames, safe, power, orderCkpt, true)
	}

	// The full-membership subset runs first (it defines the canonical
	// order); the combinations may then run sequentially or in parallel.
	if err := evalSubset(0, plan.chains[0].head); err != nil {
		return err
	}
	if len(plan.chains) > 1 {
		return r.runChains(plan.chains[1:], func(ch *latticeChain) error {
			return ch.walk(func(pos, slot int, subset []int, rem, add int) error {
				return evalSubset(slot, subset)
			})
		})
	}
	return nil
}

// phase3Lattice is the incremental Phase 3 over the combination lattice.
// Each member ships its genotype bit-pattern once; every combination's
// merged per-individual matrix is then derived leader-side by stacking
// patterns and reskinning with the combination's pooled frequencies. Along a
// Gray chain the stack updates by a single remove/push per step.
//
// Selections are bit-identical to the legacy path. For collusion
// combinations (c > 0) every consumer — per-individual scores, the exact
// k-th order statistic threshold, the power ratio — is invariant under row
// permutation of the case matrix, so the stack's slide-down row order is
// immaterial; the full-membership combination, whose discriminability order
// IS row-order sensitive, is built in canonical member order from a fresh
// concatenation. See DESIGN.md's subset-lattice section for the full
// argument.
func (r *assessmentRun) phase3Lattice(plan *latticePlan, lDouble []int, per [][]int, order *[]int, refPattern **lrtest.BitMatrix, fullPower *float64, reskinBytes int64) error {
	cols := int64(len(lDouble))
	ps := newPatternSet(r, lDouble)
	defer ps.release()
	var totalRows int64
	for _, n := range r.caseNs {
		totalRows += n
	}

	// Slot 0: the full membership, always first and sequential — it anchors
	// the canonical admission order and the reference pattern.
	evalFull := func(subset []int) error {
		if err := r.ctxErr(); err != nil {
			return err
		}
		var comboNames []string
		if r.cs != nil {
			comboNames = subsetNames(r.cs.names, subset)
		}
		counts, n := r.subsetCounts(subset)

		start := time.Now()
		caseFreq := Frequencies(counts, n, lDouble)
		refFreq := Frequencies(r.refCounts, r.refN, lDouble)
		r.addTiming(&r.report.Timings.Indexing, start)

		if rec, ok := r.cs.seededCombination(comboNames); ok && len(rec.Order) > 0 {
			refLR, berr := BuildLRBitMatrix(r.ref, lDouble, caseFreq, refFreq)
			if berr == nil {
				*refPattern = refLR
				*order = append([]int(nil), rec.Order...)
				r.markResumed()
				per[0] = rec.Safe
				*fullPower = rec.Power
				return r.cs.recordCombination(comboNames, rec.Safe, rec.Power, rec.Order, false)
			}
		}

		// Fetch every member's pattern concurrently — the only member
		// contact the whole phase makes.
		start = time.Now()
		parts := make([]*lrtest.BitMatrix, len(subset))
		errs := make([]error, len(subset))
		var wg sync.WaitGroup
		for slot, i := range subset {
			slot, i := slot, i
			r.pool.Go(&wg, func() {
				p, err := ps.get(i)
				if err != nil {
					errs[slot] = err
					return
				}
				parts[slot] = p
			})
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return err
		}
		// Canonical member order and exact stride: the discriminability
		// order derived from this matrix is row-order sensitive.
		concat, err := lrtest.ConcatBitPatterns(parts...)
		r.addTiming(&r.report.Timings.DataAggregation, start)
		if err != nil {
			return fmt.Errorf("core: concatenate genotype patterns: %w", err)
		}
		lrBytes := bitLRBytes(totalRows, cols) + reskinBytes
		if err := r.allocLR(lrBytes); err != nil {
			return err
		}
		defer r.freeLR(lrBytes)

		start = time.Now()
		ratios, err := lrtest.NewLogRatios(caseFreq, refFreq)
		if err != nil {
			return fmt.Errorf("core: log ratios: %w", err)
		}
		merged, err := concat.Reskin(ratios)
		if err != nil {
			return err
		}
		refLR, err := BuildLRBitMatrix(r.ref, lDouble, caseFreq, refFreq)
		if err != nil {
			return err
		}
		*refPattern = refLR
		*order = lrtest.DiscriminabilityOrderBit(merged, refLR)
		safe, power, err := LRPhaseBitOrdered(lDouble, merged, refLR, r.cfg.LR, *order)
		r.addTiming(&r.report.Timings.LRTest, start)
		if err != nil {
			return err
		}
		per[0] = safe
		*fullPower = power
		var orderCkpt []int
		if r.cs != nil {
			orderCkpt = append([]int(nil), *order...)
		}
		return r.cs.recordCombination(comboNames, safe, power, orderCkpt, true)
	}
	if err := evalFull(plan.chains[0].head); err != nil {
		return err
	}
	if len(plan.chains) == 1 {
		return nil
	}

	// Collusion chains: one pattern stack, one selector, and one running
	// count vector per chain, each updated by one member's delta per Gray
	// step. Seeded (checkpoint-replayed) steps update only the counts and
	// mark the stack stale — no member contact, no splicing — and the next
	// live step rebuilds the stack from the patterns already on hand.
	return r.runChains(plan.chains[1:], func(ch *latticeChain) error {
		sel := lrtest.NewSelector()
		var stack *lrtest.PatternStack
		var stackBytes int64
		stale := true
		var counts []int64
		var n int64
		defer func() { r.freeLR(stackBytes) }()
		return ch.walk(func(pos, slot int, subset []int, rem, add int) error {
			if err := r.ctxErr(); err != nil {
				return err
			}
			if pos == 0 {
				counts, n = r.subsetCounts(subset)
			} else {
				aggStart := time.Now()
				for l, c := range r.counts[add] {
					counts[l] += c - r.counts[rem][l]
				}
				n += r.caseNs[add] - r.caseNs[rem]
				r.addTiming(&r.report.Timings.DataAggregation, aggStart)
			}
			var comboNames []string
			if r.cs != nil {
				comboNames = subsetNames(r.cs.names, subset)
			}
			if rec, ok := r.cs.seededCombination(comboNames); ok {
				r.markResumed()
				per[slot] = rec.Safe
				stale = true
				return r.cs.recordCombination(comboNames, rec.Safe, rec.Power, nil, false)
			}

			idxStart := time.Now()
			caseFreq := Frequencies(counts, n, lDouble)
			refFreq := Frequencies(r.refCounts, r.refN, lDouble)
			r.addTiming(&r.report.Timings.Indexing, idxStart)

			aggStart := time.Now()
			if stack == nil {
				stack = lrtest.NewPatternStack(int(totalRows), len(lDouble))
				bytes := bitLRBytes(totalRows, cols)
				if err := r.allocLR(bytes); err != nil {
					return err
				}
				stackBytes = bytes
			}
			if stale {
				stack.Reset()
				for _, i := range subset {
					p, err := ps.get(i)
					if err != nil {
						return err
					}
					if err := stack.Push(i, p); err != nil {
						return err
					}
				}
				stale = false
			} else {
				if err := stack.Remove(rem); err != nil {
					return err
				}
				p, err := ps.get(add)
				if err != nil {
					return err
				}
				if err := stack.Push(add, p); err != nil {
					return err
				}
			}
			r.addTiming(&r.report.Timings.DataAggregation, aggStart)

			lrStart := time.Now()
			if err := r.allocLR(2 * reskinBytes); err != nil {
				return err
			}
			defer r.freeLR(2 * reskinBytes)
			ratios, err := lrtest.NewLogRatios(caseFreq, refFreq)
			if err != nil {
				return fmt.Errorf("core: log ratios: %w", err)
			}
			caseLR, err := stack.Matrix().Reskin(ratios)
			if err != nil {
				return err
			}
			refLR, err := (*refPattern).Reskin(ratios)
			if err != nil {
				return err
			}
			safe, power, err := LRPhaseBitSelector(lDouble, caseLR, refLR, r.cfg.LR, *order, sel)
			r.addTiming(&r.report.Timings.LRTest, lrStart)
			if err != nil {
				return err
			}
			per[slot] = safe
			return r.cs.recordCombination(comboNames, safe, power, nil, true)
		})
	})
}
