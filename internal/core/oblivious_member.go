package core

import (
	"fmt"
	"math/bits"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/oram"
)

// ObliviousMember is a Provider whose genotype columns live in a Path ORAM:
// when the protocol asks for a specific SNP's counts, a pair's statistics,
// or an LR-matrix over the retained subset, the member enclave's physical
// memory trace shows only random root-to-leaf tree paths — an observer of
// the untrusted host cannot tell which SNPs survived each phase. This is the
// data-oblivious member-side processing the paper defers to future work.
type ObliviousMember struct {
	n, l      int
	rowBytes  int
	store     *oram.Store
	caseCount int64
}

var (
	_ Provider        = (*ObliviousMember)(nil)
	_ PatternProvider = (*ObliviousMember)(nil)
)

// NewObliviousMember loads a genotype shard into an ORAM store, one block
// per SNP column. The rng drives ORAM leaf remapping; production code must
// pass a crypto-backed source (internal/crand.Source) so the host cannot
// predict leaf assignments, while tests pass a seeded deterministic source.
func NewObliviousMember(shard *genome.Matrix, rng oram.Rand) (*ObliviousMember, error) {
	if shard == nil {
		return nil, fmt.Errorf("core: oblivious member needs a genotype shard")
	}
	if shard.L() == 0 {
		return nil, fmt.Errorf("core: oblivious member needs at least one SNP column")
	}
	rowBytes := (shard.N() + 7) / 8
	if rowBytes == 0 {
		rowBytes = 1
	}
	store, err := oram.NewStore(shard.L(), rowBytes, rng)
	if err != nil {
		return nil, fmt.Errorf("core: oblivious member: %w", err)
	}
	buf := make([]byte, rowBytes)
	for l := 0; l < shard.L(); l++ {
		for i := range buf {
			buf[i] = 0
		}
		// Fold each genotype bit in with mask arithmetic: a conditional
		// store here would make the write trace depend on allele values,
		// which is exactly what routing columns through the ORAM hides.
		for i := 0; i < shard.N(); i++ {
			buf[i/8] |= shard.GetBit(i, l) << (uint(i) % 8)
		}
		if err := store.Put(l, buf); err != nil {
			return nil, fmt.Errorf("core: oblivious member column %d: %w", l, err)
		}
	}
	return &ObliviousMember{
		n:         shard.N(),
		l:         shard.L(),
		rowBytes:  rowBytes,
		store:     store,
		caseCount: int64(shard.N()),
	}, nil
}

// column fetches one SNP column's bitset through the ORAM.
func (m *ObliviousMember) column(l int) ([]byte, error) {
	if l < 0 || l >= m.l {
		//gendpr:allow(secretflow): the error names the caller's requested SNP index and the store shape, not genotype content
		return nil, fmt.Errorf("core: SNP %d out of range for %d columns", l, m.l)
	}
	return m.store.Get(l)
}

func popcount(bs []byte) int64 {
	var c int64
	for _, b := range bs {
		c += int64(bits.OnesCount8(b))
	}
	return c
}

// Counts implements Provider: every column is touched exactly once, so the
// scan itself is uniform.
func (m *ObliviousMember) Counts() ([]int64, error) {
	out := make([]int64, m.l)
	for l := 0; l < m.l; l++ {
		col, err := m.column(l)
		if err != nil {
			return nil, err
		}
		out[l] = popcount(col)
	}
	return out, nil
}

// CaseN implements Provider.
func (m *ObliviousMember) CaseN() (int64, error) { return m.caseCount, nil }

// PairStats implements Provider via two ORAM accesses.
func (m *ObliviousMember) PairStats(a, b int) (genome.PairStats, error) {
	colA, err := m.column(a)
	if err != nil {
		return genome.PairStats{}, err
	}
	colB, err := m.column(b)
	if err != nil {
		return genome.PairStats{}, err
	}
	var both int64
	for i := range colA {
		both += int64(bits.OnesCount8(colA[i] & colB[i]))
	}
	x := popcount(colA)
	y := popcount(colB)
	return genome.PairStats{
		N:     m.caseCount,
		SumX:  x,
		SumY:  y,
		SumXY: both,
		SumXX: x,
		SumYY: y,
	}, nil
}

// LRMatrix implements Provider: the retained columns are fetched through the
// ORAM, so which SNPs survived to Phase 3 stays hidden from the host. Each
// ORAM block is already the column's genotype bitset, so it packs into the
// bit-matrix verbatim — no per-cell decode and no dense intermediate.
func (m *ObliviousMember) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	if len(cols) != len(caseFreq) || len(cols) != len(refFreq) {
		return nil, fmt.Errorf("core: %d columns vs %d/%d frequencies", len(cols), len(caseFreq), len(refFreq))
	}
	ratios, err := lrtest.NewLogRatios(caseFreq, refFreq)
	if err != nil {
		return nil, fmt.Errorf("core: log ratios: %w", err)
	}
	return lrtest.BuildBitFromColumnBytes(m.n, ratios, func(j int) ([]byte, error) {
		return m.column(cols[j])
	})
}

// LRPattern implements PatternProvider: the same ORAM column walk as
// LRMatrix, packed with zero representatives. The access trace is identical
// to an LRMatrix request over the same columns, so shipping a pattern leaks
// nothing an LR-matrix would not.
func (m *ObliviousMember) LRPattern(cols []int) (*lrtest.BitMatrix, error) {
	if err := checkPatternRequest(m.l, cols); err != nil {
		return nil, err
	}
	zero := make([]float64, len(cols))
	return lrtest.BuildBitFromColumnBytes(m.n, lrtest.LogRatios{Minor: zero, Major: zero}, func(j int) ([]byte, error) {
		return m.column(cols[j])
	})
}
