package core

import (
	"errors"
	"fmt"

	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/stats"
)

// PairStatsFunc returns the pooled correlation sufficient statistics for a
// SNP pair (original indices), aggregated over every individual the current
// evaluation considers: the case genomes of the participating GDOs plus the
// reference panel. The distributed pipeline backs it with leader-side
// aggregation of member contributions; the centralized baseline with direct
// computation over the pooled matrices.
type PairStatsFunc func(a, b int) (genome.PairStats, error)

// MAFPhase is Phase 1: it pools case counts with the reference panel and
// retains the SNPs whose global minor-allele frequency reaches the cutoff,
// returning L' as original SNP indices (Algorithm 1, lines 10–25).
func MAFPhase(caseCounts []int64, caseN int64, refCounts []int64, refN int64, cutoff float64) ([]int, error) {
	if len(caseCounts) != len(refCounts) {
		return nil, fmt.Errorf("core: %d case counts vs %d reference counts", len(caseCounts), len(refCounts))
	}
	total := caseN + refN
	retained := make([]int, 0, len(caseCounts))
	for l := range caseCounts {
		if stats.MAF(caseCounts[l]+refCounts[l], total) >= cutoff {
			retained = append(retained, l)
		}
	}
	return retained, nil
}

// AssociationPValues ranks every SNP by its case/reference association: the
// chi-square p-value used by the LD phase's getMostRanked (smaller p-value =
// higher rank). The paperForm flag selects the paper's simplified statistic.
func AssociationPValues(caseCounts []int64, caseN int64, refCounts []int64, refN int64, paperForm bool) ([]float64, error) {
	if len(caseCounts) != len(refCounts) {
		return nil, fmt.Errorf("core: %d case counts vs %d reference counts", len(caseCounts), len(refCounts))
	}
	pvals := make([]float64, len(caseCounts))
	for l := range caseCounts {
		tab, err := stats.NewSingleTable(caseN, caseCounts[l], refN, refCounts[l])
		if err != nil {
			return nil, fmt.Errorf("core: SNP %d: %w", l, err)
		}
		p, err := tab.AssocPValue(paperForm)
		if err != nil {
			return nil, fmt.Errorf("core: SNP %d: %w", l, err)
		}
		pvals[l] = p
	}
	return pvals, nil
}

// PairBatchFunc announces pairs the LD scan is about to examine, so a
// distributed pair-statistics provider can fetch them in one round trip per
// member instead of one request per pair. Implementations may over-fetch
// (announced pairs are a lookahead window, not a promise) and must tolerate
// pairs they have already seen. The slice is only valid for the duration of
// the call — the scan reuses the buffer between announcements.
type PairBatchFunc func(pairs [][2]int) error

// ldBatchRamp is the lookahead of a survivor chain's first announcement.
// Most chains end after a removal or two, so announcing the full window up
// front warms mostly-unused pairs into every member's cache; the ramp bounds
// that waste while a chain that persists past it still gets full windows.
const ldBatchRamp = 4

// LDPhase is Phase 2: a greedy scan over the retained SNPs in positional
// order. The current survivor is tested against the next SNP using pooled
// correlation statistics; when the pair's independence p-value falls below
// the cutoff the pair is dependent and only the higher-ranked SNP (smaller
// association p-value, ties to the lower index) survives. The result L”
// contains pairwise-independent SNPs in ascending order.
func LDPhase(retained []int, pool PairStatsFunc, assocPValues []float64, cutoff float64) ([]int, error) {
	return LDPhaseBatch(retained, pool, nil, 0, assocPValues, cutoff)
}

// LDPhaseBatch is LDPhase with a survivor-chain batch hint. The adjacent
// pairs of the retained list are assumed prefetched (phase2LD warms them
// before the scan); the pairs that miss that warm-up are the survivor
// chains — after a dependence removal the survivor is re-tested against each
// following SNP, and those pairs are not adjacent in the original list. When
// a chain starts, the scan announces up to window upcoming (survivor, next)
// pairs through prefetch so the provider can batch them, re-announcing if a
// chain outlives its window. A nil prefetch or zero window degrades to the
// lazy per-pair path.
func LDPhaseBatch(retained []int, pool PairStatsFunc, prefetch PairBatchFunc, window int, assocPValues []float64, cutoff float64) ([]int, error) {
	switch len(retained) {
	case 0:
		return []int{}, nil
	case 1:
		return []int{retained[0]}, nil
	}
	out := make([]int, 0, len(retained))
	current := retained[0]
	hinted := 0 // retained index (exclusive) covered by the current chain's announcements
	// The announcement buffer is reused across windows: hooks receive a view
	// that is only valid for the duration of the call (PairBatchFunc's
	// contract), so the scan does not allocate per chain.
	var pairs [][2]int
	lastCur := -1 // survivor of the most recent announcement
	for idx := 1; idx < len(retained); idx++ {
		next := retained[idx]
		if prefetch != nil && window > 0 && current != retained[idx-1] && idx >= hinted {
			// Ramp the window: most survivor chains end after one or two
			// removals, so a chain's first announcement covers only
			// ldBatchRamp pairs; re-announcements for a chain that outlives
			// it use the full window. This keeps the over-fetch of short
			// chains bounded without costing long chains round trips.
			w := window
			if current != lastCur {
				if w > ldBatchRamp {
					w = ldBatchRamp
				}
				lastCur = current
			}
			end := idx + w
			if end > len(retained) {
				end = len(retained)
			}
			pairs = pairs[:0]
			for j := idx; j < end; j++ {
				pairs = append(pairs, [2]int{current, retained[j]})
			}
			if err := prefetch(pairs); err != nil {
				return nil, fmt.Errorf("core: survivor-chain prefetch: %w", err)
			}
			hinted = end
		}
		ps, err := pool(current, next)
		if err != nil {
			//gendpr:allow(secretflow): the pair indices echo the scan's own query (protocol metadata), not cohort data
			return nil, fmt.Errorf("core: pair stats (%d,%d): %w", current, next, err)
		}
		p, err := stats.LDPValue(ps)
		if errors.Is(err, stats.ErrDegeneratePair) {
			// A monomorphic SNP carries no correlation signal; treat the
			// pair as independent rather than failing the scan (MAF does
			// not fold frequencies above 0.5, so all-ones SNPs can reach
			// this phase legitimately).
			p, err = 1, nil
		}
		if err != nil {
			//gendpr:allow(secretflow): the pair indices echo the scan's own query (protocol metadata), not cohort data
			return nil, fmt.Errorf("core: LD p-value (%d,%d): %w", current, next, err)
		}
		if p < cutoff {
			// Dependent: keep the most-ranked SNP and continue scanning
			// with it as the survivor. A change of survivor starts a new
			// chain, so the announcement window resets.
			survivor := mostRanked(current, next, assocPValues)
			if survivor != current {
				hinted = 0
			}
			current = survivor
		} else {
			out = append(out, current)
			current = next
			hinted = 0
		}
	}
	return append(out, current), nil
}

// mostRanked picks the SNP with the smaller association p-value; ties go to
// the lower index so the choice is deterministic.
func mostRanked(a, b int, pvals []float64) int {
	switch {
	case pvals[a] < pvals[b]:
		return a
	case pvals[b] < pvals[a]:
		return b
	case a <= b:
		return a
	default:
		return b
	}
}

// LRPhase is Phase 3: it runs the SecureGenome empirical safe-subset search
// over merged case and reference LR-matrices whose columns correspond to the
// SNPs in cols (original indices), and maps the selected columns back to
// original SNP indices.
func LRPhase(cols []int, caseLR, refLR *lrtest.Matrix, params lrtest.Params) ([]int, float64, error) {
	return LRPhaseOrdered(cols, caseLR, refLR, params, nil)
}

// LRPhaseOrdered is LRPhase with a caller-supplied admission order (a
// permutation of the column indices); nil derives the order from the given
// matrices. Collusion-tolerant evaluation passes the canonical full-
// federation order to every combination, so per-combination selections
// differ only where the combination's data genuinely fails the power test.
func LRPhaseOrdered(cols []int, caseLR, refLR *lrtest.Matrix, params lrtest.Params, order []int) ([]int, float64, error) {
	if caseLR.Cols() != len(cols) || refLR.Cols() != len(cols) {
		return nil, 0, fmt.Errorf("core: LR matrices have %d/%d columns, want %d",
			caseLR.Cols(), refLR.Cols(), len(cols))
	}
	if order == nil {
		order = lrtest.DiscriminabilityOrder(caseLR, refLR)
	}
	res, err := lrtest.SelectSafeWithOrder(caseLR, refLR, params, order)
	if err != nil {
		return nil, 0, fmt.Errorf("core: LR-test: %w", err)
	}
	safe := make([]int, len(res.Safe))
	for i, j := range res.Safe {
		safe[i] = cols[j]
	}
	return safe, res.Power, nil
}

// LRPhaseBit is LRPhase over bit-packed LR-matrices — the production Phase 3
// kernel. Results are bit-for-bit identical to the dense LRPhase.
func LRPhaseBit(cols []int, caseLR, refLR *lrtest.BitMatrix, params lrtest.Params) ([]int, float64, error) {
	return LRPhaseBitOrdered(cols, caseLR, refLR, params, nil)
}

// LRPhaseBitOrdered is LRPhaseOrdered over bit-packed LR-matrices.
func LRPhaseBitOrdered(cols []int, caseLR, refLR *lrtest.BitMatrix, params lrtest.Params, order []int) ([]int, float64, error) {
	if caseLR.Cols() != len(cols) || refLR.Cols() != len(cols) {
		return nil, 0, fmt.Errorf("core: LR matrices have %d/%d columns, want %d",
			caseLR.Cols(), refLR.Cols(), len(cols))
	}
	if order == nil {
		order = lrtest.DiscriminabilityOrderBit(caseLR, refLR)
	}
	res, err := lrtest.SelectSafeBitWithOrder(caseLR, refLR, params, order)
	if err != nil {
		return nil, 0, fmt.Errorf("core: LR-test: %w", err)
	}
	safe := make([]int, len(res.Safe))
	for i, j := range res.Safe {
		safe[i] = cols[j]
	}
	return safe, res.Power, nil
}

// LRPhaseBitSelector is LRPhaseBitOrdered evaluating through a caller-owned
// lrtest.Selector, so a chain of combinations reuses the selection scratch
// buffers (and the power evaluator's per-individual score cache) instead of
// reallocating them per combination. Results are identical to
// LRPhaseBitOrdered; a nil selector falls back to it.
func LRPhaseBitSelector(cols []int, caseLR, refLR *lrtest.BitMatrix, params lrtest.Params, order []int, sel *lrtest.Selector) ([]int, float64, error) {
	if sel == nil {
		return LRPhaseBitOrdered(cols, caseLR, refLR, params, order)
	}
	if caseLR.Cols() != len(cols) || refLR.Cols() != len(cols) {
		return nil, 0, fmt.Errorf("core: LR matrices have %d/%d columns, want %d",
			caseLR.Cols(), refLR.Cols(), len(cols))
	}
	if order == nil {
		order = lrtest.DiscriminabilityOrderBit(caseLR, refLR)
	}
	res, err := sel.SelectSafeBitWithOrder(caseLR, refLR, params, order)
	if err != nil {
		return nil, 0, fmt.Errorf("core: LR-test: %w", err)
	}
	safe := make([]int, len(res.Safe))
	for i, j := range res.Safe {
		safe[i] = cols[j]
	}
	return safe, res.Power, nil
}

// IntersectSorted intersects ascending integer slices — the per-phase
// combination intersection of collusion-tolerant GenDPR (getIntersection in
// Section 6.1). With no input it returns nil; with one, a copy.
func IntersectSorted(lists ...[]int) []int {
	if len(lists) == 0 {
		return nil
	}
	out := make([]int, len(lists[0]))
	copy(out, lists[0])
	for _, l := range lists[1:] {
		out = intersectTwo(out, l)
		if len(out) == 0 {
			break
		}
	}
	return out
}

func intersectTwo(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Frequencies converts counts over original SNP indices into frequency
// vectors restricted to the given columns (Phase 3's casesAlleleFreq[L”] and
// refAlleleFreq[L”] broadcast vectors).
func Frequencies(counts []int64, n int64, cols []int) []float64 {
	out := make([]float64, len(cols))
	if n == 0 {
		return out
	}
	for i, l := range cols {
		out[i] = float64(counts[l]) / float64(n)
	}
	return out
}
