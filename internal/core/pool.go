package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// workPool bounds the leader's goroutine fan-out. The assessment driver
// spawns work at several nesting levels — one task per collusion combination,
// and inside each one task per member — so an unbounded `go` per unit of work
// multiplies into C(G, G−f)·G goroutines all contending for the same CPUs.
// The pool caps concurrently running tasks at GOMAXPROCS; when no slot is
// free the submitting goroutine runs the task inline instead of blocking,
// which keeps nested submissions (a combination task spawning member tasks)
// deadlock-free by construction.
type workPool struct {
	sem chan struct{}
}

func newWorkPool(size int) *workPool {
	if size < 1 {
		size = 1
	}
	return &workPool{sem: make(chan struct{}, size)}
}

func defaultWorkPool() *workPool {
	return newWorkPool(runtime.GOMAXPROCS(0))
}

// Go runs fn, on a pooled goroutine when a slot is free and inline otherwise,
// and tracks completion through wg so callers retain their familiar
// wg.Add/Wait structure.
func (p *workPool) Go(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	select {
	case p.sem <- struct{}{}:
		go func() {
			defer wg.Done()
			defer func() { <-p.sem }()
			fn()
		}()
	default:
		fn()
		wg.Done()
	}
}

// size returns the pool's concurrency cap.
func (p *workPool) size() int { return cap(p.sem) }

// RunStealing evaluates n indivisible tasks across up to workers goroutines
// with work stealing. Each worker owns a contiguous slice of the task range
// and claims its own tasks front to back; a worker that drains its range
// steals unstarted tasks from other ranges, scanning them back to front so
// thieves and owners collide as late as possible. Claims are per-task
// compare-and-swaps, so every task runs exactly once regardless of who gets
// it. The evaluation chains of the combination lattice are exactly this
// shape: contiguous chains whose lengths are equal but whose costs are not
// (seeded checkpoint replays make some chains nearly free), and stealing
// keeps all workers busy without predicting which chains are cheap.
//
// Task errors do not cancel peers — each task is independently recorded and
// the joined error is returned after all claimed tasks finish, matching the
// error semantics of forEachSubset.
func (p *workPool) RunStealing(n, workers int, run func(task int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var errs []error
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}

	claimed := make([]int32, n)
	errs := make([]error, n)
	claim := func(i int) bool {
		return atomic.CompareAndSwapInt32(&claimed[i], 0, 1)
	}
	// Worker w owns [w*n/workers, (w+1)*n/workers).
	lo := func(w int) int { return w * n / workers }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo(w); i < lo(w+1); i++ {
				if claim(i) {
					errs[i] = run(i)
				}
			}
			// Own range drained: steal from victims, latest victim first,
			// scanning each back to front.
			for v := workers - 1; v >= 0; v-- {
				if v == w {
					continue
				}
				for i := lo(v+1) - 1; i >= lo(v); i-- {
					if claim(i) {
						errs[i] = run(i)
					}
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
