package core

import (
	"runtime"
	"sync"
)

// workPool bounds the leader's goroutine fan-out. The assessment driver
// spawns work at several nesting levels — one task per collusion combination,
// and inside each one task per member — so an unbounded `go` per unit of work
// multiplies into C(G, G−f)·G goroutines all contending for the same CPUs.
// The pool caps concurrently running tasks at GOMAXPROCS; when no slot is
// free the submitting goroutine runs the task inline instead of blocking,
// which keeps nested submissions (a combination task spawning member tasks)
// deadlock-free by construction.
type workPool struct {
	sem chan struct{}
}

func newWorkPool(size int) *workPool {
	if size < 1 {
		size = 1
	}
	return &workPool{sem: make(chan struct{}, size)}
}

func defaultWorkPool() *workPool {
	return newWorkPool(runtime.GOMAXPROCS(0))
}

// Go runs fn, on a pooled goroutine when a slot is free and inline otherwise,
// and tracks completion through wg so callers retain their familiar
// wg.Add/Wait structure.
func (p *workPool) Go(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	select {
	case p.sem <- struct{}{}:
		go func() {
			defer wg.Done()
			defer func() { <-p.sem }()
			fn()
		}()
	default:
		fn()
		wg.Done()
	}
}
