// Package cliutil holds the flag wiring, event-log plumbing, and input
// loading shared by the gendpr command-line front ends, so the one-shot
// runner, the standalone leader, and the always-on daemon stay
// flag-compatible instead of drifting apart.
package cliutil

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"gendpr/internal/enclave/attest"
	"gendpr/internal/federation"
	"gendpr/internal/genome"
	"gendpr/internal/service"
	"gendpr/internal/vcf"
)

// FaultFlags is the shared fault-tolerance flag block: every front end that
// drives the protocol registers exactly this set, with these names and help
// strings.
type FaultFlags struct {
	RPCTimeout  time.Duration
	DialTimeout time.Duration
	Retries     int
	MinQuorum   int
	Byzantine   bool
	AllowRejoin bool
	LogJSON     bool
}

// RegisterFaultFlags registers the shared block on fs and returns the
// destination struct.
func RegisterFaultFlags(fs *flag.FlagSet) *FaultFlags {
	f := &FaultFlags{}
	fs.DurationVar(&f.RPCTimeout, "rpc-timeout", 0, "deadline per member exchange (0 waits forever)")
	fs.DurationVar(&f.DialTimeout, "dial-timeout", 0, "deadline per member (re)connection (0 uses the transport default)")
	fs.IntVar(&f.Retries, "retries", 0, "reconnect-and-retry attempts per failed member exchange")
	fs.IntVar(&f.MinQuorum, "min-quorum", 0, "minimum surviving GDOs (leader included) to finish without failed members; 0 aborts on any failure")
	fs.BoolVar(&f.Byzantine, "byzantine", false, "quarantine members whose answers fail plausibility checks or change across deliveries, with blame records, instead of aborting")
	fs.BoolVar(&f.AllowRejoin, "allow-rejoin", false, "let a crash-failed member re-attest and rejoin at the next phase boundary (equivocators stay barred)")
	fs.BoolVar(&f.LogJSON, "log-json", false, "emit one-line JSON run events on stderr (member health, service lifecycle)")
	return f
}

// Options assembles the federation run options the flags describe; run names
// the run in -log-json events.
func (f *FaultFlags) Options(run string) federation.RunOptions {
	opts := federation.RunOptions{
		RPCTimeout:  f.RPCTimeout,
		DialTimeout: f.DialTimeout,
		MaxRetries:  f.Retries,
		MinQuorum:   f.MinQuorum,
		Byzantine:   f.Byzantine,
		AllowRejoin: f.AllowRejoin,
	}
	if f.LogJSON {
		opts.OnEvent = JSONEventLogger(run)
	}
	return opts
}

// stderr carries every -log-json event stream; one lock keeps concurrently
// emitted lines whole.
var (
	stderrMu  sync.Mutex
	stderrEnc = json.NewEncoder(os.Stderr)
)

func emitJSON(v any) {
	stderrMu.Lock()
	defer stderrMu.Unlock()
	_ = stderrEnc.Encode(v)
}

// JSONEventLogger returns a RunOptions.OnEvent sink that writes one JSON
// object per member health transition to stderr, keeping stdout for the
// result report.
func JSONEventLogger(run string) func(federation.MemberEvent) {
	return func(e federation.MemberEvent) {
		emitJSON(struct {
			Event      string `json:"event"`
			Run        string `json:"run"`
			Member     string `json:"member"`
			Transition string `json:"transition"`
			Phase      string `json:"phase,omitempty"`
		}{"member-health", run, e.Member, e.Event, e.Phase})
	}
}

// ServiceEventLogger returns a service.Config.OnEvent sink that writes one
// JSON object per request lifecycle transition (admitted, queued, shed,
// started, resumed, coalesced, completed, failed, drained) to stderr.
func ServiceEventLogger(run string) func(service.Event) {
	return func(e service.Event) {
		emitJSON(struct {
			Event     string `json:"event"`
			Run       string `json:"run"`
			Lifecycle string `json:"lifecycle"`
			Tenant    string `json:"tenant,omitempty"`
			Key       string `json:"key,omitempty"`
			Reason    string `json:"reason,omitempty"`
		}{"service-lifecycle", run, e.Event, e.Tenant, e.Key, e.Reason})
	}
}

// ReadVCF loads one genotype matrix from a VCF file.
func ReadVCF(path string) (*genome.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := vcf.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// LoadAuthority reads a hex-encoded attestation-authority seed file (the
// format cmd/gendpr-authority writes).
func LoadAuthority(path string) (*attest.Authority, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("%s: undecodable authority seed: %w", path, err)
	}
	return attest.NewAuthorityFromSeed(seed)
}
