// Package paillier implements the Paillier additively homomorphic
// cryptosystem over math/big. The paper positions GenDPR's TEE aggregation
// as one instantiation and homomorphic encryption as an alternative
// (Section 5.1); this package backs that alternative: members encrypt their
// Phase 1 count vectors, any untrusted aggregator sums the ciphertexts, and
// only the key holder (the elected leader's enclave, or an external data
// access committee) learns the aggregate — never the per-member counts.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	one = big.NewInt(1)

	// ErrMessageRange is returned when a plaintext does not fit the modulus.
	ErrMessageRange = errors.New("paillier: message outside [0, N)")

	// ErrCiphertextRange is returned for malformed ciphertexts.
	ErrCiphertextRange = errors.New("paillier: ciphertext outside (0, N^2)")
)

// PublicKey is the encryption key.
type PublicKey struct {
	// N is the modulus (product of two primes).
	N *big.Int
	// NSquared caches N^2.
	NSquared *big.Int
	// G is the generator, fixed to N+1 (the standard simplification).
	G *big.Int
}

// PrivateKey adds the decryption trapdoor.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod N^2))^-1 mod N
}

// GenerateKey creates a key pair with an n-bit modulus. Use at least 2048
// bits in production; tests use smaller keys for speed.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: modulus of %d bits is too small", bits)
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: prime: %w", err)
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pMinus := new(big.Int).Sub(p, one)
		qMinus := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pMinus, qMinus)
		lambda := new(big.Int).Mul(pMinus, qMinus)
		lambda.Div(lambda, gcd)

		nSquared := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)

		// mu = (L(g^lambda mod N^2))^-1 mod N.
		glambda := new(big.Int).Exp(g, lambda, nSquared)
		l := lFunction(glambda, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, NSquared: nSquared, G: g},
			lambda:    lambda,
			mu:        mu,
		}, nil
	}
}

// lFunction computes L(u) = (u - 1) / n.
func lFunction(u, n *big.Int) *big.Int {
	l := new(big.Int).Sub(u, one)
	return l.Div(l, n)
}

// Encrypt produces a ciphertext of m in [0, N).
func (pub *PublicKey) Encrypt(random io.Reader, m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pub.N) >= 0 {
		// The out-of-range message IS the plaintext being encrypted; the
		// error must not carry it.
		return nil, ErrMessageRange
	}
	r, err := pub.randomUnit(random)
	if err != nil {
		return nil, err
	}
	// c = g^m * r^N mod N^2; with g = N+1, g^m = 1 + mN mod N^2.
	gm := new(big.Int).Mul(m, pub.N)
	gm.Add(gm, one)
	gm.Mod(gm, pub.NSquared)
	rn := new(big.Int).Exp(r, pub.N, pub.NSquared)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pub.NSquared), nil
}

// randomUnit draws r in Z*_N.
func (pub *PublicKey) randomUnit(random io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(random, pub.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: random unit: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pub.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// validateCiphertext checks structural sanity.
func (pub *PublicKey) validateCiphertext(c *big.Int) error {
	if c == nil || c.Sign() <= 0 || c.Cmp(pub.NSquared) >= 0 {
		return ErrCiphertextRange
	}
	return nil
}

// Decrypt recovers the plaintext.
func (priv *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if err := priv.validateCiphertext(c); err != nil {
		return nil, err
	}
	u := new(big.Int).Exp(c, priv.lambda, priv.NSquared)
	m := lFunction(u, priv.N)
	m.Mul(m, priv.mu)
	return m.Mod(m, priv.N), nil
}

// Add homomorphically adds two ciphertexts: Dec(Add(c1,c2)) = m1 + m2 mod N.
func (pub *PublicKey) Add(c1, c2 *big.Int) (*big.Int, error) {
	if err := pub.validateCiphertext(c1); err != nil {
		return nil, err
	}
	if err := pub.validateCiphertext(c2); err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(c1, c2)
	return c.Mod(c, pub.NSquared), nil
}

// AddPlain adds a plaintext constant: Dec(AddPlain(c,k)) = m + k mod N.
func (pub *PublicKey) AddPlain(c, k *big.Int) (*big.Int, error) {
	if err := pub.validateCiphertext(c); err != nil {
		return nil, err
	}
	if k.Sign() < 0 || k.Cmp(pub.N) >= 0 {
		return nil, ErrMessageRange
	}
	gk := new(big.Int).Mul(k, pub.N)
	gk.Add(gk, one)
	gk.Mod(gk, pub.NSquared)
	out := gk.Mul(gk, c)
	return out.Mod(out, pub.NSquared), nil
}

// MulPlain multiplies the plaintext by a constant: Dec(MulPlain(c,k)) = k*m.
func (pub *PublicKey) MulPlain(c, k *big.Int) (*big.Int, error) {
	if err := pub.validateCiphertext(c); err != nil {
		return nil, err
	}
	if k.Sign() < 0 {
		return nil, ErrMessageRange
	}
	return new(big.Int).Exp(c, k, pub.NSquared), nil
}

// EncryptVector encrypts a count vector elementwise.
func (pub *PublicKey) EncryptVector(random io.Reader, counts []int64) ([]*big.Int, error) {
	out := make([]*big.Int, len(counts))
	for i, v := range counts {
		if v < 0 {
			return nil, fmt.Errorf("%w: negative count", ErrMessageRange)
		}
		c, err := pub.Encrypt(random, big.NewInt(v))
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// AggregateVectors homomorphically sums encrypted count vectors: the
// untrusted aggregator never sees a plaintext. All vectors must share the
// same length.
func (pub *PublicKey) AggregateVectors(vectors ...[]*big.Int) ([]*big.Int, error) {
	if len(vectors) == 0 {
		return nil, nil
	}
	length := len(vectors[0])
	out := make([]*big.Int, length)
	copy(out, vectors[0])
	for _, v := range vectors[1:] {
		if len(v) != length {
			return nil, fmt.Errorf("paillier: vector length %d, want %d", len(v), length)
		}
		for i := range out {
			sum, err := pub.Add(out[i], v[i])
			if err != nil {
				return nil, err
			}
			out[i] = sum
		}
	}
	return out, nil
}

// DecryptVector recovers aggregated counts as int64s, failing when a value
// does not fit.
func (priv *PrivateKey) DecryptVector(cs []*big.Int) ([]int64, error) {
	out := make([]int64, len(cs))
	for i, c := range cs {
		m, err := priv.Decrypt(c)
		if err != nil {
			return nil, err
		}
		if !m.IsInt64() {
			return nil, fmt.Errorf("paillier: aggregate at %d overflows int64", i)
		}
		out[i] = m.Int64()
	}
	return out, nil
}
