package paillier

import (
	"crypto/rand"
	"errors"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKeyBits keeps key generation fast in tests; production keys are 2048+.
const testKeyBits = 512

var (
	keyOnce sync.Once
	testKey *PrivateKey
)

func sharedKey(t testing.TB) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := GenerateKey(rand.Reader, testKeyBits)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := sharedKey(t)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		c, err := key.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d → %v", m, got)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	key := sharedKey(t)
	m := big.NewInt(7)
	c1, err := key.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := key.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestHomomorphicAddition(t *testing.T) {
	key := sharedKey(t)
	c1, _ := key.Encrypt(rand.Reader, big.NewInt(123))
	c2, _ := key.Encrypt(rand.Reader, big.NewInt(877))
	sum, err := key.Add(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 1000 {
		t.Errorf("Dec(c1*c2)=%v, want 1000", got)
	}
}

func TestAddPlainAndMulPlain(t *testing.T) {
	key := sharedKey(t)
	c, _ := key.Encrypt(rand.Reader, big.NewInt(10))
	cPlus, err := key.AddPlain(c, big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := key.Decrypt(cPlus); got.Int64() != 15 {
		t.Errorf("AddPlain: %v, want 15", got)
	}
	cTimes, err := key.MulPlain(c, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := key.Decrypt(cTimes); got.Int64() != 70 {
		t.Errorf("MulPlain: %v, want 70", got)
	}
}

func TestMessageRangeChecks(t *testing.T) {
	key := sharedKey(t)
	if _, err := key.Encrypt(rand.Reader, big.NewInt(-1)); !errors.Is(err, ErrMessageRange) {
		t.Errorf("negative message: %v", err)
	}
	if _, err := key.Encrypt(rand.Reader, key.N); !errors.Is(err, ErrMessageRange) {
		t.Errorf("message = N: %v", err)
	}
	if _, err := key.Decrypt(big.NewInt(0)); !errors.Is(err, ErrCiphertextRange) {
		t.Errorf("zero ciphertext: %v", err)
	}
	if _, err := key.Decrypt(key.NSquared); !errors.Is(err, ErrCiphertextRange) {
		t.Errorf("ciphertext = N^2: %v", err)
	}
	c, _ := key.Encrypt(rand.Reader, big.NewInt(1))
	if _, err := key.Add(c, big.NewInt(0)); !errors.Is(err, ErrCiphertextRange) {
		t.Errorf("Add with bad ciphertext: %v", err)
	}
}

func TestGenerateKeyRejectsTinyModulus(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 32); err == nil {
		t.Fatal("32-bit modulus accepted")
	}
}

func TestVectorAggregation(t *testing.T) {
	key := sharedKey(t)
	a := []int64{1, 2, 3}
	b := []int64{10, 20, 30}
	c := []int64{100, 200, 300}
	var encs [][]*big.Int
	for _, v := range [][]int64{a, b, c} {
		enc, err := key.EncryptVector(rand.Reader, v)
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enc)
	}
	agg, err := key.AggregateVectors(encs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptVector(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{111, 222, 333}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("aggregate[%d]=%d, want %d", i, got[i], want[i])
		}
	}
}

func TestVectorAggregationErrors(t *testing.T) {
	key := sharedKey(t)
	if _, err := key.EncryptVector(rand.Reader, []int64{-1}); !errors.Is(err, ErrMessageRange) {
		t.Errorf("negative count: %v", err)
	}
	enc1, _ := key.EncryptVector(rand.Reader, []int64{1, 2})
	enc2, _ := key.EncryptVector(rand.Reader, []int64{1})
	if _, err := key.AggregateVectors(enc1, enc2); err == nil {
		t.Error("length mismatch accepted")
	}
	empty, err := key.AggregateVectors()
	if err != nil || empty != nil {
		t.Errorf("empty aggregation: %v, %v", empty, err)
	}
}

// Property: homomorphic addition matches plaintext addition for arbitrary
// small counts.
func TestQuickHomomorphicSum(t *testing.T) {
	key := sharedKey(t)
	f := func(a, b uint16) bool {
		ca, err := key.Encrypt(rand.Reader, big.NewInt(int64(a)))
		if err != nil {
			return false
		}
		cb, err := key.Encrypt(rand.Reader, big.NewInt(int64(b)))
		if err != nil {
			return false
		}
		sum, err := key.Add(ca, cb)
		if err != nil {
			return false
		}
		m, err := key.Decrypt(sum)
		return err == nil && m.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
