package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// stateFor returns a minimal distinguishable state that survives the codec's
// roster-alignment checks.
func stateFor(tag string) *State {
	return &State{
		Fingerprint: []byte(tag),
		Providers:   []string{tag},
		Counts:      [][]int64{{1, 2}},
		CaseNs:      []int64{4},
	}
}

func TestNamespaceIsolation(t *testing.T) {
	fileRoot, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		root interface {
			Store
			Namespacer
		}
	}{
		{"MemStore", NewMemStore()},
		{"FileStore", fileRoot},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.root.Namespace("aaaa")
			b := tc.root.Namespace("bbbb")
			if err := a.Save(stateFor("a")); err != nil {
				t.Fatal(err)
			}
			if err := b.Save(stateFor("b")); err != nil {
				t.Fatal(err)
			}
			if err := tc.root.Save(stateFor("root")); err != nil {
				t.Fatal(err)
			}

			got, err := a.Load()
			if err != nil || string(got.Fingerprint) != "a" {
				t.Fatalf("namespace a loaded %v, %v", got, err)
			}
			// Clearing one namespace must not disturb siblings or the root.
			if err := a.Clear(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Load(); !errors.Is(err, ErrNotFound) {
				t.Fatalf("cleared namespace still loads: %v", err)
			}
			if got, err := b.Load(); err != nil || string(got.Fingerprint) != "b" {
				t.Fatalf("sibling namespace disturbed: %v, %v", got, err)
			}
			if got, err := tc.root.Load(); err != nil || string(got.Fingerprint) != "root" {
				t.Fatalf("root disturbed: %v, %v", got, err)
			}
			// The same name must return the same underlying store.
			if err := tc.root.Namespace("bbbb").Clear(); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Load(); !errors.Is(err, ErrNotFound) {
				t.Fatalf("namespace instances not shared by name: %v", err)
			}
			// The empty name is the root itself.
			if err := tc.root.Namespace("").Clear(); err != nil {
				t.Fatal(err)
			}
			if _, err := tc.root.Load(); !errors.Is(err, ErrNotFound) {
				t.Fatalf("empty namespace is not the root: %v", err)
			}
		})
	}
}

func TestFileStoreNamespaceSanitization(t *testing.T) {
	dir := t.TempDir()
	root, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ns := root.Namespace("ten/ant: §" + strings.Repeat("x", 200))
	if err := ns.Save(stateFor("n")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "assessment") || !strings.HasSuffix(name, ".ckpt") {
			t.Errorf("unexpected file %q in store directory", name)
		}
		for _, c := range []byte(name) {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			default:
				t.Errorf("file name %q contains unsafe byte %q", name, c)
			}
		}
		if len(name) > len("assessment-")+128+len(".ckpt") {
			t.Errorf("file name %q not truncated", name)
		}
	}
}

func TestClearAllRemovesEveryNamespace(t *testing.T) {
	dir := t.TempDir()
	root, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Save(stateFor("root")); err != nil {
		t.Fatal(err)
	}
	// Two saves so the namespace has both a current and a .prev generation.
	ns := root.Namespace("cafe")
	if err := ns.Save(stateFor("one")); err != nil {
		t.Fatal(err)
	}
	if err := ns.Save(stateFor("two")); err != nil {
		t.Fatal(err)
	}
	// A namespaced snapshot left behind by an earlier process: this instance
	// never opened the namespace, ClearAll must remove it anyway.
	stale := filepath.Join(dir, "assessment-deadbeef.ckpt")
	if err := os.WriteFile(stale, Encode(stateFor("stale")), 0o644); err != nil {
		t.Fatal(err)
	}
	// Quarantined corruption evidence must survive.
	corrupt := filepath.Join(dir, "assessment-cafe.ckpt.corrupt")
	if err := os.WriteFile(corrupt, []byte("evidence"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := root.ClearAll(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != filepath.Base(corrupt) {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("after ClearAll directory holds %v, want only the .corrupt evidence", names)
	}

	mem := NewMemStore()
	if err := mem.Save(stateFor("root")); err != nil {
		t.Fatal(err)
	}
	if err := mem.Namespace("x").Save(stateFor("x")); err != nil {
		t.Fatal(err)
	}
	if err := mem.ClearAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mem root survived ClearAll: %v", err)
	}
	if _, err := mem.Namespace("x").Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mem namespace survived ClearAll: %v", err)
	}
}

// TestNamespaceConcurrentSaves hammers sibling namespaces of one shared store
// from many goroutines — the service's concurrent-assessment shape — and
// expects every namespace to end up with its own last write intact. Run under
// -race this doubles as the store-level data-race gate.
func TestNamespaceConcurrentSaves(t *testing.T) {
	fileRoot, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		root Namespacer
	}{
		{"MemStore", NewMemStore()},
		{"FileStore", fileRoot},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const namespaces, writers, rounds = 4, 3, 5
			var wg sync.WaitGroup
			for n := 0; n < namespaces; n++ {
				tag := fmt.Sprintf("ns-%d", n)
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						st := tc.root.Namespace(tag)
						for r := 0; r < rounds; r++ {
							if err := st.Save(stateFor(tag)); err != nil {
								t.Errorf("%s: save: %v", tag, err)
								return
							}
							if got, err := st.Load(); err != nil || string(got.Fingerprint) != tag {
								t.Errorf("%s: load %v, %v", tag, got, err)
								return
							}
						}
					}()
				}
			}
			wg.Wait()
		})
	}
}
