// Package checkpoint persists assessment progress at phase boundaries so a
// re-elected leader (or a restarted one) can resume a partially completed
// GenDPR run instead of recomputing every phase from zero. A checkpoint is a
// single self-contained record: the provider roster it was taken over, the
// collected summary statistics, the selections surviving each completed
// phase, the pair statistics the LD scan aggregated, and the per-combination
// Phase 3 results (including the merged LR BitMatrix for the canonical
// combination, which seeds the admission order on resume).
//
// The on-disk/on-wire form is a versioned, length-prefixed, CRC-guarded
// envelope over the project's deterministic wire codec. Decoding is
// all-or-nothing: a truncated, corrupted, or version-skewed record yields an
// error and no partially applied state, which the fuzz target enforces.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"gendpr/internal/genome"
	"gendpr/internal/wire"
)

// Version is the current checkpoint format version. Decoders reject any
// other value: resuming from a checkpoint written by a different build is a
// correctness hazard, not a migration opportunity.
//
// Version 2 replaced the full-membership combination's wire-encoded merged
// LR-matrix (per-individual data) with the derived admission order. Version 2
// records may additionally carry a trailing blame section (absent in records
// written before it existed); decoders treat a missing section as empty, so
// both generations round-trip under one version.
const Version = 2

// magic identifies a checkpoint record; anything else is not even parsed.
const magic = "GDPRCKPT"

var (
	// ErrNotFound is returned by Store.Load when no checkpoint exists.
	ErrNotFound = errors.New("checkpoint: not found")

	// ErrCorrupt is returned when a record fails structural validation:
	// bad magic, truncated envelope, CRC mismatch, or undecodable payload.
	ErrCorrupt = errors.New("checkpoint: corrupt record")

	// ErrVersion is returned when the record's format version is not the
	// one this build writes.
	ErrVersion = errors.New("checkpoint: unsupported version")
)

// Stage is the highest fully completed phase boundary a checkpoint covers.
type Stage uint8

const (
	// StageNone means only the collected summaries are recorded.
	StageNone Stage = iota
	// StageMAF means Phase 1 is complete: LPrime and PerMAF are valid.
	StageMAF
	// StageLD means Phase 2 is complete: LDouble, PerLD and Pairs are valid.
	StageLD
)

func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageMAF:
		return "maf"
	case StageLD:
		return "ld"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// PairRecord is one aggregated pair-statistics entry collected from a
// provider during the LD phase.
type PairRecord struct {
	A, B  int
	Stats genome.PairStats
}

// Combination is the completed Phase 3 result for one collusion combination,
// identified by the member names it was evaluated over (names, not slot
// indices: a new leader enumerates providers in a different order).
type Combination struct {
	// Members are the provider identity names of the combination.
	Members []string
	// Safe is the combination's safe SNP selection.
	Safe []int
	// Power is the residual identification power (meaningful for the
	// full-membership combination only).
	Power float64
	// Order is the canonical SNP admission order (the discriminability
	// ranking). It is retained only for the full-membership combination,
	// whose order every other combination shares; a resuming leader reuses
	// it without re-fetching member matrices. The order is a derived,
	// post-aggregation statistic — the merged per-individual LR-matrix it
	// was computed from is deliberately never persisted (checkpoints
	// outlive the enclave).
	Order []int
}

// BlameRecord is one attribution of detectably-wrong member behavior —
// equivocation across retries or a payload that failed leader-side
// validation. Blame is part of the checkpoint so a re-elected leader still
// reports which member a degraded run quarantined, and why.
//
// Prior and Observed are SHA-256 digests over the canonical wire encoding of
// the two conflicting payloads (one-way hashes of aggregate statistics, the
// same class of content as Counts below).
type BlameRecord struct {
	// Member is the provider identity name (names, not slot indices: a new
	// leader enumerates providers in a different order).
	Member string
	// Phase is the protocol phase the bad contribution targeted.
	Phase string
	// Query fingerprints which request the member answered inconsistently.
	Query string
	// Kind classifies the fault: "equivocation" or "invalid-payload".
	Kind string
	// Prior and Observed are the conflicting payload digests (equivocation
	// only; empty for validation failures, which have a single bad payload).
	Prior    []byte
	Observed []byte
}

// State is one checkpoint: everything a leader needs to resume an assessment
// at the recorded stage. Per-provider arrays (Counts, CaseNs, Pairs) are
// indexed like Providers; a resuming leader remaps them onto its own
// provider order by name.
type State struct {
	// Fingerprint binds the checkpoint to one run shape (configuration,
	// policy, provider name set, reference dimensions). A mismatch means
	// the checkpoint describes a different run and must be ignored.
	Fingerprint []byte
	// Providers are the identity names, in the saving leader's slot order.
	Providers []string
	// Counts holds each provider's minor-allele count vector.
	Counts [][]int64
	// CaseNs holds each provider's case-population size.
	CaseNs []int64
	// Stage is the highest completed phase boundary.
	Stage Stage
	// LPrime and PerMAF are the Phase 1 outputs (valid from StageMAF).
	LPrime []int
	PerMAF [][]int
	// LDouble and PerLD are the Phase 2 outputs (valid from StageLD).
	LDouble []int
	PerLD   [][]int
	// Pairs holds each provider's pair statistics aggregated during the LD
	// scan, indexed like Providers (valid from StageLD). Seeding them back
	// into the provider caches lets a resumed run answer any residual LD
	// queries without re-contacting members.
	Pairs [][]PairRecord
	// Combinations lists the Phase 3 combinations completed so far.
	Combinations []Combination
	// Blamed lists the members quarantined for detectably-wrong behavior up
	// to this boundary, so attribution survives leader failover.
	Blamed []BlameRecord
}

// maxElems bounds decoded element counts before allocation so a hostile
// length field cannot force a huge allocation; real checkpoints are far
// smaller.
const maxElems = 1 << 24

// Encode serializes the state into the versioned CRC-guarded envelope:
//
//	magic(8) | version u32 | payload length u64 | payload | crc32(IEEE) u32
//
// The CRC covers version, length, and payload.
func Encode(st *State) []byte {
	e := wire.NewEncoder(1024)
	e.Blob(st.Fingerprint)
	e.Uint64(uint64(len(st.Providers)))
	for _, name := range st.Providers {
		e.String(name)
	}
	e.Uint64(uint64(len(st.Counts)))
	for _, counts := range st.Counts {
		e.Int64s(counts)
	}
	e.Int64s(st.CaseNs)
	e.Uint64(uint64(st.Stage))
	e.Ints(st.LPrime)
	encodePerCombination(e, st.PerMAF)
	e.Ints(st.LDouble)
	encodePerCombination(e, st.PerLD)
	e.Uint64(uint64(len(st.Pairs)))
	for _, recs := range st.Pairs {
		e.Uint64(uint64(len(recs)))
		for _, r := range recs {
			e.Int(r.A)
			e.Int(r.B)
			e.Int64(r.Stats.N)
			e.Int64(r.Stats.SumX)
			e.Int64(r.Stats.SumY)
			e.Int64(r.Stats.SumXY)
			e.Int64(r.Stats.SumXX)
			e.Int64(r.Stats.SumYY)
		}
	}
	e.Uint64(uint64(len(st.Combinations)))
	for _, c := range st.Combinations {
		e.Uint64(uint64(len(c.Members)))
		for _, m := range c.Members {
			e.String(m)
		}
		e.Ints(c.Safe)
		e.Float64(c.Power)
		e.Ints(c.Order)
	}
	e.Uint64(uint64(len(st.Blamed)))
	for _, b := range st.Blamed {
		e.String(b.Member)
		e.String(b.Phase)
		e.String(b.Query)
		e.String(b.Kind)
		e.Blob(b.Prior)
		e.Blob(b.Observed)
	}
	payload := e.Bytes()

	out := make([]byte, 0, len(magic)+16+len(payload))
	out = append(out, magic...)
	out = appendUint32(out, Version)
	out = appendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	crc := crc32.ChecksumIEEE(out[len(magic):])
	return appendUint32(out, crc)
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func encodePerCombination(e *wire.Encoder, per [][]int) {
	e.Uint64(uint64(len(per)))
	for _, sel := range per {
		e.Ints(sel)
	}
}

// Decode parses an encoded checkpoint. Any structural defect — wrong magic,
// version skew, truncation, trailing bytes, CRC mismatch, or an undecodable
// payload — yields a nil state and an error; a partially decoded state is
// never returned.
func Decode(b []byte) (*State, error) {
	if len(b) < len(magic)+16 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body := b[len(magic) : len(b)-4]
	wantCRC := uint32(b[len(b)-4])<<24 | uint32(b[len(b)-3])<<16 | uint32(b[len(b)-2])<<8 | uint32(b[len(b)-1])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	version := uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3])
	if version != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, version, Version)
	}
	length := uint64(0)
	for _, x := range body[4:12] {
		length = length<<8 | uint64(x)
	}
	payload := body[12:]
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload length %d, envelope says %d", ErrCorrupt, len(payload), length)
	}

	d := wire.NewDecoder(payload)
	st := &State{}
	st.Fingerprint = append([]byte(nil), d.Blob()...)
	st.Providers = decodeStrings(d)
	nCounts, ok := decodeLen(d)
	if !ok {
		return nil, fmt.Errorf("%w: counts length", ErrCorrupt)
	}
	st.Counts = make([][]int64, 0, nCounts)
	for i := 0; i < nCounts; i++ {
		st.Counts = append(st.Counts, d.Int64s())
	}
	st.CaseNs = d.Int64s()
	st.Stage = Stage(d.Uint64())
	st.LPrime = d.Ints()
	st.PerMAF = decodePerCombination(d)
	st.LDouble = d.Ints()
	st.PerLD = decodePerCombination(d)
	nPairs, ok := decodeLen(d)
	if !ok {
		return nil, fmt.Errorf("%w: pairs length", ErrCorrupt)
	}
	st.Pairs = make([][]PairRecord, 0, nPairs)
	for i := 0; i < nPairs; i++ {
		n, ok := decodeLen(d)
		if !ok {
			return nil, fmt.Errorf("%w: pair record length", ErrCorrupt)
		}
		recs := make([]PairRecord, 0, n)
		for j := 0; j < n; j++ {
			recs = append(recs, PairRecord{
				A: d.Int(),
				B: d.Int(),
				Stats: genome.PairStats{
					N:     d.Int64(),
					SumX:  d.Int64(),
					SumY:  d.Int64(),
					SumXY: d.Int64(),
					SumXX: d.Int64(),
					SumYY: d.Int64(),
				},
			})
		}
		st.Pairs = append(st.Pairs, recs)
	}
	nCombos, ok := decodeLen(d)
	if !ok {
		return nil, fmt.Errorf("%w: combination length", ErrCorrupt)
	}
	st.Combinations = make([]Combination, 0, nCombos)
	for i := 0; i < nCombos; i++ {
		c := Combination{
			Members: decodeStrings(d),
			Safe:    d.Ints(),
			Power:   d.Float64(),
		}
		// Keep the zero value for an absent order so encode/decode round
		// trips compare equal (only the full-membership record carries one).
		if o := d.Ints(); len(o) > 0 {
			c.Order = o
		}
		st.Combinations = append(st.Combinations, c)
	}
	// The blame section trails the record and is optional: records written
	// before it existed simply end here.
	if d.Remaining() > 0 {
		nBlamed, ok := decodeLen(d)
		if !ok {
			return nil, fmt.Errorf("%w: blame length", ErrCorrupt)
		}
		if nBlamed > 0 {
			st.Blamed = make([]BlameRecord, 0, nBlamed)
		}
		for i := 0; i < nBlamed; i++ {
			st.Blamed = append(st.Blamed, BlameRecord{
				Member:   d.String(),
				Phase:    d.String(),
				Query:    d.String(),
				Kind:     d.String(),
				Prior:    copyBytes(d.Blob()),
				Observed: copyBytes(d.Blob()),
			})
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// validate enforces the cross-field invariants a decoder cannot express:
// per-provider arrays must align with the roster, and the stage must be one
// this version defines. Saving code maintains these by construction.
func (st *State) validate() error {
	g := len(st.Providers)
	if len(st.Counts) != g || len(st.CaseNs) != g {
		return fmt.Errorf("%w: %d providers with %d count vectors and %d population sizes",
			ErrCorrupt, g, len(st.Counts), len(st.CaseNs))
	}
	if len(st.Pairs) != 0 && len(st.Pairs) != g {
		return fmt.Errorf("%w: %d pair caches for %d providers", ErrCorrupt, len(st.Pairs), g)
	}
	if st.Stage > StageLD {
		return fmt.Errorf("%w: stage %d", ErrCorrupt, st.Stage)
	}
	for _, c := range st.Combinations {
		if math.IsNaN(c.Power) || math.IsInf(c.Power, 0) {
			return fmt.Errorf("%w: non-finite combination power", ErrCorrupt)
		}
	}
	return nil
}

// copyBytes detaches a decoded blob from the payload buffer, keeping the
// zero value for an absent blob so encode/decode round trips compare equal.
func copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func decodeLen(d *wire.Decoder) (int, bool) {
	n := d.Uint64()
	if d.Err() != nil || n > maxElems {
		return 0, false
	}
	return int(n), true
}

func decodeStrings(d *wire.Decoder) []string {
	n, ok := decodeLen(d)
	if !ok {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
	}
	return out
}

func decodePerCombination(d *wire.Decoder) [][]int {
	n, ok := decodeLen(d)
	if !ok {
		return nil
	}
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Ints())
	}
	return out
}
