package checkpoint

import (
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"gendpr/internal/genome"
)

func sampleState() *State {
	return &State{
		Fingerprint: []byte{0xde, 0xad, 0xbe, 0xef},
		Providers:   []string{"gdo-1", "gdo-0", "gdo-2"},
		Counts:      [][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
		CaseNs:      []int64{12, 16, 20},
		Stage:       StageLD,
		LPrime:      []int{0, 1, 2},
		PerMAF:      [][]int{{0, 1, 2}, {0, 2}},
		LDouble:     []int{0, 2},
		PerLD:       [][]int{{0, 2}, {2}},
		Pairs: [][]PairRecord{
			{{A: 0, B: 1, Stats: genome.PairStats{N: 12, SumX: 3, SumY: 4, SumXY: 2, SumXX: 3, SumYY: 4}}},
			{},
			{{A: 1, B: 2, Stats: genome.PairStats{N: 20, SumX: 9, SumY: 9, SumXY: 5, SumXX: 9, SumYY: 9}}},
		},
		Combinations: []Combination{
			{Members: []string{"gdo-0", "gdo-1", "gdo-2"}, Safe: []int{0, 2}, Power: 0.25, Order: []int{1, 2, 0}},
			{Members: []string{"gdo-0", "gdo-2"}, Safe: []int{2}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleState()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeDecodeZeroState(t *testing.T) {
	got, err := Decode(Encode(&State{}))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Stage != StageNone || len(got.Providers) != 0 {
		t.Errorf("zero state decoded to %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := Encode(sampleState())
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrCorrupt},
		{"short", func(b []byte) []byte { return b[:10] }, ErrCorrupt},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrCorrupt},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }, ErrCorrupt},
		{"flipped crc", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrCorrupt},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-8] }, ErrCorrupt},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xaa) }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			st, err := Decode(b)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Decode error = %v, want %v", err, tc.wantErr)
			}
			if st != nil {
				t.Error("corrupt record decoded to a non-nil state")
			}
		})
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	b := Encode(sampleState())
	// Bump the version field (bytes 8..12) and re-stitch the CRC so only the
	// version check can reject it.
	b[11]++
	restitchCRC(b)
	st, err := Decode(b)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("Decode error = %v, want ErrVersion", err)
	}
	if st != nil {
		t.Error("version-skewed record decoded to a non-nil state")
	}
}

func TestDecodeRejectsMisalignedRoster(t *testing.T) {
	st := sampleState()
	st.CaseNs = st.CaseNs[:1] // three providers, one population size
	if _, err := Decode(Encode(st)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode error = %v, want ErrCorrupt", err)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty Load error = %v, want ErrNotFound", err)
	}
	want := sampleState()
	if err := s.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("MemStore round trip mismatch")
	}
	if err := s.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if _, err := s.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-Clear Load error = %v, want ErrNotFound", err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if _, err := s.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty Load error = %v, want ErrNotFound", err)
	}
	want := sampleState()
	if err := s.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// A second Save must atomically replace the first.
	want.Stage = StageMAF
	want.LDouble, want.PerLD, want.Pairs, want.Combinations = nil, nil, nil, nil
	if err := s.Save(want); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Stage != StageMAF || len(got.Combinations) != 0 {
		t.Errorf("Load returned stale state: %+v", got)
	}
	if err := s.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if err := s.Clear(); err != nil {
		t.Fatalf("idempotent Clear: %v", err)
	}
	if _, err := s.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-Clear Load error = %v, want ErrNotFound", err)
	}
}

// restitchCRC recomputes the trailer CRC after a deliberate header mutation.
func restitchCRC(b []byte) {
	body := b[8 : len(b)-4]
	crc := crc32.ChecksumIEEE(body)
	b[len(b)-4] = byte(crc >> 24)
	b[len(b)-3] = byte(crc >> 16)
	b[len(b)-2] = byte(crc >> 8)
	b[len(b)-1] = byte(crc)
}
