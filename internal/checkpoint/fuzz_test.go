package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode drives the checkpoint codec with arbitrary bytes. The contract
// under test: Decode never panics, never returns a state alongside an error,
// and any state it does accept is internally consistent enough to re-encode
// and decode back to itself (no half-applied records).
func FuzzDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(magic))
	f.Add(Encode(&State{}))
	f.Add(Encode(&State{
		Fingerprint: []byte{1, 2, 3},
		Providers:   []string{"gdo-0", "gdo-1"},
		Counts:      [][]int64{{4, 0, 2}, {1, 1, 1}},
		CaseNs:      []int64{8, 6},
		Stage:       StageMAF,
		LPrime:      []int{0, 2},
		PerMAF:      [][]int{{0, 2}},
	}))
	full := Encode(sampleState())
	f.Add(full)
	// Seed a few targeted mutations so the corpus starts near the
	// interesting branches: flipped CRC, skewed version, truncation.
	crcFlip := append([]byte(nil), full...)
	crcFlip[len(crcFlip)-2] ^= 0x40
	f.Add(crcFlip)
	verSkew := append([]byte(nil), full...)
	verSkew[11] = 0x7f
	f.Add(verSkew)
	f.Add(full[:len(full)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			if st != nil {
				t.Fatal("Decode returned both a state and an error")
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode error %v is neither ErrCorrupt nor ErrVersion", err)
			}
			return
		}
		// Accepted input: the state must survive a re-encode round trip
		// bit-for-bit, proving nothing was dropped or half-applied.
		re := Encode(st)
		st2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded state failed to decode: %v", err)
		}
		if !statesEqual(st, st2) {
			t.Fatal("re-encode round trip changed the state")
		}
	})
}

// statesEqual compares states field by field, treating nil and empty slices
// as equal (the codec does not distinguish them).
func statesEqual(a, b *State) bool {
	if !bytes.Equal(a.Fingerprint, b.Fingerprint) || a.Stage != b.Stage {
		return false
	}
	if len(a.Providers) != len(b.Providers) {
		return false
	}
	for i := range a.Providers {
		if a.Providers[i] != b.Providers[i] {
			return false
		}
	}
	if !int64MatrixEqual(a.Counts, b.Counts) || !int64sEqual(a.CaseNs, b.CaseNs) {
		return false
	}
	if !intsEqual(a.LPrime, b.LPrime) || !intMatrixEqual(a.PerMAF, b.PerMAF) {
		return false
	}
	if !intsEqual(a.LDouble, b.LDouble) || !intMatrixEqual(a.PerLD, b.PerLD) {
		return false
	}
	if len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if len(a.Pairs[i]) != len(b.Pairs[i]) {
			return false
		}
		for j := range a.Pairs[i] {
			if a.Pairs[i][j] != b.Pairs[i][j] {
				return false
			}
		}
	}
	if len(a.Combinations) != len(b.Combinations) {
		return false
	}
	for i := range a.Combinations {
		ca, cb := a.Combinations[i], b.Combinations[i]
		if len(ca.Members) != len(cb.Members) {
			return false
		}
		for j := range ca.Members {
			if ca.Members[j] != cb.Members[j] {
				return false
			}
		}
		if !intsEqual(ca.Safe, cb.Safe) || ca.Power != cb.Power || !intsEqual(ca.Order, cb.Order) {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intMatrixEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !intsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func int64MatrixEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !int64sEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
