package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
)

// twoBoundaryStore returns a FileStore holding two generations: the current
// snapshot at StageLD and the previous boundary at StageMAF.
func twoBoundaryStore(t *testing.T) (*FileStore, *State, *State) {
	t.Helper()
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	older := sampleState()
	older.Stage = StageMAF
	older.LDouble, older.PerLD, older.Pairs, older.Combinations = nil, nil, nil, nil
	if err := s.Save(older); err != nil {
		t.Fatalf("Save older: %v", err)
	}
	newer := sampleState()
	if err := s.Save(newer); err != nil {
		t.Fatalf("Save newer: %v", err)
	}
	return s, older, newer
}

// TestFileStoreTornWriteFallback simulates a torn write — the current
// snapshot truncated mid-record — and asserts the store quarantines it and
// falls back to the previous boundary instead of failing the run.
func TestFileStoreTornWriteFallback(t *testing.T) {
	s, older, _ := twoBoundaryStore(t)
	b, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(), b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.Load()
	if err != nil {
		t.Fatalf("Load after torn write: %v", err)
	}
	if got.Stage != older.Stage || !reflect.DeepEqual(got.LPrime, older.LPrime) {
		t.Errorf("fallback state = stage %v, want previous boundary %v", got.Stage, older.Stage)
	}
	if desc, ok := s.RecoveredCorruption(); !ok || desc == "" {
		t.Error("RecoveredCorruption not reported after fallback")
	}
	if _, err := os.Stat(s.Path() + corruptSuffix); err != nil {
		t.Errorf("torn snapshot not quarantined: %v", err)
	}

	// The store must stay usable: the next Save establishes a fresh current
	// generation and a clean Load drops the recovery marker.
	fresh := sampleState()
	if err := s.Save(fresh); err != nil {
		t.Fatalf("Save after recovery: %v", err)
	}
	if got, err = s.Load(); err != nil || got.Stage != fresh.Stage {
		t.Fatalf("Load after re-save = (%+v, %v)", got, err)
	}
	if _, ok := s.RecoveredCorruption(); ok {
		t.Error("recovery marker leaked into a clean Load")
	}
}

// TestFileStoreMissingCurrentFallback covers a crash between Save's two
// renames: the current snapshot is gone but the rotated previous boundary
// survives and must be served, flagged as a recovery.
func TestFileStoreMissingCurrentFallback(t *testing.T) {
	s, older, _ := twoBoundaryStore(t)
	if err := os.Remove(s.Path()); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Stage != older.Stage {
		t.Errorf("got stage %v, want previous boundary %v", got.Stage, older.Stage)
	}
	if _, ok := s.RecoveredCorruption(); !ok {
		t.Error("fallback to previous boundary not reported")
	}
}

// TestFileStoreBothGenerationsCorrupt pins the exhausted case: when every
// generation is corrupt the Load fails with the corruption error (the caller
// starts fresh), both bad files are quarantined, and the store keeps working.
func TestFileStoreBothGenerationsCorrupt(t *testing.T) {
	s, _, _ := twoBoundaryStore(t)
	for _, p := range []string{s.Path(), s.Path() + prevSuffix} {
		if err := os.WriteFile(p, []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load error = %v, want ErrCorrupt", err)
	}
	for _, p := range []string{s.Path() + corruptSuffix, s.Path() + prevSuffix + corruptSuffix} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("corrupt generation not quarantined at %s: %v", p, err)
		}
	}
	if err := s.Save(sampleState()); err != nil {
		t.Fatalf("Save after quarantine: %v", err)
	}
	if _, err := s.Load(); err != nil {
		t.Fatalf("Load after quarantine: %v", err)
	}
}

// TestFileStoreFaultHook drives the disk-full hook through every Save step
// and asserts a failed save never disturbs the generations already on disk.
func TestFileStoreFaultHook(t *testing.T) {
	for _, failAt := range []string{"write", "rotate", "rename"} {
		t.Run(failAt, func(t *testing.T) {
			s, _, newer := twoBoundaryStore(t)
			diskFull := fmt.Errorf("simulated disk full at %s", failAt)
			s.SetFaultHook(func(op string) error {
				if op == failAt {
					return diskFull
				}
				return nil
			})
			next := sampleState()
			next.Stage = StageNone
			if err := s.Save(next); !errors.Is(err, diskFull) {
				t.Fatalf("Save error = %v, want the injected fault", err)
			}
			s.SetFaultHook(nil)
			got, err := s.Load()
			if err != nil {
				t.Fatalf("Load after failed save: %v", err)
			}
			// "write" and "rotate" fail before the rotation, so the newest
			// snapshot survives as current; "rename" fails after it, leaving
			// the rotated fallback as the newest valid boundary.
			if failAt == "rename" {
				if _, ok := s.RecoveredCorruption(); !ok {
					t.Error("post-rotate failure must surface as a recovery")
				}
			} else if got.Stage != newer.Stage {
				t.Errorf("got stage %v, want untouched current %v", got.Stage, newer.Stage)
			}
			if _, err := os.Stat(s.Path() + tmpSuffix); err == nil {
				t.Error("failed save leaked its temp file")
			}
		})
	}
}

// TestBlameSectionRoundTrip pins the trailing blame section: it round-trips
// through the codec, and a record written before the section existed decodes
// with no blame at all.
func TestBlameSectionRoundTrip(t *testing.T) {
	want := sampleState()
	want.Blamed = []BlameRecord{
		{Member: "gdo-2", Phase: "LD (phase 2)", Query: "pair (1,2)", Kind: "invalid-payload"},
		{Member: "gdo-1", Phase: "summary collection", Query: "summary", Kind: "equivocation",
			Prior: []byte{1, 2, 3}, Observed: []byte{4, 5, 6}},
	}
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("blame round trip mismatch:\n got %+v\nwant %+v", got.Blamed, want.Blamed)
	}

	// Strip the empty trailing section from a blame-free record to fabricate
	// the pre-section format, re-stitching the length field and CRC.
	old := Encode(sampleState())
	old = old[:len(old)-4-8] // drop CRC trailer and the 8-byte zero count
	lengthOff := 8 + 4       // magic | version
	payloadLen := uint64(len(old) - lengthOff - 8)
	for i := 0; i < 8; i++ {
		old[lengthOff+i] = byte(payloadLen >> (56 - 8*i))
	}
	old = append(old, 0, 0, 0, 0)
	restitchCRC(old)
	got, err = Decode(old)
	if err != nil {
		t.Fatalf("Decode pre-section record: %v", err)
	}
	if got.Blamed != nil {
		t.Errorf("pre-section record decoded with blame: %+v", got.Blamed)
	}
}
