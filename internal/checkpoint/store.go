package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is pluggable checkpoint persistence. A run holds at most one current
// checkpoint: Save replaces it atomically, Load returns the latest one (or
// ErrNotFound), and Clear removes it — the leader clears on successful
// completion so a finished run cannot be "resumed".
//
// Placement is a deployment concern the interface deliberately leaves open:
// the in-process failover runner shares one MemStore between successive
// leaders, while the CLIs point a FileStore at a directory (which must be
// reachable by whichever node resumes — the same machine after a restart, or
// replicated storage in a real multi-host deployment).
type Store interface {
	// Save persists st as the current checkpoint, replacing any previous
	// one. The state must not be mutated while Save runs.
	Save(st *State) error
	// Load returns the current checkpoint, or ErrNotFound when none exists.
	Load() (*State, error)
	// Clear removes the current checkpoint; clearing an empty store is not
	// an error.
	Clear() error
}

// Namespacer is implemented by stores that can carve out independent
// sub-stores under one shared root. A long-lived assessment service runs many
// concurrent protocols over one store; namespacing each run by its
// fingerprint keeps their snapshots from overwriting each other while still
// sharing the root's placement (one directory, one replication policy).
// Namespace is stable: the same name always returns the same sub-store, so
// concurrent runs of one namespace serialize on one instance's lock.
type Namespacer interface {
	// Namespace returns the sub-store for name; the empty name is the root
	// store itself. Names are sanitized by the implementation, so any
	// caller-chosen key (a hex fingerprint, a tenant id) is acceptable.
	Namespace(name string) Store
}

// MemStore is an in-memory Store for tests and the in-process failover
// runner. It round-trips through the codec on every Save/Load, so states
// never alias between the saver and the loader and the encoder stays on the
// hot path of every checkpointing test.
type MemStore struct {
	mu       sync.Mutex
	data     []byte
	children map[string]*MemStore
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store.
func (s *MemStore) Save(st *State) error {
	b := Encode(st)
	s.mu.Lock()
	s.data = b
	s.mu.Unlock()
	return nil
}

// Load implements Store.
func (s *MemStore) Load() (*State, error) {
	s.mu.Lock()
	b := s.data
	s.mu.Unlock()
	if b == nil {
		return nil, ErrNotFound
	}
	return Decode(b)
}

// Clear implements Store.
func (s *MemStore) Clear() error {
	s.mu.Lock()
	s.data = nil
	s.mu.Unlock()
	return nil
}

// Namespace implements Namespacer: sub-stores are independent MemStores,
// created on first use and stable across calls.
func (s *MemStore) Namespace(name string) Store {
	if name == "" {
		return s
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children == nil {
		s.children = make(map[string]*MemStore)
	}
	child, ok := s.children[name]
	if !ok {
		child = NewMemStore()
		s.children[name] = child
	}
	return child
}

// ClearAll removes the root snapshot and every namespaced sub-store's state.
func (s *MemStore) ClearAll() error {
	s.mu.Lock()
	children := make([]*MemStore, 0, len(s.children))
	for _, c := range s.children {
		children = append(children, c)
	}
	s.data = nil
	s.mu.Unlock()
	for _, c := range children {
		if err := c.ClearAll(); err != nil {
			return err
		}
	}
	return nil
}

// Recoverer is implemented by stores that can transparently fall back past a
// corrupt or missing current snapshot to an older valid boundary. Callers
// that care (the resume path surfaces a CorruptionRecovered marker in the
// report) probe it with a type assertion after a successful Load.
type Recoverer interface {
	// RecoveredCorruption describes the most recent Load's fallback, or
	// returns false when the last Load read the current snapshot cleanly.
	RecoveredCorruption() (string, bool)
}

// FileStore persists the checkpoint in a directory, keeping the current
// snapshot plus the previous boundary as a fallback generation. Saves write
// a temporary file, fsync it, rotate current → previous, rename the
// temporary into place, and fsync the directory, so a crash or power loss at
// any instant leaves at least one valid, durable boundary on disk. A Load
// that finds the current snapshot corrupt (torn write, bit rot, version
// skew) quarantines it under a ".corrupt" name for post-mortem inspection
// and falls back to the previous boundary instead of failing the run.
type FileStore struct {
	path string
	dir  string

	mu        sync.Mutex
	recovered string
	faultHook func(op string) error
	children  map[string]*FileStore
}

// File names used inside the store directory.
const (
	checkpointFile = "assessment.ckpt"
	tmpSuffix      = ".tmp"
	prevSuffix     = ".prev"
	corruptSuffix  = ".corrupt"
)

// NewFileStore opens (creating if needed) a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &FileStore{path: filepath.Join(dir, checkpointFile), dir: dir}, nil
}

// Path returns the current checkpoint file location.
func (s *FileStore) Path() string { return s.path }

// SetFaultHook installs a hook called before each durability-relevant step
// of Save ("write", "rotate", "rename", "sync"); a non-nil return aborts the
// save with that error. Tests use it to simulate disk-full and torn-write
// conditions at exact points of the persistence sequence.
func (s *FileStore) SetFaultHook(hook func(op string) error) {
	s.mu.Lock()
	s.faultHook = hook
	s.mu.Unlock()
}

func (s *FileStore) fault(op string) error {
	if s.faultHook == nil {
		return nil
	}
	return s.faultHook(op)
}

// Save implements Store with a fsync'd write-rotate-rename sequence. The
// whole sequence runs under the instance lock: concurrent savers of one
// store (the service's coalesced requests, a test's parallel writers) are
// serialized rather than interleaving their rotate/rename steps.
func (s *FileStore) Save(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path + tmpSuffix
	if err := s.fault("write"); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := writeFileSync(tmp, Encode(st)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Rotate the old current snapshot into the fallback slot before the new
	// one lands: between the two renames the previous boundary is still the
	// newest valid snapshot, so no crash instant loses both generations.
	if err := s.fault("rotate"); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := os.Stat(s.path); err == nil {
		if err := os.Rename(s.path, s.path+prevSuffix); err != nil {
			_ = os.Remove(tmp)
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := s.fault("rename"); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.fault("sync"); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// The renames only become durable once the directory entry updates hit
	// disk; without this a power loss can make a saved snapshot vanish.
	return s.syncDir()
}

// writeFileSync writes b and flushes file contents to stable storage before
// returning, so the subsequent rename can only ever expose complete bytes.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func (s *FileStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync directory: %w", err)
	}
	return nil
}

// Load implements Store. A corrupt current snapshot is quarantined (renamed
// with a ".corrupt" suffix) and the previous boundary is returned instead;
// RecoveredCorruption reports the fallback. Only when no generation decodes
// does Load surface the corruption error.
func (s *FileStore) Load() (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recovered = ""

	st, err := loadFile(s.path)
	switch {
	case err == nil:
		return st, nil
	case errors.Is(err, ErrNotFound):
		// A crash between Save's two renames leaves only the rotated
		// previous boundary; an empty store leaves neither.
		st, perr := loadFile(s.path + prevSuffix)
		if perr != nil {
			return nil, ErrNotFound
		}
		s.recovered = "current snapshot missing; resumed from previous boundary"
		return st, nil
	case errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion):
		// Keep the bad bytes for post-mortem inspection, out of the way of
		// future saves.
		_ = os.Rename(s.path, s.path+corruptSuffix)
		st, perr := loadFile(s.path + prevSuffix)
		if perr == nil {
			s.recovered = "quarantined corrupt snapshot; resumed from previous boundary"
			return st, nil
		}
		if !errors.Is(perr, ErrNotFound) {
			_ = os.Rename(s.path+prevSuffix, s.path+prevSuffix+corruptSuffix)
		}
		return nil, err
	default:
		return nil, err
	}
}

func loadFile(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(b)
}

// RecoveredCorruption implements Recoverer.
func (s *FileStore) RecoveredCorruption() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered, s.recovered != ""
}

// Clear implements Store, removing every live generation. Quarantined
// ".corrupt" files are evidence, not state, and are deliberately kept.
func (s *FileStore) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range []string{s.path, s.path + prevSuffix, s.path + tmpSuffix} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return nil
}

// Namespace implements Namespacer: the sub-store lives in the same directory
// under "assessment-<name>.ckpt" (name sanitized to a filesystem-safe
// alphabet). Sub-stores are cached, so concurrent users of one namespace
// share one instance and serialize on its lock; distinct namespaces never
// touch each other's files and are safe to drive concurrently.
func (s *FileStore) Namespace(name string) Store {
	if name == "" {
		return s
	}
	safe := sanitizeNamespace(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children == nil {
		s.children = make(map[string]*FileStore)
	}
	child, ok := s.children[safe]
	if !ok {
		child = &FileStore{
			path: filepath.Join(s.dir, "assessment-"+safe+".ckpt"),
			dir:  s.dir,
		}
		s.children[safe] = child
	}
	return child
}

// ClearAll removes the root's live generations and every namespaced
// snapshot in the directory — including ones left behind by earlier
// processes whose sub-stores this instance never opened. Quarantined
// ".corrupt" files are kept, as in Clear.
func (s *FileStore) ClearAll() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "assessment") || strings.HasSuffix(name, corruptSuffix) {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".ckpt"),
			strings.HasSuffix(name, ".ckpt"+prevSuffix),
			strings.HasSuffix(name, ".ckpt"+tmpSuffix):
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	return nil
}

// sanitizeNamespace maps an arbitrary namespace key onto [A-Za-z0-9._-],
// truncated to keep file names within portable limits. Distinct keys can in
// principle collide after sanitization; callers that need injectivity (the
// assessment service keys namespaces by mode bits plus a hex fingerprint, 70
// chars — the limit must stay comfortably above that so the high-entropy tail
// survives) should pass names already inside the safe alphabet.
func sanitizeNamespace(name string) string {
	const maxLen = 128
	b := []byte(name)
	if len(b) > maxLen {
		b = b[:maxLen]
	}
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}
