package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Store is pluggable checkpoint persistence. A run holds at most one current
// checkpoint: Save replaces it atomically, Load returns the latest one (or
// ErrNotFound), and Clear removes it — the leader clears on successful
// completion so a finished run cannot be "resumed".
//
// Placement is a deployment concern the interface deliberately leaves open:
// the in-process failover runner shares one MemStore between successive
// leaders, while the CLIs point a FileStore at a directory (which must be
// reachable by whichever node resumes — the same machine after a restart, or
// replicated storage in a real multi-host deployment).
type Store interface {
	// Save persists st as the current checkpoint, replacing any previous
	// one. The state must not be mutated while Save runs.
	Save(st *State) error
	// Load returns the current checkpoint, or ErrNotFound when none exists.
	Load() (*State, error)
	// Clear removes the current checkpoint; clearing an empty store is not
	// an error.
	Clear() error
}

// MemStore is an in-memory Store for tests and the in-process failover
// runner. It round-trips through the codec on every Save/Load, so states
// never alias between the saver and the loader and the encoder stays on the
// hot path of every checkpointing test.
type MemStore struct {
	mu   sync.Mutex
	data []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store.
func (s *MemStore) Save(st *State) error {
	b := Encode(st)
	s.mu.Lock()
	s.data = b
	s.mu.Unlock()
	return nil
}

// Load implements Store.
func (s *MemStore) Load() (*State, error) {
	s.mu.Lock()
	b := s.data
	s.mu.Unlock()
	if b == nil {
		return nil, ErrNotFound
	}
	return Decode(b)
}

// Clear implements Store.
func (s *MemStore) Clear() error {
	s.mu.Lock()
	s.data = nil
	s.mu.Unlock()
	return nil
}

// FileStore persists the checkpoint as one file in a directory, writing via
// a temporary file plus rename so a crash mid-save leaves either the old
// checkpoint or the new one, never a torn record (the CRC catches torn
// writes the filesystem lets through anyway).
type FileStore struct {
	path string
}

// checkpointFile is the file name used inside the store directory.
const checkpointFile = "assessment.ckpt"

// NewFileStore opens (creating if needed) a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &FileStore{path: filepath.Join(dir, checkpointFile)}, nil
}

// Path returns the checkpoint file location.
func (s *FileStore) Path() string { return s.path }

// Save implements Store with an atomic-rename write.
func (s *FileStore) Save(st *State) error {
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, Encode(st), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load implements Store.
func (s *FileStore) Load() (*State, error) {
	b, err := os.ReadFile(s.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(b)
}

// Clear implements Store.
func (s *FileStore) Clear() error {
	err := os.Remove(s.path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
