// Package bench is the experiment harness behind EXPERIMENTS.md, the
// cmd/experiments tool and the root-level benchmarks. It defines the paper's
// workload grid, caches generated cohorts, and renders result rows in the
// shape of the paper's tables and figures.
//
// The paper evaluates on 7,430/14,860 case genomes (plus a 13,035-genome
// reference) and 1,000–10,000 SNPs. Those sizes run, but slowly for a test
// suite, so every workload takes a Scale factor applied to the genome counts
// (SNP counts are never scaled — they drive the selection behaviour). Scale
// 1.0 reproduces the paper's sizes; the default 0.1 keeps the full grid
// under a minute while preserving every comparative trend.
package bench

import (
	"fmt"
	"sync"

	"gendpr/internal/core"
	"gendpr/internal/genome"
)

// Seed fixes every synthetic dataset used by experiments.
const Seed = 42

// PaperReferenceN is the control-population size of the paper's dataset.
const PaperReferenceN = 13035

// Workload is one experiment configuration.
type Workload struct {
	// SNPs is the size of the desired SNP set L_des.
	SNPs int
	// Genomes is the paper-scale case-population size (before scaling).
	Genomes int
	// Scale multiplies Genomes and the reference size.
	Scale float64
}

// CaseN returns the scaled case-population size.
func (w Workload) CaseN() int { return scaled(w.Genomes, w.Scale) }

// ReferenceN returns the scaled reference-panel size.
func (w Workload) ReferenceN() int { return scaled(PaperReferenceN, w.Scale) }

// Label renders the workload like the paper captions ("7,430 genomes /
// 1,000 SNPs"), with the effective size when scaled.
func (w Workload) Label() string {
	if w.Scale == 1 {
		return fmt.Sprintf("%d genomes / %d SNPs", w.Genomes, w.SNPs)
	}
	return fmt.Sprintf("%d genomes / %d SNPs (scale %.2g of %d)", w.CaseN(), w.SNPs, w.Scale, w.Genomes)
}

func scaled(n int, scale float64) int {
	if scale <= 0 || scale == 1 {
		return n
	}
	s := int(float64(n) * scale)
	if s < 40 {
		s = 40
	}
	return s
}

// GDOGrid is the federation-size axis of Figures 5 and 6 and Table 3.
var GDOGrid = []int{2, 3, 5, 7}

// FigureWorkloads maps each running-time figure to its workload.
func FigureWorkloads(scale float64) map[string]Workload {
	return map[string]Workload{
		"fig5a": {SNPs: 1000, Genomes: 7430, Scale: scale},
		"fig5b": {SNPs: 1000, Genomes: 14860, Scale: scale},
		"fig6a": {SNPs: 10000, Genomes: 7430, Scale: scale},
		"fig6b": {SNPs: 10000, Genomes: 14860, Scale: scale},
	}
}

// Table4Workloads is the selection-comparison grid of Table 4.
func Table4Workloads(scale float64) []Workload {
	var out []Workload
	for _, genomes := range []int{7430, 14860} {
		for _, snps := range []int{1000, 2500, 5000, 10000} {
			out = append(out, Workload{SNPs: snps, Genomes: genomes, Scale: scale})
		}
	}
	return out
}

// cohortCache memoizes generated cohorts: the 10,000-SNP cohorts take the
// longest to build and are shared across many experiments.
var cohortCache struct {
	mu sync.Mutex
	m  map[string]*genome.Cohort
}

// Cohort returns the (cached) synthetic cohort for a workload.
func Cohort(w Workload) (*genome.Cohort, error) {
	key := fmt.Sprintf("%d/%d/%d", w.SNPs, w.CaseN(), w.ReferenceN())
	cohortCache.mu.Lock()
	defer cohortCache.mu.Unlock()
	if cohortCache.m == nil {
		cohortCache.m = make(map[string]*genome.Cohort)
	}
	if c, ok := cohortCache.m[key]; ok {
		return c, nil
	}
	cfg := genome.DefaultGeneratorConfig(w.SNPs, w.CaseN(), Seed)
	cfg.ReferenceN = w.ReferenceN()
	c, err := genome.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %s: %w", w.Label(), err)
	}
	cohortCache.m[key] = c
	return c, nil
}

// RunCentralized executes the baseline on a workload.
func RunCentralized(w Workload) (*core.Report, error) {
	cohort, err := Cohort(w)
	if err != nil {
		return nil, err
	}
	return core.RunCentralized(cohort, core.DefaultConfig())
}

// RunGenDPR executes the distributed protocol on a workload.
func RunGenDPR(w Workload, gdos int, policy core.CollusionPolicy) (*core.Report, error) {
	return RunGenDPRConfig(w, gdos, policy, core.DefaultConfig())
}

// RunGenDPRConfig is RunGenDPR under an explicit protocol configuration —
// the G=10 tiers flip ParallelCombinations on, everything else runs the
// default sequential mode.
func RunGenDPRConfig(w Workload, gdos int, policy core.CollusionPolicy, cfg core.Config) (*core.Report, error) {
	cohort, err := Cohort(w)
	if err != nil {
		return nil, err
	}
	shards, err := cohort.Partition(gdos)
	if err != nil {
		return nil, err
	}
	return core.RunDistributed(shards, cohort.Reference, cfg, policy)
}

// RunNaive executes the naïve baseline on a workload.
func RunNaive(w Workload, gdos int) (*core.Report, error) {
	cohort, err := Cohort(w)
	if err != nil {
		return nil, err
	}
	shards, err := cohort.Partition(gdos)
	if err != nil {
		return nil, err
	}
	return core.RunNaive(shards, cohort.Reference, core.DefaultConfig())
}
