package bench

import (
	"strings"
	"testing"

	"gendpr/internal/core"
)

// tinyScale keeps harness tests fast; the trends it must preserve are
// asserted by the root-level benchmark suite at larger scale.
const tinyScale = 0.01

func TestWorkloadScaling(t *testing.T) {
	w := Workload{SNPs: 1000, Genomes: 14860, Scale: 1}
	if w.CaseN() != 14860 || w.ReferenceN() != PaperReferenceN {
		t.Errorf("scale 1 must keep paper sizes: %d/%d", w.CaseN(), w.ReferenceN())
	}
	w.Scale = 0.1
	if w.CaseN() != 1486 {
		t.Errorf("scaled CaseN=%d, want 1486", w.CaseN())
	}
	w.Scale = 0.0001
	if w.CaseN() < 40 {
		t.Errorf("scaled CaseN=%d must respect the floor", w.CaseN())
	}
	if !strings.Contains(w.Label(), "scale") {
		t.Errorf("scaled label %q must mention the scale", w.Label())
	}
	w.Scale = 1
	if strings.Contains(w.Label(), "scale") {
		t.Errorf("unscaled label %q must not mention a scale", w.Label())
	}
}

func TestCohortCache(t *testing.T) {
	w := Workload{SNPs: 60, Genomes: 5000, Scale: tinyScale}
	a, err := Cohort(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cohort(w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache must return the same cohort instance")
	}
	other, err := Cohort(Workload{SNPs: 61, Genomes: 5000, Scale: tinyScale})
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Error("different workloads must not share cohorts")
	}
}

func TestRunnersProduceConsistentReports(t *testing.T) {
	w := Workload{SNPs: 120, Genomes: 30000, Scale: tinyScale}
	central, err := RunCentralized(w)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunGenDPR(w, 3, core.CollusionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !dist.Selection.Equal(central.Selection) {
		t.Errorf("harness runs disagree: %v vs %v", dist.Selection, central.Selection)
	}
	if _, err := RunNaive(w, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFigureTableRenders(t *testing.T) {
	w := Workload{SNPs: 80, Genomes: 40000, Scale: tinyScale}
	table, err := FigureTable(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Centralized", "2 GDOs", "7 GDOs", "LR-test"} {
		if !strings.Contains(table, want) {
			t.Errorf("figure table missing %q:\n%s", want, table)
		}
	}
}

func TestTable3Renders(t *testing.T) {
	out, err := Table3(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 GDOs / 1000 SNPs", "7 GDOs / 10000 SNPs", "Enclave memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestBandwidthRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full middleware grid")
	}
	rows, err := Bandwidth(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8 (4 federation sizes x 2 SNP counts)", len(rows))
	}
	for _, r := range rows {
		if r.ProtocolBytes <= 0 || r.Messages <= 0 || r.GenomeShipBytes <= 0 {
			t.Errorf("row %+v has empty measurements", r)
		}
	}
	// More SNPs means proportionally more protocol traffic.
	if rows[1].ProtocolBytes <= rows[0].ProtocolBytes {
		t.Errorf("10k-SNP traffic %d not above 1k-SNP traffic %d", rows[1].ProtocolBytes, rows[0].ProtocolBytes)
	}
	text := FormatBandwidth(rows)
	if !strings.Contains(text, "7 GDOs / 10000 SNPs") || !strings.Contains(text, "Savings") {
		t.Errorf("formatted table incomplete:\n%s", text)
	}
}

func TestTable5ShapeAndInvariants(t *testing.T) {
	rows, err := Table5(tinyScale, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	// f=1, f=2, conservative.
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Vulnerable < 0 || r.Vulnerable > r.SafeBase {
			t.Errorf("%s: vulnerable %d outside [0, %d]", r.FLabel, r.Vulnerable, r.SafeBase)
		}
		if r.SafePercent+r.VulnPercent > 100.01 || r.SafePercent+r.VulnPercent < 99.99 {
			t.Errorf("%s: percentages do not partition the base release: %.2f + %.2f",
				r.FLabel, r.SafePercent, r.VulnPercent)
		}
		if r.Combinations < 2 {
			t.Errorf("%s: combinations=%d", r.FLabel, r.Combinations)
		}
	}
	// Conservative evaluates the union of combinations.
	if rows[2].Combinations <= rows[0].Combinations {
		t.Errorf("conservative combinations %d should exceed f=1's %d", rows[2].Combinations, rows[0].Combinations)
	}
	text := FormatTable5(rows)
	if !strings.Contains(text, "G=3, f=1") || !strings.Contains(text, "f={1..2}") {
		t.Errorf("formatted table missing rows:\n%s", text)
	}
}
