package bench

import (
	"fmt"
	"strings"

	"gendpr/internal/core"
	"gendpr/internal/federation"
)

// BandwidthRow is one row of the Section 7.1 bandwidth analysis.
type BandwidthRow struct {
	GDOs            int
	SNPs            int
	ProtocolBytes   int64
	Messages        int64
	GenomeShipBytes int64
	Savings         float64
}

// Bandwidth runs the full middleware for each configuration and reports the
// wire traffic against the ship-the-genomes baseline — the claim of the
// paper's Section 7.1 that GDOs exchange vectors instead of variant files.
func Bandwidth(scale float64) ([]BandwidthRow, error) {
	var rows []BandwidthRow
	for _, g := range []int{2, 3, 5, 7} {
		for _, snps := range []int{1000, 10000} {
			w := Workload{SNPs: snps, Genomes: 14860, Scale: scale}
			cohort, err := Cohort(w)
			if err != nil {
				return nil, err
			}
			shards, err := cohort.Partition(g)
			if err != nil {
				return nil, err
			}
			res, err := federation.RunInProcess(shards, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{})
			if err != nil {
				return nil, err
			}
			rows = append(rows, BandwidthRow{
				GDOs:            g,
				SNPs:            snps,
				ProtocolBytes:   res.Traffic.TotalBytes,
				Messages:        res.Traffic.TotalMessages,
				GenomeShipBytes: res.Traffic.GenomeShipBytes,
				Savings:         res.Traffic.SavingsFactor(),
			})
		}
	}
	return rows, nil
}

// FormatBandwidth renders the bandwidth rows as text.
func FormatBandwidth(rows []BandwidthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %16s %10s %22s %10s\n",
		"Configuration", "Protocol (KB)", "Messages", "Genome shipping (KB)", "Savings")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %16.1f %10d %22.1f %9.1fx\n",
			fmt.Sprintf("%d GDOs / %d SNPs", r.GDOs, r.SNPs),
			float64(r.ProtocolBytes)/1024, r.Messages,
			float64(r.GenomeShipBytes)/1024, r.Savings)
	}
	return b.String()
}
