package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: gendpr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable4Selection/7430genomes_1000SNPs-8         	       1	  40786768 ns/op	        38.00 ld-snps	 4581528 B/op	    7499 allocs/op
BenchmarkTable5Collusion/G3_f1                        	       2	 336609875 ns/op	         4.000 combinations	51230584 B/op
PASS
ok  	gendpr	8.524s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatalf("ParseBenchOutput: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	first := results[0]
	if first.Name != "Table4Selection/7430genomes_1000SNPs" {
		t.Errorf("name %q", first.Name)
	}
	if first.Iterations != 1 {
		t.Errorf("iterations %d, want 1", first.Iterations)
	}
	if first.Metrics["ns/op"] != 40786768 {
		t.Errorf("ns/op %v", first.Metrics["ns/op"])
	}
	if first.Metrics["ld-snps"] != 38 {
		t.Errorf("ld-snps %v", first.Metrics["ld-snps"])
	}
	if first.Metrics["allocs/op"] != 7499 {
		t.Errorf("allocs/op %v", first.Metrics["allocs/op"])
	}
	second := results[1]
	if second.Name != "Table5Collusion/G3_f1" || second.Iterations != 2 {
		t.Errorf("second result %+v", second)
	}
}

func TestParseBenchOutputIgnoresChatter(t *testing.T) {
	results, err := ParseBenchOutput(strings.NewReader("PASS\nok gendpr 1s\n=== RUN TestX\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from chatter", len(results))
	}
}

func TestMergeTrajectoryAppendsAndReplaces(t *testing.T) {
	e1 := Entry{Label: "seed", Results: []Result{{Name: "X", Iterations: 1, Metrics: map[string]float64{"ns/op": 10}}}}
	buf, err := MergeTrajectory(nil, "phase3", e1)
	if err != nil {
		t.Fatalf("fresh merge: %v", err)
	}
	e2 := Entry{Label: "pr2", Results: []Result{{Name: "X", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}}}}
	buf, err = MergeTrajectory(buf, "phase3", e2)
	if err != nil {
		t.Fatalf("append merge: %v", err)
	}
	var traj Trajectory
	if err := json.Unmarshal(buf, &traj); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if traj.Benchmark != "phase3" || len(traj.Entries) != 2 {
		t.Fatalf("trajectory %+v", traj)
	}

	// Same label replaces in place.
	e2b := Entry{Label: "pr2", Note: "rerun", Results: e2.Results}
	buf, err = MergeTrajectory(buf, "phase3", e2b)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Entries) != 2 || traj.Entries[1].Note != "rerun" {
		t.Fatalf("replace failed: %+v", traj.Entries)
	}

	// Mismatched benchmark name is rejected.
	if _, err := MergeTrajectory(buf, "other", e1); err == nil {
		t.Fatal("benchmark mismatch accepted")
	}

	r, ok := traj.Entries[0].FindResult("X")
	if !ok || r.Metrics["ns/op"] != 10 {
		t.Fatalf("FindResult: %+v %v", r, ok)
	}
}
