package bench

import (
	"fmt"
	"strings"
	"time"

	"gendpr/internal/core"
)

// ms renders a duration in milliseconds with one decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// FigureTable renders one running-time figure (5a/5b/6a/6b) as a text table:
// one row per deployment (centralized, then each federation size), one
// column per phase bucket, matching the paper's plot legend. Like the paper,
// each configuration is averaged over reps repetitions (the paper uses 5).
func FigureTable(w Workload, reps int) (string, error) {
	if reps < 1 {
		reps = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Running time (ms, mean of %d runs) — %s\n", reps, w.Label())
	fmt.Fprintf(&b, "%-12s %14s %22s %12s %16s %10s\n",
		"Deployment", "DataAggregation", "Indexing/Sort/AlleleFreq", "LD analysis", "LR-test analysis", "Total")

	average := func(run func() (*core.Report, error)) (core.Timings, error) {
		var sum core.Timings
		for i := 0; i < reps; i++ {
			rep, err := run()
			if err != nil {
				return core.Timings{}, err
			}
			sum = sum.Add(rep.Timings)
		}
		return core.Timings{
			DataAggregation: sum.DataAggregation / time.Duration(reps),
			Indexing:        sum.Indexing / time.Duration(reps),
			LD:              sum.LD / time.Duration(reps),
			LRTest:          sum.LRTest / time.Duration(reps),
		}, nil
	}

	central, err := average(func() (*core.Report, error) { return RunCentralized(w) })
	if err != nil {
		return "", err
	}
	writeTimingRow(&b, "Centralized", central)

	for _, g := range GDOGrid {
		g := g
		t, err := average(func() (*core.Report, error) { return RunGenDPR(w, g, core.CollusionPolicy{}) })
		if err != nil {
			return "", err
		}
		writeTimingRow(&b, fmt.Sprintf("%d GDOs", g), t)
	}
	return b.String(), nil
}

func writeTimingRow(b *strings.Builder, label string, t core.Timings) {
	fmt.Fprintf(b, "%-12s %14s %22s %12s %16s %10s\n",
		label, ms(t.DataAggregation), ms(t.Indexing), ms(t.LD), ms(t.LRTest), ms(t.Total()))
}

// Table3 renders the resource-utilization table: leader-enclave peak
// protected memory and protocol CPU time for each configuration. The paper
// reports a CPU share (<1%) of a mostly idle machine; in-process there is no
// idle time, so the CPU column reports busy core-milliseconds instead (see
// EXPERIMENTS.md).
func Table3(scale float64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %18s %20s\n", "Configuration", "CPU (core-ms)", "Enclave memory (KB)")
	for _, g := range []int{2, 3, 5, 7} {
		for _, snps := range []int{1000, 10000} {
			w := Workload{SNPs: snps, Genomes: 14860, Scale: scale}
			rep, err := RunGenDPR(w, g, core.CollusionPolicy{})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-24s %18s %20d\n",
				fmt.Sprintf("%d GDOs / %d SNPs", g, snps),
				ms(rep.Timings.Total()),
				rep.PeakEnclaveBytes/1024)
		}
	}
	return b.String(), nil
}

// Table4 renders the selection-correctness comparison: retained SNPs after
// each phase for the centralized baseline, GenDPR, and the naïve protocol.
func Table4(scale float64, gdos int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-28s %-28s %-28s\n", "# of genomes / SNPs", "Centralized", "GenDPR", "Naive distributed")
	for _, w := range Table4Workloads(scale) {
		central, err := RunCentralized(w)
		if err != nil {
			return "", err
		}
		dist, err := RunGenDPR(w, gdos, core.CollusionPolicy{})
		if err != nil {
			return "", err
		}
		naive, err := RunNaive(w, gdos)
		if err != nil {
			return "", err
		}
		match := ""
		if !dist.Selection.Equal(central.Selection) {
			match = "  !! MISMATCH"
		}
		fmt.Fprintf(&b, "%-44s %-28s %-28s %-28s%s\n",
			w.Label(), central.Selection, dist.Selection, naive.Selection, match)
	}
	return b.String(), nil
}

// Table5Row is one collusion-tolerance result.
type Table5Row struct {
	G            int
	FLabel       string
	SafeCT       int
	SafeBase     int
	Vulnerable   int
	SafePercent  float64
	VulnPercent  float64
	RunningTime  time.Duration
	Combinations int
}

// Table5 evaluates collusion-tolerant GenDPR for G in gGrid with every fixed
// f plus the conservative mode, on the paper's 10,000-SNP / 14,860-genome
// workload.
func Table5(scale float64, gGrid []int) ([]Table5Row, error) {
	w := Workload{SNPs: 10000, Genomes: 14860, Scale: scale}
	var rows []Table5Row
	for _, g := range gGrid {
		base, err := RunGenDPR(w, g, core.CollusionPolicy{})
		if err != nil {
			return nil, err
		}
		baseSafe := len(base.Selection.Safe)

		policies := make([]core.CollusionPolicy, 0, g)
		labels := make([]string, 0, g)
		for f := 1; f < g; f++ {
			policies = append(policies, core.CollusionPolicy{F: f})
			labels = append(labels, fmt.Sprintf("f=%d", f))
		}
		policies = append(policies, core.CollusionPolicy{Conservative: true})
		labels = append(labels, fmt.Sprintf("f={1..%d}", g-1))

		baseSet := make(map[int]bool, baseSafe)
		for _, l := range base.Selection.Safe {
			baseSet[l] = true
		}
		for i, policy := range policies {
			start := time.Now()
			rep, err := RunGenDPR(w, g, policy)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			safe := len(rep.Selection.Safe)
			// Vulnerable = SNPs the unprotected release would publish that
			// do not survive collusion-tolerant evaluation (set difference,
			// as the per-run LR column sets differ).
			kept := 0
			for _, l := range rep.Selection.Safe {
				if baseSet[l] {
					kept++
				}
			}
			vuln := baseSafe - kept
			row := Table5Row{
				G:            g,
				FLabel:       labels[i],
				SafeCT:       safe,
				SafeBase:     baseSafe,
				Vulnerable:   vuln,
				RunningTime:  elapsed,
				Combinations: rep.Combinations,
			}
			if baseSafe > 0 {
				row.SafePercent = 100 * float64(kept) / float64(baseSafe)
				row.VulnPercent = 100 * float64(vuln) / float64(baseSafe)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable5 renders Table5 rows as text.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %26s %30s %16s %14s\n",
		"Settings", "# safe SNPs (tolerant)", "# vulnerable w/o tolerance", "Running (ms)", "Combinations")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %19d (%5.1f%%) %23d (%5.1f%%) %16s %14d\n",
			fmt.Sprintf("G=%d, %s", r.G, r.FLabel),
			r.SafeCT, r.SafePercent, r.Vulnerable, r.VulnPercent,
			ms(r.RunningTime), r.Combinations)
	}
	return b.String()
}
