package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed `go test -bench` output line: the benchmark name
// (without the Benchmark prefix and -GOMAXPROCS suffix), its iteration
// count, and every reported metric keyed by unit (ns/op, B/op, custom
// b.ReportMetric units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Entry is one run of the benchmark suite inside a trajectory file such as
// BENCH_phase3.json: a label (usually the change under test), run metadata,
// and the parsed results.
type Entry struct {
	Label     string   `json:"label"`
	Date      string   `json:"date,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	BenchTime string   `json:"benchtime,omitempty"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// Trajectory is the top-level shape of a BENCH_*.json file: an append-only
// sequence of suite runs, oldest first, so successive perf PRs can compare
// against any recorded baseline.
type Trajectory struct {
	Benchmark string  `json:"benchmark"`
	Entries   []Entry `json:"entries"`
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkTable4Selection/7430genomes_1000SNPs-8   1   40786768 ns/op   489.0 maf-snps
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// ParseBenchOutput extracts the benchmark results from `go test -bench`
// output, ignoring every non-result line (headers, PASS/ok, test chatter).
func ParseBenchOutput(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimRight(sc.Text(), " \t"))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: iteration count in %q: %w", sc.Text(), err)
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: metric value in %q: %w", sc.Text(), err)
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: reading output: %w", err)
	}
	return out, nil
}

// MergeTrajectory appends entry to the trajectory serialized in existing
// (which may be empty for a fresh file) and returns the updated JSON. An
// existing entry with the same label is replaced in place, so re-running a
// suite under one label updates rather than duplicates its record.
func MergeTrajectory(existing []byte, benchmark string, entry Entry) ([]byte, error) {
	traj := Trajectory{Benchmark: benchmark}
	if len(existing) > 0 {
		if err := json.Unmarshal(existing, &traj); err != nil {
			return nil, fmt.Errorf("bench: existing trajectory: %w", err)
		}
		if traj.Benchmark != benchmark {
			return nil, fmt.Errorf("bench: trajectory records %q, not %q", traj.Benchmark, benchmark)
		}
	}
	replaced := false
	for i := range traj.Entries {
		if traj.Entries[i].Label == entry.Label {
			traj.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		traj.Entries = append(traj.Entries, entry)
	}
	buf, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode trajectory: %w", err)
	}
	return append(buf, '\n'), nil
}

// FindResult returns the named result inside an entry, or false.
func (e Entry) FindResult(name string) (Result, bool) {
	for _, r := range e.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}
