package secshare

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func TestShareCombineRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 42, 1 << 40, int64(Modulus/2) - 1} {
		for _, n := range []int{2, 3, 7} {
			shares, err := Share(v, n, rand.Reader)
			if err != nil {
				t.Fatalf("Share(%d, %d): %v", v, n, err)
			}
			if len(shares) != n {
				t.Fatalf("got %d shares, want %d", len(shares), n)
			}
			got, err := Combine(shares)
			if err != nil {
				t.Fatalf("Combine: %v", err)
			}
			if got != v {
				t.Fatalf("round trip %d → %d (n=%d)", v, got, n)
			}
		}
	}
}

func TestShareValidation(t *testing.T) {
	if _, err := Share(1, 1, rand.Reader); !errors.Is(err, ErrShareCount) {
		t.Errorf("n=1: %v", err)
	}
	if _, err := Share(-1, 2, rand.Reader); !errors.Is(err, ErrValueRange) {
		t.Errorf("negative: %v", err)
	}
	if _, err := Share(int64(Modulus/2), 2, rand.Reader); !errors.Is(err, ErrValueRange) {
		t.Errorf("too large: %v", err)
	}
	if _, err := Combine([]uint64{1}); !errors.Is(err, ErrShareCount) {
		t.Errorf("single share: %v", err)
	}
	if _, err := Combine([]uint64{Modulus, 1}); err == nil {
		t.Error("out-of-field share accepted")
	}
}

func TestSingleShareRevealsNothing(t *testing.T) {
	// Sharing the same value twice yields unrelated first shares: the
	// share is a uniform field element, not a function of the secret.
	a1, err := Share(12345, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Share(12345, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if a1[0] == a2[0] && a1[1] == a2[1] {
		t.Fatal("shares repeat across invocations; randomness broken")
	}
	// Combining a proper subset must not reconstruct the value.
	partial := uint64(0)
	for _, s := range a1[:2] {
		partial = (partial + s) % Modulus
	}
	if int64(partial) == 12345 {
		t.Fatal("two of three shares reconstructed the secret")
	}
}

func TestDeterministicWithSeededReader(t *testing.T) {
	seed := bytes.Repeat([]byte{7}, 1024)
	s1, err := Share(99, 3, bytes.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Share(99, 3, bytes.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same randomness must give same shares")
		}
	}
}

func TestVectorAggregationFlow(t *testing.T) {
	// Three members, two non-colluding aggregators.
	members := [][]int64{
		{1, 2, 3, 4},
		{10, 20, 30, 40},
		{100, 200, 300, 400},
	}
	const aggregators = 2
	perAggregator := make([][]SharedVector, aggregators)
	for _, counts := range members {
		sharedViews, err := ShareVector(counts, aggregators, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for i, view := range sharedViews {
			perAggregator[i] = append(perAggregator[i], view)
		}
	}
	// Each aggregator sums locally.
	sums := make([]SharedVector, aggregators)
	for i, views := range perAggregator {
		s, err := AddVectors(views...)
		if err != nil {
			t.Fatal(err)
		}
		sums[i] = s
	}
	got, err := CombineVectors(sums)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{111, 222, 333, 444}
	for l := range want {
		if got[l] != want[l] {
			t.Errorf("aggregate[%d]=%d, want %d", l, got[l], want[l])
		}
	}
}

func TestVectorErrors(t *testing.T) {
	if _, err := ShareVector([]int64{1}, 1, rand.Reader); !errors.Is(err, ErrShareCount) {
		t.Errorf("ShareVector n=1: %v", err)
	}
	if _, err := ShareVector([]int64{-5}, 2, rand.Reader); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := AddVectors(SharedVector{1, 2}, SharedVector{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("AddVectors mismatch: %v", err)
	}
	if v, err := AddVectors(); err != nil || v != nil {
		t.Errorf("empty AddVectors: %v, %v", v, err)
	}
	if _, err := CombineVectors([]SharedVector{{1}}); !errors.Is(err, ErrShareCount) {
		t.Errorf("single aggregator: %v", err)
	}
	if _, err := CombineVectors([]SharedVector{{1, 2}, {1}}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("CombineVectors mismatch: %v", err)
	}
}

// Property: sharing and recombining arbitrary counts round-trips, and the
// elementwise share sums match plaintext sums.
func TestQuickShareHomomorphism(t *testing.T) {
	f := func(a, b uint32, rawN uint8) bool {
		n := int(rawN%5) + 2
		sa, err := Share(int64(a), n, rand.Reader)
		if err != nil {
			return false
		}
		sb, err := Share(int64(b), n, rand.Reader)
		if err != nil {
			return false
		}
		sum := make([]uint64, n)
		for i := range sum {
			sum[i] = addMod(sa[i], sb[i])
		}
		got, err := Combine(sum)
		return err == nil && got == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
