// Package secshare implements additive secret sharing over the Mersenne
// prime field Z_(2^61−1) — the third aggregation substrate for GenDPR's
// Phase 1 alongside the TEE (default) and Paillier HE paths. The paper's
// related work (Section 2.1) surveys SMC-based federated GWAS: members
// split their count vectors into n additive shares, hand one share to each
// of n non-colluding aggregators, every aggregator sums the shares it holds
// locally, and recombining the aggregator outputs reveals only the
// federation-wide sums. No single aggregator (or any proper subset of them)
// learns anything about an individual member's counts.
package secshare

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Modulus is the Mersenne prime 2^61 − 1.
const Modulus uint64 = (1 << 61) - 1

var (
	// ErrShareCount is returned for invalid share counts.
	ErrShareCount = errors.New("secshare: need at least two shares")

	// ErrValueRange is returned when a secret does not fit the field's
	// positive half (values must be non-negative counts).
	ErrValueRange = errors.New("secshare: value outside [0, modulus/2)")

	// ErrLengthMismatch is returned when vectors disagree on length.
	ErrLengthMismatch = errors.New("secshare: vector length mismatch")
)

// addMod adds two field elements.
func addMod(a, b uint64) uint64 {
	s := a + b // cannot overflow: both < 2^61
	if s >= Modulus {
		s -= Modulus
	}
	return s
}

// subMod subtracts b from a in the field.
func subMod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + Modulus - b
}

// randomElement draws a uniform field element.
func randomElement(random io.Reader) (uint64, error) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(random, buf[:]); err != nil {
			return 0, fmt.Errorf("secshare: randomness: %w", err)
		}
		// Rejection-sample 61-bit values below the modulus.
		v := binary.BigEndian.Uint64(buf[:]) >> 3
		if v < Modulus {
			return v, nil
		}
	}
}

// Share splits a non-negative value into n additive shares. Any n−1 shares
// are jointly uniform and reveal nothing about the value.
func Share(value int64, n int, random io.Reader) ([]uint64, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrShareCount, n)
	}
	if value < 0 || uint64(value) >= Modulus/2 {
		// The out-of-range value IS the secret being shared; the error
		// must not carry it.
		return nil, ErrValueRange
	}
	if random == nil {
		random = rand.Reader
	}
	shares := make([]uint64, n)
	acc := uint64(0)
	for i := 0; i < n-1; i++ {
		r, err := randomElement(random)
		if err != nil {
			return nil, err
		}
		shares[i] = r
		acc = addMod(acc, r)
	}
	shares[n-1] = subMod(uint64(value), acc)
	return shares, nil
}

// Combine reconstructs the secret from all of its shares.
func Combine(shares []uint64) (int64, error) {
	if len(shares) < 2 {
		return 0, fmt.Errorf("%w: got %d", ErrShareCount, len(shares))
	}
	acc := uint64(0)
	for _, s := range shares {
		if s >= Modulus {
			return 0, errors.New("secshare: share outside the field")
		}
		acc = addMod(acc, s)
	}
	if acc >= Modulus/2 {
		// The reconstructed value is the pre-release aggregate; the error
		// must not carry it.
		return 0, ErrValueRange
	}
	return int64(acc), nil
}

// SharedVector is one aggregator's view of a shared count vector.
type SharedVector []uint64

// ShareVector splits a count vector into n SharedVectors, one per
// aggregator: entry l of the i-th output is the i-th share of counts[l].
func ShareVector(counts []int64, n int, random io.Reader) ([]SharedVector, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrShareCount, n)
	}
	out := make([]SharedVector, n)
	for i := range out {
		out[i] = make(SharedVector, len(counts))
	}
	for l, v := range counts {
		shares, err := Share(v, n, random)
		if err != nil {
			return nil, fmt.Errorf("secshare: SNP %d: %w", l, err)
		}
		for i, s := range shares {
			out[i][l] = s
		}
	}
	return out, nil
}

// AddVectors sums share vectors elementwise — the local, information-free
// work each aggregator performs over the shares it received.
func AddVectors(vectors ...SharedVector) (SharedVector, error) {
	if len(vectors) == 0 {
		return nil, nil
	}
	out := make(SharedVector, len(vectors[0]))
	copy(out, vectors[0])
	for _, v := range vectors[1:] {
		if len(v) != len(out) {
			return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(v), len(out))
		}
		for l := range out {
			out[l] = addMod(out[l], v[l])
		}
	}
	return out, nil
}

// CombineVectors reconstructs the aggregate count vector from every
// aggregator's summed share vector.
func CombineVectors(aggregatorSums []SharedVector) ([]int64, error) {
	if len(aggregatorSums) < 2 {
		return nil, fmt.Errorf("%w: got %d aggregators", ErrShareCount, len(aggregatorSums))
	}
	length := len(aggregatorSums[0])
	for _, v := range aggregatorSums {
		if len(v) != length {
			return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(v), length)
		}
	}
	out := make([]int64, length)
	shares := make([]uint64, len(aggregatorSums))
	for l := 0; l < length; l++ {
		for i, v := range aggregatorSums {
			shares[i] = v[l]
		}
		value, err := Combine(shares)
		if err != nil {
			return nil, fmt.Errorf("secshare: SNP %d: %w", l, err)
		}
		out[l] = value
	}
	return out, nil
}
