// Package dynamic adds DyPS-style dynamic release management on top of the
// GenDPR assessment. The paper builds on DyPS (Section 2.2), where GWAS
// statistics are re-released "as soon as new genomes become available"; the
// danger is that a SNP deemed safe at epoch t can become unsafe at epoch
// t+1, after its statistics are already public and cannot be retracted.
//
// The Manager accumulates per-GDO genome batches, re-runs the federated
// assessment at every epoch, and enforces a conservative release policy:
// statistics for a SNP are only (re-)published while the SNP stays safe; a
// previously published SNP that turns unsafe is frozen (its stale statistics
// remain public — that exposure is reported, not hidden) and never updated
// again. Manager state is sealed with a rollback-protected monotonic counter
// so a malicious operator cannot rewind the federation to a more permissive
// epoch.
package dynamic

import (
	"errors"
	"fmt"
	"sort"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/genome"
	"gendpr/internal/wire"
)

// stateCounter names the enclave monotonic counter guarding sealed state.
const stateCounter = "gendpr-dynamic-state"

var (
	// ErrNoData is returned when an epoch is assessed before any genomes
	// arrived.
	ErrNoData = errors.New("dynamic: no genomes accumulated")

	// ErrShape is returned when a batch disagrees with the study's SNP set.
	ErrShape = errors.New("dynamic: batch SNP dimension mismatch")
)

// EpochReport describes one assessment epoch.
type EpochReport struct {
	// Epoch is the 1-based epoch number.
	Epoch int
	// Selection is the full assessment outcome over the cumulative cohort.
	Selection core.Selection
	// Released lists every SNP whose statistics are published and current
	// as of this epoch.
	Released []int
	// NewlyReleased lists SNPs first published this epoch.
	NewlyReleased []int
	// Frozen lists SNPs that were published in an earlier epoch but are no
	// longer safe: their stale statistics stay public but are not updated.
	Frozen []int
	// Genomes is the cumulative case-population size.
	Genomes int
}

// Manager coordinates dynamic releases for one study.
type Manager struct {
	cfg     core.Config
	policy  core.CollusionPolicy
	enclave *enclave.Enclave
	ref     *genome.Matrix

	shards []*genome.Matrix // cumulative per-GDO data; nil until first batch

	epoch        int
	everReleased map[int]bool
	frozen       map[int]bool
}

// NewManager creates a release manager for a federation of g GDOs sharing a
// reference panel. The enclave seals the manager's state between epochs.
func NewManager(g int, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, enc *enclave.Enclave) (*Manager, error) {
	if g <= 0 {
		return nil, fmt.Errorf("dynamic: federation size %d invalid", g)
	}
	if reference == nil || reference.N() == 0 {
		return nil, errors.New("dynamic: missing reference panel")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := policy.Validate(g); err != nil {
		return nil, err
	}
	if enc == nil {
		return nil, errors.New("dynamic: missing state enclave")
	}
	return &Manager{
		cfg:          cfg,
		policy:       policy,
		enclave:      enc,
		ref:          reference,
		shards:       make([]*genome.Matrix, g),
		everReleased: make(map[int]bool),
		frozen:       make(map[int]bool),
	}, nil
}

// Epoch returns the number of completed assessment epochs.
func (m *Manager) Epoch() int { return m.epoch }

// AddBatch appends newly collected genomes to one GDO's cumulative dataset
// (the genomes never leave that GDO; the manager models its local growth).
func (m *Manager) AddBatch(gdo int, batch *genome.Matrix) error {
	if gdo < 0 || gdo >= len(m.shards) {
		return fmt.Errorf("dynamic: GDO %d out of range for federation of %d", gdo, len(m.shards))
	}
	if batch == nil || batch.N() == 0 {
		return errors.New("dynamic: empty batch")
	}
	if batch.L() != m.ref.L() {
		return fmt.Errorf("%w: batch has %d SNPs, study has %d", ErrShape, batch.L(), m.ref.L())
	}
	if m.shards[gdo] == nil {
		m.shards[gdo] = batch.Clone()
		return nil
	}
	merged, err := genome.Concat(m.shards[gdo], batch)
	if err != nil {
		return err
	}
	m.shards[gdo] = merged
	return nil
}

// Assess runs one epoch: a full federated assessment over the cumulative
// cohort, followed by the dynamic release-policy update. GDOs without data
// yet simply do not participate in this epoch.
func (m *Manager) Assess() (*EpochReport, error) {
	shards := make([]*genome.Matrix, 0, len(m.shards))
	var genomes int
	for _, s := range m.shards {
		if s != nil && s.N() > 0 {
			shards = append(shards, s)
			genomes += s.N()
		}
	}
	if len(shards) == 0 {
		return nil, ErrNoData
	}
	policy := m.policy
	if maxF := len(shards) - 1; !policy.Conservative && policy.F > maxF {
		// Fewer GDOs have data than the configured tolerance; clamp.
		policy.F = maxF
	}
	if policy.Conservative && len(shards) < 2 {
		policy = core.CollusionPolicy{}
	}
	report, err := core.RunDistributed(shards, m.ref, m.cfg, policy)
	if err != nil {
		return nil, err
	}
	m.epoch++

	safeNow := make(map[int]bool, len(report.Selection.Safe))
	for _, l := range report.Selection.Safe {
		safeNow[l] = true
	}

	epochReport := &EpochReport{
		Epoch:     m.epoch,
		Selection: report.Selection,
		Genomes:   genomes,
	}
	// Previously published SNPs that are no longer safe freeze forever.
	for l := range m.everReleased {
		if !safeNow[l] && !m.frozen[l] {
			m.frozen[l] = true
		}
	}
	for _, l := range report.Selection.Safe {
		if m.frozen[l] {
			continue // frozen SNPs are never re-released
		}
		if !m.everReleased[l] {
			m.everReleased[l] = true
			epochReport.NewlyReleased = append(epochReport.NewlyReleased, l)
		}
		epochReport.Released = append(epochReport.Released, l)
	}
	for l := range m.frozen {
		epochReport.Frozen = append(epochReport.Frozen, l)
	}
	sort.Ints(epochReport.Released)
	sort.Ints(epochReport.NewlyReleased)
	sort.Ints(epochReport.Frozen)

	if err := m.sealState(); err != nil {
		return nil, err
	}
	return epochReport, nil
}

// sealState persists the release bookkeeping under the enclave's
// rollback-protected counter.
func (m *Manager) sealState() error {
	e := wire.NewEncoder(64)
	e.Int(m.epoch)
	e.Ints(sortedKeys(m.everReleased))
	e.Ints(sortedKeys(m.frozen))
	if _, err := m.enclave.SealVersioned(stateCounter, e.Bytes()); err != nil {
		return fmt.Errorf("dynamic: seal state: %w", err)
	}
	return nil
}

// ExportState seals and returns the current state blob for external storage.
func (m *Manager) ExportState() ([]byte, error) {
	e := wire.NewEncoder(64)
	e.Int(m.epoch)
	e.Ints(sortedKeys(m.everReleased))
	e.Ints(sortedKeys(m.frozen))
	blob, err := m.enclave.SealVersioned(stateCounter, e.Bytes())
	if err != nil {
		return nil, fmt.Errorf("dynamic: export state: %w", err)
	}
	return blob, nil
}

// ImportState restores release bookkeeping from a sealed blob. Stale blobs
// (sealed before the counter's current epoch) are rejected, preventing
// rollback to a more permissive release history.
func (m *Manager) ImportState(blob []byte) error {
	plain, err := m.enclave.UnsealVersioned(stateCounter, blob)
	if err != nil {
		return fmt.Errorf("dynamic: import state: %w", err)
	}
	d := wire.NewDecoder(plain)
	epoch := d.Int()
	released := d.Ints()
	frozen := d.Ints()
	if err := d.Finish(); err != nil {
		return fmt.Errorf("dynamic: state decode: %w", err)
	}
	m.epoch = epoch
	m.everReleased = make(map[int]bool, len(released))
	for _, l := range released {
		m.everReleased[l] = true
	}
	m.frozen = make(map[int]bool, len(frozen))
	for _, l := range frozen {
		m.frozen[l] = true
	}
	return nil
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
