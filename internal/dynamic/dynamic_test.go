package dynamic

import (
	"errors"
	"testing"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/genome"
)

func testSetup(t *testing.T, snps, caseN int, seed int64) (*Manager, *genome.Cohort) {
	t.Helper()
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(snps, caseN, seed))
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := platform.Load([]byte("dynamic-test"), enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(3, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{}, enc)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, cohort
}

func TestNewManagerValidation(t *testing.T) {
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(20, 30, 1))
	if err != nil {
		t.Fatal(err)
	}
	platform, _ := enclave.NewPlatform()
	enc, _ := platform.Load([]byte("x"), enclave.Config{})

	if _, err := NewManager(0, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{}, enc); err == nil {
		t.Error("g=0 accepted")
	}
	if _, err := NewManager(2, nil, core.DefaultConfig(), core.CollusionPolicy{}, enc); err == nil {
		t.Error("nil reference accepted")
	}
	if _, err := NewManager(2, cohort.Reference, core.Config{}, core.CollusionPolicy{}, enc); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewManager(2, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{F: 5}, enc); err == nil {
		t.Error("invalid policy accepted")
	}
	if _, err := NewManager(2, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{}, nil); err == nil {
		t.Error("nil enclave accepted")
	}
}

func TestAddBatchValidation(t *testing.T) {
	mgr, cohort := testSetup(t, 40, 90, 2)
	batch := cohort.Case.SelectRows(0, 10)
	if err := mgr.AddBatch(-1, batch); err == nil {
		t.Error("negative GDO accepted")
	}
	if err := mgr.AddBatch(3, batch); err == nil {
		t.Error("GDO out of range accepted")
	}
	if err := mgr.AddBatch(0, nil); err == nil {
		t.Error("nil batch accepted")
	}
	if err := mgr.AddBatch(0, genome.NewMatrix(5, 39)); !errors.Is(err, ErrShape) {
		t.Errorf("wrong-shape batch: %v", err)
	}
	if err := mgr.AddBatch(0, batch); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestAssessWithoutDataFails(t *testing.T) {
	mgr, _ := testSetup(t, 40, 90, 3)
	if _, err := mgr.Assess(); !errors.Is(err, ErrNoData) {
		t.Fatalf("got %v, want ErrNoData", err)
	}
}

func TestEpochProgression(t *testing.T) {
	mgr, cohort := testSetup(t, 100, 300, 5)

	// Epoch 1: only GDO 0 has data.
	if err := mgr.AddBatch(0, cohort.Case.SelectRows(0, 100)); err != nil {
		t.Fatal(err)
	}
	r1, err := mgr.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Epoch != 1 || mgr.Epoch() != 1 {
		t.Errorf("epoch=%d/%d, want 1", r1.Epoch, mgr.Epoch())
	}
	if r1.Genomes != 100 {
		t.Errorf("genomes=%d, want 100", r1.Genomes)
	}
	if len(r1.Released) == 0 {
		t.Fatal("first epoch released nothing; test data degenerate")
	}
	if len(r1.NewlyReleased) != len(r1.Released) {
		t.Error("every first-epoch release is new")
	}

	// Epoch 2: the other GDOs come online.
	if err := mgr.AddBatch(1, cohort.Case.SelectRows(100, 200)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddBatch(2, cohort.Case.SelectRows(200, 300)); err != nil {
		t.Fatal(err)
	}
	r2, err := mgr.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != 2 {
		t.Errorf("epoch=%d, want 2", r2.Epoch)
	}
	if r2.Genomes != 300 {
		t.Errorf("genomes=%d, want 300", r2.Genomes)
	}

	// Dynamic-release invariants.
	released1 := toSet(r1.Released)
	newly2 := toSet(r2.NewlyReleased)
	for l := range newly2 {
		if released1[l] {
			t.Errorf("SNP %d reported newly released twice", l)
		}
	}
	frozen2 := toSet(r2.Frozen)
	for _, l := range r2.Released {
		if frozen2[l] {
			t.Errorf("frozen SNP %d still released", l)
		}
	}
	// Frozen SNPs must have been released before and be unsafe now.
	safe2 := toSet(r2.Selection.Safe)
	for _, l := range r2.Frozen {
		if !released1[l] {
			t.Errorf("frozen SNP %d was never released", l)
		}
		if safe2[l] {
			t.Errorf("frozen SNP %d is still safe", l)
		}
	}
}

func TestFrozenSNPNeverReturns(t *testing.T) {
	mgr, cohort := testSetup(t, 80, 240, 7)
	if err := mgr.AddBatch(0, cohort.Case.SelectRows(0, 80)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Assess(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddBatch(1, cohort.Case.SelectRows(80, 160)); err != nil {
		t.Fatal(err)
	}
	r2, err := mgr.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Frozen) == 0 {
		t.Skip("no SNP froze for this seed; invariant exercised elsewhere")
	}
	if err := mgr.AddBatch(2, cohort.Case.SelectRows(160, 240)); err != nil {
		t.Fatal(err)
	}
	r3, err := mgr.Assess()
	if err != nil {
		t.Fatal(err)
	}
	frozen2 := toSet(r2.Frozen)
	for _, l := range r3.Released {
		if frozen2[l] {
			t.Errorf("SNP %d was frozen at epoch 2 but released at epoch 3", l)
		}
	}
	for _, l := range r2.Frozen {
		if !toSet(r3.Frozen)[l] {
			t.Errorf("SNP %d left the frozen set", l)
		}
	}
}

func TestStateExportImportRoundTrip(t *testing.T) {
	mgr, cohort := testSetup(t, 60, 180, 9)
	if err := mgr.AddBatch(0, cohort.Case.SelectRows(0, 90)); err != nil {
		t.Fatal(err)
	}
	r1, err := mgr.Assess()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := mgr.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.ImportState(blob); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if mgr.Epoch() != r1.Epoch {
		t.Errorf("epoch after import %d, want %d", mgr.Epoch(), r1.Epoch)
	}
}

func TestStateRollbackRejected(t *testing.T) {
	mgr, cohort := testSetup(t, 60, 180, 11)
	if err := mgr.AddBatch(0, cohort.Case.SelectRows(0, 90)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Assess(); err != nil {
		t.Fatal(err)
	}
	stale, err := mgr.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Progress one epoch; the stale blob must then be rejected.
	if err := mgr.AddBatch(1, cohort.Case.SelectRows(90, 180)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Assess(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.ImportState(stale); !errors.Is(err, enclave.ErrRollback) {
		t.Fatalf("stale state import: %v, want rollback rejection", err)
	}
}

func toSet(v []int) map[int]bool {
	out := make(map[int]bool, len(v))
	for _, l := range v {
		out[l] = true
	}
	return out
}
