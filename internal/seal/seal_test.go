package seal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("allele counts over L_des")
	aad := []byte("phase-1")
	ct, err := Encrypt(key, msg, aad)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Contains(ct, msg) {
		t.Fatal("ciphertext leaks plaintext")
	}
	pt, err := Decrypt(key, ct, aad)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("round trip lost data")
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	key, _ := NewKey()
	ct, err := Encrypt(key, []byte("payload"), []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	flip := make([]byte, len(ct))
	copy(flip, ct)
	flip[len(flip)-1] ^= 1
	if _, err := Decrypt(key, flip, []byte("aad")); err == nil {
		t.Error("tampered ciphertext must fail")
	}
	if _, err := Decrypt(key, ct, []byte("wrong-aad")); err == nil {
		t.Error("wrong additional data must fail")
	}
	other, _ := NewKey()
	if _, err := Decrypt(other, ct, []byte("aad")); err == nil {
		t.Error("wrong key must fail")
	}
	if _, err := Decrypt(key, ct[:5], []byte("aad")); err == nil {
		t.Error("truncated ciphertext must fail")
	}
}

func TestEncryptBadKeySize(t *testing.T) {
	if _, err := Encrypt(make([]byte, 16), []byte("x"), nil); err == nil {
		t.Error("16-byte key must be rejected (AES-256 only)")
	}
	if _, err := Decrypt(nil, []byte("x"), nil); err == nil {
		t.Error("nil key must be rejected")
	}
}

func TestEncryptNondeterministicNonce(t *testing.T) {
	key, _ := NewKey()
	a, _ := Encrypt(key, []byte("same"), nil)
	b, _ := Encrypt(key, []byte("same"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same message must differ (random nonce)")
	}
}

func TestHKDFRFC5869Vector(t *testing.T) {
	// RFC 5869 test case 1 (SHA-256).
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	want, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
	got, err := HKDF(ikm, salt, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x, want %x", got, want)
	}
}

func TestHKDFEmptySalt(t *testing.T) {
	// RFC 5869 test case 3: zero-length salt and info.
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	want, _ := hex.DecodeString("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	got, err := HKDF(ikm, nil, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x, want %x", got, want)
	}
}

func TestHKDFBadLength(t *testing.T) {
	if _, err := HKDF([]byte("s"), nil, nil, 0); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := HKDF([]byte("s"), nil, nil, 256*sha256.Size); err == nil {
		t.Error("oversized output must fail")
	}
}

func TestECDHSessionAgreement(t *testing.T) {
	a, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	info := []byte("gendpr-session-v1")
	ka, err := a.SessionKey(b.PublicBytes(), info)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.SessionKey(a.PublicBytes(), info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatal("both sides must derive the same session key")
	}
	if len(ka) != KeySize {
		t.Fatalf("session key is %d bytes, want %d", len(ka), KeySize)
	}
	// A different context string yields an unrelated key.
	ka2, err := a.SessionKey(b.PublicBytes(), []byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ka, ka2) {
		t.Fatal("different info must yield different keys")
	}
	if _, err := a.SessionKey([]byte("garbage"), info); err == nil {
		t.Error("malformed peer public key must fail")
	}
}

func TestSigningRoundTrip(t *testing.T) {
	k, err := NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("signed VCF digest")
	sig := k.Sign(msg)
	if !Verify(k.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(k.Public(), []byte("other"), sig) {
		t.Fatal("signature over different message accepted")
	}
	sig[0] ^= 1
	if Verify(k.Public(), msg, sig) {
		t.Fatal("corrupted signature accepted")
	}
	if Verify([]byte("short"), msg, sig) {
		t.Fatal("malformed public key accepted")
	}
}

// Property: for arbitrary payloads and AADs, Decrypt(Encrypt(m)) == m.
func TestQuickSealRoundTrip(t *testing.T) {
	key, _ := NewKey()
	f := func(msg, aad []byte) bool {
		ct, err := Encrypt(key, msg, aad)
		if err != nil {
			return false
		}
		pt, err := Decrypt(key, ct, aad)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
