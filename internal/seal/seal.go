// Package seal provides the cryptographic primitives GenDPR's enclaves use:
// AES-256-GCM authenticated encryption for every exchanged or sealed payload,
// HKDF-SHA256 key derivation, ECDH (P-256) session-key agreement bootstrapped
// during remote attestation, and Ed25519 signatures for quotes and signed
// genome files. Everything builds on the Go standard library.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

var (
	// ErrDecrypt is returned when a ciphertext fails authentication or is
	// structurally invalid. The cause is deliberately not distinguished.
	ErrDecrypt = errors.New("seal: message authentication failed")

	// ErrBadKey is returned for keys of the wrong size.
	ErrBadKey = errors.New("seal: key must be 32 bytes")
)

// NewKey returns a fresh random AES-256 key.
func NewKey() ([]byte, error) {
	k := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, fmt.Errorf("seal: generate key: %w", err)
	}
	return k, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, ErrBadKey
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seal: new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal: new GCM: %w", err)
	}
	return aead, nil
}

// Encrypt seals plaintext under the key with AES-256-GCM, binding the
// additional data. The random nonce is prepended to the returned ciphertext.
func Encrypt(key, plaintext, additional []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("seal: nonce: %w", err)
	}
	out := make([]byte, 0, len(nonce)+len(plaintext)+aead.Overhead())
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, additional), nil
}

// Decrypt opens a ciphertext produced by Encrypt under the same key and
// additional data.
func Decrypt(key, ciphertext, additional []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, body := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	plain, err := aead.Open(nil, nonce, body, additional)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plain, nil
}

// HKDF derives n bytes of key material from a secret using HKDF-SHA256
// (RFC 5869) with the given salt and info strings.
func HKDF(secret, salt, info []byte, n int) ([]byte, error) {
	if n <= 0 || n > 255*sha256.Size {
		return nil, fmt.Errorf("seal: HKDF output length %d invalid", n)
	}
	// Extract.
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)
	// Expand.
	out := make([]byte, 0, n)
	var t []byte
	for i := byte(1); len(out) < n; i++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(t)
		exp.Write(info)
		exp.Write([]byte{i})
		t = exp.Sum(nil)
		out = append(out, t...)
	}
	return out[:n], nil
}

// KeyPair is an ephemeral ECDH key pair used for session establishment.
type KeyPair struct {
	priv *ecdh.PrivateKey
}

// NewKeyPair generates an ephemeral P-256 key pair.
func NewKeyPair() (*KeyPair, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("seal: generate ECDH key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// PublicBytes returns the public key encoding to send to the peer.
func (kp *KeyPair) PublicBytes() []byte {
	return kp.priv.PublicKey().Bytes()
}

// SessionKey derives a 32-byte AES key from the ECDH shared secret with the
// peer's public key, bound to the given context info. Both sides derive the
// same key when they use the same info string.
func (kp *KeyPair) SessionKey(peerPublic, info []byte) ([]byte, error) {
	pub, err := ecdh.P256().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("seal: parse peer public key: %w", err)
	}
	secret, err := kp.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("seal: ECDH: %w", err)
	}
	return HKDF(secret, nil, info, KeySize)
}

// SigningKey wraps an Ed25519 private key.
type SigningKey struct {
	priv ed25519.PrivateKey
}

// NewSigningKey generates an Ed25519 signing key.
func NewSigningKey() (*SigningKey, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("seal: generate signing key: %w", err)
	}
	return &SigningKey{priv: priv}, nil
}

// NewSigningKeyFromSeed derives a deterministic Ed25519 signing key from a
// 32-byte seed — used to share one attestation authority across processes.
func NewSigningKeyFromSeed(seed []byte) (*SigningKey, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("seal: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	return &SigningKey{priv: ed25519.NewKeyFromSeed(seed)}, nil
}

// Public returns the verification key.
func (k *SigningKey) Public() ed25519.PublicKey {
	return k.priv.Public().(ed25519.PublicKey)
}

// Sign signs the message.
func (k *SigningKey) Sign(message []byte) []byte {
	return ed25519.Sign(k.priv, message)
}

// Verify checks an Ed25519 signature.
func Verify(pub ed25519.PublicKey, message, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, message, sig)
}
