package release

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"gendpr/internal/seal"
)

func sampleDocument(t *testing.T) *Document {
	t.Helper()
	caseCounts := []int64{50, 10, 30, 70, 5}
	refCounts := []int64{40, 12, 30, 20, 6}
	doc, err := Build("amd-study", caseCounts, 100, refCounts, 100, []int{3, 0, 2}, Parameters{
		MAFCutoff:      0.05,
		LDCutoff:       1e-5,
		Alpha:          0.1,
		PowerThreshold: 0.9,
		Colluders:      "f=0",
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return doc
}

func TestBuildStatistics(t *testing.T) {
	doc := sampleDocument(t)
	if len(doc.Statistics) != 3 {
		t.Fatalf("%d rows, want 3", len(doc.Statistics))
	}
	if !sort.SliceIsSorted(doc.Statistics, func(i, j int) bool {
		return doc.Statistics[i].SNP < doc.Statistics[j].SNP
	}) {
		t.Error("rows must be ascending by SNP index")
	}
	for _, s := range doc.Statistics {
		if s.PValue < 0 || s.PValue > 1 {
			t.Errorf("SNP %d p-value %v", s.SNP, s.PValue)
		}
		if s.OddsRatio <= 0 {
			t.Errorf("SNP %d odds ratio %v", s.SNP, s.OddsRatio)
		}
		if !strings.HasPrefix(s.ID, "rs") {
			t.Errorf("SNP %d id %q", s.SNP, s.ID)
		}
	}
	// SNP 3 has the strongest association (70 vs 20).
	top := doc.TopAssociations(1)
	if len(top) != 1 || top[0].SNP != 3 {
		t.Errorf("top association %+v, want SNP 3", top)
	}
	if got := doc.TopAssociations(10); len(got) != 3 {
		t.Errorf("TopAssociations over-requesting returned %d", len(got))
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("s", []int64{1}, 10, []int64{1, 2}, 10, nil, Parameters{}); err == nil {
		t.Error("count length mismatch accepted")
	}
	if _, err := Build("s", []int64{1}, 0, []int64{1}, 10, nil, Parameters{}); err == nil {
		t.Error("zero case population accepted")
	}
	if _, err := Build("s", []int64{1}, 10, []int64{1}, 10, []int{5}, Parameters{}); err == nil {
		t.Error("out-of-range safe SNP accepted")
	}
	if _, err := Build("s", []int64{20}, 10, []int64{1}, 10, []int{0}, Parameters{}); err == nil {
		t.Error("impossible count accepted")
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	doc := sampleDocument(t)
	key, err := seal.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Verify(key.Public()); !errors.Is(err, ErrNotSigned) {
		t.Fatalf("unsigned verify: %v", err)
	}
	if err := doc.Sign(key); err != nil {
		t.Fatal(err)
	}
	if err := doc.Verify(key.Public()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	other, _ := seal.NewSigningKey()
	if err := doc.Verify(other.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestSignatureCoversContent(t *testing.T) {
	doc := sampleDocument(t)
	key, _ := seal.NewSigningKey()
	if err := doc.Sign(key); err != nil {
		t.Fatal(err)
	}
	doc.Statistics[0].PValue = 0.123
	if err := doc.Verify(key.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered statistics passed: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	doc := sampleDocument(t)
	key, _ := seal.NewSigningKey()
	if err := doc.Sign(key); err != nil {
		t.Fatal(err)
	}
	encoded, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(encoded)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// The decoded document must still verify: the canonical form survives
	// the JSON round trip.
	if err := back.Verify(key.Public()); err != nil {
		t.Fatalf("decoded document failed verification: %v", err)
	}
	if back.StudyID != doc.StudyID || len(back.Statistics) != len(doc.Statistics) {
		t.Error("content lost in round trip")
	}
	if _, err := Decode([]byte("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestEmptyRelease(t *testing.T) {
	doc, err := Build("empty", []int64{1, 2}, 10, []int64{1, 2}, 10, nil, Parameters{})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Statistics) != 0 {
		t.Errorf("empty safe set released %d rows", len(doc.Statistics))
	}
	if got := doc.TopAssociations(3); len(got) != 0 {
		t.Errorf("TopAssociations on empty doc: %v", got)
	}
}
