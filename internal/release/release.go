// Package release builds the artifact GenDPR exists to gate: the
// open-access GWAS statistics publication of Figure 1. After the assessment
// selects L_safe, the leader enclave assembles per-SNP association
// statistics over exactly those positions, signs the document with a key
// rooted in its attested identity, and publishes it. Consumers verify the
// signature and know the statistics passed the federation's privacy
// assessment.
package release

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"gendpr/internal/seal"
	"gendpr/internal/stats"
)

var (
	// ErrBadSignature is returned when document verification fails.
	ErrBadSignature = errors.New("release: signature verification failed")

	// ErrNotSigned is returned when verification is attempted on an
	// unsigned document.
	ErrNotSigned = errors.New("release: document is not signed")
)

// SNPStatistic is one published row.
type SNPStatistic struct {
	// SNP is the original SNP index in the study's desired set.
	SNP int `json:"snp"`
	// ID is the variant identifier (rs-style).
	ID string `json:"id"`
	// CaseFrequency is the minor-allele frequency in the case population.
	CaseFrequency float64 `json:"caseFrequency"`
	// ReferenceFrequency is the minor-allele frequency in the reference.
	ReferenceFrequency float64 `json:"referenceFrequency"`
	// ChiSquare is the Pearson association statistic.
	ChiSquare float64 `json:"chiSquare"`
	// PValue is the chi-square(1) association p-value.
	PValue float64 `json:"pValue"`
	// OddsRatio is the allelic odds ratio.
	OddsRatio float64 `json:"oddsRatio"`
}

// Parameters echoes the privacy settings the release was assessed under.
type Parameters struct {
	MAFCutoff      float64 `json:"mafCutoff"`
	LDCutoff       float64 `json:"ldCutoff"`
	Alpha          float64 `json:"alpha"`
	PowerThreshold float64 `json:"powerThreshold"`
	Colluders      string  `json:"colludersTolerated"`
}

// Document is a complete GWAS statistics release.
type Document struct {
	// StudyID names the study.
	StudyID string `json:"studyId"`
	// CaseCount and ReferenceCount give the population sizes.
	CaseCount      int64 `json:"caseCount"`
	ReferenceCount int64 `json:"referenceCount"`
	// Parameters are the assessment settings.
	Parameters Parameters `json:"parameters"`
	// Statistics holds one row per released SNP, ascending by index.
	Statistics []SNPStatistic `json:"statistics"`
	// Signature is the leader enclave's Ed25519 signature over the
	// canonical encoding of every other field.
	Signature []byte `json:"signature,omitempty"`
}

// Build assembles the release for the safe SNP subset from pooled counts.
func Build(studyID string, caseCounts []int64, caseN int64, refCounts []int64, refN int64, safe []int, params Parameters) (*Document, error) {
	if len(caseCounts) != len(refCounts) {
		return nil, fmt.Errorf("release: %d case counts vs %d reference counts", len(caseCounts), len(refCounts))
	}
	if caseN <= 0 || refN <= 0 {
		return nil, fmt.Errorf("release: populations must be positive (case %d, reference %d)", caseN, refN)
	}
	doc := &Document{
		StudyID:        studyID,
		CaseCount:      caseN,
		ReferenceCount: refN,
		Parameters:     params,
		Statistics:     make([]SNPStatistic, 0, len(safe)),
	}
	ordered := make([]int, len(safe))
	copy(ordered, safe)
	sort.Ints(ordered)
	for _, l := range ordered {
		if l < 0 || l >= len(caseCounts) {
			return nil, fmt.Errorf("release: safe SNP %d out of range for %d SNPs", l, len(caseCounts))
		}
		tab, err := stats.NewSingleTable(caseN, caseCounts[l], refN, refCounts[l])
		if err != nil {
			return nil, fmt.Errorf("release: SNP %d: %w", l, err)
		}
		chi2 := tab.ChiSquare()
		p, err := stats.ChiSquareSurvival(chi2, 1)
		if err != nil {
			return nil, fmt.Errorf("release: SNP %d: %w", l, err)
		}
		doc.Statistics = append(doc.Statistics, SNPStatistic{
			SNP:                l,
			ID:                 fmt.Sprintf("rs%d", l),
			CaseFrequency:      float64(caseCounts[l]) / float64(caseN),
			ReferenceFrequency: float64(refCounts[l]) / float64(refN),
			ChiSquare:          chi2,
			PValue:             p,
			OddsRatio:          tab.OddsRatio(),
		})
	}
	return doc, nil
}

// canonicalBytes serializes everything except the signature, depending only
// on field values (encoding/json is deterministic for struct fields).
func (d *Document) canonicalBytes() ([]byte, error) {
	clone := *d
	clone.Signature = nil
	b, err := json.Marshal(&clone)
	if err != nil {
		return nil, fmt.Errorf("release: canonicalize: %w", err)
	}
	return b, nil
}

// Sign attaches the publisher's signature.
func (d *Document) Sign(key *seal.SigningKey) error {
	body, err := d.canonicalBytes()
	if err != nil {
		return err
	}
	d.Signature = key.Sign(body)
	return nil
}

// Verify checks the signature against the publisher's public key.
func (d *Document) Verify(pub ed25519.PublicKey) error {
	if len(d.Signature) == 0 {
		return ErrNotSigned
	}
	body, err := d.canonicalBytes()
	if err != nil {
		return err
	}
	if !seal.Verify(pub, body, d.Signature) {
		return ErrBadSignature
	}
	return nil
}

// Encode renders the document as indented JSON.
func (d *Document) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("release: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses a document produced by Encode.
func Decode(b []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("release: decode: %w", err)
	}
	return &d, nil
}

// TopAssociations returns the n most significant released SNPs (smallest
// p-values), the headline of a GWAS publication.
func (d *Document) TopAssociations(n int) []SNPStatistic {
	sorted := make([]SNPStatistic, len(d.Statistics))
	copy(sorted, d.Statistics)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PValue != sorted[j].PValue {
			return sorted[i].PValue < sorted[j].PValue
		}
		return sorted[i].SNP < sorted[j].SNP
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
