package vcf

import (
	"bytes"
	"strings"
	"testing"

	"gendpr/internal/genome"
)

// FuzzRead checks that arbitrary text never panics the parser and that
// anything it accepts round-trips through Write.
func FuzzRead(f *testing.F) {
	var sample bytes.Buffer
	m := genome.NewMatrix(2, 3)
	m.Set(0, 1, true)
	if err := Write(&sample, m); err != nil {
		f.Fatal(err)
	}
	f.Add(sample.String())
	f.Add("")
	f.Add("##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\n")
	f.Add("#CHROM\tPOS\n1\t2\n")
	f.Add("1\t1\trs0\tA\tG\t.\tPASS\t.\tGT\t0\t1\n")
	f.Fuzz(func(t *testing.T, text string) {
		parsed, err := Read(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, parsed); err != nil {
			t.Fatalf("accepted matrix failed to serialize: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("own output failed to parse: %v", err)
		}
		if !again.Equal(parsed) {
			t.Fatal("write/read round trip changed genotypes")
		}
	})
}

// FuzzReadSigned checks the signed reader against hostile headers.
func FuzzReadSigned(f *testing.F) {
	f.Add([]byte("##gendpr-signature=zz\nbody"))
	f.Add([]byte("##gendpr-signature=00ff\n"))
	f.Add([]byte("no newline"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Any error is fine; panics are not. A nil key never verifies.
		if _, err := ReadSigned(bytes.NewReader(data), nil); err == nil {
			t.Fatal("unsigned/garbage input verified against a nil key")
		}
	})
}
