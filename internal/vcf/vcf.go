// Package vcf reads and writes a minimal VCF-style text encoding of binary
// genotype matrices, with optional Ed25519 file signatures. The paper's
// threat model assumes the trusted modules can "check the authenticity of
// signed VCF files"; this package provides that ingestion path and the
// genomegen tool uses it to materialize synthetic datasets.
//
// The encoding is deliberately small: a haploid GT field per individual,
// one line per SNP, which matches the paper's 0/1 minor-allele encoding
// (Table 1). It is not a general-purpose VCF parser.
package vcf

import (
	"bufio"
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gendpr/internal/genome"
	"gendpr/internal/seal"
)

const (
	headerFormat    = "##fileformat=VCFv4.2"
	headerSource    = "##source=gendpr"
	signaturePrefix = "##gendpr-signature="
	columnHeader    = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT"
)

var (
	// ErrBadFormat is returned for structurally invalid files.
	ErrBadFormat = errors.New("vcf: malformed file")

	// ErrBadSignature is returned when signature verification fails.
	ErrBadSignature = errors.New("vcf: signature verification failed")

	// ErrNoSignature is returned when a signature was required but absent.
	ErrNoSignature = errors.New("vcf: file is not signed")
)

// Write encodes the matrix as VCF text: one record per SNP position with a
// haploid GT column per individual.
func Write(w io.Writer, m *genome.Matrix) error {
	bw := bufio.NewWriter(w)
	if err := writeBody(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

func writeBody(w io.Writer, m *genome.Matrix) error {
	var sb strings.Builder
	sb.WriteString(headerFormat)
	sb.WriteByte('\n')
	sb.WriteString(headerSource)
	sb.WriteByte('\n')
	sb.WriteString(columnHeader)
	for i := 0; i < m.N(); i++ {
		sb.WriteString("\tind")
		sb.WriteString(strconv.Itoa(i))
	}
	sb.WriteByte('\n')
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("vcf: write header: %w", err)
	}

	line := make([]byte, 0, 64+2*m.N())
	for l := 0; l < m.L(); l++ {
		line = line[:0]
		line = append(line, '1', '\t')
		line = strconv.AppendInt(line, int64(l+1), 10)
		line = append(line, "\trs"...)
		line = strconv.AppendInt(line, int64(l), 10)
		line = append(line, "\tA\tG\t.\tPASS\t.\tGT"...)
		for i := 0; i < m.N(); i++ {
			if m.Get(i, l) {
				line = append(line, '\t', '1')
			} else {
				line = append(line, '\t', '0')
			}
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("vcf: write record %d: %w", l, err)
		}
	}
	return nil
}

// EstimateBytes returns the exact size of the VCF encoding Write would
// produce for a matrix, without serializing it. The federation uses it as
// the "what shipping the genomes would cost" baseline of the bandwidth
// analysis (the paper compares against multi-gigabyte variant files, not a
// bit-packed minimum).
func EstimateBytes(m *genome.Matrix) int64 {
	// Header lines.
	size := int64(len(headerFormat) + 1 + len(headerSource) + 1 + len(columnHeader) + 1)
	for i := 0; i < m.N(); i++ {
		size += int64(len("\tind") + digits(i))
	}
	// Records: "1\t<pos>\trs<l>\tA\tG\t.\tPASS\t.\tGT" + "\t<0|1>"*N + "\n".
	for l := 0; l < m.L(); l++ {
		size += int64(2 + digits(l+1) + 3 + digits(l) + len("\tA\tG\t.\tPASS\t.\tGT") + 2*m.N() + 1)
	}
	return size
}

func digits(v int) int {
	if v == 0 {
		return 1
	}
	d := 0
	for v > 0 {
		d++
		v /= 10
	}
	return d
}

// Read parses VCF text produced by Write (a leading signature line, if any,
// is ignored).
func Read(r io.Reader) (*genome.Matrix, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<26)

	var (
		individuals = -1
		records     [][]bool
	)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "##"):
			continue
		case strings.HasPrefix(line, "#CHROM"):
			fields := strings.Split(line, "\t")
			if len(fields) < 9 {
				return nil, fmt.Errorf("%w: truncated column header", ErrBadFormat)
			}
			individuals = len(fields) - 9
		default:
			if individuals < 0 {
				return nil, fmt.Errorf("%w: record before column header", ErrBadFormat)
			}
			fields := strings.Split(line, "\t")
			if len(fields) != 9+individuals {
				return nil, fmt.Errorf("%w: record has %d fields, want %d", ErrBadFormat, len(fields), 9+individuals)
			}
			row := make([]bool, individuals)
			for i, gt := range fields[9:] {
				switch gt {
				case "0":
				case "1":
					row[i] = true
				default:
					return nil, fmt.Errorf("%w: genotype %q", ErrBadFormat, gt)
				}
			}
			records = append(records, row)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("vcf: read: %w", err)
	}
	if individuals < 0 {
		return nil, fmt.Errorf("%w: missing column header", ErrBadFormat)
	}
	m := genome.NewMatrix(individuals, len(records))
	for l, row := range records {
		for i, minor := range row {
			if minor {
				m.Set(i, l, true)
			}
		}
	}
	return m, nil
}

// WriteSigned writes the VCF body prefixed with an Ed25519 signature line
// over the exact body bytes.
func WriteSigned(w io.Writer, m *genome.Matrix, key *seal.SigningKey) error {
	var body strings.Builder
	if err := writeBody(&body, m); err != nil {
		return err
	}
	sig := key.Sign([]byte(body.String()))
	if _, err := fmt.Fprintf(w, "%s%s\n", signaturePrefix, hex.EncodeToString(sig)); err != nil {
		return fmt.Errorf("vcf: write signature: %w", err)
	}
	if _, err := io.WriteString(w, body.String()); err != nil {
		return fmt.Errorf("vcf: write body: %w", err)
	}
	return nil
}

// ReadSigned verifies the leading signature line against the public key and
// parses the body. It fails with ErrNoSignature when the file is unsigned
// and ErrBadSignature when verification fails.
func ReadSigned(r io.Reader, pub ed25519.PublicKey) (*genome.Matrix, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("vcf: read: %w", err)
	}
	nl := indexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: empty file", ErrBadFormat)
	}
	first := string(data[:nl])
	if !strings.HasPrefix(first, signaturePrefix) {
		return nil, ErrNoSignature
	}
	sig, err := hex.DecodeString(strings.TrimPrefix(first, signaturePrefix))
	if err != nil {
		return nil, fmt.Errorf("%w: undecodable signature", ErrBadFormat)
	}
	body := data[nl+1:]
	if !seal.Verify(pub, body, sig) {
		return nil, ErrBadSignature
	}
	return Read(strings.NewReader(string(body)))
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}
