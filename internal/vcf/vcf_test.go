package vcf

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gendpr/internal/genome"
	"gendpr/internal/seal"
)

func sampleMatrix(t testing.TB) *genome.Matrix {
	t.Helper()
	m := genome.NewMatrix(4, 6)
	m.Set(0, 0, true)
	m.Set(1, 2, true)
	m.Set(2, 5, true)
	m.Set(3, 3, true)
	m.Set(3, 5, true)
	return m
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := sampleMatrix(t)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip lost genotypes")
	}
}

func TestWriteProducesValidHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleMatrix(t)); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "##fileformat=VCFv4.2\n") {
		t.Error("missing fileformat header")
	}
	if !strings.Contains(text, "#CHROM\tPOS\tID\tREF\tALT") {
		t.Error("missing column header")
	}
	if !strings.Contains(text, "ind0") || !strings.Contains(text, "ind3") {
		t.Error("missing individual columns")
	}
	// 6 SNPs → 6 records.
	records := 0
	for _, line := range strings.Split(text, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			records++
		}
	}
	if records != 6 {
		t.Errorf("%d records, want 6", records)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":           "1\t1\trs0\tA\tG\t.\tPASS\t.\tGT\t0\n",
		"short column header": "#CHROM\tPOS\n",
		"bad genotype":        "##x\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tind0\n1\t1\trs0\tA\tG\t.\tPASS\t.\tGT\t2\n",
		"wrong field count":   "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tind0\n1\t1\trs0\tA\tG\t.\tPASS\t.\tGT\t0\t1\n",
		"empty":               "",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(text)); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("got %v, want ErrBadFormat", err)
			}
		})
	}
}

func TestReadEmptyCohort(t *testing.T) {
	// Zero individuals, zero SNPs is structurally valid.
	text := "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\n"
	m, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 0 || m.L() != 0 {
		t.Fatalf("shape %dx%d, want 0x0", m.N(), m.L())
	}
}

func TestSignedRoundTrip(t *testing.T) {
	key, err := seal.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	m := sampleMatrix(t)
	var buf bytes.Buffer
	if err := WriteSigned(&buf, m, key); err != nil {
		t.Fatalf("WriteSigned: %v", err)
	}
	got, err := ReadSigned(bytes.NewReader(buf.Bytes()), key.Public())
	if err != nil {
		t.Fatalf("ReadSigned: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("signed round trip lost genotypes")
	}
}

func TestSignedRejectsTampering(t *testing.T) {
	key, _ := seal.NewSigningKey()
	m := sampleMatrix(t)
	var buf bytes.Buffer
	if err := WriteSigned(&buf, m, key); err != nil {
		t.Fatal(err)
	}
	// Flip one genotype character in the body.
	data := buf.Bytes()
	idx := bytes.LastIndexByte(data, '0')
	data[idx] = '1'
	if _, err := ReadSigned(bytes.NewReader(data), key.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestSignedRejectsWrongKey(t *testing.T) {
	key, _ := seal.NewSigningKey()
	other, _ := seal.NewSigningKey()
	var buf bytes.Buffer
	if err := WriteSigned(&buf, sampleMatrix(t), key); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSigned(bytes.NewReader(buf.Bytes()), other.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestSignedRejectsUnsigned(t *testing.T) {
	key, _ := seal.NewSigningKey()
	var buf bytes.Buffer
	if err := Write(&buf, sampleMatrix(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSigned(bytes.NewReader(buf.Bytes()), key.Public()); !errors.Is(err, ErrNoSignature) {
		t.Fatalf("got %v, want ErrNoSignature", err)
	}
}

func TestUnsignedReaderSkipsSignatureLine(t *testing.T) {
	key, _ := seal.NewSigningKey()
	m := sampleMatrix(t)
	var buf bytes.Buffer
	if err := WriteSigned(&buf, m, key); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read on signed file: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("signature line broke plain parsing")
	}
}

func TestEstimateBytesExact(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {4, 6}, {13, 29}, {100, 11}} {
		cohort, err := genome.Generate(genome.DefaultGeneratorConfig(shape[1], shape[0], 9))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, cohort.Case); err != nil {
			t.Fatal(err)
		}
		if got, want := EstimateBytes(cohort.Case), int64(buf.Len()); got != want {
			t.Errorf("shape %v: EstimateBytes=%d, actual %d", shape, got, want)
		}
	}
}

func TestGeneratedCohortRoundTrip(t *testing.T) {
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(64, 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cohort.Case); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cohort.Case) {
		t.Fatal("generated cohort round trip failed")
	}
}
