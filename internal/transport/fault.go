package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected marks failures produced by a Fault wrapper. Chaos tests match
// on it with errors.Is to distinguish injected faults from real transport
// errors.
var ErrInjected = errors.New("transport: injected fault")

// FaultOp selects which side of the connection a fault targets.
type FaultOp uint8

const (
	// FaultSend fires while transmitting.
	FaultSend FaultOp = iota
	// FaultRecv fires while receiving.
	FaultRecv
)

func (o FaultOp) String() string {
	if o == FaultSend {
		return "send"
	}
	return "recv"
}

// FaultKind selects what the fault does when it fires.
type FaultKind uint8

const (
	// FaultError fails the operation with ErrInjected without touching the
	// connection; a retry on the same conn could still succeed.
	FaultError FaultKind = iota
	// FaultClose tears down the underlying connection and fails the
	// operation, simulating a crashed or partitioned peer.
	FaultClose
	// FaultDrop swallows the message: a faulted Send reports success without
	// transmitting; a faulted Recv discards the received message and blocks
	// for the next one. This desynchronizes AEAD sequence numbers by design.
	FaultDrop
	// FaultDelay sleeps for Delay before performing the operation, long
	// enough to trip a configured deadline.
	FaultDelay
	// FaultCorrupt flips a payload byte and lets the message through,
	// simulating in-flight tampering or a bit-flipping link. Injected below
	// the secure layer it hands the peer a ciphertext whose AEAD tag no
	// longer verifies, so the authenticated channel must reject the frame.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultClose:
		return "close"
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	default:
		return "delay"
	}
}

// FaultPoint describes one deterministic fault: the Nth matching message
// (1-based) of the given operation — optionally only messages of kind
// MsgKind — triggers the fault once.
type FaultPoint struct {
	// Op is the targeted direction.
	Op FaultOp
	// Kind is what happens when the fault fires.
	Kind FaultKind
	// MsgKind, when non-zero, restricts matching to messages of this wire
	// kind. Message kinds are plaintext even under the encrypted transport,
	// so faults can target specific protocol steps below the AEAD layer.
	MsgKind uint16
	// N is the 1-based count of matching messages before firing; 0 means 1.
	N int
	// Delay is how long FaultDelay sleeps before the operation proceeds.
	Delay time.Duration
}

func (p FaultPoint) String() string {
	s := fmt.Sprintf("%s/%s#%d", p.Op, p.Kind, p.n())
	if p.MsgKind != 0 {
		s += fmt.Sprintf("@kind%d", p.MsgKind)
	}
	return s
}

func (p FaultPoint) n() int {
	if p.N <= 0 {
		return 1
	}
	return p.N
}

// Fault wraps a connection and injects one deterministic fault at a
// configured point. After firing, the wrapper is transparent, so tests can
// assert recovery behavior from an exactly-known failure.
type Fault struct {
	inner Conn
	point FaultPoint

	mu       sync.Mutex
	seen     int
	fired    bool
	deadline time.Time
}

var _ Conn = (*Fault)(nil)

// NewFault wraps inner so the described fault point fires exactly once.
func NewFault(inner Conn, point FaultPoint) *Fault {
	return &Fault{inner: inner, point: point}
}

// Fired reports whether the fault has triggered.
func (f *Fault) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// trigger counts a matching message and reports whether the fault fires now.
func (f *Fault) trigger(op FaultOp, kind uint16) bool {
	if f.point.Op != op {
		return false
	}
	if f.point.MsgKind != 0 && f.point.MsgKind != kind {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fired {
		return false
	}
	f.seen++
	if f.seen < f.point.n() {
		return false
	}
	f.fired = true
	return true
}

func (f *Fault) Send(m Message) error {
	if f.trigger(FaultSend, m.Kind) {
		switch f.point.Kind {
		case FaultError:
			return fmt.Errorf("%w: send %v", ErrInjected, f.point)
		case FaultClose:
			f.inner.Close()
			return fmt.Errorf("%w: send close %v", ErrInjected, f.point)
		case FaultDrop:
			return nil
		case FaultDelay:
			time.Sleep(f.point.Delay)
			if err := f.overran(); err != nil {
				return err
			}
		case FaultCorrupt:
			return f.inner.Send(Message{Kind: m.Kind, Payload: corruptPayload(m.Payload)})
		}
	}
	return f.inner.Send(m)
}

// corruptPayload returns a copy of p with one byte flipped. The last byte is
// targeted so that under the secure transport the flip lands in the AEAD tag
// region, guaranteeing an authentication failure rather than a decode error.
func corruptPayload(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	if len(out) == 0 {
		return []byte{0xff}
	}
	out[len(out)-1] ^= 0xff
	return out
}

func (f *Fault) Recv() (Message, error) {
	m, err := f.inner.Recv()
	if err != nil {
		return m, err
	}
	if f.trigger(FaultRecv, m.Kind) {
		switch f.point.Kind {
		case FaultError:
			return Message{}, fmt.Errorf("%w: recv %v", ErrInjected, f.point)
		case FaultClose:
			f.inner.Close()
			return Message{}, fmt.Errorf("%w: recv close %v", ErrInjected, f.point)
		case FaultDrop:
			// Discard and block for the next message, as a lossy link would.
			return f.inner.Recv()
		case FaultDelay:
			// The inner Recv already completed, so sleep here and then honor
			// the caller's deadline ourselves: a reply that arrives after the
			// deadline is a timeout, exactly as if the peer were slow.
			time.Sleep(f.point.Delay)
			if err := f.overran(); err != nil {
				return Message{}, err
			}
		case FaultCorrupt:
			return Message{Kind: m.Kind, Payload: corruptPayload(m.Payload)}, nil
		}
	}
	return m, err
}

// overran reports a timeout error when a delay pushed past the deadline.
func (f *Fault) overran() error {
	f.mu.Lock()
	d := f.deadline
	f.mu.Unlock()
	if !d.IsZero() && time.Now().After(d) {
		return fmt.Errorf("transport: fault delay: %w", ErrTimeout)
	}
	return nil
}

func (f *Fault) Close() error { return f.inner.Close() }

// SetDeadline records the deadline (so delay faults can convert an overrun
// into a timeout) and forwards to the wrapped connection when supported.
func (f *Fault) SetDeadline(t time.Time) error {
	f.mu.Lock()
	f.deadline = t
	f.mu.Unlock()
	if d, ok := f.inner.(Deadliner); ok {
		return d.SetDeadline(t)
	}
	return fmt.Errorf("transport: fault inner conn has no deadline support")
}
