package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRecvContextCancelUnblocks(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RecvContext(ctx, a, 0)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RecvContext error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvContext did not unblock on cancellation")
	}
}

func TestSendContextPreCanceled(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SendContext(ctx, a, Message{Kind: 1}, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("SendContext error = %v, want context.Canceled", err)
	}
}

func TestRecvContextDeadlineCombining(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	// A short context deadline must beat a long explicit timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RecvContext(ctx, a, 10*time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RecvContext error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("RecvContext honored the wrong deadline (%v elapsed)", elapsed)
	}
}

func TestRecvContextTimeoutBeatsLongContext(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := RecvContext(ctx, a, 30*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("RecvContext error = %v, want a timeout", err)
	}
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil {
		t.Fatal("context expired before the explicit timeout fired")
	}
}

func TestContextNilAndBackgroundPassThrough(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m, err := RecvContext(context.Background(), b, time.Second)
		if err != nil || m.Kind != 7 {
			t.Errorf("RecvContext = (%+v, %v)", m, err)
		}
	}()
	if err := SendContext(nil, a, Message{Kind: 7}, time.Second); err != nil { //nolint:staticcheck // nil ctx passthrough is part of the contract
		t.Fatalf("SendContext(nil ctx): %v", err)
	}
	<-done
}

func TestRecvContextSuccessDespiteCancel(t *testing.T) {
	// If the message is already queued, a racing cancel must not destroy a
	// successful receive.
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	if err := a.Send(Message{Kind: 3, Payload: []byte("x")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	m, err := RecvContext(ctx, b, time.Second)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("RecvContext: %v", err)
	}
	if err == nil && m.Kind != 3 {
		t.Fatalf("RecvContext delivered kind %d, want 3", m.Kind)
	}
}

func TestContextClearsDeadlineAfterUse(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	ctx := context.Background()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if err := a.Send(Message{Kind: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := RecvContext(ctx, b, 50*time.Millisecond); err != nil {
		t.Fatalf("RecvContext: %v", err)
	}
	// The deadline from the previous call must not linger and time out a
	// later plain Recv.
	go func() {
		time.Sleep(100 * time.Millisecond)
		a.Send(Message{Kind: 2})
	}()
	if _, err := b.Recv(); err != nil {
		t.Fatalf("follow-up Recv hit a stale deadline: %v", err)
	}
}
