package transport

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Meter counts the traffic crossing a connection. GenDPR's headline
// bandwidth claim (Section 7.1) is that members exchange count vectors and
// LR-matrices instead of genome files; the federation uses meters to report
// exactly how many bytes crossed each attested channel.
type Meter struct {
	sentBytes atomic.Int64
	recvBytes atomic.Int64
	sentMsgs  atomic.Int64
	recvMsgs  atomic.Int64
}

// SentBytes returns the total payload bytes sent.
func (m *Meter) SentBytes() int64 { return m.sentBytes.Load() }

// RecvBytes returns the total payload bytes received.
func (m *Meter) RecvBytes() int64 { return m.recvBytes.Load() }

// SentMessages returns the number of messages sent.
func (m *Meter) SentMessages() int64 { return m.sentMsgs.Load() }

// RecvMessages returns the number of messages received.
func (m *Meter) RecvMessages() int64 { return m.recvMsgs.Load() }

// TotalBytes returns traffic in both directions.
func (m *Meter) TotalBytes() int64 { return m.SentBytes() + m.RecvBytes() }

// meteredConn counts payload bytes around an inner connection. Wrapping
// outside NewSecure measures ciphertext (wire) sizes; wrapping inside
// measures plaintext sizes.
type meteredConn struct {
	inner Conn
	meter *Meter
}

var _ Conn = (*meteredConn)(nil)

// NewMetered wraps a connection so all traffic is counted on the meter.
func NewMetered(inner Conn, meter *Meter) Conn {
	return &meteredConn{inner: inner, meter: meter}
}

func (c *meteredConn) Send(m Message) error {
	if err := c.inner.Send(m); err != nil {
		return err
	}
	c.meter.sentBytes.Add(int64(len(m.Payload)))
	c.meter.sentMsgs.Add(1)
	return nil
}

func (c *meteredConn) Recv() (Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return Message{}, err
	}
	c.meter.recvBytes.Add(int64(len(m.Payload)))
	c.meter.recvMsgs.Add(1)
	return m, nil
}

func (c *meteredConn) Close() error { return c.inner.Close() }

// SetDeadline forwards to the wrapped connection when it supports deadlines.
func (c *meteredConn) SetDeadline(t time.Time) error {
	if d, ok := c.inner.(Deadliner); ok {
		return d.SetDeadline(t)
	}
	return fmt.Errorf("transport: metered inner conn has no deadline support")
}
