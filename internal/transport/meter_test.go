package transport

import (
	"bytes"
	"testing"

	"gendpr/internal/seal"
)

func TestMeterCountsBothDirections(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	var meter Meter
	ma := NewMetered(a, &meter)

	go func() {
		m, err := b.Recv()
		if err != nil {
			t.Errorf("Recv: %v", err)
			return
		}
		if err := b.Send(Message{Kind: 2, Payload: append(m.Payload, 'x')}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()

	if err := ma.Send(Message{Kind: 1, Payload: []byte("1234")}); err != nil {
		t.Fatal(err)
	}
	reply, err := ma.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply.Payload, []byte("1234x")) {
		t.Fatalf("reply %q", reply.Payload)
	}
	if meter.SentBytes() != 4 || meter.RecvBytes() != 5 {
		t.Errorf("bytes sent=%d recv=%d, want 4/5", meter.SentBytes(), meter.RecvBytes())
	}
	if meter.SentMessages() != 1 || meter.RecvMessages() != 1 {
		t.Errorf("messages sent=%d recv=%d, want 1/1", meter.SentMessages(), meter.RecvMessages())
	}
	if meter.TotalBytes() != 9 {
		t.Errorf("total=%d, want 9", meter.TotalBytes())
	}
}

func TestMeterSeesCiphertextWhenOutsideSecure(t *testing.T) {
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	rawA, rawB := Pipe()
	defer rawA.Close()
	var meter Meter
	// secure(metered(raw)): the meter counts ciphertext.
	a := NewSecure(NewMetered(rawA, &meter), key)
	b := NewSecure(rawB, key)

	payload := []byte("plaintext-body")
	go func() {
		if err := a.Send(Message{Kind: 1, Payload: payload}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	// GCM adds a 12-byte nonce and 16-byte tag.
	if got := meter.SentBytes(); got != int64(len(payload))+28 {
		t.Errorf("ciphertext bytes %d, want %d", got, len(payload)+28)
	}
}

func TestMeterDoesNotCountFailedSends(t *testing.T) {
	a, b := Pipe()
	_ = b
	a.Close()
	var meter Meter
	ma := NewMetered(a, &meter)
	if err := ma.Send(Message{Payload: []byte("x")}); err == nil {
		t.Fatal("send on closed pipe must fail")
	}
	if meter.SentBytes() != 0 || meter.SentMessages() != 0 {
		t.Error("failed send was counted")
	}
}
