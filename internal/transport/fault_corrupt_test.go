package transport

import (
	"errors"
	"testing"

	"gendpr/internal/seal"
)

// TestFaultCorruptRecvAuthError proves the secure channel rejects a frame
// tampered with in flight using a non-retryable authentication error — not a
// timeout. The receiver must be able to tell adversarial modification apart
// from a slow or partitioned peer, because the two demand opposite responses
// (quarantine vs. retry).
func TestFaultCorruptRecvAuthError(t *testing.T) {
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	aInner, bInner := Pipe()
	defer aInner.Close()
	defer bInner.Close()
	a := NewSecure(aInner, key)
	// The fault sits below the AEAD layer on the receive path, so the flip
	// lands in ciphertext the secure receiver must authenticate.
	fault := NewFault(bInner, FaultPoint{Op: FaultRecv, Kind: FaultCorrupt})
	b := NewSecure(fault, key)

	go func() {
		if err := a.Send(Message{Kind: 1, Payload: []byte("counts")}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	_, err = b.Recv()
	if err == nil {
		t.Fatal("tampered frame accepted")
	}
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("Recv error = %v, want ErrAuth", err)
	}
	if IsTimeout(err) {
		t.Fatalf("tampering misreported as a timeout: %v", err)
	}
	if !fault.Fired() {
		t.Fatal("corrupt fault never fired")
	}
}

// TestFaultCorruptSendAuthError covers the sender-side injection point: a
// frame corrupted before it leaves must be rejected by the remote secure
// endpoint with the same authentication error.
func TestFaultCorruptSendAuthError(t *testing.T) {
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	aInner, bInner := Pipe()
	defer aInner.Close()
	defer bInner.Close()
	a := NewSecure(NewFault(aInner, FaultPoint{Op: FaultSend, Kind: FaultCorrupt}), key)
	b := NewSecure(bInner, key)

	go func() {
		// The corrupting sender itself sees success: tampering is invisible
		// at the point of injection.
		if err := a.Send(Message{Kind: 2, Payload: []byte("pair stats")}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	if _, err := b.Recv(); !errors.Is(err, ErrAuth) {
		t.Fatalf("Recv error = %v, want ErrAuth", err)
	}
}

// TestCorruptPayloadEmptyFrame pins the degenerate case: corrupting an empty
// payload still changes the frame instead of silently passing it through.
func TestCorruptPayloadEmptyFrame(t *testing.T) {
	got := corruptPayload(nil)
	if len(got) == 0 {
		t.Fatal("empty payload passed through uncorrupted")
	}
	orig := []byte{1, 2, 3}
	got = corruptPayload(orig)
	if &got[0] == &orig[0] {
		t.Fatal("corruptPayload must not mutate the caller's buffer")
	}
	if got[2] == orig[2] {
		t.Fatal("no byte was flipped")
	}
}
