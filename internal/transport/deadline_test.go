package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestPipeRecvDeadlineExpires(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	start := time.Now()
	_, err := RecvDeadline(b, 30*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("RecvDeadline error = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("RecvDeadline took %v, expected prompt expiry", elapsed)
	}
}

func TestPipeSendDeadlineExpiresWhenFull(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	// Fill the single-message buffer; the second send must block, then
	// time out.
	if err := a.Send(Message{Kind: 1}); err != nil {
		t.Fatalf("first Send: %v", err)
	}
	err := SendDeadline(a, Message{Kind: 2}, 30*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("SendDeadline error = %v, want timeout", err)
	}
}

func TestPipeDeadlineClearedAfterHelper(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	if _, err := RecvDeadline(b, 10*time.Millisecond); !IsTimeout(err) {
		t.Fatalf("RecvDeadline error = %v, want timeout", err)
	}
	// The helper must clear the deadline: a plain Recv afterwards blocks
	// until the message arrives instead of re-firing the old deadline.
	go func() {
		time.Sleep(20 * time.Millisecond)
		a.Send(Message{Kind: 7})
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv after cleared deadline: %v", err)
	}
	if m.Kind != 7 {
		t.Fatalf("Kind = %d, want 7", m.Kind)
	}
}

func TestPipeRecvDeliversBeforeDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go a.Send(Message{Kind: 5, Payload: []byte("x")})
	m, err := RecvDeadline(b, 5*time.Second)
	if err != nil {
		t.Fatalf("RecvDeadline: %v", err)
	}
	if m.Kind != 5 {
		t.Fatalf("Kind = %d, want 5", m.Kind)
	}
}

func TestTCPRecvDeadlineExpires(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		// Hold the connection open without replying.
		defer c.Close()
		time.Sleep(2 * time.Second)
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	_, err = RecvDeadline(c, 50*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("RecvDeadline error = %v, want timeout", err)
	}
}

func TestSecureConnForwardsDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	key := bytes.Repeat([]byte{0x42}, 32)
	sa, sb := NewSecure(a, key), NewSecure(b, key)

	if _, ok := Conn(sa).(Deadliner); !ok {
		t.Fatal("secure conn does not implement Deadliner")
	}
	if _, err := RecvDeadline(sb, 30*time.Millisecond); !IsTimeout(err) {
		t.Fatal("secure RecvDeadline did not time out")
	}
	// And still works for a real message afterwards.
	go sa.Send(Message{Kind: 9, Payload: []byte("ok")})
	m, err := RecvDeadline(sb, 5*time.Second)
	if err != nil {
		t.Fatalf("secure RecvDeadline: %v", err)
	}
	if m.Kind != 9 || string(m.Payload) != "ok" {
		t.Fatalf("got %+v", m)
	}
}

func TestMeteredConnForwardsDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var meter Meter
	mb := NewMetered(b, &meter)
	if _, ok := mb.(Deadliner); !ok {
		t.Fatal("metered conn does not implement Deadliner")
	}
	if _, err := RecvDeadline(mb, 30*time.Millisecond); !IsTimeout(err) {
		t.Fatal("metered RecvDeadline did not time out")
	}
}

func TestFaultErrorFiresOnce(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	fa := NewFault(a, FaultPoint{Op: FaultSend, Kind: FaultError, N: 2})

	if err := fa.Send(Message{Kind: 1}); err != nil {
		t.Fatalf("Send 1: %v", err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("Recv 1: %v", err)
	}
	err := fa.Send(Message{Kind: 2})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Send 2 error = %v, want ErrInjected", err)
	}
	if !fa.Fired() {
		t.Fatal("fault did not report Fired")
	}
	// Transparent after firing.
	if err := fa.Send(Message{Kind: 3}); err != nil {
		t.Fatalf("Send 3: %v", err)
	}
	if m, err := b.Recv(); err != nil || m.Kind != 3 {
		t.Fatalf("Recv 3 = %+v, %v", m, err)
	}
}

func TestFaultKindTargeting(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	fa := NewFault(a, FaultPoint{Op: FaultSend, Kind: FaultError, MsgKind: 8})

	go func() {
		for i := 0; i < 2; i++ {
			b.Recv()
		}
	}()
	if err := fa.Send(Message{Kind: 7}); err != nil {
		t.Fatalf("Send kind 7: %v", err)
	}
	if err := fa.Send(Message{Kind: 9}); err != nil {
		t.Fatalf("Send kind 9: %v", err)
	}
	if err := fa.Send(Message{Kind: 8}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Send kind 8 error = %v, want ErrInjected", err)
	}
}

func TestFaultCloseTearsDownConn(t *testing.T) {
	a, b := Pipe()
	fa := NewFault(a, FaultPoint{Op: FaultSend, Kind: FaultClose})

	if err := fa.Send(Message{Kind: 1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Send error = %v, want ErrInjected", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer Recv error = %v, want ErrClosed", err)
	}
}

func TestFaultDropRecvSkipsMessage(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	fb := NewFault(b, FaultPoint{Op: FaultRecv, Kind: FaultDrop})

	go func() {
		a.Send(Message{Kind: 1})
		a.Send(Message{Kind: 2})
	}()
	m, err := fb.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.Kind != 2 {
		t.Fatalf("Kind = %d, want 2 (message 1 dropped)", m.Kind)
	}
}

func TestFaultDelayTripsDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	fb := NewFault(b, FaultPoint{Op: FaultRecv, Kind: FaultDelay, Delay: 80 * time.Millisecond})

	go a.Send(Message{Kind: 4})
	_, err := RecvDeadline(fb, 20*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("RecvDeadline error = %v, want timeout", err)
	}
}
