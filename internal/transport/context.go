package transport

import (
	"context"
	"time"
)

// aLongTimeAgo is a non-zero time far in the past, used to immediately expire
// an in-flight operation when its context is canceled (the same trick the
// net/http internals use: SetDeadline(past) unblocks pending I/O).
var aLongTimeAgo = time.Unix(1, 0)

// SendContext sends one message, honoring both the context and the timeout.
// Cancellation interrupts an in-flight send by smashing the connection
// deadline into the past; the returned error is then ctx.Err(). A nil or
// never-canceled context degrades to SendDeadline exactly, so callers that
// do not use contexts pay nothing.
func SendContext(ctx context.Context, c Conn, m Message, timeout time.Duration) error {
	run, finish, ok := contextualize(ctx, c, timeout)
	if !ok {
		return SendDeadline(c, m, timeout)
	}
	if run != nil {
		return run
	}
	return finish(c.Send(m))
}

// RecvContext receives one message, honoring both the context and the
// timeout. Cancellation interrupts an in-flight receive; the returned error
// is then ctx.Err(). A nil or never-canceled context degrades to
// RecvDeadline exactly.
func RecvContext(ctx context.Context, c Conn, timeout time.Duration) (Message, error) {
	run, finish, ok := contextualize(ctx, c, timeout)
	if !ok {
		return RecvDeadline(c, timeout)
	}
	if run != nil {
		return Message{}, run
	}
	m, err := c.Recv()
	if err = finish(err); err != nil {
		return Message{}, err
	}
	return m, nil
}

// contextualize arms a connection deadline that combines the context with the
// timeout. It returns ok=false when the plain deadline helpers should be used
// instead (nil/non-cancelable context, or a connection without deadlines).
// Otherwise run is a pre-flight error (context already done) or nil, and
// finish must wrap the operation's error: it disarms the cancel watcher and
// substitutes ctx.Err() when cancellation is what broke the operation.
func contextualize(ctx context.Context, c Conn, timeout time.Duration) (run error, finish func(error) error, ok bool) {
	if ctx == nil || ctx.Done() == nil {
		return nil, nil, false
	}
	if err := ctx.Err(); err != nil {
		return err, func(e error) error { return e }, true
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if d, hasD := ctx.Deadline(); hasD && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !SetDeadline(c, deadline) {
		// The connection cannot be interrupted; fall back to the plain
		// helpers and let the caller notice cancellation afterwards.
		return nil, nil, false
	}
	// Register the cancel watcher only after the base deadline is set, so a
	// concurrent cancellation cannot have its past-deadline overwritten by
	// the SetDeadline above.
	stop := context.AfterFunc(ctx, func() {
		SetDeadline(c, aLongTimeAgo)
	})
	finish = func(opErr error) error {
		stopped := stop()
		SetDeadline(c, time.Time{})
		if opErr == nil {
			// Even a canceled context does not destroy a completed
			// operation; deliver the result.
			return nil
		}
		// Report cancellation rather than the induced timeout when the
		// context is what broke the operation: either the watcher fired
		// mid-flight, or the armed deadline was the context's own.
		if err := ctx.Err(); err != nil && (!stopped || IsTimeout(opErr)) {
			return err
		}
		if IsTimeout(opErr) {
			// The connection's timer can fire a hair before the context's
			// own; judge by the wall clock, not the racing ctx.Err().
			if d, hasD := ctx.Deadline(); hasD && !time.Now().Before(d) {
				return context.DeadlineExceeded
			}
		}
		return opErr
	}
	return nil, finish, true
}
