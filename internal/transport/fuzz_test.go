package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must reject
// or parse without panicking, and anything parsed must re-serialize to an
// equivalent frame.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Message{Kind: 7, Payload: []byte("payload")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, m); err != nil {
			t.Fatalf("accepted frame failed to serialize: %v", err)
		}
		back, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("own output failed to parse: %v", err)
		}
		if back.Kind != m.Kind || !bytes.Equal(back.Payload, m.Payload) {
			t.Fatal("frame round trip changed the message")
		}
	})
}
