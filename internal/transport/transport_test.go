package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"gendpr/internal/seal"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	want := Message{Kind: 3, Payload: []byte("hello")}
	go func() {
		if err := a.Send(want); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestPipePreservesOrder(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(Message{Kind: uint16(i)}); err != nil {
				t.Errorf("Send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.Kind != uint16(i) {
			t.Fatalf("message %d has kind %d", i, m.Kind)
		}
	}
}

func TestPipeCloseUnblocks(t *testing.T) {
	a, b := Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close: %v, want ErrClosed", err)
		}
	}()
	a.Close()
	wg.Wait()
	if err := a.Send(Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Kind: 0, Payload: nil},
		{Kind: 1, Payload: []byte{}},
		{Kind: 65535, Payload: []byte("payload")},
		{Kind: 7, Payload: bytes.Repeat([]byte{0xAB}, 100000)},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	// Header advertising a 4 GB frame.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Message{Kind: 1, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadFrame(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("truncated frame must fail")
	}
	if _, err := ReadFrame(bytes.NewReader(b[:3])); err == nil {
		t.Fatal("truncated header must fail")
	}
}

func TestTCPTransport(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		m, err := c.Recv()
		if err != nil {
			t.Errorf("server Recv: %v", err)
			return
		}
		m.Payload = append(m.Payload, '!')
		if err := c.Send(m); err != nil {
			t.Errorf("server Send: %v", err)
		}
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(Message{Kind: 9, Payload: []byte("ping")}); err != nil {
		t.Fatalf("client Send: %v", err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatalf("client Recv: %v", err)
	}
	if string(m.Payload) != "ping!" || m.Kind != 9 {
		t.Fatalf("echo mismatch: %+v", m)
	}
	<-done
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

func secureTestPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	a, b := Pipe()
	return NewSecure(a, key), NewSecure(b, key)
}

func TestSecureConnRoundTrip(t *testing.T) {
	a, b := secureTestPair(t)
	defer a.Close()
	defer b.Close()
	go func() {
		for i := 0; i < 5; i++ {
			if err := a.Send(Message{Kind: uint16(i), Payload: []byte{byte(i)}}); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.Kind != uint16(i) || m.Payload[0] != byte(i) {
			t.Fatalf("message %d corrupted: %+v", i, m)
		}
	}
}

func TestSecureConnHidesPlaintext(t *testing.T) {
	key, _ := seal.NewKey()
	inner, peerInner := Pipe()
	sec := NewSecure(inner, key)
	go func() {
		if err := sec.Send(Message{Kind: 1, Payload: []byte("confidential allele counts")}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	raw, err := peerInner.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw.Payload, []byte("confidential")) {
		t.Fatal("secure transport leaked plaintext on the wire")
	}
}

func TestSecureConnRejectsTampering(t *testing.T) {
	key, _ := seal.NewKey()
	aInner, bInner := Pipe()
	a := NewSecure(aInner, key)
	b := NewSecure(bInner, key)
	_ = b

	// Intercept at the inner layer: flip a bit, then hand to the secure
	// receiver by re-wrapping a fresh pipe.
	go func() {
		if err := a.Send(Message{Kind: 1, Payload: []byte("data")}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	raw, err := bInner.Recv()
	if err != nil {
		t.Fatal(err)
	}
	raw.Payload[len(raw.Payload)-1] ^= 1
	cInner, dInner := Pipe()
	d := NewSecure(dInner, key)
	go func() {
		if err := cInner.Send(raw); err != nil {
			t.Errorf("forward: %v", err)
		}
	}()
	if _, err := d.Recv(); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestSecureConnRejectsReplay(t *testing.T) {
	key, _ := seal.NewKey()
	aInner, bInner := Pipe()
	a := NewSecure(aInner, key)

	go func() {
		if err := a.Send(Message{Kind: 1, Payload: []byte("once")}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	raw, err := bInner.Recv()
	if err != nil {
		t.Fatal(err)
	}

	// Deliver the same ciphertext twice to a fresh secure receiver: the
	// second delivery must fail the sequence binding.
	cInner, dInner := Pipe()
	d := NewSecure(dInner, key)
	go func() {
		for i := 0; i < 2; i++ {
			if err := cInner.Send(raw); err != nil {
				t.Errorf("forward %d: %v", i, err)
			}
		}
	}()
	if _, err := d.Recv(); err != nil {
		t.Fatalf("first delivery must succeed: %v", err)
	}
	if _, err := d.Recv(); err == nil {
		t.Fatal("replayed ciphertext accepted")
	}
}

func TestSecureConnRejectsKindSwap(t *testing.T) {
	key, _ := seal.NewKey()
	aInner, bInner := Pipe()
	a := NewSecure(aInner, key)
	go func() {
		if err := a.Send(Message{Kind: 1, Payload: []byte("typed")}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	raw, err := bInner.Recv()
	if err != nil {
		t.Fatal(err)
	}
	raw.Kind = 2 // attacker relabels the message
	cInner, dInner := Pipe()
	d := NewSecure(dInner, key)
	go func() {
		if err := cInner.Send(raw); err != nil {
			t.Errorf("forward: %v", err)
		}
	}()
	if _, err := d.Recv(); err == nil {
		t.Fatal("re-typed ciphertext accepted")
	}
}

func TestWriteFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	big := Message{Payload: make([]byte, MaxFrameSize+1)}
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}
