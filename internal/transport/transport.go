// Package transport moves protocol messages between federation members. It
// provides a length-prefixed frame codec, an in-memory transport for tests
// and single-process federations, a TCP transport for real deployments, and
// an authenticated-encryption wrapper that protects every message with
// AES-256-GCM under an attested session key, with replay and reordering
// protection via sequence-number additional data.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"gendpr/internal/seal"
)

// MaxFrameSize bounds a single message payload. The largest GenDPR payload
// is a merged LR-matrix (about 22 MB at the paper's 14,860 genomes x 187
// SNPs); 256 MB leaves ample headroom while stopping hostile length fields.
const MaxFrameSize = 256 << 20

var (
	// ErrClosed is returned when sending or receiving on a closed connection.
	ErrClosed = errors.New("transport: connection closed")

	// ErrFrameTooLarge is returned when a frame length exceeds MaxFrameSize.
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

	// ErrTimeout is returned when a deadline expires before an operation
	// completes. It aliases os.ErrDeadlineExceeded so errors.Is matches both
	// pipe timeouts and net.Conn deadline errors uniformly.
	ErrTimeout = os.ErrDeadlineExceeded

	// ErrAuth is returned when a received frame fails AEAD authentication:
	// the ciphertext, its kind, or its sequence number was tampered with in
	// flight. Unlike a timeout this is not a transient condition — the
	// channel's integrity is gone and retrying on it cannot help.
	ErrAuth = errors.New("transport: message authentication failed")
)

// IsTimeout reports whether err was caused by an expired deadline, on either
// the in-memory or the TCP transport.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Message is one protocol message: a kind discriminator and an opaque
// payload.
type Message struct {
	Kind    uint16
	Payload []byte
}

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send transmits one message.
	Send(Message) error
	// Recv blocks for the next message.
	Recv() (Message, error)
	// Close releases the connection; pending and future operations fail
	// with ErrClosed.
	Close() error
}

// Deadliner is implemented by connections that support absolute I/O
// deadlines. Both built-in transports (pipe and TCP) and every wrapper in
// this package implement it; SetDeadline(time.Time{}) clears the deadline.
type Deadliner interface {
	SetDeadline(t time.Time) error
}

// SetDeadline applies an absolute deadline to c if it supports one. It
// reports whether the connection honored the deadline; connections without
// deadline support are left untouched.
func SetDeadline(c Conn, t time.Time) bool {
	d, ok := c.(Deadliner)
	if !ok {
		return false
	}
	return d.SetDeadline(t) == nil
}

// RecvDeadline receives one message, failing with a timeout error if it does
// not arrive within the given duration. A non-positive timeout blocks
// indefinitely. The deadline is cleared afterwards.
func RecvDeadline(c Conn, timeout time.Duration) (Message, error) {
	if timeout <= 0 {
		return c.Recv()
	}
	if !SetDeadline(c, time.Now().Add(timeout)) {
		return c.Recv()
	}
	m, err := c.Recv()
	SetDeadline(c, time.Time{})
	return m, err
}

// SendDeadline sends one message, failing with a timeout error if it cannot
// be transmitted within the given duration. A non-positive timeout blocks
// indefinitely. The deadline is cleared afterwards.
func SendDeadline(c Conn, m Message, timeout time.Duration) error {
	if timeout <= 0 {
		return c.Send(m)
	}
	if !SetDeadline(c, time.Now().Add(timeout)) {
		return c.Send(m)
	}
	err := c.Send(m)
	SetDeadline(c, time.Time{})
	return err
}

// --- In-memory transport ---

type pipeShared struct {
	done      chan struct{}
	closeOnce sync.Once
}

func (s *pipeShared) close() {
	s.closeOnce.Do(func() { close(s.done) })
}

type pipeConn struct {
	out    chan<- Message
	in     <-chan Message
	shared *pipeShared

	mu       sync.Mutex
	deadline time.Time
	changed  chan struct{}
}

// Pipe returns two connected in-memory endpoints. Messages sent on one are
// received on the other, in order. Closing either side unblocks both, and
// Close is idempotent across both endpoints.
func Pipe() (Conn, Conn) {
	ab := make(chan Message, 1)
	ba := make(chan Message, 1)
	shared := &pipeShared{done: make(chan struct{})}
	a := &pipeConn{out: ab, in: ba, shared: shared, changed: make(chan struct{})}
	b := &pipeConn{out: ba, in: ab, shared: shared, changed: make(chan struct{})}
	return a, b
}

// SetDeadline sets an absolute deadline for both Send and Recv. The zero
// time clears it. Like net.Conn deadlines, the call also affects operations
// already blocked: setting a past deadline immediately times them out, which
// is how context cancellation interrupts in-flight pipe I/O.
func (c *pipeConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	close(c.changed)
	c.changed = make(chan struct{})
	c.mu.Unlock()
	return nil
}

// expiry returns a channel that fires when the current deadline passes (nil
// when no deadline is set), a channel closed when the deadline is changed,
// and a stop func that releases the timer. Callers re-arm on change.
func (c *pipeConn) expiry() (<-chan time.Time, <-chan struct{}, func()) {
	c.mu.Lock()
	d := c.deadline
	changed := c.changed
	c.mu.Unlock()
	if d.IsZero() {
		return nil, changed, func() {}
	}
	t := time.NewTimer(time.Until(d))
	return t.C, changed, func() { t.Stop() }
}

func (c *pipeConn) Send(m Message) error {
	select {
	case <-c.shared.done:
		return ErrClosed
	default:
	}
	for {
		expired, changed, stop := c.expiry()
		select {
		case c.out <- m:
			stop()
			return nil
		case <-c.shared.done:
			stop()
			return ErrClosed
		case <-expired:
			stop()
			return fmt.Errorf("transport: pipe send: %w", ErrTimeout)
		case <-changed:
			stop()
		}
	}
}

func (c *pipeConn) Recv() (Message, error) {
	for {
		expired, changed, stop := c.expiry()
		select {
		case m := <-c.in:
			stop()
			return m, nil
		case <-c.shared.done:
			stop()
			// Drain any message that raced with close.
			select {
			case m := <-c.in:
				return m, nil
			default:
				return Message{}, ErrClosed
			}
		case <-expired:
			stop()
			return Message{}, fmt.Errorf("transport: pipe recv: %w", ErrTimeout)
		case <-changed:
			stop()
		}
	}
}

func (c *pipeConn) Close() error {
	c.shared.close()
	return nil
}

// --- Frame codec ---

// WriteFrame writes kind and payload as one length-prefixed frame.
func WriteFrame(w io.Writer, m Message) error {
	if len(m.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(m.Payload)))
	binary.BigEndian.PutUint16(hdr[4:6], m.Kind)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := w.Write(m.Payload); err != nil {
		return fmt.Errorf("transport: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, fmt.Errorf("transport: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	m := Message{
		Kind:    binary.BigEndian.Uint16(hdr[4:6]),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, m.Payload); err != nil {
		return Message{}, fmt.Errorf("transport: read payload: %w", err)
	}
	return m, nil
}

// --- TCP transport ---

type netMsgConn struct {
	c net.Conn

	sendMu sync.Mutex
	recvMu sync.Mutex
}

var _ Conn = (*netMsgConn)(nil)

// NewNetConn wraps a stream connection with the frame codec.
func NewNetConn(c net.Conn) Conn {
	return &netMsgConn{c: c}
}

func (n *netMsgConn) Send(m Message) error {
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	if err := WriteFrame(n.c, m); err != nil {
		return err
	}
	return nil
}

func (n *netMsgConn) Recv() (Message, error) {
	n.recvMu.Lock()
	defer n.recvMu.Unlock()
	return ReadFrame(n.c)
}

func (n *netMsgConn) Close() error { return n.c.Close() }

// SetDeadline delegates to the underlying net.Conn; expired deadlines
// surface as errors satisfying errors.Is(err, ErrTimeout).
func (n *netMsgConn) SetDeadline(t time.Time) error { return n.c.SetDeadline(t) }

// DefaultDialTimeout bounds connection establishment.
const DefaultDialTimeout = 10 * time.Second

// Dial connects to a TCP listener (with DefaultDialTimeout) and wraps the
// connection.
func Dial(addr string) (Conn, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects with an explicit timeout.
func DialTimeout(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewNetConn(c), nil
}

// Listener accepts framed connections.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener on addr ("127.0.0.1:0" for an ephemeral port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewNetConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// --- Encrypted transport ---

// SecureConn is the AEAD-protected channel. It is a distinct named type —
// not an anonymous Conn — on purpose: holding a *SecureConn is static proof
// that every payload sent through it leaves the enclave encrypted, and the
// secretflow analyzer (STATIC_ANALYSIS.md) exempts sends on this type from
// the plaintext-egress sink check. Code that sends privacy-bearing payloads
// should keep its connections typed *SecureConn, not Conn, so the proof
// survives refactors.
type SecureConn struct {
	inner Conn
	//gendpr:secret
	key []byte

	sendMu  sync.Mutex
	sendSeq uint64
	recvMu  sync.Mutex
	recvSeq uint64
}

var _ Conn = (*SecureConn)(nil)

// NewSecure wraps a connection so every payload is encrypted and
// authenticated with AES-256-GCM under the session key. The message kind and
// a per-direction sequence number are bound as additional data, so replayed,
// reordered, or re-typed ciphertexts are rejected.
func NewSecure(inner Conn, key []byte) *SecureConn {
	k := make([]byte, len(key))
	copy(k, key)
	return &SecureConn{inner: inner, key: k}
}

func secureAAD(kind uint16, seq uint64) []byte {
	var aad [10]byte
	binary.BigEndian.PutUint16(aad[0:2], kind)
	binary.BigEndian.PutUint64(aad[2:10], seq)
	return aad[:]
}

func (s *SecureConn) Send(m Message) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	ct, err := seal.Encrypt(s.key, m.Payload, secureAAD(m.Kind, s.sendSeq))
	if err != nil {
		return fmt.Errorf("transport: encrypt: %w", err)
	}
	// sendMu binds the sequence-number increment to the wire order; a
	// concurrent Send slipping between them would desynchronize the AEAD
	// replay window. The lock guards only this channel's ordering.
	//gendpr:allow(lockacrosssend): the lock IS the wire-order/sequence-number serializer for this direction
	if err := s.inner.Send(Message{Kind: m.Kind, Payload: ct}); err != nil {
		return err
	}
	s.sendSeq++
	return nil
}

func (s *SecureConn) Recv() (Message, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	// Mirror of Send: the receive order must match the sequence-number
	// increments, so the lock spans the blocking Recv by design.
	//gendpr:allow(lockacrosssend): the lock IS the wire-order/sequence-number serializer for this direction
	m, err := s.inner.Recv()
	if err != nil {
		return Message{}, err
	}
	pt, err := seal.Decrypt(s.key, m.Payload, secureAAD(m.Kind, s.recvSeq))
	if err != nil {
		return Message{}, fmt.Errorf("%w: message %d: %v", ErrAuth, s.recvSeq, err)
	}
	s.recvSeq++
	return Message{Kind: m.Kind, Payload: pt}, nil
}

func (s *SecureConn) Close() error { return s.inner.Close() }

// SetDeadline forwards to the wrapped connection when it supports deadlines.
func (s *SecureConn) SetDeadline(t time.Time) error {
	if d, ok := s.inner.(Deadliner); ok {
		return d.SetDeadline(t)
	}
	return fmt.Errorf("transport: secure inner conn has no deadline support")
}
