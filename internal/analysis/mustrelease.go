package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReleasePair declares one acquire/release obligation for the mustrelease
// analyzer: calling Fn hands the caller a resource (the Result-th return
// value) that must be released on every control-flow path — by calling the
// Release method on it, or, when Release is empty, by calling the value
// itself (the context.CancelFunc shape).
type ReleasePair struct {
	// Fn is the acquiring function's full name as go/types renders it:
	// "os.Open", "gendpr/internal/transport.DialTimeout".
	Fn string
	// Result is the index of the returned resource in Fn's result list.
	Result int
	// Release is the niladic method releasing the resource ("" = call the
	// value itself).
	Release string
	// Kind is the human-readable resource label used in diagnostics.
	Kind string
}

// DefaultReleasePairs is the project's lifecycle obligation table. Admission
// slots and tenant tokens are acquired and released on different goroutines
// (admit in the caller, release in the worker), which an intraprocedural
// path check cannot follow — those invariants are enforced by goroleak on
// the worker loop plus the service load harness, not listed here.
func DefaultReleasePairs() []ReleasePair {
	return []ReleasePair{
		{Fn: "gendpr/internal/transport.Dial", Result: 0, Release: "Close", Kind: "transport connection"},
		{Fn: "gendpr/internal/transport.DialTimeout", Result: 0, Release: "Close", Kind: "transport connection"},
		{Fn: "gendpr/internal/transport.Listen", Result: 0, Release: "Close", Kind: "transport listener"},
		{Fn: "os.Open", Result: 0, Release: "Close", Kind: "file handle"},
		{Fn: "os.Create", Result: 0, Release: "Close", Kind: "file handle"},
		{Fn: "os.OpenFile", Result: 0, Release: "Close", Kind: "file handle"},
		{Fn: "time.NewTimer", Result: 0, Release: "Stop", Kind: "timer"},
		{Fn: "time.NewTicker", Result: 0, Release: "Stop", Kind: "ticker"},
		{Fn: "context.WithCancel", Result: 1, Release: "", Kind: "context cancel func"},
		{Fn: "context.WithTimeout", Result: 1, Release: "", Kind: "context cancel func"},
		{Fn: "context.WithDeadline", Result: 1, Release: "", Kind: "context cancel func"},
	}
}

// NewMustRelease returns the analyzer proving release-on-every-path for the
// spec table's acquire/release pairs. The check runs on the CFG: from each
// acquire site it walks every path to function exit and demands the release
// happens on all of them — early returns and error branches included. A
// `defer` right after the acquire is the sanctioned idiom; explicit releases
// are accepted only when they cover every path (a release guarded by a
// condition that some path skips is exactly the leak this exists for).
//
// Escape is handoff: a resource that is returned, stored, captured, sent, or
// passed to another call transfers its obligation to the new owner and stops
// being tracked here. Error-branch refinement keeps the common
// `x, err := acquire(); if err != nil { return err }` clean — on the
// err != nil edge the resource is nil and owes nothing. Acquiring inside a
// loop and releasing with defer is its own finding: those defers run at
// function exit, not iteration end, so the resource count grows with the
// trip count.
func NewMustRelease(scopes []Scope, pairs []ReleasePair) *Analyzer {
	byFn := make(map[string]ReleasePair, len(pairs))
	for _, pr := range pairs {
		byFn[pr.Fn] = pr
	}
	a := &Analyzer{
		Name:   "mustrelease",
		Doc:    "a resource from an acquire/release pair must be released on every path; defer it at the acquire site",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body != nil {
					checkBodyReleases(p, body, byFn)
				}
				return true
			})
		}
	}
	return a
}

// acquireSite is one tracked acquisition inside a function body.
type acquireSite struct {
	pair   ReleasePair
	obj    types.Object // the resource variable
	errObj types.Object // the error result bound at the same site, if any
	pos    token.Pos
	block  *Block
	node   int // index of the acquiring node within block.Nodes
}

// checkBodyReleases analyzes one function body's acquires. Nested function
// literals are walked by their own invocation of this check, so their nodes
// are skipped here: an acquire inside a closure belongs to the closure's
// CFG.
func checkBodyReleases(p *Pass, body *ast.BlockStmt, byFn map[string]ReleasePair) {
	if p.Pkg.Info == nil {
		return
	}
	// Cheap pre-scan: most bodies acquire nothing.
	if !bodyMentionsAcquire(p, body, byFn) {
		return
	}
	cfg := BuildCFG(body)
	var sites []acquireSite
	for _, blk := range cfg.Blocks {
		for i, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			pair, ok := acquirePair(p, call, byFn)
			if !ok {
				continue
			}
			if pair.Result >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[pair.Result].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				p.Reportf(as.Pos(), "%s from %s is discarded: the %s can never be released; bind it and release it",
					pair.Kind, pair.Fn, pair.Kind)
				continue
			}
			obj := p.Pkg.Info.Defs[id]
			if obj == nil {
				obj = p.Pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			site := acquireSite{pair: pair, obj: obj, pos: as.Pos(), block: blk, node: i}
			for _, lhs := range as.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && lid != id {
					if lobj := identObject(p.Pkg, lid); lobj != nil && isErrorType(lobj.Type()) {
						site.errObj = lobj
					}
				}
			}
			sites = append(sites, site)
		}
	}
	for _, site := range sites {
		checkAcquirePaths(p, cfg, site)
	}
}

func bodyMentionsAcquire(p *Pass, body *ast.BlockStmt, byFn map[string]ReleasePair) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := acquirePair(p, call, byFn); ok {
				found = true
			}
		}
		return true
	})
	return found
}

func acquirePair(p *Pass, call *ast.CallExpr, byFn map[string]ReleasePair) (ReleasePair, bool) {
	fn, ok := calleeFunc(p.Pkg, call)
	if !ok || fn == nil {
		return ReleasePair{}, false
	}
	pair, ok := byFn[fn.FullName()]
	return pair, ok
}

func identObject(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// pathState is the tracked condition of one resource along one CFG path.
type pathState struct {
	deferred bool // a (non-loop) defer guarantees release at exit
}

// checkAcquirePaths walks every path from the acquire to the function exit
// and reports the first leaking one. One diagnostic per site: either the
// defer-in-loop accumulation or the missing-path leak, not both.
func checkAcquirePaths(p *Pass, cfg *CFG, site acquireSite) {
	inLoop := site.block.LoopDepth > 0
	reportedLoopDefer := false
	leaked := false

	// visited keys (block, deferred): exploration always carries held=true —
	// a released or escaped resource prunes its path.
	type visitKey struct {
		blk      int
		deferred bool
	}
	visited := make(map[visitKey]bool)

	var walk func(blk *Block, start int, st pathState)
	walk = func(blk *Block, start int, st pathState) {
		if leaked && (!inLoop || reportedLoopDefer) {
			return
		}
		if start == 0 {
			key := visitKey{blk.Index, st.deferred}
			if visited[key] {
				return
			}
			visited[key] = true
		}
		if blk == cfg.Exit {
			if !st.deferred && !leaked {
				leaked = true
				p.Reportf(site.pos, "%s from %s is not released on every path: some path reaches return without calling %s; defer it at the acquire site",
					site.pair.Kind, site.pair.Fn, releaseName(site.pair))
			}
			return
		}
		for i := start; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			switch disposition(p, n, site) {
			case dispReleases:
				return // path satisfied
			case dispDefers:
				if blk.LoopDepth > 0 && inLoop {
					if !reportedLoopDefer {
						reportedLoopDefer = true
						p.Reportf(n.Pos(), "defer %s inside a loop releases the %s only at function exit: iterations accumulate resources; release explicitly per iteration or hoist into a function",
							releaseName(site.pair), site.pair.Kind)
					}
					return // the defer still prevents an outright leak
				}
				st.deferred = true
			case dispEscapes:
				return // ownership handed off
			case dispTerminates:
				// os.Exit/log.Fatal: the process dies, nothing leaks.
				return
			}
		}
		for si, succ := range blk.Succs {
			if blk.Branch != nil && edgeProvesNil(p, blk.Branch, si == 0, site) {
				continue // resource is nil on this edge: nothing to release
			}
			walk(succ, 0, st)
		}
	}
	walk(site.block, site.node+1, pathState{})
}

func releaseName(pair ReleasePair) string {
	if pair.Release == "" {
		return "the cancel func"
	}
	return pair.Release
}

const (
	dispNeutral = iota
	dispReleases
	dispDefers
	dispEscapes
	dispTerminates
)

// disposition classifies one CFG node's effect on the tracked resource.
func disposition(p *Pass, n ast.Node, site acquireSite) int {
	switch s := n.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if isTerminatorCall(call) && !isPanicLike(call) {
				return dispTerminates
			}
		}
	case *ast.DeferStmt:
		if isReleaseCall(p, s.Call, site) {
			return dispDefers
		}
		// defer func() { ... release ... }() also guarantees the release.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			if containsReleaseCall(p, lit.Body, site) {
				return dispDefers
			}
		}
	}
	// A release call anywhere in the node outside nested function literals
	// counts — the `if err := f.Close(); err != nil` idiom puts it in an
	// if-init, not a bare expression statement.
	if containsReleaseCall(p, n, site) {
		return dispReleases
	}
	if escapesThrough(p, n, site) {
		return dispEscapes
	}
	return dispNeutral
}

// containsReleaseCall scans a node's subtree, excluding nested function
// literals (a release inside a closure runs on the closure's schedule, not
// this path).
func containsReleaseCall(p *Pass, n ast.Node, site acquireSite) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && isReleaseCall(p, call, site) {
			found = true
		}
		return !found
	})
	return found
}

// isPanicLike distinguishes defer-running terminators (panic, Goexit) from
// process-exit ones: only the latter excuse an unreleased resource, and even
// then just because the OS reclaims it.
func isPanicLike(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name == "runtime" && fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// isReleaseCall matches obj.Release() (or obj() for self-release pairs).
func isReleaseCall(p *Pass, call *ast.CallExpr, site acquireSite) bool {
	if site.pair.Release == "" {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && identObject(p.Pkg, id) == site.obj
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != site.pair.Release {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && identObject(p.Pkg, id) == site.obj
}

// escapesThrough reports whether the node hands the resource to another
// owner: returning it, storing it anywhere, capturing it in a function
// literal, sending it, or passing it as a call argument. Receiver-position
// method calls (f.Write, conn.Send) and nil comparisons keep local
// ownership.
func escapesThrough(p *Pass, n ast.Node, site acquireSite) bool {
	escaped := false
	ast.Inspect(n, func(m ast.Node) bool {
		if escaped {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			// A closure mentioning the resource captures it.
			if usesObject(p, m.Body, site.obj) {
				escaped = true
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if exprIsObject(p, r, site.obj) || usesObject(p, r, site.obj) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				if exprIsObject(p, r, site.obj) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if exprIsObject(p, m.Value, site.obj) {
				escaped = true
			}
		case *ast.CompositeLit:
			for _, e := range m.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if exprIsObject(p, e, site.obj) {
					escaped = true
				}
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND && exprIsObject(p, m.X, site.obj) {
				escaped = true
			}
		case *ast.CallExpr:
			if isReleaseCall(p, m, site) {
				return false
			}
			for _, arg := range m.Args {
				if exprIsObject(p, arg, site.obj) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

func exprIsObject(p *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && identObject(p.Pkg, id) == obj
}

func usesObject(p *Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && identObject(p.Pkg, id) == obj {
			used = true
		}
		return !used
	})
	return used
}

// edgeProvesNil reports branch edges on which the resource is provably nil
// and owes no release: the true edge of `err != nil` / `res == nil` and the
// false edge of `err == nil` / `res != nil`.
func edgeProvesNil(p *Pass, branch ast.Expr, trueEdge bool, site acquireSite) bool {
	bin, ok := ast.Unparen(branch).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false
	}
	var other ast.Expr
	switch {
	case isNilIdent(bin.Y):
		other = bin.X
	case isNilIdent(bin.X):
		other = bin.Y
	default:
		return false
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObject(p.Pkg, id)
	if obj == nil {
		return false
	}
	switch obj {
	case site.errObj:
		// err != nil on the true edge (or err == nil on the false edge)
		// means the acquire failed and returned a nil resource.
		return (bin.Op == token.NEQ) == trueEdge
	case site.obj:
		// res == nil on the true edge means nothing to release.
		return (bin.Op == token.EQL) == trueEdge
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
