package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cacheTestAnalyzers returns one per-package analyzer whose message depends
// on the package's own content and one module-global analyzer whose message
// depends on the whole module, so the test can observe exactly which halves
// re-ran after an edit.
func cacheTestAnalyzers() []*Analyzer {
	local := &Analyzer{
		Name: "countdecls",
		Doc:  "test analyzer: reports the package's declaration count",
		Run: func(p *Pass) {
			n := 0
			for _, f := range p.Files {
				n += len(f.Decls)
			}
			p.Reportf(p.Files[0].Package, "%s has %d decls", p.Pkg.Path, n)
		},
	}
	global := &Analyzer{
		Name:         "modwide",
		Doc:          "test analyzer: reports the module's package count",
		ModuleGlobal: true,
		Run: func(p *Pass) {
			p.Reportf(p.Files[0].Package, "%s sees %d packages", p.Pkg.Path, len(p.Mod.Packages))
		},
	}
	return []*Analyzer{local, global}
}

func writeCacheTestModule(t *testing.T, root string) {
	t.Helper()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go": "package b\n\nimport \"cachetest/a\"\n\nfunc B() int { return a.A() }\n",
		"c/c.go": "//gendpr:allow(countdecls): fixture suppression under test\npackage c\n\nfunc C() int { return 3 }\n",
	}
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func diagJSON(t *testing.T, diags []Diagnostic) string {
	t.Helper()
	data, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func messagesOf(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

func hasMessage(diags []Diagnostic, substr string) bool {
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

func TestRunWithCacheWarmReproducesCold(t *testing.T) {
	root := t.TempDir()
	writeCacheTestModule(t, root)
	cacheDir := filepath.Join(root, ".lintcache")
	as := cacheTestAnalyzers()

	cold, _, cs, err := RunWithCache(root, as, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if cs.FullHit || cs.Hits != 0 || cs.Misses != 6 {
		t.Fatalf("cold run: want 6 misses, 0 hits, no full hit; got %+v", cs)
	}
	// Per-package analyzer: a has 1 decl, b has 2 (import + func); c's
	// finding is suppressed by the directive on the line above the package
	// clause. Module-global analyzer: every package sees all 3.
	for _, want := range []string{"cachetest/a has 1 decls", "cachetest/b has 2 decls",
		"cachetest/a sees 3 packages", "cachetest/b sees 3 packages", "cachetest/c sees 3 packages"} {
		if !hasMessage(cold, want) {
			t.Errorf("cold run missing %q; have %v", want, messagesOf(cold))
		}
	}
	if hasMessage(cold, "cachetest/c has") {
		t.Errorf("suppressed finding for package c leaked: %v", messagesOf(cold))
	}

	warm, _, cs2, err := RunWithCache(root, as, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if !cs2.FullHit || cs2.Hits != 6 || cs2.Misses != 0 {
		t.Fatalf("warm run: want full hit with 6 hits; got %+v", cs2)
	}
	if diagJSON(t, cold) != diagJSON(t, warm) {
		t.Fatalf("warm diagnostics differ from cold:\ncold: %s\nwarm: %s", diagJSON(t, cold), diagJSON(t, warm))
	}
}

func TestRunWithCacheInvalidation(t *testing.T) {
	root := t.TempDir()
	writeCacheTestModule(t, root)
	cacheDir := filepath.Join(root, ".lintcache")
	as := cacheTestAnalyzers()

	if _, _, _, err := RunWithCache(root, as, cacheDir); err != nil {
		t.Fatal(err)
	}

	// Editing b invalidates b's local half and (via the module key) every
	// global half; a's and c's local halves stay cached.
	bPath := filepath.Join(root, "b", "b.go")
	appendFile(t, bPath, "\nfunc B2() int { return 2 }\n")
	diags, _, cs, err := RunWithCache(root, as, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Hits != 2 || cs.Misses != 4 || cs.FullHit {
		t.Fatalf("after editing b: want 2 hits / 4 misses, got %+v", cs)
	}
	if !hasMessage(diags, "cachetest/b has 3 decls") {
		t.Errorf("edited b not re-analyzed: %v", messagesOf(diags))
	}

	// Editing a invalidates a itself and, through the dependency cone, b
	// (which imports a) — only c's local half survives.
	appendFile(t, filepath.Join(root, "a", "a.go"), "\nfunc A2() int { return 4 }\n")
	diags, _, cs, err = RunWithCache(root, as, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Hits != 1 || cs.Misses != 5 {
		t.Fatalf("after editing a: want 1 hit / 5 misses (only c's local half cached), got %+v", cs)
	}
	if !hasMessage(diags, "cachetest/a has 2 decls") {
		t.Errorf("edited a not re-analyzed: %v", messagesOf(diags))
	}

	// A second warm run over the new state is again a full hit.
	_, _, cs, err = RunWithCache(root, as, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.FullHit {
		t.Fatalf("expected full hit after re-caching, got %+v", cs)
	}
}

func appendFile(t *testing.T, path, content string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCacheDirectiveDiagsCached(t *testing.T) {
	root := t.TempDir()
	writeCacheTestModule(t, root)
	// A malformed directive must be reported on cold and warm runs alike.
	dPath := filepath.Join(root, "d", "d.go")
	if err := os.MkdirAll(filepath.Dir(dPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dPath, []byte("package d\n\n//gendpr:allow(countdecls)\nfunc D() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(root, ".lintcache")
	as := cacheTestAnalyzers()

	cold, _, _, err := RunWithCache(root, as, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, cs, err := RunWithCache(root, as, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.FullHit {
		t.Fatalf("expected warm full hit, got %+v", cs)
	}
	for _, diags := range [][]Diagnostic{cold, warm} {
		found := false
		for _, d := range diags {
			if d.Analyzer == "directive" {
				found = true
			}
		}
		if !found {
			t.Errorf("malformed directive finding missing: %v", messagesOf(diags))
		}
	}
	if diagJSON(t, cold) != diagJSON(t, warm) {
		t.Fatalf("directive diagnostics not reproduced from cache")
	}
}
