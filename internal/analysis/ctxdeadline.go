package analysis

import (
	"go/ast"
)

// NewCtxDeadline returns the analyzer flagging functions that accept a
// context.Context and then never reference it. The federation middleware
// threads contexts down to the transport layer so cancellation can interrupt
// in-flight exchanges; a function that takes a context but drops it on the
// floor advertises cancellability it does not deliver — a leader "canceling"
// such a path would keep a member parked on a dead exchange. Accepting an
// intentionally unused context is spelled with the blank identifier.
//
// The check is syntactic: a parameter whose type reads context.Context and
// whose name is not _ must appear somewhere in the function body. Any
// occurrence counts (including inside nested literals), which errs toward
// silence rather than false alarms.
func NewCtxDeadline(scopes []Scope) *Analyzer {
	a := &Analyzer{
		Name:   "ctxdeadline",
		Doc:    "a function accepting a context.Context must propagate it; accepting and ignoring one makes callers believe the operation is cancellable when it is not",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var ft *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ft, body = fn.Type, fn.Body
				case *ast.FuncLit:
					ft, body = fn.Type, fn.Body
				default:
					return true
				}
				if body == nil || ft.Params == nil {
					return true
				}
				for _, field := range ft.Params.List {
					if !isContextType(field.Type) {
						continue
					}
					for _, name := range field.Names {
						if name.Name == "_" {
							continue
						}
						if !identUsed(body, name.Name) {
							p.Reportf(name.Pos(),
								"context.Context parameter %q is never used: propagate it into the blocking calls (or name it _) so cancellation is not silently ignored",
								name.Name)
						}
					}
				}
				return true
			})
		}
	}
	return a
}

// isContextType matches the written type context.Context.
func isContextType(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// identUsed reports whether any identifier with the given name occurs in the
// body. Purely syntactic: a same-named identifier in a nested scope counts as
// a use, erring toward silence.
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return true
	})
	return used
}
