package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// NewFloatEq returns the analyzer flagging == and != between float-typed
// operands in the statistical packages. The release-assessment cutoffs (MAF
// 0.05, p < 1e-5, the alpha/beta power thresholds) travel through logs,
// divisions, and pooled aggregation; exact equality on such values silently
// depends on evaluation order and platform rounding, which is exactly the
// non-determinism a reproducibility-audited release pipeline must exclude.
//
// Two idioms stay legal: comparing an expression with itself (the NaN
// check), and comparing against an exact-zero constant (an IEEE-754-exact
// sentinel). Everything else needs a tolerance, an integer domain, or a
// justified //gendpr:allow(floateq) directive.
func NewFloatEq(scopes []Scope) *Analyzer {
	a := &Analyzer{
		Name:   "floateq",
		Doc:    "float operands must not be compared with == or != (tolerances or integer domains instead)",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		info := p.Pkg.Info
		if info == nil {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, xok := info.Types[be.X]
				yt, yok := info.Types[be.Y]
				if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
					return true
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // NaN idiom: x != x
				}
				if isExactZero(xt.Value) || isExactZero(yt.Value) {
					return true // exact-zero sentinel comparison
				}
				p.Reportf(be.OpPos,
					"exact floating-point %s between %s and %s: cutoff and frequency values carry rounding error; compare with a tolerance or move to an integer domain",
					be.Op, types.ExprString(be.X), types.ExprString(be.Y))
				return true
			})
		}
	}
	return a
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
